package hdindex

import (
	"context"

	"github.com/hd-index/hdindex/internal/core"
)

// ErrBadOptions reports a per-query option set that cannot form a valid
// filter cascade (negative or absurd knobs, γ > α, an explicit knob too
// small to yield k results). Query returns it before touching any tree.
var ErrBadOptions = core.ErrBadOptions

// ErrDimMismatch reports a query or insert vector whose dimensionality
// differs from the index's. Match with errors.Is; the HTTP layer maps
// it to a 400 with a structured error body.
var ErrDimMismatch = core.ErrDimMismatch

// QueryOption is a per-query tuning knob for Query and QueryBatch. The
// paper's accuracy-scalability boundary is governed at query time — α
// leaf candidates per tree, the γ-sized filter output, the optional
// Ptolemaic filter — so the knobs are request-scoped: one built index
// serves every operating point on the recall/latency frontier, no
// rebuild per point.
type QueryOption func(*queryConfig)

type queryConfig struct {
	opts  core.SearchOptions
	stats bool
}

// WithAlpha overrides α, the leaf candidates fetched per tree (§5.2.6;
// the built default is Options.Alpha). Raising it explores further
// along each Hilbert curve: more page reads, better recall.
func WithAlpha(alpha int) QueryOption {
	return func(c *queryConfig) { c.opts.Alpha = alpha }
}

// WithBeta overrides β, the triangular-filter survivor count feeding
// the Ptolemaic filter (§5.2.5). It only matters when the Ptolemaic
// filter is active for the query.
func WithBeta(beta int) QueryOption {
	return func(c *queryConfig) { c.opts.Beta = beta }
}

// WithGamma overrides γ, the per-tree filter output size (§5.2.6; the
// built default is Options.Gamma). Raising it refines more candidates
// against raw vectors: more exact distance work, better MAP.
func WithGamma(gamma int) QueryOption {
	return func(c *queryConfig) { c.opts.Gamma = gamma }
}

// WithPtolemaic switches the Ptolemaic filter (§5.2.5) for this query:
// on buys MAP at the same I/O for roughly double the filtering CPU.
// Unlike the zero option, WithPtolemaic(false) forces the filter off
// even when the index was built with UsePtolemaic.
func WithPtolemaic(on bool) QueryOption {
	return func(c *queryConfig) {
		if on {
			c.opts.Ptolemaic = core.PtolemaicOn
		} else {
			c.opts.Ptolemaic = core.PtolemaicOff
		}
	}
}

// WithMaxCandidates caps κ, the deduplicated candidate union refined
// against raw vectors — a hard bound on per-query refinement I/O
// whatever the per-tree knobs are (0 = no cap, the default). On a
// sharded layout the budget is split across the N shards (floor
// division, floored at k per shard), so the whole query stays within
// roughly the requested ceiling rather than N times it.
func WithMaxCandidates(n int) QueryOption {
	return func(c *queryConfig) { c.opts.MaxCandidates = n }
}

// WithStats asks for the per-query work counters in Response.Stats;
// without it Stats is nil.
func WithStats() QueryOption {
	return func(c *queryConfig) { c.stats = true }
}

// WithDegrade requests the cheap cascade: when the query leaves the
// whole α/β/γ triple unset, α and γ shrink to a quarter of the built
// values (floored, never below k) so the query does a fraction of the
// I/O and refinement work. Queries that pin any cascade knob are
// unaffected — their explicit contract is honoured. The serving layer
// sets this under overload pressure (adaptive degradation);
// Stats.Degraded echoes whether a knob actually shrank.
func WithDegrade() QueryOption {
	return func(c *queryConfig) { c.opts.Degrade = true }
}

// Response is one query's answer: the approximate k nearest neighbours
// (nearest first) and, when WithStats was given, the work counters with
// the effective cascade echoed back.
type Response struct {
	Results []Result
	Stats   *Stats
}

// Query answers a kANN query with per-query tuning. With no options it
// runs the parameters the index was built with and returns results
// bit-identical to Search; options override the filter cascade for this
// request only:
//
//	resp, err := idx.Query(ctx, q, 10, hdindex.WithAlpha(8192), hdindex.WithStats())
//
// Options are validated up front (ErrBadOptions) and never persisted —
// the same index serves every operating point of the recall/latency
// frontier concurrently.
func (i *Index) Query(ctx context.Context, q []float32, k int, opts ...QueryOption) (Response, error) {
	var cfg queryConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	res, st, err := i.ix.Query(ctx, q, k, cfg.opts)
	if err != nil {
		return Response{}, err
	}
	resp := Response{Results: res}
	if cfg.stats {
		resp.Stats = st
	}
	return resp, nil
}

// QueryBatch answers many queries concurrently with one shared option
// set, preserving input order. Options are resolved and validated once
// for the whole batch; each Response carries its own Stats when
// WithStats is given.
func (i *Index) QueryBatch(ctx context.Context, queries [][]float32, k int, opts ...QueryOption) ([]Response, error) {
	var cfg queryConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	res, stats, err := i.ix.QueryBatch(ctx, queries, k, cfg.opts)
	if err != nil {
		return nil, err
	}
	out := make([]Response, len(res))
	for qi := range res {
		out[qi] = Response{Results: res[qi]}
		if cfg.stats && qi < len(stats) {
			out[qi].Stats = stats[qi]
		}
	}
	return out, nil
}
