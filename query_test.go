package hdindex

import (
	"context"
	"errors"
	"fmt"
	"math"
	"path/filepath"
	"testing"

	"github.com/hd-index/hdindex/internal/data"
)

// buildLayout builds the same dataset under one of the facade's three
// on-disk layouts: legacy (Shards 0), 1-shard manifest, 4-shard
// manifest.
func buildLayout(t *testing.T, shards int) (*Index, [][]float32) {
	t.Helper()
	ds := data.Generate(data.Config{Name: "q", N: 1600, Dim: 32, Clusters: 6, Lo: 0, Hi: 1, Seed: 33})
	queries := ds.PerturbedQueries(8, 0.02, 34)
	idx, err := Build(filepath.Join(t.TempDir(), "ix"), ds.Vectors,
		Options{Tau: 4, Omega: 8, M: 5, Alpha: 256, Gamma: 64, Seed: 3, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { idx.Close() })
	return idx, queries
}

func requireBitIdentical(t *testing.T, label string, got, want []Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i].ID != want[i].ID || math.Float64bits(got[i].Dist) != math.Float64bits(want[i].Dist) {
			t.Fatalf("%s rank %d: got (%d, %v), want (%d, %v)",
				label, i, got[i].ID, got[i].Dist, want[i].ID, want[i].Dist)
		}
	}
}

// Query with zero options must be bit-identical to every method of the
// deprecated Search matrix, on every layout the facade can write. This
// is the contract that lets callers migrate mechanically.
func TestQueryEquivalentToLegacyMatrix(t *testing.T) {
	for _, shards := range []int{0, 1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			idx, queries := buildLayout(t, shards)
			ctx := context.Background()
			for qi, q := range queries {
				resp, err := idx.Query(ctx, q, 10, WithStats())
				if err != nil {
					t.Fatal(err)
				}
				if resp.Stats == nil || resp.Stats.Candidates < 1 {
					t.Fatalf("query %d: stats not populated: %+v", qi, resp.Stats)
				}

				fromSearch, err := idx.Search(q, 10)
				if err != nil {
					t.Fatal(err)
				}
				requireBitIdentical(t, "Search", resp.Results, fromSearch)

				fromCtx, err := idx.SearchContext(ctx, q, 10)
				if err != nil {
					t.Fatal(err)
				}
				requireBitIdentical(t, "SearchContext", resp.Results, fromCtx)

				fromStats, st, err := idx.SearchWithStats(q, 10)
				if err != nil {
					t.Fatal(err)
				}
				requireBitIdentical(t, "SearchWithStats", resp.Results, fromStats)
				if st.Candidates != resp.Stats.Candidates || st.TreeEntries != resp.Stats.TreeEntries {
					t.Fatalf("query %d: stats diverge: Query %+v vs SearchWithStats %+v", qi, resp.Stats, st)
				}

				fromStatsCtx, stCtx, err := idx.SearchWithStatsContext(ctx, q, 10)
				if err != nil {
					t.Fatal(err)
				}
				requireBitIdentical(t, "SearchWithStatsContext", resp.Results, fromStatsCtx)
				if stCtx.Candidates != resp.Stats.Candidates {
					t.Fatalf("query %d: context stats diverge", qi)
				}
			}

			// The batch pair.
			batch, err := idx.QueryBatch(ctx, queries, 10)
			if err != nil {
				t.Fatal(err)
			}
			fromBatch, err := idx.SearchBatch(queries, 10)
			if err != nil {
				t.Fatal(err)
			}
			fromBatchCtx, err := idx.SearchBatchContext(ctx, queries, 10)
			if err != nil {
				t.Fatal(err)
			}
			if len(batch) != len(queries) {
				t.Fatalf("QueryBatch returned %d responses", len(batch))
			}
			for qi := range queries {
				requireBitIdentical(t, "SearchBatch", batch[qi].Results, fromBatch[qi])
				requireBitIdentical(t, "SearchBatchContext", batch[qi].Results, fromBatchCtx[qi])
				if batch[qi].Stats != nil {
					t.Fatal("QueryBatch without WithStats must not return stats")
				}
			}
		})
	}
}

// Per-query overrides change the work done — on the same built index,
// with no rebuild — and the stats echo the cascade actually run.
func TestQueryOverridesOnEveryLayout(t *testing.T) {
	for _, shards := range []int{0, 1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			idx, queries := buildLayout(t, shards)
			ctx := context.Background()
			prev := -1
			for _, gamma := range []int{16, 32, 64} {
				var total int
				for _, q := range queries {
					resp, err := idx.Query(ctx, q, 10, WithGamma(gamma), WithStats())
					if err != nil {
						t.Fatal(err)
					}
					if resp.Stats.Gamma != gamma {
						t.Fatalf("gamma=%d: stats echo %+v", gamma, resp.Stats)
					}
					total += resp.Stats.Candidates
				}
				if total < prev {
					t.Fatalf("gamma=%d: candidates %d < previous %d — override not applied", gamma, total, prev)
				}
				prev = total
			}

			// WithAlpha moves the fetched tree entries.
			low, err := idx.Query(ctx, queries[0], 10, WithAlpha(32), WithStats())
			if err != nil {
				t.Fatal(err)
			}
			high, err := idx.Query(ctx, queries[0], 10, WithAlpha(256), WithStats())
			if err != nil {
				t.Fatal(err)
			}
			if low.Stats.TreeEntries >= high.Stats.TreeEntries {
				t.Fatalf("alpha 32 fetched %d entries, alpha 256 fetched %d",
					low.Stats.TreeEntries, high.Stats.TreeEntries)
			}
			if low.Stats.Alpha != 32 || high.Stats.Alpha != 256 {
				t.Fatalf("alpha echo: %d / %d", low.Stats.Alpha, high.Stats.Alpha)
			}

			// WithPtolemaic(true) on an index built without it.
			pto, err := idx.Query(ctx, queries[0], 10, WithPtolemaic(true), WithStats())
			if err != nil {
				t.Fatal(err)
			}
			if !pto.Stats.Ptolemaic {
				t.Fatal("WithPtolemaic(true) not echoed")
			}

			// QueryBatch applies one option set to every query.
			batch, err := idx.QueryBatch(ctx, queries, 10, WithGamma(32), WithStats())
			if err != nil {
				t.Fatal(err)
			}
			for qi := range queries {
				if batch[qi].Stats == nil || batch[qi].Stats.Gamma != 32 {
					t.Fatalf("batch query %d: stats %+v", qi, batch[qi].Stats)
				}
			}
		})
	}
}

// The typed errors must surface through the facade on every layout.
func TestQueryTypedErrors(t *testing.T) {
	for _, shards := range []int{0, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			idx, queries := buildLayout(t, shards)
			ctx := context.Background()

			if _, err := idx.Query(ctx, make([]float32, 5), 10); !errors.Is(err, ErrDimMismatch) {
				t.Fatalf("query dim err = %v, want ErrDimMismatch", err)
			}
			if _, err := idx.QueryBatch(ctx, [][]float32{make([]float32, 5)}, 10); !errors.Is(err, ErrDimMismatch) {
				t.Fatalf("batch dim err = %v, want ErrDimMismatch", err)
			}
			if _, err := idx.Insert(make([]float32, 5)); !errors.Is(err, ErrDimMismatch) {
				t.Fatalf("insert dim err = %v, want ErrDimMismatch", err)
			}
			if _, err := idx.Query(ctx, queries[0], 10, WithAlpha(16), WithGamma(64)); !errors.Is(err, ErrBadOptions) {
				t.Fatalf("widening cascade err = %v, want ErrBadOptions", err)
			}
			if _, err := idx.Query(ctx, queries[0], 10, WithAlpha(-3)); !errors.Is(err, ErrBadOptions) {
				t.Fatalf("negative alpha err = %v, want ErrBadOptions", err)
			}
			if _, err := idx.QueryBatch(ctx, queries, 10, WithGamma(4)); !errors.Is(err, ErrBadOptions) {
				t.Fatalf("batch gamma<k err = %v, want ErrBadOptions", err)
			}
		})
	}
}
