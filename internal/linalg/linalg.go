// Package linalg provides the small dense linear algebra OPQ needs: a
// row-major float64 matrix, multiplication, Jacobi eigendecomposition of
// symmetric matrices, and the orthogonal Procrustes solution built from
// it. Only square sizes up to the dataset dimensionality (≤ ~1400) occur,
// for which cyclic Jacobi is simple and dependably accurate.
package linalg

import (
	"fmt"
	"math"
)

// Mat is a dense row-major matrix.
type Mat struct {
	Rows, Cols int
	Data       []float64
}

// NewMat returns a zeroed rows×cols matrix.
func NewMat(rows, cols int) *Mat {
	return &Mat{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// Identity returns the n×n identity.
func Identity(n int) *Mat {
	m := NewMat(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (i, j).
func (m *Mat) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Mat) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Mat) Clone() *Mat {
	c := NewMat(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose.
func (m *Mat) T() *Mat {
	t := NewMat(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns a·b.
func Mul(a, b *Mat) *Mat {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: dim mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMat(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for p := 0; p < a.Cols; p++ {
			av := a.At(i, p)
			if av == 0 {
				continue
			}
			rowB := b.Data[p*b.Cols : (p+1)*b.Cols]
			rowO := out.Data[i*out.Cols : (i+1)*out.Cols]
			for j, bv := range rowB {
				rowO[j] += av * bv
			}
		}
	}
	return out
}

// MulVec returns m·v for a column vector v.
func (m *Mat) MulVec(v []float64) []float64 {
	if len(v) != m.Cols {
		panic("linalg: vector length mismatch")
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, x := range row {
			s += x * v[j]
		}
		out[i] = s
	}
	return out
}

// JacobiEigen diagonalises the symmetric matrix a, returning eigenvalues
// (descending) and the matrix whose COLUMNS are the corresponding
// eigenvectors. a is not modified.
func JacobiEigen(a *Mat, maxSweeps int) (vals []float64, vecs *Mat) {
	if a.Rows != a.Cols {
		panic("linalg: JacobiEigen needs a square matrix")
	}
	n := a.Rows
	if maxSweeps <= 0 {
		maxSweeps = 30
	}
	w := a.Clone()
	v := Identity(n)
	for sweep := 0; sweep < maxSweeps; sweep++ {
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += w.At(i, j) * w.At(i, j)
			}
		}
		if off < 1e-22 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := w.At(p, p), w.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := 1 / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				if theta < 0 {
					t = -t
				}
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				// Rotate rows/cols p and q of w.
				for i := 0; i < n; i++ {
					wip, wiq := w.At(i, p), w.At(i, q)
					w.Set(i, p, c*wip-s*wiq)
					w.Set(i, q, s*wip+c*wiq)
				}
				for i := 0; i < n; i++ {
					wpi, wqi := w.At(p, i), w.At(q, i)
					w.Set(p, i, c*wpi-s*wqi)
					w.Set(q, i, s*wpi+c*wqi)
				}
				for i := 0; i < n; i++ {
					vip, viq := v.At(i, p), v.At(i, q)
					v.Set(i, p, c*vip-s*viq)
					v.Set(i, q, s*vip+c*viq)
				}
			}
		}
	}
	vals = make([]float64, n)
	for i := range vals {
		vals[i] = w.At(i, i)
	}
	// Sort descending, permuting eigenvector columns alongside.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for i := 1; i < n; i++ {
		for j := i; j > 0 && vals[order[j]] > vals[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	sorted := make([]float64, n)
	perm := NewMat(n, n)
	for newCol, oldCol := range order {
		sorted[newCol] = vals[oldCol]
		for r := 0; r < n; r++ {
			perm.Set(r, newCol, v.At(r, oldCol))
		}
	}
	return sorted, perm
}

// Procrustes returns the orthogonal matrix R maximising tr(Rᵀ·M) — the
// solution of the orthogonal Procrustes problem, R = U·Vᵀ for the SVD
// M = U·Σ·Vᵀ. The SVD is derived from Jacobi eigendecompositions of
// MᵀM; rank-deficient directions are completed to an orthonormal basis.
func Procrustes(m *Mat) *Mat {
	if m.Rows != m.Cols {
		panic("linalg: Procrustes needs a square matrix")
	}
	n := m.Rows
	mtm := Mul(m.T(), m)
	vals, v := JacobiEigen(mtm, 40)
	// U column i = M v_i / σ_i for σ_i > 0.
	u := NewMat(n, n)
	have := make([]bool, n)
	for i := 0; i < n; i++ {
		sigma := math.Sqrt(math.Max(vals[i], 0))
		if sigma < 1e-10 {
			continue
		}
		col := make([]float64, n)
		for r := 0; r < n; r++ {
			col[r] = v.At(r, i)
		}
		mu := m.MulVec(col)
		for r := 0; r < n; r++ {
			u.Set(r, i, mu[r]/sigma)
		}
		have[i] = true
	}
	completeBasis(u, have)
	return Mul(u, v.T())
}

// completeBasis fills in missing columns (have[i] == false) so that the
// columns of u form an orthonormal basis, via Gram-Schmidt against the
// existing ones.
func completeBasis(u *Mat, have []bool) {
	n := u.Rows
	for i := 0; i < n; i++ {
		if have[i] {
			continue
		}
		// Try canonical basis vectors until one survives projection.
		for e := 0; e < n; e++ {
			col := make([]float64, n)
			col[e] = 1
			for j := 0; j < n; j++ {
				if j == i || !colNonZero(u, j) {
					continue
				}
				var dot float64
				for r := 0; r < n; r++ {
					dot += col[r] * u.At(r, j)
				}
				for r := 0; r < n; r++ {
					col[r] -= dot * u.At(r, j)
				}
			}
			var norm float64
			for _, x := range col {
				norm += x * x
			}
			if norm > 1e-12 {
				norm = math.Sqrt(norm)
				for r := 0; r < n; r++ {
					u.Set(r, i, col[r]/norm)
				}
				have[i] = true
				break
			}
		}
	}
}

func colNonZero(u *Mat, j int) bool {
	for r := 0; r < u.Rows; r++ {
		if u.At(r, j) != 0 {
			return true
		}
	}
	return false
}

// IsOrthogonal reports whether RᵀR ≈ I within tol.
func IsOrthogonal(r *Mat, tol float64) bool {
	if r.Rows != r.Cols {
		return false
	}
	p := Mul(r.T(), r)
	for i := 0; i < p.Rows; i++ {
		for j := 0; j < p.Cols; j++ {
			want := 0.0
			if i == j {
				want = 1.0
			}
			if math.Abs(p.At(i, j)-want) > tol {
				return false
			}
		}
	}
	return true
}
