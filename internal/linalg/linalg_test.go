package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func TestMul(t *testing.T) {
	a := NewMat(2, 3)
	copy(a.Data, []float64{1, 2, 3, 4, 5, 6})
	b := NewMat(3, 2)
	copy(b.Data, []float64{7, 8, 9, 10, 11, 12})
	c := Mul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if math.Abs(c.Data[i]-w) > 1e-12 {
			t.Fatalf("Mul[%d] = %v, want %v", i, c.Data[i], w)
		}
	}
}

func TestMulVecAndTranspose(t *testing.T) {
	a := NewMat(2, 2)
	copy(a.Data, []float64{1, 2, 3, 4})
	v := a.MulVec([]float64{5, 6})
	if v[0] != 17 || v[1] != 39 {
		t.Fatalf("MulVec = %v", v)
	}
	at := a.T()
	if at.At(0, 1) != 3 || at.At(1, 0) != 2 {
		t.Fatal("transpose broken")
	}
}

func TestJacobiEigenKnown(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	a := NewMat(2, 2)
	copy(a.Data, []float64{2, 1, 1, 2})
	vals, vecs := JacobiEigen(a, 30)
	if math.Abs(vals[0]-3) > 1e-10 || math.Abs(vals[1]-1) > 1e-10 {
		t.Fatalf("eigenvalues = %v, want [3 1]", vals)
	}
	// Check A·v = λ·v for each column.
	for c := 0; c < 2; c++ {
		v := []float64{vecs.At(0, c), vecs.At(1, c)}
		av := a.MulVec(v)
		for r := range av {
			if math.Abs(av[r]-vals[c]*v[r]) > 1e-10 {
				t.Fatalf("A·v != λ·v for column %d", c)
			}
		}
	}
}

func TestJacobiEigenRandomSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 16
	a := NewMat(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			x := rng.NormFloat64()
			a.Set(i, j, x)
			a.Set(j, i, x)
		}
	}
	vals, vecs := JacobiEigen(a, 40)
	// Eigenvectors orthonormal.
	if !IsOrthogonal(vecs, 1e-8) {
		t.Fatal("eigenvector matrix not orthogonal")
	}
	// Descending order.
	for i := 1; i < n; i++ {
		if vals[i] > vals[i-1]+1e-12 {
			t.Fatal("eigenvalues not sorted descending")
		}
	}
	// Reconstruction: V Λ Vᵀ == A.
	lam := NewMat(n, n)
	for i := 0; i < n; i++ {
		lam.Set(i, i, vals[i])
	}
	rec := Mul(Mul(vecs, lam), vecs.T())
	for i := range a.Data {
		if math.Abs(rec.Data[i]-a.Data[i]) > 1e-8 {
			t.Fatalf("reconstruction error at %d: %v vs %v", i, rec.Data[i], a.Data[i])
		}
	}
}

// Procrustes must recover a known rotation: with M = R₀ (orthogonal),
// argmax tr(RᵀM) = R₀.
func TestProcrustesRecoversRotation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 8
	r0 := randomRotation(n, rng)
	r := Procrustes(r0)
	for i := range r.Data {
		if math.Abs(r.Data[i]-r0.Data[i]) > 1e-8 {
			t.Fatalf("Procrustes failed to recover rotation at %d", i)
		}
	}
}

func TestProcrustesOrthogonalOnRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 5; trial++ {
		n := 4 + trial*4
		m := NewMat(n, n)
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64()
		}
		r := Procrustes(m)
		if !IsOrthogonal(r, 1e-7) {
			t.Fatalf("trial %d: result not orthogonal", trial)
		}
	}
}

func TestProcrustesRankDeficient(t *testing.T) {
	// Zero matrix: any orthogonal R is optimal; result must still be
	// orthogonal (the basis-completion path).
	m := NewMat(6, 6)
	r := Procrustes(m)
	if !IsOrthogonal(r, 1e-7) {
		t.Fatal("rank-deficient Procrustes result not orthogonal")
	}
}

// randomRotation builds an orthogonal matrix by Gram-Schmidt on a random
// Gaussian matrix.
func randomRotation(n int, rng *rand.Rand) *Mat {
	m := NewMat(n, n)
	for c := 0; c < n; c++ {
		col := make([]float64, n)
		for r := range col {
			col[r] = rng.NormFloat64()
		}
		for prev := 0; prev < c; prev++ {
			var dot float64
			for r := 0; r < n; r++ {
				dot += col[r] * m.At(r, prev)
			}
			for r := 0; r < n; r++ {
				col[r] -= dot * m.At(r, prev)
			}
		}
		var norm float64
		for _, x := range col {
			norm += x * x
		}
		norm = math.Sqrt(norm)
		for r := 0; r < n; r++ {
			m.Set(r, c, col[r]/norm)
		}
	}
	return m
}

func TestIdentityAndClone(t *testing.T) {
	id := Identity(3)
	c := id.Clone()
	c.Set(0, 0, 5)
	if id.At(0, 0) != 1 {
		t.Fatal("Clone aliases data")
	}
	if !IsOrthogonal(id, 1e-15) {
		t.Fatal("identity must be orthogonal")
	}
}

func TestMulPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Mul(NewMat(2, 3), NewMat(2, 3))
}
