// Package wal is the write-ahead log behind live ingest: every insert,
// delete and undelete appends one checksummed record here before it is
// acknowledged, so the in-memory state it mutates (core's memtable and
// delete marks) can be rebuilt after a crash by replaying the log.
//
// The format is deliberately dumb — a flat sequence of length-prefixed,
// CRC-guarded records:
//
//	┌──────────────┬──────────────┬──────────────────────────────┐
//	│ len  uint32  │ crc32c       │ payload (len bytes)          │
//	│ little-endian│ of payload   │ op ┊ id ┊ vector (inserts)   │
//	└──────────────┴──────────────┴──────────────────────────────┘
//
// A crash can only tear the final record (appends are sequential), and
// a torn record fails its length or checksum test, so Open truncates
// the file at the first invalid record and replays the prefix — the
// log never needs a recovery index or segment map.
//
// Durability is group-committed: appends land in the OS page cache
// immediately (surviving process death on their own) and WaitDurable
// rides the next fsync, with the first waiter acting as leader and
// syncing on behalf of everyone queued behind it. A SyncInterval > 0
// trades the power-loss window for latency: WaitDurable then returns
// without fsyncing and a background ticker syncs the file instead.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sync"
	"time"

	"github.com/hd-index/hdindex/internal/iofault"
)

// Ops recorded in the log.
const (
	OpInsert   byte = 1
	OpDelete   byte = 2
	OpUndelete byte = 3
)

// maxPayload bounds a record's declared payload length; anything larger
// is treated as tail corruption rather than attempted as an allocation.
const maxPayload = 1 << 28

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed reports use of a closed log.
var ErrClosed = errors.New("wal: log is closed")

// Record is one logged mutation. Vec is set only for OpInsert.
type Record struct {
	Op  byte
	ID  uint64
	Vec []float32
}

// Options tunes a log.
type Options struct {
	// SyncInterval selects the durability discipline. 0 (the default)
	// group-commits: WaitDurable blocks until an fsync covers the
	// record, with one fsync serving every waiter queued behind the
	// leader. > 0 acknowledges after the buffered write (safe against
	// process crash, a bounded window against power loss) and fsyncs on
	// this cadence in the background.
	SyncInterval time.Duration

	// OnSync, when non-nil, is invoked with the wall-clock duration of
	// every fsync the log issues. It runs on the group-commit leader's
	// goroutine with the log lock held: implementations must be cheap
	// and must not call back into the log (core feeds a lock-free
	// telemetry histogram).
	OnSync func(time.Duration)
}

// Stats is a point-in-time summary of the log.
type Stats struct {
	Bytes   int64 // current file size
	Records int64 // records in the file
	Syncs   int64 // fsyncs issued since open
}

// Log is an append-only write-ahead log. Append order is the caller's
// responsibility (core appends while holding its index lock, so log
// order matches id-assignment order); the log itself only serialises
// the file writes and the group-commit fsync protocol.
type Log struct {
	path string
	opts Options

	mu   sync.Mutex
	cond *sync.Cond
	f    iofault.File
	// size and synced are LOGICAL offsets: monotonically increasing
	// across RewriteWith, so an offset handed out by AppendNoSync stays
	// meaningful to WaitDurable even if a compaction truncates the file
	// underneath the waiter (everything before a rewrite is durable by
	// construction — either folded into the committed index state or
	// re-written into the fsynced tail).
	size     int64
	synced   int64
	fileSize int64 // physical length of the current file
	records  int64
	syncs    int64
	syncing  bool  // a group-commit leader is mid-fsync
	syncErr  error // sticky: an fsync failure poisons the log
	closed   bool

	tickStop chan struct{}
	tickDone chan struct{}
}

// Open opens (creating if absent) the log at path, truncates any torn
// tail, and invokes replay for every surviving record in append order.
// Replay stops at the first callback error, which Open returns.
func Open(path string, opts Options, replay func(Record) error) (*Log, error) {
	f, err := iofault.Open(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	valid, nrec, err := scan(f, replay)
	if err != nil {
		f.Close()
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: stat: %w", err)
	}
	if fi.Size() > valid {
		// Torn or corrupt tail: the record was never acknowledged (its
		// fsync cannot have completed), so dropping it loses nothing.
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: truncate torn tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: sync after truncate: %w", err)
		}
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: seek: %w", err)
	}
	l := &Log{path: path, opts: opts, f: f, size: valid, synced: valid, fileSize: valid, records: nrec}
	l.cond = sync.NewCond(&l.mu)
	if opts.SyncInterval > 0 {
		l.tickStop = make(chan struct{})
		l.tickDone = make(chan struct{})
		go l.syncLoop()
	}
	return l, nil
}

// scan reads records from the start of f, calling replay for each valid
// one, and returns the byte offset of the first invalid record (= the
// length of the valid prefix) plus the valid record count.
func scan(f iofault.File, replay func(Record) error) (valid int64, nrec int64, err error) {
	var hdr [8]byte
	var payload []byte
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			// io.EOF (clean end) or ErrUnexpectedEOF (torn header):
			// either way the valid prefix ends here.
			return valid, nrec, nil
		}
		plen := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		if plen < 9 || plen > maxPayload {
			return valid, nrec, nil
		}
		if cap(payload) < int(plen) {
			payload = make([]byte, plen)
		}
		payload = payload[:plen]
		if _, err := io.ReadFull(f, payload); err != nil {
			return valid, nrec, nil // torn payload
		}
		if crc32.Checksum(payload, castagnoli) != crc {
			return valid, nrec, nil // corrupt record
		}
		rec, ok := decodePayload(payload)
		if !ok {
			return valid, nrec, nil
		}
		if replay != nil {
			if err := replay(rec); err != nil {
				return 0, 0, err
			}
		}
		valid += int64(8 + plen)
		nrec++
	}
}

func decodePayload(p []byte) (Record, bool) {
	rec := Record{Op: p[0], ID: binary.LittleEndian.Uint64(p[1:9])}
	body := p[9:]
	switch rec.Op {
	case OpInsert:
		if len(body)%4 != 0 {
			return Record{}, false
		}
		rec.Vec = make([]float32, len(body)/4)
		for i := range rec.Vec {
			rec.Vec[i] = math.Float32frombits(binary.LittleEndian.Uint32(body[4*i:]))
		}
	case OpDelete, OpUndelete:
		if len(body) != 0 {
			return Record{}, false
		}
	default:
		return Record{}, false
	}
	return rec, true
}

func encodeRecord(rec Record) []byte {
	plen := 9 + 4*len(rec.Vec)
	buf := make([]byte, 8+plen)
	payload := buf[8:]
	payload[0] = rec.Op
	binary.LittleEndian.PutUint64(payload[1:9], rec.ID)
	for i, v := range rec.Vec {
		binary.LittleEndian.PutUint32(payload[9+4*i:], math.Float32bits(v))
	}
	binary.LittleEndian.PutUint32(buf[0:4], uint32(plen))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, castagnoli))
	return buf
}

// AppendNoSync appends one record to the log's page-cache image and
// returns the file offset just past it — the token WaitDurable takes.
// Callers serialise their appends against their own state mutation (core
// holds its index lock), which is what keeps log order meaningful.
func (l *Log) AppendNoSync(rec Record) (int64, error) {
	buf := encodeRecord(rec)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.syncErr != nil {
		return 0, l.syncErr
	}
	if _, err := l.f.Write(buf); err != nil {
		// A torn in-cache write would desynchronise size from the file;
		// poison the log rather than guess.
		l.syncErr = fmt.Errorf("wal: append: %w", err)
		l.cond.Broadcast()
		return 0, l.syncErr
	}
	l.size += int64(len(buf))
	l.fileSize += int64(len(buf))
	l.records++
	return l.size, nil
}

// WaitDurable blocks until the log is durable up to off (an offset
// returned by AppendNoSync). With SyncInterval == 0 this is the group
// commit: the first waiter fsyncs on behalf of everyone queued behind
// it. With SyncInterval > 0 it returns immediately — the record is in
// the page cache (safe against process death) and the background loop
// owns the fsync cadence.
func (l *Log) WaitDurable(off int64) error {
	if l.opts.SyncInterval > 0 {
		l.mu.Lock()
		defer l.mu.Unlock()
		return l.syncErr
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		if l.syncErr != nil {
			return l.syncErr
		}
		if l.synced >= off {
			return nil
		}
		if l.closed {
			return ErrClosed
		}
		if !l.syncing {
			l.leaderSyncLocked()
			continue
		}
		l.cond.Wait()
	}
}

// leaderSyncLocked performs one group-commit fsync covering everything
// appended so far, then wakes the waiters riding on it. Called with
// l.mu held; the lock is released for the fsync itself so appends keep
// landing (and queueing into the next commit) while the disk works.
func (l *Log) leaderSyncLocked() {
	l.syncing = true
	target := l.size
	f := l.f
	l.mu.Unlock()
	start := time.Now()
	err := f.Sync()
	elapsed := time.Since(start)
	l.mu.Lock()
	l.syncing = false
	l.syncs++
	if l.opts.OnSync != nil {
		l.opts.OnSync(elapsed)
	}
	if err != nil {
		l.syncErr = fmt.Errorf("wal: fsync: %w", err)
	} else if target > l.synced {
		l.synced = target
	}
	l.cond.Broadcast()
}

// Sync forces everything appended so far onto disk.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		if l.syncErr != nil {
			return l.syncErr
		}
		if l.closed {
			return ErrClosed
		}
		if l.synced >= l.size {
			return nil
		}
		if !l.syncing {
			l.leaderSyncLocked()
			continue
		}
		l.cond.Wait()
	}
}

func (l *Log) syncLoop() {
	defer close(l.tickDone)
	t := time.NewTicker(l.opts.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-l.tickStop:
			return
		case <-t.C:
			l.mu.Lock()
			if l.closed || l.syncErr != nil {
				l.mu.Unlock()
				return
			}
			if l.synced < l.size && !l.syncing {
				l.leaderSyncLocked()
			}
			l.mu.Unlock()
		}
	}
}

// RewriteWith atomically replaces the log's contents with recs — the
// compaction truncation. The new file is written beside the log, fsynced,
// renamed over it, and the directory entry fsynced, so a crash at any
// point leaves either the complete old log or the complete new one.
// The caller must exclude concurrent appends (core holds its index
// write lock across the compaction commit).
func (l *Log) RewriteWith(recs []Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.syncErr != nil {
		return l.syncErr
	}
	dir, name := filepath.Split(l.path)
	if dir == "" {
		dir = "."
	}
	otmp, err := os.CreateTemp(dir, name+".tmp*")
	if err != nil {
		return fmt.Errorf("wal: rewrite: %w", err)
	}
	tmpName := otmp.Name()
	tmp := iofault.Wrap(tmpName, otmp)
	fail := func(e error) error {
		tmp.Close()
		os.Remove(tmpName)
		return e
	}
	var size int64
	for _, rec := range recs {
		buf := encodeRecord(rec)
		if _, err := tmp.Write(buf); err != nil {
			return fail(fmt.Errorf("wal: rewrite: %w", err))
		}
		size += int64(len(buf))
	}
	if err := tmp.Sync(); err != nil {
		return fail(fmt.Errorf("wal: rewrite sync: %w", err))
	}
	if err := os.Rename(tmpName, l.path); err != nil {
		return fail(fmt.Errorf("wal: rewrite rename: %w", err))
	}
	tmp.Close()
	if err := syncDir(dir); err != nil {
		// The rename's directory entry may not be durable: a crash could
		// resurrect the pre-rewrite log. Replay is idempotent, so no
		// acked write is at risk — but a disk that fails fsync must not
		// be trusted with further appends, and the caller's compaction
		// must not be acknowledged as cleanly committed. Poison the log;
		// the old handle keeps pointing at the unlinked previous file,
		// which no longer matters because every write path now fails.
		l.syncErr = fmt.Errorf("wal: rewrite dir sync: %w", err)
		l.cond.Broadcast()
		return l.syncErr
	}
	// Swap the handle: the old descriptor still points at the unlinked
	// previous file.
	nf, err := iofault.Open(l.path, os.O_RDWR, 0o644)
	if err != nil {
		l.syncErr = fmt.Errorf("wal: reopen after rewrite: %w", err)
		l.cond.Broadcast()
		return l.syncErr
	}
	if _, err := nf.Seek(size, io.SeekStart); err != nil {
		nf.Close()
		l.syncErr = fmt.Errorf("wal: seek after rewrite: %w", err)
		l.cond.Broadcast()
		return l.syncErr
	}
	l.f.Close()
	l.f = nf
	// Everything appended before the rewrite is durable now (folded into
	// the caller's committed state or re-written into the fsynced tail),
	// so logical offsets held by in-flight WaitDurable calls resolve.
	l.synced = l.size
	l.fileSize = size
	l.records = int64(len(recs))
	l.cond.Broadcast()
	return nil
}

// syncDir fsyncs a directory so a rename inside it is durable. Routed
// through the iofault seam so chaos tests can fail the directory sync
// specifically.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	fd := iofault.Wrap(dir, d)
	err = fd.Sync()
	if cerr := fd.Close(); err == nil {
		err = cerr
	}
	return err
}

// DurableOffset returns the logical offset the log is known durable up
// to: every record whose AppendNoSync offset is <= this value has been
// covered by a successful fsync (or folded into a rewrite). Core's
// WAL-failure rollback uses it to find the acknowledged prefix of the
// memtable.
func (l *Log) DurableOffset() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.synced
}

// Err returns the sticky poison error, nil while the log is healthy.
// A non-nil Err means a write or fsync failed and every further write
// path fails with the same error; core uses it to distinguish "the log
// itself is poisoned" from a transient rewrite failure (a temp file
// that could not be created) that leaves the log fully usable.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncErr
}

// Stats returns the log's size and activity counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{Bytes: l.fileSize, Records: l.records, Syncs: l.syncs}
}

// Size returns the log file's current length in bytes.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.fileSize
}

// Close fsyncs outstanding appends and closes the file. Safe to call
// more than once.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	var syncErr error
	if l.syncErr == nil && l.synced < l.size && !l.syncing {
		l.syncing = true
		f := l.f
		l.mu.Unlock()
		syncErr = f.Sync()
		l.mu.Lock()
		l.syncing = false
	}
	for l.syncing {
		// An in-flight group-commit leader holds the file; wait it out.
		l.cond.Wait()
	}
	l.closed = true
	l.cond.Broadcast()
	f := l.f
	tickStop, tickDone := l.tickStop, l.tickDone
	l.mu.Unlock()
	if tickStop != nil {
		close(tickStop)
		<-tickDone
	}
	if err := f.Close(); err != nil && syncErr == nil {
		syncErr = err
	}
	return syncErr
}
