package wal

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"
)

func reopenAndCollect(t *testing.T, path string, opts Options) (*Log, []Record) {
	t.Helper()
	var got []Record
	l, err := Open(path, opts, func(r Record) error {
		got = append(got, r)
		return nil
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, got
}

func TestAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, got := reopenAndCollect(t, path, Options{})
	if len(got) != 0 {
		t.Fatalf("fresh log replayed %d records", len(got))
	}
	want := []Record{
		{Op: OpInsert, ID: 0, Vec: []float32{1, 2, 3.5}},
		{Op: OpInsert, ID: 1, Vec: []float32{-4, 0, 9}},
		{Op: OpDelete, ID: 0},
		{Op: OpUndelete, ID: 0},
		{Op: OpInsert, ID: 2, Vec: []float32{7}},
	}
	for _, r := range want {
		off, err := l.AppendNoSync(r)
		if err != nil {
			t.Fatalf("append: %v", err)
		}
		if err := l.WaitDurable(off); err != nil {
			t.Fatalf("wait durable: %v", err)
		}
	}
	st := l.Stats()
	if st.Records != int64(len(want)) {
		t.Fatalf("Records = %d, want %d", st.Records, len(want))
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	l2, got := reopenAndCollect(t, path, Options{})
	defer l2.Close()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replay mismatch:\n got %v\nwant %v", got, want)
	}
}

// TestTornTailTruncation cuts the file at every byte boundary inside the
// final record and checks that Open always recovers exactly the first
// two records and truncates the rest.
func TestTornTailTruncation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	l, _ := reopenAndCollect(t, path, Options{})
	recs := []Record{
		{Op: OpInsert, ID: 0, Vec: []float32{1, 2}},
		{Op: OpInsert, ID: 1, Vec: []float32{3, 4}},
		{Op: OpInsert, ID: 2, Vec: []float32{5, 6}},
	}
	var offs []int64
	for _, r := range recs {
		off, err := l.AppendNoSync(r)
		if err != nil {
			t.Fatal(err)
		}
		offs = append(offs, off)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := offs[1] + 1; cut < offs[2]; cut++ {
		cutPath := filepath.Join(dir, "cut.log")
		if err := os.WriteFile(cutPath, whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l2, got := reopenAndCollect(t, cutPath, Options{})
		if len(got) != 2 {
			t.Fatalf("cut at %d: replayed %d records, want 2", cut, len(got))
		}
		if got[1].ID != 1 {
			t.Fatalf("cut at %d: second record id %d", cut, got[1].ID)
		}
		fi, err := os.Stat(cutPath)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() != offs[1] {
			t.Fatalf("cut at %d: truncated to %d, want %d", cut, fi.Size(), offs[1])
		}
		l2.Close()
	}
}

// TestCorruptRecordStopsReplay flips a payload byte in the middle record
// and checks replay stops before it — a checksum failure anywhere ends
// the valid prefix.
func TestCorruptRecordStopsReplay(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	l, _ := reopenAndCollect(t, path, Options{})
	var offs []int64
	for i := 0; i < 3; i++ {
		off, err := l.AppendNoSync(Record{Op: OpInsert, ID: uint64(i), Vec: []float32{float32(i)}})
		if err != nil {
			t.Fatal(err)
		}
		offs = append(offs, off)
	}
	l.Close()
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[offs[0]+8] ^= 0xFF // first payload byte of record 1
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, got := reopenAndCollect(t, path, Options{})
	defer l2.Close()
	if len(got) != 1 || got[0].ID != 0 {
		t.Fatalf("replayed %v, want only record 0", got)
	}
	if sz := l2.Size(); sz != offs[0] {
		t.Fatalf("log size %d after corrupt truncate, want %d", sz, offs[0])
	}
}

// TestAbsurdLengthIsCorruption writes a header whose length field would
// exceed maxPayload; replay must stop cleanly instead of allocating.
func TestAbsurdLengthIsCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], maxPayload+1)
	if err := os.WriteFile(path, hdr[:], 0o644); err != nil {
		t.Fatal(err)
	}
	l, got := reopenAndCollect(t, path, Options{})
	defer l.Close()
	if len(got) != 0 {
		t.Fatalf("replayed %d records from garbage", len(got))
	}
	if l.Size() != 0 {
		t.Fatalf("size %d, want 0", l.Size())
	}
}

func TestReplayErrorPropagates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _ := reopenAndCollect(t, path, Options{})
	if _, err := l.AppendNoSync(Record{Op: OpInsert, ID: 0, Vec: []float32{1}}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	boom := errors.New("boom")
	if _, err := Open(path, Options{}, func(Record) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("Open error = %v, want %v", err, boom)
	}
}

// TestGroupCommitConcurrent hammers the group-commit path from many
// goroutines; every acknowledged append must survive reopen.
func TestGroupCommitConcurrent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _ := reopenAndCollect(t, path, Options{})
	const writers, perWriter = 8, 50
	var mu sync.Mutex
	var idMu sync.Mutex
	nextID := uint64(0)
	acked := make(map[uint64][]float32)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				// Mimic core: id assignment and append under one lock.
				idMu.Lock()
				id := nextID
				nextID++
				vec := []float32{float32(w), float32(i)}
				off, err := l.AppendNoSync(Record{Op: OpInsert, ID: id, Vec: vec})
				idMu.Unlock()
				if err != nil {
					t.Errorf("append: %v", err)
					return
				}
				if err := l.WaitDurable(off); err != nil {
					t.Errorf("wait durable: %v", err)
					return
				}
				mu.Lock()
				acked[id] = vec
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, got := reopenAndCollect(t, path, Options{})
	defer l2.Close()
	if len(got) != writers*perWriter {
		t.Fatalf("replayed %d records, want %d", len(got), writers*perWriter)
	}
	for i, r := range got {
		if r.ID != uint64(i) {
			t.Fatalf("record %d has id %d — append order broke", i, r.ID)
		}
		if want := acked[r.ID]; !reflect.DeepEqual(r.Vec, want) {
			t.Fatalf("id %d replayed vec %v, want %v", r.ID, r.Vec, want)
		}
	}
}

func TestBackgroundSyncInterval(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _ := reopenAndCollect(t, path, Options{SyncInterval: time.Millisecond})
	off, err := l.AppendNoSync(Record{Op: OpInsert, ID: 0, Vec: []float32{1}})
	if err != nil {
		t.Fatal(err)
	}
	// WaitDurable must not block in interval mode.
	done := make(chan error, 1)
	go func() { done <- l.WaitDurable(off) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("wait durable: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitDurable blocked in interval mode")
	}
	deadline := time.Now().Add(5 * time.Second)
	for l.Stats().Syncs == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background sync never ran")
		}
		time.Sleep(time.Millisecond)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRewriteWith(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _ := reopenAndCollect(t, path, Options{})
	for i := 0; i < 5; i++ {
		if _, err := l.AppendNoSync(Record{Op: OpInsert, ID: uint64(i), Vec: []float32{float32(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	tail := []Record{
		{Op: OpInsert, ID: 3, Vec: []float32{3}},
		{Op: OpInsert, ID: 4, Vec: []float32{4}},
	}
	if err := l.RewriteWith(tail); err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	if st := l.Stats(); st.Records != 2 {
		t.Fatalf("Records = %d after rewrite, want 2", st.Records)
	}
	// The swapped handle must keep accepting appends at the right offset.
	off, err := l.AppendNoSync(Record{Op: OpDelete, ID: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.WaitDurable(off); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, got := reopenAndCollect(t, path, Options{})
	defer l2.Close()
	want := append(append([]Record{}, tail...), Record{Op: OpDelete, ID: 3})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("after rewrite replay = %v, want %v", got, want)
	}
}

func TestRewriteWithEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _ := reopenAndCollect(t, path, Options{})
	for i := 0; i < 3; i++ {
		if _, err := l.AppendNoSync(Record{Op: OpInsert, ID: uint64(i), Vec: []float32{1}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.RewriteWith(nil); err != nil {
		t.Fatal(err)
	}
	if l.Size() != 0 {
		t.Fatalf("size %d after empty rewrite", l.Size())
	}
	l.Close()
	l2, got := reopenAndCollect(t, path, Options{})
	defer l2.Close()
	if len(got) != 0 {
		t.Fatalf("replayed %d records after empty rewrite", len(got))
	}
}

func TestClosedLogRejectsUse(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _ := reopenAndCollect(t, path, Options{})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if _, err := l.AppendNoSync(Record{Op: OpDelete, ID: 0}); !errors.Is(err, ErrClosed) {
		t.Fatalf("append on closed log: %v", err)
	}
	if err := l.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("sync on closed log: %v", err)
	}
}
