package hilbert

// Quantizer maps real-valued vectors onto the integer grid a space-filling
// curve is defined over. The order ω of the curve decides the grid
// resolution: each dimension is divided into 2^ω equal cells (§3.1). The
// paper picks ω per dataset so that quantisation loses little information
// relative to the domain of the descriptor values (§3.4, Table 3).
type Quantizer struct {
	lo, hi []float32 // per-dimension domain
	scale  []float64 // (2^order - 1) / (hi - lo), 0 for degenerate dims
	order  int
	maxv   uint32
}

// NewQuantizer returns a Quantizer for the per-dimension domain [lo, hi]
// at the given curve order. Dimensions with hi <= lo map to cell 0.
func NewQuantizer(lo, hi []float32, order int) *Quantizer {
	if len(lo) != len(hi) {
		panic("hilbert: lo/hi length mismatch")
	}
	q := &Quantizer{
		lo:    lo,
		hi:    hi,
		scale: make([]float64, len(lo)),
		order: order,
		maxv:  maxCoord(order),
	}
	for d := range lo {
		if hi[d] > lo[d] {
			q.scale[d] = float64(q.maxv) / (float64(hi[d]) - float64(lo[d]))
		}
	}
	return q
}

// UniformQuantizer returns a Quantizer with the same [lo, hi] domain in
// every one of dims dimensions — convenient when the dataset documents a
// single domain of values (Table 4).
func UniformQuantizer(dims int, lo, hi float32, order int) *Quantizer {
	l := make([]float32, dims)
	h := make([]float32, dims)
	for d := 0; d < dims; d++ {
		l[d] = lo
		h[d] = hi
	}
	return NewQuantizer(l, h, order)
}

// Dims returns the vector dimensionality the quantizer accepts.
func (q *Quantizer) Dims() int { return len(q.lo) }

// Order returns the curve order the grid was built for.
func (q *Quantizer) Order() int { return q.order }

// Coords writes the grid cell of v (or of a dims-length slice of it) into
// dst and returns dst. Out-of-domain values are clamped: queries may fall
// outside the indexed domain and must still map onto the grid.
func (q *Quantizer) Coords(dst []uint32, v []float32) []uint32 {
	if len(v) != len(q.lo) {
		panic("hilbert: vector length mismatch")
	}
	if dst == nil {
		dst = make([]uint32, len(v))
	}
	for d, x := range v {
		if q.scale[d] == 0 || x <= q.lo[d] {
			dst[d] = 0
			continue
		}
		if x >= q.hi[d] {
			dst[d] = q.maxv
			continue
		}
		c := (float64(x) - float64(q.lo[d])) * q.scale[d]
		u := uint32(c + 0.5)
		if u > q.maxv {
			u = q.maxv
		}
		dst[d] = u
	}
	return dst
}

// Lo returns the per-dimension lower bounds (not a copy).
func (q *Quantizer) Lo() []float32 { return q.lo }

// Hi returns the per-dimension upper bounds (not a copy).
func (q *Quantizer) Hi() []float32 { return q.hi }
