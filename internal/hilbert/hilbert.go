// Package hilbert implements the Hilbert space-filling curve for arbitrary
// dimensionality and order, following the Butz algorithm [19] in John
// Skilling's compact transpose formulation ("Programming the Hilbert
// curve", AIP 2004), which is the standard modern restatement of Butz.
//
// HD-Index (§3.1) passes one Hilbert curve of order ω through each of the
// τ dimension partitions (η = ν/τ dimensions each). The single-dimensional
// position of an object's grid cell along the curve is its Hilbert key;
// the keys are what the RDB-trees index. Keys here are big-endian byte
// strings of ceil(η·ω/8) bytes so that bytes.Compare gives curve order —
// exactly the property a B+-tree needs.
//
// The package also provides a Z-order (Morton) curve with the same key
// format, used by the ablation benchmarks: the paper cites the Hilbert
// curve as the most appropriate space-filling curve for indexing [37],
// and the ablation quantifies that choice.
package hilbert

import "fmt"

// Curve maps points on a dims-dimensional grid with 2^order cells per side
// to keys along a space-filling curve and back. Implementations must be
// bijections from [0,2^order)^dims onto [0, 2^(dims·order)).
type Curve interface {
	// Dims returns the grid dimensionality η.
	Dims() int
	// Order returns the bits per dimension ω.
	Order() int
	// KeyLen returns the key size in bytes: ceil(dims·order/8).
	KeyLen() int
	// Encode appends the key of coords to dst and returns it.
	// Each coordinate must be < 2^order.
	Encode(dst []byte, coords []uint32) []byte
	// EncodeAll encodes a batch of points held row-major in coords
	// (stride uint32s apart, the first Dims() of each row being the
	// coordinates) into dst, KeyLen() bytes per point, overwriting
	// dst's prefix. It is Encode in a loop with the per-call scratch
	// and validation hoisted out — the bulk-construction fast path.
	EncodeAll(dst []byte, coords []uint32, stride int)
	// Decode writes the grid coordinates of key into coords.
	Decode(key []byte, coords []uint32)
}

// Hilbert is a Curve following the Hilbert space-filling curve.
type Hilbert struct {
	dims   int
	order  int
	keyLen int
}

// New returns a Hilbert curve over dims dimensions with the given order
// (bits per dimension, 1..32). The paper uses ω ∈ {8, 16, 32} (Table 3).
func New(dims, order int) (*Hilbert, error) {
	if dims < 1 {
		return nil, fmt.Errorf("hilbert: dims must be >= 1, got %d", dims)
	}
	if order < 1 || order > 32 {
		return nil, fmt.Errorf("hilbert: order must be in [1,32], got %d", order)
	}
	return &Hilbert{dims: dims, order: order, keyLen: (dims*order + 7) / 8}, nil
}

// MustNew is New for known-good parameters; it panics on error.
func MustNew(dims, order int) *Hilbert {
	h, err := New(dims, order)
	if err != nil {
		panic(err)
	}
	return h
}

// Dims returns the dimensionality of the curve.
func (h *Hilbert) Dims() int { return h.dims }

// Order returns the bits per dimension.
func (h *Hilbert) Order() int { return h.order }

// KeyLen returns the number of bytes in a key.
func (h *Hilbert) KeyLen() int { return h.keyLen }

// Encode appends the Hilbert key of coords to dst and returns the extended
// slice. len(coords) must equal Dims() and every coordinate must fit in
// Order() bits; violations panic, as they are always caller bugs.
func (h *Hilbert) Encode(dst []byte, coords []uint32) []byte {
	if len(coords) != h.dims {
		panic("hilbert: coordinate count mismatch")
	}
	x := make([]uint32, h.dims)
	maxv := maxCoord(h.order)
	for i, c := range coords {
		if c > maxv {
			panic("hilbert: coordinate exceeds order")
		}
		x[i] = c
	}
	axesToTranspose(x, h.order)
	return packTransposed(dst, x, h.dims, h.order)
}

// EncodeAll encodes len(coords)/stride points into dst (KeyLen() bytes
// each, overwritten in place). stride must be >= Dims(); row i's
// coordinates are coords[i*stride : i*stride+Dims()]. Unlike Encode,
// which allocates its transpose scratch per call, the scratch here is
// hoisted out of the loop — per-point cost is pure transform + pack.
func (h *Hilbert) EncodeAll(dst []byte, coords []uint32, stride int) {
	if stride < h.dims {
		panic("hilbert: stride below dimensionality")
	}
	n := len(coords) / stride
	if len(dst) < n*h.keyLen {
		panic("hilbert: destination too short")
	}
	x := make([]uint32, h.dims)
	maxv := maxCoord(h.order)
	for i := 0; i < n; i++ {
		row := coords[i*stride : i*stride+h.dims]
		for d, c := range row {
			if c > maxv {
				panic("hilbert: coordinate exceeds order")
			}
			x[d] = c
		}
		axesToTranspose(x, h.order)
		packTransposedInto(dst[i*h.keyLen:(i+1)*h.keyLen], x, h.dims, h.order)
	}
}

// Decode writes the grid coordinates of key into coords (length Dims()).
func (h *Hilbert) Decode(key []byte, coords []uint32) {
	if len(coords) != h.dims {
		panic("hilbert: coordinate count mismatch")
	}
	if len(key) != h.keyLen {
		panic("hilbert: key length mismatch")
	}
	unpackTransposed(key, coords, h.dims, h.order)
	transposeToAxes(coords, h.order)
}

func maxCoord(order int) uint32 {
	if order == 32 {
		return ^uint32(0)
	}
	return (1 << uint(order)) - 1
}

// axesToTranspose converts grid coordinates in x (b bits each) into the
// "transposed" Hilbert index representation, in place. Skilling 2004.
// The inner loop is branchless: on random data the original's 50/50
// branch mispredicts constantly, and this is the hottest loop of bulk
// construction (b·n iterations per point).
func axesToTranspose(x []uint32, b int) {
	n := len(x)
	var q, p, t uint32
	// Inverse undo excess work. Per element, either x[0] ^= p (bit q of
	// x[i] set) or x[0] and x[i] both ^= (x[0]^x[i])&p; the mask m
	// selects between the two without a branch.
	for shift := b - 1; shift > 0; shift-- {
		q = 1 << uint(shift)
		p = q - 1
		for i := 0; i < n; i++ {
			m := -((x[i] >> uint(shift)) & 1) // all-ones iff bit q set
			t = (x[0] ^ x[i]) & p &^ m
			x[0] ^= (p & m) | t
			x[i] ^= t
		}
	}
	// Gray encode.
	for i := 1; i < n; i++ {
		x[i] ^= x[i-1]
	}
	t = 0
	for q = 1 << uint(b-1); q > 1; q >>= 1 {
		if x[n-1]&q != 0 {
			t ^= q - 1
		}
	}
	for i := 0; i < n; i++ {
		x[i] ^= t
	}
}

// transposeToAxes inverts axesToTranspose, in place.
func transposeToAxes(x []uint32, b int) {
	n := len(x)
	var q, p, t uint32
	// Gray decode by H ^ (H/2).
	t = x[n-1] >> 1
	for i := n - 1; i > 0; i-- {
		x[i] ^= x[i-1]
	}
	x[0] ^= t
	// Undo excess work.
	for q = 2; q != 1<<uint(b); q <<= 1 {
		p = q - 1
		for i := n - 1; i >= 0; i-- {
			if x[i]&q != 0 {
				x[0] ^= p
			} else {
				t = (x[0] ^ x[i]) & p
				x[0] ^= t
				x[i] ^= t
			}
		}
	}
}

// packTransposed serialises the transposed representation into the key:
// the bit stream cycles over dimensions fastest, bit-planes from most to
// least significant — the interleaving that turns the transpose into the
// integer Hilbert index. The stream is right-aligned in the key (front
// padding bits are zero) so that the big-endian byte string *is* the
// index numerically, not merely order-equivalent.
func packTransposed(dst []byte, x []uint32, n, b int) []byte {
	keyLen := (n*b + 7) / 8
	start := len(dst)
	for i := 0; i < keyLen; i++ {
		dst = append(dst, 0)
	}
	packTransposedInto(dst[start:], x, n, b)
	return dst
}

// packTransposedInto is packTransposed writing into an existing
// keyLen-byte slice. Bits stream MSB-first through a byte accumulator
// that is stored once full — every output byte is written exactly once
// (so reused arenas need no pre-clearing), and the per-bit work is a
// shift-or instead of an indexed read-modify-write.
func packTransposedInto(out []byte, x []uint32, n, b int) {
	keyLen := (n*b + 7) / 8
	acc := byte(0)
	nb := keyLen*8 - n*b // front padding: 0..7 leading zero bits
	oi := 0
	for j := b - 1; j >= 0; j-- {
		for i := 0; i < n; i++ {
			acc = acc<<1 | byte((x[i]>>uint(j))&1)
			nb++
			if nb == 8 {
				out[oi] = acc
				oi++
				acc, nb = 0, 0
			}
		}
	}
}

// unpackTransposed inverts packTransposed.
func unpackTransposed(key []byte, x []uint32, n, b int) {
	for i := range x {
		x[i] = 0
	}
	keyLen := (n*b + 7) / 8
	bit := keyLen*8 - n*b
	for j := b - 1; j >= 0; j-- {
		for i := 0; i < n; i++ {
			if key[bit>>3]&(0x80>>uint(bit&7)) != 0 {
				x[i] |= 1 << uint(j)
			}
			bit++
		}
	}
}
