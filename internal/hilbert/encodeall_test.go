package hilbert

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestEncodeAllMatchesEncode pins the batch encoder to the per-point
// one, bit for bit, across both curves, several geometries, and a
// stride wider than the dimensionality.
func TestEncodeAllMatchesEncode(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cases := []struct{ dims, order, stride int }{
		{2, 4, 2},
		{16, 8, 16},
		{16, 8, 20}, // stride > dims: trailing lanes must be ignored
		{8, 16, 8},
		{3, 5, 3}, // key not a whole number of bytes
	}
	curves := func(dims, order int) map[string]Curve {
		return map[string]Curve{
			"hilbert": MustNew(dims, order),
			"zorder": func() Curve {
				z, err := NewZOrder(dims, order)
				if err != nil {
					t.Fatal(err)
				}
				return z
			}(),
		}
	}
	for _, c := range cases {
		for name, cv := range curves(c.dims, c.order) {
			const n = 200
			maxv := maxCoord(c.order)
			coords := make([]uint32, n*c.stride)
			for i := range coords {
				coords[i] = rng.Uint32() % (maxv + 1)
			}
			// Dirty destination: EncodeAll must fully overwrite.
			dst := make([]byte, n*cv.KeyLen())
			for i := range dst {
				dst[i] = 0xAA
			}
			cv.EncodeAll(dst, coords, c.stride)
			for i := 0; i < n; i++ {
				want := cv.Encode(nil, coords[i*c.stride:i*c.stride+c.dims])
				got := dst[i*cv.KeyLen() : (i+1)*cv.KeyLen()]
				if !bytes.Equal(got, want) {
					t.Fatalf("%s dims=%d order=%d stride=%d point %d: EncodeAll = %x, Encode = %x",
						name, c.dims, c.order, c.stride, i, got, want)
				}
			}
		}
	}
}

func TestEncodeAllPanics(t *testing.T) {
	h := MustNew(2, 4)
	mustPanic(t, "short dst", func() { h.EncodeAll(make([]byte, 0), make([]uint32, 2), 2) })
	mustPanic(t, "stride < dims", func() { h.EncodeAll(make([]byte, 8), make([]uint32, 2), 1) })
	mustPanic(t, "coord range", func() { h.EncodeAll(make([]byte, 1), []uint32{16, 0}, 2) })
	z, _ := NewZOrder(2, 4)
	mustPanic(t, "zorder coord range", func() { z.EncodeAll(make([]byte, 1), []uint32{16, 0}, 2) })
	mustPanic(t, "zorder stride", func() { z.EncodeAll(make([]byte, 8), make([]uint32, 2), 1) })
}

func BenchmarkEncodeAll128(b *testing.B) {
	h := MustNew(16, 8)
	const n = 1000
	coords := make([]uint32, n*16)
	rng := rand.New(rand.NewSource(8))
	for i := range coords {
		coords[i] = rng.Uint32() % 256
	}
	dst := make([]byte, n*h.KeyLen())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.EncodeAll(dst, coords, 16)
	}
}

func BenchmarkEncodePerPoint128(b *testing.B) {
	h := MustNew(16, 8)
	const n = 1000
	coords := make([]uint32, n*16)
	rng := rand.New(rand.NewSource(8))
	for i := range coords {
		coords[i] = rng.Uint32() % 256
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for p := 0; p < n; p++ {
			_ = h.Encode(nil, coords[p*16:(p+1)*16])
		}
	}
}
