package hilbert

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestZOrderValidation(t *testing.T) {
	if _, err := NewZOrder(0, 4); err == nil {
		t.Error("dims=0 must fail")
	}
	if _, err := NewZOrder(2, 0); err == nil {
		t.Error("order=0 must fail")
	}
	if _, err := NewZOrder(2, 33); err == nil {
		t.Error("order=33 must fail")
	}
}

// Z-order of 2D (x,y) with order 2: key is bit-interleaved with x first.
func TestZOrderKnown2D(t *testing.T) {
	z, err := NewZOrder(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	// coords (x=3, y=0) -> bits x=11, y=00 -> interleave x1 y1 x0 y0 = 1010 = 10
	key := z.Encode(nil, []uint32{3, 0})
	if got := keyToUint(key); got != 10 {
		t.Errorf("z(3,0) = %d, want 10", got)
	}
	// coords (1,1) -> x=01 y=01 -> 0011 = 3
	key = z.Encode(nil, []uint32{1, 1})
	if got := keyToUint(key); got != 3 {
		t.Errorf("z(1,1) = %d, want 3", got)
	}
}

func TestQuickZOrderRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dims := rng.Intn(32) + 1
		order := rng.Intn(32) + 1
		z, err := NewZOrder(dims, order)
		if err != nil {
			return false
		}
		coords := make([]uint32, dims)
		maxv := maxCoord(order)
		for i := range coords {
			coords[i] = rng.Uint32() & maxv
		}
		key := z.Encode(nil, coords)
		back := make([]uint32, dims)
		z.Decode(key, back)
		for i := range back {
			if back[i] != coords[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCurveInterface(t *testing.T) {
	var _ Curve = MustNew(2, 2)
	z, _ := NewZOrder(2, 2)
	var _ Curve = z
}
