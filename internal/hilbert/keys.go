package hilbert

import "bytes"

// Key helpers. Hilbert keys are unsigned big-endian integers serialised as
// fixed-width byte strings; the α-candidate retrieval (§4.1) walks leaf
// entries outward from the query position and repeatedly needs to know
// which of two keys lies numerically closer to the query key.

// KeyDelta writes |a - b| into dst (all three must have equal length,
// dst may alias neither input) treating the keys as big-endian unsigned
// integers, and returns dst.
func KeyDelta(dst, a, b []byte) []byte {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("hilbert: key length mismatch")
	}
	hi, lo := a, b
	if bytes.Compare(a, b) < 0 {
		hi, lo = b, a
	}
	borrow := 0
	for i := len(a) - 1; i >= 0; i-- {
		d := int(hi[i]) - int(lo[i]) - borrow
		if d < 0 {
			d += 256
			borrow = 1
		} else {
			borrow = 0
		}
		dst[i] = byte(d)
	}
	return dst
}

// CloserKey reports which of a or b is numerically closer to q:
// -1 if a is strictly closer, +1 if b is strictly closer, 0 on a tie.
// All keys must have the same length.
func CloserKey(q, a, b []byte) int {
	da := make([]byte, len(q))
	db := make([]byte, len(q))
	KeyDelta(da, q, a)
	KeyDelta(db, q, b)
	return bytes.Compare(da, db)
}
