package hilbert

import (
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"
)

// keyToUint converts a short key (≤ 8 bytes) to an integer for readability.
func keyToUint(key []byte) uint64 {
	var buf [8]byte
	copy(buf[8-len(key):], key)
	return binary.BigEndian.Uint64(buf[:])
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 4); err == nil {
		t.Error("dims=0 must fail")
	}
	if _, err := New(2, 0); err == nil {
		t.Error("order=0 must fail")
	}
	if _, err := New(2, 33); err == nil {
		t.Error("order=33 must fail")
	}
	if _, err := New(16, 8); err != nil {
		t.Errorf("valid params failed: %v", err)
	}
}

func TestKeyLen(t *testing.T) {
	cases := []struct{ dims, order, want int }{
		{16, 8, 16},  // SIFT per Table 3
		{16, 32, 64}, // Yorck
		{64, 32, 256},
		{24, 32, 96},
		{37, 16, 74},
		{10, 32, 40},
		{3, 3, 2}, // 9 bits -> 2 bytes
	}
	for _, c := range cases {
		h := MustNew(c.dims, c.order)
		if h.KeyLen() != c.want {
			t.Errorf("KeyLen(%d,%d) = %d, want %d", c.dims, c.order, h.KeyLen(), c.want)
		}
	}
}

// Exhaustive check for small curves: encoding is a bijection onto
// [0, 2^(dims*order)) and consecutive keys are grid neighbours differing
// by exactly 1 in exactly one dimension (the Hilbert unit-step property
// that underlies the locality argument of §3.1).
func TestExhaustiveBijectionAndUnitStep(t *testing.T) {
	cases := []struct{ dims, order int }{
		{2, 1}, {2, 2}, {2, 3}, {2, 4}, {3, 2}, {3, 3}, {4, 2}, {5, 2},
	}
	for _, c := range cases {
		h := MustNew(c.dims, c.order)
		total := uint64(1) << uint(c.dims*c.order)
		side := uint32(1) << uint(c.order)

		// Enumerate all grid cells, encode, record cell per key.
		cells := make([][]uint32, total)
		coords := make([]uint32, c.dims)
		var walk func(d int)
		var count uint64
		walk = func(d int) {
			if d == c.dims {
				cp := make([]uint32, c.dims)
				copy(cp, coords)
				key := h.Encode(nil, cp)
				k := keyToUint(key)
				if k >= total {
					t.Fatalf("(%d,%d) key %d out of range", c.dims, c.order, k)
				}
				if cells[k] != nil {
					t.Fatalf("(%d,%d) duplicate key %d", c.dims, c.order, k)
				}
				cells[k] = cp
				// Round trip through Decode.
				back := make([]uint32, c.dims)
				h.Decode(key, back)
				for i := range back {
					if back[i] != cp[i] {
						t.Fatalf("(%d,%d) decode(%d) = %v, want %v", c.dims, c.order, k, back, cp)
					}
				}
				count++
				return
			}
			for v := uint32(0); v < side; v++ {
				coords[d] = v
				walk(d + 1)
			}
		}
		walk(0)
		if count != total {
			t.Fatalf("(%d,%d) visited %d cells, want %d", c.dims, c.order, count, total)
		}
		// Unit-step property.
		for k := uint64(1); k < total; k++ {
			a, b := cells[k-1], cells[k]
			diffs, manhattan := 0, uint32(0)
			for i := range a {
				if a[i] != b[i] {
					diffs++
					d := a[i] - b[i]
					if b[i] > a[i] {
						d = b[i] - a[i]
					}
					manhattan += d
				}
			}
			if diffs != 1 || manhattan != 1 {
				t.Fatalf("(%d,%d) step %d->%d not unit: %v -> %v", c.dims, c.order, k-1, k, a, b)
			}
		}
	}
}

// Property: Decode inverts Encode for random high-dimensional inputs at
// paper-scale parameters (η up to 64, ω up to 32).
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dims := rng.Intn(64) + 1
		order := rng.Intn(32) + 1
		h := MustNew(dims, order)
		coords := make([]uint32, dims)
		maxv := maxCoord(order)
		for i := range coords {
			coords[i] = rng.Uint32() & maxv
		}
		key := h.Encode(nil, coords)
		if len(key) != h.KeyLen() {
			return false
		}
		back := make([]uint32, dims)
		h.Decode(key, back)
		for i := range back {
			if back[i] != coords[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// The first cell of the curve is always the origin and the curve starts
// at key 0.
func TestOriginIsKeyZero(t *testing.T) {
	for _, c := range []struct{ dims, order int }{{2, 4}, {8, 8}, {16, 8}} {
		h := MustNew(c.dims, c.order)
		key := h.Encode(nil, make([]uint32, c.dims))
		for _, b := range key {
			if b != 0 {
				t.Fatalf("(%d,%d) origin key = %x, want all-zero", c.dims, c.order, key)
			}
		}
	}
}

func TestEncodePanics(t *testing.T) {
	h := MustNew(2, 4)
	mustPanic(t, "coord count", func() { h.Encode(nil, []uint32{1}) })
	mustPanic(t, "coord range", func() { h.Encode(nil, []uint32{16, 0}) })
	mustPanic(t, "decode key len", func() { h.Decode([]byte{0, 0}, make([]uint32, 2)) })
	mustPanic(t, "decode coord count", func() { h.Decode([]byte{0}, make([]uint32, 1)) })
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

func TestEncodeAppends(t *testing.T) {
	h := MustNew(2, 2)
	prefix := []byte{0xAA}
	key := h.Encode(prefix, []uint32{1, 1})
	if len(key) != 1+h.KeyLen() || key[0] != 0xAA {
		t.Fatalf("Encode must append, got %x", key)
	}
}

// Locality smoke test: points close in space get keys that are closer on
// average than points far apart. This is statistical, so use a fixed seed
// and a generous margin.
func TestLocalityStatistical(t *testing.T) {
	h := MustNew(4, 8)
	rng := rand.New(rand.NewSource(42))
	var nearSum, farSum float64
	n := 300
	for i := 0; i < n; i++ {
		p := make([]uint32, 4)
		for d := range p {
			p[d] = uint32(rng.Intn(250)) + 2
		}
		near := make([]uint32, 4)
		copy(near, p)
		near[rng.Intn(4)]++ // grid neighbour
		far := make([]uint32, 4)
		for d := range far {
			far[d] = uint32(rng.Intn(256))
		}
		kp := h.Encode(nil, p)
		kn := h.Encode(nil, near)
		kf := h.Encode(nil, far)
		d1 := make([]byte, len(kp))
		KeyDelta(d1, kp, kn)
		nearSum += float64(keyToUint(d1))
		KeyDelta(d1, kp, kf)
		farSum += float64(keyToUint(d1))
	}
	if nearSum >= farSum {
		t.Errorf("near key distance sum %g >= far sum %g; locality broken", nearSum, farSum)
	}
}
