package hilbert

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQuantizerBasics(t *testing.T) {
	q := UniformQuantizer(2, 0, 1, 8)
	c := q.Coords(nil, []float32{0, 1})
	if c[0] != 0 || c[1] != 255 {
		t.Errorf("bounds -> %v, want [0 255]", c)
	}
	c = q.Coords(c, []float32{0.5, 0.25})
	if c[0] != 128 || c[1] != 64 {
		t.Errorf("midpoints -> %v, want [128 64]", c)
	}
}

func TestQuantizerClamps(t *testing.T) {
	q := UniformQuantizer(2, 0, 255, 8)
	c := q.Coords(nil, []float32{-10, 300})
	if c[0] != 0 || c[1] != 255 {
		t.Errorf("clamp -> %v", c)
	}
}

func TestQuantizerDegenerateDim(t *testing.T) {
	q := NewQuantizer([]float32{0, 5}, []float32{1, 5}, 4)
	c := q.Coords(nil, []float32{0.5, 5})
	if c[1] != 0 {
		t.Errorf("degenerate dim -> %v, want cell 0", c[1])
	}
}

func TestQuantizerMismatchPanics(t *testing.T) {
	mustPanic(t, "lo/hi", func() { NewQuantizer([]float32{0}, []float32{1, 2}, 4) })
	q := UniformQuantizer(2, 0, 1, 4)
	mustPanic(t, "vec len", func() { q.Coords(nil, []float32{1}) })
}

// Property: quantisation is monotone per dimension, so closer values can
// never be mapped to farther-apart cells in that dimension.
func TestQuickQuantizerMonotone(t *testing.T) {
	q := UniformQuantizer(1, -100, 100, 16)
	f := func(a, b float64) bool {
		av := float32(a - float64(int64(a/1e3))*1e3) // keep finite-ish
		bv := float32(b - float64(int64(b/1e3))*1e3)
		ca := q.Coords(nil, []float32{av})
		cb := q.Coords(nil, []float32{bv})
		if av <= bv {
			return ca[0] <= cb[0]
		}
		return ca[0] >= cb[0]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestKeyDelta(t *testing.T) {
	a := []byte{0x01, 0x00}
	b := []byte{0x00, 0xFF}
	d := make([]byte, 2)
	KeyDelta(d, a, b)
	if d[0] != 0 || d[1] != 1 {
		t.Errorf("delta = %x, want 0001", d)
	}
	// symmetric
	KeyDelta(d, b, a)
	if d[0] != 0 || d[1] != 1 {
		t.Errorf("delta sym = %x, want 0001", d)
	}
	KeyDelta(d, a, a)
	if !bytes.Equal(d, []byte{0, 0}) {
		t.Errorf("self delta = %x", d)
	}
}

func TestCloserKey(t *testing.T) {
	q := []byte{0x10}
	if CloserKey(q, []byte{0x11}, []byte{0x20}) != -1 {
		t.Error("0x11 should be closer to 0x10 than 0x20")
	}
	if CloserKey(q, []byte{0x30}, []byte{0x0F}) != 1 {
		t.Error("0x0F should be closer to 0x10 than 0x30")
	}
	if CloserKey(q, []byte{0x0E}, []byte{0x12}) != 0 {
		t.Error("equidistant keys should tie")
	}
}

// Property: KeyDelta agrees with integer arithmetic for 8-byte keys.
func TestQuickKeyDeltaInteger(t *testing.T) {
	f := func(x, y uint64) bool {
		var a, b, d [8]byte
		for i := 0; i < 8; i++ {
			a[7-i] = byte(x >> uint(8*i))
			b[7-i] = byte(y >> uint(8*i))
		}
		KeyDelta(d[:], a[:], b[:])
		want := x - y
		if y > x {
			want = y - x
		}
		return keyToUint(d[:]) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncode16x8(b *testing.B) {
	h := MustNew(16, 8)
	rng := rand.New(rand.NewSource(1))
	coords := make([]uint32, 16)
	for i := range coords {
		coords[i] = uint32(rng.Intn(256))
	}
	dst := make([]byte, 0, h.KeyLen())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = h.Encode(dst[:0], coords)
	}
}

func BenchmarkEncode64x32(b *testing.B) {
	h := MustNew(64, 32)
	rng := rand.New(rand.NewSource(1))
	coords := make([]uint32, 64)
	for i := range coords {
		coords[i] = rng.Uint32()
	}
	dst := make([]byte, 0, h.KeyLen())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = h.Encode(dst[:0], coords)
	}
}
