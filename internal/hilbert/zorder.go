package hilbert

import "fmt"

// ZOrder is a Curve following the Z-order (Morton) space-filling curve:
// a plain bit interleaving with no rotation. It shares the Hilbert key
// format so the two curves are drop-in interchangeable in RDB-trees;
// the ablation benchmarks use it to quantify the paper's choice of the
// Hilbert curve (§2.2.3, [37]).
type ZOrder struct {
	dims   int
	order  int
	keyLen int
}

// NewZOrder returns a Z-order curve with the given dimensionality and order.
func NewZOrder(dims, order int) (*ZOrder, error) {
	if dims < 1 {
		return nil, fmt.Errorf("zorder: dims must be >= 1, got %d", dims)
	}
	if order < 1 || order > 32 {
		return nil, fmt.Errorf("zorder: order must be in [1,32], got %d", order)
	}
	return &ZOrder{dims: dims, order: order, keyLen: (dims*order + 7) / 8}, nil
}

// Dims returns the dimensionality of the curve.
func (z *ZOrder) Dims() int { return z.dims }

// Order returns the bits per dimension.
func (z *ZOrder) Order() int { return z.order }

// KeyLen returns the number of bytes in a key.
func (z *ZOrder) KeyLen() int { return z.keyLen }

// Encode appends the Morton key of coords to dst and returns it.
func (z *ZOrder) Encode(dst []byte, coords []uint32) []byte {
	if len(coords) != z.dims {
		panic("zorder: coordinate count mismatch")
	}
	maxv := maxCoord(z.order)
	for _, c := range coords {
		if c > maxv {
			panic("zorder: coordinate exceeds order")
		}
	}
	return packTransposed(dst, coords, z.dims, z.order)
}

// EncodeAll encodes len(coords)/stride points into dst, KeyLen() bytes
// each; see Curve.EncodeAll. Morton keys need no transpose, so the
// batch form only hoists validation and the append bookkeeping.
func (z *ZOrder) EncodeAll(dst []byte, coords []uint32, stride int) {
	if stride < z.dims {
		panic("zorder: stride below dimensionality")
	}
	n := len(coords) / stride
	if len(dst) < n*z.keyLen {
		panic("zorder: destination too short")
	}
	maxv := maxCoord(z.order)
	for i := 0; i < n; i++ {
		row := coords[i*stride : i*stride+z.dims]
		for _, c := range row {
			if c > maxv {
				panic("zorder: coordinate exceeds order")
			}
		}
		packTransposedInto(dst[i*z.keyLen:(i+1)*z.keyLen], row, z.dims, z.order)
	}
}

// Decode writes the grid coordinates of key into coords.
func (z *ZOrder) Decode(key []byte, coords []uint32) {
	if len(coords) != z.dims {
		panic("zorder: coordinate count mismatch")
	}
	if len(key) != z.keyLen {
		panic("zorder: key length mismatch")
	}
	unpackTransposed(key, coords, z.dims, z.order)
}
