// Package pager implements the disk substrate of the reproduction: a
// page-structured file with a fixed page size (4096 bytes in all of the
// paper's experiments, §5 "Parameters"), an LRU buffer pool with pin
// counts, and I/O statistics.
//
// The statistics matter beyond bookkeeping: §4.4.1 analyses HD-Index by
// the number of random disk accesses, and §5.2.5 argues the Ptolemaic
// filter is free in I/O terms. The counters here are what let the
// benchmarks report those numbers on any hardware.
package pager

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"sync"
)

// DefaultPageSize is the disk page size used throughout the paper.
const DefaultPageSize = 4096

const (
	magic         = "HDIXPAGE"
	version       = 1
	headerLen     = 36 // magic(8) + version(4) + pageSize(4) + pageCount(8) + checksum(8) + metaLen(4)
	offVersion    = 8
	offPageSize   = 12
	offPageCount  = 16
	offChecksum   = 24
	offMetaLen    = 32
	offMeta       = 36
	defaultFrames = 256
)

// Errors returned by the pager.
var (
	ErrBadMagic     = errors.New("pager: not a pager file (bad magic)")
	ErrBadVersion   = errors.New("pager: unsupported file version")
	ErrBadChecksum  = errors.New("pager: superblock checksum mismatch")
	ErrPageRange    = errors.New("pager: page id out of range")
	ErrClosed       = errors.New("pager: file is closed")
	ErrMetaTooLarge = errors.New("pager: metadata exceeds superblock capacity")
)

// PageID identifies a page within a file. Page 0 is the superblock and is
// never handed out.
type PageID uint64

// Stats counts logical and physical page traffic since the last reset.
type Stats struct {
	Reads  uint64 // physical page reads from disk
	Writes uint64 // physical page writes to disk
	Hits   uint64 // buffer pool hits
	Misses uint64 // buffer pool misses (each implies one Read)
	Allocs uint64 // pages allocated
}

// Options configures Open.
type Options struct {
	PageSize   int  // bytes per page; DefaultPageSize if zero
	PoolPages  int  // buffer pool capacity in pages; 256 if zero
	Create     bool // create (truncate) instead of opening existing
	ReadOnly   bool // open without write permission
	DisableLRU bool // bypass caching entirely: every Get is a disk read (paper's "caching off" mode)
}

// Page is a pinned page in the buffer pool. Callers must Release it when
// done; writes must be followed by MarkDirty before Release.
type Page struct {
	ID    PageID
	Data  []byte
	frame *frame
	pgr   *Pager
}

// MarkDirty records that Data was modified and must reach disk.
func (p *Page) MarkDirty() {
	p.pgr.mu.Lock()
	p.frame.dirty = true
	p.pgr.mu.Unlock()
}

// Release unpins the page. The Page must not be used afterwards.
func (p *Page) Release() {
	p.pgr.release(p.frame)
}

type frame struct {
	id    PageID
	data  []byte
	pins  int
	dirty bool
	prev  *frame // LRU list of unpinned frames
	next  *frame
}

// Pager manages one page file. It is safe for concurrent use.
type Pager struct {
	mu        sync.Mutex
	f         *os.File
	pageSize  int
	poolCap   int
	noCache   bool
	readOnly  bool
	closed    bool
	pageCount uint64 // includes superblock
	meta      []byte
	frames    map[PageID]*frame
	lruHead   *frame // most recently used unpinned
	lruTail   *frame // least recently used unpinned
	lruLen    int
	stats     Stats
}

// Open creates or opens the page file at path.
func Open(path string, opts Options) (*Pager, error) {
	if opts.PageSize == 0 {
		opts.PageSize = DefaultPageSize
	}
	if opts.PageSize < headerLen+8 {
		return nil, fmt.Errorf("pager: page size %d too small", opts.PageSize)
	}
	if opts.PoolPages <= 0 {
		opts.PoolPages = defaultFrames
	}
	flag := os.O_RDWR
	if opts.ReadOnly {
		flag = os.O_RDONLY
	}
	if opts.Create {
		flag |= os.O_CREATE | os.O_TRUNC
	}
	f, err := os.OpenFile(path, flag, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pager: open %s: %w", path, err)
	}
	p := &Pager{
		f:        f,
		pageSize: opts.PageSize,
		poolCap:  opts.PoolPages,
		noCache:  opts.DisableLRU,
		readOnly: opts.ReadOnly,
		frames:   make(map[PageID]*frame),
	}
	if opts.Create {
		p.pageCount = 1
		if err := p.writeSuperblock(); err != nil {
			f.Close()
			return nil, err
		}
		return p, nil
	}
	if err := p.readSuperblock(); err != nil {
		f.Close()
		return nil, err
	}
	return p, nil
}

func (p *Pager) writeSuperblock() error {
	buf := make([]byte, p.pageSize)
	copy(buf, magic)
	binary.BigEndian.PutUint32(buf[offVersion:], version)
	binary.BigEndian.PutUint32(buf[offPageSize:], uint32(p.pageSize))
	binary.BigEndian.PutUint64(buf[offPageCount:], p.pageCount)
	binary.BigEndian.PutUint32(buf[offMetaLen:], uint32(len(p.meta)))
	copy(buf[offMeta:], p.meta)
	binary.BigEndian.PutUint64(buf[offChecksum:], superChecksum(buf))
	if _, err := p.f.WriteAt(buf, 0); err != nil {
		return fmt.Errorf("pager: write superblock: %w", err)
	}
	p.stats.Writes++
	return nil
}

func (p *Pager) readSuperblock() error {
	// Read the fixed header first: the on-disk page size wins over the
	// configured one, so callers need not know it when reopening.
	hdr := make([]byte, headerLen)
	if _, err := p.f.ReadAt(hdr, 0); err != nil {
		return fmt.Errorf("pager: read superblock: %w", err)
	}
	if string(hdr[:8]) != magic {
		return ErrBadMagic
	}
	if v := binary.BigEndian.Uint32(hdr[offVersion:]); v != version {
		return fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	ps := int(binary.BigEndian.Uint32(hdr[offPageSize:]))
	if ps < headerLen+8 {
		return ErrBadChecksum
	}
	p.pageSize = ps
	buf := make([]byte, ps)
	if _, err := p.f.ReadAt(buf, 0); err != nil {
		return fmt.Errorf("pager: read superblock: %w", err)
	}
	p.stats.Reads++
	want := binary.BigEndian.Uint64(buf[offChecksum:])
	if superChecksum(buf) != want {
		return ErrBadChecksum
	}
	p.pageCount = binary.BigEndian.Uint64(buf[offPageCount:])
	metaLen := int(binary.BigEndian.Uint32(buf[offMetaLen:]))
	if metaLen > p.pageSize-offMeta {
		return ErrBadChecksum
	}
	p.meta = append([]byte(nil), buf[offMeta:offMeta+metaLen]...)
	return nil
}

// superChecksum hashes the superblock with the checksum field zeroed.
func superChecksum(buf []byte) uint64 {
	h := fnv.New64a()
	h.Write(buf[:offChecksum])
	var zero [8]byte
	h.Write(zero[:])
	h.Write(buf[offChecksum+8:])
	return h.Sum64()
}

// PageSize returns the page size in bytes.
func (p *Pager) PageSize() int { return p.pageSize }

// PageCount returns the number of pages, including the superblock.
func (p *Pager) PageCount() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.pageCount
}

// Meta returns a copy of the user metadata stored in the superblock.
func (p *Pager) Meta() []byte {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]byte(nil), p.meta...)
}

// SetMeta stores user metadata (tree headers etc.) in the superblock.
// It is persisted on the next Flush or Close.
func (p *Pager) SetMeta(meta []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(meta) > p.pageSize-offMeta {
		return ErrMetaTooLarge
	}
	p.meta = append([]byte(nil), meta...)
	return nil
}

// Stats returns a snapshot of the I/O counters.
func (p *Pager) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// ResetStats zeroes the I/O counters; benchmarks call it per query batch.
func (p *Pager) ResetStats() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats = Stats{}
}

// Alloc appends a zeroed page to the file and returns it pinned.
func (p *Pager) Alloc() (*Page, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, ErrClosed
	}
	if p.readOnly {
		return nil, errors.New("pager: alloc on read-only file")
	}
	id := PageID(p.pageCount)
	p.pageCount++
	p.stats.Allocs++
	fr := &frame{id: id, data: make([]byte, p.pageSize), pins: 1, dirty: true}
	if err := p.admit(fr); err != nil {
		return nil, err
	}
	return &Page{ID: id, Data: fr.data, frame: fr, pgr: p}, nil
}

// Get returns the page with the given id, pinned.
func (p *Pager) Get(id PageID) (*Page, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, ErrClosed
	}
	if id == 0 || uint64(id) >= p.pageCount {
		return nil, fmt.Errorf("%w: %d (have %d)", ErrPageRange, id, p.pageCount)
	}
	if fr, ok := p.frames[id]; ok {
		p.stats.Hits++
		if fr.pins == 0 {
			p.lruRemove(fr)
		}
		fr.pins++
		return &Page{ID: id, Data: fr.data, frame: fr, pgr: p}, nil
	}
	p.stats.Misses++
	data := make([]byte, p.pageSize)
	if _, err := p.f.ReadAt(data, int64(uint64(id))*int64(p.pageSize)); err != nil {
		return nil, fmt.Errorf("pager: read page %d: %w", id, err)
	}
	p.stats.Reads++
	fr := &frame{id: id, data: data, pins: 1}
	if err := p.admit(fr); err != nil {
		return nil, err
	}
	return &Page{ID: id, Data: fr.data, frame: fr, pgr: p}, nil
}

// admit inserts fr into the pool, evicting the LRU unpinned frame if the
// pool is at capacity. Caller holds p.mu.
func (p *Pager) admit(fr *frame) error {
	for len(p.frames) >= p.poolCap && p.lruLen > 0 {
		victim := p.lruTail
		p.lruRemove(victim)
		delete(p.frames, victim.id)
		if victim.dirty {
			if err := p.writeFrame(victim); err != nil {
				return err
			}
		}
	}
	p.frames[fr.id] = fr
	return nil
}

func (p *Pager) writeFrame(fr *frame) error {
	if _, err := p.f.WriteAt(fr.data, int64(uint64(fr.id))*int64(p.pageSize)); err != nil {
		return fmt.Errorf("pager: write page %d: %w", fr.id, err)
	}
	fr.dirty = false
	p.stats.Writes++
	return nil
}

func (p *Pager) release(fr *frame) {
	p.mu.Lock()
	defer p.mu.Unlock()
	fr.pins--
	if fr.pins > 0 {
		return
	}
	if p.noCache {
		// Caching off (§5 "for fairness, we turn off buffering and
		// caching"): drop the frame immediately, writing it if dirty.
		delete(p.frames, fr.id)
		if fr.dirty {
			p.writeFrame(fr) // error surfaces at Flush/Close via re-write
		}
		return
	}
	p.lruPushFront(fr)
}

func (p *Pager) lruPushFront(fr *frame) {
	fr.prev = nil
	fr.next = p.lruHead
	if p.lruHead != nil {
		p.lruHead.prev = fr
	}
	p.lruHead = fr
	if p.lruTail == nil {
		p.lruTail = fr
	}
	p.lruLen++
}

func (p *Pager) lruRemove(fr *frame) {
	if fr.prev != nil {
		fr.prev.next = fr.next
	} else {
		p.lruHead = fr.next
	}
	if fr.next != nil {
		fr.next.prev = fr.prev
	} else {
		p.lruTail = fr.prev
	}
	fr.prev, fr.next = nil, nil
	p.lruLen--
}

// Flush writes all dirty pages and the superblock to disk.
func (p *Pager) Flush() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	if p.readOnly {
		return nil
	}
	for _, fr := range p.frames {
		if fr.dirty {
			if err := p.writeFrame(fr); err != nil {
				return err
			}
		}
	}
	return p.writeSuperblock()
}

// Sync flushes and fsyncs the file.
func (p *Pager) Sync() error {
	if err := p.Flush(); err != nil {
		return err
	}
	return p.f.Sync()
}

// Close flushes and closes the file. The pager is unusable afterwards.
func (p *Pager) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	var err error
	if !p.readOnly {
		for _, fr := range p.frames {
			if fr.dirty {
				if e := p.writeFrame(fr); e != nil && err == nil {
					err = e
				}
			}
		}
		if e := p.writeSuperblock(); e != nil && err == nil {
			err = e
		}
	}
	p.closed = true
	p.mu.Unlock()
	if e := p.f.Close(); e != nil && err == nil {
		err = e
	}
	return err
}

// FileSize returns the current size of the backing file in bytes.
func (p *Pager) FileSize() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return int64(p.pageCount) * int64(p.pageSize)
}
