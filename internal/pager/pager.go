// Package pager implements the disk substrate of the reproduction: a
// page-structured file with a fixed page size (4096 bytes in all of the
// paper's experiments, §5 "Parameters"), an LRU buffer pool with pin
// counts, and I/O statistics.
//
// The statistics matter beyond bookkeeping: §4.4.1 analyses HD-Index by
// the number of random disk accesses, and §5.2.5 argues the Ptolemaic
// filter is free in I/O terms. The counters here are what let the
// benchmarks report those numbers on any hardware.
//
// The buffer pool is sharded into lock-striped LRU segments keyed by
// page id, so concurrent searches touching different pages never
// contend on one global mutex; aggregate Stats stay exact by summing
// the per-shard counters. Callers on the read hot path can borrow a
// pinned frame zero-copy via View instead of going through Get's
// heap-allocated Page handle.
package pager

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"sync"
	"sync/atomic"

	"github.com/hd-index/hdindex/internal/iofault"
)

// DefaultPageSize is the disk page size used throughout the paper.
const DefaultPageSize = 4096

const (
	magic             = "HDIXPAGE"
	version           = 1
	headerLen         = 36 // magic(8) + version(4) + pageSize(4) + pageCount(8) + checksum(8) + metaLen(4)
	offVersion        = 8
	offPageSize       = 12
	offPageCount      = 16
	offChecksum       = 24
	offMetaLen        = 32
	offMeta           = 36
	defaultFrames     = 256
	defaultPoolShards = 8
)

// Errors returned by the pager.
var (
	ErrBadMagic     = errors.New("pager: not a pager file (bad magic)")
	ErrBadVersion   = errors.New("pager: unsupported file version")
	ErrBadChecksum  = errors.New("pager: superblock checksum mismatch")
	ErrPageRange    = errors.New("pager: page id out of range")
	ErrClosed       = errors.New("pager: file is closed")
	ErrMetaTooLarge = errors.New("pager: metadata exceeds superblock capacity")
	// ErrIO marks a physical read/write/sync failure on the backing
	// file. Every disk error the pager surfaces wraps it, so callers
	// (core's query path, the server's error mapper) can classify disk
	// trouble with errors.Is instead of string matching — and turn it
	// into a structured 503 rather than a panic or an opaque 500.
	ErrIO = errors.New("pager: io error")
)

// PageID identifies a page within a file. Page 0 is the superblock and is
// never handed out.
type PageID uint64

// Stats counts logical and physical page traffic since the last reset.
type Stats struct {
	Reads  uint64 // physical page reads from disk
	Writes uint64 // physical page writes to disk
	Hits   uint64 // buffer pool hits
	Misses uint64 // buffer pool misses (each implies one Read)
	Allocs uint64 // pages allocated
}

// Add accumulates o into s; aggregators (multi-file indexes, sharded
// layouts) sum per-file stats with it.
func (s *Stats) Add(o Stats) {
	s.Reads += o.Reads
	s.Writes += o.Writes
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Allocs += o.Allocs
}

// HitRatio returns Hits/(Hits+Misses), or 0 before any pool traffic.
func (s Stats) HitRatio() float64 {
	if total := s.Hits + s.Misses; total > 0 {
		return float64(s.Hits) / float64(total)
	}
	return 0
}

// Options configures Open.
type Options struct {
	PageSize   int  // bytes per page; DefaultPageSize if zero
	PoolPages  int  // buffer pool capacity in pages; 256 if zero
	PoolShards int  // lock-striped pool segments; 0 picks a default, rounded down to a power of two and clamped to PoolPages
	Create     bool // create (truncate) instead of opening existing
	ReadOnly   bool // open without write permission
	DisableLRU bool // bypass caching entirely: every Get is a disk read (paper's "caching off" mode)
}

// Page is a pinned page in the buffer pool. Callers must Release it when
// done; writes must be followed by MarkDirty before Release.
type Page struct {
	ID    PageID
	Data  []byte
	frame *frame
	pgr   *Pager
}

// MarkDirty records that Data was modified and must reach disk.
func (p *Page) MarkDirty() {
	sh := p.pgr.shardOf(p.frame.id)
	sh.mu.Lock()
	p.frame.dirty = true
	sh.mu.Unlock()
}

// Release unpins the page. The Page must not be used afterwards.
func (p *Page) Release() {
	p.pgr.release(p.frame)
}

// View is a pinned zero-copy borrow of a page's pool frame: the read
// hot path's alternative to Get, with no per-call heap allocation (View
// is a value, not a pointer). Data is the frame's buffer itself — valid
// only until Release, and must not be written through.
type View struct {
	Data []byte
	fr   *frame
	pgr  *Pager
}

// Release unpins the viewed frame. The View must not be used afterwards.
func (v View) Release() {
	v.pgr.release(v.fr)
}

type frame struct {
	id    PageID
	data  []byte
	pins  int
	dirty bool
	prev  *frame // LRU list of unpinned frames
	next  *frame
}

// counters is one stripe's share of the I/O statistics. The fields are
// atomics so Stats() — called twice per query for the QueryStats deltas
// — never touches the stripe mutexes: a stats sweep must not contend
// with a getFrame holding a stripe lock across a disk read.
type counters struct {
	reads, writes, hits, misses, allocs atomic.Uint64
}

func (c *counters) snapshot() Stats {
	return Stats{
		Reads:  c.reads.Load(),
		Writes: c.writes.Load(),
		Hits:   c.hits.Load(),
		Misses: c.misses.Load(),
		Allocs: c.allocs.Load(),
	}
}

func (c *counters) reset() {
	c.reads.Store(0)
	c.writes.Store(0)
	c.hits.Store(0)
	c.misses.Store(0)
	c.allocs.Store(0)
}

// poolShard is one lock stripe of the buffer pool: its own frame map,
// LRU list, capacity share, and I/O counters. A page id always maps to
// the same shard, so per-page state never straddles stripes.
type poolShard struct {
	mu      sync.Mutex
	cap     int
	frames  map[PageID]*frame
	lruHead *frame // most recently used unpinned
	lruTail *frame
	lruLen  int
	stats   counters
}

// Pager manages one page file. It is safe for concurrent use: readers
// of distinct pool shards proceed in parallel; only the superblock and
// metadata share a mutex.
type Pager struct {
	f        iofault.File
	pageSize int
	noCache  bool
	readOnly bool

	pageCount atomic.Uint64 // includes superblock
	closed    atomic.Bool

	// allocMu serialises Allocs with each other and with Flush/Close.
	// Two invariants hang off it: pageCount is published only after the
	// new frame is admitted (so a Get that passes the range check always
	// finds the frame instead of reading past EOF), and the superblock
	// never records a count covering a frame the flush didn't see.
	// Get/View never touch it — allocation is off the read hot path.
	allocMu sync.Mutex

	state      sync.Mutex // guards meta, superblock I/O, close
	meta       []byte
	superStats counters // superblock traffic (page 0 never enters the shards)

	shards []poolShard
	mask   uint64 // len(shards)-1; len is a power of two
}

// Open creates or opens the page file at path.
func Open(path string, opts Options) (*Pager, error) {
	if opts.PageSize == 0 {
		opts.PageSize = DefaultPageSize
	}
	if opts.PageSize < headerLen+8 {
		return nil, fmt.Errorf("pager: page size %d too small", opts.PageSize)
	}
	if opts.PoolPages <= 0 {
		opts.PoolPages = defaultFrames
	}
	flag := os.O_RDWR
	if opts.ReadOnly {
		flag = os.O_RDONLY
	}
	if opts.Create {
		flag |= os.O_CREATE | os.O_TRUNC
	}
	f, err := iofault.Open(path, flag, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pager: open %s: %w", path, err)
	}
	p := &Pager{
		f:        f,
		pageSize: opts.PageSize,
		noCache:  opts.DisableLRU,
		readOnly: opts.ReadOnly,
	}
	if opts.Create {
		p.pageCount.Store(1)
		if err := p.writeSuperblockLocked(1); err != nil {
			f.Close()
			return nil, err
		}
	} else {
		if err := p.readSuperblock(); err != nil {
			f.Close()
			return nil, err
		}
	}
	p.initShards(opts.PoolShards, opts.PoolPages)
	return p, nil
}

// initShards sizes the lock stripes: a power-of-two count no larger
// than the pool itself, each owning an equal share of the capacity.
func (p *Pager) initShards(n, poolPages int) {
	if n <= 0 {
		n = defaultPoolShards
	}
	if n > poolPages {
		n = poolPages
	}
	// Round down to a power of two so shardOf is a mask, not a modulo.
	pow := 1
	for pow*2 <= n {
		pow *= 2
	}
	n = pow
	p.shards = make([]poolShard, n)
	p.mask = uint64(n - 1)
	// Distribute the capacity exactly: the first poolPages%n stripes
	// take one extra frame, so the aggregate equals PoolPages rather
	// than silently rounding down.
	perShard, extra := poolPages/n, poolPages%n
	for i := range p.shards {
		p.shards[i].cap = perShard
		if i < extra {
			p.shards[i].cap++
		}
		p.shards[i].frames = make(map[PageID]*frame)
	}
}

func (p *Pager) shardOf(id PageID) *poolShard {
	return &p.shards[uint64(id)&p.mask]
}

// NumPoolShards returns the number of lock stripes in the buffer pool.
func (p *Pager) NumPoolShards() int { return len(p.shards) }

// writeSuperblockLocked writes the superblock recording count pages;
// caller holds p.state (or has exclusive access, as during Open) and
// must have captured count under allocMu, so it never exceeds the set
// of pages whose frames were admitted when the pool was flushed.
func (p *Pager) writeSuperblockLocked(count uint64) error {
	buf := make([]byte, p.pageSize)
	copy(buf, magic)
	binary.BigEndian.PutUint32(buf[offVersion:], version)
	binary.BigEndian.PutUint32(buf[offPageSize:], uint32(p.pageSize))
	binary.BigEndian.PutUint64(buf[offPageCount:], count)
	binary.BigEndian.PutUint32(buf[offMetaLen:], uint32(len(p.meta)))
	copy(buf[offMeta:], p.meta)
	binary.BigEndian.PutUint64(buf[offChecksum:], superChecksum(buf))
	if _, err := p.f.WriteAt(buf, 0); err != nil {
		return fmt.Errorf("%w: write superblock: %w", ErrIO, err)
	}
	p.superStats.writes.Add(1)
	return nil
}

func (p *Pager) readSuperblock() error {
	// Read the fixed header first: the on-disk page size wins over the
	// configured one, so callers need not know it when reopening.
	hdr := make([]byte, headerLen)
	if _, err := p.f.ReadAt(hdr, 0); err != nil {
		return fmt.Errorf("%w: read superblock: %w", ErrIO, err)
	}
	if string(hdr[:8]) != magic {
		return ErrBadMagic
	}
	if v := binary.BigEndian.Uint32(hdr[offVersion:]); v != version {
		return fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	ps := int(binary.BigEndian.Uint32(hdr[offPageSize:]))
	if ps < headerLen+8 {
		return ErrBadChecksum
	}
	p.pageSize = ps
	buf := make([]byte, ps)
	if _, err := p.f.ReadAt(buf, 0); err != nil {
		return fmt.Errorf("%w: read superblock: %w", ErrIO, err)
	}
	p.superStats.reads.Add(1)
	want := binary.BigEndian.Uint64(buf[offChecksum:])
	if superChecksum(buf) != want {
		return ErrBadChecksum
	}
	p.pageCount.Store(binary.BigEndian.Uint64(buf[offPageCount:]))
	metaLen := int(binary.BigEndian.Uint32(buf[offMetaLen:]))
	if metaLen > p.pageSize-offMeta {
		return ErrBadChecksum
	}
	p.meta = append([]byte(nil), buf[offMeta:offMeta+metaLen]...)
	return nil
}

// superChecksum hashes the superblock with the checksum field zeroed.
func superChecksum(buf []byte) uint64 {
	h := fnv.New64a()
	h.Write(buf[:offChecksum])
	var zero [8]byte
	h.Write(zero[:])
	h.Write(buf[offChecksum+8:])
	return h.Sum64()
}

// PageSize returns the page size in bytes.
func (p *Pager) PageSize() int { return p.pageSize }

// PageCount returns the number of pages, including the superblock.
func (p *Pager) PageCount() uint64 {
	return p.pageCount.Load()
}

// Meta returns a copy of the user metadata stored in the superblock.
func (p *Pager) Meta() []byte {
	p.state.Lock()
	defer p.state.Unlock()
	return append([]byte(nil), p.meta...)
}

// SetMeta stores user metadata (tree headers etc.) in the superblock.
// It is persisted on the next Flush or Close.
func (p *Pager) SetMeta(meta []byte) error {
	p.state.Lock()
	defer p.state.Unlock()
	if len(meta) > p.pageSize-offMeta {
		return ErrMetaTooLarge
	}
	p.meta = append([]byte(nil), meta...)
	return nil
}

// Stats returns a snapshot of the I/O counters: the sum of every pool
// shard's counters plus superblock traffic. The counters are atomics,
// so the sweep is lock-free — it never contends with a stripe holding
// its lock across a disk read. Each counter is exact; the snapshot as
// a whole is taken without a global pause, like the per-query deltas
// consuming it.
func (p *Pager) Stats() Stats {
	var s Stats
	for i := range p.shards {
		s.Add(p.shards[i].stats.snapshot())
	}
	s.Add(p.superStats.snapshot())
	return s
}

// ResetStats zeroes the I/O counters; benchmarks call it per query batch.
func (p *Pager) ResetStats() {
	for i := range p.shards {
		p.shards[i].stats.reset()
	}
	p.superStats.reset()
}

// Alloc appends a zeroed page to the file and returns it pinned.
func (p *Pager) Alloc() (*Page, error) {
	if p.readOnly {
		return nil, errors.New("pager: alloc on read-only file")
	}
	p.allocMu.Lock()
	defer p.allocMu.Unlock()
	// An Alloc that loses the lock race to Close fails here; one that
	// wins it completes fully (admit + publish) before Close can
	// capture the count and flush, so nothing counted is ever missing.
	if p.closed.Load() {
		return nil, ErrClosed
	}
	id := PageID(p.pageCount.Load())
	fr := &frame{id: id, data: make([]byte, p.pageSize), pins: 1, dirty: true}
	sh := p.shardOf(id)
	sh.mu.Lock()
	sh.stats.allocs.Add(1)
	err := p.admit(sh, fr)
	sh.mu.Unlock()
	if err != nil {
		return nil, err
	}
	// Publish only after the frame is in its shard: a concurrent Get of
	// this id either fails the range check (not yet published) or finds
	// the admitted frame — it can never fall through to a disk read of
	// a page the file doesn't have yet.
	p.pageCount.Store(uint64(id) + 1)
	return &Page{ID: id, Data: fr.data, frame: fr, pgr: p}, nil
}

// Get returns the page with the given id, pinned.
func (p *Pager) Get(id PageID) (*Page, error) {
	fr, err := p.getFrame(id)
	if err != nil {
		return nil, err
	}
	return &Page{ID: id, Data: fr.data, frame: fr, pgr: p}, nil
}

// View returns a pinned zero-copy view of the page: Get without the
// Page allocation. The caller must Release it and must not write
// through Data.
func (p *Pager) View(id PageID) (View, error) {
	fr, err := p.getFrame(id)
	if err != nil {
		return View{}, err
	}
	return View{Data: fr.data, fr: fr, pgr: p}, nil
}

// getFrame returns the pinned frame for id, reading it from disk on a
// pool miss. All work — including the disk read — happens under the
// owning shard's lock, so Close (which cycles every shard lock before
// closing the file) can never pull the file out from under a read.
func (p *Pager) getFrame(id PageID) (*frame, error) {
	sh := p.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if p.closed.Load() {
		return nil, ErrClosed
	}
	if count := p.pageCount.Load(); id == 0 || uint64(id) >= count {
		return nil, fmt.Errorf("%w: %d (have %d)", ErrPageRange, id, count)
	}
	if fr, ok := sh.frames[id]; ok {
		sh.stats.hits.Add(1)
		if fr.pins == 0 {
			sh.lruRemove(fr)
		}
		fr.pins++
		return fr, nil
	}
	sh.stats.misses.Add(1)
	data := make([]byte, p.pageSize)
	if _, err := p.f.ReadAt(data, int64(uint64(id))*int64(p.pageSize)); err != nil {
		return nil, fmt.Errorf("%w: read page %d: %w", ErrIO, id, err)
	}
	sh.stats.reads.Add(1)
	fr := &frame{id: id, data: data, pins: 1}
	if err := p.admit(sh, fr); err != nil {
		return nil, err
	}
	return fr, nil
}

// admit inserts fr into its shard, evicting the LRU unpinned frame if
// the shard is at its capacity share. Caller holds sh.mu.
func (p *Pager) admit(sh *poolShard, fr *frame) error {
	for len(sh.frames) >= sh.cap && sh.lruLen > 0 {
		victim := sh.lruTail
		sh.lruRemove(victim)
		delete(sh.frames, victim.id)
		if victim.dirty {
			if err := p.writeFrame(sh, victim); err != nil {
				return err
			}
		}
	}
	sh.frames[fr.id] = fr
	return nil
}

func (p *Pager) writeFrame(sh *poolShard, fr *frame) error {
	if _, err := p.f.WriteAt(fr.data, int64(uint64(fr.id))*int64(p.pageSize)); err != nil {
		return fmt.Errorf("%w: write page %d: %w", ErrIO, fr.id, err)
	}
	fr.dirty = false
	sh.stats.writes.Add(1)
	return nil
}

func (p *Pager) release(fr *frame) {
	sh := p.shardOf(fr.id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	fr.pins--
	if fr.pins > 0 {
		return
	}
	if p.noCache {
		// Caching off (§5 "for fairness, we turn off buffering and
		// caching"): write the frame out if dirty and drop it. On a
		// write failure the frame stays resident and dirty, so the data
		// is not lost and Flush/Close retries the write and surfaces
		// the error (dropping the frame first would silently discard
		// the page).
		if fr.dirty {
			if err := p.writeFrame(sh, fr); err != nil {
				return
			}
		}
		delete(sh.frames, fr.id)
		return
	}
	sh.lruPushFront(fr)
}

func (sh *poolShard) lruPushFront(fr *frame) {
	fr.prev = nil
	fr.next = sh.lruHead
	if sh.lruHead != nil {
		sh.lruHead.prev = fr
	}
	sh.lruHead = fr
	if sh.lruTail == nil {
		sh.lruTail = fr
	}
	sh.lruLen++
}

func (sh *poolShard) lruRemove(fr *frame) {
	if fr.prev != nil {
		fr.prev.next = fr.next
	} else {
		sh.lruHead = fr.next
	}
	if fr.next != nil {
		fr.next.prev = fr.prev
	} else {
		sh.lruTail = fr.prev
	}
	fr.prev, fr.next = nil, nil
	sh.lruLen--
}

// flushShards writes every shard's dirty frames, taking each shard lock
// in turn.
func (p *Pager) flushShards() error {
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		for _, fr := range sh.frames {
			if fr.dirty {
				if err := p.writeFrame(sh, fr); err != nil {
					sh.mu.Unlock()
					return err
				}
			}
		}
		sh.mu.Unlock()
	}
	return nil
}

// Flush writes all dirty pages and the superblock to disk. It excludes
// concurrent Alloc (via allocMu) so the persisted page count is a
// consistent snapshot: every page it covers had its frame flushed.
func (p *Pager) Flush() error {
	if p.closed.Load() {
		return ErrClosed
	}
	if p.readOnly {
		return nil
	}
	p.allocMu.Lock()
	defer p.allocMu.Unlock()
	count := p.pageCount.Load()
	if err := p.flushShards(); err != nil {
		return err
	}
	p.state.Lock()
	defer p.state.Unlock()
	return p.writeSuperblockLocked(count)
}

// Sync flushes and fsyncs the file.
func (p *Pager) Sync() error {
	if err := p.Flush(); err != nil {
		return err
	}
	if err := p.f.Sync(); err != nil {
		return fmt.Errorf("%w: sync: %w", ErrIO, err)
	}
	return nil
}

// Close flushes and closes the file. The pager is unusable afterwards.
// The closed flag is set before the shard locks are cycled, so any read
// that began under a shard lock finishes against the still-open file
// and later callers observe ErrClosed.
func (p *Pager) Close() error {
	p.state.Lock()
	if p.closed.Load() {
		p.state.Unlock()
		return nil
	}
	p.closed.Store(true)
	p.state.Unlock()
	var err error
	if !p.readOnly {
		// The alloc lock drains in-flight Allocs (their frames are then
		// admitted and flushable) and holds off later ones, which fail
		// on the closed flag.
		p.allocMu.Lock()
		defer p.allocMu.Unlock()
		count := p.pageCount.Load()
		if e := p.flushShards(); e != nil {
			err = e
		}
		p.state.Lock()
		if e := p.writeSuperblockLocked(count); e != nil && err == nil {
			err = e
		}
		p.state.Unlock()
	} else {
		// Cycle the shard locks so in-flight reads drain before the
		// file handle goes away.
		for i := range p.shards {
			p.shards[i].mu.Lock()
			p.shards[i].mu.Unlock() //nolint:staticcheck // empty critical section is the drain
		}
	}
	if e := p.f.Close(); e != nil && err == nil {
		err = e
	}
	return err
}

// FileSize returns the current size of the backing file in bytes.
func (p *Pager) FileSize() int64 {
	return int64(p.pageCount.Load()) * int64(p.pageSize)
}
