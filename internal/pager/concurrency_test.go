package pager

import (
	"encoding/binary"
	"sync"
	"testing"
)

// Concurrent readers over a shared pager (the access pattern of parallel
// tree search within one query batch) must be race-free and observe
// consistent page content. Run under -race in CI.
func TestConcurrentReaders(t *testing.T) {
	p, _ := newTemp(t, Options{PoolPages: 4})
	const pages = 16
	ids := make([]PageID, pages)
	for i := 0; i < pages; i++ {
		pg, err := p.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		binary.BigEndian.PutUint64(pg.Data, uint64(i)*7)
		pg.MarkDirty()
		ids[i] = pg.ID
		pg.Release()
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := 0; round < 200; round++ {
				i := (w + round) % pages
				pg, err := p.Get(ids[i])
				if err != nil {
					errs[w] = err
					return
				}
				if got := binary.BigEndian.Uint64(pg.Data); got != uint64(i)*7 {
					errs[w] = ErrCorrupt(i)
					pg.Release()
					return
				}
				pg.Release()
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// ErrCorrupt is a test-local error carrying the page index.
type ErrCorrupt int

func (e ErrCorrupt) Error() string { return "corrupt page content" }

// A pinned page must never be evicted even under pool pressure.
func TestPinnedPageSurvivesPressure(t *testing.T) {
	p, _ := newTemp(t, Options{PoolPages: 2})
	pinned, err := p.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	copy(pinned.Data, "pinned!!")
	pinned.MarkDirty()
	// Flood the pool far past capacity while the first page stays pinned.
	for i := 0; i < 20; i++ {
		pg, err := p.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		pg.MarkDirty()
		pg.Release()
	}
	if string(pinned.Data[:8]) != "pinned!!" {
		t.Fatal("pinned page content lost")
	}
	pinned.Release()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}
