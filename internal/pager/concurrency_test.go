package pager

import (
	"encoding/binary"
	"sync"
	"testing"
)

// Concurrent readers over a shared pager (the access pattern of parallel
// tree search within one query batch) must be race-free and observe
// consistent page content. Run under -race in CI.
func TestConcurrentReaders(t *testing.T) {
	p, _ := newTemp(t, Options{PoolPages: 4})
	const pages = 16
	ids := make([]PageID, pages)
	for i := 0; i < pages; i++ {
		pg, err := p.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		binary.BigEndian.PutUint64(pg.Data, uint64(i)*7)
		pg.MarkDirty()
		ids[i] = pg.ID
		pg.Release()
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := 0; round < 200; round++ {
				i := (w + round) % pages
				pg, err := p.Get(ids[i])
				if err != nil {
					errs[w] = err
					return
				}
				if got := binary.BigEndian.Uint64(pg.Data); got != uint64(i)*7 {
					errs[w] = ErrCorrupt(i)
					pg.Release()
					return
				}
				pg.Release()
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// ErrCorrupt is a test-local error carrying the page index.
type ErrCorrupt int

func (e ErrCorrupt) Error() string { return "corrupt page content" }

// A pinned page must never be evicted even under pool pressure.
func TestPinnedPageSurvivesPressure(t *testing.T) {
	p, _ := newTemp(t, Options{PoolPages: 2})
	pinned, err := p.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	copy(pinned.Data, "pinned!!")
	pinned.MarkDirty()
	// Flood the pool far past capacity while the first page stays pinned.
	for i := 0; i < 20; i++ {
		pg, err := p.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		pg.MarkDirty()
		pg.Release()
	}
	if string(pinned.Data[:8]) != "pinned!!" {
		t.Fatal("pinned page content lost")
	}
	pinned.Release()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

// Concurrent Get/View/Stats traffic across the lock-striped pool — the
// access pattern of parallel searches — must stay race-free and serve
// consistent content under eviction pressure. Run under -race in CI.
func TestConcurrentShardedPool(t *testing.T) {
	p, _ := newTemp(t, Options{PoolPages: 8, PoolShards: 4})
	const pages = 64
	ids := make([]PageID, pages)
	for i := 0; i < pages; i++ {
		pg, err := p.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		binary.BigEndian.PutUint64(pg.Data, uint64(i)*13)
		pg.MarkDirty()
		ids[i] = pg.ID
		pg.Release()
	}
	var wg sync.WaitGroup
	errs := make([]error, 12)
	for w := 0; w < 12; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := 0; round < 300; round++ {
				i := (w*31 + round*7) % pages
				if w%3 == 0 { // a third of the workers use the Page path
					pg, err := p.Get(ids[i])
					if err != nil {
						errs[w] = err
						return
					}
					if got := binary.BigEndian.Uint64(pg.Data); got != uint64(i)*13 {
						errs[w] = ErrCorrupt(i)
						pg.Release()
						return
					}
					pg.Release()
					continue
				}
				v, err := p.View(ids[i])
				if err != nil {
					errs[w] = err
					return
				}
				if got := binary.BigEndian.Uint64(v.Data); got != uint64(i)*13 {
					errs[w] = ErrCorrupt(i)
					v.Release()
					return
				}
				v.Release()
				if round%50 == 0 {
					_ = p.Stats() // aggregate reads race-free with traffic
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	st := p.Stats()
	if st.Hits+st.Misses == 0 {
		t.Fatal("no pool traffic recorded")
	}
}
