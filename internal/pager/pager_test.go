package pager

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func newTemp(t *testing.T, opts Options) (*Pager, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.pg")
	opts.Create = true
	p, err := Open(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	return p, path
}

func TestAllocGetRoundTrip(t *testing.T) {
	p, path := newTemp(t, Options{PoolPages: 4})
	pg, err := p.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if pg.ID != 1 {
		t.Fatalf("first alloc id = %d, want 1", pg.ID)
	}
	copy(pg.Data, "hello page")
	pg.MarkDirty()
	pg.Release()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	p2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	pg2, err := p2.Get(1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(pg2.Data, []byte("hello page")) {
		t.Fatalf("page content lost: %q", pg2.Data[:16])
	}
	pg2.Release()
}

func TestMetaPersistence(t *testing.T) {
	p, path := newTemp(t, Options{})
	meta := []byte("tree-root=42")
	if err := p.SetMeta(meta); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	p2, err := Open(path, Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if !bytes.Equal(p2.Meta(), meta) {
		t.Fatalf("meta = %q, want %q", p2.Meta(), meta)
	}
}

func TestMetaTooLarge(t *testing.T) {
	p, _ := newTemp(t, Options{PageSize: 128})
	defer p.Close()
	if err := p.SetMeta(make([]byte, 128)); !errors.Is(err, ErrMetaTooLarge) {
		t.Fatalf("err = %v, want ErrMetaTooLarge", err)
	}
}

func TestGetOutOfRange(t *testing.T) {
	p, _ := newTemp(t, Options{})
	defer p.Close()
	if _, err := p.Get(0); !errors.Is(err, ErrPageRange) {
		t.Error("superblock must not be gettable")
	}
	if _, err := p.Get(7); !errors.Is(err, ErrPageRange) {
		t.Error("unallocated page must not be gettable")
	}
}

func TestLRUEvictionAndStats(t *testing.T) {
	p, _ := newTemp(t, Options{PoolPages: 2})
	defer p.Close()
	var ids []PageID
	for i := 0; i < 4; i++ {
		pg, err := p.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		binary.BigEndian.PutUint64(pg.Data, uint64(i))
		pg.MarkDirty()
		ids = append(ids, pg.ID)
		pg.Release()
	}
	// Pool holds 2 of the 4; reading the evicted ones must miss.
	st0 := p.Stats()
	for i, id := range ids {
		pg, err := p.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if got := binary.BigEndian.Uint64(pg.Data); got != uint64(i) {
			t.Fatalf("page %d content = %d, want %d", id, got, i)
		}
		pg.Release()
	}
	st := p.Stats()
	if st.Misses == st0.Misses {
		t.Error("expected buffer pool misses after eviction")
	}
	if st.Reads == 0 {
		t.Error("expected physical reads")
	}
}

func TestDisableLRUCountsEveryRead(t *testing.T) {
	p, _ := newTemp(t, Options{DisableLRU: true})
	defer p.Close()
	pg, _ := p.Alloc()
	id := pg.ID
	pg.MarkDirty()
	pg.Release()
	p.ResetStats()
	for i := 0; i < 3; i++ {
		g, err := p.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		g.Release()
	}
	st := p.Stats()
	if st.Misses != 3 || st.Reads != 3 {
		t.Fatalf("no-cache stats = %+v, want 3 misses/reads", st)
	}
	if st.Hits != 0 {
		t.Fatalf("no-cache must never hit, got %d", st.Hits)
	}
}

func TestBadMagic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk.pg")
	if err := os.WriteFile(path, make([]byte, DefaultPageSize), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, Options{}); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestCorruptedSuperblock(t *testing.T) {
	p, path := newTemp(t, Options{})
	p.SetMeta([]byte("important"))
	p.Close()
	// Flip a byte inside the metadata region.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[offMeta] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, Options{}); !errors.Is(err, ErrBadChecksum) {
		t.Fatalf("err = %v, want ErrBadChecksum", err)
	}
}

func TestTruncatedFile(t *testing.T) {
	p, path := newTemp(t, Options{})
	pg, _ := p.Alloc()
	pg.MarkDirty()
	pg.Release()
	p.Close()
	if err := os.Truncate(path, DefaultPageSize/2); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, Options{}); err == nil {
		t.Fatal("opening truncated file must fail")
	}
}

func TestOpenWithDifferentConfiguredPageSize(t *testing.T) {
	p, path := newTemp(t, Options{PageSize: 512})
	pg, _ := p.Alloc()
	copy(pg.Data, "x")
	pg.MarkDirty()
	pg.Release()
	p.Close()
	// Opening with the default page size must self-correct to 512.
	p2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if p2.PageSize() != 512 {
		t.Fatalf("page size = %d, want 512", p2.PageSize())
	}
	g, err := p2.Get(1)
	if err != nil {
		t.Fatal(err)
	}
	if g.Data[0] != 'x' {
		t.Fatal("content lost across page-size self-correction")
	}
	g.Release()
}

func TestClosedErrors(t *testing.T) {
	p, _ := newTemp(t, Options{})
	p.Close()
	if _, err := p.Alloc(); !errors.Is(err, ErrClosed) {
		t.Error("Alloc after close must fail")
	}
	if _, err := p.Get(1); !errors.Is(err, ErrClosed) {
		t.Error("Get after close must fail")
	}
	if err := p.Close(); err != nil {
		t.Error("double close must be a no-op")
	}
}

func TestReadOnly(t *testing.T) {
	p, path := newTemp(t, Options{})
	pg, _ := p.Alloc()
	pg.MarkDirty()
	pg.Release()
	p.Close()
	ro, err := Open(path, Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	if _, err := ro.Alloc(); err == nil {
		t.Error("Alloc on read-only pager must fail")
	}
	g, err := ro.Get(1)
	if err != nil {
		t.Fatal(err)
	}
	g.Release()
}

// Many random writes and reads through a tiny pool: the file must end up
// byte-identical to an in-memory model.
func TestRandomizedAgainstModel(t *testing.T) {
	p, path := newTemp(t, Options{PageSize: 256, PoolPages: 3})
	rng := rand.New(rand.NewSource(7))
	const n = 50
	model := make(map[PageID][]byte)
	var ids []PageID
	for i := 0; i < n; i++ {
		pg, err := p.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		rng.Read(pg.Data)
		pg.MarkDirty()
		model[pg.ID] = append([]byte(nil), pg.Data...)
		ids = append(ids, pg.ID)
		pg.Release()
	}
	for i := 0; i < 200; i++ {
		id := ids[rng.Intn(len(ids))]
		pg, err := p.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if rng.Intn(2) == 0 {
			rng.Read(pg.Data[:16])
			pg.MarkDirty()
			copy(model[id][:16], pg.Data[:16])
		} else if !bytes.Equal(pg.Data, model[id]) {
			t.Fatalf("page %d diverged from model", id)
		}
		pg.Release()
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	p2, err := Open(path, Options{PoolPages: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	for id, want := range model {
		pg, err := p2.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(pg.Data, want) {
			t.Fatalf("page %d content mismatch after reopen", id)
		}
		pg.Release()
	}
}

func TestFileSize(t *testing.T) {
	p, _ := newTemp(t, Options{PageSize: 512})
	defer p.Close()
	for i := 0; i < 3; i++ {
		pg, _ := p.Alloc()
		pg.Release()
	}
	if got := p.FileSize(); got != 4*512 {
		t.Fatalf("FileSize = %d, want %d", got, 4*512)
	}
}

func BenchmarkGetCached(b *testing.B) {
	dir := b.TempDir()
	p, err := Open(filepath.Join(dir, "b.pg"), Options{Create: true})
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	pg, _ := p.Alloc()
	id := pg.ID
	pg.Release()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, _ := p.Get(id)
		g.Release()
	}
}

// View must return the frame's own buffer (zero-copy), pin it, and
// release cleanly.
func TestViewZeroCopy(t *testing.T) {
	p, path := newTemp(t, Options{PoolPages: 8})
	pg, err := p.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	copy(pg.Data, "view me")
	pg.MarkDirty()
	id := pg.ID
	pg.Release()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	p2, err := Open(path, Options{PoolPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	v, err := p2.View(id)
	if err != nil {
		t.Fatal(err)
	}
	if string(v.Data[:7]) != "view me" {
		t.Fatalf("view content = %q", v.Data[:7])
	}
	// The view and a Get of the same page must share storage: that is
	// the zero-copy contract.
	g, err := p2.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if &v.Data[0] != &g.Data[0] {
		t.Fatal("View and Get returned different buffers for one page")
	}
	g.Release()
	v.Release()
}

// A pinned view must survive pool pressure, like a pinned Page.
func TestViewPinSurvivesPressure(t *testing.T) {
	p, _ := newTemp(t, Options{PoolPages: 2, PoolShards: 1})
	pg, err := p.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	copy(pg.Data, "pinned-view")
	pg.MarkDirty()
	id := pg.ID
	pg.Release()
	v, err := p.View(id)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		x, err := p.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		x.MarkDirty()
		x.Release()
	}
	if string(v.Data[:11]) != "pinned-view" {
		t.Fatal("viewed frame content lost under pool pressure")
	}
	v.Release()
}

// The aggregate Stats must be the exact sum of per-shard counters: a
// known access sequence produces known totals regardless of sharding.
func TestShardedStatsExact(t *testing.T) {
	p, path := newTemp(t, Options{PoolPages: 64, PoolShards: 8})
	const pages = 20
	ids := make([]PageID, pages)
	for i := range ids {
		pg, err := p.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		pg.MarkDirty()
		ids[i] = pg.ID
		pg.Release()
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	p2, err := Open(path, Options{PoolPages: 64, PoolShards: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if got := p2.NumPoolShards(); got != 8 {
		t.Fatalf("NumPoolShards = %d, want 8", got)
	}
	p2.ResetStats()
	for _, id := range ids { // cold: all misses
		v, err := p2.View(id)
		if err != nil {
			t.Fatal(err)
		}
		v.Release()
	}
	for _, id := range ids { // warm: all hits
		v, err := p2.View(id)
		if err != nil {
			t.Fatal(err)
		}
		v.Release()
	}
	st := p2.Stats()
	if st.Misses != pages || st.Reads != pages || st.Hits != pages {
		t.Fatalf("stats = %+v, want %d misses/reads and %d hits", st, pages, pages)
	}
	if got := st.HitRatio(); got != 0.5 {
		t.Fatalf("HitRatio = %v, want 0.5", got)
	}
}

// PoolShards is clamped to the pool size and rounded down to a power of
// two so the shard selector can be a mask.
func TestPoolShardsClamp(t *testing.T) {
	cases := []struct{ pages, shards, want int }{
		{2, 64, 2},  // clamped to pool size
		{256, 5, 4}, // rounded down to a power of two
		{256, 0, 8}, // default
		{1, 0, 1},   // degenerate pool
	}
	for _, c := range cases {
		p, _ := newTemp(t, Options{PoolPages: c.pages, PoolShards: c.shards})
		if got := p.NumPoolShards(); got != c.want {
			t.Errorf("PoolPages=%d PoolShards=%d: NumPoolShards = %d, want %d",
				c.pages, c.shards, got, c.want)
		}
		p.Close()
	}
}
