package vecmath

import (
	"math/rand"
	"testing"
)

// Kernel micro-benchmarks at the paper's dimensionalities (SIFT ν=128,
// Audio ν=192, and the 4-at-a-time tail case ν=100 for Glove).
func benchVecs(n int) (a, b []float32) {
	rng := rand.New(rand.NewSource(1))
	a = make([]float32, n)
	b = make([]float32, n)
	for i := range a {
		a[i] = rng.Float32()
		b[i] = rng.Float32()
	}
	return a, b
}

func benchmarkDistSq(b *testing.B, n int) {
	x, y := benchVecs(n)
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += DistSq(x, y)
	}
	_ = sink
}

func BenchmarkDistSq100(b *testing.B) { benchmarkDistSq(b, 100) }
func BenchmarkDistSq128(b *testing.B) { benchmarkDistSq(b, 128) }
func BenchmarkDistSq192(b *testing.B) { benchmarkDistSq(b, 192) }
func BenchmarkDistSq960(b *testing.B) { benchmarkDistSq(b, 960) }

// Tight bound: the common refinement case once the top-k heap is warm —
// most candidates abandon within the first stride or two.
func BenchmarkDistSqBoundTight(b *testing.B) {
	x, y := benchVecs(128)
	bound := DistSq(x, y) / 16
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		d, _ := DistSqBound(x, y, bound)
		sink += d
	}
	_ = sink
}

// Loose bound: the worst case — the full distance is always computed,
// measuring the overhead of the periodic bound checks over plain DistSq.
func BenchmarkDistSqBoundLoose(b *testing.B) {
	x, y := benchVecs(128)
	bound := DistSq(x, y) * 2
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		d, _ := DistSqBound(x, y, bound)
		sink += d
	}
	_ = sink
}

func BenchmarkDot128(b *testing.B) {
	x, y := benchVecs(128)
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += Dot(x, y)
	}
	_ = sink
}

// distSqUnrolled4 is a four-accumulator reference kept benchmark-only:
// measured against DistSq it shows why the shipped kernel is scalar —
// the float32→float64 conversions bound the loop on the FP ports, so
// the extra accumulators buy nothing, while the bigger body blows the
// inlining budget (cost 158 vs the 80 limit) and costs ~30% at real
// call sites. If a future Go version vectorises one of these shapes,
// this benchmark is the tripwire.
func distSqUnrolled4(a, b []float32) float64 {
	if len(a) != len(b) {
		panic("vecmath: dimension mismatch")
	}
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		d0 := float64(a[i]) - float64(b[i])
		d1 := float64(a[i+1]) - float64(b[i+1])
		d2 := float64(a[i+2]) - float64(b[i+2])
		d3 := float64(a[i+3]) - float64(b[i+3])
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	for ; i < len(a); i++ {
		d := float64(a[i]) - float64(b[i])
		s0 += d * d
	}
	return (s0 + s1) + (s2 + s3)
}

func BenchmarkDistSqUnrolledRef128(b *testing.B) {
	x, y := benchVecs(128)
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += distSqUnrolled4(x, y)
	}
	_ = sink
}
