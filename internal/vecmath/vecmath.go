// Package vecmath provides the low-level vector arithmetic used throughout
// the HD-Index reproduction: Euclidean distances over float32 vectors,
// order-preserving encodings of floating-point values, and a few small
// helpers shared by the index and the baseline methods.
//
// Vectors are []float32: every dataset in the paper (Table 4) fits in
// single precision, and float32 halves the I/O volume of the disk-resident
// structures, which is the paper's central concern.
package vecmath

import (
	"encoding/binary"
	"math"
)

// Dist returns the Euclidean (L2) distance between a and b.
// It panics if the slices have different lengths, as mixing
// dimensionalities is always a programming error in this codebase.
func Dist(a, b []float32) float64 {
	return math.Sqrt(DistSq(a, b))
}

// DistSq returns the squared Euclidean distance between a and b.
// Squared distances preserve the kNN order and avoid the sqrt in hot loops.
//
// The body must stay within the compiler's inlining budget: every call
// site passes local slices, and inlining (with the bounds checks it
// lets the compiler drop) is worth ~30% here, where multi-accumulator
// unrolling measures as a wash — the float32→float64 conversions
// saturate the FP ports, so there is no latency chain to hide (see
// BenchmarkDistSqUnrolledRef128 for the receipts). The accumulation
// order is a contract with DistSqBound: a bounded computation that runs
// to completion is bit-identical to DistSq.
func DistSq(a, b []float32) float64 {
	if len(a) != len(b) {
		panic("vecmath: dimension mismatch")
	}
	var s float64
	for i, av := range a {
		d := float64(av) - float64(b[i])
		s += d * d
	}
	return s
}

// abandonStride is how many dimensions DistSqBound accumulates between
// bound checks: frequent enough to cut most of a hopeless candidate's
// work, rare enough that the comparison stays off the profile.
const abandonStride = 16

// DistSqBound is the early-abandoning DistSq of the refinement hot
// path: it accumulates the squared distance but gives up as soon as the
// partial sum strictly exceeds bound (the current k-th best distance),
// since squared terms only grow the total.
//
// It returns (d, true) when the distance was fully computed — then d is
// bit-identical to DistSq(a, b), because the accumulation order is the
// same — or (partial, false) when accumulation was abandoned. The
// partial sum is a prefix of DistSq's own sum, and adding non-negative
// terms is monotone even in floating point, so partial > bound implies
// the true distance also strictly exceeds bound: the candidate can
// never enter a top-k list whose worst entry sits at bound, which is
// what keeps the optimized refinement path's results identical to the
// unbounded one.
func DistSqBound(a, b []float32, bound float64) (float64, bool) {
	if len(a) != len(b) {
		panic("vecmath: dimension mismatch")
	}
	var s float64
	i := 0
	for ; i+abandonStride <= len(a); i += abandonStride {
		for j := i; j < i+abandonStride; j++ {
			d := float64(a[j]) - float64(b[j])
			s += d * d
		}
		if s > bound {
			return s, false
		}
	}
	for ; i < len(a); i++ {
		d := float64(a[i]) - float64(b[i])
		s += d * d
	}
	return s, true
}

// Dot returns the inner product of a and b. Like DistSq it is kept
// small enough to inline at call sites.
func Dot(a, b []float32) float64 {
	if len(a) != len(b) {
		panic("vecmath: dimension mismatch")
	}
	var s float64
	for i, av := range a {
		s += float64(av) * float64(b[i])
	}
	return s
}

// Norm returns the L2 norm of v.
func Norm(v []float32) float64 {
	var s float64
	for _, x := range v {
		s += float64(x) * float64(x)
	}
	return math.Sqrt(s)
}

// Sub stores a-b into dst and returns dst. dst may alias a or b.
func Sub(dst, a, b []float32) []float32 {
	for i := range a {
		dst[i] = a[i] - b[i]
	}
	return dst
}

// Add stores a+b into dst and returns dst. dst may alias a or b.
func Add(dst, a, b []float32) []float32 {
	for i := range a {
		dst[i] = a[i] + b[i]
	}
	return dst
}

// Scale multiplies v by s in place and returns v.
func Scale(v []float32, s float32) []float32 {
	for i := range v {
		v[i] *= s
	}
	return v
}

// Copy returns a fresh copy of v.
func Copy(v []float32) []float32 {
	c := make([]float32, len(v))
	copy(c, v)
	return c
}

// SortableFloat64 maps a float64 to a uint64 whose unsigned order matches
// the numeric order of the inputs (including negatives, zeros and infs).
// It is used to build B+-tree keys from distance values (iDistance, QALSH).
func SortableFloat64(f float64) uint64 {
	u := math.Float64bits(f)
	if u&(1<<63) != 0 {
		return ^u // negative: flip all bits
	}
	return u | (1 << 63) // positive: flip sign bit
}

// UnsortableFloat64 inverts SortableFloat64.
func UnsortableFloat64(u uint64) float64 {
	if u&(1<<63) != 0 {
		return math.Float64frombits(u &^ (1 << 63))
	}
	return math.Float64frombits(^u)
}

// PutSortableFloat64 writes the sortable encoding of f into b (8 bytes,
// big-endian) so that bytes.Compare agrees with numeric order.
func PutSortableFloat64(b []byte, f float64) {
	binary.BigEndian.PutUint64(b, SortableFloat64(f))
}

// GetSortableFloat64 reads a value written by PutSortableFloat64.
func GetSortableFloat64(b []byte) float64 {
	return UnsortableFloat64(binary.BigEndian.Uint64(b))
}

// MinMax returns the per-dimension minimum and maximum over vecs.
// Both results have length dim; they are nil if vecs is empty.
func MinMax(vecs [][]float32, dim int) (lo, hi []float32) {
	if len(vecs) == 0 {
		return nil, nil
	}
	lo = make([]float32, dim)
	hi = make([]float32, dim)
	copy(lo, vecs[0])
	copy(hi, vecs[0])
	for _, v := range vecs[1:] {
		for d := 0; d < dim; d++ {
			if v[d] < lo[d] {
				lo[d] = v[d]
			}
			if v[d] > hi[d] {
				hi[d] = v[d]
			}
		}
	}
	return lo, hi
}
