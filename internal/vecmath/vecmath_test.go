package vecmath

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDist(t *testing.T) {
	a := []float32{0, 0, 0}
	b := []float32{1, 2, 2}
	if got := Dist(a, b); math.Abs(got-3) > 1e-9 {
		t.Errorf("Dist = %v, want 3", got)
	}
	if got := DistSq(a, b); math.Abs(got-9) > 1e-9 {
		t.Errorf("DistSq = %v, want 9", got)
	}
}

func TestDistMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("dimension mismatch did not panic")
		}
	}()
	DistSq([]float32{1}, []float32{1, 2})
}

func TestDotNorm(t *testing.T) {
	a := []float32{1, 2, 3}
	b := []float32{4, 5, 6}
	if got := Dot(a, b); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
	if got := Norm([]float32{3, 4}); math.Abs(got-5) > 1e-9 {
		t.Errorf("Norm = %v, want 5", got)
	}
}

func TestAddSubScaleCopy(t *testing.T) {
	a := []float32{1, 2}
	b := []float32{3, 5}
	dst := make([]float32, 2)
	Sub(dst, b, a)
	if dst[0] != 2 || dst[1] != 3 {
		t.Errorf("Sub = %v", dst)
	}
	Add(dst, dst, a)
	if dst[0] != 3 || dst[1] != 5 {
		t.Errorf("Add = %v", dst)
	}
	Scale(dst, 2)
	if dst[0] != 6 || dst[1] != 10 {
		t.Errorf("Scale = %v", dst)
	}
	c := Copy(a)
	c[0] = 99
	if a[0] != 1 {
		t.Error("Copy aliases input")
	}
}

// Property: the sortable float encoding preserves order, for all finite
// pairs including negatives and zeros.
func TestQuickSortableFloatOrder(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		ea, eb := SortableFloat64(a), SortableFloat64(b)
		switch {
		case a < b:
			return ea < eb
		case a > b:
			return ea > eb
		default:
			return ea == eb || (a == 0 && b == 0) // -0 vs +0 may differ
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSortableFloatRoundTrip(t *testing.T) {
	f := func(a float64) bool {
		if math.IsNaN(a) {
			return true
		}
		return UnsortableFloat64(SortableFloat64(a)) == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// bytes.Compare over PutSortableFloat64 must agree with numeric order.
func TestSortableBytesOrder(t *testing.T) {
	vals := []float64{math.Inf(-1), -1e300, -3.5, -1, -1e-9, 0, 1e-9, 2, 7.25, 1e300, math.Inf(1)}
	prev := make([]byte, 8)
	cur := make([]byte, 8)
	PutSortableFloat64(prev, vals[0])
	for _, v := range vals[1:] {
		PutSortableFloat64(cur, v)
		if bytes.Compare(prev, cur) >= 0 {
			t.Fatalf("byte order broken at %v", v)
		}
		if got := GetSortableFloat64(cur); got != v {
			t.Fatalf("round trip %v -> %v", v, got)
		}
		copy(prev, cur)
	}
}

func TestMinMax(t *testing.T) {
	vecs := [][]float32{{1, 5}, {3, 2}, {-1, 4}}
	lo, hi := MinMax(vecs, 2)
	if lo[0] != -1 || lo[1] != 2 || hi[0] != 3 || hi[1] != 5 {
		t.Errorf("MinMax = %v %v", lo, hi)
	}
	lo, hi = MinMax(nil, 2)
	if lo != nil || hi != nil {
		t.Error("MinMax of empty input must be nil")
	}
}

// Property: triangle inequality holds for Dist over random vectors —
// a sanity check that the distance is a metric, which the triangular
// filter of §4.2 depends on.
func TestQuickTriangleInequality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dim := rng.Intn(16) + 1
		mk := func() []float32 {
			v := make([]float32, dim)
			for i := range v {
				v[i] = float32(rng.NormFloat64())
			}
			return v
		}
		a, b, c := mk(), mk(), mk()
		return Dist(a, c) <= Dist(a, b)+Dist(b, c)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// distSqScalar is the plain reference implementation the shipped kernel
// is checked against bit-for-bit.
func distSqScalar(a, b []float32) float64 {
	var s float64
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		s += d * d
	}
	return s
}

func randVecs(rng *rand.Rand, n int) (a, b []float32) {
	a = make([]float32, n)
	b = make([]float32, n)
	for i := range a {
		a[i] = rng.Float32()*20 - 10
		b[i] = rng.Float32()*20 - 10
	}
	return a, b
}

// DistSq must match the straightforward reference bit-for-bit at every
// length: downstream equivalence guarantees (naive vs optimized search
// paths) assume the kernel's accumulation order is the sequential one.
func TestDistSqMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for n := 0; n <= 67; n++ {
		a, b := randVecs(rng, n)
		got, want := DistSq(a, b), distSqScalar(a, b)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("n=%d: DistSq = %v, reference = %v", n, got, want)
		}
	}
}

func TestDotMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for n := 0; n <= 67; n++ {
		a, b := randVecs(rng, n)
		var want float64
		for i := range a {
			want += float64(a[i]) * float64(b[i])
		}
		got := Dot(a, b)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("n=%d: Dot = %v, reference = %v", n, got, want)
		}
	}
}

// checkBoundContract asserts DistSqBound's two guarantees against
// DistSq: completed => bit-identical; abandoned => the true distance
// strictly exceeds the bound (so the candidate was truly rejectable).
func checkBoundContract(t *testing.T, a, b []float32, bound float64) {
	t.Helper()
	full := DistSq(a, b)
	got, ok := DistSqBound(a, b, bound)
	if ok {
		if math.Float64bits(got) != math.Float64bits(full) {
			t.Fatalf("completed DistSqBound = %x, DistSq = %x (n=%d bound=%v)",
				math.Float64bits(got), math.Float64bits(full), len(a), bound)
		}
		return
	}
	if !(full > bound) {
		t.Fatalf("abandoned at partial %v but true distance %v <= bound %v (n=%d)",
			got, full, bound, len(a))
	}
	if got > full {
		t.Fatalf("partial %v exceeds true distance %v (n=%d)", got, full, len(a))
	}
}

func TestDistSqBoundContract(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for n := 0; n <= 67; n++ {
		a, b := randVecs(rng, n)
		full := distSqScalar(a, b)
		for _, bound := range []float64{math.Inf(1), full * 2, full, full / 2, full / 100, 0, -1} {
			checkBoundContract(t, a, b, bound)
		}
	}
}

// FuzzDistSqBound hammers the equivalence contract with arbitrary bit
// patterns (including NaN/Inf components) and bounds.
func FuzzDistSqBound(f *testing.F) {
	f.Add([]byte{0, 0, 128, 63, 0, 0, 0, 64, 1, 2, 3, 4, 5, 6, 7, 8}, 1.5)
	f.Add(bytes.Repeat([]byte{0x40}, 160), 0.0)
	f.Add(bytes.Repeat([]byte{0xff}, 64), math.Inf(1))
	f.Fuzz(func(t *testing.T, raw []byte, bound float64) {
		n := len(raw) / 8 // two float32s per dimension
		a := make([]float32, n)
		b := make([]float32, n)
		for i := 0; i < n; i++ {
			a[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[8*i:]))
			b[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[8*i+4:]))
		}
		full := DistSq(a, b)
		got, ok := DistSqBound(a, b, bound)
		if ok {
			if math.Float64bits(got) != math.Float64bits(full) {
				t.Fatalf("completed DistSqBound = %x, DistSq = %x", math.Float64bits(got), math.Float64bits(full))
			}
			return
		}
		// Abandonment requires partial > bound, and squared terms only
		// grow, so the completed distance must also clear the bound.
		if !(full > bound) {
			t.Fatalf("abandoned (partial %v) but DistSq %v <= bound %v", got, full, bound)
		}
	})
}
