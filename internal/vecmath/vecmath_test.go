package vecmath

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDist(t *testing.T) {
	a := []float32{0, 0, 0}
	b := []float32{1, 2, 2}
	if got := Dist(a, b); math.Abs(got-3) > 1e-9 {
		t.Errorf("Dist = %v, want 3", got)
	}
	if got := DistSq(a, b); math.Abs(got-9) > 1e-9 {
		t.Errorf("DistSq = %v, want 9", got)
	}
}

func TestDistMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("dimension mismatch did not panic")
		}
	}()
	DistSq([]float32{1}, []float32{1, 2})
}

func TestDotNorm(t *testing.T) {
	a := []float32{1, 2, 3}
	b := []float32{4, 5, 6}
	if got := Dot(a, b); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
	if got := Norm([]float32{3, 4}); math.Abs(got-5) > 1e-9 {
		t.Errorf("Norm = %v, want 5", got)
	}
}

func TestAddSubScaleCopy(t *testing.T) {
	a := []float32{1, 2}
	b := []float32{3, 5}
	dst := make([]float32, 2)
	Sub(dst, b, a)
	if dst[0] != 2 || dst[1] != 3 {
		t.Errorf("Sub = %v", dst)
	}
	Add(dst, dst, a)
	if dst[0] != 3 || dst[1] != 5 {
		t.Errorf("Add = %v", dst)
	}
	Scale(dst, 2)
	if dst[0] != 6 || dst[1] != 10 {
		t.Errorf("Scale = %v", dst)
	}
	c := Copy(a)
	c[0] = 99
	if a[0] != 1 {
		t.Error("Copy aliases input")
	}
}

// Property: the sortable float encoding preserves order, for all finite
// pairs including negatives and zeros.
func TestQuickSortableFloatOrder(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		ea, eb := SortableFloat64(a), SortableFloat64(b)
		switch {
		case a < b:
			return ea < eb
		case a > b:
			return ea > eb
		default:
			return ea == eb || (a == 0 && b == 0) // -0 vs +0 may differ
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSortableFloatRoundTrip(t *testing.T) {
	f := func(a float64) bool {
		if math.IsNaN(a) {
			return true
		}
		return UnsortableFloat64(SortableFloat64(a)) == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// bytes.Compare over PutSortableFloat64 must agree with numeric order.
func TestSortableBytesOrder(t *testing.T) {
	vals := []float64{math.Inf(-1), -1e300, -3.5, -1, -1e-9, 0, 1e-9, 2, 7.25, 1e300, math.Inf(1)}
	prev := make([]byte, 8)
	cur := make([]byte, 8)
	PutSortableFloat64(prev, vals[0])
	for _, v := range vals[1:] {
		PutSortableFloat64(cur, v)
		if bytes.Compare(prev, cur) >= 0 {
			t.Fatalf("byte order broken at %v", v)
		}
		if got := GetSortableFloat64(cur); got != v {
			t.Fatalf("round trip %v -> %v", v, got)
		}
		copy(prev, cur)
	}
}

func TestMinMax(t *testing.T) {
	vecs := [][]float32{{1, 5}, {3, 2}, {-1, 4}}
	lo, hi := MinMax(vecs, 2)
	if lo[0] != -1 || lo[1] != 2 || hi[0] != 3 || hi[1] != 5 {
		t.Errorf("MinMax = %v %v", lo, hi)
	}
	lo, hi = MinMax(nil, 2)
	if lo != nil || hi != nil {
		t.Error("MinMax of empty input must be nil")
	}
}

// Property: triangle inequality holds for Dist over random vectors —
// a sanity check that the distance is a metric, which the triangular
// filter of §4.2 depends on.
func TestQuickTriangleInequality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dim := rng.Intn(16) + 1
		mk := func() []float32 {
			v := make([]float32, dim)
			for i := range v {
				v[i] = float32(rng.NormFloat64())
			}
			return v
		}
		a, b, c := mk(), mk(), mk()
		return Dist(a, c) <= Dist(a, b)+Dist(b, c)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDistSq128(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := make([]float32, 128)
	y := make([]float32, 128)
	for i := range x {
		x[i] = rng.Float32()
		y[i] = rng.Float32()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DistSq(x, y)
	}
}
