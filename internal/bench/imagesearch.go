package bench

import (
	"fmt"
	"io"
	"math/rand"
	"path/filepath"

	"github.com/hd-index/hdindex/internal/baselines"
	"github.com/hd-index/hdindex/internal/borda"
	"github.com/hd-index/hdindex/internal/core"
	"github.com/hd-index/hdindex/internal/data"
)

// imageCorpus is a synthetic stand-in for the Yorck art-image corpus of
// §5.5: each "image" contributes a bag of SURF-like descriptors drawn
// from an image-specific mixture, so descriptors of the same image are
// mutually closer than those of different images.
type imageCorpus struct {
	descriptors [][]float32
	descImage   []uint64 // descriptor id -> image id
	numImages   int
	dim         int
}

func makeImageCorpus(numImages, descPerImage, dim int, seed int64) *imageCorpus {
	rng := rand.New(rand.NewSource(seed))
	c := &imageCorpus{numImages: numImages, dim: dim}
	for img := 0; img < numImages; img++ {
		// Per-image mixture: 3 visual "themes".
		themes := make([][]float64, 3)
		for t := range themes {
			th := make([]float64, dim)
			for d := range th {
				th[d] = rng.Float64()*2 - 1
			}
			themes[t] = th
		}
		for j := 0; j < descPerImage; j++ {
			th := themes[rng.Intn(3)]
			v := make([]float32, dim)
			for d := range v {
				x := th[d] + rng.NormFloat64()*0.08
				if x < -1 {
					x = -1
				}
				if x > 1 {
					x = 1
				}
				v[d] = float32(x)
			}
			c.descriptors = append(c.descriptors, v)
			c.descImage = append(c.descImage, uint64(img))
		}
	}
	return c
}

// queryImage generates a query "image": a noisy re-render of an existing
// one (the retrieval target).
func (c *imageCorpus) queryImage(img int, numDesc int, rng *rand.Rand) [][]float32 {
	// Collect the image's descriptors and perturb a sample of them.
	var own [][]float32
	for i, v := range c.descriptors {
		if c.descImage[i] == uint64(img) {
			own = append(own, v)
		}
	}
	out := make([][]float32, numDesc)
	for j := range out {
		src := own[rng.Intn(len(own))]
		v := make([]float32, c.dim)
		for d := range v {
			v[d] = src[d] + float32(rng.NormFloat64())*0.02
		}
		out[j] = v
	}
	return out
}

// retrieve runs the full §5.5 pipeline for one query image on one method.
func retrieve(ix baselines.Index, c *imageCorpus, queryDescs [][]float32, k, topImages int) ([]borda.ImageScore, error) {
	lists := make([][]uint64, len(queryDescs))
	for i, qd := range queryDescs {
		res, err := ix.Search(qd, k)
		if err != nil {
			return nil, err
		}
		ids := make([]uint64, len(res))
		for j, r := range res {
			ids[j] = r.ID
		}
		lists[i] = ids
	}
	return borda.Aggregate(lists, func(d uint64) uint64 { return c.descImage[d] }, topImages)
}

// imageSearchImpl reproduces Table 6's comparison: overlap of each
// method's top-3 retrieved images with the linear-scan ground truth.
func imageSearchImpl(out io.Writer, cfg Config) error {
	cfg.defaults()
	numImages := int(100 * cfg.Scale)
	if numImages < 20 {
		numImages = 20
	}
	corpus := makeImageCorpus(numImages, 40, 64, cfg.Seed)
	rng := rand.New(rand.NewSource(cfg.Seed + 7))

	ds := &data.Dataset{Name: "yorck-images", Dim: corpus.dim, Lo: -1, Hi: 1, Vectors: corpus.descriptors}
	w := &Workload{
		Spec: DataSpec{Name: "YorckImages", Tau: 8, Omega: 16, Alpha: 1024, MCTau: 8, Possible: true},
		Data: ds,
	}

	const k = 20 // descriptor-level kANN depth
	const topImages = 3

	// Ground truth via linear scan.
	lin, err := LinearBuilder().Build("", w)
	if err != nil {
		return err
	}
	defer lin.Close()

	// HD-Index with §5.5-style parameters.
	p := HDParams(w.Spec, len(corpus.descriptors))
	p.Seed = cfg.Seed
	hd, err := core.Build(filepath.Join(cfg.WorkDir, "imagesearch"), corpus.descriptors, p)
	if err != nil {
		return err
	}
	defer hd.Close()

	fmt.Fprintf(out, "\nImage search (§5.5): Borda-count retrieval over %d images, top-%d\n", numImages, topImages)
	t := NewTable(out, "query image", "truth top-3", "HD-Index top-3", "overlap")
	var overlapSum float64
	trials := 10
	for trial := 0; trial < trials; trial++ {
		target := rng.Intn(numImages)
		qDescs := corpus.queryImage(target, 15, rng)

		truth, err := retrieve(lin, corpus, qDescs, k, topImages)
		if err != nil {
			return err
		}
		got, err := retrieve(hdAdapter{hd}, corpus, qDescs, k, topImages)
		if err != nil {
			return err
		}
		ov := borda.Overlap(truth, got)
		overlapSum += ov
		t.Row(target, fmtImages(truth), fmtImages(got), ov)
	}
	t.Flush()
	fmt.Fprintf(out, "mean overlap with linear-scan ground truth: %.3f\n", overlapSum/float64(trials))
	return nil
}

func fmtImages(scores []borda.ImageScore) string {
	s := ""
	for i, sc := range scores {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprintf("%d", sc.ImageID)
	}
	return s
}
