package bench

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/hd-index/hdindex/internal/core"
	"github.com/hd-index/hdindex/internal/metrics"
	"github.com/hd-index/hdindex/internal/slo"
)

// SweepSpec asks the snapshot runner to walk one filter-cascade knob
// across several values on the SAME built index — the recall/latency
// frontier that used to require one rebuild per operating point. Only
// per-query knobs are sweepable: alpha (leaf candidates per tree) and
// gamma (per-tree filter output). The alpha sweep holds the paper's
// α/γ = 4 ratio (§5.2.6), flooring γ at k, so each point moves the
// whole cascade the way the paper's Figure 6 does; the gamma sweep
// moves γ alone at the built α.
type SweepSpec struct {
	Param  string // "alpha" or "gamma"
	Values []int
}

// ParseSweep parses the hdbench -sweep argument: "alpha=a1,a2,..." or
// "gamma=g1,g2,...". Values must be positive; duplicates are rejected
// so every frontier row is a distinct operating point.
func ParseSweep(s string) (*SweepSpec, error) {
	param, list, ok := strings.Cut(s, "=")
	if !ok {
		return nil, fmt.Errorf("sweep: want PARAM=v1,v2,..., got %q", s)
	}
	param = strings.TrimSpace(param)
	switch param {
	case "alpha", "gamma":
	default:
		return nil, fmt.Errorf("sweep: unknown parameter %q (want alpha or gamma)", param)
	}
	spec := &SweepSpec{Param: param}
	seen := make(map[int]bool)
	for _, f := range strings.Split(list, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("sweep: bad %s value %q", param, f)
		}
		if v < 1 {
			return nil, fmt.Errorf("sweep: %s values must be >= 1, got %d", param, v)
		}
		if seen[v] {
			return nil, fmt.Errorf("sweep: duplicate %s value %d", param, v)
		}
		seen[v] = true
		spec.Values = append(spec.Values, v)
	}
	if len(spec.Values) == 0 {
		return nil, fmt.Errorf("sweep: no values in %q", s)
	}
	// Walk the frontier smallest-first so the printed rows read as a
	// monotone cost curve whatever order the flag listed them in.
	sort.Ints(spec.Values)
	return spec, nil
}

// String renders the spec back into the flag syntax it was parsed from;
// it is what SnapshotConfig records.
func (s *SweepSpec) String() string {
	if s == nil {
		return ""
	}
	vals := make([]string, len(s.Values))
	for i, v := range s.Values {
		vals[i] = strconv.Itoa(v)
	}
	return s.Param + "=" + strings.Join(vals, ",")
}

// SweepRow is one operating point of the recall/latency frontier: the
// swept knob's value plus the quality and cost observed at it, measured
// over the workload's query set on the already-built index.
type SweepRow struct {
	Dataset string `json:"dataset"`
	Param   string `json:"param"`
	Value   int    `json:"value"`
	// Alpha/Gamma are the full resolved cascade the point ran with
	// (echoed from QueryStats) — what a tuner or a request must set to
	// reproduce this operating point exactly, whichever single knob the
	// sweep nominally walked.
	Alpha              int     `json:"alpha,omitempty"`
	Gamma              int     `json:"gamma,omitempty"`
	MeanQueryUS        float64 `json:"mean_query_us"`
	P99QueryUS         float64 `json:"p99_query_us,omitempty"`
	Recall             float64 `json:"recall"`
	MAP                float64 `json:"map"`
	CandidatesPerQuery float64 `json:"candidates_per_query"`
	PageReadsPerQuery  float64 `json:"page_reads_per_query"`
}

// Frontier converts sweep rows for one dataset into the artifact
// internal/slo's tuner loads (`hdbench -sweep-out`).
func Frontier(rows []SweepRow, dataset string, k int) *slo.Frontier {
	f := &slo.Frontier{FormatVersion: slo.FrontierFormatVersion, Dataset: dataset, K: k}
	for _, r := range rows {
		if r.Dataset != dataset {
			continue
		}
		f.Points = append(f.Points, slo.Point{
			Alpha:              r.Alpha,
			Gamma:              r.Gamma,
			MeanQueryUS:        r.MeanQueryUS,
			P99QueryUS:         r.P99QueryUS,
			Recall:             r.Recall,
			MAP:                r.MAP,
			CandidatesPerQuery: r.CandidatesPerQuery,
		})
	}
	return f
}

// sweepDataset walks the spec's values over the open index, issuing the
// workload's queries with the per-query override — no rebuild between
// points; the index never notices the knob moving.
func sweepDataset(ix snapIndex, w *Workload, spec *SweepSpec) ([]SweepRow, error) {
	rows := make([]SweepRow, 0, len(spec.Values))
	ctx := context.Background()
	for _, v := range spec.Values {
		var o core.SearchOptions
		switch spec.Param {
		case "gamma":
			o.Gamma = v
		default:
			o.Alpha = v
			// Hold the paper's α/γ = 4 (§5.2.6): sweeping α at a fixed
			// built γ would mostly move I/O without moving the refined
			// set. γ floors at k so the point can still return k results.
			o.Gamma = max(v/4, w.K)
		}
		var got [][]uint64
		var candidates, reads uint64
		var elapsed time.Duration
		var effAlpha, effGamma int
		perQuery := make([]time.Duration, 0, len(w.Queries))
		for _, q := range w.Queries {
			t0 := time.Now()
			res, st, err := ix.Query(ctx, q, w.K, o)
			d := time.Since(t0)
			elapsed += d
			perQuery = append(perQuery, d)
			if err != nil {
				return nil, fmt.Errorf("sweep %s=%d: %w", spec.Param, v, err)
			}
			ids := make([]uint64, len(res))
			for i, r := range res {
				ids[i] = r.ID
			}
			got = append(got, ids)
			candidates += uint64(st.Candidates)
			reads += st.PageReads
			effAlpha, effGamma = st.Alpha, st.Gamma
		}
		sort.Slice(perQuery, func(i, j int) bool { return perQuery[i] < perQuery[j] })
		nq := float64(len(w.Queries))
		rows = append(rows, SweepRow{
			Dataset:            w.Spec.Name,
			Param:              spec.Param,
			Value:              v,
			Alpha:              effAlpha,
			Gamma:              effGamma,
			MeanQueryUS:        float64(elapsed.Microseconds()) / nq,
			P99QueryUS:         float64(exactPercentile(perQuery, 0.99).Nanoseconds()) / 1e3,
			Recall:             metrics.MeanRecall(got, w.TruthIDs, w.K),
			MAP:                metrics.MAP(got, w.TruthIDs, w.K),
			CandidatesPerQuery: float64(candidates) / nq,
			PageReadsPerQuery:  float64(reads) / nq,
		})
	}
	return rows, nil
}
