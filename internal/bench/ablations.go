package bench

import (
	"fmt"
	"io"
	"math/rand"
	"path/filepath"
	"time"

	"github.com/hd-index/hdindex/internal/core"
)

// AblationPartition reproduces §5.2.1: random vs contiguous subspace
// partitioning. Random partitioning is emulated by permuting the
// dimensions of data and queries identically before building — exactly
// equivalent to assigning random dimension subsets to the curves.
func AblationPartition(out io.Writer, cfg Config) error {
	cfg.defaults()
	cfg.K = 10
	spec, _ := SpecByName("SIFT10K")
	w := MakeWorkload(spec, cfg)
	fmt.Fprintln(out, "\nAblation (§5.2.1): contiguous vs random dimension partitioning (SIFT10K)")
	t := NewTable(out, "partitioning", "MAP@10", "ratio")

	p := HDParams(spec, len(w.Data.Vectors))
	p.Seed = cfg.Seed
	r, err := runHD(w, filepath.Join(cfg.WorkDir, "abl-part", "contig"), p, 10)
	if err != nil {
		return err
	}
	t.Row("contiguous", r.MAP, r.Ratio)

	for trial := 0; trial < 3; trial++ {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(trial) + 1))
		perm := rng.Perm(w.Data.Dim)
		permuted := *w
		pd := *w.Data
		pd.Vectors = permuteAll(w.Data.Vectors, perm)
		permuted.Data = &pd
		permuted.Queries = permuteAll(w.Queries, perm)
		// Ground truth ids are invariant under a coordinate permutation.
		r, err := runHD(&permuted, filepath.Join(cfg.WorkDir, "abl-part", fmt.Sprintf("rand%d", trial)), p, 10)
		if err != nil {
			return err
		}
		t.Row(fmt.Sprintf("random #%d", trial+1), r.MAP, r.Ratio)
	}
	t.Flush()
	return nil
}

func permuteAll(vecs [][]float32, perm []int) [][]float32 {
	out := make([][]float32, len(vecs))
	for i, v := range vecs {
		p := make([]float32, len(v))
		for d, src := range perm {
			p[d] = v[src]
		}
		out[i] = p
	}
	return out
}

// AblationCurve quantifies the paper's choice of the Hilbert curve [37]
// by swapping in a Z-order (Morton) curve.
func AblationCurve(out io.Writer, cfg Config) error {
	cfg.defaults()
	cfg.K = 10
	spec, _ := SpecByName("SIFT10K")
	w := MakeWorkload(spec, cfg)
	fmt.Fprintln(out, "\nAblation: Hilbert vs Z-order curve (SIFT10K)")
	t := NewTable(out, "curve", "MAP@10", "ratio", "query ms")
	for _, curve := range []core.Curve{core.CurveHilbert, core.CurveZOrder} {
		p := HDParams(spec, len(w.Data.Vectors))
		p.Curve = curve
		p.Seed = cfg.Seed
		r, err := runHD(w, filepath.Join(cfg.WorkDir, "abl-curve", string(curve)), p, 10)
		if err != nil {
			return err
		}
		t.Row(string(curve), r.MAP, r.Ratio, r.AvgQueryMS)
	}
	t.Flush()
	return nil
}

// AblationParallel measures the trivial parallelisation across trees the
// paper notes in §5.2.8.
func AblationParallel(out io.Writer, cfg Config) error {
	cfg.defaults()
	cfg.K = 10
	spec, _ := SpecByName("SIFT1M")
	w := MakeWorkload(spec, cfg)
	fmt.Fprintln(out, "\nAblation (§5.2.8): sequential vs parallel tree search (SIFT1M)")
	t := NewTable(out, "mode", "query ms", "MAP@10")
	for _, parallel := range []bool{false, true} {
		p := HDParams(spec, len(w.Data.Vectors))
		p.Parallel = parallel
		p.Seed = cfg.Seed
		mode := "sequential"
		if parallel {
			mode = "parallel"
		}
		r, err := runHD(w, filepath.Join(cfg.WorkDir, "abl-par", mode), p, 10)
		if err != nil {
			return err
		}
		t.Row(mode, r.AvgQueryMS, r.MAP)
	}
	t.Flush()
	return nil
}

// AblationCache compares warm buffer-pool querying with the paper's
// caching-off protocol, reporting both time and physical page reads.
func AblationCache(out io.Writer, cfg Config) error {
	cfg.defaults()
	cfg.K = 10
	spec, _ := SpecByName("SIFT10K")
	w := MakeWorkload(spec, cfg)
	fmt.Fprintln(out, "\nAblation (§5 protocol): buffer pool on vs off (SIFT10K)")
	t := NewTable(out, "cache", "query ms", "page reads/query", "MAP@10")
	for _, disable := range []bool{false, true} {
		p := HDParams(spec, len(w.Data.Vectors))
		p.DisableCache = disable
		p.Seed = cfg.Seed
		dir := filepath.Join(cfg.WorkDir, "abl-cache", fmt.Sprintf("%v", disable))
		ix, err := core.Build(dir, w.Data.Vectors, p)
		if err != nil {
			return err
		}
		ix.ResetIOStats()
		got := make([][]uint64, len(w.Queries))
		t0 := time.Now()
		for qi, q := range w.Queries {
			res, err := ix.Search(q, 10)
			if err != nil {
				ix.Close()
				return err
			}
			ids := make([]uint64, len(res))
			for i, r := range res {
				ids[i] = r.ID
			}
			got[qi] = ids
		}
		ms := float64(time.Since(t0).Microseconds()) / 1000 / float64(len(w.Queries))
		reads := float64(ix.IOStats().Reads) / float64(len(w.Queries))
		mapv := mapOf(got, w.TruthIDs, 10)
		mode := "on"
		if disable {
			mode = "off"
		}
		t.Row(mode, ms, reads, mapv)
		ix.Close()
	}
	t.Flush()
	return nil
}

// AblationScaling supports §5.4.2: HD-Index's query time "scales
// gracefully with dataset size" because the per-query work is fixed by
// (τ, α, γ), not by n. Doubling n repeatedly must grow query time far
// slower than the exact methods', and MAP must degrade only gently.
func AblationScaling(out io.Writer, cfg Config) error {
	cfg.defaults()
	cfg.K = 10
	fmt.Fprintln(out, "\nAblation (§5.4.2): scaling with dataset size (SIFT-like, fixed alpha=1024)")
	t := NewTable(out, "n", "HD ms", "HD MAP", "iDistance ms", "HNSW ms", "HNSW MAP")
	for _, mult := range []float64{0.5, 1, 2, 4} {
		spec, _ := SpecByName("SIFT10K")
		spec.Alpha = 1024
		sub := cfg
		sub.Scale = cfg.Scale * mult
		w := MakeWorkload(spec, sub)
		n := len(w.Data.Vectors)

		p := HDParams(spec, n)
		p.Seed = cfg.Seed
		hd, err := runHD(w, filepath.Join(cfg.WorkDir, "abl-scale", fmt.Sprintf("hd%d", n)), p, 10)
		if err != nil {
			return err
		}
		var idistMS, hnswMS, hnswMAP float64
		for _, b := range Methods(cfg.Seed) {
			switch b.Name {
			case "iDistance", "HNSW":
				r := RunMethod(b, w, filepath.Join(cfg.WorkDir, "abl-scale", b.Name+fmt.Sprint(n)), 10)
				if r.Err != nil {
					return r.Err
				}
				if b.Name == "iDistance" {
					idistMS = r.AvgQueryMS
				} else {
					hnswMS = r.AvgQueryMS
					hnswMAP = r.MAP
				}
			}
		}
		t.Row(n, hd.AvgQueryMS, hd.MAP, idistMS, hnswMS, hnswMAP)
	}
	t.Flush()
	return nil
}

// AblationPtolemaicIO supports §5.2.5's I/O argument: the Ptolemaic
// filter costs CPU, not disk — page reads per query must match the
// triangular-only configuration.
func AblationPtolemaicIO(out io.Writer, cfg Config) error {
	cfg.defaults()
	spec, _ := SpecByName("SIFT10K")
	w := MakeWorkload(spec, cfg)
	fmt.Fprintln(out, "\nAblation (§5.2.5): Ptolemaic filtering is I/O-free (SIFT10K)")
	t := NewTable(out, "filter", "page reads/query", "MAP@10", "query ms")
	for _, pto := range []bool{false, true} {
		p := HDParams(spec, len(w.Data.Vectors))
		p.UsePtolemaic = pto
		if pto {
			p.Beta = p.Alpha
		}
		p.DisableCache = true
		p.Seed = cfg.Seed
		dir := filepath.Join(cfg.WorkDir, "abl-pto", fmt.Sprintf("%v", pto))
		ix, err := core.Build(dir, w.Data.Vectors, p)
		if err != nil {
			return err
		}
		ix.ResetIOStats()
		got := make([][]uint64, len(w.Queries))
		t0 := time.Now()
		for qi, q := range w.Queries {
			res, err := ix.Search(q, 10)
			if err != nil {
				ix.Close()
				return err
			}
			ids := make([]uint64, len(res))
			for i, r := range res {
				ids[i] = r.ID
			}
			got[qi] = ids
		}
		ms := float64(time.Since(t0).Microseconds()) / 1000 / float64(len(w.Queries))
		reads := float64(ix.IOStats().Reads) / float64(len(w.Queries))
		name := "triangular"
		if pto {
			name = "tri+ptolemaic"
		}
		t.Row(name, reads, mapOf(got, w.TruthIDs, 10), ms)
		ix.Close()
	}
	t.Flush()
	return nil
}
