package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	hdindex "github.com/hd-index/hdindex"
	"github.com/hd-index/hdindex/internal/server"
	"github.com/hd-index/hdindex/internal/telemetry"
)

// Overload-phase shape, fixed so snapshots stay machine-comparable:
// the server admits overloadInflight concurrent requests, the
// sustainable-rate phase drives exactly that many closed-loop clients,
// and the storm drives overloadFactor times as many — a closed-loop
// approximation of "4× the sustainable QPS" whose realized offered
// rate the row reports alongside.
const (
	overloadInflight = 4
	overloadFactor   = 4
	overloadMeasure  = 1500 * time.Millisecond
	// overloadBatch is the queries-per-request of the storm. Batches,
	// not single searches: each request must carry enough server-side
	// work that concurrent clients genuinely stack up against the
	// limiter instead of draining between arrivals (single searches
	// finish faster than a closed-loop client can turn around).
	overloadBatch = 16
)

// OverloadResult is one dataset's overload-storm row: what the serving
// stack does when offered ~4× what it can sustain. The contract under
// test: excess load is shed immediately with structured errors (shed
// rate, shed latency), accepted requests keep a bounded tail
// (accepted p99 vs the unloaded p99), and adaptive degradation kicks
// in (degraded fraction).
type OverloadResult struct {
	Dataset string `json:"dataset"`
	N       int    `json:"n"`
	Dim     int    `json:"dim"`
	// Clients is the storm's concurrent client count
	// (overloadFactor × overloadInflight closed-loop clients).
	Clients int `json:"clients"`
	// BatchSize is the queries-per-request of every phase; the QPS
	// fields below count queries (requests × BatchSize).
	BatchSize int `json:"batch_size"`
	// UnloadedP99US is the single-client per-request p99 — the baseline
	// the accepted tail is judged against (same request shape). All
	// latency fields are server-side (Server-Timing header): queue wait
	// included, client-side delivery delay excluded.
	UnloadedP99US float64 `json:"unloaded_p99_us"`
	// SustainableQPS is the closed-loop throughput with exactly the
	// server's admitted concurrency (no queueing, no shedding).
	SustainableQPS float64 `json:"sustainable_qps"`
	// OfferedQPS is the storm's realized query rate (accepted + shed).
	OfferedQPS float64 `json:"offered_qps"`
	// AcceptedQPS and AcceptedP99US describe the requests that were
	// admitted and answered during the storm.
	AcceptedQPS   float64 `json:"accepted_qps"`
	AcceptedP99US float64 `json:"accepted_p99_us"`
	// TimeoutMS is the per-request deadline the storm's requests carry
	// (3× the unloaded p99): the deadline-aware queue sheds requests it
	// cannot serve in time, which is what bounds the accepted tail.
	TimeoutMS int `json:"timeout_ms"`
	// ShedRate is shed/offered; ShedP99US is the client-observed p99 of
	// the shed responses themselves (fast-fail quality). TimedOutRate
	// counts requests admitted but expired mid-flight (504s).
	ShedRate     float64 `json:"shed_rate"`
	ShedP99US    float64 `json:"shed_p99_us"`
	TimedOutRate float64 `json:"timed_out_rate"`
	// DegradedFraction is the share of accepted responses answered with
	// the pressure-degraded cascade.
	DegradedFraction float64 `json:"degraded_fraction"`
}

// overloadClient drives one closed-loop client until stop, recording
// every response into the shared tallies.
type overloadTally struct {
	accepted atomic.Int64
	shed     atomic.Int64
	timedOut atomic.Int64
	degraded atomic.Int64
	errs     atomic.Int64
	okHist   telemetry.Histogram
	shedHist telemetry.Histogram
}

// serverDuration reads the request's server-side duration from the
// Server-Timing header — queue wait included, client-side delivery
// delay excluded (on a saturated box the client goroutine may not be
// scheduled for tens of milliseconds after the server finished).
// Falls back to the client-observed duration if the header is absent.
func serverDuration(resp *http.Response, fallback time.Duration) time.Duration {
	st := resp.Header.Get("Server-Timing")
	if i := strings.Index(st, "dur="); i >= 0 {
		val := st[i+4:]
		if j := strings.IndexAny(val, ";, "); j >= 0 {
			val = val[:j]
		}
		if ms, err := strconv.ParseFloat(val, 64); err == nil {
			return time.Duration(ms * float64(time.Millisecond))
		}
	}
	return fallback
}

func (tl *overloadTally) run(client *http.Client, url string, bodies [][]byte, stop time.Time) {
	for i := 0; time.Now().Before(stop); i++ {
		t0 := time.Now()
		resp, err := client.Post(url, "application/json", bytes.NewReader(bodies[i%len(bodies)]))
		if err != nil {
			tl.errs.Add(1)
			continue
		}
		elapsed := serverDuration(resp, time.Since(t0))
		switch resp.StatusCode {
		case http.StatusOK:
			var sr struct {
				Stats []*struct {
					Degraded bool `json:"degraded"`
				} `json:"stats"`
			}
			if json.NewDecoder(resp.Body).Decode(&sr) == nil {
				for _, st := range sr.Stats {
					if st != nil && st.Degraded {
						tl.degraded.Add(1)
						break
					}
				}
			}
			tl.accepted.Add(1)
			tl.okHist.ObserveDuration(elapsed)
		case http.StatusServiceUnavailable, http.StatusTooManyRequests:
			tl.shed.Add(1)
			tl.shedHist.ObserveDuration(elapsed)
		case http.StatusGatewayTimeout:
			// Admitted but expired mid-flight: the per-request deadline
			// fired during execution rather than in the queue.
			tl.timedOut.Add(1)
		default:
			tl.errs.Add(1)
		}
		resp.Body.Close()
	}
}

func stormClients(clients int, url string, bodies [][]byte, d time.Duration) *overloadTally {
	tl := &overloadTally{}
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: clients}}
	stop := time.Now().Add(d)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tl.run(client, url, bodies, stop)
		}()
	}
	wg.Wait()
	client.CloseIdleConnections()
	return tl
}

// snapshotOverload builds the dataset's index, mounts the HTTP serving
// stack with admission control on, measures the unloaded baseline and
// the sustainable closed-loop rate, then storms the server at
// overloadFactor times that concurrency and reports what was shed,
// what was served, and how degraded the serving got.
func snapshotOverload(spec DataSpec, cfg Config) (OverloadResult, error) {
	w := MakeWorkload(spec, cfg)
	n := len(w.Data.Vectors)
	out := OverloadResult{Dataset: spec.Name, N: n, Dim: w.Data.Dim,
		Clients: overloadFactor * overloadInflight, BatchSize: overloadBatch}

	p := HDParams(spec, n)
	dir := filepath.Join(cfg.WorkDir, "snapshot-overload", spec.Name)
	idx, err := hdindex.Build(dir, w.Data.Vectors, hdindex.Options{
		Tau: p.Tau, Omega: p.Omega, M: p.M,
		Alpha: p.Alpha, Beta: p.Beta, Gamma: p.Gamma,
		Seed: cfg.Seed, Shards: cfg.Shards,
		// Bound per-request fan-out so admitted work cannot saturate
		// every core: shed latency is part of what this row measures.
		BatchWorkers: 2,
	})
	if err != nil {
		return out, err
	}
	defer idx.Close()

	srv := server.New(idx, server.Config{
		MaxInflight: overloadInflight,
		// One whole batch may wait (each batch weighs the full limiter):
		// the accepted tail is then bounded at ~3 service rounds — the
		// remainder of the running batch, one queued batch, and the
		// request's own — which is what keeps accepted p99 within ~3× the
		// unloaded p99 while everything beyond sheds.
		MaxQueue: overloadInflight,
		// Degrade once the queue's estimated drain time passes 10ms —
		// deep into overload but instant under the storm.
		DegradePressure: 0.01,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	url := ts.URL + "/searchbatch"

	// Every request is a batch of overloadBatch queries; rotating the
	// window start keeps the requests distinct without changing their
	// cost. A batch weighs its query count in the limiter (clamped to
	// MaxInflight), so each admitted request occupies the whole limiter
	// and the queue meters whole batches — the serving shape whose
	// shedding the row measures.
	makeBodies := func(timeoutMS int) ([][]byte, error) {
		bodies := make([][]byte, len(w.Queries))
		for i := range w.Queries {
			batch := make([][]float32, overloadBatch)
			for j := 0; j < overloadBatch; j++ {
				batch[j] = w.Queries[(i+j)%len(w.Queries)]
			}
			req := map[string]any{"queries": batch, "k": w.K, "stats": true}
			if timeoutMS > 0 {
				req["timeout_ms"] = timeoutMS
			}
			b, err := json.Marshal(req)
			if err != nil {
				return nil, err
			}
			bodies[i] = b
		}
		return bodies, nil
	}
	bodies, err := makeBodies(0)
	if err != nil {
		return out, err
	}

	// Phase 1 — unloaded baseline: one client, no contention.
	base := stormClients(1, url, bodies, overloadMeasure/2)
	if base.accepted.Load() == 0 {
		return out, fmt.Errorf("bench: overload baseline made no successful requests (%d errors)", base.errs.Load())
	}
	out.UnloadedP99US = base.okHist.Snapshot().Quantile(0.99) / 1e3

	// Phase 2 — sustainable rate: exactly the admitted concurrency.
	sus := stormClients(overloadInflight, url, bodies, overloadMeasure/2)
	out.SustainableQPS = float64(sus.accepted.Load()*overloadBatch) / (overloadMeasure / 2).Seconds()

	// Phase 3 — the storm: overloadFactor× the sustainable concurrency.
	// Each request carries a deadline of 3× the unloaded p99, so the
	// deadline-aware queue sheds what it cannot serve in time and the
	// accepted tail stays bounded instead of absorbing the queue.
	out.TimeoutMS = max(int(math.Ceil(3*out.UnloadedP99US/1e3)), 1)
	stormBodies, err := makeBodies(out.TimeoutMS)
	if err != nil {
		return out, err
	}
	st := stormClients(overloadFactor*overloadInflight, url, stormBodies, overloadMeasure)
	accepted, shed, timedOut := st.accepted.Load(), st.shed.Load(), st.timedOut.Load()
	offered := accepted + shed + timedOut
	if offered == 0 {
		return out, fmt.Errorf("bench: overload storm made no requests (%d errors)", st.errs.Load())
	}
	secs := overloadMeasure.Seconds()
	out.OfferedQPS = float64(offered*overloadBatch) / secs
	out.AcceptedQPS = float64(accepted*overloadBatch) / secs
	out.AcceptedP99US = st.okHist.Snapshot().Quantile(0.99) / 1e3
	out.ShedRate = float64(shed) / float64(offered)
	out.TimedOutRate = float64(timedOut) / float64(offered)
	if shed > 0 {
		out.ShedP99US = st.shedHist.Snapshot().Quantile(0.99) / 1e3
	}
	if accepted > 0 {
		out.DegradedFraction = float64(st.degraded.Load()) / float64(accepted)
	}
	return out, nil
}

// PrintOverload renders the overload rows the way the other phases
// print theirs.
func PrintOverload(rows []OverloadResult) {
	fmt.Println("\n== Overload storm (closed-loop, 4× sustainable concurrency) ==")
	for _, r := range rows {
		fmt.Printf("  %-10s offered %7.0f qps  accepted %7.0f qps  shed %5.1f%%  accepted-p99 %8.0fµs (unloaded %6.0fµs)  degraded %5.1f%%\n",
			r.Dataset, r.OfferedQPS, r.AcceptedQPS, 100*r.ShedRate,
			r.AcceptedP99US, r.UnloadedP99US, 100*r.DegradedFraction)
	}
}
