// Package bench is the experiment harness of the reproduction: one
// runner per table/figure of the paper's evaluation (§5), each printing
// the same rows/series the paper reports. cmd/hdbench drives it at full
// scale; the repository-root benchmarks drive it at reduced scale.
//
// Scale note: the harness generates synthetic stand-ins for the paper's
// corpora (see DESIGN.md §3) whose sizes scale with Config.Scale, so the
// same code runs as a quick smoke test (Scale≈0.05) or a multi-minute
// full reproduction (Scale=1).
package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"github.com/hd-index/hdindex/internal/baselines"
	"github.com/hd-index/hdindex/internal/baselines/c2lsh"
	"github.com/hd-index/hdindex/internal/baselines/hnsw"
	"github.com/hd-index/hdindex/internal/baselines/idistance"
	"github.com/hd-index/hdindex/internal/baselines/linearscan"
	"github.com/hd-index/hdindex/internal/baselines/multicurves"
	"github.com/hd-index/hdindex/internal/baselines/opq"
	"github.com/hd-index/hdindex/internal/baselines/qalsh"
	"github.com/hd-index/hdindex/internal/baselines/srs"
	"github.com/hd-index/hdindex/internal/core"
	"github.com/hd-index/hdindex/internal/data"
	"github.com/hd-index/hdindex/internal/metrics"
)

// Config controls experiment scale and output.
type Config struct {
	Scale   float64 // dataset size multiplier; 1.0 = harness defaults
	Queries int     // queries per dataset (default 20)
	K       int     // neighbours for quality metrics where the paper uses 100
	WorkDir string  // scratch directory for on-disk indexes; "" = temp
	Seed    int64
	// Shards builds the snapshot's HD-Index as a manifest-backed
	// sharded layout with this many shards (0 = the legacy single
	// index). Only the snapshot runner consults it; the paper's
	// experiment runners always measure the monolithic index.
	Shards int
	// BuildScale > 0 adds build-only rows to the snapshot: each
	// dataset built once at this scale purely for construction-cost
	// measurement (see Snapshot.Build). Only the snapshot runner
	// consults it.
	BuildScale float64
	// Sweep, when set, walks one per-query knob (alpha or gamma)
	// across its values on each dataset's already-built index and adds
	// the recall/latency frontier rows to the snapshot (see
	// Snapshot.Sweep). Only the snapshot runner consults it.
	Sweep *SweepSpec
	// Ingest > 0 adds the mixed insert/search rows to the snapshot:
	// this many concurrent WAL-durable inserts per dataset with readers
	// alongside, plus the flush-per-insert comparison (see
	// Snapshot.Ingest). Only the snapshot runner consults it.
	Ingest int
	// Overload adds the admission-control storm rows to the snapshot:
	// each dataset served over HTTP with admission on, offered ~4× its
	// sustainable closed-loop rate (see Snapshot.Overload). Only the
	// snapshot runner consults it.
	Overload bool
	// Cluster adds the cluster-serving rows to the snapshot: each
	// dataset built sharded and served both in-process and as a
	// coordinator-fronted cluster of per-shard servers, under the same
	// closed-loop storm (see Snapshot.Cluster). Only the snapshot
	// runner consults it.
	Cluster bool
	// Tiered adds the quality-tier rows to the snapshot: each named
	// preset (exact/balanced/fast) measured on each dataset's built
	// index, plus an "auto" row where the SLO tuner picks its own
	// operating point from a self-measured frontier (see
	// Snapshot.Tiered). Only the snapshot runner consults it.
	Tiered bool
}

func (c *Config) defaults() {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Queries <= 0 {
		c.Queries = 20
	}
	if c.K <= 0 {
		c.K = 100
	}
	if c.WorkDir == "" {
		c.WorkDir = filepath.Join(os.TempDir(), fmt.Sprintf("hdbench-%d", os.Getpid()))
	}
}

// DataSpec describes one of the paper's datasets (Table 4) plus the
// HD-Index parameters Table 3 assigns it.
type DataSpec struct {
	Name       string
	Gen        func(n int, seed int64) *data.Dataset
	BaseN      int // harness size at Scale = 1 (paper sizes are larger; see DESIGN.md)
	Tau        int
	Omega      int
	Alpha      int
	MCTau      int  // Multicurves tau (must divide dim)
	Possible   bool // false when the paper marks Multicurves "NP"
	QueryNoise float64
}

// Specs returns the stand-ins for the paper's datasets, in Table 4 order.
func Specs() []DataSpec {
	return []DataSpec{
		{Name: "SIFT10K", Gen: data.SIFTLike, BaseN: 10000, Tau: 8, Omega: 8, Alpha: 2048, MCTau: 8, Possible: true, QueryNoise: 0.01},
		{Name: "Audio", Gen: data.AudioLike, BaseN: 10000, Tau: 8, Omega: 16, Alpha: 2048, MCTau: 8, Possible: true, QueryNoise: 0.01},
		{Name: "SUN", Gen: data.SUNLike, BaseN: 4000, Tau: 16, Omega: 16, Alpha: 2048, MCTau: 16, Possible: false, QueryNoise: 0.01},
		{Name: "SIFT1M", Gen: data.SIFTLike, BaseN: 50000, Tau: 8, Omega: 8, Alpha: 4096, MCTau: 8, Possible: true, QueryNoise: 0.01},
		{Name: "Yorck", Gen: data.YorckLike, BaseN: 30000, Tau: 8, Omega: 16, Alpha: 4096, MCTau: 8, Possible: true, QueryNoise: 0.01},
		{Name: "Enron", Gen: data.EnronLike, BaseN: 1500, Tau: 37, Omega: 16, Alpha: 1024, MCTau: 37, Possible: false, QueryNoise: 0.01},
		{Name: "Glove", Gen: data.GloveLike, BaseN: 20000, Tau: 10, Omega: 16, Alpha: 2048, MCTau: 10, Possible: true, QueryNoise: 0.01},
	}
}

// SpecByName returns the spec with the given name.
func SpecByName(name string) (DataSpec, bool) {
	for _, s := range Specs() {
		if s.Name == name {
			return s, true
		}
	}
	return DataSpec{}, false
}

// Workload is a generated dataset with queries and exact ground truth.
type Workload struct {
	Spec     DataSpec
	Data     *data.Dataset
	Queries  [][]float32
	TruthIDs [][]uint64
	TruthDs  [][]float64
	K        int
}

// MakeWorkload generates the dataset, queries and ground truth for spec
// at the configured scale.
func MakeWorkload(spec DataSpec, cfg Config) *Workload {
	cfg.defaults()
	n := int(float64(spec.BaseN) * cfg.Scale)
	if n < 300 {
		n = 300
	}
	ds := spec.Gen(n, cfg.Seed+int64(len(spec.Name)))
	queries := ds.PerturbedQueries(cfg.Queries, spec.QueryNoise, cfg.Seed+101)
	ids, dists := data.GroundTruth(ds.Vectors, queries, cfg.K)
	return &Workload{Spec: spec, Data: ds, Queries: queries, TruthIDs: ids, TruthDs: dists, K: cfg.K}
}

// RunResult aggregates a method's behaviour on a workload.
type RunResult struct {
	Method     string
	MAP        float64
	Ratio      float64
	AvgQueryMS float64
	IndexBytes int64
	BuildMS    float64
	BuildRAMMB float64 // retained heap growth during build
	QueryRAMMB float64 // retained heap growth during querying
	Err        error   // non-nil when the method cannot run (the paper's NP/CR)
}

// hdAdapter exposes core.Index through the baselines interface.
type hdAdapter struct{ ix *core.Index }

func (a hdAdapter) Name() string { return "HD-Index" }
func (a hdAdapter) Search(q []float32, k int) ([]baselines.Result, error) {
	res, err := a.ix.Search(q, k)
	if err != nil {
		return nil, err
	}
	out := make([]baselines.Result, len(res))
	for i, r := range res {
		out[i] = baselines.Result{ID: r.ID, Dist: r.Dist}
	}
	return out, nil
}
func (a hdAdapter) SizeBytes() int64 { return a.ix.SizeOnDisk() }
func (a hdAdapter) Close() error     { return a.ix.Close() }

// Builder constructs a method's index over a workload.
type Builder struct {
	Name  string
	Build func(dir string, w *Workload) (baselines.Index, error)
}

// HDParams returns the paper-recommended HD-Index parameters for a spec,
// clamped to the workload size.
func HDParams(spec DataSpec, n int) core.Params {
	alpha := spec.Alpha
	if alpha > n {
		alpha = n
	}
	gamma := alpha / 4
	if gamma < 1 {
		gamma = alpha
	}
	return core.Params{
		Tau:   spec.Tau,
		Omega: spec.Omega,
		M:     10,
		Alpha: alpha,
		Beta:  alpha,
		Gamma: gamma,
	}
}

// Methods returns the standard builder set of §5, in the paper's order.
// seed keeps runs deterministic.
func Methods(seed int64) []Builder {
	return []Builder{
		{Name: "SRS", Build: func(dir string, w *Workload) (baselines.Index, error) {
			// Paper: SRS-12, c=2, 6 projections, τ=0.1809, t=0.00242.
			// The tiny t is calibrated for millions of points; keep a
			// floor so reduced-scale workloads examine something.
			return srs.Build(w.Data.Vectors, srs.Params{MaxFraction: 0.02, MinCandidate: 64, Seed: seed})
		}},
		{Name: "C2LSH", Build: func(dir string, w *Workload) (baselines.Index, error) {
			return c2lsh.Build(w.Data.Vectors, c2lsh.Params{Seed: seed})
		}},
		{Name: "iDistance", Build: func(dir string, w *Workload) (baselines.Index, error) {
			return idistance.Build(dir, w.Data.Vectors, idistance.Params{Seed: seed})
		}},
		{Name: "Multicurves", Build: func(dir string, w *Workload) (baselines.Index, error) {
			return multicurves.Build(dir, w.Data.Vectors, multicurves.Params{
				Tau: w.Spec.MCTau, Omega: 8, Alpha: w.Spec.Alpha,
			})
		}},
		{Name: "QALSH", Build: func(dir string, w *Workload) (baselines.Index, error) {
			return qalsh.Build(w.Data.Vectors, qalsh.Params{Seed: seed})
		}},
		{Name: "OPQ", Build: func(dir string, w *Workload) (baselines.Index, error) {
			dim := w.Data.Dim
			m := 8
			for dim%m != 0 && m > 1 {
				m--
			}
			// The rotation optimisation solves a ν×ν Procrustes problem
			// per iteration (O(ν³) with our Jacobi SVD); restrict it to
			// moderate dimensionalities and fall back to plain PQ above.
			iters := 2
			if dim > 256 {
				iters = 0
			}
			return opq.Build(w.Data.Vectors, opq.Params{M: m, K: 64, OPQIterations: iters, RerankK: 4 * w.K, Seed: seed})
		}},
		{Name: "HNSW", Build: func(dir string, w *Workload) (baselines.Index, error) {
			return hnsw.Build(w.Data.Vectors, hnsw.Params{M: 10, EfSearch: 2 * w.K, Seed: seed})
		}},
		{Name: "HD-Index", Build: func(dir string, w *Workload) (baselines.Index, error) {
			p := HDParams(w.Spec, len(w.Data.Vectors))
			p.Seed = seed
			ix, err := core.Build(dir, w.Data.Vectors, p)
			if err != nil {
				return nil, err
			}
			return hdAdapter{ix}, nil
		}},
	}
}

// LinearBuilder returns the exact linear-scan "method".
func LinearBuilder() Builder {
	return Builder{Name: "Linear", Build: func(dir string, w *Workload) (baselines.Index, error) {
		return linearscan.New(w.Data.Vectors)
	}}
}

// heapMB returns live heap megabytes after a GC.
func heapMB() float64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return float64(ms.HeapAlloc) / (1 << 20)
}

// RunMethod builds b over w and measures everything Fig. 8 reports.
func RunMethod(b Builder, w *Workload, dir string, k int) RunResult {
	res := RunResult{Method: b.Name}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		res.Err = err
		return res
	}
	before := heapMB()
	t0 := time.Now()
	ix, err := b.Build(dir, w)
	res.BuildMS = float64(time.Since(t0).Microseconds()) / 1000
	if err != nil {
		res.Err = err
		return res
	}
	defer ix.Close()
	res.BuildRAMMB = heapMB() - before
	if res.BuildRAMMB < 0 {
		res.BuildRAMMB = 0
	}
	res.IndexBytes = ix.SizeBytes()

	got := make([][]uint64, len(w.Queries))
	gotD := make([][]float64, len(w.Queries))
	t0 = time.Now()
	for qi, q := range w.Queries {
		r, err := ix.Search(q, k)
		if err != nil {
			res.Err = err
			return res
		}
		ids := make([]uint64, len(r))
		ds := make([]float64, len(r))
		for i, x := range r {
			ids[i] = x.ID
			ds[i] = x.Dist
		}
		got[qi] = ids
		gotD[qi] = ds
	}
	res.AvgQueryMS = float64(time.Since(t0).Microseconds()) / 1000 / float64(len(w.Queries))
	// Querying RAM, in the paper's sense: everything that must stay
	// heap-resident to serve queries — the in-memory index structures of
	// HNSW/OPQ/LSH methods, only buffers for the disk-based ones.
	res.QueryRAMMB = heapMB() - before
	if res.QueryRAMMB < 0 {
		res.QueryRAMMB = 0
	}

	res.MAP = metrics.MAP(got, w.TruthIDs, k)
	var rsum float64
	for qi := range got {
		tk := w.TruthDs[qi]
		if len(tk) > k {
			tk = tk[:k]
		}
		rsum += metrics.Ratio(gotD[qi], tk)
	}
	res.Ratio = rsum / float64(len(got))
	return res
}

// Table prints aligned rows.
type Table struct {
	w      io.Writer
	header []string
	rows   [][]string
}

// NewTable starts a table with the given column headers.
func NewTable(w io.Writer, header ...string) *Table {
	return &Table{w: w, header: header}
}

// Row appends a row; values are formatted with %v.
func (t *Table) Row(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// Flush renders the table.
func (t *Table) Flush() {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(t.w, "  ")
			}
			fmt.Fprintf(t.w, "%-*s", widths[i], c)
		}
		fmt.Fprintln(t.w)
	}
	line(t.header)
	for _, r := range t.rows {
		line(r)
	}
}
