package bench

import (
	"path/filepath"
	"testing"

	"github.com/hd-index/hdindex/internal/slo"
)

func TestParseSweep(t *testing.T) {
	spec, err := ParseSweep("alpha=512, 128,2048")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Param != "alpha" {
		t.Fatalf("param %q", spec.Param)
	}
	// Values sort ascending so the frontier reads as a cost curve.
	want := []int{128, 512, 2048}
	if len(spec.Values) != len(want) {
		t.Fatalf("values %v", spec.Values)
	}
	for i, v := range want {
		if spec.Values[i] != v {
			t.Fatalf("values %v, want %v", spec.Values, want)
		}
	}
	if s := spec.String(); s != "alpha=128,512,2048" {
		t.Fatalf("String() = %q", s)
	}

	for _, bad := range []string{"", "alpha", "beta=1,2", "alpha=", "alpha=x", "alpha=0", "alpha=-4", "alpha=8,8"} {
		if _, err := ParseSweep(bad); err == nil {
			t.Errorf("ParseSweep(%q) accepted", bad)
		}
	}
}

// The snapshot's sweep rows are the acceptance check of the per-query
// tuning API: one built index, several alpha operating points, page
// reads strictly responding to the knob — no rebuild between rows.
func TestRunSnapshotSweep(t *testing.T) {
	spec, err := ParseSweep("alpha=64,512")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Scale: 0.05, Queries: 5, K: 10, WorkDir: t.TempDir(), Seed: 42, Sweep: spec}
	snap, err := RunSnapshot(cfg, []string{"SIFT10K"})
	if err != nil {
		t.Fatal(err)
	}
	if snap.Config.Sweep != "alpha=64,512" {
		t.Fatalf("config sweep %q", snap.Config.Sweep)
	}
	if len(snap.Sweep) != 2 {
		t.Fatalf("%d sweep rows, want 2", len(snap.Sweep))
	}
	lo, hi := snap.Sweep[0], snap.Sweep[1]
	if lo.Value != 64 || hi.Value != 512 || lo.Param != "alpha" || lo.Dataset != "SIFT10K" {
		t.Fatalf("rows %+v / %+v", lo, hi)
	}
	for _, row := range snap.Sweep {
		if row.CandidatesPerQuery <= 0 || row.MeanQueryUS <= 0 {
			t.Fatalf("row not measured: %+v", row)
		}
		if row.Recall <= 0 || row.Recall > 1 {
			t.Fatalf("recall out of range: %+v", row)
		}
	}
	// More leaf candidates per tree can only grow per-query I/O; recall
	// must not degrade as the cascade widens.
	if hi.PageReadsPerQuery < lo.PageReadsPerQuery {
		t.Fatalf("alpha=512 read %v pages/query, alpha=64 read %v", hi.PageReadsPerQuery, lo.PageReadsPerQuery)
	}
	if hi.Recall < lo.Recall {
		t.Fatalf("alpha=512 recall %v < alpha=64 recall %v", hi.Recall, lo.Recall)
	}
}

// The sweep must also run over a sharded layout (the CI smoke does).
func TestRunSnapshotSweepSharded(t *testing.T) {
	spec, err := ParseSweep("gamma=16,64")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Scale: 0.05, Queries: 5, K: 10, WorkDir: t.TempDir(), Seed: 42, Shards: 4, Sweep: spec}
	snap, err := RunSnapshot(cfg, []string{"SIFT10K"})
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Sweep) != 2 {
		t.Fatalf("%d sweep rows, want 2", len(snap.Sweep))
	}
	if snap.Sweep[0].CandidatesPerQuery > snap.Sweep[1].CandidatesPerQuery {
		t.Fatalf("gamma=16 refined more than gamma=64: %+v", snap.Sweep)
	}
}

// Sweep rows must carry the resolved cascade and a p99, and convert
// into a loadable frontier artifact — the `-sweep-out` path end to end.
func TestSweepFrontierArtifact(t *testing.T) {
	spec, err := ParseSweep("alpha=64,512")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Scale: 0.05, Queries: 5, K: 10, WorkDir: t.TempDir(), Seed: 42, Sweep: spec}
	snap, err := RunSnapshot(cfg, []string{"SIFT10K"})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range snap.Sweep {
		if row.Alpha != row.Value || row.Gamma < cfg.K || row.Gamma > row.Alpha {
			t.Fatalf("row cascade not echoed: %+v", row)
		}
		if row.P99QueryUS < row.MeanQueryUS/10 {
			t.Fatalf("row p99 implausible: %+v", row)
		}
	}
	f := Frontier(snap.Sweep, "SIFT10K", cfg.K)
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(f.Points) != 2 || f.Dataset != "SIFT10K" || f.K != cfg.K {
		t.Fatalf("frontier %+v", f)
	}
	path := filepath.Join(t.TempDir(), "frontier.json")
	if err := slo.WriteFrontier(path, f); err != nil {
		t.Fatal(err)
	}
	g, err := slo.ReadFrontier(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Points) != 2 || g.Points[0] != f.Points[0] || g.Points[1] != f.Points[1] {
		t.Fatalf("round trip mangled: %+v vs %+v", g.Points, f.Points)
	}
	// Rows from another dataset are excluded.
	if other := Frontier(snap.Sweep, "Audio", cfg.K); len(other.Points) != 0 {
		t.Fatalf("foreign rows leaked: %+v", other.Points)
	}
}
