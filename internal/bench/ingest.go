package bench

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hd-index/hdindex/internal/core"
	"github.com/hd-index/hdindex/internal/shard"
	"github.com/hd-index/hdindex/internal/telemetry"
)

// IngestResult is one dataset's mixed insert/search row: write
// throughput down the WAL-durable path, the same writes down the
// per-request-flush path (the durability discipline live inserts had
// before the WAL), read latency while writes are in flight, and the
// staleness bound the memtable imposed.
type IngestResult struct {
	Dataset string `json:"dataset"`
	N       int    `json:"n"`
	Dim     int    `json:"dim"`
	Writers int    `json:"writers"`
	Inserts int    `json:"inserts"`
	// InsertQPS is acknowledged-durable inserts/s through the WAL's
	// group commit, Writers concurrent clients.
	InsertQPS float64 `json:"insert_qps"`
	// InsertP50/P95/P99US are per-insert acknowledge-latency percentiles
	// across the pure write storm, recorded into a telemetry histogram by
	// the writer goroutines (estimates within 3.125%). The tail shows the
	// group-commit convoy the mean hides.
	InsertP50US float64 `json:"insert_p50_us,omitempty"`
	InsertP95US float64 `json:"insert_p95_us,omitempty"`
	InsertP99US float64 `json:"insert_p99_us,omitempty"`
	// FlushInsertQPS is the same durability bought the old way: a full
	// index Flush after every insert. Measured over FlushInserts writes
	// (the path is orders of magnitude slower; equal counts would
	// dominate the benchmark's wall clock).
	FlushInserts   int     `json:"flush_inserts"`
	FlushInsertQPS float64 `json:"flush_insert_qps"`
	SpeedupX       float64 `json:"speedup_x"`
	// QueryUSUnderWrites is mean single-query latency with the writers
	// running — reads taxed by WAL appends and memtable scans.
	QueryUSUnderWrites float64 `json:"query_us_under_writes"`
	QueriesUnderWrites int     `json:"queries_under_writes"`
	// MemtablePeakVectors is the largest memtable observed during the
	// storm: the realized staleness bound (how many acknowledged writes
	// a query may see via brute-force scan instead of the trees).
	MemtablePeakVectors int `json:"memtable_peak_vectors"`
	// Compactions and WALSyncs describe the background machinery's
	// activity across the storm; Inserts/WALSyncs is the group-commit
	// batching factor.
	Compactions uint64 `json:"compactions"`
	WALSyncs    int64  `json:"wal_syncs"`
}

// ingestIndex is the mutation surface the mixed phase measures,
// satisfied by core.Index and shard.Sharded alike.
type ingestIndex interface {
	Insert(vec []float32) (uint64, error)
	Flush() error
	Compact(ctx context.Context) error
	IngestStats() core.IngestStats
	Search(q []float32, k int) ([]core.Result, error)
	Close() error
}

// ingestWriters is the fixed concurrent writer count, fixed (like
// snapshotParallelClients) so snapshots stay machine-comparable.
const ingestWriters = 8

// insertVector derives the i-th storm vector: deterministic, distinct,
// and inside the dataset's value range so tree key distribution stays
// realistic.
func insertVector(dim, i int, base []float32) []float32 {
	v := make([]float32, dim)
	for d := range v {
		v[d] = base[d] + float32((i*31+d*7)%101)/101*0.01
	}
	return v
}

// stormWrite drives ingestWriters concurrent clients through count
// WAL-durable inserts starting at offset and returns the wall clock.
// When hist is non-nil every insert's acknowledge latency is recorded
// into it (telemetry.Histogram is lock-free, so the writers don't
// serialize on the bookkeeping).
func stormWrite(ix ingestIndex, w *Workload, offset, count int, hist *telemetry.Histogram) (time.Duration, error) {
	var (
		next      atomic.Int64
		insertErr atomic.Value
		wg        sync.WaitGroup
	)
	n := len(w.Data.Vectors)
	t0 := time.Now()
	for c := 0; c < ingestWriters; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= count {
					return
				}
				t := time.Now()
				if _, err := ix.Insert(insertVector(w.Data.Dim, offset+i, w.Data.Vectors[(offset+i)%n])); err != nil {
					insertErr.Store(err)
					return
				}
				hist.ObserveDuration(time.Since(t))
			}
		}()
	}
	wg.Wait()
	d := time.Since(t0)
	if err, ok := insertErr.Load().(error); ok && err != nil {
		return d, err
	}
	return d, nil
}

// snapshotIngest measures the live-ingest numbers for one dataset in
// three phases on fresh indexes: a pure write storm for WAL insert
// throughput, a mixed storm (writers + readers) for read latency under
// writes and the memtable staleness peak, and a flush-per-insert run —
// the durability discipline live inserts had before the WAL — for the
// old-path comparison. Throughputs come from the pure phases so neither
// path's number is taxed by concurrent readers.
func snapshotIngest(spec DataSpec, cfg Config) (IngestResult, error) {
	w := MakeWorkload(spec, cfg)
	n := len(w.Data.Vectors)
	out := IngestResult{Dataset: spec.Name, N: n, Dim: w.Data.Dim,
		Writers: ingestWriters, Inserts: cfg.Ingest}

	dir := filepath.Join(cfg.WorkDir, "snapshot-ingest", spec.Name)
	p := HDParams(spec, n)
	p.Seed = cfg.Seed
	// Size the memtable so the storm crosses it several times: the
	// measurement then includes background compactions, as production
	// would. The two storm phases write 2×Ingest vectors, spread
	// round-robin across the shards, and the threshold is per shard.
	perShard := 2 * cfg.Ingest
	if cfg.Shards > 1 {
		perShard /= cfg.Shards
	}
	p.MemtableMaxVectors = perShard / 4
	if p.MemtableMaxVectors < 64 {
		p.MemtableMaxVectors = 64
	}

	build := func() (ingestIndex, error) {
		if err := shard.ClearLayout(dir); err != nil {
			return nil, err
		}
		return core.Build(dir, w.Data.Vectors, p)
	}
	if cfg.Shards > 0 {
		build = func() (ingestIndex, error) {
			return shard.Build(dir, w.Data.Vectors, shard.Params{Params: p, Shards: cfg.Shards})
		}
	}

	// Phase 1: pure write storm — the WAL path's insert throughput.
	ix, err := build()
	if err != nil {
		return out, err
	}
	var insertHist telemetry.Histogram
	stormD, err := stormWrite(ix, w, 0, cfg.Ingest, &insertHist)
	if err != nil {
		ix.Close()
		return out, err
	}
	if d := stormD.Seconds(); d > 0 {
		out.InsertQPS = float64(cfg.Ingest) / d
	}
	if s := insertHist.Snapshot(); s.Count > 0 {
		out.InsertP50US = s.Quantile(0.50) / 1e3
		out.InsertP95US = s.Quantile(0.95) / 1e3
		out.InsertP99US = s.Quantile(0.99) / 1e3
	}

	// Phase 2: mixed storm on the same index — readers replay the query
	// set while the writers push another cfg.Ingest inserts, sampling
	// the memtable occupancy between queries.
	var (
		queryElapsed atomic.Int64 // summed nanoseconds
		queryCount   atomic.Int64
		peak         atomic.Int64
		readErr      atomic.Value
	)
	readersDone := make(chan struct{})
	var rwg sync.WaitGroup
	for c := 0; c < 2; c++ {
		rwg.Add(1)
		go func(c int) {
			defer rwg.Done()
			for qi := c; ; qi++ {
				select {
				case <-readersDone:
					return
				default:
				}
				q := w.Queries[qi%len(w.Queries)]
				t := time.Now()
				if _, err := ix.Search(q, w.K); err != nil {
					readErr.Store(err)
					return
				}
				queryElapsed.Add(int64(time.Since(t)))
				queryCount.Add(1)
				if mv := int64(ix.IngestStats().MemtableVectors); mv > peak.Load() {
					peak.Store(mv)
				}
			}
		}(c)
	}
	_, werr := stormWrite(ix, w, cfg.Ingest, cfg.Ingest, nil)
	close(readersDone)
	rwg.Wait()
	if werr != nil {
		ix.Close()
		return out, werr
	}
	if err, ok := readErr.Load().(error); ok && err != nil {
		ix.Close()
		return out, err
	}
	if qc := queryCount.Load(); qc > 0 {
		out.QueryUSUnderWrites = float64(queryElapsed.Load()) / 1e3 / float64(qc)
		out.QueriesUnderWrites = int(qc)
	}
	out.MemtablePeakVectors = int(peak.Load())
	st := ix.IngestStats()
	out.Compactions = st.Compactions
	out.WALSyncs = st.WALSyncs
	if err := ix.Close(); err != nil {
		return out, err
	}

	// Phase 3: the old durability discipline — a full Flush after every
	// insert — over a capped write count (the path's slowness is the
	// reason the WAL exists; equal counts would dominate wall clock).
	out.FlushInserts = cfg.Ingest / 10
	if out.FlushInserts < 20 {
		out.FlushInserts = 20
	}
	ix, err = build()
	if err != nil {
		return out, err
	}
	defer ix.Close()
	t0 := time.Now()
	for i := 0; i < out.FlushInserts; i++ {
		if _, err := ix.Insert(insertVector(w.Data.Dim, i, w.Data.Vectors[i%n])); err != nil {
			return out, err
		}
		if err := ix.Flush(); err != nil {
			return out, err
		}
	}
	if d := time.Since(t0).Seconds(); d > 0 {
		out.FlushInsertQPS = float64(out.FlushInserts) / d
	}
	if out.FlushInsertQPS > 0 {
		out.SpeedupX = out.InsertQPS / out.FlushInsertQPS
	}
	return out, nil
}

// PrintIngest renders the mixed-workload rows in the snapshot's
// human-readable style.
func PrintIngest(rows []IngestResult) {
	fmt.Printf("\nmixed insert/search (%d writers, WAL group commit vs flush-per-insert):\n", ingestWriters)
	fmt.Printf("  %-10s %8s %12s %13s %16s %9s %14s %10s %12s\n",
		"dataset", "inserts", "insert_qps", "insert_p99_us", "flush_insert_qps", "speedup", "query_us(rw)", "mem_peak", "compactions")
	for _, r := range rows {
		fmt.Printf("  %-10s %8d %12.0f %13.1f %16.1f %8.1fx %14.1f %10d %12d\n",
			r.Dataset, r.Inserts, r.InsertQPS, r.InsertP99US, r.FlushInsertQPS, r.SpeedupX,
			r.QueryUSUnderWrites, r.MemtablePeakVectors, r.Compactions)
	}
}
