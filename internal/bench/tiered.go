package bench

import (
	"context"
	"fmt"
	"path/filepath"
	"sort"
	"time"

	"github.com/hd-index/hdindex/internal/core"
	"github.com/hd-index/hdindex/internal/metrics"
	"github.com/hd-index/hdindex/internal/shard"
	"github.com/hd-index/hdindex/internal/slo"
)

// TieredResult is one quality tier's row: a named preset (or the SLO
// tuner's auto choice) measured over the workload on the built index.
// The rows exist to show the tier ordering the serving layer promises —
// exact ≥ balanced ≥ fast on recall, the reverse on cost — and that the
// tuner's pick holds its target at a latency below the exact preset.
type TieredResult struct {
	Dataset string `json:"dataset"`
	Preset  string `json:"preset"`
	// Target is the SLO the auto row tuned for; empty on named presets.
	Target string `json:"target,omitempty"`
	// Alpha/Gamma are the resolved cascade the tier ran with.
	Alpha       int     `json:"alpha"`
	Gamma       int     `json:"gamma"`
	MeanQueryUS float64 `json:"mean_query_us"`
	P99QueryUS  float64 `json:"p99_query_us"`
	Recall      float64 `json:"recall"`
	// SLOUnmet reports the tuner found no feasible point (auto row only).
	SLOUnmet bool `json:"slo_unmet,omitempty"`
}

// tieredTarget is the SLO the auto row tunes for — the acceptance bar:
// hold recall ≥ 0.98 at less cost than the exact preset.
const tieredTarget = "recall>=0.98"

// tieredGrid is the α grid the auto row's self-measured frontier walks
// (γ = α/4 floored at k, the paper's ratio — the same shape as an
// `hdbench -sweep alpha=...` run).
var tieredGrid = []int{64, 128, 256, 512, 1024, 2048}

// snapshotTiered measures the quality tiers on one dataset: the three
// named presets resolved exactly the way the server resolves them, then
// the tuner's auto choice over a frontier measured in-process on the
// same index.
func snapshotTiered(spec DataSpec, cfg Config) ([]TieredResult, error) {
	w := MakeWorkload(spec, cfg)
	dir := filepath.Join(cfg.WorkDir, "snapshot-tiered", spec.Name)
	p := HDParams(spec, len(w.Data.Vectors))
	p.Seed = cfg.Seed

	var ix snapIndex
	var err error
	if cfg.Shards > 0 {
		ix, err = shard.Build(dir, w.Data.Vectors, shard.Params{Params: p, Shards: cfg.Shards})
	} else {
		if cerr := shard.ClearLayout(dir); cerr != nil {
			return nil, cerr
		}
		ix, err = core.Build(dir, w.Data.Vectors, p)
	}
	if err != nil {
		return nil, err
	}
	defer ix.Close()

	ctx := context.Background()
	measure := func(o core.SearchOptions) (TieredResult, error) {
		var out TieredResult
		var got [][]uint64
		var elapsed time.Duration
		perQuery := make([]time.Duration, 0, len(w.Queries))
		for _, q := range w.Queries {
			t0 := time.Now()
			res, st, err := ix.Query(ctx, q, w.K, o)
			d := time.Since(t0)
			elapsed += d
			perQuery = append(perQuery, d)
			if err != nil {
				return out, err
			}
			ids := make([]uint64, len(res))
			for i, r := range res {
				ids[i] = r.ID
			}
			got = append(got, ids)
			out.Alpha, out.Gamma = st.Alpha, st.Gamma
		}
		sort.Slice(perQuery, func(i, j int) bool { return perQuery[i] < perQuery[j] })
		out.Dataset = spec.Name
		out.MeanQueryUS = float64(elapsed.Microseconds()) / float64(len(w.Queries))
		out.P99QueryUS = float64(exactPercentile(perQuery, 0.99).Nanoseconds()) / 1e3
		out.Recall = metrics.MeanRecall(got, w.TruthIDs, w.K)
		return out, nil
	}

	var rows []TieredResult
	for _, preset := range []core.Preset{core.PresetExact, core.PresetBalanced, core.PresetFast} {
		o, err := preset.Options(p, w.K)
		if err != nil {
			return nil, fmt.Errorf("tiered %s: %w", preset, err)
		}
		row, err := measure(o)
		if err != nil {
			return nil, fmt.Errorf("tiered %s: %w", preset, err)
		}
		row.Preset = string(preset)
		rows = append(rows, row)
	}

	// The auto row: measure the frontier grid on this index (true
	// ground-truth recall — offline we can afford it), hand it to the
	// tuner, then run the workload at the point it picked.
	f := &slo.Frontier{FormatVersion: slo.FrontierFormatVersion, Dataset: spec.Name, K: w.K}
	for _, v := range tieredGrid {
		a := max(v, w.K)
		g := max(v/4, w.K)
		row, err := measure(core.SearchOptions{Alpha: a, Gamma: g})
		if err != nil {
			return nil, fmt.Errorf("tiered grid alpha=%d: %w", a, err)
		}
		f.Points = append(f.Points, slo.Point{
			Alpha: row.Alpha, Gamma: row.Gamma,
			MeanQueryUS: row.MeanQueryUS, P99QueryUS: row.P99QueryUS,
			Recall: row.Recall,
		})
	}
	target, err := slo.ParseTarget(tieredTarget)
	if err != nil {
		return nil, err
	}
	tn, err := slo.NewTuner(f, slo.Config{Target: target})
	if err != nil {
		return nil, fmt.Errorf("tiered tuner: %w", err)
	}
	ch := tn.Current()
	auto, err := measure(core.SearchOptions{Alpha: ch.Alpha, Gamma: ch.Gamma})
	if err != nil {
		return nil, fmt.Errorf("tiered auto: %w", err)
	}
	auto.Preset = string(core.PresetAuto)
	auto.Target = tieredTarget
	auto.SLOUnmet = ch.SLOUnmet
	rows = append(rows, auto)
	return rows, nil
}

// PrintTiered renders the tier rows the way the other phases print
// theirs.
func PrintTiered(rows []TieredResult) {
	fmt.Printf("\n== Quality tiers (presets + SLO tuner at %s) ==\n", tieredTarget)
	fmt.Printf("  %-10s %-9s %7s %7s %12s %12s %8s %s\n",
		"dataset", "preset", "alpha", "gamma", "mean(µs)", "p99(µs)", "recall", "slo")
	for _, r := range rows {
		slo := ""
		if r.Target != "" {
			slo = r.Target
			if r.SLOUnmet {
				slo += " UNMET"
			}
		}
		fmt.Printf("  %-10s %-9s %7d %7d %12.1f %12.1f %8.4f %s\n",
			r.Dataset, r.Preset, r.Alpha, r.Gamma, r.MeanQueryUS, r.P99QueryUS, r.Recall, slo)
	}
}
