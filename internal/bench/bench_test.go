package bench

import (
	"bytes"
	"strings"
	"testing"
)

// tinyCfg keeps smoke tests fast: a few hundred points, few queries.
func tinyCfg(t *testing.T) Config {
	return Config{Scale: 0.05, Queries: 5, K: 10, WorkDir: t.TempDir(), Seed: 1}
}

func TestRegistryComplete(t *testing.T) {
	reg := Registry()
	// Every table/figure of the paper's evaluation must be registered.
	for _, id := range []string{
		"fig1", "table3", "fig4m", "fig4tau", "fig5", "fig11", "fig12",
		"fig6alpha", "fig6gamma", "fig7", "fig8", "fig10", "fig13",
		"table5", "imagesearch",
		"abl-partition", "abl-curve", "abl-parallel", "abl-cache", "abl-ptolemaic-io",
	} {
		if _, ok := reg[id]; !ok {
			t.Errorf("experiment %q missing from registry", id)
		}
	}
	if len(IDs()) != len(reg) {
		t.Error("IDs() inconsistent with Registry()")
	}
}

func TestRunUnknown(t *testing.T) {
	if err := Run("nope", &bytes.Buffer{}, tinyCfg(t)); err == nil {
		t.Fatal("unknown experiment must fail")
	}
}

func TestTable3Experiment(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("table3", &buf, tinyCfg(t)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"SIFTn", "63", "36", "13", "28"} {
		if !strings.Contains(out, want) {
			t.Errorf("table3 output missing %q:\n%s", want, out)
		}
	}
}

func TestMakeWorkloadShape(t *testing.T) {
	spec, ok := SpecByName("SIFT10K")
	if !ok {
		t.Fatal("spec missing")
	}
	w := MakeWorkload(spec, tinyCfg(t))
	if len(w.Data.Vectors) < 300 {
		t.Fatalf("workload too small: %d", len(w.Data.Vectors))
	}
	if len(w.Queries) != 5 || len(w.TruthIDs) != 5 {
		t.Fatalf("queries %d truth %d", len(w.Queries), len(w.TruthIDs))
	}
	if len(w.TruthIDs[0]) != 10 {
		t.Fatalf("truth depth %d", len(w.TruthIDs[0]))
	}
}

func TestRunMethodHDIndex(t *testing.T) {
	spec, _ := SpecByName("SIFT10K")
	cfg := tinyCfg(t)
	w := MakeWorkload(spec, cfg)
	var hd Builder
	for _, b := range Methods(cfg.Seed) {
		if b.Name == "HD-Index" {
			hd = b
		}
	}
	r := RunMethod(hd, w, t.TempDir(), 10)
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if r.MAP <= 0 || r.MAP > 1 {
		t.Errorf("MAP = %v", r.MAP)
	}
	if r.Ratio < 1 {
		t.Errorf("ratio = %v", r.Ratio)
	}
	if r.IndexBytes <= 0 || r.AvgQueryMS <= 0 {
		t.Errorf("size/time not measured: %+v", r)
	}
}

func TestFig4TauSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("fig4tau", &buf, tinyCfg(t)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "tau") {
		t.Error("fig4tau produced no table")
	}
}

func TestAblationCurveSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("abl-curve", &buf, tinyCfg(t)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "hilbert") || !strings.Contains(out, "zorder") {
		t.Errorf("ablation output incomplete:\n%s", out)
	}
}

func TestImageSearchSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("imagesearch", &buf, tinyCfg(t)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "mean overlap") {
		t.Error("image search produced no summary")
	}
}

func TestTableFormatting(t *testing.T) {
	var buf bytes.Buffer
	tbl := NewTable(&buf, "a", "bb")
	tbl.Row(1, 2.5)
	tbl.Row("xxx", "y")
	tbl.Flush()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "a") {
		t.Error("header missing")
	}
}
