package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"path/filepath"
	"runtime"
	"slices"
	"sync"
	"time"

	"github.com/hd-index/hdindex/internal/core"
	"github.com/hd-index/hdindex/internal/metrics"
	"github.com/hd-index/hdindex/internal/shard"
	"github.com/hd-index/hdindex/internal/telemetry"
)

// Snapshot is a machine-readable perf baseline: the numbers a CI run (or
// a reviewer) diffs against the committed BENCH_PR*.json files to see
// the performance trajectory across PRs. It deliberately measures only
// HD-Index itself — build cost, per-query latency and I/O, batch
// throughput, and answer quality — not the baseline methods, which have
// their own experiment runners.
type Snapshot struct {
	GoVersion string          `json:"go_version"`
	GOOS      string          `json:"goos"`
	GOARCH    string          `json:"goarch"`
	Config    SnapshotConfig  `json:"config"`
	Datasets  []DatasetResult `json:"datasets"`
	// Build holds the build-only rows measured at Config.BuildScale;
	// absent when BuildScale is 0.
	Build []BuildResult `json:"build,omitempty"`
	// Sweep holds the recall/latency frontier rows: one per
	// (dataset, swept value), measured with per-query overrides on the
	// same built index the dataset row measured. Absent when
	// Config.Sweep is empty.
	Sweep []SweepRow `json:"sweep,omitempty"`
	// Ingest holds the mixed insert/search rows — WAL write throughput
	// vs the flush-per-insert path, read latency under writes, memtable
	// staleness peak. Absent when Config.Ingest is 0.
	Ingest []IngestResult `json:"ingest,omitempty"`
	// Overload holds the admission-control storm rows — shed rate,
	// accepted-tail latency, degraded fraction at ~4× the sustainable
	// rate. Absent when Config.Overload is false.
	Overload []OverloadResult `json:"overload,omitempty"`
	// Cluster holds the cluster-serving rows — coordinator
	// scatter-gather qps/p99 vs the in-process sharded index, hedged
	// fraction, failover behaviour with a dead replica. Absent when
	// Config.Cluster is false.
	Cluster []ClusterResult `json:"cluster,omitempty"`
	// Tiered holds the quality-tier rows — each named preset plus the
	// SLO tuner's auto choice measured on the built index. Absent when
	// Config.Tiered is false.
	Tiered []TieredResult `json:"tiered,omitempty"`
}

// snapshotParallelClients is the fixed concurrent-client count of the
// parallel-throughput measurement: fixed (rather than GOMAXPROCS) so
// snapshots from different machines stay comparable.
const snapshotParallelClients = 8

// SnapshotConfig records the knobs the numbers depend on.
type SnapshotConfig struct {
	Scale           float64 `json:"scale"`
	Queries         int     `json:"queries"`
	K               int     `json:"k"`
	Seed            int64   `json:"seed"`
	Shards          int     `json:"shards"` // 0 = legacy single-index layout
	ParallelClients int     `json:"parallel_clients"`
	// BuildScale > 0 adds the build-only rows: each dataset built once
	// at this scale (typically 1, i.e. 10× the query-phase scale 0.1)
	// purely to measure construction cost at a size where the sort and
	// encode phases dominate.
	BuildScale float64 `json:"build_scale,omitempty"`
	// Sweep records the -sweep spec ("alpha=512,2048,...") whose
	// frontier rows Snapshot.Sweep holds; empty when no sweep ran.
	Sweep string `json:"sweep,omitempty"`
	// Ingest records the mixed-phase insert count behind
	// Snapshot.Ingest; 0 when the phase did not run.
	Ingest int `json:"ingest,omitempty"`
	// Overload records whether the overload-storm phase ran (the phase
	// itself has fixed shape: overloadInflight slots, overloadFactor×
	// closed-loop clients).
	Overload bool `json:"overload,omitempty"`
	// Cluster records whether the cluster-serving phase ran (fixed
	// shape: clusterShards shards × 2 replicas, clusterClients
	// closed-loop clients).
	Cluster bool `json:"cluster,omitempty"`
	// Tiered records whether the quality-tier phase ran (fixed shape:
	// the named presets plus the tuner's auto row at tieredTarget over
	// tieredGrid).
	Tiered bool `json:"tiered,omitempty"`
}

// BuildPhaseMS is the per-phase construction cost breakdown mirrored
// from core.BuildStats. Encode/sort/bulkload are summed across τ trees
// (and shards), so they can exceed wall-clock total on multi-core.
type BuildPhaseMS struct {
	RefDists float64 `json:"refdists"`
	Encode   float64 `json:"encode"`
	Sort     float64 `json:"sort"`
	BulkLoad float64 `json:"bulkload"`
	Total    float64 `json:"total"`
}

func phaseMS(bs *core.BuildStats) *BuildPhaseMS {
	if bs == nil {
		return nil
	}
	return &BuildPhaseMS{
		RefDists: bs.RefDistsMS,
		Encode:   bs.EncodeMS,
		Sort:     bs.SortMS,
		BulkLoad: bs.BulkLoadMS,
		Total:    bs.TotalMS,
	}
}

// BuildResult is one dataset's build-only row, measured at
// Config.BuildScale.
type BuildResult struct {
	Dataset     string        `json:"dataset"`
	N           int           `json:"n"`
	Dim         int           `json:"dim"`
	BuildMS     float64       `json:"build_ms"`
	BuildAllocs uint64        `json:"build_allocs"`
	PeakHeapMB  float64       `json:"peak_heap_mb"`
	IndexBytes  int64         `json:"index_bytes"`
	Phases      *BuildPhaseMS `json:"build_phase_ms,omitempty"`
}

// DatasetResult is one dataset's row of the snapshot.
type DatasetResult struct {
	Dataset     string  `json:"dataset"`
	N           int     `json:"n"`
	Dim         int     `json:"dim"`
	BuildMS     float64 `json:"build_ms"`
	IndexBytes  int64   `json:"index_bytes"`
	MeanQueryUS float64 `json:"mean_query_us"`
	// P50/P95/P99QueryUS are exact percentiles over the same per-query
	// wall times MeanQueryUS averages (sorted reference, not histogram
	// estimates): the tail the mean hides.
	P50QueryUS float64 `json:"p50_query_us"`
	P95QueryUS float64 `json:"p95_query_us"`
	P99QueryUS float64 `json:"p99_query_us"`
	BatchQPS   float64 `json:"batch_qps"` // queries/s through SearchBatch
	// BatchP50/P95/P99US are per-query latency percentiles inside the
	// SearchBatch run, read from the index's own telemetry histograms as
	// a scrape-window delta (estimates within 3.125%, the histogram's
	// resolution).
	BatchP50US        float64 `json:"batch_p50_us,omitempty"`
	BatchP95US        float64 `json:"batch_p95_us,omitempty"`
	BatchP99US        float64 `json:"batch_p99_us,omitempty"`
	MAP               float64 `json:"map"`
	Recall            float64 `json:"recall"` // recall@k vs. brute-force ground truth
	MeanRatio         float64 `json:"mean_ratio"`
	PageReadsPerQuery float64 `json:"page_reads_per_query"`
	// HitRatio is buffer-pool hits/(hits+misses) over the single-query
	// phase: the observable effect of the page-ordered candidate fetch.
	HitRatio float64 `json:"hit_ratio"`
	// ParallelQPS is throughput with snapshotParallelClients goroutines
	// each issuing single queries concurrently — the serving-shaped
	// number the sharded buffer pool exists to scale.
	ParallelQPS float64 `json:"parallel_qps"`
	// BuildAllocs counts heap allocations during the build whose wall
	// clock BuildMS reports; BuildPhases breaks that build down.
	BuildAllocs float64       `json:"build_allocs,omitempty"`
	BuildPhases *BuildPhaseMS `json:"build_phase_ms,omitempty"`
}

// RunSnapshot builds HD-Index over the named datasets (nil/empty = a
// representative default pair) and measures the serving-relevant
// numbers.
func RunSnapshot(cfg Config, datasets []string) (*Snapshot, error) {
	cfg.defaults()
	if len(datasets) == 0 {
		datasets = []string{"SIFT10K", "Audio"}
	}
	snap := &Snapshot{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Config: SnapshotConfig{
			Scale: cfg.Scale, Queries: cfg.Queries, K: cfg.K, Seed: cfg.Seed,
			Shards: cfg.Shards, ParallelClients: snapshotParallelClients,
			BuildScale: cfg.BuildScale, Sweep: cfg.Sweep.String(),
			Ingest: cfg.Ingest, Overload: cfg.Overload, Cluster: cfg.Cluster,
			Tiered: cfg.Tiered,
		},
	}
	for _, name := range datasets {
		spec, ok := SpecByName(name)
		if !ok {
			return nil, fmt.Errorf("bench: unknown dataset %q", name)
		}
		res, sweep, err := snapshotDataset(spec, cfg)
		if err != nil {
			return nil, err
		}
		snap.Datasets = append(snap.Datasets, res)
		snap.Sweep = append(snap.Sweep, sweep...)
	}
	// The quality-tier rows are latency measurements, so they run right
	// after the per-dataset query phases, before any phase that churns
	// the heap (builds, ingest) or saturates the box (storms).
	if cfg.Tiered {
		for _, name := range datasets {
			spec, _ := SpecByName(name)
			rows, err := snapshotTiered(spec, cfg)
			if err != nil {
				return nil, err
			}
			snap.Tiered = append(snap.Tiered, rows...)
		}
	}
	// The build-only rows run strictly after every query measurement:
	// a scale-BuildScale build churns tens of MB of heap, and running
	// one between two datasets' query phases measurably inflates the
	// later dataset's latencies (GC pressure), which the query numbers
	// must not absorb.
	if cfg.BuildScale > 0 {
		for _, name := range datasets {
			spec, _ := SpecByName(name)
			row, err := snapshotBuild(spec, cfg)
			if err != nil {
				return nil, err
			}
			snap.Build = append(snap.Build, row)
		}
	}
	// The mixed insert/search phase also runs after the query phases:
	// its storm churns the heap and the page cache, and its own numbers
	// (throughput over thousands of writes) are robust to that.
	if cfg.Ingest > 0 {
		for _, name := range datasets {
			spec, _ := SpecByName(name)
			row, err := snapshotIngest(spec, cfg)
			if err != nil {
				return nil, err
			}
			snap.Ingest = append(snap.Ingest, row)
		}
	}
	// The overload storm runs dead last: it deliberately saturates the
	// box, and nothing measured after it could be trusted anyway.
	if cfg.Overload {
		for _, name := range datasets {
			spec, _ := SpecByName(name)
			row, err := snapshotOverload(spec, cfg)
			if err != nil {
				return nil, err
			}
			snap.Overload = append(snap.Overload, row)
		}
	}
	// The cluster phase also saturates the box (closed-loop storms over
	// loopback HTTP), so it shares the after-everything slot with the
	// overload storm; both measure only themselves.
	if cfg.Cluster {
		for _, name := range datasets {
			spec, _ := SpecByName(name)
			row, err := snapshotCluster(spec, cfg)
			if err != nil {
				return nil, err
			}
			snap.Cluster = append(snap.Cluster, row)
		}
	}
	return snap, nil
}

// snapshotBuild measures construction only, at cfg.BuildScale: no
// queries, no ground truth — the row exists to watch build wall clock,
// allocations, and the phase split at a size where they matter.
func snapshotBuild(spec DataSpec, cfg Config) (BuildResult, error) {
	n := int(float64(spec.BaseN) * cfg.BuildScale)
	if n < 300 {
		n = 300
	}
	ds := spec.Gen(n, cfg.Seed+int64(len(spec.Name)))
	out := BuildResult{Dataset: spec.Name, N: n, Dim: ds.Dim}

	dir := filepath.Join(cfg.WorkDir, "snapshot-build", spec.Name)
	p := HDParams(spec, n)
	p.Seed = cfg.Seed

	var built snapIndex
	var err error
	t0 := time.Now()
	if cfg.Shards > 0 {
		built, err = shard.Build(dir, ds.Vectors, shard.Params{Params: p, Shards: cfg.Shards})
	} else {
		if cerr := shard.ClearLayout(dir); cerr != nil {
			return out, cerr
		}
		built, err = core.Build(dir, ds.Vectors, p)
	}
	if err != nil {
		return out, err
	}
	out.BuildMS = float64(time.Since(t0).Microseconds()) / 1e3
	if bs := built.BuildStats(); bs != nil {
		out.BuildAllocs = bs.Allocs
		out.PeakHeapMB = float64(bs.PeakHeapBytes) / (1 << 20)
		out.Phases = phaseMS(bs)
	}
	out.IndexBytes = built.SizeOnDisk()
	return out, built.Close()
}

// snapIndex is the slice of the index surface the snapshot measures —
// satisfied by both core.Index and shard.Sharded, so one measurement
// body covers both layouts.
type snapIndex interface {
	SearchWithStats(q []float32, k int) ([]core.Result, *core.QueryStats, error)
	SearchBatch(queries [][]float32, k int) ([][]core.Result, error)
	Query(ctx context.Context, q []float32, k int, o core.SearchOptions) ([]core.Result, *core.QueryStats, error)
	SizeOnDisk() int64
	BuildStats() *core.BuildStats
	Telemetry() telemetry.CollectorSnapshot
	Close() error
}

// exactPercentile returns the nearest-rank q-th percentile of sorted —
// the k = ceil(q·n)-th smallest value — matching the convention the
// telemetry histograms estimate.
func exactPercentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	k := int(math.Ceil(q * float64(len(sorted))))
	if k < 1 {
		k = 1
	}
	return sorted[k-1]
}

func snapshotDataset(spec DataSpec, cfg Config) (DatasetResult, []SweepRow, error) {
	w := MakeWorkload(spec, cfg)
	n := len(w.Data.Vectors)
	out := DatasetResult{Dataset: spec.Name, N: n, Dim: w.Data.Dim}

	dir := filepath.Join(cfg.WorkDir, "snapshot", spec.Name)
	p := HDParams(spec, n)
	p.Seed = cfg.Seed

	// Select the layout under measurement; the measurement body below
	// is layout-agnostic. The legacy build clears any sharded layout a
	// previous run left in the reused workdir, mirroring the facade, so
	// the directory left behind never holds a stale manifest.
	build := func() (snapIndex, error) {
		if err := shard.ClearLayout(dir); err != nil {
			return nil, err
		}
		return core.Build(dir, w.Data.Vectors, p)
	}
	open := func() (snapIndex, error) { return core.Open(dir, core.OpenOptions{}) }
	if cfg.Shards > 0 {
		build = func() (snapIndex, error) {
			return shard.Build(dir, w.Data.Vectors, shard.Params{Params: p, Shards: cfg.Shards})
		}
		open = func() (snapIndex, error) { return shard.Open(dir, core.OpenOptions{}) }
	}

	t0 := time.Now()
	built, err := build()
	if err != nil {
		return out, nil, err
	}
	out.BuildMS = float64(time.Since(t0).Microseconds()) / 1e3
	if bs := built.BuildStats(); bs != nil {
		out.BuildAllocs = float64(bs.Allocs)
		out.BuildPhases = phaseMS(bs)
	}

	// Reopen before measuring: querying the just-built index would hit
	// a buffer pool still warm from construction and report zero page
	// reads, hiding any I/O regression the snapshot exists to catch.
	if err := built.Close(); err != nil {
		return out, nil, err
	}
	ix, err := open()
	if err != nil {
		return out, nil, err
	}
	defer ix.Close()
	out.IndexBytes = ix.SizeOnDisk()

	// Single-query latency, quality, and I/O. Only the Search call is
	// timed — metric bookkeeping must not inflate the baseline.
	var got [][]uint64
	var ratioSum float64
	var reads, hits, misses uint64
	var elapsed time.Duration
	perQuery := make([]time.Duration, 0, len(w.Queries))
	for qi, q := range w.Queries {
		t := time.Now()
		res, st, err := ix.SearchWithStats(q, w.K)
		d := time.Since(t)
		elapsed += d
		perQuery = append(perQuery, d)
		if err != nil {
			return out, nil, err
		}
		ids := make([]uint64, len(res))
		dists := make([]float64, len(res))
		for i, r := range res {
			ids[i] = r.ID
			dists[i] = r.Dist
		}
		got = append(got, ids)
		ratioSum += metrics.Ratio(dists, w.TruthDs[qi])
		reads += st.PageReads
		hits += st.PageHits
		misses += st.PageMisses
	}
	nq := len(w.Queries)
	out.MeanQueryUS = float64(elapsed.Microseconds()) / float64(nq)
	slices.Sort(perQuery)
	out.P50QueryUS = float64(exactPercentile(perQuery, 0.50).Nanoseconds()) / 1e3
	out.P95QueryUS = float64(exactPercentile(perQuery, 0.95).Nanoseconds()) / 1e3
	out.P99QueryUS = float64(exactPercentile(perQuery, 0.99).Nanoseconds()) / 1e3
	out.MAP = metrics.MAP(got, w.TruthIDs, w.K)
	out.Recall = metrics.MeanRecall(got, w.TruthIDs, w.K)
	out.MeanRatio = ratioSum / float64(nq)
	out.PageReadsPerQuery = float64(reads) / float64(nq)
	if total := hits + misses; total > 0 {
		out.HitRatio = float64(hits) / float64(total)
	}

	// Batch throughput through the bounded worker pool. The per-query
	// latency percentiles inside the batch come from the index's own
	// telemetry: snapshot the query histogram around the call and read
	// the delta — the same windowing a /metrics scraper does.
	telBefore := ix.Telemetry().Query
	t0 = time.Now()
	if _, err := ix.SearchBatch(w.Queries, w.K); err != nil {
		return out, nil, err
	}
	if d := time.Since(t0).Seconds(); d > 0 {
		out.BatchQPS = float64(nq) / d
	}
	if delta := ix.Telemetry().Query.Sub(telBefore); delta.Count > 0 {
		out.BatchP50US = delta.Quantile(0.50) / 1e3
		out.BatchP95US = delta.Quantile(0.95) / 1e3
		out.BatchP99US = delta.Quantile(0.99) / 1e3
	}

	// Concurrent-clients throughput: independent goroutines issuing
	// single queries, the access pattern the lock-striped buffer pool
	// serves. Each client replays the query set once, phase-shifted so
	// clients do not march over the same pages in lockstep.
	errs := make([]error, snapshotParallelClients)
	var wg sync.WaitGroup
	t0 = time.Now()
	for c := 0; c < snapshotParallelClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for qi := range w.Queries {
				q := w.Queries[(qi+c)%nq]
				if _, _, err := ix.SearchWithStats(q, w.K); err != nil {
					errs[c] = err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	parallelD := time.Since(t0).Seconds()
	for _, err := range errs {
		if err != nil {
			return out, nil, err
		}
	}
	if parallelD > 0 {
		out.ParallelQPS = float64(snapshotParallelClients*nq) / parallelD
	}

	// The frontier sweep runs last, after every baseline measurement,
	// reusing the same open index: each point is the same query set
	// under a different per-query override — the rows exist to show the
	// knob moving recall/candidates with zero rebuilds.
	var sweep []SweepRow
	if cfg.Sweep != nil {
		if sweep, err = sweepDataset(ix, w, cfg.Sweep); err != nil {
			return out, nil, err
		}
	}
	return out, sweep, nil
}

// WriteJSON renders the snapshot, indented for a stable committed diff.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
