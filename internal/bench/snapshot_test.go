package bench

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestRunSnapshot(t *testing.T) {
	cfg := Config{Scale: 0.05, Queries: 5, K: 10, WorkDir: t.TempDir(), Seed: 42}
	snap, err := RunSnapshot(cfg, []string{"SIFT10K"})
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Datasets) != 1 {
		t.Fatalf("%d datasets", len(snap.Datasets))
	}
	d := snap.Datasets[0]
	if d.Dataset != "SIFT10K" || d.N == 0 || d.Dim != 128 {
		t.Errorf("dataset row = %+v", d)
	}
	if d.BuildMS <= 0 || d.MeanQueryUS <= 0 || d.IndexBytes <= 0 || d.BatchQPS <= 0 {
		t.Errorf("timings not populated: %+v", d)
	}
	// The latency percentiles are exact order statistics over the same
	// measurements the mean summarizes, so they must be populated and
	// monotone.
	if d.P50QueryUS <= 0 || d.P50QueryUS > d.P95QueryUS || d.P95QueryUS > d.P99QueryUS {
		t.Errorf("query percentiles not monotone: p50=%v p95=%v p99=%v", d.P50QueryUS, d.P95QueryUS, d.P99QueryUS)
	}
	// Batch percentiles ride on the index's own telemetry (on by
	// default), windowed around the SearchBatch call.
	if d.BatchP50US <= 0 || d.BatchP50US > d.BatchP99US {
		t.Errorf("batch percentiles not populated: p50=%v p99=%v", d.BatchP50US, d.BatchP99US)
	}
	if d.MAP <= 0 || d.MAP > 1 || d.MeanRatio < 1-1e-9 {
		t.Errorf("quality out of range: MAP=%v ratio=%v", d.MAP, d.MeanRatio)
	}
	if d.Recall <= 0 || d.Recall > 1 {
		t.Errorf("recall out of range: %v", d.Recall)
	}

	var buf bytes.Buffer
	if err := snap.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var round Snapshot
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if round.Datasets[0].MAP != d.MAP {
		t.Error("round-tripped MAP differs")
	}
}

// The snapshot must also run over a sharded layout, recording the shard
// count it measured.
func TestRunSnapshotSharded(t *testing.T) {
	cfg := Config{Scale: 0.05, Queries: 5, K: 10, WorkDir: t.TempDir(), Seed: 42, Shards: 4}
	snap, err := RunSnapshot(cfg, []string{"SIFT10K"})
	if err != nil {
		t.Fatal(err)
	}
	if snap.Config.Shards != 4 {
		t.Fatalf("snapshot config shards = %d", snap.Config.Shards)
	}
	d := snap.Datasets[0]
	if d.BuildMS <= 0 || d.MeanQueryUS <= 0 || d.BatchQPS <= 0 {
		t.Errorf("timings not populated: %+v", d)
	}
	if d.Recall <= 0 || d.Recall > 1 || d.MAP <= 0 {
		t.Errorf("quality out of range: %+v", d)
	}
}

func TestRunSnapshotUnknownDataset(t *testing.T) {
	if _, err := RunSnapshot(Config{Scale: 0.05, WorkDir: t.TempDir()}, []string{"nope"}); err == nil {
		t.Fatal("unknown dataset must fail")
	}
}

func TestRunSnapshotTiered(t *testing.T) {
	cfg := Config{Scale: 0.05, Queries: 5, K: 10, WorkDir: t.TempDir(), Seed: 42, Tiered: true}
	snap, err := RunSnapshot(cfg, []string{"SIFT10K"})
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Config.Tiered {
		t.Fatal("config did not record tiered")
	}
	rows := snap.Tiered
	if len(rows) != 4 {
		t.Fatalf("%d tiered rows, want 4 (exact/balanced/fast/auto)", len(rows))
	}
	byPreset := map[string]TieredResult{}
	for _, r := range rows {
		if r.Dataset != "SIFT10K" || r.Alpha < 1 || r.Gamma < 1 || r.MeanQueryUS <= 0 {
			t.Fatalf("row not measured: %+v", r)
		}
		byPreset[r.Preset] = r
	}
	exact, fast, auto := byPreset["exact"], byPreset["fast"], byPreset["auto"]
	if exact.Alpha <= byPreset["balanced"].Alpha || fast.Alpha >= byPreset["balanced"].Alpha {
		t.Fatalf("tier cascade ordering broken: exact=%d balanced=%d fast=%d",
			exact.Alpha, byPreset["balanced"].Alpha, fast.Alpha)
	}
	if exact.Recall < fast.Recall {
		t.Fatalf("exact recall %v < fast recall %v", exact.Recall, fast.Recall)
	}
	if auto.Target == "" {
		t.Fatalf("auto row carries no target: %+v", auto)
	}
	// The acceptance bar: unless the target is infeasible on this tiny
	// scale, the tuner's point holds the target at less cost than exact.
	if !auto.SLOUnmet {
		if auto.Recall < 0.98 {
			t.Fatalf("auto row misses target: %+v", auto)
		}
		if auto.Alpha > exact.Alpha {
			t.Fatalf("auto picked a wider cascade than exact: %+v vs %+v", auto, exact)
		}
	}
	PrintTiered(rows)
}
