package bench

import (
	"fmt"
	"io"
	"math/rand"
	"path/filepath"
	"time"

	"github.com/hd-index/hdindex/internal/baselines"
	"github.com/hd-index/hdindex/internal/core"
	"github.com/hd-index/hdindex/internal/metrics"
	"github.com/hd-index/hdindex/internal/rdbtree"
	"github.com/hd-index/hdindex/internal/refsel"
)

// runHD builds an HD-Index with params p over w and evaluates it at k.
func runHD(w *Workload, dir string, p core.Params, k int) (RunResult, error) {
	b := Builder{Name: "HD-Index", Build: func(dir string, wl *Workload) (baselines.Index, error) {
		cix, err := core.Build(dir, wl.Data.Vectors, p)
		if err != nil {
			return nil, err
		}
		return hdAdapter{cix}, nil
	}}
	res := RunMethod(b, w, dir, k)
	return res, res.Err
}

// Fig1 reproduces Figure 1: MAP@10 vs approximation ratio for the six
// methods on SIFT10K and Audio (k = 10).
func Fig1(out io.Writer, cfg Config) error {
	cfg.defaults()
	cfg.K = 10
	for _, name := range []string{"SIFT10K", "Audio"} {
		spec, _ := SpecByName(name)
		w := MakeWorkload(spec, cfg)
		fmt.Fprintf(out, "\nFigure 1 (%s): MAP@10 and approximation ratio, k=10\n", name)
		t := NewTable(out, "method", "MAP@10", "ratio")
		for _, b := range Methods(cfg.Seed) {
			if b.Name == "OPQ" || b.Name == "HNSW" {
				continue // Fig. 1 compares the six disk-era methods
			}
			r := RunMethod(b, w, filepath.Join(cfg.WorkDir, name, b.Name), 10)
			if r.Err != nil {
				t.Row(b.Name, "NP", "NP")
				continue
			}
			t.Row(b.Name, r.MAP, r.Ratio)
		}
		t.Flush()
	}
	return nil
}

// Table3 reproduces Table 3: RDB-tree leaf orders from Eq. (4).
func Table3(out io.Writer, cfg Config) error {
	fmt.Fprintln(out, "\nTable 3: RDB-tree leaf orders (page size 4096, Eq. 4)")
	t := NewTable(out, "dataset", "nu", "omega", "eta", "m", "leaf order")
	rows := []struct {
		name              string
		nu, omega, eta, m int
	}{
		{"SIFTn", 128, 8, 16, 10},
		{"Yorck", 128, 32, 16, 10},
		{"SUN", 512, 32, 64, 10},
		{"Audio", 192, 32, 24, 10},
		{"Enron", 1369, 16, 37, 10},
		{"Glove", 100, 32, 10, 10},
	}
	for _, r := range rows {
		t.Row(r.name, r.nu, r.omega, r.eta, r.m, rdbtree.LeafOrder(4096, r.eta, r.omega, r.m))
	}
	t.Flush()
	fmt.Fprintln(out, "note: Enron/Glove print 18/40 in the paper's table but Eq. (4) yields the values above; see EXPERIMENTS.md")
	return nil
}

// Fig4M reproduces Figure 4(a-d): the effect of the number of reference
// objects m on query time, index size, MAP@10 and ratio.
func Fig4M(out io.Writer, cfg Config) error {
	cfg.defaults()
	cfg.K = 10
	for _, name := range []string{"SIFT10K", "Audio"} {
		spec, _ := SpecByName(name)
		w := MakeWorkload(spec, cfg)
		fmt.Fprintf(out, "\nFigure 4(a-d) (%s): varying reference objects m\n", name)
		t := NewTable(out, "m", "query ms", "index MB", "MAP@10", "ratio")
		for _, m := range []int{2, 5, 10, 15, 20} {
			p := HDParams(spec, len(w.Data.Vectors))
			p.M = m
			p.Seed = cfg.Seed
			r, err := runHD(w, filepath.Join(cfg.WorkDir, name, fmt.Sprintf("m%d", m)), p, 10)
			if err != nil {
				return err
			}
			t.Row(m, r.AvgQueryMS, float64(r.IndexBytes)/(1<<20), r.MAP, r.Ratio)
		}
		t.Flush()
	}
	return nil
}

// Fig4Tau reproduces Figure 4(e-h): the effect of the number of
// RDB-trees τ.
func Fig4Tau(out io.Writer, cfg Config) error {
	cfg.defaults()
	cfg.K = 10
	spec, _ := SpecByName("SIFT10K")
	w := MakeWorkload(spec, cfg)
	fmt.Fprintln(out, "\nFigure 4(e-h) (SIFT10K): varying number of RDB-trees tau")
	t := NewTable(out, "tau", "query ms", "index MB", "MAP@10", "ratio")
	for _, tau := range []int{2, 4, 8, 16, 32} {
		p := HDParams(spec, len(w.Data.Vectors))
		p.Tau = tau
		p.Seed = cfg.Seed
		r, err := runHD(w, filepath.Join(cfg.WorkDir, "fig4tau", fmt.Sprintf("t%d", tau)), p, 10)
		if err != nil {
			return err
		}
		t.Row(tau, r.AvgQueryMS, float64(r.IndexBytes)/(1<<20), r.MAP, r.Ratio)
	}
	t.Flush()
	return nil
}

// Fig5 reproduces Figures 5/11/12: triangular-only vs combined
// triangular+Ptolemaic filtering at reduction ratios (α:β, β:γ) of
// (1,4), (2,2) and (1,2), for a given α.
func Fig5(out io.Writer, cfg Config, alpha int) error {
	cfg.defaults()
	cfg.K = 10
	for _, name := range []string{"SIFT10K", "Audio"} {
		spec, _ := SpecByName(name)
		w := MakeWorkload(spec, cfg)
		a := alpha
		if a <= 0 {
			a = 4096
		}
		if a > len(w.Data.Vectors) {
			a = len(w.Data.Vectors)
		}
		fmt.Fprintf(out, "\nFigure 5 (%s): filtering mechanisms at alpha=%d\n", name, a)
		t := NewTable(out, "a:b,b:g", "filter", "query ms", "MAP@10")
		for _, combo := range [][2]int{{1, 4}, {2, 2}, {1, 2}} {
			beta := a / combo[0]
			gamma := beta / combo[1]
			if gamma < 1 {
				gamma = 1
			}
			// Combined: alpha -> beta (triangular) -> gamma (Ptolemaic).
			p := HDParams(spec, len(w.Data.Vectors))
			p.Alpha, p.Beta, p.Gamma = a, beta, gamma
			p.UsePtolemaic = true
			p.Seed = cfg.Seed
			r, err := runHD(w, filepath.Join(cfg.WorkDir, name, "pto"), p, 10)
			if err != nil {
				return err
			}
			t.Row(fmt.Sprintf("%d:%d", combo[0], combo[1]), "tri+pto", r.AvgQueryMS, r.MAP)
			// Triangular alone with the same overall reduction alpha -> gamma.
			p2 := HDParams(spec, len(w.Data.Vectors))
			p2.Alpha, p2.Beta, p2.Gamma = a, gamma, gamma
			p2.UsePtolemaic = false
			p2.Seed = cfg.Seed
			r2, err := runHD(w, filepath.Join(cfg.WorkDir, name, "tri"), p2, 10)
			if err != nil {
				return err
			}
			t.Row(fmt.Sprintf("%d:%d", combo[0], combo[1]), "tri", r2.AvgQueryMS, r2.MAP)
		}
		t.Flush()
	}
	return nil
}

// Fig6Alpha reproduces Figure 6(a-f): varying α at α/γ ∈ {2,4,8}.
func Fig6Alpha(out io.Writer, cfg Config) error {
	cfg.defaults()
	cfg.K = 10
	spec, _ := SpecByName("SIFT10K")
	w := MakeWorkload(spec, cfg)
	n := len(w.Data.Vectors)
	fmt.Fprintln(out, "\nFigure 6(a-f) (SIFT10K): varying alpha (triangular only)")
	t := NewTable(out, "alpha", "a/g", "query ms", "MAP@10")
	alphas := []int{1024, 2048, 4096, 8192}
	if alphas[0] > n {
		// Reduced-scale run: sweep proportionally instead.
		alphas = []int{n / 8, n / 4, n / 2, n}
	}
	for _, ratio := range []int{2, 4, 8} {
		for _, a := range alphas {
			if a > n || a/ratio < 1 {
				continue
			}
			gamma := a / ratio
			p := HDParams(spec, n)
			p.Alpha, p.Beta, p.Gamma = a, gamma, gamma
			p.Seed = cfg.Seed
			r, err := runHD(w, filepath.Join(cfg.WorkDir, "fig6a"), p, 10)
			if err != nil {
				return err
			}
			t.Row(a, ratio, r.AvgQueryMS, r.MAP)
		}
	}
	t.Flush()
	return nil
}

// Fig6Gamma reproduces Figure 6(g,h): varying γ at α = 4096.
func Fig6Gamma(out io.Writer, cfg Config) error {
	cfg.defaults()
	cfg.K = 10
	spec, _ := SpecByName("SIFT10K")
	w := MakeWorkload(spec, cfg)
	n := len(w.Data.Vectors)
	a := 4096
	if a > n {
		a = n
	}
	fmt.Fprintf(out, "\nFigure 6(g,h) (SIFT10K): varying gamma at alpha=%d\n", a)
	t := NewTable(out, "gamma", "query ms", "MAP@10")
	for _, g := range []int{128, 256, 512, 1024, 2048, 4096} {
		if g > a {
			continue
		}
		p := HDParams(spec, n)
		p.Alpha, p.Beta, p.Gamma = a, g, g
		p.Seed = cfg.Seed
		r, err := runHD(w, filepath.Join(cfg.WorkDir, "fig6g"), p, 10)
		if err != nil {
			return err
		}
		t.Row(g, r.AvgQueryMS, r.MAP)
	}
	t.Flush()
	return nil
}

// Fig7 reproduces Figure 7: MAP@10 and ratio across five datasets for
// the six comparison methods.
func Fig7(out io.Writer, cfg Config) error {
	cfg.defaults()
	cfg.K = 10
	for _, name := range []string{"SIFT10K", "Audio", "SUN", "SIFT1M", "Yorck"} {
		spec, _ := SpecByName(name)
		w := MakeWorkload(spec, cfg)
		fmt.Fprintf(out, "\nFigure 7 (%s): MAP@10 and ratio, k=10\n", name)
		t := NewTable(out, "method", "MAP@10", "ratio")
		for _, b := range Methods(cfg.Seed) {
			if b.Name == "OPQ" || b.Name == "HNSW" {
				continue
			}
			r := RunMethod(b, w, filepath.Join(cfg.WorkDir, "fig7", name, b.Name), 10)
			if r.Err != nil {
				t.Row(b.Name, "NP", "NP")
				continue
			}
			t.Row(b.Name, r.MAP, r.Ratio)
		}
		t.Flush()
	}
	return nil
}

// Fig8 reproduces Figure 8 (and feeds Table 5): MAP@100, query time,
// index size, and RAM during indexing and querying, for every method on
// every dataset group.
func Fig8(out io.Writer, cfg Config) (map[string]map[string]RunResult, error) {
	cfg.defaults()
	k := cfg.K
	all := make(map[string]map[string]RunResult)
	groups := [][]string{
		{"SIFT10K", "Audio", "SUN"},
		{"SIFT1M", "Yorck"},
		{"Enron", "Glove"},
	}
	for gi, group := range groups {
		for _, name := range group {
			spec, _ := SpecByName(name)
			w := MakeWorkload(spec, cfg)
			fmt.Fprintf(out, "\nFigure 8 group %d (%s): k=%d\n", gi+1, name, k)
			t := NewTable(out, "method", "MAP", "query ms", "index MB", "build RAM MB", "query RAM MB")
			perDs := make(map[string]RunResult)
			for _, b := range Methods(cfg.Seed) {
				r := RunMethod(b, w, filepath.Join(cfg.WorkDir, "fig8", name, b.Name), k)
				perDs[b.Name] = r
				if r.Err != nil {
					t.Row(b.Name, "NP", "NP", "NP", "NP", "NP")
					continue
				}
				t.Row(b.Name, r.MAP, r.AvgQueryMS, float64(r.IndexBytes)/(1<<20), r.BuildRAMMB, r.QueryRAMMB)
			}
			t.Flush()
			all[name] = perDs
		}
	}
	return all, nil
}

// Table5 reproduces Table 5: the gains of HD-Index over every other
// method in query time and MAP@100, per dataset.
func Table5(out io.Writer, cfg Config) error {
	cfg.defaults()
	results, err := Fig8(io.Discard, cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "\nTable 5: gains of HD-Index over other methods (k=%d)\n", cfg.K)
	t := NewTable(out, "dataset", "HD ms", "metric", "C2LSH", "SRS", "Multicurves", "QALSH", "OPQ", "HNSW", "HD MAP")
	order := []string{"C2LSH", "SRS", "Multicurves", "QALSH", "OPQ", "HNSW"}
	for _, name := range []string{"SIFT10K", "Audio", "SUN", "SIFT1M", "Yorck", "Enron", "Glove"} {
		perDs, ok := results[name]
		if !ok {
			continue
		}
		hd := perDs["HD-Index"]
		if hd.Err != nil {
			continue
		}
		timeRow := []interface{}{name, hd.AvgQueryMS, "time gain"}
		mapRow := []interface{}{name, "", "MAP gain"}
		for _, m := range order {
			r := perDs[m]
			if r.Err != nil {
				timeRow = append(timeRow, "NP")
				mapRow = append(mapRow, "NP")
				continue
			}
			timeRow = append(timeRow, fmt.Sprintf("%.3gx", r.AvgQueryMS/hd.AvgQueryMS))
			if r.MAP > 0 {
				mapRow = append(mapRow, fmt.Sprintf("%.3gx", hd.MAP/r.MAP))
			} else {
				mapRow = append(mapRow, "inf")
			}
		}
		timeRow = append(timeRow, hd.MAP)
		mapRow = append(mapRow, hd.MAP)
		t.Row(timeRow...)
		t.Row(mapRow...)
	}
	t.Flush()
	fig9Summary(out, results)
	return nil
}

// fig9Summary derives Figure 9's qualitative Q/M/E classification from
// the measured Fig. 8 numbers: Quality = MAP within 80% of the best on
// a majority of datasets; Memory = index + query RAM within 4x of the
// smallest; Efficiency = query time within 10x of the fastest.
func fig9Summary(out io.Writer, results map[string]map[string]RunResult) {
	methods := []string{"SRS", "C2LSH", "Multicurves", "QALSH", "OPQ", "HNSW", "HD-Index"}
	votes := map[string][3]int{} // Q, M, E wins per method
	total := 0
	for _, perDs := range results {
		var bestMAP, minFoot, minTime float64
		first := true
		for _, m := range methods {
			r, ok := perDs[m]
			if !ok || r.Err != nil {
				continue
			}
			foot := float64(r.IndexBytes)/(1<<20) + r.QueryRAMMB
			if first {
				bestMAP, minFoot, minTime = r.MAP, foot, r.AvgQueryMS
				first = false
				continue
			}
			if r.MAP > bestMAP {
				bestMAP = r.MAP
			}
			if foot < minFoot {
				minFoot = foot
			}
			if r.AvgQueryMS < minTime {
				minTime = r.AvgQueryMS
			}
		}
		if first {
			continue
		}
		total++
		for _, m := range methods {
			r, ok := perDs[m]
			if !ok || r.Err != nil {
				continue
			}
			v := votes[m]
			if r.MAP >= 0.8*bestMAP {
				v[0]++
			}
			if float64(r.IndexBytes)/(1<<20)+r.QueryRAMMB <= 4*minFoot {
				v[1]++
			}
			if r.AvgQueryMS <= 10*minTime {
				v[2]++
			}
			votes[m] = v
		}
	}
	if total == 0 {
		return
	}
	fmt.Fprintln(out, "\nFigure 9: qualitative classification derived from the measurements")
	t := NewTable(out, "method", "quality", "memory", "efficiency", "class")
	for _, m := range methods {
		v := votes[m]
		class := ""
		if v[0]*2 >= total {
			class += "Q"
		}
		if v[1]*2 >= total {
			class += "M"
		}
		if v[2]*2 >= total {
			class += "E"
		}
		if class == "" {
			class = "-"
		}
		t.Row(m, fmt.Sprintf("%d/%d", v[0], total), fmt.Sprintf("%d/%d", v[1], total),
			fmt.Sprintf("%d/%d", v[2], total), class)
	}
	t.Flush()
}

// Fig10 reproduces Figure 10: reference-object selection algorithms —
// selection time and the MAP the resulting index achieves.
func Fig10(out io.Writer, cfg Config) error {
	cfg.defaults()
	for _, name := range []string{"Audio", "SIFT1M"} {
		spec, _ := SpecByName(name)
		w := MakeWorkload(spec, cfg)
		fmt.Fprintf(out, "\nFigure 10 (%s): reference selection algorithms, k=%d\n", name, cfg.K)
		t := NewTable(out, "selector", "selection ms", "MAP")
		for _, sel := range []core.RefSelection{core.RefRandom, core.RefSSS, core.RefSSSDyn} {
			// Time the selection itself.
			rng := rand.New(rand.NewSource(cfg.Seed))
			t0 := time.Now()
			switch sel {
			case core.RefRandom:
				_, err := refsel.Random(w.Data.Vectors, 10, rng)
				if err != nil {
					return err
				}
			case core.RefSSS:
				_, err := refsel.SSS(w.Data.Vectors, 10, 0.3, rng)
				if err != nil {
					return err
				}
			case core.RefSSSDyn:
				_, err := refsel.SSSDyn(w.Data.Vectors, 10, 0.3, 64, rng)
				if err != nil {
					return err
				}
			}
			selMS := float64(time.Since(t0).Microseconds()) / 1000

			p := HDParams(spec, len(w.Data.Vectors))
			p.RefSelection = sel
			p.Seed = cfg.Seed
			r, err := runHD(w, filepath.Join(cfg.WorkDir, "fig10", name, string(sel)), p, cfg.K)
			if err != nil {
				return err
			}
			t.Row(string(sel), selMS, r.MAP)
		}
		t.Flush()
	}
	return nil
}

// Fig13 reproduces Figure 13: MAP@k and query time for k ∈ {1,5,10,50,100}.
func Fig13(out io.Writer, cfg Config) error {
	cfg.defaults()
	for _, name := range []string{"SIFT10K", "Audio"} {
		spec, _ := SpecByName(name)
		w := MakeWorkload(spec, cfg)
		fmt.Fprintf(out, "\nFigure 13 (%s): varying k\n", name)
		t := NewTable(out, "method", "k", "MAP@k", "query ms")
		for _, b := range Methods(cfg.Seed) {
			if b.Name == "OPQ" || b.Name == "HNSW" {
				continue
			}
			dir := filepath.Join(cfg.WorkDir, "fig13", name, b.Name)
			ix, err := b.Build(dir, w)
			if err != nil {
				t.Row(b.Name, "-", "NP", "NP")
				continue
			}
			for _, k := range []int{1, 5, 10, 50, 100} {
				if k > cfg.K {
					continue // ground truth depth
				}
				got := make([][]uint64, len(w.Queries))
				t0 := time.Now()
				for qi, q := range w.Queries {
					r, err := ix.Search(q, k)
					if err != nil {
						ix.Close()
						return err
					}
					ids := make([]uint64, len(r))
					for i, x := range r {
						ids[i] = x.ID
					}
					got[qi] = ids
				}
				ms := float64(time.Since(t0).Microseconds()) / 1000 / float64(len(w.Queries))
				t.Row(b.Name, k, metrics.MAP(got, w.TruthIDs, k), ms)
			}
			ix.Close()
		}
		t.Flush()
	}
	return nil
}

// ImageSearch reproduces §5.5 / Table 6: multi-descriptor image search
// with Borda-count aggregation on a Yorck-like synthetic corpus.
func ImageSearch(out io.Writer, cfg Config) error {
	cfg.defaults()
	return imageSearchImpl(out, cfg)
}
