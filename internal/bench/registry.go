package bench

import (
	"fmt"
	"io"
	"sort"

	"github.com/hd-index/hdindex/internal/metrics"
)

func mapOf(got, truth [][]uint64, k int) float64 { return metrics.MAP(got, truth, k) }

// Experiment is a registered, runnable reproduction of one table/figure.
type Experiment struct {
	ID          string
	Description string
	Run         func(out io.Writer, cfg Config) error
}

// Registry returns all experiments, keyed by id.
func Registry() map[string]Experiment {
	exps := []Experiment{
		{"fig1", "MAP@10 vs approximation ratio, 6 methods, SIFT10K & Audio", Fig1},
		{"table3", "RDB-tree leaf orders from Eq. (4)", Table3},
		{"fig4m", "effect of the number of reference objects m (Fig. 4a-d)", Fig4M},
		{"fig4tau", "effect of the number of RDB-trees tau (Fig. 4e-h)", Fig4Tau},
		{"fig5", "triangular vs Ptolemaic filtering at alpha=4096 (Fig. 5)", func(w io.Writer, c Config) error { return Fig5(w, c, 4096) }},
		{"fig11", "filtering comparison at alpha=2048 (Fig. 11)", func(w io.Writer, c Config) error { return Fig5(w, c, 2048) }},
		{"fig12", "filtering comparison at alpha=8192 (Fig. 12)", func(w io.Writer, c Config) error { return Fig5(w, c, 8192) }},
		{"fig6alpha", "varying alpha at alpha/gamma in {2,4,8} (Fig. 6a-f)", Fig6Alpha},
		{"fig6gamma", "varying gamma at alpha=4096 (Fig. 6g,h)", Fig6Gamma},
		{"fig7", "MAP@10 and ratio across 5 datasets (Fig. 7)", Fig7},
		{"fig8", "MAP@100/time/index size/RAM for all methods (Fig. 8)", func(w io.Writer, c Config) error {
			_, err := Fig8(w, c)
			return err
		}},
		{"fig10", "reference selection algorithms (Fig. 10)", Fig10},
		{"fig13", "MAP@k and time vs k (Fig. 13)", Fig13},
		{"table5", "gains of HD-Index over each method (Table 5)", Table5},
		{"imagesearch", "Borda-count image retrieval (§5.5, Table 6)", ImageSearch},
		{"abl-partition", "ablation: contiguous vs random partitioning (§5.2.1)", AblationPartition},
		{"abl-curve", "ablation: Hilbert vs Z-order curve", AblationCurve},
		{"abl-parallel", "ablation: sequential vs parallel tree search (§5.2.8)", AblationParallel},
		{"abl-cache", "ablation: buffer pool on vs off (§5 protocol)", AblationCache},
		{"abl-ptolemaic-io", "ablation: Ptolemaic filter is I/O-free (§5.2.5)", AblationPtolemaicIO},
		{"abl-scaling", "ablation: query time vs dataset size (§5.4.2)", AblationScaling},
	}
	m := make(map[string]Experiment, len(exps))
	for _, e := range exps {
		m[e.ID] = e
	}
	return m
}

// IDs returns the experiment ids in stable order.
func IDs() []string {
	reg := Registry()
	ids := make([]string, 0, len(reg))
	for id := range reg {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes the experiment with the given id.
func Run(id string, out io.Writer, cfg Config) error {
	e, ok := Registry()[id]
	if !ok {
		return fmt.Errorf("bench: unknown experiment %q (have %v)", id, IDs())
	}
	return e.Run(out, cfg)
}
