package bench

import (
	"bytes"
	"strings"
	"testing"
)

// fig9Summary must classify a method dominating all three axes as QME,
// and a method that is only fast as E.
func TestFig9Classification(t *testing.T) {
	results := map[string]map[string]RunResult{
		"ds1": {
			"HD-Index":    {Method: "HD-Index", MAP: 0.95, AvgQueryMS: 10, IndexBytes: 10 << 20, QueryRAMMB: 1},
			"HNSW":        {Method: "HNSW", MAP: 0.96, AvgQueryMS: 1, IndexBytes: 10 << 20, QueryRAMMB: 500},
			"SRS":         {Method: "SRS", MAP: 0.10, AvgQueryMS: 5, IndexBytes: 1 << 20, QueryRAMMB: 1},
			"C2LSH":       {Method: "C2LSH", MAP: 0.50, AvgQueryMS: 2, IndexBytes: 40 << 20, QueryRAMMB: 40},
			"QALSH":       {Method: "QALSH", MAP: 0.60, AvgQueryMS: 5, IndexBytes: 20 << 20, QueryRAMMB: 2},
			"OPQ":         {Method: "OPQ", MAP: 0.70, AvgQueryMS: 1.5, IndexBytes: 5 << 20, QueryRAMMB: 100},
			"Multicurves": {Method: "Multicurves", MAP: 0.93, AvgQueryMS: 50, IndexBytes: 500 << 20, QueryRAMMB: 1},
		},
	}
	var buf bytes.Buffer
	fig9Summary(&buf, results)
	out := buf.String()
	if !strings.Contains(out, "Figure 9") {
		t.Fatalf("no summary printed:\n%s", out)
	}
	// HD-Index: quality (0.95 >= 0.8*0.96), memory (11MB <= 4*2MB=8... no).
	// Just assert structural properties: every method appears with a class.
	for _, m := range []string{"HD-Index", "HNSW", "SRS", "C2LSH", "QALSH", "OPQ", "Multicurves"} {
		if !strings.Contains(out, m) {
			t.Errorf("method %s missing from Fig. 9 summary", m)
		}
	}
	// SRS must not be classified Q (MAP 0.10 << 0.8*0.96).
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "SRS") && strings.Contains(line, "Q") {
			t.Errorf("SRS wrongly classified as quality: %s", line)
		}
		if strings.HasPrefix(line, "HNSW") && !strings.Contains(line, "Q") {
			t.Errorf("HNSW should be classified as quality: %s", line)
		}
	}
}

func TestFig9EmptyResults(t *testing.T) {
	var buf bytes.Buffer
	fig9Summary(&buf, map[string]map[string]RunResult{})
	if buf.Len() != 0 {
		t.Error("empty results must print nothing")
	}
	// All-error results likewise.
	fig9Summary(&buf, map[string]map[string]RunResult{
		"ds": {"HD-Index": {Err: errMock{}}},
	})
	if buf.Len() != 0 {
		t.Error("all-failed results must print nothing")
	}
}

type errMock struct{}

func (errMock) Error() string { return "mock" }
