package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	hdindex "github.com/hd-index/hdindex"
	"github.com/hd-index/hdindex/internal/cluster"
	"github.com/hd-index/hdindex/internal/server"
	"github.com/hd-index/hdindex/internal/shard"
	"github.com/hd-index/hdindex/internal/telemetry"
)

// Cluster-phase shape, fixed so snapshots stay machine-comparable: a
// clusterShards-node cluster (each shard served by its own in-process
// HTTP server, every shard listed twice so hedging has a second leg),
// stormed by clusterClients closed-loop clients issuing single
// searches — the request shape whose scatter/merge overhead the row
// exists to price against the in-process sharded index.
const (
	clusterShards  = 2
	clusterClients = 8
	clusterMeasure = 1200 * time.Millisecond
	// clusterFailMeasure bounds the degraded storm: shard 0's preferred
	// replica is a dead address, so every request to it fails over.
	clusterFailMeasure = 600 * time.Millisecond
)

// ClusterResult is one dataset's cluster-serving row: the same sharded
// index served two ways — in one process behind one HTTP server, and
// as an N-node cluster behind the coordinator — under the same
// closed-loop storm. The answers are bit-identical (pinned by the
// cluster equivalence tests); the row prices the distribution tax and
// reports the robustness machinery's activity.
type ClusterResult struct {
	Dataset string `json:"dataset"`
	N       int    `json:"n"`
	Dim     int    `json:"dim"`
	Shards  int    `json:"shards"`
	Clients int    `json:"clients"`
	// InprocQPS/P99US: the whole sharded index in one process behind
	// one server — the ceiling the cluster is judged against. All
	// latency fields are server-side (Server-Timing): queue wait
	// included, client delivery delay excluded.
	InprocQPS   float64 `json:"inproc_qps"`
	InprocP99US float64 `json:"inproc_p99_us"`
	// ClusterQPS/P99US: the same storm through the coordinator
	// scatter-gathering over per-shard servers (hedging on, adaptive
	// delay).
	ClusterQPS   float64 `json:"cluster_qps"`
	ClusterP99US float64 `json:"cluster_p99_us"`
	// HedgedFraction is hedges fired per sub-query during the cluster
	// storm (each request fans out to Shards sub-queries); HedgeWins
	// counts the hedges whose backup answered first.
	HedgedFraction float64 `json:"hedged_fraction"`
	HedgeWins      uint64  `json:"hedge_wins"`
	// The degraded storm re-points shard 0's preferred replica at a
	// dead address: every shard-0 sub-query must fail over. Failovers
	// is the coordinator's count over that storm; FailoverQPS is the
	// throughput it sustained anyway; FailedRequests must be 0.
	Failovers      uint64  `json:"failovers"`
	FailoverQPS    float64 `json:"failover_qps"`
	FailedRequests int64   `json:"failed_requests"`
}

// clusterTally accumulates one storm's outcomes.
type clusterTally struct {
	ok   atomic.Int64
	errs atomic.Int64
	hist telemetry.Histogram
}

// clusterStorm drives closed-loop clients posting single /search
// requests until the deadline, recording server-side latency.
func clusterStorm(clients int, url string, bodies [][]byte, d time.Duration) *clusterTally {
	tl := &clusterTally{}
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: clients}}
	stop := time.Now().Add(d)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; time.Now().Before(stop); i++ {
				t0 := time.Now()
				resp, err := client.Post(url, "application/json", bytes.NewReader(bodies[i%len(bodies)]))
				if err != nil {
					tl.errs.Add(1)
					continue
				}
				elapsed := serverDuration(resp, time.Since(t0))
				if resp.StatusCode == http.StatusOK {
					tl.ok.Add(1)
					tl.hist.ObserveDuration(elapsed)
				} else {
					tl.errs.Add(1)
				}
				resp.Body.Close()
			}
		}(c)
	}
	wg.Wait()
	client.CloseIdleConnections()
	return tl
}

// deadEndpoint reserves and releases a loopback port: connecting to it
// refuses immediately, the cheapest possible replica failure.
func deadEndpoint() (string, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := l.Addr().String()
	return "http://" + addr, l.Close()
}

// snapshotCluster builds the dataset's index sharded, serves it both
// in-process and as a cluster of per-shard servers behind the
// coordinator, and storms both with the same closed-loop clients.
func snapshotCluster(spec DataSpec, cfg Config) (ClusterResult, error) {
	w := MakeWorkload(spec, cfg)
	n := len(w.Data.Vectors)
	out := ClusterResult{Dataset: spec.Name, N: n, Dim: w.Data.Dim,
		Shards: clusterShards, Clients: clusterClients}

	p := HDParams(spec, n)
	root := filepath.Join(cfg.WorkDir, "snapshot-cluster", spec.Name)
	built, err := hdindex.Build(root, w.Data.Vectors, hdindex.Options{
		Tau: p.Tau, Omega: p.Omega, M: p.M,
		Alpha: p.Alpha, Beta: p.Beta, Gamma: p.Gamma,
		Seed: cfg.Seed, Shards: clusterShards,
	})
	if err != nil {
		return out, err
	}
	if err := built.Close(); err != nil {
		return out, err
	}

	// The in-process ceiling: the whole sharded index behind one server.
	whole, err := hdindex.Open(root, hdindex.Options{})
	if err != nil {
		return out, err
	}
	defer whole.Close()
	inproc := httptest.NewServer(server.New(whole, server.Config{}).Handler())
	defer inproc.Close()

	// The cluster: one server per shard directory, each listed twice in
	// the manifest so the hedging path has a second replica to race.
	man := &cluster.Manifest{FormatVersion: cluster.ManifestFormatVersion, Dim: w.Data.Dim}
	for i := 0; i < clusterShards; i++ {
		dir := filepath.Join(root, fmt.Sprintf("shard-%02d", i))
		idx, err := hdindex.Open(dir, hdindex.Options{})
		if err != nil {
			return out, err
		}
		defer idx.Close()
		id, err := shard.ReadIdentity(dir)
		if err != nil {
			return out, err
		}
		if id != nil {
			man.UUID = id.ClusterUUID
		}
		node := httptest.NewServer(server.New(idx, server.Config{Identity: id}).Handler())
		defer node.Close()
		man.Shards = append(man.Shards, cluster.ShardSpec{
			Ordinal: i, Replicas: []string{node.URL, node.URL},
		})
	}
	coord, err := cluster.New(man, cluster.Options{})
	if err != nil {
		return out, err
	}
	defer coord.Close()
	front := httptest.NewServer(coord.Handler())
	defer front.Close()

	bodies := make([][]byte, len(w.Queries))
	for i, q := range w.Queries {
		if bodies[i], err = json.Marshal(map[string]any{"query": q, "k": w.K}); err != nil {
			return out, err
		}
	}

	// Phase 1 — in-process storm.
	base := clusterStorm(clusterClients, inproc.URL+"/search", bodies, clusterMeasure)
	if base.ok.Load() == 0 {
		return out, fmt.Errorf("bench: in-process cluster baseline made no successful requests (%d errors)", base.errs.Load())
	}
	out.InprocQPS = float64(base.ok.Load()) / clusterMeasure.Seconds()
	out.InprocP99US = base.hist.Snapshot().Quantile(0.99) / 1e3

	// Phase 2 — the same storm through the coordinator.
	cl := clusterStorm(clusterClients, front.URL+"/search", bodies, clusterMeasure)
	if cl.ok.Load() == 0 {
		return out, fmt.Errorf("bench: cluster storm made no successful requests (%d errors)", cl.errs.Load())
	}
	st := coord.Stats()
	out.ClusterQPS = float64(cl.ok.Load()) / clusterMeasure.Seconds()
	out.ClusterP99US = cl.hist.Snapshot().Quantile(0.99) / 1e3
	if subqueries := cl.ok.Load() * int64(clusterShards); subqueries > 0 {
		out.HedgedFraction = float64(st.HedgesFired) / float64(subqueries)
	}
	out.HedgeWins = st.HedgeWins

	// Phase 3 — degraded storm: shard 0's preferred replica is a dead
	// address, so every shard-0 sub-query fails over to the live one.
	// The row's contract: zero failed requests, throughput intact.
	dead, err := deadEndpoint()
	if err != nil {
		return out, err
	}
	failMan := *man
	failMan.Shards = append([]cluster.ShardSpec(nil), man.Shards...)
	failMan.Shards[0] = cluster.ShardSpec{
		Ordinal: 0, Replicas: []string{dead, man.Shards[0].Replicas[0]},
	}
	// Health checking off: the point is the per-request failover path,
	// not the prober learning to skip the dead replica.
	failCoord, err := cluster.New(&failMan, cluster.Options{HealthInterval: -1})
	if err != nil {
		return out, err
	}
	defer failCoord.Close()
	failFront := httptest.NewServer(failCoord.Handler())
	defer failFront.Close()
	fl := clusterStorm(clusterClients, failFront.URL+"/search", bodies, clusterFailMeasure)
	fst := failCoord.Stats()
	out.Failovers = fst.Failovers
	out.FailoverQPS = float64(fl.ok.Load()) / clusterFailMeasure.Seconds()
	out.FailedRequests = fl.errs.Load()
	return out, nil
}

// PrintCluster renders the cluster rows the way the other phases print
// theirs.
func PrintCluster(rows []ClusterResult) {
	fmt.Println("\n== Cluster serving (coordinator scatter-gather vs in-process) ==")
	for _, r := range rows {
		fmt.Printf("  %-10s inproc %7.0f qps (p99 %7.0fµs)  cluster %7.0f qps (p99 %7.0fµs)  hedged %5.2f%%  failovers %d (degraded %7.0f qps, %d failed)\n",
			r.Dataset, r.InprocQPS, r.InprocP99US, r.ClusterQPS, r.ClusterP99US,
			100*r.HedgedFraction, r.Failovers, r.FailoverQPS, r.FailedRequests)
	}
}
