package kmeans

import (
	"math/rand"
	"testing"

	"github.com/hd-index/hdindex/internal/data"
	"github.com/hd-index/hdindex/internal/vecmath"
)

func TestSeparatedClusters(t *testing.T) {
	// Three well-separated blobs must be recovered.
	rng := rand.New(rand.NewSource(1))
	var vecs [][]float32
	centers := [][]float32{{0, 0}, {10, 10}, {-10, 5}}
	for _, c := range centers {
		for i := 0; i < 50; i++ {
			vecs = append(vecs, []float32{
				c[0] + float32(rng.NormFloat64())*0.2,
				c[1] + float32(rng.NormFloat64())*0.2,
			})
		}
	}
	res, err := Run(vecs, 3, 20, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Each centroid must be within 1.0 of a true centre.
	for _, ctr := range res.Centroids {
		ok := false
		for _, c := range centers {
			if vecmath.Dist(ctr, c) < 1.0 {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("centroid %v far from all true centres", ctr)
		}
	}
	// Points in the same blob share an assignment.
	for b := 0; b < 3; b++ {
		first := res.Assign[b*50]
		for i := 1; i < 50; i++ {
			if res.Assign[b*50+i] != first {
				t.Fatalf("blob %d split across clusters", b)
			}
		}
	}
}

func TestAssignmentsAreNearest(t *testing.T) {
	ds := data.Uniform(200, 4, 0, 1, 2)
	rng := rand.New(rand.NewSource(3))
	res, err := Run(ds.Vectors, 5, 15, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range ds.Vectors {
		got := vecmath.DistSq(v, res.Centroids[res.Assign[i]])
		for _, ctr := range res.Centroids {
			if d := vecmath.DistSq(v, ctr); d < got-1e-9 {
				t.Fatalf("point %d not assigned to nearest centroid", i)
			}
		}
	}
}

func TestMoreIterationsNeverWorse(t *testing.T) {
	ds := data.Uniform(300, 8, 0, 1, 4)
	r1, err := Run(ds.Vectors, 8, 1, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	r15, err := Run(ds.Vectors, 8, 15, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if Inertia(ds.Vectors, r15) > Inertia(ds.Vectors, r1)+1e-6 {
		t.Error("more Lloyd iterations must not increase inertia")
	}
}

func TestKClampedToN(t *testing.T) {
	vecs := [][]float32{{1}, {2}}
	res, err := Run(vecs, 10, 5, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centroids) != 2 {
		t.Fatalf("k should clamp to n, got %d", len(res.Centroids))
	}
}

func TestValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Run(nil, 2, 5, rng); err == nil {
		t.Error("empty input must fail")
	}
	if _, err := Run([][]float32{{1}}, 0, 5, rng); err == nil {
		t.Error("k=0 must fail")
	}
}

func TestIdenticalPoints(t *testing.T) {
	vecs := make([][]float32, 20)
	for i := range vecs {
		vecs[i] = []float32{3, 3}
	}
	res, err := Run(vecs, 4, 10, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if Inertia(vecs, res) != 0 {
		t.Error("identical points must have zero inertia")
	}
}
