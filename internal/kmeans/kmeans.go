// Package kmeans implements Lloyd's algorithm with k-means++ seeding.
//
// Two baselines need it: iDistance [73] uses cluster centres as the
// pivots its one-dimensional keys are measured from, and PQ/OPQ [35,27]
// learn one 256-centroid codebook per subspace with it.
package kmeans

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"github.com/hd-index/hdindex/internal/vecmath"
)

// Result holds the clustering output.
type Result struct {
	Centroids [][]float32
	Assign    []int // Assign[i] = centroid index of vectors[i]
}

// Run clusters vectors into k groups. maxIters bounds Lloyd iterations
// (15 is plenty for index construction — exactness is not required).
func Run(vectors [][]float32, k, maxIters int, rng *rand.Rand) (*Result, error) {
	n := len(vectors)
	if k < 1 {
		return nil, fmt.Errorf("kmeans: k must be >= 1, got %d", k)
	}
	if n == 0 {
		return nil, errors.New("kmeans: empty input")
	}
	if k > n {
		k = n
	}
	if maxIters <= 0 {
		maxIters = 15
	}
	dim := len(vectors[0])

	centroids := seedPlusPlus(vectors, k, rng)
	assign := make([]int, n)
	counts := make([]int, k)
	sums := make([][]float64, k)
	for c := range sums {
		sums[c] = make([]float64, dim)
	}

	for iter := 0; iter < maxIters; iter++ {
		changed := 0
		for i, v := range vectors {
			best, bestD := 0, math.Inf(1)
			for c, ctr := range centroids {
				if d := vecmath.DistSq(v, ctr); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best || iter == 0 {
				changed++
			}
			assign[i] = best
		}
		if iter > 0 && changed == 0 {
			break
		}
		for c := range sums {
			counts[c] = 0
			for d := range sums[c] {
				sums[c][d] = 0
			}
		}
		for i, v := range vectors {
			c := assign[i]
			counts[c]++
			for d, x := range v {
				sums[c][d] += float64(x)
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				// Re-seed empty cluster at a random point.
				centroids[c] = vecmath.Copy(vectors[rng.Intn(n)])
				continue
			}
			ctr := make([]float32, dim)
			for d := range ctr {
				ctr[d] = float32(sums[c][d] / float64(counts[c]))
			}
			centroids[c] = ctr
		}
	}
	return &Result{Centroids: centroids, Assign: assign}, nil
}

// seedPlusPlus picks initial centroids with the k-means++ D² weighting.
func seedPlusPlus(vectors [][]float32, k int, rng *rand.Rand) [][]float32 {
	n := len(vectors)
	centroids := make([][]float32, 0, k)
	centroids = append(centroids, vecmath.Copy(vectors[rng.Intn(n)]))
	d2 := make([]float64, n)
	for i, v := range vectors {
		d2[i] = vecmath.DistSq(v, centroids[0])
	}
	for len(centroids) < k {
		var total float64
		for _, d := range d2 {
			total += d
		}
		var next int
		if total <= 0 {
			next = rng.Intn(n)
		} else {
			target := rng.Float64() * total
			for i, d := range d2 {
				target -= d
				if target <= 0 {
					next = i
					break
				}
			}
		}
		c := vecmath.Copy(vectors[next])
		centroids = append(centroids, c)
		for i, v := range vectors {
			if d := vecmath.DistSq(v, c); d < d2[i] {
				d2[i] = d
			}
		}
	}
	return centroids
}

// Inertia returns the total squared distance of points to their assigned
// centroids — the quantity Lloyd descends; exposed for tests.
func Inertia(vectors [][]float32, res *Result) float64 {
	var sum float64
	for i, v := range vectors {
		sum += vecmath.DistSq(v, res.Centroids[res.Assign[i]])
	}
	return sum
}
