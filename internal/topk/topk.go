// Package topk implements bounded top-k selection over (id, distance)
// pairs. Every method in the paper — HD-Index's refinement step, the
// baselines' candidate verification, and ground-truth computation — ends
// with "keep the k nearest", so this lives in one shared package.
package topk

import "sort"

// Item is a candidate object with its (possibly approximate) distance.
type Item struct {
	ID   uint64
	Dist float64
}

// List is a bounded max-heap keeping the k smallest items seen, ordered
// by (Dist, ID) lexicographically. Using the full pair as the key makes
// the retained set independent of push order even under distance ties —
// the property that lets callers reorder their candidate streams (e.g.
// core's page-ordered refinement) without changing the answer.
// The zero value is unusable; construct with New.
type List struct {
	k     int
	items []Item // max-heap on (Dist, ID)
}

// itemLess reports whether x orders strictly before y: nearer first,
// ties broken by smaller id.
func itemLess(x, y Item) bool {
	if x.Dist != y.Dist {
		return x.Dist < y.Dist
	}
	return x.ID < y.ID
}

// New returns a List that retains the k nearest items pushed into it.
func New(k int) *List {
	if k < 1 {
		panic("topk: k must be >= 1")
	}
	return &List{k: k, items: make([]Item, 0, k)}
}

// K returns the bound this list was created with.
func (l *List) K() int { return l.k }

// Len returns the number of items currently held (<= k).
func (l *List) Len() int { return len(l.items) }

// Full reports whether k items are held.
func (l *List) Full() bool { return len(l.items) == l.k }

// Bound returns the current k-th smallest distance, or +Inf-like behaviour:
// if fewer than k items are held it returns ok=false.
func (l *List) Bound() (float64, bool) {
	if len(l.items) < l.k {
		return 0, false
	}
	return l.items[0].Dist, true
}

// Accepts reports whether an item at distance d is guaranteed to enter
// the list: any strictly smaller distance always does. At exactly the
// bound distance admission depends on the id tie-break, so Accepts is
// conservatively false there.
func (l *List) Accepts(d float64) bool {
	if len(l.items) < l.k {
		return true
	}
	return d < l.items[0].Dist
}

// Push offers an item; it is kept only if it is among the k smallest by
// (Dist, ID). Returns true if the item was retained.
func (l *List) Push(id uint64, d float64) bool {
	it := Item{id, d}
	if len(l.items) < l.k {
		l.items = append(l.items, it)
		l.up(len(l.items) - 1)
		return true
	}
	if !itemLess(it, l.items[0]) {
		return false
	}
	l.items[0] = it
	l.down(0)
	return true
}

// Items returns the retained items sorted by ascending (Dist, ID).
// The list is unchanged.
func (l *List) Items() []Item {
	return l.ItemsInto(nil)
}

// ItemsInto is Items reusing dst's capacity: the hot-path variant for
// callers that drain the same pooled list every query. The list is
// unchanged.
func (l *List) ItemsInto(dst []Item) []Item {
	dst = append(dst[:0], l.items...)
	sort.Slice(dst, func(i, j int) bool { return itemLess(dst[i], dst[j]) })
	return dst
}

// IDs returns just the ids, nearest first.
func (l *List) IDs() []uint64 {
	items := l.Items()
	ids := make([]uint64, len(items))
	for i, it := range items {
		ids[i] = it.ID
	}
	return ids
}

// Reset empties the list, keeping capacity.
func (l *List) Reset() { l.items = l.items[:0] }

func (l *List) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !itemLess(l.items[p], l.items[i]) {
			break
		}
		l.items[p], l.items[i] = l.items[i], l.items[p]
		i = p
	}
}

func (l *List) down(i int) {
	n := len(l.items)
	for {
		c := 2*i + 1
		if c >= n {
			return
		}
		if r := c + 1; r < n && itemLess(l.items[c], l.items[r]) {
			c = r
		}
		if !itemLess(l.items[i], l.items[c]) {
			return
		}
		l.items[i], l.items[c] = l.items[c], l.items[i]
		i = c
	}
}

// SelectK sorts items ascending by distance and returns the first k
// (or all, if fewer). It is the non-streaming counterpart of List, used
// by the filter cascade where the candidate set is already materialised.
func SelectK(items []Item, k int) []Item {
	sort.Slice(items, func(i, j int) bool {
		if items[i].Dist != items[j].Dist {
			return items[i].Dist < items[j].Dist
		}
		return items[i].ID < items[j].ID
	})
	if len(items) > k {
		items = items[:k]
	}
	return items
}
