// Package topk implements bounded top-k selection over (id, distance)
// pairs. Every method in the paper — HD-Index's refinement step, the
// baselines' candidate verification, and ground-truth computation — ends
// with "keep the k nearest", so this lives in one shared package.
package topk

import "sort"

// Item is a candidate object with its (possibly approximate) distance.
type Item struct {
	ID   uint64
	Dist float64
}

// List is a bounded max-heap keeping the k smallest-distance items seen.
// The zero value is unusable; construct with New.
type List struct {
	k     int
	items []Item // max-heap on Dist
}

// New returns a List that retains the k nearest items pushed into it.
func New(k int) *List {
	if k < 1 {
		panic("topk: k must be >= 1")
	}
	return &List{k: k, items: make([]Item, 0, k)}
}

// K returns the bound this list was created with.
func (l *List) K() int { return l.k }

// Len returns the number of items currently held (<= k).
func (l *List) Len() int { return len(l.items) }

// Full reports whether k items are held.
func (l *List) Full() bool { return len(l.items) == l.k }

// Bound returns the current k-th smallest distance, or +Inf-like behaviour:
// if fewer than k items are held it returns ok=false.
func (l *List) Bound() (float64, bool) {
	if len(l.items) < l.k {
		return 0, false
	}
	return l.items[0].Dist, true
}

// Accepts reports whether an item at distance d would enter the list.
func (l *List) Accepts(d float64) bool {
	if len(l.items) < l.k {
		return true
	}
	return d < l.items[0].Dist
}

// Push offers an item; it is kept only if it is among the k nearest so far.
// Returns true if the item was retained.
func (l *List) Push(id uint64, d float64) bool {
	if len(l.items) < l.k {
		l.items = append(l.items, Item{id, d})
		l.up(len(l.items) - 1)
		return true
	}
	if d >= l.items[0].Dist {
		return false
	}
	l.items[0] = Item{id, d}
	l.down(0)
	return true
}

// Items returns the retained items sorted by ascending distance
// (ties broken by ascending id, for determinism). The list is unchanged.
func (l *List) Items() []Item {
	out := make([]Item, len(l.items))
	copy(out, l.items)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// IDs returns just the ids, nearest first.
func (l *List) IDs() []uint64 {
	items := l.Items()
	ids := make([]uint64, len(items))
	for i, it := range items {
		ids[i] = it.ID
	}
	return ids
}

// Reset empties the list, keeping capacity.
func (l *List) Reset() { l.items = l.items[:0] }

func (l *List) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if l.items[p].Dist >= l.items[i].Dist {
			break
		}
		l.items[p], l.items[i] = l.items[i], l.items[p]
		i = p
	}
}

func (l *List) down(i int) {
	n := len(l.items)
	for {
		c := 2*i + 1
		if c >= n {
			return
		}
		if r := c + 1; r < n && l.items[r].Dist > l.items[c].Dist {
			c = r
		}
		if l.items[i].Dist >= l.items[c].Dist {
			return
		}
		l.items[i], l.items[c] = l.items[c], l.items[i]
		i = c
	}
}

// SelectK sorts items ascending by distance and returns the first k
// (or all, if fewer). It is the non-streaming counterpart of List, used
// by the filter cascade where the candidate set is already materialised.
func SelectK(items []Item, k int) []Item {
	sort.Slice(items, func(i, j int) bool {
		if items[i].Dist != items[j].Dist {
			return items[i].Dist < items[j].Dist
		}
		return items[i].ID < items[j].ID
	})
	if len(items) > k {
		items = items[:k]
	}
	return items
}
