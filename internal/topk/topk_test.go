package topk

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestPushKeepsKNearest(t *testing.T) {
	l := New(3)
	for i, d := range []float64{5, 1, 4, 2, 8, 0.5} {
		l.Push(uint64(i), d)
	}
	items := l.Items()
	if len(items) != 3 {
		t.Fatalf("len = %d, want 3", len(items))
	}
	want := []float64{0.5, 1, 2}
	for i, it := range items {
		if it.Dist != want[i] {
			t.Errorf("item %d dist = %v, want %v", i, it.Dist, want[i])
		}
	}
}

func TestBoundAndAccepts(t *testing.T) {
	l := New(2)
	if _, ok := l.Bound(); ok {
		t.Fatal("Bound ok on empty list")
	}
	if !l.Accepts(1e9) {
		t.Fatal("non-full list must accept anything")
	}
	l.Push(1, 3.0)
	l.Push(2, 1.0)
	b, ok := l.Bound()
	if !ok || b != 3.0 {
		t.Fatalf("Bound = %v,%v want 3,true", b, ok)
	}
	if l.Accepts(3.0) {
		t.Error("equal distance must not be accepted")
	}
	if !l.Accepts(2.9) {
		t.Error("smaller distance must be accepted")
	}
}

func TestTieBreakDeterminism(t *testing.T) {
	l := New(4)
	l.Push(9, 1)
	l.Push(3, 1)
	l.Push(7, 1)
	l.Push(1, 1)
	ids := l.IDs()
	want := []uint64{1, 3, 7, 9}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ids = %v, want %v", ids, want)
		}
	}
}

func TestReset(t *testing.T) {
	l := New(2)
	l.Push(1, 1)
	l.Reset()
	if l.Len() != 0 {
		t.Fatal("Reset did not empty the list")
	}
	l.Push(2, 5)
	if got := l.IDs(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("after reset got %v", got)
	}
}

func TestNewPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}

// Property: the heap agrees with sorting the full stream.
func TestQuickAgainstSort(t *testing.T) {
	f := func(seed int64, kRaw uint8, nRaw uint8) bool {
		k := int(kRaw%20) + 1
		n := int(nRaw)
		rng := rand.New(rand.NewSource(seed))
		l := New(k)
		all := make([]Item, 0, n)
		for i := 0; i < n; i++ {
			d := rng.Float64() * 100
			l.Push(uint64(i), d)
			all = append(all, Item{uint64(i), d})
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].Dist != all[j].Dist {
				return all[i].Dist < all[j].Dist
			}
			return all[i].ID < all[j].ID
		})
		if len(all) > k {
			all = all[:k]
		}
		got := l.Items()
		if len(got) != len(all) {
			return false
		}
		for i := range all {
			if got[i] != all[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSelectK(t *testing.T) {
	items := []Item{{1, 4}, {2, 1}, {3, 3}, {4, 1}}
	got := SelectK(items, 2)
	if len(got) != 2 || got[0].ID != 2 || got[1].ID != 4 {
		t.Fatalf("SelectK = %v", got)
	}
	// k larger than input returns everything, sorted.
	got = SelectK([]Item{{5, 2}, {6, 1}}, 10)
	if len(got) != 2 || got[0].ID != 6 {
		t.Fatalf("SelectK big-k = %v", got)
	}
}

func BenchmarkPush(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	l := New(100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Push(uint64(i), rng.Float64())
	}
}

// The retained set must be independent of push order, including under
// distance ties at the k boundary — the property that lets callers
// reorder candidate streams (page-ordered refinement) without changing
// the answer.
func TestRetainedSetIsPushOrderInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 100; trial++ {
		k := 1 + rng.Intn(6)
		n := k + rng.Intn(20)
		items := make([]Item, n)
		for i := range items {
			// Coarse distances force frequent ties.
			items[i] = Item{ID: uint64(i), Dist: float64(rng.Intn(4))}
		}
		forward := New(k)
		for _, it := range items {
			forward.Push(it.ID, it.Dist)
		}
		shuffled := New(k)
		perm := rng.Perm(n)
		for _, i := range perm {
			shuffled.Push(items[i].ID, items[i].Dist)
		}
		a, b := forward.Items(), shuffled.Items()
		if len(a) != len(b) {
			t.Fatalf("trial %d: lengths differ: %d vs %d", trial, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("trial %d: order-dependent retention: %v vs %v", trial, a, b)
			}
		}
	}
}

// ItemsInto must reuse dst and agree with Items.
func TestItemsInto(t *testing.T) {
	l := New(3)
	for i, d := range []float64{5, 1, 4, 2} {
		l.Push(uint64(i), d)
	}
	buf := make([]Item, 0, 8)
	got := l.ItemsInto(buf)
	want := l.Items()
	if len(got) != len(want) {
		t.Fatalf("ItemsInto len %d, Items len %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ItemsInto[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if &got[0] != &buf[:1][0] {
		t.Fatal("ItemsInto did not reuse dst's backing array")
	}
}
