package topk

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestPushKeepsKNearest(t *testing.T) {
	l := New(3)
	for i, d := range []float64{5, 1, 4, 2, 8, 0.5} {
		l.Push(uint64(i), d)
	}
	items := l.Items()
	if len(items) != 3 {
		t.Fatalf("len = %d, want 3", len(items))
	}
	want := []float64{0.5, 1, 2}
	for i, it := range items {
		if it.Dist != want[i] {
			t.Errorf("item %d dist = %v, want %v", i, it.Dist, want[i])
		}
	}
}

func TestBoundAndAccepts(t *testing.T) {
	l := New(2)
	if _, ok := l.Bound(); ok {
		t.Fatal("Bound ok on empty list")
	}
	if !l.Accepts(1e9) {
		t.Fatal("non-full list must accept anything")
	}
	l.Push(1, 3.0)
	l.Push(2, 1.0)
	b, ok := l.Bound()
	if !ok || b != 3.0 {
		t.Fatalf("Bound = %v,%v want 3,true", b, ok)
	}
	if l.Accepts(3.0) {
		t.Error("equal distance must not be accepted")
	}
	if !l.Accepts(2.9) {
		t.Error("smaller distance must be accepted")
	}
}

func TestTieBreakDeterminism(t *testing.T) {
	l := New(4)
	l.Push(9, 1)
	l.Push(3, 1)
	l.Push(7, 1)
	l.Push(1, 1)
	ids := l.IDs()
	want := []uint64{1, 3, 7, 9}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ids = %v, want %v", ids, want)
		}
	}
}

func TestReset(t *testing.T) {
	l := New(2)
	l.Push(1, 1)
	l.Reset()
	if l.Len() != 0 {
		t.Fatal("Reset did not empty the list")
	}
	l.Push(2, 5)
	if got := l.IDs(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("after reset got %v", got)
	}
}

func TestNewPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}

// Property: the heap agrees with sorting the full stream.
func TestQuickAgainstSort(t *testing.T) {
	f := func(seed int64, kRaw uint8, nRaw uint8) bool {
		k := int(kRaw%20) + 1
		n := int(nRaw)
		rng := rand.New(rand.NewSource(seed))
		l := New(k)
		all := make([]Item, 0, n)
		for i := 0; i < n; i++ {
			d := rng.Float64() * 100
			l.Push(uint64(i), d)
			all = append(all, Item{uint64(i), d})
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].Dist != all[j].Dist {
				return all[i].Dist < all[j].Dist
			}
			return all[i].ID < all[j].ID
		})
		if len(all) > k {
			all = all[:k]
		}
		got := l.Items()
		if len(got) != len(all) {
			return false
		}
		for i := range all {
			if got[i] != all[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSelectK(t *testing.T) {
	items := []Item{{1, 4}, {2, 1}, {3, 3}, {4, 1}}
	got := SelectK(items, 2)
	if len(got) != 2 || got[0].ID != 2 || got[1].ID != 4 {
		t.Fatalf("SelectK = %v", got)
	}
	// k larger than input returns everything, sorted.
	got = SelectK([]Item{{5, 2}, {6, 1}}, 10)
	if len(got) != 2 || got[0].ID != 6 {
		t.Fatalf("SelectK big-k = %v", got)
	}
}

func BenchmarkPush(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	l := New(100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Push(uint64(i), rng.Float64())
	}
}
