package core

import (
	"errors"
	"fmt"
	"time"
)

// Failure containment for the write path. Two independent failure
// domains, two distinct behaviours:
//
//   - WAL failure (fsync or append error): the durability contract is
//     broken, so the index flips to read-only — every further
//     Insert/Delete/Undelete fails fast with ErrWALUnavailable while
//     queries keep serving. Under the group-commit discipline
//     (WALSyncInterval == 0) an insert is acknowledged iff its record
//     is fsynced, so the memtable suffix past the last durable offset
//     was never acknowledged to anyone and is rolled back — the
//     in-memory state then matches exactly what a crash-restart replay
//     would rebuild.
//
//   - Compaction failure (tree rebuild I/O, vector-store append, meta
//     write): Compact commits all-or-nothing, so the old generation
//     keeps serving and the WAL + memtable still cover every
//     acknowledged write. The background compactor retries under a
//     circuit breaker with capped exponential backoff instead of
//     hammering a sick disk on every wake.

// ErrWALUnavailable reports a write rejected because the write-ahead
// log failed: the index is read-only until reopened. Callers (the
// facade, the HTTP layer) match it with errors.Is to map the failure
// to a 503 while continuing to serve reads.
var ErrWALUnavailable = errors.New("core: write-ahead log unavailable, index is read-only")

// Compaction-breaker backoff bounds. Vars, not consts, so chaos tests
// can shrink them to milliseconds.
var (
	compactBackoffBase = 250 * time.Millisecond
	compactBackoffMax  = 30 * time.Second
)

func walUnavailable(cause error) error {
	if cause == nil {
		return ErrWALUnavailable
	}
	return fmt.Errorf("%w: %w", ErrWALUnavailable, cause)
}

// noteWALFailure flips the index read-only. Takes ix.mu itself; returns
// the error callers should surface.
func (ix *Index) noteWALFailure(cause error) error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return ix.noteWALFailureLocked(cause)
}

// noteWALFailureLocked is noteWALFailure with ix.mu already held. The
// first failure wins: it records the cause and, under group commit,
// rolls back the never-acknowledged memtable suffix.
func (ix *Index) noteWALFailureLocked(cause error) error {
	if ix.walFailed {
		return walUnavailable(ix.walErr)
	}
	ix.walFailed = true
	ix.walErr = cause
	// Group commit acknowledges an insert only once its record is
	// fsynced, so entries past the durable offset were never promised to
	// any caller: drop them, restoring the exact state a crash-restart
	// replay would rebuild. Relaxed mode (SyncInterval > 0) acknowledges
	// ahead of the fsync — there nothing is provably unacknowledged, so
	// the memtable stays whole and the WAL tail at risk is the
	// documented power-loss window.
	if ix.params.WALSyncInterval == 0 && ix.wal != nil {
		durable := ix.wal.DurableOffset()
		keep := len(ix.mem)
		for keep > 0 && ix.memOff[keep-1] > durable {
			keep--
		}
		if keep < len(ix.mem) {
			ix.mem = ix.mem[:keep:keep]
			ix.memOff = ix.memOff[:keep:keep]
		}
	}
	return walUnavailable(cause)
}

// WALFailed reports whether the write-ahead log has failed and the
// index is read-only. Queries are unaffected; every write fails with
// ErrWALUnavailable.
func (ix *Index) WALFailed() bool {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.walFailed
}

// noteCompactFailure records one failed compaction and computes how
// long the breaker holds before the next attempt: exponential from
// compactBackoffBase, capped at compactBackoffMax. The delay is stored
// (compactRetryDelay) so the background loop can pick it up even when
// the failing attempt was a manual Compact call.
func (ix *Index) noteCompactFailure(err error) time.Duration {
	ix.mu.Lock()
	ix.compactConsecFails++
	ix.compactFailures++
	ix.breakerOpen = true
	ix.lastCompactErr = err.Error()
	shift := ix.compactConsecFails - 1
	if shift > 20 {
		shift = 20
	}
	d := compactBackoffBase << shift
	if d > compactBackoffMax || d <= 0 {
		d = compactBackoffMax
	}
	ix.compactBackoff = d
	ix.mu.Unlock()
	return d
}

// compactRetryDelay reports the breaker's current backoff (0 when
// closed).
func (ix *Index) compactRetryDelay() time.Duration {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if !ix.breakerOpen {
		return 0
	}
	return ix.compactBackoff
}

// noteCompactOK closes the breaker after a successful compaction.
func (ix *Index) noteCompactOK() {
	ix.mu.Lock()
	ix.compactConsecFails = 0
	ix.breakerOpen = false
	ix.mu.Unlock()
}
