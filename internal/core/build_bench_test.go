package core

import (
	"context"
	"math/rand"
	"path/filepath"
	"testing"

	"github.com/hd-index/hdindex/internal/pager"
	"github.com/hd-index/hdindex/internal/radix"
	"github.com/hd-index/hdindex/internal/rdbtree"
)

func benchVectors(n, dim int, seed int64) [][]float32 {
	rng := rand.New(rand.NewSource(seed))
	vs := make([][]float32, n)
	flat := make([]float32, n*dim)
	for i := range vs {
		vs[i] = flat[i*dim : (i+1)*dim]
		for d := range vs[i] {
			vs[i][d] = rng.Float32() * 255
		}
	}
	return vs
}

// BenchmarkBuild measures construction end to end and per phase; the
// sub-benchmarks isolate each stage of the pipeline the flat build path
// optimises, so a regression names its phase in the CI artifacts.
func BenchmarkBuild(b *testing.B) {
	const (
		n    = 2000
		dim  = 64
		tau  = 8
		eta  = dim / tau
		m    = 10
		om   = 8
		seed = 42
	)
	vectors := benchVectors(n, dim, seed)
	params := Params{Tau: tau, Omega: om, M: m, Seed: seed}

	b.Run("full", func(b *testing.B) {
		dir := b.TempDir()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ix, err := Build(filepath.Join(dir, "ix"), vectors, params)
			if err != nil {
				b.Fatal(err)
			}
			ix.Close()
		}
	})

	// Reference set for the phase benchmarks: built once, outside the
	// timed regions.
	refIx, err := Build(b.TempDir(), vectors, params)
	if err != nil {
		b.Fatal(err)
	}
	defer refIx.Close()
	refs := refIx.refs
	rdist, err := computeRefDists(context.Background(), vectors, refs, 1)
	if err != nil {
		b.Fatal(err)
	}
	q := refIx.quants[0]
	curve := refIx.curves[0]
	kl := curve.KeyLen()

	b.Run("refdists", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := computeRefDists(context.Background(), vectors, refs, 0); err != nil {
				b.Fatal(err)
			}
		}
	})

	encodeKeys := func(keys []byte, coords []uint32) {
		for lo := 0; lo < n; lo += encodeChunk {
			hi := lo + encodeChunk
			if hi > n {
				hi = n
			}
			for i := lo; i < hi; i++ {
				q.Coords(coords[(i-lo)*eta:(i-lo+1)*eta], vectors[i][:eta])
			}
			curve.EncodeAll(keys[lo*kl:hi*kl], coords[:(hi-lo)*eta], eta)
		}
	}

	b.Run("encode", func(b *testing.B) {
		keys := make([]byte, n*kl)
		coords := make([]uint32, encodeChunk*eta)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			encodeKeys(keys, coords)
		}
	})

	keys := make([]byte, n*kl)
	encodeKeys(keys, make([]uint32, encodeChunk*eta))

	b.Run("sort", func(b *testing.B) {
		perm := make([]uint32, n)
		scratch := make([]uint32, n)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := range perm {
				perm[j] = uint32(j)
			}
			radix.SortWithScratch(keys, kl, perm, scratch)
		}
	})

	perm := make([]uint32, n)
	for j := range perm {
		perm[j] = uint32(j)
	}
	radix.Sort(keys, kl, perm)

	b.Run("bulkload", func(b *testing.B) {
		dir := b.TempDir()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pgr, err := pager.Open(filepath.Join(dir, "t.pg"), pager.Options{Create: true, PageSize: 4096, PoolPages: 256})
			if err != nil {
				b.Fatal(err)
			}
			tree, err := rdbtree.Create(pgr, rdbtree.Config{Eta: eta, Omega: om, M: m})
			if err != nil {
				b.Fatal(err)
			}
			if err := tree.BulkLoadArena(keys, perm, nil, rdist); err != nil {
				b.Fatal(err)
			}
			if err := tree.Flush(); err != nil {
				b.Fatal(err)
			}
			pgr.Close()
		}
	})
}

// BenchmarkBuildSeedPath is the seed implementation of tree
// construction — per-record Encode allocations, Record structs, and a
// comparison sort — kept as the yardstick the flat arena path is
// measured against.
func BenchmarkBuildSeedPath(b *testing.B) {
	const (
		n   = 2000
		dim = 64
		tau = 8
		eta = dim / tau
		m   = 10
		om  = 8
	)
	vectors := benchVectors(n, dim, 42)
	refIx, err := Build(b.TempDir(), vectors, Params{Tau: tau, Omega: om, M: m, Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	defer refIx.Close()
	rdist, err := computeRefDists(context.Background(), vectors, refIx.refs, 1)
	if err != nil {
		b.Fatal(err)
	}
	q := refIx.quants[0]
	curve := refIx.curves[0]

	b.Run("encode+sort", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			records := make([]rdbtree.Record, n)
			coords := make([]uint32, eta)
			for id := 0; id < n; id++ {
				q.Coords(coords, vectors[id][:eta])
				records[id] = rdbtree.Record{
					Key:      curve.Encode(nil, coords),
					ID:       uint64(id),
					RefDists: rdist[id*m : (id+1)*m],
				}
			}
			sortRecords(records)
		}
	})
}
