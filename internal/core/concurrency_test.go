package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/hd-index/hdindex/internal/data"
)

// SearchBatch must return results in input order regardless of worker
// scheduling: batch results must equal per-query sequential results.
func TestSearchBatchPreservesOrder(t *testing.T) {
	p := Params{Tau: 4, Omega: 8, M: 4, Alpha: 128, Gamma: 32, BatchWorkers: 3, Seed: 1}
	ix, ds, _ := buildSmall(t, 1500, p)
	queries := ds.PerturbedQueries(50, 0.02, 2)

	want := make([][]Result, len(queries))
	for i, q := range queries {
		var err error
		want[i], err = ix.Search(q, 5)
		if err != nil {
			t.Fatal(err)
		}
	}
	got, err := ix.SearchBatch(queries, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("batch returned %d result sets, want %d", len(got), len(want))
	}
	for qi := range want {
		if len(got[qi]) != len(want[qi]) {
			t.Fatalf("query %d: %d results, want %d", qi, len(got[qi]), len(want[qi]))
		}
		for j := range want[qi] {
			if got[qi][j] != want[qi][j] {
				t.Fatalf("query %d rank %d: batch %+v != sequential %+v",
					qi, j, got[qi][j], want[qi][j])
			}
		}
	}
}

func TestSearchBatchWorkerBounds(t *testing.T) {
	for _, workers := range []int{1, 2, 16} {
		p := Params{Tau: 2, Omega: 8, M: 3, Alpha: 64, Gamma: 16, BatchWorkers: workers, Seed: 3}
		ix, ds, _ := buildSmall(t, 400, p)
		queries := ds.PerturbedQueries(9, 0.02, 4)
		res, err := ix.SearchBatch(queries, 3)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(res) != len(queries) {
			t.Fatalf("workers=%d: %d result sets", workers, len(res))
		}
	}
}

// Concurrent searches, inserts, and deletes must be race-clean (run
// under -race in CI) and never corrupt results.
func TestConcurrentSearchInsertDelete(t *testing.T) {
	p := Params{Tau: 2, Omega: 8, M: 3, Alpha: 64, Gamma: 16, Seed: 5}
	ix, ds, queries := buildSmall(t, 800, p)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errCh := make(chan error, 64)

	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				res, err := ix.Search(queries[(w+i)%len(queries)], 5)
				if err != nil {
					errCh <- err
					return
				}
				if len(res) == 0 {
					errCh <- errors.New("search returned no results")
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 30; i++ {
			if _, err := ix.Insert(ds.Vectors[i%len(ds.Vectors)]); err != nil {
				errCh <- err
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 30; i++ {
			id := uint64(i % 100)
			if err := ix.Delete(id); err != nil {
				errCh <- err
				return
			}
			if err := ix.Undelete(id); err != nil {
				errCh <- err
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			_ = ix.Count()
			_, _ = ix.SearchBatch(queries[:4], 3)
		}
	}()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	timer := time.NewTimer(2 * time.Second)
	defer timer.Stop()
	select {
	case <-timer.C:
	case <-done:
	}
	close(stop)
	<-done
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
}

// A search given an already-cancelled context must not do any work.
func TestSearchCancelledContext(t *testing.T) {
	p := Params{Tau: 2, Omega: 8, M: 3, Alpha: 64, Gamma: 16, Seed: 6}
	ix, _, queries := buildSmall(t, 400, p)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ix.SearchContext(ctx, queries[0], 5); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, _, err := ix.SearchWithStatsContext(ctx, queries[0], 5); !errors.Is(err, context.Canceled) {
		t.Fatalf("stats err = %v, want context.Canceled", err)
	}
}

// An in-flight search must abort promptly once its context is
// cancelled: with cancellation racing a stream of searches, cancelled
// calls return context.Canceled instead of running to completion.
func TestSearchAbortsOnCancel(t *testing.T) {
	// A deliberately heavy configuration so a single search has many
	// cancellation checkpoints to hit.
	ds := data.Generate(data.Config{N: 4000, Dim: 32, Clusters: 6, Lo: 0, Hi: 1, Seed: 7})
	p := Params{Tau: 4, Omega: 8, M: 8, Alpha: 1024, Gamma: 1024, Seed: 7}
	ix, err := Build(t.TempDir(), ds.Vectors, p)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	queries := ds.PerturbedQueries(4, 0.02, 8)

	var cancelled atomic.Int64
	for trial := 0; trial < 20 && cancelled.Load() == 0; trial++ {
		ctx, cancel := context.WithCancel(context.Background())
		go cancel() // race the cancel against the search
		for _, q := range queries {
			if _, err := ix.SearchContext(ctx, q, 10); errors.Is(err, context.Canceled) {
				cancelled.Add(1)
				break
			} else if err != nil {
				t.Fatal(err)
			}
		}
		cancel()
	}
	if cancelled.Load() == 0 {
		t.Fatal("no search observed the cancellation in 20 trials")
	}
}

// A deadline that has already passed must fail with DeadlineExceeded.
func TestSearchDeadlineExceeded(t *testing.T) {
	p := Params{Tau: 2, Omega: 8, M: 3, Alpha: 64, Gamma: 16, Seed: 9}
	ix, _, queries := buildSmall(t, 400, p)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := ix.SearchContext(ctx, queries[0], 5); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// SearchBatchContext must stop dispatching once cancelled and report
// ctx.Err().
func TestSearchBatchCancellation(t *testing.T) {
	p := Params{Tau: 2, Omega: 8, M: 3, Alpha: 64, Gamma: 16, BatchWorkers: 2, Seed: 10}
	ix, ds, _ := buildSmall(t, 400, p)
	queries := ds.PerturbedQueries(200, 0.02, 11)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ix.SearchBatchContext(ctx, queries, 3); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel2()
	start := time.Now()
	_, err := ix.SearchBatchContext(ctx2, queries, 3)
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancelled batch took %v to return", elapsed)
	}
	// The batch may have finished under the deadline on a fast machine;
	// only a non-context error is wrong.
	if err != nil && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
}
