package core

import (
	"testing"
)

// BenchmarkSearch measures the single-query hot path: per-op allocations
// here are what the sync.Pool scratch reuse is meant to cut.
func BenchmarkSearch(b *testing.B) {
	p := Params{Tau: 4, Omega: 8, M: 8, Alpha: 512, Gamma: 128, Seed: 1}
	ix, _, queries := buildSmall(b, 4000, p)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.Search(queries[i%len(queries)], 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearchParallelTrees is Search with the per-tree fan-out on.
func BenchmarkSearchParallelTrees(b *testing.B) {
	p := Params{Tau: 4, Omega: 8, M: 8, Alpha: 512, Gamma: 128, Parallel: true, Seed: 1}
	ix, _, queries := buildSmall(b, 4000, p)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.Search(queries[i%len(queries)], 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearchBatch measures the batch fan-out path under the worker
// pool.
func BenchmarkSearchBatch(b *testing.B) {
	p := Params{Tau: 4, Omega: 8, M: 8, Alpha: 512, Gamma: 128, Seed: 1}
	ix, ds, _ := buildSmall(b, 4000, p)
	queries := ds.PerturbedQueries(64, 0.01, 99)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.SearchBatch(queries, 10); err != nil {
			b.Fatal(err)
		}
	}
}
