package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"github.com/hd-index/hdindex/internal/pager"
	"github.com/hd-index/hdindex/internal/radix"
	"github.com/hd-index/hdindex/internal/rdbtree"
	"github.com/hd-index/hdindex/internal/vecmath"
	"github.com/hd-index/hdindex/internal/wal"
)

// The live-ingest layer (log-structured, §3.6 turned durable): an
// insert appends one record to the write-ahead log and lands in the
// in-memory memtable; the acknowledgement rides the WAL's group
// commit, never a tree or vector-store flush. Queries brute-force the
// memtable (it is small by construction — MemtableMaxVectors bounds
// it) and merge those exact hits into the tree candidates' refinement
// heap, so acknowledged writes are immediately visible. A background
// compactor drains the memtable into the RDB-trees through the same
// flat-arena bulk load the build uses, committing the new tree
// generation with one atomic meta.json replace and truncating the WAL
// to the surviving tail.

const walFile = "wal.log"

// defaultMemtableMaxVectors is the compaction threshold when the caller
// sets none: large enough to amortise a tree rebuild over thousands of
// inserts, small enough that the per-query memtable scan (one exact
// distance per entry, early-abandoning) stays well under a single
// tree's α leaf walk.
const defaultMemtableMaxVectors = 4096

// IngestStats is a point-in-time summary of the write path, surfaced
// through /stats as the "wal" block.
type IngestStats struct {
	// MemtableVectors is the current number of acknowledged inserts not
	// yet compacted into the trees — the staleness bound is
	// MemtableVectors ≤ max(MemtableMaxVectors, burst in flight).
	MemtableVectors int `json:"memtable_vectors"`
	// WALBytes / WALRecords describe the current log file.
	WALBytes   int64 `json:"wal_bytes"`
	WALRecords int64 `json:"wal_records"`
	// WALSyncs counts fsyncs since open; inserts/fsync is the group
	// commit's batching factor.
	WALSyncs int64 `json:"wal_syncs"`
	// Replayed is the number of WAL records replayed by Open — 0 after
	// a clean shutdown, >0 after crash recovery.
	Replayed int `json:"replayed"`
	// Compactions counts completed memtable merges since open.
	Compactions uint64 `json:"compactions"`
	// LastCompactionMS / LastCompactionVectors describe the most recent
	// merge: wall-clock cost and how many memtable vectors it drained.
	LastCompactionMS      float64 `json:"last_compaction_ms"`
	LastCompactionVectors int     `json:"last_compaction_vectors"`
	// WALFailed reports the read-only state: the write-ahead log failed
	// and every write is rejected with ErrWALUnavailable while reads
	// keep serving.
	WALFailed bool `json:"wal_failed,omitempty"`
	// CompactFailures counts failed background compactions since open;
	// CompactBreaker is "open" while the retry circuit breaker is
	// holding off (the old tree generation keeps serving), "closed"
	// otherwise. LastCompactError is the most recent failure's message.
	CompactFailures  uint64 `json:"compact_failures,omitempty"`
	CompactBreaker   string `json:"compact_breaker,omitempty"`
	LastCompactError string `json:"last_compact_error,omitempty"`
}

// Add accumulates other into s (the sharded layout sums its shards;
// LastCompactionMS keeps the max, one slowest-merge figure).
func (s *IngestStats) Add(other IngestStats) {
	s.MemtableVectors += other.MemtableVectors
	s.WALBytes += other.WALBytes
	s.WALRecords += other.WALRecords
	s.WALSyncs += other.WALSyncs
	s.Replayed += other.Replayed
	s.Compactions += other.Compactions
	if other.LastCompactionMS > s.LastCompactionMS {
		s.LastCompactionMS = other.LastCompactionMS
	}
	s.LastCompactionVectors += other.LastCompactionVectors
	s.WALFailed = s.WALFailed || other.WALFailed
	s.CompactFailures += other.CompactFailures
	if other.CompactBreaker == "open" || s.CompactBreaker == "" {
		s.CompactBreaker = other.CompactBreaker
	}
	if s.LastCompactError == "" {
		s.LastCompactError = other.LastCompactError
	}
}

// IngestStats returns the write-path summary.
func (ix *Index) IngestStats() IngestStats {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	st := IngestStats{
		MemtableVectors:       len(ix.mem),
		Replayed:              ix.replayed,
		Compactions:           ix.compactions,
		LastCompactionMS:      ix.lastCompactMS,
		LastCompactionVectors: ix.lastCompactN,
		WALFailed:             ix.walFailed,
		CompactFailures:       ix.compactFailures,
		CompactBreaker:        "closed",
		LastCompactError:      ix.lastCompactErr,
	}
	if ix.breakerOpen {
		st.CompactBreaker = "open"
	}
	if ix.wal != nil {
		ws := ix.wal.Stats()
		st.WALBytes = ws.Bytes
		st.WALRecords = ws.Records
		st.WALSyncs = ws.Syncs
	}
	return st
}

// memtableMax resolves the compaction threshold.
func (ix *Index) memtableMax() int {
	if ix.params.MemtableMaxVectors > 0 {
		return ix.params.MemtableMaxVectors
	}
	return defaultMemtableMaxVectors
}

// Insert adds one vector: WAL append under the index lock (so log
// order matches id order), memtable append, then the group-commit wait
// outside the lock. The id is durable and searchable when Insert
// returns; no tree page or vector-store write happens on this path.
func (ix *Index) Insert(vec []float32) (uint64, error) {
	if len(vec) != ix.nu {
		return 0, fmt.Errorf("%w: vector has %d dims, index has %d", ErrDimMismatch, len(vec), ix.nu)
	}
	var telStart time.Time
	if ix.tel.Enabled() {
		telStart = time.Now()
	}
	cp := vecmath.Copy(vec)
	ix.mu.Lock()
	if ix.wal == nil {
		ix.mu.Unlock()
		return 0, errors.New("core: index is closed")
	}
	if ix.walFailed {
		err := walUnavailable(ix.walErr)
		ix.mu.Unlock()
		return 0, err
	}
	id := ix.vectors.Count() + uint64(len(ix.mem))
	off, err := ix.wal.AppendNoSync(wal.Record{Op: wal.OpInsert, ID: id, Vec: cp})
	if err != nil {
		if errors.Is(err, wal.ErrClosed) {
			ix.mu.Unlock()
			return 0, err
		}
		// The append poisoned the log (a torn page-cache write): flip
		// read-only before unlocking so no later writer races past.
		err = ix.noteWALFailureLocked(err)
		ix.mu.Unlock()
		return 0, err
	}
	ix.mem = append(ix.mem, cp)
	ix.memOff = append(ix.memOff, off)
	memLen := len(ix.mem)
	ix.mu.Unlock()
	if err := ix.wal.WaitDurable(off); err != nil {
		if errors.Is(err, wal.ErrClosed) {
			return 0, err
		}
		// The fsync failed: this insert was never durable, so it is
		// rolled back with the rest of the non-durable suffix and the
		// index flips read-only.
		return 0, ix.noteWALFailure(err)
	}
	if !telStart.IsZero() {
		ix.tel.ObserveInsert(time.Since(telStart))
	}
	if memLen >= ix.memtableMax() {
		ix.wakeCompactor()
	}
	return id, nil
}

// insertDirect is the pre-WAL insert path — vector-store append plus
// one in-place tree insert per partition — kept for the equivalence
// tests, which pin the ingest pipeline (Insert + Compact) against it.
// It bypasses the WAL and the memtable entirely, so it must only run
// on an index with an empty memtable and requires an explicit Flush
// for durability, exactly like the old API.
func (ix *Index) insertDirect(vec []float32) (uint64, error) {
	if len(vec) != ix.nu {
		return 0, fmt.Errorf("%w: vector has %d dims, index has %d", ErrDimMismatch, len(vec), ix.nu)
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if len(ix.mem) > 0 {
		return 0, errors.New("core: insertDirect with non-empty memtable")
	}
	id, err := ix.vectors.Append(vec)
	if err != nil {
		return 0, err
	}
	rd := make([]float32, ix.params.M)
	for r, rv := range ix.refs {
		rd[r] = float32(vecmath.Dist(vec, rv))
	}
	coords := make([]uint32, ix.eta)
	for t := 0; t < ix.params.Tau; t++ {
		start := t * ix.eta
		ix.quants[t].Coords(coords, vec[start:start+ix.eta])
		key := ix.curves[t].Encode(nil, coords)
		if err := ix.trees[t].Insert(key, id, rd); err != nil {
			return 0, err
		}
	}
	return id, nil
}

// replayRecord rebuilds the in-memory ingest state from one WAL record
// during Open. Insert records below the committed count were already
// compacted (the crash hit between the meta commit and the WAL
// truncation) and replay idempotently skips them.
func (ix *Index) replayRecord(r wal.Record) error {
	switch r.Op {
	case wal.OpInsert:
		committed := ix.vectors.Count()
		if r.ID < committed {
			return nil
		}
		if next := committed + uint64(len(ix.mem)); r.ID != next {
			return fmt.Errorf("core: wal replay: insert id %d, expected %d", r.ID, next)
		}
		if len(r.Vec) != ix.nu {
			return fmt.Errorf("core: wal replay: insert id %d has %d dims, index has %d", r.ID, len(r.Vec), ix.nu)
		}
		ix.mem = append(ix.mem, r.Vec)
		// Replayed entries came off disk, so they are durable by
		// definition; offset 0 is never past the durable watermark and
		// the WAL-failure rollback leaves them alone.
		ix.memOff = append(ix.memOff, 0)
	case wal.OpDelete:
		if r.ID < ix.vectors.Count()+uint64(len(ix.mem)) {
			ix.deleted.mark(r.ID)
		}
	case wal.OpUndelete:
		ix.deleted.unmark(r.ID)
	default:
		return fmt.Errorf("core: wal replay: unknown op %d", r.Op)
	}
	ix.replayed++
	return nil
}

// startCompactor launches the background merge goroutine. It wakes on
// demand (Insert crossing the memtable threshold) and, when
// MemtableMaxAge is set, on that cadence — the age bound turns "fewer
// than MemtableMaxVectors inserts then silence" into bounded staleness
// for the trees themselves (queries see memtable entries either way).
func (ix *Index) startCompactor() {
	ctx, cancel := context.WithCancel(context.Background())
	ix.compactCancel = cancel
	ix.compactDone = make(chan struct{})
	ix.compactWake = make(chan struct{}, 1)
	maxAge := ix.params.MemtableMaxAge
	go func() {
		defer close(ix.compactDone)
		var tickC <-chan time.Time
		if maxAge > 0 {
			t := time.NewTicker(maxAge)
			defer t.Stop()
			tickC = t.C
		}
		// Circuit breaker: after a failed merge the loop backs off
		// exponentially (capped) instead of re-hitting a sick disk on
		// every insert-driven wake. Compact commits all or nothing, so
		// the WAL + memtable keep covering every acknowledged write and
		// the old tree generation keeps serving while the breaker holds.
		var nextRetry time.Time
		var retryC <-chan time.Time
		for {
			select {
			case <-ctx.Done():
				return
			case <-ix.compactWake:
			case <-tickC:
			case <-retryC:
			}
			if ctx.Err() != nil {
				return
			}
			if !nextRetry.IsZero() {
				// Breaker open: ignore wakes until the retry timer —
				// unless a manual Compact (the half-open probe) already
				// closed it, in which case resume immediately.
				if ix.compactRetryDelay() > 0 && time.Now().Before(nextRetry) {
					continue
				}
				nextRetry, retryC = time.Time{}, nil
			}
			// Compact keeps the breaker books itself (it is also the
			// manual half-open probe); the loop only schedules retries.
			if err := ix.Compact(ctx); err != nil {
				if d := ix.compactRetryDelay(); d > 0 {
					nextRetry = time.Now().Add(d)
					retryC = time.After(d)
				}
			}
		}
	}()
}

func (ix *Index) wakeCompactor() {
	if ix.compactWake == nil {
		return
	}
	select {
	case ix.compactWake <- struct{}{}:
	default:
	}
}

// stopCompactor cancels the background merge and waits it out. Safe to
// call repeatedly and on an index whose compactor never started.
func (ix *Index) stopCompactor() {
	if ix.compactCancel == nil {
		return
	}
	ix.compactCancel()
	<-ix.compactDone
	ix.compactCancel = nil
}

func (ix *Index) treeGenPath(t int, gen uint64) string {
	if gen == 0 {
		return ix.treePath(t)
	}
	return filepath.Join(ix.dir, fmt.Sprintf("tree_%02d.g%d.pg", t, gen))
}

// Compact drains the current memtable into the RDB-trees: reference
// distances and Hilbert keys for the batch, a merge of each tree's
// existing entries with the radix-sorted batch into a fresh
// tree-generation file via the flat-arena bulk load, then one commit
// section under the index write lock — vector-store append (data
// fsynced before its count header), atomic meta.json replace carrying
// the new generation and count (THE commit point), tree swap, delete-
// mark reclamation, WAL truncation to the surviving tail. A crash on
// either side of the meta replace recovers cleanly: before it, the old
// generation plus a full WAL replay; after it, the new generation with
// replay skipping the already-committed prefix.
//
// Entries whose id carries a deletion mark are dropped from the
// rebuilt trees and their marks move to the purged set (§3.6's marks,
// physically reclaimed). Compact is a no-op on an empty memtable and
// serialises against itself, so the background compactor and manual
// calls can overlap freely.
//
// Compact also keeps the circuit-breaker books: a compaction-domain
// failure opens the breaker (noteCompactFailure), a successful drain
// closes it. Manual calls therefore double as the breaker's half-open
// probe — an operator-triggered Compact that succeeds resumes normal
// background cadence immediately.
func (ix *Index) Compact(ctx context.Context) error {
	did, err := ix.compact(ctx)
	switch {
	case err == nil:
		if did {
			ix.noteCompactOK()
		}
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// External cancel (shutdown), not a sick disk: breaker unchanged.
	case errors.Is(err, wal.ErrClosed), errors.Is(err, ErrWALUnavailable):
		// WAL failure domain: noteWALFailure already flipped read-only;
		// opening the compaction breaker too would misreport the cause.
	default:
		ix.noteCompactFailure(err)
	}
	return err
}

// compact is Compact's body; the bool reports whether a batch was
// actually drained (false for the empty-memtable no-op, so a vacuous
// success cannot close an open breaker).
func (ix *Index) compact(ctx context.Context) (bool, error) {
	ix.compactMu.Lock()
	defer ix.compactMu.Unlock()
	start := time.Now()

	// Snapshot the batch: the memtable is append-only between
	// compactions and vector slices are immutable after insert, so a
	// prefix copy of the slice headers is a consistent snapshot.
	ix.mu.RLock()
	n := len(ix.mem)
	if n == 0 || ix.vectors == nil || ix.wal == nil {
		ix.mu.RUnlock()
		return false, nil
	}
	if ix.walFailed {
		err := walUnavailable(ix.walErr)
		ix.mu.RUnlock()
		return true, err
	}
	batch := make([][]float32, n)
	copy(batch, ix.mem[:n])
	oldCount := ix.vectors.Count()
	oldGen := ix.gen
	ix.mu.RUnlock()

	// The batch must be durable before the commit makes it part of the
	// committed index state: under relaxed durability (SyncInterval > 0)
	// acknowledgements outrun the fsync cadence, and committing a
	// non-durable insert then truncating its WAL record would turn a
	// crash into lost acknowledged data. Group commit makes this a no-op
	// (everything snapshotted is fsynced already).
	if err := ix.wal.Sync(); err != nil {
		if errors.Is(err, wal.ErrClosed) {
			return true, err
		}
		return true, ix.noteWALFailure(err)
	}

	workers := ix.params.BuildWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	rdist, err := computeRefDists(ctx, batch, ix.refs, workers)
	if err != nil {
		return true, err
	}

	// Marks to reclaim: every marked id the rebuilt trees would cover.
	// Marks set after this snapshot keep their WAL records or land in
	// the deleted.bin written below, so nothing acknowledged is lost.
	drop := ix.deleted.marksBelow(oldCount + uint64(n))

	newGen := oldGen + 1
	p := ix.params
	newTrees := make([]*rdbtree.Tree, p.Tau)
	newPagers := make([]*pager.Pager, p.Tau)
	abort := func() {
		for t, pgr := range newPagers {
			if pgr != nil {
				pgr.Close()
				os.Remove(ix.treeGenPath(t, newGen))
			}
		}
	}
	for t := 0; t < p.Tau; t++ {
		if err := ctx.Err(); err != nil {
			abort()
			return true, err
		}
		tree, pgr, err := ix.compactTree(ctx, t, batch, rdist, oldCount, newGen, drop)
		if err != nil {
			abort()
			return true, err
		}
		newTrees[t], newPagers[t] = tree, pgr
	}

	// ---- commit ----
	ix.mu.Lock()
	if err := ix.vectors.AppendAll(batch); err != nil {
		ix.mu.Unlock()
		abort()
		return true, err
	}
	ix.gen = newGen
	if err := ix.writeMeta(); err != nil {
		// Roll the staged state back so the in-process index stays
		// consistent; the next Open reconciles the disk (the vector
		// store's advanced count exceeds the still-old meta count and is
		// rewound, with the WAL re-covering the batch).
		ix.gen = oldGen
		_ = ix.vectors.ResetCount(oldCount)
		ix.mu.Unlock()
		abort()
		return true, err
	}
	oldPagers := ix.treePagers
	ix.trees, ix.treePagers = newTrees, newPagers
	// Reclaim the delete marks the rebuild dropped, and persist the
	// mark file before the WAL truncation drops its delete records — a
	// crash between the two replays the records onto the saved marks,
	// which is idempotent.
	ix.deleted.purge(drop)
	if err := ix.saveDeleteSet(); err != nil {
		ix.mu.Unlock()
		for _, pgr := range oldPagers {
			if pgr != nil {
				pgr.Close()
			}
		}
		return true, err
	}
	rest := make([][]float32, len(ix.mem)-n)
	copy(rest, ix.mem[n:])
	restOff := make([]int64, len(ix.memOff)-n)
	copy(restOff, ix.memOff[n:])
	ix.mem, ix.memOff = rest, restOff
	newCount := ix.vectors.Count()
	tail := make([]wal.Record, len(rest))
	for i, v := range rest {
		tail[i] = wal.Record{Op: wal.OpInsert, ID: newCount + uint64(i), Vec: v}
	}
	walErr := ix.wal.RewriteWith(tail)
	ix.compactions++
	ix.lastCompactMS = msSince(start)
	ix.lastCompactN = n
	ix.mu.Unlock()
	ix.tel.ObserveCompaction(time.Since(start))

	for t, pgr := range oldPagers {
		if pgr != nil {
			pgr.Close()
		}
		os.Remove(ix.treeGenPath(t, oldGen))
	}
	if walErr != nil && !errors.Is(walErr, wal.ErrClosed) {
		// The commit itself is durable (meta.json landed); what failed is
		// the WAL truncation. A transient failure (the temp file could
		// not be created) leaves the log healthy — replay idempotently
		// skips the committed prefix, so the only cost is a longer log
		// and the breaker retries. A poisoned log (fsync failed) breaks
		// the durability contract for FUTURE writes: flip read-only.
		if ix.wal.Err() != nil {
			return true, ix.noteWALFailure(walErr)
		}
	}
	return true, walErr
}

// compactTree builds tree t's next generation: the existing entries
// (already in key order, minus the dropped ids) merged with the
// radix-sorted batch, streamed through the flat-arena bulk load. Ties
// keep old-before-new order, which equals id order because batch ids
// are always larger than committed ids.
func (ix *Index) compactTree(ctx context.Context, t int, batch [][]float32, rdistB []float32, oldCount, newGen uint64, drop map[uint64]struct{}) (*rdbtree.Tree, *pager.Pager, error) {
	p := ix.params
	curve := ix.curves[t]
	kl := curve.KeyLen()
	m := p.M
	nB := len(batch)
	startDim := t * ix.eta

	// Encode + sort the batch for this partition.
	keysB := make([]byte, nB*kl)
	coords := make([]uint32, nB*ix.eta)
	for i, v := range batch {
		ix.quants[t].Coords(coords[i*ix.eta:(i+1)*ix.eta], v[startDim:startDim+ix.eta])
	}
	curve.EncodeAll(keysB, coords, ix.eta)
	permB := make([]uint32, nB)
	for i := range permB {
		permB[i] = uint32(i)
	}
	radix.Sort(keysB, kl, permB)

	// Merge into flat arenas. Reading the old tree without the index
	// lock is safe: only compaction replaces trees, and Compact
	// serialises against itself via compactMu.
	oldN := int(ix.trees[t].Count())
	capN := oldN + nB
	keys := make([]byte, 0, capN*kl)
	ids := make([]uint64, 0, capN)
	rd := make([]float32, 0, capN*m)
	j := 0
	emitBatchBelow := func(bound []byte) {
		for j < nB {
			row := int(permB[j])
			bk := keysB[row*kl : (row+1)*kl]
			if bound != nil && bytes.Compare(bk, bound) >= 0 {
				return
			}
			j++
			id := oldCount + uint64(row)
			if _, dead := drop[id]; dead {
				continue
			}
			keys = append(keys, bk...)
			ids = append(ids, id)
			rd = append(rd, rdistB[row*m:(row+1)*m]...)
		}
	}
	scanned := 0
	var scanErr error
	err := ix.trees[t].ScanAll(func(k []byte, e rdbtree.Entry) bool {
		if scanned%4096 == 0 && ctx.Err() != nil {
			scanErr = ctx.Err()
			return false
		}
		scanned++
		emitBatchBelow(k)
		if _, dead := drop[e.ID]; !dead {
			keys = append(keys, k...)
			ids = append(ids, e.ID)
			rd = append(rd, e.RefDists...) // RefDists alias a scratch; append copies
		}
		return true
	})
	if err == nil {
		err = scanErr
	}
	if err != nil {
		return nil, nil, err
	}
	emitBatchBelow(nil)

	pgr, err := pager.Open(ix.treeGenPath(t, newGen), pager.Options{
		Create: true, PageSize: p.PageSize, PoolPages: p.PoolPages, DisableLRU: p.DisableCache,
	})
	if err != nil {
		return nil, nil, err
	}
	tree, err := rdbtree.Create(pgr, rdbtree.Config{Eta: ix.eta, Omega: p.Omega, M: p.M})
	if err != nil {
		pgr.Close()
		return nil, nil, err
	}
	perm := make([]uint32, len(ids))
	for i := range perm {
		perm[i] = uint32(i)
	}
	if err := tree.BulkLoadArena(keys, perm, ids, rd); err != nil {
		pgr.Close()
		return nil, nil, err
	}
	// Fully durable before the commit point references this generation.
	if err := tree.Flush(); err != nil {
		pgr.Close()
		return nil, nil, err
	}
	if err := pgr.Sync(); err != nil {
		pgr.Close()
		return nil, nil, err
	}
	return tree, pgr, nil
}
