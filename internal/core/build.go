package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hd-index/hdindex/internal/pager"
	"github.com/hd-index/hdindex/internal/radix"
	"github.com/hd-index/hdindex/internal/rdbtree"
	"github.com/hd-index/hdindex/internal/refsel"
	"github.com/hd-index/hdindex/internal/telemetry"
	"github.com/hd-index/hdindex/internal/vecmath"
	"github.com/hd-index/hdindex/internal/vecstore"
	"github.com/hd-index/hdindex/internal/wal"
)

// BuildStats records what one Build spent and where. The four phase
// timers cover the construction pipeline of Algorithm 1; Encode, Sort
// and BulkLoad are summed across the τ trees, so with Tau trees
// building concurrently they can exceed wall-clock time — TotalMS is
// the wall-clock figure. Allocs and PeakHeapBytes come from
// runtime.MemStats deltas sampled at phase boundaries, so PeakHeapBytes
// is a lower bound on the true peak.
type BuildStats struct {
	RefDistsMS float64 `json:"refdists_ms"`
	EncodeMS   float64 `json:"encode_ms"`
	SortMS     float64 `json:"sort_ms"`
	BulkLoadMS float64 `json:"bulkload_ms"`
	TotalMS    float64 `json:"total_ms"`
	// Allocs is the number of heap allocations the build performed
	// (runtime.MemStats.Mallocs delta; includes allocations by
	// concurrent goroutines of the same process).
	Allocs uint64 `json:"allocs"`
	// PeakHeapBytes is the largest HeapAlloc observed at a phase
	// boundary during the build.
	PeakHeapBytes uint64 `json:"peak_heap_bytes"`
}

// Add accumulates other's phase and total times into s and takes the
// max of the peaks. Allocs is deliberately NOT summed: each build's
// Allocs is a process-wide runtime.MemStats delta over its own window,
// so summing overlapping windows (concurrent shard builds) would count
// every allocation once per concurrent builder — the sharded layout
// measures one window around the whole fan-out instead (MemProbe).
func (s *BuildStats) Add(other BuildStats) {
	s.RefDistsMS += other.RefDistsMS
	s.EncodeMS += other.EncodeMS
	s.SortMS += other.SortMS
	s.BulkLoadMS += other.BulkLoadMS
	s.TotalMS += other.TotalMS
	if other.PeakHeapBytes > s.PeakHeapBytes {
		s.PeakHeapBytes = other.PeakHeapBytes
	}
}

// phaseAccum sums per-tree phase durations without locks; trees build
// concurrently.
type phaseAccum struct {
	encodeNS, sortNS, bulkNS atomic.Int64
}

// MemProbe measures process-wide allocation counters across a window:
// Sample records the start on first call and tracks the peak heap seen,
// Finish returns the Mallocs delta and the peak. Because the counters
// are process-wide, windows must not be summed when they can overlap —
// the sharded build opens ONE probe around its whole shard fan-out for
// exactly that reason.
type MemProbe struct {
	started      bool
	startMallocs uint64
	peakHeap     uint64
}

// Sample records the window start on first call and updates the
// observed peak heap on every call.
func (m *MemProbe) Sample() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if !m.started {
		m.started = true
		m.startMallocs = ms.Mallocs
	}
	if ms.HeapAlloc > m.peakHeap {
		m.peakHeap = ms.HeapAlloc
	}
}

// Finish closes the window and returns the allocation count and the
// largest HeapAlloc observed at any Sample or Finish call.
func (m *MemProbe) Finish() (allocs, peak uint64) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > m.peakHeap {
		m.peakHeap = ms.HeapAlloc
	}
	return ms.Mallocs - m.startMallocs, m.peakHeap
}

// Build constructs an HD-Index over vectors in directory dir
// (Algorithm 1). The directory is created; existing index files in it
// are overwritten.
func Build(dir string, vectors [][]float32, p Params) (*Index, error) {
	return BuildContext(context.Background(), dir, vectors, p)
}

// BuildContext is Build honouring ctx: construction checks for
// cancellation between work chunks and returns ctx's error promptly. A
// cancelled build leaves no meta.json (the layout's commit point), so
// Open rejects the directory instead of serving a half-built index.
func BuildContext(ctx context.Context, dir string, vectors [][]float32, p Params) (*Index, error) {
	if len(vectors) == 0 {
		return nil, errors.New("core: empty dataset")
	}
	nu := len(vectors[0])
	p.SetDefaults(nu, len(vectors))
	if err := p.Validate(nu); err != nil {
		return nil, err
	}
	if p.M > len(vectors) {
		return nil, fmt.Errorf("core: m = %d exceeds dataset size %d", p.M, len(vectors))
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("core: mkdir %s: %w", dir, err)
	}
	if err := RemoveIndexFiles(dir); err != nil {
		return nil, err
	}

	buildStart := time.Now()
	var probe MemProbe
	probe.Sample()

	rng := rand.New(rand.NewSource(p.Seed))

	// Algorithm 1 line 1: choose reference objects.
	var sel *refsel.Result
	var err error
	switch p.RefSelection {
	case RefRandom:
		sel, err = refsel.Random(vectors, p.M, rng)
	case RefSSSDyn:
		sel, err = refsel.SSSDyn(vectors, p.M, p.SSSFraction, 64, rng)
	default:
		sel, err = refsel.SSS(vectors, p.M, p.SSSFraction, rng)
	}
	if err != nil {
		return nil, err
	}
	refs := make([][]float32, p.M)
	for i, v := range sel.Vectors {
		refs[i] = vecmath.Copy(v)
	}

	// The build-parallelism budget: every concurrently running worker —
	// across trees and the chunked phases inside each — holds one slot,
	// so τ × chunk workers never oversubscribe the configured bound.
	budget := p.BuildWorkers
	if budget <= 0 {
		budget = runtime.GOMAXPROCS(0)
	}

	// Algorithm 1 line 2: distances of every object to every reference,
	// written into one flat n×m matrix (row i at rdist[i*m:(i+1)*m]) —
	// a single allocation the trees' bulk loads later stream from
	// directly.
	t0 := time.Now()
	rdist, err := computeRefDists(ctx, vectors, refs, budget)
	if err != nil {
		return nil, err
	}
	var stats BuildStats
	stats.RefDistsMS = msSince(t0)
	probe.Sample()

	lo, hi := vecmath.MinMax(vectors, nu)

	ix := &Index{
		dir:     dir,
		params:  p,
		nu:      nu,
		eta:     nu / p.Tau,
		refs:    refs,
		lo:      lo,
		hi:      hi,
		deleted: newDeleteSet(),
	}
	ix.refCross = crossDistances(refs)
	if !p.DisableTelemetry {
		ix.tel = telemetry.NewCollector()
	}
	if err := ix.initCurves(); err != nil {
		return nil, err
	}

	// Algorithm 1 lines 5-10: one RDB-tree per partition. Trees share
	// the budget semaphore with their own encode workers: a tree
	// goroutine holds one slot for its serial phases (sort, bulk load)
	// and lends the spare slots to whichever tree is in its encode
	// phase.
	var phases phaseAccum
	ix.trees = make([]*rdbtree.Tree, p.Tau)
	ix.treePagers = make([]*pager.Pager, p.Tau)
	errs := make([]error, p.Tau)
	sem := make(chan struct{}, budget)
	var wg sync.WaitGroup
	for t := 0; t < p.Tau; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			errs[t] = ix.buildTree(ctx, t, vectors, rdist, sem, &phases)
		}(t)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			ix.Close()
			return nil, e
		}
	}
	stats.EncodeMS = msOf(phases.encodeNS.Load())
	stats.SortMS = msOf(phases.sortNS.Load())
	stats.BulkLoadMS = msOf(phases.bulkNS.Load())
	probe.Sample()

	if err := ctx.Err(); err != nil {
		ix.Close()
		return nil, err
	}

	// The pointer target: raw vectors in a paged store.
	vp, err := pager.Open(filepath.Join(dir, "vectors.pg"), pager.Options{
		Create: true, PageSize: p.PageSize, PoolPages: p.PoolPages, DisableLRU: p.DisableCache,
	})
	if err != nil {
		ix.Close()
		return nil, err
	}
	vs, err := vecstore.Create(vp, nu)
	if err != nil {
		vp.Close()
		ix.Close()
		return nil, err
	}
	if err := vs.BuildFrom(vectors); err != nil {
		vp.Close()
		ix.Close()
		return nil, err
	}
	if err := vs.Flush(); err != nil {
		vp.Close()
		ix.Close()
		return nil, err
	}
	ix.vectors = vs
	ix.vecPager = vp

	if err := ix.writeMeta(); err != nil {
		ix.Close()
		return nil, err
	}
	// The meta commit makes the build generation-0-complete; the fresh
	// (empty) WAL and its compactor make the index live for ingest.
	w, err := wal.Open(filepath.Join(dir, walFile), ix.walOptions(), nil)
	if err != nil {
		ix.Close()
		return nil, err
	}
	ix.wal = w
	ix.startCompactor()
	stats.TotalMS = msSince(buildStart)
	stats.Allocs, stats.PeakHeapBytes = probe.Finish()
	ix.buildStats = &stats
	return ix, nil
}

// encodeChunk is how many vectors one encode work unit covers: large
// enough that chunk hand-off (one atomic add) is noise, small enough
// that τ=8 trees over a 10k-vector partition still split into enough
// chunks to occupy spare workers.
const encodeChunk = 512

// buildTree constructs RDB-tree t: Hilbert keys for partition t encoded
// into a flat n×KeyLen arena by chunked workers drawn from the shared
// budget, a radix-sorted []uint32 permutation over the arena, and an
// arena bulk load — no per-record allocation anywhere on the path.
func (ix *Index) buildTree(ctx context.Context, t int, vectors [][]float32, rdist []float32, sem chan struct{}, phases *phaseAccum) error {
	p := ix.params
	q := ix.quants[t]
	curve := ix.curves[t]
	start := t * ix.eta
	n := len(vectors)
	kl := curve.KeyLen()

	// ---- encode phase ----
	t0 := time.Now()
	keys := make([]byte, n*kl)
	nChunks := (n + encodeChunk - 1) / encodeChunk
	var next atomic.Int64
	worker := func() {
		coords := make([]uint32, encodeChunk*ix.eta)
		for {
			ci := int(next.Add(1) - 1)
			if ci >= nChunks || ctx.Err() != nil {
				return
			}
			lo := ci * encodeChunk
			hi := lo + encodeChunk
			if hi > n {
				hi = n
			}
			rows := hi - lo
			for i := lo; i < hi; i++ {
				q.Coords(coords[(i-lo)*ix.eta:(i-lo+1)*ix.eta], vectors[i][start:start+ix.eta])
			}
			curve.EncodeAll(keys[lo*kl:hi*kl], coords[:rows*ix.eta], ix.eta)
		}
	}
	// The tree goroutine always encodes (it already holds a budget
	// slot); spare slots are borrowed opportunistically for extra
	// workers, so encoding parallelises inside a single tree whenever
	// τ < budget without ever oversubscribing. Keys land at fixed
	// offsets, so worker count and scheduling cannot change the output.
	var wg sync.WaitGroup
acquire:
	for i := 1; i < nChunks; i++ {
		select {
		case sem <- struct{}{}:
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				worker()
			}()
		default:
			break acquire
		}
	}
	worker()
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	phases.encodeNS.Add(int64(time.Since(t0)))

	// ---- sort phase ----
	// A stable MSD radix sort over the fixed-width keys moves 4-byte
	// row numbers instead of 40-byte records and never calls a
	// comparator; ties keep id order, which the determinism tests pin.
	t0 = time.Now()
	perm := make([]uint32, n)
	for i := range perm {
		perm[i] = uint32(i)
	}
	radix.Sort(keys, kl, perm)
	phases.sortNS.Add(int64(time.Since(t0)))
	if err := ctx.Err(); err != nil {
		return err
	}

	// ---- bulk-load phase ----
	t0 = time.Now()
	pgr, err := pager.Open(ix.treePath(t), pager.Options{
		Create: true, PageSize: p.PageSize, PoolPages: p.PoolPages, DisableLRU: p.DisableCache,
	})
	if err != nil {
		return err
	}
	tree, err := rdbtree.Create(pgr, rdbtree.Config{Eta: ix.eta, Omega: p.Omega, M: p.M})
	if err != nil {
		pgr.Close()
		return err
	}
	if err := tree.BulkLoadArena(keys, perm, nil, rdist); err != nil {
		pgr.Close()
		return err
	}
	if err := tree.Flush(); err != nil {
		pgr.Close()
		return err
	}
	ix.trees[t] = tree
	ix.treePagers[t] = pgr
	phases.bulkNS.Add(int64(time.Since(t0)))
	return nil
}

// computeRefDists fills the flat n×m reference-distance matrix on up to
// `workers` goroutines. Rows are written at fixed offsets, so the
// result is independent of scheduling.
func computeRefDists(ctx context.Context, vectors, refs [][]float32, workers int) ([]float32, error) {
	n, m := len(vectors), len(refs)
	rdist := make([]float32, n*m)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		loI, hiI := w*chunk, (w+1)*chunk
		if hiI > n {
			hiI = n
		}
		if loI >= hiI {
			break
		}
		wg.Add(1)
		go func(loI, hiI int) {
			defer wg.Done()
			for i := loI; i < hiI; i++ {
				if i%1024 == 0 && ctx.Err() != nil {
					return
				}
				row := rdist[i*m : (i+1)*m]
				for r, rv := range refs {
					row[r] = float32(vecmath.Dist(vectors[i], rv))
				}
			}
		}(loI, hiI)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return rdist, nil
}

func msSince(t time.Time) float64 { return msOf(int64(time.Since(t))) }

func msOf(ns int64) float64 { return float64(ns) / 1e6 }

// BuildStats returns the construction cost breakdown of a freshly
// built index, or nil when the index was Opened from disk.
func (ix *Index) BuildStats() *BuildStats { return ix.buildStats }
