package core

import (
	"path/filepath"
	"testing"

	"github.com/hd-index/hdindex/internal/data"
)

func TestDeleteHidesObject(t *testing.T) {
	ds := data.Generate(data.Config{N: 500, Dim: 16, Lo: 0, Hi: 1, Seed: 61})
	dir := filepath.Join(t.TempDir(), "ix")
	p := Params{Tau: 2, Omega: 8, M: 3, Alpha: 500, Beta: 500, Gamma: 500, Seed: 62}
	ix, err := Build(dir, ds.Vectors, p)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()

	// Query right on top of object 123: it must rank first.
	q := ds.Vectors[123]
	res, err := ix.Search(q, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].ID != 123 {
		t.Fatalf("pre-delete nearest = %d, want 123", res[0].ID)
	}
	second := res[1].ID

	if err := ix.Delete(123); err != nil {
		t.Fatal(err)
	}
	if ix.DeletedCount() != 1 {
		t.Fatalf("DeletedCount = %d", ix.DeletedCount())
	}
	res, err = ix.Search(q, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.ID == 123 {
			t.Fatal("deleted object returned")
		}
	}
	if res[0].ID != second {
		t.Fatalf("post-delete nearest = %d, want the former runner-up %d", res[0].ID, second)
	}

	// Undelete restores it.
	if err := ix.Undelete(123); err != nil {
		t.Fatal(err)
	}
	res, err = ix.Search(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].ID != 123 {
		t.Fatal("undelete did not restore the object")
	}
}

func TestDeletePersistsAcrossReopen(t *testing.T) {
	ds := data.Generate(data.Config{N: 300, Dim: 16, Lo: 0, Hi: 1, Seed: 63})
	dir := filepath.Join(t.TempDir(), "ix")
	p := Params{Tau: 2, Omega: 8, M: 3, Alpha: 300, Beta: 300, Gamma: 300, Seed: 64}
	ix, err := Build(dir, ds.Vectors, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Delete(42); err != nil {
		t.Fatal(err)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir, OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.DeletedCount() != 1 {
		t.Fatalf("reopened DeletedCount = %d", re.DeletedCount())
	}
	res, err := re.Search(ds.Vectors[42], 1)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].ID == 42 {
		t.Fatal("deletion mark lost across reopen")
	}
}

func TestDeleteValidation(t *testing.T) {
	ds := data.Generate(data.Config{N: 100, Dim: 8, Lo: 0, Hi: 1, Seed: 65})
	dir := filepath.Join(t.TempDir(), "ix")
	ix, err := Build(dir, ds.Vectors, Params{Tau: 2, Omega: 8, M: 2, Alpha: 100, Beta: 100, Gamma: 100, Seed: 66})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	if err := ix.Delete(1000); err == nil {
		t.Error("deleting unknown id must fail")
	}
	// Double delete is a no-op.
	if err := ix.Delete(5); err != nil {
		t.Fatal(err)
	}
	if err := ix.Delete(5); err != nil {
		t.Fatal(err)
	}
	if ix.DeletedCount() != 1 {
		t.Fatalf("double delete counted twice: %d", ix.DeletedCount())
	}
	// Undelete of a never-deleted id is a no-op.
	if err := ix.Undelete(7); err != nil {
		t.Fatal(err)
	}
}
