// Package core implements HD-Index itself: construction (Algorithm 1)
// and kANN querying (Algorithm 2) over τ RDB-trees, one per contiguous
// dimension partition, with triangular and Ptolemaic filtering against m
// reference objects.
package core

import (
	"fmt"
	"time"
)

// Curve selects the space-filling curve used for the one-dimensional
// ordering. The paper uses Hilbert ([37]: "most appropriate for
// indexing"); Z-order is provided for the ablation benchmarks.
type Curve string

// Supported curves.
const (
	CurveHilbert Curve = "hilbert"
	CurveZOrder  Curve = "zorder"
)

// RefSelection names a reference-object selection strategy (§3.3, Fig. 10).
type RefSelection string

// Supported selection strategies.
const (
	RefSSS    RefSelection = "sss"
	RefSSSDyn RefSelection = "sss-dyn"
	RefRandom RefSelection = "random"
)

// Params configures index construction and querying. Zero values are
// replaced by the paper's recommendations in SetDefaults.
type Params struct {
	Tau   int // number of partitions/RDB-trees τ (§5.2.4: 8; 16 for ν ≥ 500)
	Omega int // Hilbert curve order ω (§3.4, Table 3)
	M     int // reference objects m (§5.2.3: 10)

	Alpha int // candidates fetched per tree (§5.2.6: 4096; 8192 for very large datasets)
	Beta  int // survivors of the triangular filter (§5.2.5: = α when Ptolemaic is on)
	Gamma int // survivors of the Ptolemaic filter (§5.2.6: α/4)

	// UsePtolemaic enables the second, tighter filter. The paper's
	// default is OFF for wall-clock efficiency (§5.2.5): triangular-only
	// filtering then reduces α directly to γ.
	UsePtolemaic bool

	RefSelection RefSelection // default SSS
	SSSFraction  float64      // f of §3.4, default 0.3

	Curve     Curve // default Hilbert
	PageSize  int   // default 4096 (the paper's B)
	PoolPages int   // buffer-pool pages per file; default 256
	// DisableCache turns the buffer pool off so every page touch is a
	// physical read — the paper's "caching effects off" protocol (§5).
	DisableCache bool
	// Parallel searches the τ trees concurrently (§5.2.8 notes HD-Index
	// parallelises trivially across its independent trees).
	Parallel bool

	// BatchWorkers bounds the SearchBatch fan-out: at most this many
	// queries run concurrently. 0 means GOMAXPROCS.
	BatchWorkers int

	// BuildWorkers is the construction-parallelism budget: the total
	// number of concurrently working goroutines across the τ tree
	// builds and the chunked encode workers inside each (a sharded
	// layout divides its budget among concurrently building shards).
	// 0 means GOMAXPROCS at build time. Deliberately not baked into
	// SetDefaults and excluded from serialisation: a build-time knob in
	// meta.json would make index bytes depend on the building machine's
	// core count, breaking bit-identical builds.
	BuildWorkers int `json:"-"`

	// Live-ingest knobs (ingest.go). Runtime-only like BuildWorkers —
	// excluded from meta.json so the on-disk descriptor never depends
	// on a deployment's durability tuning.
	//
	// WALSyncInterval selects the write-ahead log's durability
	// discipline: 0 group-commits every mutation (acknowledged =
	// fsynced), > 0 acknowledges after the page-cache write and fsyncs
	// on this cadence.
	WALSyncInterval time.Duration `json:"-"`
	// MemtableMaxVectors is the compaction threshold (0 = 4096).
	MemtableMaxVectors int `json:"-"`
	// MemtableMaxAge additionally compacts a non-empty memtable on this
	// cadence; 0 disables the timer.
	MemtableMaxAge time.Duration `json:"-"`

	// DisableTelemetry turns off the latency histograms and per-phase
	// query spans (internal/telemetry). Runtime-only: a measurement
	// preference, not an index property. The default (enabled) costs a
	// handful of clock reads and atomic adds per operation.
	DisableTelemetry bool `json:"-"`

	Seed int64
}

// SetDefaults fills unset fields with the paper's recommended values for
// a dataset of dimensionality nu and size n.
func (p *Params) SetDefaults(nu, n int) {
	if p.Tau == 0 {
		preferred := 8
		if nu >= 500 {
			preferred = 16
		}
		p.Tau = ChooseTau(nu, preferred)
	}
	if p.Omega == 0 {
		p.Omega = 16
	}
	if p.M == 0 {
		p.M = 10
	}
	if p.Alpha == 0 {
		p.Alpha = 4096
		if n >= 1_000_000 {
			p.Alpha = 8192
		}
		if p.Alpha > n && n > 0 {
			p.Alpha = n
		}
	}
	if p.Beta == 0 {
		p.Beta = p.Alpha // α/β = 1 (§5.2.5)
	}
	if p.Gamma == 0 {
		p.Gamma = p.Alpha / 4 // α/γ = 4 (§5.2.6)
		if p.Gamma < 1 {
			p.Gamma = p.Alpha
		}
	}
	if p.RefSelection == "" {
		p.RefSelection = RefSSS
	}
	if p.SSSFraction == 0 {
		p.SSSFraction = 0.3
	}
	if p.Curve == "" {
		p.Curve = CurveHilbert
	}
	if p.PageSize == 0 {
		p.PageSize = 4096
	}
	if p.PoolPages == 0 {
		p.PoolPages = 256
	}
}

// Validate reports configuration errors for a dataset of dimensionality nu.
func (p *Params) Validate(nu int) error {
	if p.Tau < 1 {
		return fmt.Errorf("core: tau must be >= 1, got %d", p.Tau)
	}
	if nu%p.Tau != 0 {
		return fmt.Errorf("core: tau = %d does not divide dimensionality %d", p.Tau, nu)
	}
	if p.Omega < 1 || p.Omega > 32 {
		return fmt.Errorf("core: omega must be in [1,32], got %d", p.Omega)
	}
	if p.M < 1 {
		return fmt.Errorf("core: m must be >= 1, got %d", p.M)
	}
	if p.BatchWorkers < 0 {
		return fmt.Errorf("core: batch workers must be >= 0, got %d", p.BatchWorkers)
	}
	if p.BuildWorkers < 0 {
		return fmt.Errorf("core: build workers must be >= 0, got %d", p.BuildWorkers)
	}
	if p.WALSyncInterval < 0 {
		return fmt.Errorf("core: wal sync interval must be >= 0, got %v", p.WALSyncInterval)
	}
	if p.MemtableMaxVectors < 0 {
		return fmt.Errorf("core: memtable max vectors must be >= 0, got %d", p.MemtableMaxVectors)
	}
	if p.MemtableMaxAge < 0 {
		return fmt.Errorf("core: memtable max age must be >= 0, got %v", p.MemtableMaxAge)
	}
	if p.Alpha < 1 || p.Beta < 1 || p.Gamma < 1 {
		return fmt.Errorf("core: alpha/beta/gamma must be >= 1, got %d/%d/%d", p.Alpha, p.Beta, p.Gamma)
	}
	if p.Beta > p.Alpha || p.Gamma > p.Beta {
		return fmt.Errorf("core: filter cascade must narrow: alpha=%d >= beta=%d >= gamma=%d", p.Alpha, p.Beta, p.Gamma)
	}
	switch p.Curve {
	case CurveHilbert, CurveZOrder:
	default:
		return fmt.Errorf("core: unknown curve %q", p.Curve)
	}
	switch p.RefSelection {
	case RefSSS, RefSSSDyn, RefRandom:
	default:
		return fmt.Errorf("core: unknown reference selection %q", p.RefSelection)
	}
	return nil
}

// ChooseTau picks the divisor of nu whose per-curve dimensionality η is
// closest to nu/preferred — the rule that reproduces the paper's choices:
// ν=128→8, 192→8, 512→16, 100→10, 1369→37 (§5.2.4).
func ChooseTau(nu, preferred int) int {
	if preferred < 1 {
		preferred = 8
	}
	targetEta := float64(nu) / float64(preferred)
	best, bestDiff := 1, float64(nu) // tau=1 => eta=nu
	for tau := 1; tau <= nu; tau++ {
		if nu%tau != 0 {
			continue
		}
		eta := float64(nu / tau)
		diff := eta - targetEta
		if diff < 0 {
			diff = -diff
		}
		if diff < bestDiff {
			best, bestDiff = tau, diff
		}
	}
	return best
}
