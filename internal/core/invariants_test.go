package core

import (
	"math"
	"path/filepath"
	"testing"
	"testing/quick"

	"github.com/hd-index/hdindex/internal/data"
	"github.com/hd-index/hdindex/internal/vecmath"
)

// Property (testing/quick over random queries): the candidate-set size κ
// respects γ ≤ κ ≤ τ·γ (§4.2) whenever every tree yields γ survivors,
// and the returned distances are exact, sorted, and lower-bounded by the
// true nearest distance.
func TestQuickQueryInvariants(t *testing.T) {
	ds := data.Generate(data.Config{N: 1500, Dim: 32, Clusters: 5, Lo: 0, Hi: 1, Seed: 111})
	dir := filepath.Join(t.TempDir(), "ix")
	p := Params{Tau: 4, Omega: 8, M: 4, Alpha: 256, Gamma: 64, Seed: 112}
	ix, err := Build(dir, ds.Vectors, p)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()

	// Exact NN distances for comparison.
	trueNN := func(q []float32) float64 {
		best := math.Inf(1)
		for _, v := range ds.Vectors {
			if d := vecmath.Dist(q, v); d < best {
				best = d
			}
		}
		return best
	}

	f := func(seed int64) bool {
		qs := data.Generate(data.Config{N: 1, Dim: 32, Clusters: 1, Lo: 0, Hi: 1, Seed: seed})
		q := qs.Vectors[0]
		res, stats, err := ix.SearchWithStats(q, 10)
		if err != nil {
			return false
		}
		if stats.Candidates < p.Gamma || stats.Candidates > p.Tau*p.Gamma {
			return false
		}
		// Sorted ascending, and the best result cannot beat the true NN.
		for i := 1; i < len(res); i++ {
			if res[i].Dist < res[i-1].Dist {
				return false
			}
		}
		if len(res) > 0 && res[0].Dist < trueNN(q)-1e-6 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Searching for every indexed point itself must find it at distance 0
// with high probability: a point's own Hilbert key is always the seek
// position, so it appears among its own α candidates in every tree.
func TestSelfQueriesAreExact(t *testing.T) {
	ds := data.Generate(data.Config{N: 800, Dim: 16, Clusters: 4, Lo: 0, Hi: 1, Seed: 113})
	dir := filepath.Join(t.TempDir(), "ix")
	ix, err := Build(dir, ds.Vectors, Params{Tau: 2, Omega: 8, M: 3, Alpha: 64, Gamma: 16, Seed: 114})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	misses := 0
	for i := 0; i < 100; i++ {
		id := uint64(i * 8)
		res, err := ix.Search(ds.Vectors[id], 1)
		if err != nil {
			t.Fatal(err)
		}
		// Ties at distance 0 (duplicate points) also count as hits.
		if len(res) == 0 || res[0].Dist > 1e-6 {
			misses++
		}
	}
	if misses > 0 {
		t.Errorf("%d/100 self-queries failed to find a zero-distance object", misses)
	}
}
