package core

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/hd-index/hdindex/internal/data"
)

func buildTiny(t *testing.T) (string, *data.Dataset) {
	t.Helper()
	ds := data.Generate(data.Config{N: 200, Dim: 16, Lo: 0, Hi: 1, Seed: 71})
	dir := filepath.Join(t.TempDir(), "ix")
	ix, err := Build(dir, ds.Vectors, Params{Tau: 2, Omega: 8, M: 3, Alpha: 64, Gamma: 16, Seed: 72})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	return dir, ds
}

func TestOpenMissingMeta(t *testing.T) {
	dir, _ := buildTiny(t)
	if err := os.Remove(filepath.Join(dir, metaFile)); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, OpenOptions{}); err == nil {
		t.Fatal("open without meta.json must fail")
	}
}

func TestOpenCorruptMeta(t *testing.T) {
	dir, _ := buildTiny(t)
	if err := os.WriteFile(filepath.Join(dir, metaFile), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, OpenOptions{}); err == nil {
		t.Fatal("open with corrupt meta.json must fail")
	}
}

func TestOpenMissingTreeFile(t *testing.T) {
	dir, _ := buildTiny(t)
	if err := os.Remove(filepath.Join(dir, "tree_01.pg")); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, OpenOptions{}); err == nil {
		t.Fatal("open with a missing tree file must fail")
	}
}

func TestOpenTruncatedVectors(t *testing.T) {
	dir, _ := buildTiny(t)
	path := filepath.Join(dir, "vectors.pg")
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, st.Size()/2); err != nil {
		t.Fatal(err)
	}
	ix, err := Open(dir, OpenOptions{})
	if err != nil {
		return // failing at open is acceptable
	}
	defer ix.Close()
	// If open succeeded (superblock intact), reads into the truncated
	// region must fail rather than return garbage silently.
	q := make([]float32, 16)
	var sawErr bool
	for id := uint64(0); id < ix.Count(); id++ {
		if _, err := ix.vectors.Get(id, q); err != nil {
			sawErr = true
			break
		}
	}
	if !sawErr {
		t.Fatal("reads from truncated vector store must eventually error")
	}
}

func TestOpenCorruptDeleteFile(t *testing.T) {
	dir, _ := buildTiny(t)
	if err := os.WriteFile(filepath.Join(dir, deletedFile), []byte{1, 2, 3}, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, OpenOptions{}); err == nil {
		t.Fatal("open with corrupt deleted.bin must fail")
	}
}
