package core

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"github.com/hd-index/hdindex/internal/data"
)

func buildTiny(t *testing.T) (string, *data.Dataset) {
	t.Helper()
	ds := data.Generate(data.Config{N: 200, Dim: 16, Lo: 0, Hi: 1, Seed: 71})
	dir := filepath.Join(t.TempDir(), "ix")
	ix, err := Build(dir, ds.Vectors, Params{Tau: 2, Omega: 8, M: 3, Alpha: 64, Gamma: 16, Seed: 72})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	return dir, ds
}

func TestOpenMissingMeta(t *testing.T) {
	dir, _ := buildTiny(t)
	if err := os.Remove(filepath.Join(dir, metaFile)); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, OpenOptions{}); err == nil {
		t.Fatal("open without meta.json must fail")
	}
}

func TestOpenCorruptMeta(t *testing.T) {
	dir, _ := buildTiny(t)
	if err := os.WriteFile(filepath.Join(dir, metaFile), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, OpenOptions{}); err == nil {
		t.Fatal("open with corrupt meta.json must fail")
	}
}

func TestOpenMissingTreeFile(t *testing.T) {
	dir, _ := buildTiny(t)
	if err := os.Remove(filepath.Join(dir, "tree_01.pg")); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, OpenOptions{}); err == nil {
		t.Fatal("open with a missing tree file must fail")
	}
}

func TestOpenTruncatedVectors(t *testing.T) {
	dir, _ := buildTiny(t)
	path := filepath.Join(dir, "vectors.pg")
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, st.Size()/2); err != nil {
		t.Fatal(err)
	}
	ix, err := Open(dir, OpenOptions{})
	if err != nil {
		return // failing at open is acceptable
	}
	defer ix.Close()
	// If open succeeded (superblock intact), reads into the truncated
	// region must fail rather than return garbage silently.
	q := make([]float32, 16)
	var sawErr bool
	for id := uint64(0); id < ix.Count(); id++ {
		if _, err := ix.vectors.Get(id, q); err != nil {
			sawErr = true
			break
		}
	}
	if !sawErr {
		t.Fatal("reads from truncated vector store must eventually error")
	}
}

// Rebuilding into a directory that already holds an index must not
// inherit any of its state — in particular deletion marks, which would
// silently hide arbitrary vectors of the new dataset.
func TestRebuildClearsStaleState(t *testing.T) {
	dir, ds := buildTiny(t)
	ix, err := Open(dir, OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Delete(7); err != nil {
		t.Fatal(err)
	}
	if err := ix.Delete(11); err != nil {
		t.Fatal(err)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Build(dir, ds.Vectors, Params{Tau: 2, Omega: 8, M: 3, Alpha: 64, Gamma: 16, Seed: 73})
	if err != nil {
		t.Fatal(err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	fresh, err := Open(dir, OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	if n := fresh.DeletedCount(); n != 0 {
		t.Fatalf("rebuilt index inherited %d deletion marks", n)
	}
}

// A crash can persist a delete mark for an insert whose vector append
// never flushed (marks are written synchronously, appends on Flush).
// Open must prune such marks: the id gets reassigned to a later insert,
// which must not be born deleted and invisible to every search.
func TestOpenPrunesStaleDeleteMarks(t *testing.T) {
	dir, _ := buildTiny(t) // 200 vectors, ids 0..199
	buf := make([]byte, 16)
	binary.BigEndian.PutUint64(buf, 1)
	binary.BigEndian.PutUint64(buf[8:], 200) // mark the lost id
	if err := os.WriteFile(filepath.Join(dir, deletedFile), buf, 0o644); err != nil {
		t.Fatal(err)
	}

	ix, err := Open(dir, OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if n := ix.DeletedCount(); n != 0 {
		t.Fatalf("stale mark survived open: DeletedCount = %d", n)
	}
	vec := make([]float32, 16)
	for d := range vec {
		vec[d] = 0.77
	}
	id, err := ix.Insert(vec)
	if err != nil {
		t.Fatal(err)
	}
	if id != 200 {
		t.Fatalf("refill insert assigned id %d, want 200", id)
	}
	res, err := ix.Search(vec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].ID != 200 {
		t.Fatalf("refilled id 200 invisible to search: got %d", res[0].ID)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	// The prune must have been persisted, not just applied in memory.
	re, err := Open(dir, OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if n := re.DeletedCount(); n != 0 {
		t.Fatalf("stale mark resurrected after reopen: DeletedCount = %d", n)
	}
	res, err = re.Search(vec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].ID != 200 {
		t.Fatalf("refilled id 200 lost after reopen: got %d", res[0].ID)
	}
}

func TestOpenCorruptDeleteFile(t *testing.T) {
	dir, _ := buildTiny(t)
	if err := os.WriteFile(filepath.Join(dir, deletedFile), []byte{1, 2, 3}, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, OpenOptions{}); err == nil {
		t.Fatal("open with corrupt deleted.bin must fail")
	}
}
