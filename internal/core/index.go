package core

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"github.com/hd-index/hdindex/internal/hilbert"
	"github.com/hd-index/hdindex/internal/pager"
	"github.com/hd-index/hdindex/internal/rdbtree"
	"github.com/hd-index/hdindex/internal/vecmath"
	"github.com/hd-index/hdindex/internal/vecstore"
)

const metaFile = "meta.json"

// Index is an HD-Index on disk: τ RDB-trees plus the raw vector store.
// Searches may run concurrently with each other; mu serialises them
// against Insert/Delete/Flush, which mutate the trees and the vector
// store in place.
type Index struct {
	mu     sync.RWMutex
	dir    string
	params Params
	nu     int
	eta    int

	trees      []*rdbtree.Tree
	treePagers []*pager.Pager
	vectors    *vecstore.Store
	vecPager   *pager.Pager

	refs     [][]float32 // the m reference vectors
	refCross [][]float64 // d(R_i, R_j), for the Ptolemaic bound
	lo, hi   []float32   // per-dimension quantiser domain

	curves  []hilbert.Curve      // one per partition
	quants  []*hilbert.Quantizer // one per partition
	deleted *deleteSet           // §3.6 deletion marks

	// buildStats is the construction cost breakdown; set by Build,
	// nil on an Opened index.
	buildStats *BuildStats
}

// metaJSON is the serialised index descriptor.
type metaJSON struct {
	Params Params      `json:"params"`
	Nu     int         `json:"nu"`
	Count  uint64      `json:"count"`
	Refs   [][]float32 `json:"refs"`
	Lo     []float32   `json:"lo"`
	Hi     []float32   `json:"hi"`
}

func (ix *Index) treePath(t int) string {
	return filepath.Join(ix.dir, fmt.Sprintf("tree_%02d.pg", t))
}

// RemoveIndexFiles deletes every file a previous Build may have left at
// dir's top level: meta.json first (the layout's commit point, so a
// crash mid-rebuild leaves a directory Open rejects rather than one
// silently serving the old dataset), then the deletion marks, the
// vector store, and the tree files. Build calls it so rebuilding in
// place starts clean — stale deleted.bin marks would otherwise
// resurrect on the new index, and stale tree files would linger when
// tau shrinks. Missing files (or a missing directory) are fine.
func RemoveIndexFiles(dir string) error {
	trees, err := filepath.Glob(filepath.Join(dir, "tree_*.pg"))
	if err != nil {
		return err
	}
	victims := []string{
		filepath.Join(dir, metaFile),
		filepath.Join(dir, deletedFile),
		filepath.Join(dir, "vectors.pg"),
	}
	for _, p := range append(victims, trees...) {
		if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	return nil
}

func (ix *Index) initCurves() error {
	p := ix.params
	ix.curves = make([]hilbert.Curve, p.Tau)
	ix.quants = make([]*hilbert.Quantizer, p.Tau)
	for t := 0; t < p.Tau; t++ {
		var c hilbert.Curve
		var err error
		switch p.Curve {
		case CurveZOrder:
			c, err = hilbert.NewZOrder(ix.eta, p.Omega)
		default:
			c, err = hilbert.New(ix.eta, p.Omega)
		}
		if err != nil {
			return err
		}
		ix.curves[t] = c
		start := t * ix.eta
		ix.quants[t] = hilbert.NewQuantizer(ix.lo[start:start+ix.eta], ix.hi[start:start+ix.eta], p.Omega)
	}
	return nil
}

func crossDistances(refs [][]float32) [][]float64 {
	m := len(refs)
	cross := make([][]float64, m)
	for i := range cross {
		cross[i] = make([]float64, m)
		for j := range cross[i] {
			if i != j {
				cross[i][j] = vecmath.Dist(refs[i], refs[j])
			}
		}
	}
	return cross
}

func (ix *Index) writeMeta() error {
	m := metaJSON{
		Params: ix.params,
		Nu:     ix.nu,
		Count:  ix.vectors.Count(),
		Refs:   ix.refs,
		Lo:     ix.lo,
		Hi:     ix.hi,
	}
	buf, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(ix.dir, metaFile), buf, 0o644)
}

// OpenOptions tunes how an existing index is opened.
type OpenOptions struct {
	PoolPages    int  // buffer-pool pages per file; 0 keeps the build-time value
	DisableCache bool // paper's caching-off protocol
	Parallel     bool // search trees concurrently
	BatchWorkers int  // SearchBatch fan-out bound; 0 = GOMAXPROCS
}

// Open loads an HD-Index previously written by Build.
func Open(dir string, opts OpenOptions) (*Index, error) {
	buf, err := os.ReadFile(filepath.Join(dir, metaFile))
	if err != nil {
		return nil, fmt.Errorf("core: read index meta: %w", err)
	}
	var m metaJSON
	if err := json.Unmarshal(buf, &m); err != nil {
		return nil, fmt.Errorf("core: parse index meta: %w", err)
	}
	p := m.Params
	if opts.PoolPages > 0 {
		p.PoolPages = opts.PoolPages
	}
	p.DisableCache = opts.DisableCache
	p.Parallel = opts.Parallel
	p.BatchWorkers = opts.BatchWorkers

	ix := &Index{
		dir:     dir,
		params:  p,
		nu:      m.Nu,
		eta:     m.Nu / p.Tau,
		refs:    m.Refs,
		lo:      m.Lo,
		hi:      m.Hi,
		deleted: newDeleteSet(),
	}
	ix.refCross = crossDistances(m.Refs)
	if err := ix.initCurves(); err != nil {
		return nil, err
	}

	ix.trees = make([]*rdbtree.Tree, p.Tau)
	ix.treePagers = make([]*pager.Pager, p.Tau)
	for t := 0; t < p.Tau; t++ {
		pgr, err := pager.Open(ix.treePath(t), pager.Options{
			PoolPages: p.PoolPages, DisableLRU: p.DisableCache,
		})
		if err != nil {
			ix.Close()
			return nil, err
		}
		ix.treePagers[t] = pgr
		tree, err := rdbtree.Open(pgr)
		if err != nil {
			ix.Close()
			return nil, err
		}
		ix.trees[t] = tree
	}
	vp, err := pager.Open(filepath.Join(dir, "vectors.pg"), pager.Options{
		PoolPages: p.PoolPages, DisableLRU: p.DisableCache,
	})
	if err != nil {
		ix.Close()
		return nil, err
	}
	ix.vecPager = vp
	vs, err := vecstore.Open(vp)
	if err != nil {
		ix.Close()
		return nil, err
	}
	ix.vectors = vs
	if err := ix.loadDeleteSet(); err != nil {
		ix.Close()
		return nil, err
	}
	return ix, nil
}

// Close releases all file handles. Safe to call more than once. Taking
// the write lock makes Close wait out in-flight searches instead of
// closing pagers under them (searches bound their own lifetime via
// context deadlines).
func (ix *Index) Close() error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	var first error
	for _, pgr := range ix.treePagers {
		if pgr != nil {
			if err := pgr.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	if ix.vecPager != nil {
		if err := ix.vecPager.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Params returns the effective parameters.
func (ix *Index) Params() Params { return ix.params }

// Dim returns the indexed dimensionality ν.
func (ix *Index) Dim() int { return ix.nu }

// Count returns the number of indexed objects.
func (ix *Index) Count() uint64 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.vectors.Count()
}

// References returns the reference vectors (not copies).
func (ix *Index) References() [][]float32 { return ix.refs }

// SizeOnDisk returns the total bytes of all index files.
func (ix *Index) SizeOnDisk() int64 {
	var total int64
	for _, pgr := range ix.treePagers {
		if pgr != nil {
			total += pgr.FileSize()
		}
	}
	if ix.vecPager != nil {
		total += ix.vecPager.FileSize()
	}
	return total
}

// TreeSizeOnDisk returns bytes used by the RDB-trees only (the index
// proper, excluding the dataset vectors every method must keep).
func (ix *Index) TreeSizeOnDisk() int64 {
	var total int64
	for _, pgr := range ix.treePagers {
		if pgr != nil {
			total += pgr.FileSize()
		}
	}
	return total
}

// IOStats sums the pager counters of all files.
func (ix *Index) IOStats() pager.Stats {
	var s pager.Stats
	for _, pgr := range ix.treePagers {
		if pgr != nil {
			s.Add(pgr.Stats())
		}
	}
	if ix.vecPager != nil {
		s.Add(ix.vecPager.Stats())
	}
	return s
}

// ResetIOStats zeroes all pager counters.
func (ix *Index) ResetIOStats() {
	for _, pgr := range ix.treePagers {
		if pgr != nil {
			pgr.ResetStats()
		}
	}
	if ix.vecPager != nil {
		ix.vecPager.ResetStats()
	}
}

// Insert adds one vector to the index (§3.6): append to the vector store,
// compute its reference distances and Hilbert keys, insert into each
// RDB-tree. The reference set is not recomputed.
func (ix *Index) Insert(vec []float32) (uint64, error) {
	if len(vec) != ix.nu {
		return 0, fmt.Errorf("%w: vector has %d dims, index has %d", ErrDimMismatch, len(vec), ix.nu)
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	id, err := ix.vectors.Append(vec)
	if err != nil {
		return 0, err
	}
	rd := make([]float32, ix.params.M)
	for r, rv := range ix.refs {
		rd[r] = float32(vecmath.Dist(vec, rv))
	}
	coords := make([]uint32, ix.eta)
	for t := 0; t < ix.params.Tau; t++ {
		start := t * ix.eta
		ix.quants[t].Coords(coords, vec[start:start+ix.eta])
		key := ix.curves[t].Encode(nil, coords)
		if err := ix.trees[t].Insert(key, id, rd); err != nil {
			return 0, err
		}
	}
	return id, nil
}

// Flush persists all dirty state to disk.
func (ix *Index) Flush() error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	for _, tr := range ix.trees {
		if tr != nil {
			if err := tr.Flush(); err != nil {
				return err
			}
		}
	}
	if ix.vectors != nil {
		if err := ix.vectors.Flush(); err != nil {
			return err
		}
	}
	return ix.writeMeta()
}
