package core

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"github.com/hd-index/hdindex/internal/atomicfile"
	"github.com/hd-index/hdindex/internal/hilbert"
	"github.com/hd-index/hdindex/internal/pager"
	"github.com/hd-index/hdindex/internal/rdbtree"
	"github.com/hd-index/hdindex/internal/telemetry"
	"github.com/hd-index/hdindex/internal/vecmath"
	"github.com/hd-index/hdindex/internal/vecstore"
	"github.com/hd-index/hdindex/internal/wal"
)

const metaFile = "meta.json"

// Index is an HD-Index on disk: τ RDB-trees plus the raw vector store,
// fronted by a write-ahead log and an in-memory memtable of fresh
// vectors (ingest.go). Searches may run concurrently with each other;
// mu serialises them against the memtable/WAL mutations of
// Insert/Delete and against the compaction commit, which swaps the
// tree generation.
type Index struct {
	mu     sync.RWMutex
	dir    string
	params Params
	nu     int
	eta    int

	trees      []*rdbtree.Tree
	treePagers []*pager.Pager
	vectors    *vecstore.Store
	vecPager   *pager.Pager

	refs     [][]float32 // the m reference vectors
	refCross [][]float64 // d(R_i, R_j), for the Ptolemaic bound
	lo, hi   []float32   // per-dimension quantiser domain

	curves  []hilbert.Curve      // one per partition
	quants  []*hilbert.Quantizer // one per partition
	deleted *deleteSet           // §3.6 deletion marks

	// Live-ingest state (ingest.go). mem holds acknowledged inserts not
	// yet compacted into the trees, in id order: entry i is id
	// vectors.Count()+i. gen numbers the current tree generation — the
	// compaction commit bumps it atomically through meta.json. All
	// guarded by mu; wal serialises its own file internally.
	wal      *wal.Log
	mem      [][]float32
	memOff   []int64 // WAL end-offset of mem[i]'s record (0 for replayed entries)
	gen      uint64
	replayed int // WAL records replayed by Open

	// Write-path failure state (failsafe.go): a WAL failure flips the
	// index read-only; walErr keeps the root cause for error messages.
	walFailed bool
	walErr    error

	// Background compactor plumbing; compactMu serialises Compact.
	// breakerOpen/compactConsecFails/compactFailures/lastCompactErr are
	// the compaction circuit breaker (failsafe.go), guarded by mu.
	compactMu          sync.Mutex
	compactCancel      context.CancelFunc
	compactDone        chan struct{}
	compactWake        chan struct{}
	compactions        uint64
	lastCompactMS      float64
	lastCompactN       int
	breakerOpen        bool
	compactConsecFails int
	compactFailures    uint64
	lastCompactErr     string
	compactBackoff     time.Duration

	// buildStats is the construction cost breakdown; set by Build,
	// nil on an Opened index.
	buildStats *BuildStats

	// tel collects operation latency histograms and per-phase query
	// spans; nil when Params.DisableTelemetry is set (every observation
	// site is nil-safe).
	tel *telemetry.Collector
}

// metaJSON is the serialised index descriptor. Count and Gen together
// are the ingest commit point: Count is the id watermark below which
// objects live in the vector store and the trees of generation Gen;
// WAL replay skips insert records under it. Both move only via the
// atomic meta.json replace in the compaction commit (or Flush), so a
// crash leaves a consistent (Gen, Count) pair. Gen is omitempty: a
// fresh build is generation 0 and its meta stays byte-identical to the
// pre-ingest layout.
type metaJSON struct {
	Params Params      `json:"params"`
	Nu     int         `json:"nu"`
	Count  uint64      `json:"count"`
	Gen    uint64      `json:"gen,omitempty"`
	Refs   [][]float32 `json:"refs"`
	Lo     []float32   `json:"lo"`
	Hi     []float32   `json:"hi"`
}

func (ix *Index) treePath(t int) string {
	return filepath.Join(ix.dir, fmt.Sprintf("tree_%02d.pg", t))
}

// RemoveIndexFiles deletes every file a previous Build may have left at
// dir's top level: meta.json first (the layout's commit point, so a
// crash mid-rebuild leaves a directory Open rejects rather than one
// silently serving the old dataset), then the deletion marks, the
// vector store, and the tree files. Build calls it so rebuilding in
// place starts clean — stale deleted.bin marks would otherwise
// resurrect on the new index, and stale tree files would linger when
// tau shrinks. Missing files (or a missing directory) are fine.
func RemoveIndexFiles(dir string) error {
	trees, err := filepath.Glob(filepath.Join(dir, "tree_*.pg"))
	if err != nil {
		return err
	}
	// Crash leftovers of the WAL's atomic rewrite.
	walTmp, err := filepath.Glob(filepath.Join(dir, walFile+".tmp*"))
	if err != nil {
		return err
	}
	trees = append(trees, walTmp...)
	victims := []string{
		filepath.Join(dir, metaFile),
		filepath.Join(dir, deletedFile),
		filepath.Join(dir, "vectors.pg"),
		filepath.Join(dir, walFile),
		// The sharded layout's per-shard identity stamp (internal/shard):
		// a directory rebuilt as a standalone index must stop claiming
		// membership in whatever cluster build it used to belong to.
		filepath.Join(dir, "identity.json"),
	}
	for _, p := range append(victims, trees...) {
		if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	return nil
}

func (ix *Index) initCurves() error {
	p := ix.params
	ix.curves = make([]hilbert.Curve, p.Tau)
	ix.quants = make([]*hilbert.Quantizer, p.Tau)
	for t := 0; t < p.Tau; t++ {
		var c hilbert.Curve
		var err error
		switch p.Curve {
		case CurveZOrder:
			c, err = hilbert.NewZOrder(ix.eta, p.Omega)
		default:
			c, err = hilbert.New(ix.eta, p.Omega)
		}
		if err != nil {
			return err
		}
		ix.curves[t] = c
		start := t * ix.eta
		ix.quants[t] = hilbert.NewQuantizer(ix.lo[start:start+ix.eta], ix.hi[start:start+ix.eta], p.Omega)
	}
	return nil
}

func crossDistances(refs [][]float32) [][]float64 {
	m := len(refs)
	cross := make([][]float64, m)
	for i := range cross {
		cross[i] = make([]float64, m)
		for j := range cross[i] {
			if i != j {
				cross[i][j] = vecmath.Dist(refs[i], refs[j])
			}
		}
	}
	return cross
}

// writeMeta atomically replaces meta.json — it is the ingest commit
// point (Count + Gen), so a torn write must be impossible: the
// write-fsync-rename-dirsync discipline leaves either the old complete
// descriptor or the new one.
func (ix *Index) writeMeta() error {
	m := metaJSON{
		Params: ix.params,
		Nu:     ix.nu,
		Count:  ix.vectors.Count(),
		Gen:    ix.gen,
		Refs:   ix.refs,
		Lo:     ix.lo,
		Hi:     ix.hi,
	}
	buf, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return err
	}
	return atomicfile.WriteFile(ix.dir, metaFile, buf)
}

// OpenOptions tunes how an existing index is opened.
type OpenOptions struct {
	PoolPages    int  // buffer-pool pages per file; 0 keeps the build-time value
	DisableCache bool // paper's caching-off protocol
	Parallel     bool // search trees concurrently
	BatchWorkers int  // SearchBatch fan-out bound; 0 = GOMAXPROCS

	// WALSyncInterval selects the ingest durability discipline: 0 group-
	// commits every insert/delete (acknowledged = fsynced); > 0
	// acknowledges after the page-cache write and fsyncs on this cadence
	// (safe against process crash, a bounded window against power loss).
	WALSyncInterval time.Duration
	// MemtableMaxVectors is the compaction threshold: once this many
	// acknowledged inserts sit in the memtable the background compactor
	// merges them into the trees. 0 means the default (4096).
	MemtableMaxVectors int
	// MemtableMaxAge additionally compacts a non-empty memtable on this
	// cadence, bounding tree staleness under trickle writes. 0 disables
	// the timer (size-triggered only — deterministic for tests).
	MemtableMaxAge time.Duration

	// DisableTelemetry turns off latency histograms and per-phase query
	// spans; see Params.DisableTelemetry.
	DisableTelemetry bool
}

// Open loads an HD-Index previously written by Build, replaying any
// surviving WAL tail into the memtable so the index recovers to the
// last acknowledged write.
func Open(dir string, opts OpenOptions) (*Index, error) {
	buf, err := os.ReadFile(filepath.Join(dir, metaFile))
	if err != nil {
		return nil, fmt.Errorf("core: read index meta: %w", err)
	}
	var m metaJSON
	if err := json.Unmarshal(buf, &m); err != nil {
		return nil, fmt.Errorf("core: parse index meta: %w", err)
	}
	p := m.Params
	if opts.PoolPages > 0 {
		p.PoolPages = opts.PoolPages
	}
	p.DisableCache = opts.DisableCache
	p.Parallel = opts.Parallel
	p.BatchWorkers = opts.BatchWorkers
	p.WALSyncInterval = opts.WALSyncInterval
	p.MemtableMaxVectors = opts.MemtableMaxVectors
	p.MemtableMaxAge = opts.MemtableMaxAge
	p.DisableTelemetry = opts.DisableTelemetry

	ix := &Index{
		dir:     dir,
		params:  p,
		nu:      m.Nu,
		eta:     m.Nu / p.Tau,
		refs:    m.Refs,
		lo:      m.Lo,
		hi:      m.Hi,
		gen:     m.Gen,
		deleted: newDeleteSet(),
	}
	ix.refCross = crossDistances(m.Refs)
	if !p.DisableTelemetry {
		ix.tel = telemetry.NewCollector()
	}
	if err := ix.initCurves(); err != nil {
		return nil, err
	}

	// A crash inside a compaction (before its meta commit) or right
	// after one (before old-generation cleanup) leaves tree files of
	// generations other than m.Gen — remove them so they cannot collide
	// with a future compaction reusing the generation number.
	if err := removeStaleGenerations(dir, p.Tau, m.Gen); err != nil {
		return nil, err
	}

	ix.trees = make([]*rdbtree.Tree, p.Tau)
	ix.treePagers = make([]*pager.Pager, p.Tau)
	for t := 0; t < p.Tau; t++ {
		pgr, err := pager.Open(ix.treeGenPath(t, m.Gen), pager.Options{
			PoolPages: p.PoolPages, DisableLRU: p.DisableCache,
		})
		if err != nil {
			ix.Close()
			return nil, err
		}
		ix.treePagers[t] = pgr
		tree, err := rdbtree.Open(pgr)
		if err != nil {
			ix.Close()
			return nil, err
		}
		ix.trees[t] = tree
	}
	vp, err := pager.Open(filepath.Join(dir, "vectors.pg"), pager.Options{
		PoolPages: p.PoolPages, DisableLRU: p.DisableCache,
	})
	if err != nil {
		ix.Close()
		return nil, err
	}
	ix.vecPager = vp
	vs, err := vecstore.Open(vp)
	if err != nil {
		ix.Close()
		return nil, err
	}
	ix.vectors = vs

	// Reconcile the vector store against the meta commit point. With a
	// WAL present, meta.Count is authoritative: a count beyond it is a
	// compaction commit that crashed before meta.json landed — rewind
	// it; the WAL still holds those inserts and replays them below. A
	// pre-WAL directory has no such discipline: its vector-store header
	// is the historical truth, so adopt it (and persist the adoption
	// before the WAL file starts marking the new discipline).
	walPath := filepath.Join(dir, walFile)
	_, statErr := os.Stat(walPath)
	walExisted := statErr == nil
	if walExisted {
		switch {
		case vs.Count() > m.Count:
			if err := vs.ResetCount(m.Count); err != nil {
				ix.Close()
				return nil, err
			}
		case vs.Count() < m.Count:
			ix.Close()
			return nil, fmt.Errorf("core: vector store holds %d vectors, meta commits %d", vs.Count(), m.Count)
		}
	} else if vs.Count() != m.Count {
		if err := ix.writeMeta(); err != nil {
			ix.Close()
			return nil, err
		}
	}

	if err := ix.loadDeleteSet(); err != nil {
		ix.Close()
		return nil, err
	}
	ix.wal, err = wal.Open(walPath, ix.walOptions(), ix.replayRecord)
	if err != nil {
		ix.Close()
		return nil, fmt.Errorf("core: wal recovery: %w", err)
	}
	if err := ix.pruneDeleteMarks(); err != nil {
		ix.Close()
		return nil, err
	}
	ix.startCompactor()
	return ix, nil
}

// removeStaleGenerations deletes tree files whose name does not belong
// to the committed generation.
func removeStaleGenerations(dir string, tau int, gen uint64) error {
	matches, err := filepath.Glob(filepath.Join(dir, "tree_*.pg"))
	if err != nil {
		return err
	}
	keep := make(map[string]bool, tau)
	for t := 0; t < tau; t++ {
		name := fmt.Sprintf("tree_%02d.pg", t)
		if gen > 0 {
			name = fmt.Sprintf("tree_%02d.g%d.pg", t, gen)
		}
		keep[filepath.Join(dir, name)] = true
	}
	for _, path := range matches {
		if !keep[path] {
			if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
				return err
			}
		}
	}
	return nil
}

// Close stops the background compactor, syncs and closes the WAL, and
// releases all file handles. Safe to call more than once. Taking the
// write lock makes Close wait out in-flight searches instead of
// closing pagers under them (searches bound their own lifetime via
// context deadlines). The memtable is NOT force-compacted: its entries
// live in the WAL and replay on the next Open.
func (ix *Index) Close() error {
	// Outside the index lock: an in-flight compaction takes ix.mu for
	// its commit section.
	ix.stopCompactor()
	ix.mu.Lock()
	defer ix.mu.Unlock()
	var first error
	if ix.wal != nil {
		if err := ix.wal.Close(); err != nil && first == nil {
			first = err
		}
		ix.wal = nil
	}
	for _, pgr := range ix.treePagers {
		if pgr != nil {
			if err := pgr.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	if ix.vecPager != nil {
		if err := ix.vecPager.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// walOptions builds the WAL configuration, wiring fsync durations into
// the telemetry collector when one is attached.
func (ix *Index) walOptions() wal.Options {
	o := wal.Options{SyncInterval: ix.params.WALSyncInterval}
	if ix.tel != nil {
		o.OnSync = ix.tel.ObserveWALSync
	}
	return o
}

// Telemetry returns a point-in-time copy of the index's latency
// histograms (whole queries, per-phase breakdowns, inserts, compactions,
// WAL fsyncs). Empty when telemetry is disabled.
func (ix *Index) Telemetry() telemetry.CollectorSnapshot { return ix.tel.Snapshot() }

// Params returns the effective parameters.
func (ix *Index) Params() Params { return ix.params }

// Dim returns the indexed dimensionality ν.
func (ix *Index) Dim() int { return ix.nu }

// Count returns the number of indexed objects: the committed vector
// store plus the memtable's acknowledged-but-uncompacted inserts.
func (ix *Index) Count() uint64 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.vectors.Count() + uint64(len(ix.mem))
}

// References returns the reference vectors (not copies).
func (ix *Index) References() [][]float32 { return ix.refs }

// SizeOnDisk returns the total bytes of all index files, including the
// write-ahead log.
func (ix *Index) SizeOnDisk() int64 {
	var total int64
	for _, pgr := range ix.treePagers {
		if pgr != nil {
			total += pgr.FileSize()
		}
	}
	if ix.vecPager != nil {
		total += ix.vecPager.FileSize()
	}
	if ix.wal != nil {
		total += ix.wal.Size()
	}
	return total
}

// TreeSizeOnDisk returns bytes used by the RDB-trees only (the index
// proper, excluding the dataset vectors every method must keep).
func (ix *Index) TreeSizeOnDisk() int64 {
	var total int64
	for _, pgr := range ix.treePagers {
		if pgr != nil {
			total += pgr.FileSize()
		}
	}
	return total
}

// IOStats sums the pager counters of all files.
func (ix *Index) IOStats() pager.Stats {
	var s pager.Stats
	for _, pgr := range ix.treePagers {
		if pgr != nil {
			s.Add(pgr.Stats())
		}
	}
	if ix.vecPager != nil {
		s.Add(ix.vecPager.Stats())
	}
	return s
}

// ResetIOStats zeroes all pager counters.
func (ix *Index) ResetIOStats() {
	for _, pgr := range ix.treePagers {
		if pgr != nil {
			pgr.ResetStats()
		}
	}
	if ix.vecPager != nil {
		ix.vecPager.ResetStats()
	}
}

// Flush persists all dirty state to disk: tree and vector-store pages,
// the meta descriptor, the deletion marks, and an fsync of the WAL.
// The ingest path does not need it for durability (acknowledged writes
// are WAL-durable already); it remains the explicit writeback for
// test-path tree mutations and a convenient full-sync barrier.
func (ix *Index) Flush() error {
	ix.mu.Lock()
	for _, tr := range ix.trees {
		if tr != nil {
			if err := tr.Flush(); err != nil {
				ix.mu.Unlock()
				return err
			}
		}
	}
	if ix.vectors != nil {
		if err := ix.vectors.Flush(); err != nil {
			ix.mu.Unlock()
			return err
		}
	}
	if err := ix.writeMeta(); err != nil {
		ix.mu.Unlock()
		return err
	}
	w := ix.wal
	ix.mu.Unlock()
	if err := ix.saveDeleteSet(); err != nil {
		return err
	}
	if w != nil {
		return w.Sync()
	}
	return nil
}
