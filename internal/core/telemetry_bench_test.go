package core

import (
	"testing"
)

// BenchmarkSearchTelemetry is the A/B pair behind the telemetry
// overhead budget (<3% on the query path): the same index and query
// mix with the collector on (the default) and off. Run the two cases
// interleaved to cancel machine drift:
//
//	for i in 1 2 3; do
//	  go test -bench 'BenchmarkSearchTelemetry/on' -benchtime 2000x -run '^$' ./internal/core/
//	  go test -bench 'BenchmarkSearchTelemetry/off' -benchtime 2000x -run '^$' ./internal/core/
//	done
func BenchmarkSearchTelemetry(b *testing.B) {
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"on", false}, {"off", true}} {
		b.Run(mode.name, func(b *testing.B) {
			p := Params{Tau: 4, Omega: 8, M: 8, Alpha: 512, Gamma: 128, Seed: 1,
				DisableTelemetry: mode.disable}
			ix, _, queries := buildSmall(b, 4000, p)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ix.Search(queries[i%len(queries)], 10); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSearchBatchTelemetry is the batch-path counterpart.
func BenchmarkSearchBatchTelemetry(b *testing.B) {
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"on", false}, {"off", true}} {
		b.Run(mode.name, func(b *testing.B) {
			p := Params{Tau: 4, Omega: 8, M: 8, Alpha: 512, Gamma: 128, Seed: 1,
				DisableTelemetry: mode.disable}
			ix, ds, _ := buildSmall(b, 4000, p)
			queries := ds.PerturbedQueries(64, 0.01, 99)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ix.SearchBatch(queries, 10); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
