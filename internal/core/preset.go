package core

import "fmt"

// Preset names a first-class quality level of the filter cascade. A
// preset is nothing but a resolved option set: the serving layer maps
// the name to explicit α/γ overrides against the built parameters, so a
// request carrying a preset is bit-identical to the same request
// carrying the preset's knobs spelled out. The table is the single
// source of truth for every quality tier in the system — the adaptive
// degradation cascade (SearchOptions.Degrade) runs exactly the "fast"
// preset, and per-tenant tiers (internal/slo) name rows of this table.
type Preset string

// The named presets.
const (
	// PresetExact is the widest cascade: α quadrupled and every leaf
	// candidate refined (γ = α). The most expensive operating point; the
	// SLO tuner's job is to beat its latency while holding the target.
	PresetExact Preset = "exact"
	// PresetBalanced is the built parameters unchanged — what a request
	// with no overrides has always run.
	PresetBalanced Preset = "balanced"
	// PresetFast is the cheap cascade: α and γ shrunk to a quarter of
	// the built values (floored at 64/16 and at k). It is byte-for-byte
	// the cascade adaptive degradation switches unpinned queries to.
	PresetFast Preset = "fast"
	// PresetAuto delegates the choice to the serving layer: the SLO
	// tuner's current operating point when a tuner is running, the
	// built parameters otherwise, and the fast preset under overload
	// pressure. Core cannot resolve it — Options returns an error.
	PresetAuto Preset = "auto"
)

// Presets lists the named presets in quality order, widest first.
func Presets() []Preset {
	return []Preset{PresetExact, PresetBalanced, PresetFast, PresetAuto}
}

// ParsePreset validates a preset name from a request or a config file.
func ParsePreset(s string) (Preset, error) {
	switch p := Preset(s); p {
	case PresetExact, PresetBalanced, PresetFast, PresetAuto:
		return p, nil
	}
	return "", fmt.Errorf("%w: unknown preset %q (want exact, balanced, fast, or auto)", ErrBadOptions, s)
}

// exactFactor widens α for the exact preset; γ = α refines everything.
const exactFactor = 4

// fastCascade is THE cheap cascade: α and γ at a quarter of the built
// values, floored (64 leaf candidates, 16 refined) so a small built
// index is not strangled, clamped at k so the query can still return k
// results, and never widened past the built values. Both the "fast"
// preset and the adaptive-degradation path resolve through this one
// function — the clamp constants exist exactly once.
func fastCascade(p Params, k int) (alpha, gamma int) {
	alpha = min(p.Alpha, max(p.Alpha/4, 64))
	alpha = max(alpha, k)
	gamma = min(p.Gamma, max(p.Gamma/4, 16))
	gamma = max(gamma, k)
	gamma = min(gamma, alpha)
	return alpha, gamma
}

// Options resolves the preset against the built parameters for a query
// asking k neighbours, returning the explicit option set the preset
// stands for. The returned options go through exactly the same
// validation as hand-written knobs, which is what makes a preset
// request bit-identical to its expansion. PresetAuto has no fixed
// expansion (the serving layer resolves it) and returns ErrBadOptions.
func (p Preset) Options(built Params, k int) (SearchOptions, error) {
	if k < 1 {
		return SearchOptions{}, badOptions("k must be >= 1, got %d", k)
	}
	switch p {
	case PresetBalanced:
		return SearchOptions{}, nil
	case PresetFast:
		a, g := fastCascade(built, k)
		return SearchOptions{Alpha: a, Gamma: g}, nil
	case PresetExact:
		a := min(built.Alpha*exactFactor, maxKnob)
		a = max(a, k)
		return SearchOptions{Alpha: a, Gamma: a}, nil
	case PresetAuto:
		return SearchOptions{}, badOptions("preset %q is resolved by the serving layer, not the index", p)
	}
	return SearchOptions{}, badOptions("unknown preset %q", string(p))
}
