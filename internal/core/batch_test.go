package core

import (
	"path/filepath"
	"testing"

	"github.com/hd-index/hdindex/internal/data"
)

func TestSearchBatchMatchesSequential(t *testing.T) {
	ds := data.Generate(data.Config{N: 1200, Dim: 32, Clusters: 5, Lo: 0, Hi: 1, Seed: 101})
	queries := ds.PerturbedQueries(17, 0.01, 102)
	dir := filepath.Join(t.TempDir(), "ix")
	ix, err := Build(dir, ds.Vectors, Params{Tau: 4, Omega: 8, M: 4, Alpha: 256, Gamma: 64, Seed: 103})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()

	batch, err := ix.SearchBatch(queries, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(queries) {
		t.Fatalf("batch returned %d result sets", len(batch))
	}
	for qi, q := range queries {
		seq, err := ix.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		for i := range seq {
			if batch[qi][i] != seq[i] {
				t.Fatalf("query %d result %d: batch %+v vs sequential %+v",
					qi, i, batch[qi][i], seq[i])
			}
		}
	}
}

func TestSearchBatchEmpty(t *testing.T) {
	ds := data.Generate(data.Config{N: 200, Dim: 16, Lo: 0, Hi: 1, Seed: 104})
	dir := filepath.Join(t.TempDir(), "ix")
	ix, err := Build(dir, ds.Vectors, Params{Tau: 2, Omega: 8, M: 2, Alpha: 64, Gamma: 16, Seed: 105})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	out, err := ix.SearchBatch(nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatal("empty batch must return empty results")
	}
	// A bad query inside a batch surfaces as an error.
	if _, err := ix.SearchBatch([][]float32{{1}}, 5); err == nil {
		t.Fatal("bad query in batch must fail")
	}
}
