package core

import (
	"bytes"
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"testing"

	"github.com/hd-index/hdindex/internal/pager"
	"github.com/hd-index/hdindex/internal/rdbtree"
)

// sortRecords is the seed build's comparison sort, made deterministic
// under key ties by falling back to id order — the same tie rule the
// stable radix sort inherits from an identity input permutation.
func sortRecords(records []rdbtree.Record) {
	sort.Slice(records, func(i, j int) bool {
		if c := bytes.Compare(records[i].Key, records[j].Key); c != 0 {
			return c < 0
		}
		return records[i].ID < records[j].ID
	})
}

// buildReferenceTree reconstructs tree t of ix the way the seed
// implementation did — per-record Encode, Record structs, comparison
// sort, record bulk load — into its own pager file, and returns that
// file's bytes.
func buildReferenceTree(t *testing.T, ix *Index, tr int, vectors [][]float32, rdist []float32, path string) []byte {
	t.Helper()
	p := ix.params
	q := ix.quants[tr]
	curve := ix.curves[tr]
	start := tr * ix.eta
	m := p.M

	records := make([]rdbtree.Record, len(vectors))
	coords := make([]uint32, ix.eta)
	for id, v := range vectors {
		q.Coords(coords, v[start:start+ix.eta])
		records[id] = rdbtree.Record{
			Key:      curve.Encode(nil, coords),
			ID:       uint64(id),
			RefDists: rdist[id*m : (id+1)*m],
		}
	}
	sortRecords(records)

	pgr, err := pager.Open(path, pager.Options{
		Create: true, PageSize: p.PageSize, PoolPages: p.PoolPages, DisableLRU: p.DisableCache,
	})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := rdbtree.Create(pgr, rdbtree.Config{Eta: ix.eta, Omega: p.Omega, M: p.M})
	if err != nil {
		pgr.Close()
		t.Fatal(err)
	}
	if err := tree.BulkLoad(records); err != nil {
		pgr.Close()
		t.Fatal(err)
	}
	if err := tree.Flush(); err != nil {
		pgr.Close()
		t.Fatal(err)
	}
	pgr.Close()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestBuildEquivalentToComparisonSortPath is the PR's core equivalence
// claim: the flat-arena + radix-sort build writes bit-identical tree
// files to the seed per-record comparison-sort path, for a fixed seed —
// and therefore returns bit-identical search results.
func TestBuildEquivalentToComparisonSortPath(t *testing.T) {
	vectors := testVectorsFlatTie(4000, 32, 9)
	p := Params{Tau: 8, Omega: 8, M: 6, Alpha: 256, Seed: 7}
	dir := t.TempDir()
	ix, err := Build(dir, vectors, p)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()

	rdist, err := computeRefDists(context.Background(), vectors, ix.refs, 1)
	if err != nil {
		t.Fatal(err)
	}
	refDir := t.TempDir()
	for tr := 0; tr < ix.params.Tau; tr++ {
		want := buildReferenceTree(t, ix, tr, vectors, rdist, filepath.Join(refDir, "ref.pg"))
		got, err := os.ReadFile(ix.treePath(tr))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("tree %d: arena build differs from comparison-sort reference (%d vs %d bytes)", tr, len(got), len(want))
		}
	}

	// Belt and braces: search through the real index equals search over
	// an index whose trees are the reference files.
	refIxDir := t.TempDir()
	copyDir(t, dir, refIxDir)
	for tr := 0; tr < ix.params.Tau; tr++ {
		b := buildReferenceTree(t, ix, tr, vectors, rdist, filepath.Join(refDir, "ref.pg"))
		if err := os.WriteFile(filepath.Join(refIxDir, filepath.Base(ix.treePath(tr))), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	refIx, err := Open(refIxDir, OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer refIx.Close()
	rng := rand.New(rand.NewSource(99))
	for qi := 0; qi < 20; qi++ {
		q := vectors[rng.Intn(len(vectors))]
		a, err := ix.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		b, err := refIx.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("query %d: %d vs %d results", qi, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("query %d result %d: %+v vs %+v", qi, i, a[i], b[i])
			}
		}
	}
}

// testVectorsFlatTie generates vectors over a coarse integer grid so
// Hilbert-key ties actually occur — the case where only a *stable*
// sort keeps the build deterministic.
func testVectorsFlatTie(n, dim int, seed int64) [][]float32 {
	rng := rand.New(rand.NewSource(seed))
	vs := make([][]float32, n)
	for i := range vs {
		v := make([]float32, dim)
		for d := range v {
			v[d] = float32(rng.Intn(8)) // 8 distinct values/dim: many collisions
		}
		vs[i] = v
	}
	return vs
}

func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		b, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// hashDirFiles returns every file's bytes keyed by name, for
// bit-identical comparisons.
func dirFiles(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		out[rel] = b
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func assertSameFiles(t *testing.T, a, b map[string][]byte, skip func(string) bool) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("file sets differ: %d vs %d files", len(a), len(b))
	}
	for name, ab := range a {
		if skip != nil && skip(name) {
			continue
		}
		bb, ok := b[name]
		if !ok {
			t.Fatalf("file %s missing from second build", name)
		}
		if !bytes.Equal(ab, bb) {
			t.Fatalf("file %s differs between builds (%d vs %d bytes)", name, len(ab), len(bb))
		}
	}
}

// TestBuildDeterministicAcrossGOMAXPROCS pins core-level build
// determinism: one worker vs eight produce bit-identical index files
// and search results. Chunked encoding writes at fixed offsets and the
// radix sort is stable, so parallelism must not leak into the output.
func TestBuildDeterministicAcrossGOMAXPROCS(t *testing.T) {
	vectors := testVectorsFlatTie(3000, 32, 10)
	p := Params{Tau: 8, Omega: 8, M: 5, Alpha: 128, Seed: 3}

	build := func(dir string, procs int) {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		ix, err := Build(dir, vectors, p)
		if err != nil {
			t.Fatal(err)
		}
		ix.Close()
	}
	dir1, dir8 := t.TempDir(), t.TempDir()
	build(dir1, 1)
	build(dir8, 8)
	assertSameFiles(t, dirFiles(t, dir1), dirFiles(t, dir8), nil)

	// And explicit BuildWorkers budgets agree too (1 vs 8), since the
	// budget is excluded from meta.json.
	p1, p8 := p, p
	p1.BuildWorkers, p8.BuildWorkers = 1, 8
	dw1, dw8 := t.TempDir(), t.TempDir()
	ix1, err := Build(dw1, vectors, p1)
	if err != nil {
		t.Fatal(err)
	}
	ix1.Close()
	ix8, err := Build(dw8, vectors, p8)
	if err != nil {
		t.Fatal(err)
	}
	ix8.Close()
	assertSameFiles(t, dirFiles(t, dw1), dirFiles(t, dw8), nil)
}

// TestBuildContextCancelled checks the cancellation contract: the build
// returns ctx's error and leaves a directory Open rejects (no commit
// point), not a half-index.
func TestBuildContextCancelled(t *testing.T) {
	vectors := testVectorsFlatTie(2000, 32, 11)
	dir := t.TempDir()
	// Seed the directory with a complete index first, so the test also
	// proves a cancelled rebuild invalidates the old layout rather than
	// leaving it half-served.
	ix, err := Build(dir, vectors, Params{Tau: 8, Omega: 8, M: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ix.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the build begins
	if _, err := BuildContext(ctx, dir, vectors, Params{Tau: 8, Omega: 8, M: 4, Seed: 1}); err == nil {
		t.Fatal("cancelled build must fail")
	}
	if _, err := Open(dir, OpenOptions{}); err == nil {
		t.Fatal("Open must reject the directory a cancelled build left behind")
	}
}

// TestBuildStatsPopulated checks the Info surface: a fresh build
// reports its phase breakdown, an opened index reports nil.
func TestBuildStatsPopulated(t *testing.T) {
	vectors := testVectorsFlatTie(1000, 16, 12)
	dir := t.TempDir()
	ix, err := Build(dir, vectors, Params{Tau: 4, Omega: 8, M: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	bs := ix.BuildStats()
	if bs == nil {
		t.Fatal("fresh build must report BuildStats")
	}
	if bs.TotalMS <= 0 || bs.Allocs == 0 || bs.PeakHeapBytes == 0 {
		t.Fatalf("implausible stats: %+v", bs)
	}
	if bs.EncodeMS < 0 || bs.SortMS < 0 || bs.BulkLoadMS < 0 || bs.RefDistsMS < 0 {
		t.Fatalf("negative phase time: %+v", bs)
	}
	ix.Close()

	re, err := Open(dir, OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.BuildStats() != nil {
		t.Fatal("opened index must not report BuildStats")
	}
}
