package core

import (
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"github.com/hd-index/hdindex/internal/data"
	"github.com/hd-index/hdindex/internal/metrics"
	"github.com/hd-index/hdindex/internal/vecmath"
)

func TestChooseTauReproducesPaper(t *testing.T) {
	cases := []struct{ nu, preferred, want int }{
		{128, 8, 8},    // SIFT, Yorck
		{192, 8, 8},    // Audio
		{512, 16, 16},  // SUN
		{100, 8, 10},   // Glove (§5.2.4)
		{1369, 16, 37}, // Enron (§5.2.4)
	}
	for _, c := range cases {
		if got := ChooseTau(c.nu, c.preferred); got != c.want {
			t.Errorf("ChooseTau(%d,%d) = %d, want %d", c.nu, c.preferred, got, c.want)
		}
	}
}

func TestParamDefaults(t *testing.T) {
	var p Params
	p.SetDefaults(128, 50000)
	if p.Tau != 8 || p.M != 10 || p.Alpha != 4096 || p.Gamma != 1024 {
		t.Errorf("defaults = %+v", p)
	}
	if p.Beta != p.Alpha {
		t.Errorf("beta default must equal alpha, got %d", p.Beta)
	}
	var big Params
	big.SetDefaults(128, 2_000_000)
	if big.Alpha != 8192 {
		t.Errorf("large-dataset alpha = %d, want 8192", big.Alpha)
	}
	var hd Params
	hd.SetDefaults(512, 50000)
	if hd.Tau != 16 {
		t.Errorf("high-dim tau = %d, want 16", hd.Tau)
	}
}

func TestParamValidate(t *testing.T) {
	mk := func(mut func(*Params)) error {
		p := Params{}
		p.SetDefaults(128, 1000)
		mut(&p)
		return p.Validate(128)
	}
	if err := mk(func(p *Params) {}); err != nil {
		t.Errorf("default params invalid: %v", err)
	}
	if mk(func(p *Params) { p.Tau = 7 }) == nil {
		t.Error("non-divisor tau must fail")
	}
	if mk(func(p *Params) { p.Omega = 0 }) == nil {
		t.Error("omega=0 must fail")
	}
	if mk(func(p *Params) { p.Gamma = p.Alpha * 2 }) == nil {
		t.Error("widening cascade must fail")
	}
	if mk(func(p *Params) { p.Curve = "peano" }) == nil {
		t.Error("unknown curve must fail")
	}
}

// buildSmall builds an index over a small clustered dataset and returns
// everything needed for querying.
func buildSmall(t testing.TB, n int, p Params) (*Index, *data.Dataset, [][]float32) {
	t.Helper()
	ds := data.Generate(data.Config{Name: "t", N: n, Dim: 32, Clusters: 6, Lo: 0, Hi: 1, Seed: 42})
	queries := ds.PerturbedQueries(10, 0.01, 43)
	dir := filepath.Join(t.TempDir(), "ix")
	ix, err := Build(dir, ds.Vectors, p)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ix.Close() })
	return ix, ds, queries
}

func TestBuildAndSearchQuality(t *testing.T) {
	p := Params{Tau: 4, Omega: 8, M: 5, Alpha: 512, Gamma: 128, Seed: 1}
	ix, ds, queries := buildSmall(t, 2000, p)
	if ix.Count() != 2000 {
		t.Fatalf("Count = %d", ix.Count())
	}
	truthIDs, truthDists := data.GroundTruth(ds.Vectors, queries, 10)
	var got [][]uint64
	var ratioSum float64
	for qi, q := range queries {
		res, err := ix.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != 10 {
			t.Fatalf("returned %d results", len(res))
		}
		ids := make([]uint64, len(res))
		dists := make([]float64, len(res))
		for i, r := range res {
			ids[i] = r.ID
			dists[i] = r.Dist
		}
		got = append(got, ids)
		ratioSum += metrics.Ratio(dists, truthDists[qi])
		// Results must be sorted by distance.
		for i := 1; i < len(res); i++ {
			if res[i].Dist < res[i-1].Dist {
				t.Fatal("results not sorted")
			}
		}
		// Distances must be true Euclidean distances.
		v, err := ix.vectors.Get(res[0].ID, nil)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res[0].Dist-vecmath.Dist(q, v)) > 1e-5 {
			t.Fatal("reported distance is not the true distance")
		}
	}
	m := metrics.MAP(got, truthIDs, 10)
	if m < 0.6 {
		t.Errorf("MAP@10 = %v; expected >= 0.6 on easy clustered data (alpha=512/n=2000)", m)
	}
	if r := ratioSum / float64(len(queries)); r > 1.3 {
		t.Errorf("mean ratio = %v; too high", r)
	}
}

// With alpha = n the candidate set covers everything reachable, and on a
// single partition the scan is exhaustive: results must be exact.
func TestExhaustiveAlphaIsExact(t *testing.T) {
	p := Params{Tau: 1, Omega: 8, M: 3, Alpha: 500, Beta: 500, Gamma: 500, Seed: 2}
	ds := data.Generate(data.Config{N: 500, Dim: 16, Lo: 0, Hi: 1, Seed: 7})
	queries := ds.PerturbedQueries(5, 0.02, 8)
	dir := filepath.Join(t.TempDir(), "ix")
	ix, err := Build(dir, ds.Vectors, p)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	truthIDs, _ := data.GroundTruth(ds.Vectors, queries, 5)
	for qi, q := range queries {
		res, err := ix.Search(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range res {
			if r.ID != truthIDs[qi][i] {
				t.Fatalf("query %d rank %d: got %d, want %d", qi, i, r.ID, truthIDs[qi][i])
			}
		}
	}
}

func TestPtolemaicAtLeastAsGoodAsTriangular(t *testing.T) {
	ds := data.Generate(data.Config{N: 3000, Dim: 32, Clusters: 8, Lo: 0, Hi: 1, Seed: 11})
	queries := ds.PerturbedQueries(15, 0.02, 12)
	truthIDs, _ := data.GroundTruth(ds.Vectors, queries, 10)

	run := func(usePto bool) float64 {
		p := Params{Tau: 4, Omega: 8, M: 8, Alpha: 256, Gamma: 64, UsePtolemaic: usePto, Seed: 13}
		if usePto {
			p.Beta = 256
		}
		dir := filepath.Join(t.TempDir(), "ix")
		ix, err := Build(dir, ds.Vectors, p)
		if err != nil {
			t.Fatal(err)
		}
		defer ix.Close()
		var got [][]uint64
		for _, q := range queries {
			res, err := ix.Search(q, 10)
			if err != nil {
				t.Fatal(err)
			}
			ids := make([]uint64, len(res))
			for i, r := range res {
				ids[i] = r.ID
			}
			got = append(got, ids)
		}
		return metrics.MAP(got, truthIDs, 10)
	}
	tri := run(false)
	pto := run(true)
	// §5.2.5: Ptolemaic filtering gives equal or better MAP for the same
	// alpha/gamma. Allow a whisker of noise.
	if pto+0.05 < tri {
		t.Errorf("Ptolemaic MAP %v should not be below triangular MAP %v", pto, tri)
	}
}

// The filters only ever drop candidates that a lower bound already
// excludes... but lower bounds are lower bounds: check validity directly.
func TestLowerBoundsNeverExceedTrueDistance(t *testing.T) {
	ds := data.Generate(data.Config{N: 300, Dim: 16, Lo: 0, Hi: 1, Seed: 21})
	p := Params{Tau: 2, Omega: 8, M: 6, Alpha: 64, Gamma: 16, Seed: 22}
	dir := filepath.Join(t.TempDir(), "ix")
	ix, err := Build(dir, ds.Vectors, p)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 50; trial++ {
		q := ds.Vectors[rng.Intn(len(ds.Vectors))]
		o := ds.Vectors[rng.Intn(len(ds.Vectors))]
		qdist := make([]float64, p.M)
		odist := make([]float32, p.M)
		for r, rv := range ix.References() {
			qdist[r] = vecmath.Dist(q, rv)
			odist[r] = float32(vecmath.Dist(o, rv))
		}
		trueD := vecmath.Dist(q, o)
		if lb := triangularLB(qdist, odist); lb > trueD+1e-4 {
			t.Fatalf("triangular LB %v exceeds true %v", lb, trueD)
		}
		if lb := ix.ptolemaicLB(qdist, odist); lb > trueD+1e-4 {
			t.Fatalf("Ptolemaic LB %v exceeds true %v", lb, trueD)
		}
	}
}

func TestOpenRoundTrip(t *testing.T) {
	ds := data.Generate(data.Config{N: 800, Dim: 32, Lo: 0, Hi: 1, Seed: 31})
	queries := ds.PerturbedQueries(5, 0.02, 32)
	dir := filepath.Join(t.TempDir(), "ix")
	p := Params{Tau: 4, Omega: 8, M: 4, Alpha: 128, Gamma: 32, Seed: 33}
	ix, err := Build(dir, ds.Vectors, p)
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]Result, len(queries))
	for i, q := range queries {
		want[i], err = ix.Search(q, 5)
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}

	ix2, err := Open(dir, OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer ix2.Close()
	if ix2.Count() != 800 || ix2.Dim() != 32 {
		t.Fatalf("reopened count=%d dim=%d", ix2.Count(), ix2.Dim())
	}
	for i, q := range queries {
		got, err := ix2.Search(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		for j := range got {
			if got[j] != want[i][j] {
				t.Fatalf("query %d result %d differs after reopen", i, j)
			}
		}
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	ds := data.Generate(data.Config{N: 1000, Dim: 32, Lo: 0, Hi: 1, Seed: 41})
	queries := ds.PerturbedQueries(10, 0.02, 42)
	dir := filepath.Join(t.TempDir(), "ix")
	p := Params{Tau: 4, Omega: 8, M: 4, Alpha: 128, Gamma: 32, Seed: 43}
	ix, err := Build(dir, ds.Vectors, p)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	for _, q := range queries {
		ix.params.Parallel = false
		seq, err := ix.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		ix.params.Parallel = true
		par, err := ix.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		for i := range seq {
			if seq[i] != par[i] {
				t.Fatal("parallel result differs from sequential")
			}
		}
	}
}

func TestInsertAfterBuild(t *testing.T) {
	ds := data.Generate(data.Config{N: 500, Dim: 16, Lo: 0, Hi: 1, Seed: 51})
	dir := filepath.Join(t.TempDir(), "ix")
	p := Params{Tau: 2, Omega: 8, M: 3, Alpha: 64, Gamma: 16, Seed: 52}
	ix, err := Build(dir, ds.Vectors, p)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	// Insert a distinctive new point and query right on top of it.
	novel := make([]float32, 16)
	for d := range novel {
		novel[d] = 0.95
	}
	id, err := ix.Insert(novel)
	if err != nil {
		t.Fatal(err)
	}
	if id != 500 {
		t.Fatalf("inserted id = %d, want 500", id)
	}
	res, err := ix.Search(novel, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].ID != id || res[0].Dist > 1e-6 {
		t.Fatalf("search after insert = %+v", res)
	}
}

func TestSearchStats(t *testing.T) {
	p := Params{Tau: 4, Omega: 8, M: 4, Alpha: 128, Gamma: 32, Seed: 61}
	ix, _, queries := buildSmall(t, 1000, p)
	_, stats, err := ix.SearchWithStats(queries[0], 10)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TreeEntries != 4*128 {
		t.Errorf("TreeEntries = %d, want %d", stats.TreeEntries, 4*128)
	}
	if stats.Candidates < 32 || stats.Candidates > 4*32 {
		t.Errorf("kappa = %d outside [gamma, tau*gamma]", stats.Candidates)
	}
	if stats.ExactDistances != stats.Candidates {
		t.Error("each candidate must be refined exactly once")
	}
}

func TestSearchValidation(t *testing.T) {
	p := Params{Tau: 2, Omega: 8, M: 3, Alpha: 64, Gamma: 16, Seed: 71}
	ix, _, queries := buildSmall(t, 300, p)
	if _, err := ix.Search(queries[0][:5], 3); err == nil {
		t.Error("wrong query dims must fail")
	}
	if _, err := ix.Search(queries[0], 0); err == nil {
		t.Error("k=0 must fail")
	}
}

func TestZOrderCurveWorks(t *testing.T) {
	ds := data.Generate(data.Config{N: 1000, Dim: 32, Clusters: 6, Lo: 0, Hi: 1, Seed: 81})
	queries := ds.PerturbedQueries(10, 0.01, 82)
	dir := filepath.Join(t.TempDir(), "ix")
	p := Params{Tau: 4, Omega: 8, M: 4, Alpha: 256, Gamma: 64, Curve: CurveZOrder, Seed: 83}
	ix, err := Build(dir, ds.Vectors, p)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	truthIDs, _ := data.GroundTruth(ds.Vectors, queries, 10)
	var got [][]uint64
	for _, q := range queries {
		res, err := ix.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		ids := make([]uint64, len(res))
		for i, r := range res {
			ids[i] = r.ID
		}
		got = append(got, ids)
	}
	if m := metrics.MAP(got, truthIDs, 10); m < 0.3 {
		t.Errorf("Z-order MAP = %v, suspiciously low even for Z-order", m)
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(filepath.Join(t.TempDir(), "x"), nil, Params{}); err == nil {
		t.Error("empty dataset must fail")
	}
	vecs := [][]float32{{1, 2}, {3, 4}}
	if _, err := Build(filepath.Join(t.TempDir(), "y"), vecs, Params{M: 10, Tau: 1, Omega: 8, Alpha: 1, Beta: 1, Gamma: 1}); err == nil {
		t.Error("m > n must fail")
	}
}
