package core

import (
	"context"
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"github.com/hd-index/hdindex/internal/topk"
	"github.com/hd-index/hdindex/internal/vecmath"
)

// naiveSearch is the pre-optimization refinement path, kept as the
// reference the hot path is proven against: map-based candidate dedup
// in tree order (no page-ordered sort), a full copying vector fetch per
// candidate, and an unbounded DistSq. The optimized path — epoch-array
// dedup, id-sorted zero-copy fetch, early-abandoning kernel — must
// return bit-identical Results and the same candidate count.
func naiveSearch(t *testing.T, ix *Index, q []float32, k int) ([]Result, int) {
	t.Helper()
	plan, err := ix.planFor(k, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	qdist := make([]float64, ix.params.M)
	for r, rv := range ix.refs {
		qdist[r] = vecmath.Dist(q, rv)
	}
	seen := make(map[uint64]struct{})
	var candidates []uint64
	for tr := 0; tr < ix.params.Tau; tr++ {
		ids, _, err := ix.searchTree(context.Background(), tr, q, qdist, nil, plan)
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range ids {
			if _, ok := seen[id]; !ok {
				seen[id] = struct{}{}
				candidates = append(candidates, id)
			}
		}
	}
	best := topk.New(k)
	for _, id := range candidates {
		if ix.deleted.has(id) {
			continue
		}
		v, err := ix.vectors.Get(id, nil)
		if err != nil {
			t.Fatal(err)
		}
		best.Push(id, vecmath.DistSq(q, v))
	}
	items := best.Items()
	out := make([]Result, len(items))
	for i, it := range items {
		out[i] = Result{ID: it.ID, Dist: math.Sqrt(it.Dist)}
	}
	return out, len(candidates)
}

func assertSameResults(t *testing.T, q int, got []Result, st *QueryStats, want []Result, wantCand int) {
	t.Helper()
	if st.Candidates != wantCand {
		t.Fatalf("query %d: optimized path saw %d candidates, naive %d", q, st.Candidates, wantCand)
	}
	if len(got) != len(want) {
		t.Fatalf("query %d: optimized returned %d results, naive %d", q, len(got), len(want))
	}
	for i := range want {
		if got[i].ID != want[i].ID || math.Float64bits(got[i].Dist) != math.Float64bits(want[i].Dist) {
			t.Fatalf("query %d rank %d: optimized %+v != naive %+v", q, i, got[i], want[i])
		}
	}
}

// Random clustered data: the common case.
func TestRefineEquivalenceRandom(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		p := Params{Tau: 4, Omega: 8, M: 6, Alpha: 256, Gamma: 64, Parallel: parallel, Seed: 7}
		ix, ds, _ := buildSmall(t, 2000, p)
		queries := ds.PerturbedQueries(25, 0.02, 11)
		for _, k := range []int{1, 5, 20} {
			for qi, q := range queries {
				want, wantCand := naiveSearch(t, ix, q, k)
				got, st, err := ix.SearchWithStats(q, k)
				if err != nil {
					t.Fatal(err)
				}
				assertSameResults(t, qi, got, st, want, wantCand)
			}
		}
		ix.Close()
	}
}

// Adversarial ties: every vector duplicated many times, queries sitting
// exactly on data points, so the top-k boundary is crowded with equal
// distances. The (Dist, ID) ordering of the top-k list is what makes
// the page-ordered (id-sorted) push order return the same set as the
// naive tree-order pushes.
func TestRefineEquivalenceAdversarialTies(t *testing.T) {
	const distinct, copies, dim = 30, 12, 16
	rng := rand.New(rand.NewSource(3))
	base := make([][]float32, distinct)
	for i := range base {
		v := make([]float32, dim)
		for d := range v {
			v[d] = rng.Float32()
		}
		base[i] = v
	}
	vectors := make([][]float32, 0, distinct*copies)
	for c := 0; c < copies; c++ {
		for _, v := range base {
			vectors = append(vectors, v) // shared backing is fine; Build copies into the store
		}
	}
	p := Params{Tau: 4, Omega: 8, M: 4, Alpha: 128, Gamma: 64, Seed: 5}
	ix, err := Build(filepath.Join(t.TempDir(), "ties"), vectors, p)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()

	for qi, q := range base {
		for _, k := range []int{1, copies - 1, copies + 3} {
			want, wantCand := naiveSearch(t, ix, q, k)
			got, st, err := ix.SearchWithStats(q, k)
			if err != nil {
				t.Fatal(err)
			}
			assertSameResults(t, qi, got, st, want, wantCand)
		}
	}
}

// Deletions must be skipped identically on both paths.
func TestRefineEquivalenceWithDeletes(t *testing.T) {
	p := Params{Tau: 4, Omega: 8, M: 4, Alpha: 256, Gamma: 64, Seed: 9}
	ix, ds, _ := buildSmall(t, 1500, p)
	defer ix.Close()
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 200; i++ {
		if err := ix.Delete(uint64(rng.Intn(1500))); err != nil {
			t.Fatal(err)
		}
	}
	queries := ds.PerturbedQueries(15, 0.02, 31)
	for qi, q := range queries {
		want, wantCand := naiveSearch(t, ix, q, 10)
		got, st, err := ix.SearchWithStats(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResults(t, qi, got, st, want, wantCand)
	}
}

// Enron-shaped records — vectors that straddle page boundaries — must
// take GetView's copying fallback and still answer identically. dim 32
// gives 128-byte records; a 192-byte page makes every third record
// span, mixing both fetch paths within single queries.
func TestRefineEquivalenceSpanningRecords(t *testing.T) {
	p := Params{Tau: 4, Omega: 8, M: 4, Alpha: 128, Gamma: 32, PageSize: 192, Seed: 13}
	ix, ds, _ := buildSmall(t, 800, p)
	defer ix.Close()
	queries := ds.PerturbedQueries(10, 0.02, 17)
	for qi, q := range queries {
		want, wantCand := naiveSearch(t, ix, q, 8)
		got, st, err := ix.SearchWithStats(q, 8)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResults(t, qi, got, st, want, wantCand)
	}
}
