package core

import (
	"context"
	"fmt"
	"math"
	"slices"
	"sync"
	"time"

	"github.com/hd-index/hdindex/internal/telemetry"
	"github.com/hd-index/hdindex/internal/topk"
	"github.com/hd-index/hdindex/internal/vecmath"
)

// Result is one returned neighbour.
type Result struct {
	ID   uint64
	Dist float64
}

// QueryStats reports the work one query did, plus the effective filter
// cascade it ran with — with per-query overrides (SearchOptions) the
// knobs are no longer implied by the built Params, so the stats echo
// them back.
type QueryStats struct {
	Candidates  int // κ = |C|, distinct candidate ids (before the deleted-mark skip)
	TreeEntries int // total α entries fetched across trees
	// Alpha/Beta/Gamma/Ptolemaic are the resolved cascade this query
	// ran with: the built defaults unless overridden per query. On a
	// sharded layout every shard runs the same cascade, so the
	// aggregated stats carry it unchanged.
	Alpha, Beta, Gamma int
	Ptolemaic          bool
	// Degraded reports that this query ran the cheap cascade: the
	// serving layer requested degradation (SearchOptions.Degrade) and an
	// unset knob actually shrank. False when the request pinned its own
	// knobs or the built cascade was already at the degraded floor.
	Degraded bool
	// PageReads is the delta of the index-wide pager counters across
	// this query: exact when queries run one at a time (the paper's
	// measurement protocol), best-effort under concurrent searches,
	// whose reads land in whichever windows overlap them.
	PageReads uint64
	// PageHits/PageMisses split the buffer-pool traffic over the same
	// window (same best-effort caveat), exposing the cache behaviour of
	// the page-ordered candidate fetch.
	PageHits   uint64
	PageMisses uint64
	// ExactDistances counts candidate distance evaluations. Early
	// abandonment may cut an evaluation short once its partial sum
	// clears the current top-k bound, but the candidate still counts:
	// the figure tracks the paper's κ, not FLOPs.
	ExactDistances int
	// MemtableScanned counts the acknowledged-but-uncompacted inserts
	// this query brute-forced (exact, early-abandoning distances) and
	// merged into the top-k — the live-ingest visibility path. 0 when
	// the memtable is empty, which is the steady state between write
	// bursts.
	MemtableScanned int
	// Phases attributes the query's wall time to its pipeline stages
	// (tree walk, candidate sort, refinement, memtable scan, top-k
	// merge), in nanoseconds. All zero when telemetry is disabled. A
	// sharded query sums the per-shard phase times, so the total can
	// exceed wall time when shards run concurrently — it measures work,
	// not latency.
	Phases telemetry.PhaseNS
}

// refineCheckEvery is how many exact refinements happen between context
// checks: frequent enough that a cancelled query stops within a few page
// reads, rare enough to keep the check off the profile.
const refineCheckEvery = 64

// Search answers a kANN query (Algorithm 2).
func (ix *Index) Search(q []float32, k int) ([]Result, error) {
	res, _, err := ix.Query(context.Background(), q, k, SearchOptions{})
	return res, err
}

// SearchContext is Search honouring ctx: the query returns early with
// ctx.Err() on cancellation or deadline expiry.
func (ix *Index) SearchContext(ctx context.Context, q []float32, k int) ([]Result, error) {
	res, _, err := ix.Query(ctx, q, k, SearchOptions{})
	return res, err
}

// SearchWithStats is Search plus per-query work counters.
func (ix *Index) SearchWithStats(q []float32, k int) ([]Result, *QueryStats, error) {
	return ix.Query(context.Background(), q, k, SearchOptions{})
}

// SearchWithStatsContext is SearchContext plus per-query work counters.
func (ix *Index) SearchWithStatsContext(ctx context.Context, q []float32, k int) ([]Result, *QueryStats, error) {
	return ix.Query(ctx, q, k, SearchOptions{})
}

// Query is the full query entry point: Algorithm 2 with per-query
// filter-cascade overrides, work counters, and cooperative
// cancellation. Options are resolved against the built Params and
// validated once, before any tree is touched; the zero SearchOptions
// runs exactly the built defaults, bit-identical to the legacy Search*
// methods. The context is checked between pipeline stages (per tree
// when sequential) and every refineCheckEvery candidate refinements.
func (ix *Index) Query(ctx context.Context, q []float32, k int, o SearchOptions) ([]Result, *QueryStats, error) {
	if len(q) != ix.nu {
		return nil, nil, fmt.Errorf("%w: query has %d dims, index has %d", ErrDimMismatch, len(q), ix.nu)
	}
	plan, err := ix.planFor(k, o)
	if err != nil {
		return nil, nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}

	// Telemetry: the whole-query histogram times from here (including
	// any wait for the index lock); the span attributes post-lock time
	// to pipeline phases. Both collapse to no-ops when disabled.
	telOn := ix.tel.Enabled()
	var telStart time.Time
	if telOn {
		telStart = time.Now()
	}

	// Searches run concurrently with each other but not with writers
	// (Insert mutates the trees and the vector store in place).
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	span := telemetry.StartSpan(telOn)

	p := ix.params
	ioBefore := ix.IOStats()
	sc := ix.getSearchScratch()
	defer putSearchScratch(sc)

	// Distances from q to the m reference objects (lines handled before
	// the loop in Algorithm 2; O(m·ν)).
	qdist := sc.qdist
	for r, rv := range ix.refs {
		qdist[r] = vecmath.Dist(q, rv)
	}

	// Per-tree candidate retrieval and filtering (lines 1-10).
	run := func(t int) {
		sc.perTree[t], sc.fetched[t], sc.errs[t] = ix.searchTree(ctx, t, q, qdist, sc.treeIDs[t][:0], plan)
	}
	if p.Parallel && p.Tau > 1 {
		var wg sync.WaitGroup
		for t := 0; t < p.Tau; t++ {
			wg.Add(1)
			go func(t int) {
				defer wg.Done()
				run(t)
			}(t)
		}
		wg.Wait()
	} else {
		for t := 0; t < p.Tau; t++ {
			if err := ctx.Err(); err != nil {
				return nil, nil, err
			}
			run(t)
		}
	}
	for _, err := range sc.errs {
		if err != nil {
			return nil, nil, err
		}
	}
	span.Mark(telemetry.PhaseTreeWalk)

	// Union of candidates (line 11): γ <= κ <= τ·γ, deduplicated by
	// stamping the dense epoch array — no map operations, no clearing.
	candidates := sc.candidates
	for _, ids := range sc.perTree {
		for _, id := range ids {
			if !sc.markSeen(id) {
				candidates = append(candidates, id)
			}
		}
	}
	sc.candidates = candidates // keep the grown buffer for reuse

	// The κ cap (WithMaxCandidates) truncates before the page-order
	// sort, while candidates still sit in per-tree filter rank order —
	// so the cap drops the weakest-ranked survivors of the later trees,
	// not whichever ids happen to sort last.
	if plan.maxCandidates > 0 && len(candidates) > plan.maxCandidates {
		candidates = candidates[:plan.maxCandidates]
	}

	// Page-ordered fetch: vector records are packed in id order, so
	// sorting the candidate ids sorts their owning pages, turning the
	// refinement step's random accesses into mostly-sequential buffer
	// pool hits. The top-k list orders by (Dist, ID), so the retained
	// set is unchanged by the reordering.
	slices.Sort(candidates)
	span.Mark(telemetry.PhaseCandidateSort)

	// Exact refinement (lines 12-15): fetch each candidate's vector and
	// compute the true distance — zero-copy out of the buffer pool when
	// the record sits in one page, early-abandoning the accumulation
	// once it exceeds the current k-th best. Deleted objects (§3.6) are
	// skipped here — they stay in the trees but are never returned.
	best := sc.bestFor(k)
	vec := sc.vec
	refined := 0
	for ci, id := range candidates {
		if ci%refineCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, nil, err
			}
		}
		if ix.deleted.has(id) {
			continue
		}
		bound := math.Inf(1)
		if b, ok := best.Bound(); ok {
			bound = b
		}
		var d float64
		var full bool
		if view, ok := ix.vectors.GetView(id); ok {
			d, full = vecmath.DistSqBound(q, view.Vec, bound)
			view.Release()
		} else {
			v, err := ix.vectors.Get(id, vec)
			if err != nil {
				return nil, nil, err
			}
			d, full = vecmath.DistSqBound(q, v, bound)
		}
		if full {
			best.Push(id, d)
		}
		refined++
	}
	span.Mark(telemetry.PhaseRefine)

	// Memtable merge: acknowledged inserts not yet compacted into the
	// trees are brute-forced with the same early-abandoning exact
	// distance and pushed into the same top-k heap — no tree I/O, and
	// the (Dist, ID) ordering makes the merge order-independent. Still
	// under the read lock, so the memtable/vector-store boundary is the
	// same one the tree candidates saw.
	memScanned := 0
	if len(ix.mem) > 0 {
		base := ix.vectors.Count()
		for i, mv := range ix.mem {
			if i%refineCheckEvery == 0 {
				if err := ctx.Err(); err != nil {
					return nil, nil, err
				}
			}
			id := base + uint64(i)
			if ix.deleted.has(id) {
				continue
			}
			bound := math.Inf(1)
			if b, ok := best.Bound(); ok {
				bound = b
			}
			if d, full := vecmath.DistSqBound(q, mv, bound); full {
				best.Push(id, d)
			}
			memScanned++
		}
		span.Mark(telemetry.PhaseMemtableScan)
	}

	items := best.ItemsInto(sc.items)
	sc.items = items
	out := make([]Result, len(items))
	for i, it := range items {
		out[i] = Result{ID: it.ID, Dist: math.Sqrt(it.Dist)}
	}
	ioAfter := ix.IOStats()
	stats := &QueryStats{
		Candidates:      len(candidates),
		ExactDistances:  refined, // deleted-skipped candidates do no work
		MemtableScanned: memScanned,
		PageReads:       ioAfter.Reads - ioBefore.Reads,
		PageHits:        ioAfter.Hits - ioBefore.Hits,
		PageMisses:      ioAfter.Misses - ioBefore.Misses,
		Alpha:           plan.alpha,
		Beta:            plan.beta,
		Gamma:           plan.gamma,
		Ptolemaic:       plan.ptolemaic,
		Degraded:        plan.degraded,
	}
	for _, f := range sc.fetched {
		stats.TreeEntries += f
	}
	span.Mark(telemetry.PhaseTopKMerge)
	stats.Phases = span.NS
	if telOn {
		ix.tel.ObserveQuery(time.Since(telStart), span.NS)
	}
	return out, stats, nil
}

// searchTree performs Algorithm 2 lines 2-10 for one partition: Hilbert
// key, α nearest leaf entries, triangular filter, optional Ptolemaic
// filter, appending the surviving γ object ids into ids (a per-tree
// scratch buffer owned by the caller for the query's duration). The
// cascade sizes come from plan, not Params: per-query overrides land
// here without the index noticing.
func (ix *Index) searchTree(ctx context.Context, t int, q []float32, qdist []float64, ids []uint64, plan searchPlan) ([]uint64, int, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	ts := ix.getTreeScratch()
	defer putTreeScratch(ts)

	start := t * ix.eta
	ix.quants[t].Coords(ts.coords, q[start:start+ix.eta])
	ts.key = ix.curves[t].Encode(ts.key[:0], ts.coords)

	entries, arena, err := ix.trees[t].SearchNearestInto(ctx, ts.key, plan.alpha, ts.entries, ts.arena)
	ts.entries, ts.arena = entries, arena // keep the grown buffers for reuse
	if err != nil {
		return nil, 0, err
	}
	fetched := len(entries)
	if len(entries) == 0 {
		return nil, 0, nil
	}

	// Triangular inequality (Eq. 5): keep the β (or γ, if Ptolemaic is
	// off) smallest lower bounds.
	narrowTo := plan.gamma
	if plan.ptolemaic {
		narrowTo = plan.beta
	}
	tri := ts.tri[:0]
	for i := range entries {
		tri = append(tri, topk.Item{ID: uint64(i), Dist: triangularLB(qdist, entries[i].RefDists)})
	}
	ts.tri = tri
	tri = topk.SelectK(tri, narrowTo)

	if !plan.ptolemaic {
		for _, it := range tri {
			ids = append(ids, entries[it.ID].ID)
		}
		return ids, fetched, nil
	}

	// Ptolemaic inequality (Eq. 6): tighter but O(m²) per object.
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	pto := ts.pto[:0]
	for _, it := range tri {
		pto = append(pto, topk.Item{ID: it.ID, Dist: ix.ptolemaicLB(qdist, entries[it.ID].RefDists)})
	}
	ts.pto = pto
	pto = topk.SelectK(pto, plan.gamma)
	for _, it := range pto {
		ids = append(ids, entries[it.ID].ID)
	}
	return ids, fetched, nil
}

// triangularLB is Eq. (5): max_i |d(q,R_i) - d(o,R_i)|.
func triangularLB(qdist []float64, refDists []float32) float64 {
	var best float64
	for i, qd := range qdist {
		lb := qd - float64(refDists[i])
		if lb < 0 {
			lb = -lb
		}
		if lb > best {
			best = lb
		}
	}
	return best
}

// ptolemaicLB is Eq. (6):
// max_{i<j} |d(q,R_i)·d(o,R_j) - d(q,R_j)·d(o,R_i)| / d(R_i,R_j).
func (ix *Index) ptolemaicLB(qdist []float64, refDists []float32) float64 {
	var best float64
	m := len(qdist)
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			den := ix.refCross[i][j]
			if den <= 0 {
				continue
			}
			num := qdist[i]*float64(refDists[j]) - qdist[j]*float64(refDists[i])
			if num < 0 {
				num = -num
			}
			if lb := num / den; lb > best {
				best = lb
			}
		}
	}
	return best
}
