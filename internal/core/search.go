package core

import (
	"fmt"
	"math"
	"sync"

	"github.com/hd-index/hdindex/internal/topk"
	"github.com/hd-index/hdindex/internal/vecmath"
)

// Result is one returned neighbour.
type Result struct {
	ID   uint64
	Dist float64
}

// QueryStats reports the work one query did.
type QueryStats struct {
	Candidates     int    // κ = |C|, distinct objects refined exactly
	TreeEntries    int    // total α entries fetched across trees
	PageReads      uint64 // physical page reads during the query
	ExactDistances int    // full ν-dimensional distance computations
}

// Search answers a kANN query (Algorithm 2).
func (ix *Index) Search(q []float32, k int) ([]Result, error) {
	res, _, err := ix.SearchWithStats(q, k)
	return res, err
}

// SearchWithStats is Search plus per-query work counters.
func (ix *Index) SearchWithStats(q []float32, k int) ([]Result, *QueryStats, error) {
	if len(q) != ix.nu {
		return nil, nil, fmt.Errorf("core: query has %d dims, index has %d", len(q), ix.nu)
	}
	if k < 1 {
		return nil, nil, fmt.Errorf("core: k must be >= 1, got %d", k)
	}
	p := ix.params
	ioBefore := ix.IOStats()

	// Distances from q to the m reference objects (lines handled before
	// the loop in Algorithm 2; O(m·ν)).
	qdist := make([]float64, p.M)
	for r, rv := range ix.refs {
		qdist[r] = vecmath.Dist(q, rv)
	}

	// Per-tree candidate retrieval and filtering (lines 1-10).
	perTree := make([][]uint64, p.Tau)
	entriesFetched := make([]int, p.Tau)
	errs := make([]error, p.Tau)
	run := func(t int) {
		ids, fetched, err := ix.searchTree(t, q, qdist)
		perTree[t], entriesFetched[t], errs[t] = ids, fetched, err
	}
	if p.Parallel && p.Tau > 1 {
		var wg sync.WaitGroup
		for t := 0; t < p.Tau; t++ {
			wg.Add(1)
			go func(t int) {
				defer wg.Done()
				run(t)
			}(t)
		}
		wg.Wait()
	} else {
		for t := 0; t < p.Tau; t++ {
			run(t)
		}
	}
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}

	// Union of candidates (line 11): γ <= κ <= τ·γ.
	seen := make(map[uint64]struct{}, p.Gamma*p.Tau)
	var candidates []uint64
	for _, ids := range perTree {
		for _, id := range ids {
			if _, ok := seen[id]; !ok {
				seen[id] = struct{}{}
				candidates = append(candidates, id)
			}
		}
	}

	// Exact refinement (lines 12-15): fetch each candidate's vector and
	// compute the true distance. Deleted objects (§3.6) are skipped here
	// — they stay in the trees but are never returned.
	best := topk.New(k)
	vec := make([]float32, ix.nu)
	for _, id := range candidates {
		if ix.deleted.has(id) {
			continue
		}
		v, err := ix.vectors.Get(id, vec)
		if err != nil {
			return nil, nil, err
		}
		best.Push(id, vecmath.DistSq(q, v))
	}

	items := best.Items()
	out := make([]Result, len(items))
	for i, it := range items {
		out[i] = Result{ID: it.ID, Dist: math.Sqrt(it.Dist)}
	}
	ioAfter := ix.IOStats()
	stats := &QueryStats{
		Candidates:     len(candidates),
		ExactDistances: len(candidates),
		PageReads:      ioAfter.Reads - ioBefore.Reads,
	}
	for _, f := range entriesFetched {
		stats.TreeEntries += f
	}
	return out, stats, nil
}

// searchTree performs Algorithm 2 lines 2-10 for one partition: Hilbert
// key, α nearest leaf entries, triangular filter, optional Ptolemaic
// filter, returning the surviving γ object ids.
func (ix *Index) searchTree(t int, q []float32, qdist []float64) ([]uint64, int, error) {
	p := ix.params
	start := t * ix.eta
	coords := make([]uint32, ix.eta)
	ix.quants[t].Coords(coords, q[start:start+ix.eta])
	key := ix.curves[t].Encode(nil, coords)

	entries, err := ix.trees[t].SearchNearest(key, p.Alpha)
	if err != nil {
		return nil, 0, err
	}
	fetched := len(entries)
	if len(entries) == 0 {
		return nil, 0, nil
	}

	// Triangular inequality (Eq. 5): keep the β (or γ, if Ptolemaic is
	// off) smallest lower bounds.
	narrowTo := p.Gamma
	if p.UsePtolemaic {
		narrowTo = p.Beta
	}
	tri := make([]topk.Item, len(entries))
	for i := range entries {
		tri[i] = topk.Item{ID: uint64(i), Dist: triangularLB(qdist, entries[i].RefDists)}
	}
	tri = topk.SelectK(tri, narrowTo)

	if !p.UsePtolemaic {
		ids := make([]uint64, len(tri))
		for i, it := range tri {
			ids[i] = entries[it.ID].ID
		}
		return ids, fetched, nil
	}

	// Ptolemaic inequality (Eq. 6): tighter but O(m²) per object.
	pto := make([]topk.Item, len(tri))
	for i, it := range tri {
		pto[i] = topk.Item{ID: it.ID, Dist: ix.ptolemaicLB(qdist, entries[it.ID].RefDists)}
	}
	pto = topk.SelectK(pto, p.Gamma)
	ids := make([]uint64, len(pto))
	for i, it := range pto {
		ids[i] = entries[it.ID].ID
	}
	return ids, fetched, nil
}

// triangularLB is Eq. (5): max_i |d(q,R_i) - d(o,R_i)|.
func triangularLB(qdist []float64, refDists []float32) float64 {
	var best float64
	for i, qd := range qdist {
		lb := qd - float64(refDists[i])
		if lb < 0 {
			lb = -lb
		}
		if lb > best {
			best = lb
		}
	}
	return best
}

// ptolemaicLB is Eq. (6):
// max_{i<j} |d(q,R_i)·d(o,R_j) - d(q,R_j)·d(o,R_i)| / d(R_i,R_j).
func (ix *Index) ptolemaicLB(qdist []float64, refDists []float32) float64 {
	var best float64
	m := len(qdist)
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			den := ix.refCross[i][j]
			if den <= 0 {
				continue
			}
			num := qdist[i]*float64(refDists[j]) - qdist[j]*float64(refDists[i])
			if num < 0 {
				num = -num
			}
			if lb := num / den; lb > best {
				best = lb
			}
		}
	}
	return best
}
