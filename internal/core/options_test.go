package core

import (
	"context"
	"errors"
	"math"
	"path/filepath"
	"testing"

	"github.com/hd-index/hdindex/internal/data"
)

func TestPlanForDefaults(t *testing.T) {
	p := Params{Tau: 4, Omega: 8, M: 4, Alpha: 256, Gamma: 64, Seed: 1}
	ix, _, _ := buildSmall(t, 500, p)
	plan, err := ix.planFor(10, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	bp := ix.params
	if plan.alpha != bp.Alpha || plan.beta != bp.Beta || plan.gamma != bp.Gamma ||
		plan.ptolemaic != bp.UsePtolemaic || plan.maxCandidates != 0 {
		t.Fatalf("zero options resolved to %+v, built params %+v", plan, bp)
	}
}

// An explicit α below the built γ must pull the inherited cascade down
// with it rather than fail: unset knobs clamp, explicit knobs don't.
func TestPlanForClampsInheritedCascade(t *testing.T) {
	p := Params{Tau: 4, Omega: 8, M: 4, Alpha: 256, Gamma: 64, Seed: 1}
	ix, _, _ := buildSmall(t, 500, p)
	plan, err := ix.planFor(10, SearchOptions{Alpha: 32})
	if err != nil {
		t.Fatal(err)
	}
	if plan.alpha != 32 || plan.beta != 32 || plan.gamma != 32 {
		t.Fatalf("alpha=32 resolved to %+v, want 32/32/32", plan)
	}

	// Widening past the built cascade must also work: an explicit α
	// re-derives β = α the way a fresh build would, so an explicit γ
	// above the BUILT β (256) is accepted exactly as a rebuild with
	// these knobs would accept it.
	plan, err = ix.planFor(10, SearchOptions{Alpha: 1024, Gamma: 512})
	if err != nil {
		t.Fatal(err)
	}
	if plan.alpha != 1024 || plan.beta != 1024 || plan.gamma != 512 {
		t.Fatalf("alpha=1024 gamma=512 resolved to %+v, want 1024/1024/512", plan)
	}
	// γ alone may widen up to the effective α when the Ptolemaic
	// filter is off (β is unused and resolves to α).
	plan, err = ix.planFor(10, SearchOptions{Gamma: 200})
	if err != nil {
		t.Fatal(err)
	}
	if plan.gamma != 200 || plan.beta != 256 {
		t.Fatalf("gamma=200 resolved to %+v, want gamma=200 beta=256", plan)
	}
}

func TestPlanForRejectsBadOptions(t *testing.T) {
	p := Params{Tau: 4, Omega: 8, M: 4, Alpha: 256, Gamma: 64, Seed: 1}
	ix, _, _ := buildSmall(t, 500, p)
	cases := []struct {
		name string
		k    int
		o    SearchOptions
	}{
		{"k<1", 0, SearchOptions{}},
		{"negative alpha", 10, SearchOptions{Alpha: -1}},
		{"negative gamma", 10, SearchOptions{Gamma: -5}},
		{"huge alpha", 10, SearchOptions{Alpha: maxKnob + 1}},
		{"gamma>alpha", 10, SearchOptions{Alpha: 64, Gamma: 128}},
		{"beta>alpha", 10, SearchOptions{Alpha: 64, Beta: 128}},
		{"gamma>beta", 10, SearchOptions{Beta: 64, Gamma: 128}},
		{"alpha<k", 50, SearchOptions{Alpha: 49}},
		{"gamma<k", 50, SearchOptions{Gamma: 49}},
		{"maxcand<k", 50, SearchOptions{MaxCandidates: 10}},
		{"bad ptolemaic", 10, SearchOptions{Ptolemaic: PtolemaicMode(9)}},
	}
	for _, tc := range cases {
		if _, err := ix.planFor(tc.k, tc.o); !errors.Is(err, ErrBadOptions) {
			t.Errorf("%s: err = %v, want ErrBadOptions", tc.name, err)
		}
		// The same rejection must surface through Query, before any
		// tree walk.
		q := make([]float32, ix.Dim())
		if _, _, err := ix.Query(context.Background(), q, tc.k, tc.o); !errors.Is(err, ErrBadOptions) {
			t.Errorf("%s: Query err = %v, want ErrBadOptions", tc.name, err)
		}
	}
}

func TestQueryDimMismatchTyped(t *testing.T) {
	p := Params{Tau: 4, Omega: 8, M: 4, Alpha: 128, Gamma: 32, Seed: 1}
	ix, _, _ := buildSmall(t, 400, p)
	if _, _, err := ix.Query(context.Background(), make([]float32, 7), 5, SearchOptions{}); !errors.Is(err, ErrDimMismatch) {
		t.Fatalf("query err = %v, want ErrDimMismatch", err)
	}
	if _, _, err := ix.QueryBatch(context.Background(), [][]float32{make([]float32, 7)}, 5, SearchOptions{}); !errors.Is(err, ErrDimMismatch) {
		t.Fatalf("batch err = %v, want ErrDimMismatch", err)
	}
	if _, err := ix.Insert(make([]float32, 7)); !errors.Is(err, ErrDimMismatch) {
		t.Fatalf("insert err = %v, want ErrDimMismatch", err)
	}
}

// Query with zero options must be bit-identical to the legacy stats
// path (they share one implementation; this pins it).
func TestQueryZeroOptionsMatchesSearch(t *testing.T) {
	p := Params{Tau: 4, Omega: 8, M: 6, Alpha: 256, Gamma: 64, Seed: 7}
	ix, ds, _ := buildSmall(t, 1500, p)
	for qi, q := range ds.PerturbedQueries(10, 0.02, 3) {
		want, wantSt, err := ix.SearchWithStats(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		got, st, err := ix.Query(context.Background(), q, 10, SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("query %d: %d results vs %d", qi, len(got), len(want))
		}
		for i := range want {
			if got[i].ID != want[i].ID || math.Float64bits(got[i].Dist) != math.Float64bits(want[i].Dist) {
				t.Fatalf("query %d rank %d: %+v vs %+v", qi, i, got[i], want[i])
			}
		}
		if st.Candidates != wantSt.Candidates || st.TreeEntries != wantSt.TreeEntries {
			t.Fatalf("query %d stats: %+v vs %+v", qi, st, wantSt)
		}
		if st.Alpha != p.Alpha || st.Gamma != p.Gamma || st.Ptolemaic {
			t.Fatalf("query %d: stats echo %+v, want built cascade", qi, st)
		}
	}
}

// A per-query override must be bit-identical to querying an index BUILT
// with those very parameters: the tree bytes depend only on the data,
// so the cascade is a pure query-time property. This is the "no rebuild
// per operating point" guarantee.
func TestQueryOverrideMatchesRebuiltIndex(t *testing.T) {
	ds := data.Generate(data.Config{Name: "t", N: 1200, Dim: 32, Clusters: 6, Lo: 0, Hi: 1, Seed: 42})
	queries := ds.PerturbedQueries(8, 0.01, 43)
	base := Params{Tau: 4, Omega: 8, M: 5, Alpha: 128, Gamma: 32, Seed: 9}
	hi := base
	hi.Alpha, hi.Beta, hi.Gamma = 384, 0, 96 // Beta re-defaults to the new alpha

	ixBase, err := Build(filepath.Join(t.TempDir(), "base"), ds.Vectors, base)
	if err != nil {
		t.Fatal(err)
	}
	defer ixBase.Close()
	ixHi, err := Build(filepath.Join(t.TempDir(), "hi"), ds.Vectors, hi)
	if err != nil {
		t.Fatal(err)
	}
	defer ixHi.Close()

	for _, pto := range []PtolemaicMode{PtolemaicDefault, PtolemaicOn} {
		// Beta is explicit: unset it would clamp to the BUILT beta
		// (128), while the rebuilt index defaults beta to its own
		// alpha (384).
		o := SearchOptions{Alpha: 384, Beta: 384, Gamma: 96, Ptolemaic: pto}
		for qi, q := range queries {
			got, gotSt, err := ixBase.Query(context.Background(), q, 10, o)
			if err != nil {
				t.Fatal(err)
			}
			var want []Result
			var wantSt *QueryStats
			if pto == PtolemaicOn {
				want, wantSt, err = ixHi.Query(context.Background(), q, 10,
					SearchOptions{Ptolemaic: PtolemaicOn})
			} else {
				want, wantSt, err = ixHi.SearchWithStats(q, 10)
			}
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("pto=%v query %d: %d results vs rebuilt %d", pto, qi, len(got), len(want))
			}
			for i := range want {
				if got[i].ID != want[i].ID || math.Float64bits(got[i].Dist) != math.Float64bits(want[i].Dist) {
					t.Fatalf("pto=%v query %d rank %d: override %+v vs rebuilt %+v", pto, qi, i, got[i], want[i])
				}
			}
			if gotSt.Candidates != wantSt.Candidates {
				t.Fatalf("pto=%v query %d: override saw %d candidates, rebuilt %d",
					pto, qi, gotSt.Candidates, wantSt.Candidates)
			}
		}
	}
}

// The per-query knobs must move their observables monotonically:
// raising γ at fixed α can only grow the candidate union (each tree's
// top-γ set is a superset of its top-γ′ for γ′ < γ), and raising α can
// only grow the leaf entries fetched. Distinct candidates are NOT
// monotone in α alone — a wider α at fixed γ lets the trees agree on
// the same best objects, shrinking the deduplicated union — which is
// exactly why the stats echo the effective cascade.
func TestQueryOverridesMonotoneCandidates(t *testing.T) {
	p := Params{Tau: 4, Omega: 8, M: 5, Alpha: 512, Gamma: 128, Seed: 11}
	ix, ds, _ := buildSmall(t, 2000, p)
	queries := ds.PerturbedQueries(6, 0.02, 5)

	sum := func(o SearchOptions) (candidates, treeEntries int) {
		for _, q := range queries {
			_, st, err := ix.Query(context.Background(), q, 10, o)
			if err != nil {
				t.Fatal(err)
			}
			candidates += st.Candidates
			treeEntries += st.TreeEntries
		}
		return candidates, treeEntries
	}

	prevEntries := -1
	seen := make(map[int]bool)
	for _, alpha := range []int{32, 128, 512} {
		cand, entries := sum(SearchOptions{Alpha: alpha})
		if entries < prevEntries {
			t.Fatalf("alpha=%d: %d tree entries < previous %d", alpha, entries, prevEntries)
		}
		if cand <= 0 {
			t.Fatalf("alpha=%d: no candidates", alpha)
		}
		seen[cand] = true
		prevEntries = entries
	}
	if len(seen) < 2 {
		t.Fatalf("alpha overrides did not change the candidate count: %v", seen)
	}
	prevCand := -1
	for _, gamma := range []int{16, 64, 128} {
		cand, _ := sum(SearchOptions{Gamma: gamma})
		if cand < prevCand {
			t.Fatalf("gamma=%d: %d candidates < previous %d", gamma, cand, prevCand)
		}
		if cand <= 0 {
			t.Fatalf("gamma=%d: no candidates", gamma)
		}
		prevCand = cand
	}
}

// WithMaxCandidates caps κ exactly, and the capped query still returns
// k results.
func TestQueryMaxCandidatesCapsKappa(t *testing.T) {
	p := Params{Tau: 4, Omega: 8, M: 5, Alpha: 512, Gamma: 128, Seed: 13}
	ix, ds, _ := buildSmall(t, 2000, p)
	for _, q := range ds.PerturbedQueries(5, 0.02, 7) {
		_, unbounded, err := ix.Query(context.Background(), q, 10, SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		cap := unbounded.Candidates / 2
		if cap < 10 {
			t.Skip("dataset too small for a meaningful cap")
		}
		res, st, err := ix.Query(context.Background(), q, 10, SearchOptions{MaxCandidates: cap})
		if err != nil {
			t.Fatal(err)
		}
		if st.Candidates != cap {
			t.Fatalf("capped at %d but refined %d", cap, st.Candidates)
		}
		if len(res) != 10 {
			t.Fatalf("capped query returned %d results", len(res))
		}
	}
}

// QueryBatch shares one option set and returns per-query stats in
// order, each echoing the effective cascade.
func TestQueryBatchStats(t *testing.T) {
	p := Params{Tau: 4, Omega: 8, M: 5, Alpha: 256, Gamma: 64, Seed: 17}
	ix, ds, _ := buildSmall(t, 1200, p)
	queries := ds.PerturbedQueries(6, 0.02, 9)
	res, stats, err := ix.QueryBatch(context.Background(), queries, 5, SearchOptions{Alpha: 96, Gamma: 48})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(queries) || len(stats) != len(queries) {
		t.Fatalf("%d results, %d stats for %d queries", len(res), len(stats), len(queries))
	}
	for qi, q := range queries {
		want, wantSt, err := ix.Query(context.Background(), q, 5, SearchOptions{Alpha: 96, Gamma: 48})
		if err != nil {
			t.Fatal(err)
		}
		if len(res[qi]) != len(want) {
			t.Fatalf("query %d: batch %d results, single %d", qi, len(res[qi]), len(want))
		}
		for i := range want {
			if res[qi][i] != want[i] {
				t.Fatalf("query %d rank %d: batch %+v, single %+v", qi, i, res[qi][i], want[i])
			}
		}
		if stats[qi].Alpha != 96 || stats[qi].Gamma != 48 {
			t.Fatalf("query %d: stats echo %+v", qi, stats[qi])
		}
		if stats[qi].Candidates != wantSt.Candidates {
			t.Fatalf("query %d: batch candidates %d, single %d", qi, stats[qi].Candidates, wantSt.Candidates)
		}
	}
	// A bad option set fails the whole batch up front.
	if _, _, err := ix.QueryBatch(context.Background(), queries, 5, SearchOptions{Alpha: 8, Gamma: 16}); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("bad batch options: %v", err)
	}
}
