package core

import (
	"context"
	"errors"
	"path/filepath"
	"syscall"
	"testing"

	"github.com/hd-index/hdindex/internal/data"
	"github.com/hd-index/hdindex/internal/iofault"
	"github.com/hd-index/hdindex/internal/leakcheck"
	"github.com/hd-index/hdindex/internal/pager"
)

// faultIndex builds a small index with the first seed vectors, closes
// it, and returns the directory plus the dataset — the reopen happens
// in the test, after the fault rules are armed, so the WAL and pager
// files get wrapped.
func faultIndex(t *testing.T, seedN int) (string, *data.Dataset) {
	t.Helper()
	ds := data.Generate(data.Config{N: seedN + 100, Dim: 16, Clusters: 4, Lo: 0, Hi: 1, Seed: 81})
	dir := filepath.Join(t.TempDir(), "ix")
	ix, err := Build(dir, ds.Vectors[:seedN], ingestParams())
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	return dir, ds
}

// insertUntilFailure appends vectors one by one until the WAL fault
// fires, returning the ids acknowledged before the failure and the
// error that stopped the run.
func insertUntilFailure(t *testing.T, ix *Index, vecs [][]float32) ([]uint64, error) {
	t.Helper()
	var acked []uint64
	for _, v := range vecs {
		id, err := ix.Insert(v)
		if err != nil {
			return acked, err
		}
		acked = append(acked, id)
	}
	return acked, nil
}

// assertServes fails unless every (id, vec) pair answers a k=1 self
// query — the acked-writes-survive check.
func assertServes(t *testing.T, ix *Index, ids []uint64, vecs [][]float32) {
	t.Helper()
	for i, id := range ids {
		res, err := ix.Search(vecs[i], 1)
		if err != nil {
			t.Fatalf("search for acked insert %d: %v", id, err)
		}
		if len(res) != 1 || res[0].ID != id || res[0].Dist > 1e-5 {
			t.Fatalf("acked insert %d lost: got %+v", id, res)
		}
	}
}

// TestFaultWALENOSPCWrite drives inserts into a WAL with a byte budget:
// the append that crosses it gets a torn ENOSPC write. The failing
// insert must be rejected with ErrWALUnavailable (carrying ENOSPC), the
// index must flip read-only while still answering queries, and a reopen
// must serve every acknowledged insert.
func TestFaultWALENOSPCWrite(t *testing.T) {
	dir, ds := faultIndex(t, 200)

	restore := iofault.SetGlobal(iofault.NewInjector(iofault.Rule{
		PathGlob: "wal.log", Op: iofault.OpWrite, AfterBytes: 1024,
	}))
	defer restore()

	ix, err := Open(dir, OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()

	acked, failErr := insertUntilFailure(t, ix, ds.Vectors[200:])
	if failErr == nil {
		t.Fatal("ENOSPC never fired: byte budget too large for the insert volume")
	}
	if !errors.Is(failErr, ErrWALUnavailable) || !errors.Is(failErr, syscall.ENOSPC) {
		t.Fatalf("failing insert: got %v, want ErrWALUnavailable wrapping ENOSPC", failErr)
	}
	if !ix.WALFailed() {
		t.Fatal("index must report WALFailed after the poisoned append")
	}
	if ist := ix.IngestStats(); !ist.WALFailed {
		t.Fatal("IngestStats must carry wal_failed")
	}

	// Read-only from here: writes reject, reads keep serving.
	if _, err := ix.Insert(ds.Vectors[200]); !errors.Is(err, ErrWALUnavailable) {
		t.Fatalf("insert after poison: got %v, want ErrWALUnavailable", err)
	}
	if err := ix.Delete(0); !errors.Is(err, ErrWALUnavailable) {
		t.Fatalf("delete after poison: got %v, want ErrWALUnavailable", err)
	}
	if got := ix.Count(); got != uint64(200+len(acked)) {
		t.Fatalf("Count = %d, want %d (failed insert must not count)", got, 200+len(acked))
	}
	assertServes(t, ix, acked, ds.Vectors[200:])

	// Recovery: clear the fault, reopen, and every acked write is back.
	// Close flushes through the poisoned WAL, so it may report the
	// failure; what matters is that it returns (files closed, no panic).
	_ = ix.Close()
	restore()
	re, err := Open(dir, OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	assertServes(t, re, acked, ds.Vectors[200:])
}

// TestFaultWALSyncFailureRollsBackAck injects the failure after the
// in-cache append, at the group-commit fsync. The insert was already in
// the memtable when the fsync failed, so this exercises the rollback:
// the unacknowledged suffix must vanish from reads, and everything
// acknowledged earlier must survive a reopen.
func TestFaultWALSyncFailureRollsBackAck(t *testing.T) {
	dir, ds := faultIndex(t, 200)

	// Open performs no fsync of its own, so "fail the 6th sync" means
	// five inserts group-commit and the sixth fails its fsync.
	restore := iofault.SetGlobal(iofault.NewInjector(iofault.Rule{
		PathGlob: "wal.log", Op: iofault.OpSync, AfterCalls: 5,
	}))
	defer restore()

	ix, err := Open(dir, OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()

	acked, failErr := insertUntilFailure(t, ix, ds.Vectors[200:])
	if failErr == nil {
		t.Fatal("sync fault never fired")
	}
	if !errors.Is(failErr, ErrWALUnavailable) || !errors.Is(failErr, syscall.EIO) {
		t.Fatalf("failing insert: got %v, want ErrWALUnavailable wrapping EIO", failErr)
	}
	if len(acked) != 5 {
		t.Fatalf("acked %d inserts before the poisoned fsync, want 5", len(acked))
	}
	// The failed insert reached the memtable before its fsync; the
	// rollback must have removed exactly that suffix.
	if got := ix.Count(); got != 205 {
		t.Fatalf("Count = %d, want 205 (non-durable suffix rolled back)", got)
	}
	// The rolled-back vector must not serve.
	failedVec := ds.Vectors[200+len(acked)]
	res, err := ix.Search(failedVec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 1 && res[0].Dist < 1e-6 {
		t.Fatalf("rolled-back insert still serving as id %d", res[0].ID)
	}
	assertServes(t, ix, acked, ds.Vectors[200:])

	ix.Close()
	restore()
	re, err := Open(dir, OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	assertServes(t, re, acked, ds.Vectors[200:])
}

// TestFaultCompactionEIOServesOldGeneration fails the new tree
// generation's writes with EIO. The compaction must fail cleanly — old
// generation serving, memtable intact, circuit breaker open — and a
// retry after the disk recovers must succeed and close the breaker.
func TestFaultCompactionEIOServesOldGeneration(t *testing.T) {
	dir, ds := faultIndex(t, 200)
	ix, err := Open(dir, OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()

	acked, failErr := insertUntilFailure(t, ix, ds.Vectors[200:250])
	if failErr != nil {
		t.Fatal(failErr)
	}

	// Arm after open: only the new generation files (created during
	// Compact) match, the serving generation is untouched.
	restore := iofault.SetGlobal(iofault.NewInjector(iofault.Rule{
		PathGlob: "tree_*.g*.pg", Op: iofault.OpWrite,
	}))
	defer restore()

	if err := ix.Compact(context.Background()); err == nil {
		t.Fatal("compaction with EIO on the new generation must fail")
	}
	ist := ix.IngestStats()
	if ist.CompactBreaker != "open" {
		t.Fatalf("breaker = %q, want open", ist.CompactBreaker)
	}
	if ist.CompactFailures == 0 {
		t.Fatal("CompactFailures must count the failed attempt")
	}
	if ist.LastCompactError == "" {
		t.Fatal("LastCompactError must carry the cause")
	}
	if ist.WALFailed {
		t.Fatal("a compaction failure must not poison the WAL")
	}
	if ist.MemtableVectors != len(acked) {
		t.Fatalf("memtable = %d vectors, want %d (batch must stay queued)", ist.MemtableVectors, len(acked))
	}
	// Old generation + memtable keep serving, and writes still work.
	assertServes(t, ix, acked, ds.Vectors[200:])
	id, err := ix.Insert(ds.Vectors[250])
	if err != nil {
		t.Fatalf("insert with breaker open: %v", err)
	}
	acked = append(acked, id)

	// Disk recovers: a manual Compact is the half-open probe.
	restore()
	if err := ix.Compact(context.Background()); err != nil {
		t.Fatalf("compaction after recovery: %v", err)
	}
	ist = ix.IngestStats()
	if ist.CompactBreaker != "closed" {
		t.Fatalf("breaker = %q after successful compaction, want closed", ist.CompactBreaker)
	}
	if ist.MemtableVectors != 0 {
		t.Fatalf("memtable = %d after compaction, want 0", ist.MemtableVectors)
	}
	assertServes(t, ix, acked, ds.Vectors[200:])
}

// TestFaultPagerReadEIOTypedError turns reads of the tree files into
// EIO mid-serving: queries must fail with the typed pager.ErrIO — never
// a panic — and classify as io_error at the HTTP layer.
func TestFaultPagerReadEIOTypedError(t *testing.T) {
	dir, ds := faultIndex(t, 200)

	// The budget lets Open's header/metadata reads through; with the
	// cache disabled every query page read then hits the injector until
	// one trips.
	restore := iofault.SetGlobal(iofault.NewInjector(iofault.Rule{
		PathGlob: "tree_*.pg", Op: iofault.OpRead, AfterCalls: 400,
	}))
	defer restore()

	ix, err := Open(dir, OpenOptions{DisableCache: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()

	var searchErr error
	for i := 0; i < 2000 && searchErr == nil; i++ {
		_, searchErr = ix.Search(ds.Vectors[i%200], 5)
	}
	if searchErr == nil {
		t.Fatal("read fault never fired: raise the query count")
	}
	if !errors.Is(searchErr, pager.ErrIO) {
		t.Fatalf("search error = %v, want pager.ErrIO", searchErr)
	}
	if !errors.Is(searchErr, syscall.EIO) {
		t.Fatalf("search error = %v, want wrapped EIO", searchErr)
	}
}

// TestChaosCompactorStopNoLeak exercises the background compactor's
// whole lifecycle — threshold-triggered compactions, then Close — and
// asserts every goroutine is reaped.
func TestChaosCompactorStopNoLeak(t *testing.T) {
	defer leakcheck.Check(t)()
	ds := data.Generate(data.Config{N: 300, Dim: 16, Clusters: 4, Lo: 0, Hi: 1, Seed: 82})
	dir := filepath.Join(t.TempDir(), "ix")
	p := ingestParams()
	ix, err := Build(dir, ds.Vectors[:200], p)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	ix, err = Open(dir, OpenOptions{MemtableMaxVectors: 16})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range ds.Vectors[200:280] {
		if _, err := ix.Insert(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestChaosCompactorBreakerStopNoLeak closes the index while the
// compaction circuit breaker is open and a backoff retry is pending —
// the shutdown path must not strand the breaker's retry timer
// goroutine.
func TestChaosCompactorBreakerStopNoLeak(t *testing.T) {
	defer leakcheck.Check(t)()
	dir, ds := faultIndex(t, 200)
	ix, err := Open(dir, OpenOptions{MemtableMaxVectors: 16})
	if err != nil {
		t.Fatal(err)
	}
	restore := iofault.SetGlobal(iofault.NewInjector(iofault.Rule{
		PathGlob: "tree_*.g*.pg", Op: iofault.OpWrite,
	}))
	defer restore()
	// Cross the threshold so the background compactor attempts, fails,
	// and opens the breaker with a retry pending.
	for _, v := range ds.Vectors[200:240] {
		if _, err := ix.Insert(v); err != nil {
			t.Fatal(err)
		}
	}
	_ = ix.Compact(context.Background()) // at least one failed attempt, deterministically
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestChaosCancelledBuildNoLeak cancels a build mid-flight and asserts
// the tree-builder fan-out exits with the context.
func TestChaosCancelledBuildNoLeak(t *testing.T) {
	defer leakcheck.Check(t)()
	ds := data.Generate(data.Config{N: 3000, Dim: 32, Clusters: 6, Lo: 0, Hi: 1, Seed: 83})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	dir := filepath.Join(t.TempDir(), "ix")
	if _, err := BuildContext(ctx, dir, ds.Vectors, ingestParams()); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled build: got %v, want context.Canceled", err)
	}
}
