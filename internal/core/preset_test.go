package core

import (
	"context"
	"errors"
	"testing"
)

func TestParsePreset(t *testing.T) {
	for _, name := range []string{"exact", "balanced", "fast", "auto"} {
		p, err := ParsePreset(name)
		if err != nil || string(p) != name {
			t.Fatalf("ParsePreset(%q) = %q, %v", name, p, err)
		}
	}
	for _, name := range []string{"", "Exact", "fastest", "slo"} {
		if _, err := ParsePreset(name); !errors.Is(err, ErrBadOptions) {
			t.Fatalf("ParsePreset(%q) err = %v, want ErrBadOptions", name, err)
		}
	}
}

func TestPresetOptionsTable(t *testing.T) {
	built := Params{Alpha: 4096, Beta: 4096, Gamma: 1024}
	cases := []struct {
		preset       Preset
		k            int
		alpha, gamma int
	}{
		{PresetBalanced, 10, 0, 0},
		{PresetFast, 10, 1024, 256},     // quarter of built
		{PresetExact, 10, 16384, 16384}, // 4x built alpha, gamma = alpha
	}
	for _, c := range cases {
		o, err := c.preset.Options(built, c.k)
		if err != nil {
			t.Fatalf("%s.Options: %v", c.preset, err)
		}
		if o.Alpha != c.alpha || o.Gamma != c.gamma {
			t.Fatalf("%s resolved to alpha=%d gamma=%d, want %d/%d",
				c.preset, o.Alpha, o.Gamma, c.alpha, c.gamma)
		}
	}
	// Auto has no fixed expansion.
	if _, err := PresetAuto.Options(built, 10); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("auto.Options err = %v, want ErrBadOptions", err)
	}
	// Fast floors at 64/16 on a small built cascade...
	o, err := PresetFast.Options(Params{Alpha: 128, Beta: 128, Gamma: 32}, 10)
	if err != nil || o.Alpha != 64 || o.Gamma != 16 {
		t.Fatalf("fast on small cascade = %+v, %v; want alpha=64 gamma=16", o, err)
	}
	// ...never widens past the built values...
	o, _ = PresetFast.Options(Params{Alpha: 48, Beta: 48, Gamma: 12}, 10)
	if o.Alpha != 48 || o.Gamma != 12 {
		t.Fatalf("fast widened past built: %+v", o)
	}
	// ...and clamps up to k so the query can still return k results.
	o, _ = PresetFast.Options(Params{Alpha: 128, Beta: 128, Gamma: 32}, 50)
	if o.Alpha != 64 || o.Gamma != 50 {
		t.Fatalf("fast at k=50 = %+v, want alpha=64 gamma=50", o)
	}
}

// The fast preset IS the adaptive-degradation cascade: resolving the
// preset's explicit options must run a plan identical to the Degrade
// flag's, and return bit-identical results.
func TestPresetFastEqualsDegrade(t *testing.T) {
	p := Params{Tau: 4, Omega: 8, M: 4, Alpha: 256, Gamma: 64, Seed: 1}
	ix, _, queries := buildSmall(t, 1500, p)
	const k = 10

	fast, err := PresetFast.Options(ix.Params(), k)
	if err != nil {
		t.Fatal(err)
	}
	planFast, err := ix.planFor(k, fast)
	if err != nil {
		t.Fatal(err)
	}
	planDeg, err := ix.planFor(k, SearchOptions{Degrade: true})
	if err != nil {
		t.Fatal(err)
	}
	if !planDeg.degraded {
		t.Fatal("Degrade on an unset cascade did not degrade")
	}
	if planFast.alpha != planDeg.alpha || planFast.beta != planDeg.beta || planFast.gamma != planDeg.gamma {
		t.Fatalf("fast preset plan %+v != degrade plan %+v", planFast, planDeg)
	}

	ctx := context.Background()
	for _, q := range queries {
		rf, _, err := ix.Query(ctx, q, k, fast)
		if err != nil {
			t.Fatal(err)
		}
		rd, st, err := ix.Query(ctx, q, k, SearchOptions{Degrade: true})
		if err != nil {
			t.Fatal(err)
		}
		if !st.Degraded {
			t.Fatal("degrade query did not report Degraded")
		}
		if len(rf) != len(rd) {
			t.Fatalf("result lengths differ: %d vs %d", len(rf), len(rd))
		}
		for i := range rf {
			if rf[i] != rd[i] {
				t.Fatalf("result %d differs: fast %+v degrade %+v", i, rf[i], rd[i])
			}
		}
	}
}

// The exact preset must dominate quality: its candidate set contains at
// least as many refined candidates as the built defaults.
func TestPresetExactWidest(t *testing.T) {
	p := Params{Tau: 4, Omega: 8, M: 4, Alpha: 128, Gamma: 32, Seed: 1}
	ix, _, queries := buildSmall(t, 1500, p)
	const k = 10
	exact, err := PresetExact.Options(ix.Params(), k)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	_, stBal, err := ix.Query(ctx, queries[0], k, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, stEx, err := ix.Query(ctx, queries[0], k, exact)
	if err != nil {
		t.Fatal(err)
	}
	if stEx.Candidates < stBal.Candidates {
		t.Fatalf("exact refined %d candidates < balanced %d", stEx.Candidates, stBal.Candidates)
	}
	if stEx.Alpha != min(p.Alpha*exactFactor, maxKnob) {
		t.Fatalf("exact alpha = %d, want %d", stEx.Alpha, p.Alpha*exactFactor)
	}
}
