package core

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// §3.6: "deletions can be handled by simply marking the object as
// 'deleted' and not returning it as an answer." The mark set lives in a
// side file (deleted.bin: a count followed by raw ids) and is consulted
// during the exact-refinement step, so no tree surgery is ever needed.

const deletedFile = "deleted.bin"

type deleteSet struct {
	mu  sync.RWMutex
	ids map[uint64]struct{}
}

func (d *deleteSet) has(id uint64) bool {
	if d == nil {
		return false
	}
	d.mu.RLock()
	_, ok := d.ids[id]
	d.mu.RUnlock()
	return ok
}

func (d *deleteSet) len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.ids)
}

// Delete marks object id as deleted; it will no longer be returned by
// Search. Deleting an unknown id is an error; deleting twice is a no-op.
func (ix *Index) Delete(id uint64) error {
	if id >= ix.vectors.Count() {
		return fmt.Errorf("core: delete of unknown id %d (have %d)", id, ix.vectors.Count())
	}
	ix.ensureDeleteSet()
	ix.deleted.mu.Lock()
	ix.deleted.ids[id] = struct{}{}
	ix.deleted.mu.Unlock()
	return ix.saveDeleteSet()
}

// Undelete removes the deletion mark from id.
func (ix *Index) Undelete(id uint64) error {
	if ix.deleted == nil {
		return nil
	}
	ix.deleted.mu.Lock()
	delete(ix.deleted.ids, id)
	ix.deleted.mu.Unlock()
	return ix.saveDeleteSet()
}

// DeletedCount returns the number of marked objects.
func (ix *Index) DeletedCount() int {
	if ix.deleted == nil {
		return 0
	}
	return ix.deleted.len()
}

func (ix *Index) ensureDeleteSet() {
	if ix.deleted == nil {
		ix.deleted = &deleteSet{ids: make(map[uint64]struct{})}
	}
}

func (ix *Index) saveDeleteSet() error {
	ix.deleted.mu.RLock()
	buf := make([]byte, 8+8*len(ix.deleted.ids))
	binary.BigEndian.PutUint64(buf, uint64(len(ix.deleted.ids)))
	off := 8
	for id := range ix.deleted.ids {
		binary.BigEndian.PutUint64(buf[off:], id)
		off += 8
	}
	ix.deleted.mu.RUnlock()
	return os.WriteFile(filepath.Join(ix.dir, deletedFile), buf, 0o644)
}

func (ix *Index) loadDeleteSet() error {
	buf, err := os.ReadFile(filepath.Join(ix.dir, deletedFile))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	if len(buf) < 8 {
		return fmt.Errorf("core: corrupt %s", deletedFile)
	}
	n := binary.BigEndian.Uint64(buf)
	if uint64(len(buf)) < 8+8*n {
		return fmt.Errorf("core: truncated %s", deletedFile)
	}
	ix.ensureDeleteSet()
	for i := uint64(0); i < n; i++ {
		ix.deleted.ids[binary.BigEndian.Uint64(buf[8+8*i:])] = struct{}{}
	}
	return nil
}
