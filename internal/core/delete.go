package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"github.com/hd-index/hdindex/internal/atomicfile"
	"github.com/hd-index/hdindex/internal/wal"
)

// §3.6: "deletions can be handled by simply marking the object as
// 'deleted' and not returning it as an answer." Marks are made durable
// the same way inserts are — a WAL record acknowledged through the
// group commit — and consulted during the exact-refinement step, so no
// tree surgery happens on the request path. Compaction is where the
// physical reclaim lives: it drops marked entries from the rebuilt
// trees and moves their marks into the purged set, persisted in the
// side file (deleted.bin) together with the live marks.

const deletedFile = "deleted.bin"

// deletedMagicV2 tags the two-section deleted.bin layout (marks +
// purged ids). It cannot collide with a v1 file, whose first 8 bytes
// are a count bounded by the file's own length.
const deletedMagicV2 = 0xFFFFFFFF00000002

// ErrUnknownID reports a Delete of an id the index has never assigned.
var ErrUnknownID = errors.New("core: unknown id")

// ErrPurged reports an Undelete of an id whose deletion was made
// physical by compaction: its tree entries are gone, so the mark can
// no longer be lifted.
var ErrPurged = errors.New("core: id was deleted and reclaimed by compaction")

type deleteSet struct {
	mu  sync.RWMutex
	ids map[uint64]struct{}
	// purged holds ids whose marked deletion compaction made physical:
	// their tree entries were dropped during a rebuild, so the mark is
	// permanent. has() covers both sets; Undelete refuses purged ids.
	purged map[uint64]struct{}
	// saveMu serialises deleted.bin writers (compaction's reclaim,
	// Open's prune, Flush) so a stale snapshot can never overwrite a
	// newer one. It is separate from Index.mu because the save also
	// runs outside the index lock.
	saveMu sync.Mutex
}

// has is on the search hot path; Build and Open always initialise the
// set, so no nil guard is needed.
func (d *deleteSet) has(id uint64) bool {
	d.mu.RLock()
	_, ok := d.ids[id]
	if !ok {
		_, ok = d.purged[id]
	}
	d.mu.RUnlock()
	return ok
}

func (d *deleteSet) len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.ids) + len(d.purged)
}

// mark adds a deletion mark unless the id is already purged (a purged
// id is permanently deleted; WAL replay may legitimately re-deliver
// its delete record after a crash between deleted.bin and the WAL
// truncation).
func (d *deleteSet) mark(id uint64) {
	d.mu.Lock()
	if _, gone := d.purged[id]; !gone {
		d.ids[id] = struct{}{}
	}
	d.mu.Unlock()
}

func (d *deleteSet) unmark(id uint64) {
	d.mu.Lock()
	delete(d.ids, id)
	d.mu.Unlock()
}

// marksBelow snapshots the marked (not purged) ids under limit — the
// set a compaction covering ids [0, limit) will reclaim.
func (d *deleteSet) marksBelow(limit uint64) map[uint64]struct{} {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make(map[uint64]struct{})
	for id := range d.ids {
		if id < limit {
			out[id] = struct{}{}
		}
	}
	return out
}

// purge moves ids from the mark set to the purged set. Ids unmarked in
// the window since the snapshot stay unmarked (their Undelete won) but
// still purge: their tree entries are gone either way.
func (d *deleteSet) purge(ids map[uint64]struct{}) {
	if len(ids) == 0 {
		return
	}
	d.mu.Lock()
	for id := range ids {
		delete(d.ids, id)
		d.purged[id] = struct{}{}
	}
	d.mu.Unlock()
}

// Delete marks object id as deleted; it will no longer be returned by
// searches. The mark is durable when Delete returns — a WAL record
// acknowledged through the same group commit as inserts. Deleting an
// unknown id is an error; deleting twice (or deleting a purged id) is
// a no-op.
func (ix *Index) Delete(id uint64) error {
	d := ix.deleted
	ix.mu.Lock()
	if ix.wal == nil {
		ix.mu.Unlock()
		return errors.New("core: index is closed")
	}
	if ix.walFailed {
		err := walUnavailable(ix.walErr)
		ix.mu.Unlock()
		return err
	}
	total := ix.vectors.Count() + uint64(len(ix.mem))
	if id >= total {
		ix.mu.Unlock()
		return fmt.Errorf("%w: delete of id %d (have %d)", ErrUnknownID, id, total)
	}
	if d.has(id) {
		ix.mu.Unlock()
		return nil // already deleted (marked or purged); already durable
	}
	off, err := ix.wal.AppendNoSync(wal.Record{Op: wal.OpDelete, ID: id})
	if err != nil {
		if errors.Is(err, wal.ErrClosed) {
			ix.mu.Unlock()
			return err
		}
		err = ix.noteWALFailureLocked(err)
		ix.mu.Unlock()
		return err
	}
	d.mark(id)
	ix.mu.Unlock()
	if err := ix.wal.WaitDurable(off); err != nil {
		if errors.Is(err, wal.ErrClosed) {
			return err
		}
		// Never durable, never acknowledged: lift the mark so the
		// in-memory state matches what a crash-restart replay rebuilds,
		// then flip read-only.
		d.unmark(id)
		return ix.noteWALFailure(err)
	}
	return nil
}

// Undelete removes the deletion mark from id. Undeleting an unmarked
// (but known) id is a no-op; an unknown id is an error; an id whose
// deletion compaction already reclaimed is ErrPurged — its tree
// entries no longer exist, so the object cannot come back.
func (ix *Index) Undelete(id uint64) error {
	d := ix.deleted
	ix.mu.Lock()
	if ix.wal == nil {
		ix.mu.Unlock()
		return errors.New("core: index is closed")
	}
	if ix.walFailed {
		err := walUnavailable(ix.walErr)
		ix.mu.Unlock()
		return err
	}
	total := ix.vectors.Count() + uint64(len(ix.mem))
	if id >= total {
		ix.mu.Unlock()
		return fmt.Errorf("%w: undelete of id %d (have %d)", ErrUnknownID, id, total)
	}
	d.mu.RLock()
	_, gone := d.purged[id]
	_, marked := d.ids[id]
	d.mu.RUnlock()
	if gone {
		ix.mu.Unlock()
		return fmt.Errorf("%w: undelete of id %d", ErrPurged, id)
	}
	if !marked {
		ix.mu.Unlock()
		return nil
	}
	off, err := ix.wal.AppendNoSync(wal.Record{Op: wal.OpUndelete, ID: id})
	if err != nil {
		if errors.Is(err, wal.ErrClosed) {
			ix.mu.Unlock()
			return err
		}
		err = ix.noteWALFailureLocked(err)
		ix.mu.Unlock()
		return err
	}
	d.unmark(id)
	ix.mu.Unlock()
	if err := ix.wal.WaitDurable(off); err != nil {
		if errors.Is(err, wal.ErrClosed) {
			return err
		}
		// Mirror Delete's rollback: the unmark was never durable.
		d.mark(id)
		return ix.noteWALFailure(err)
	}
	return nil
}

// DeletedCount returns the number of deleted objects (marked plus
// purged).
func (ix *Index) DeletedCount() int { return ix.deleted.len() }

func newDeleteSet() *deleteSet {
	return &deleteSet{ids: make(map[uint64]struct{}), purged: make(map[uint64]struct{})}
}

// saveDeleteSet persists the mark file under saveMu.
func (ix *Index) saveDeleteSet() error {
	ix.deleted.saveMu.Lock()
	defer ix.deleted.saveMu.Unlock()
	return ix.saveDeleteSetLocked()
}

// saveDeleteSetLocked snapshots and writes the mark file (v2 layout:
// magic, marks, purged ids). Callers hold d.saveMu, which serialises
// writers so a stale snapshot can never overwrite a newer one.
func (ix *Index) saveDeleteSetLocked() error {
	d := ix.deleted
	d.mu.RLock()
	buf := make([]byte, 8+8+8*len(d.ids)+8+8*len(d.purged))
	binary.BigEndian.PutUint64(buf, deletedMagicV2)
	off := 8
	binary.BigEndian.PutUint64(buf[off:], uint64(len(d.ids)))
	off += 8
	for id := range d.ids {
		binary.BigEndian.PutUint64(buf[off:], id)
		off += 8
	}
	binary.BigEndian.PutUint64(buf[off:], uint64(len(d.purged)))
	off += 8
	for id := range d.purged {
		binary.BigEndian.PutUint64(buf[off:], id)
		off += 8
	}
	d.mu.RUnlock()
	// Atomic replace: a crash at any point leaves either the old
	// complete file or the new complete file, never a torn deleted.bin
	// that would fail loadDeleteSet and brick Open.
	return atomicfile.WriteFile(ix.dir, deletedFile, buf)
}

// loadDeleteSet reads deleted.bin (either layout) into memory. It does
// not prune: stale marks can only be judged against the total id space,
// which Open knows only after the WAL replay — pruneDeleteMarks runs
// then.
func (ix *Index) loadDeleteSet() error {
	buf, err := os.ReadFile(filepath.Join(ix.dir, deletedFile))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	if len(buf) < 8 {
		return fmt.Errorf("core: corrupt %s", deletedFile)
	}
	if binary.BigEndian.Uint64(buf) == deletedMagicV2 {
		rest := buf[8:]
		readSection := func(into map[uint64]struct{}) error {
			if len(rest) < 8 {
				return fmt.Errorf("core: truncated %s", deletedFile)
			}
			n := binary.BigEndian.Uint64(rest)
			rest = rest[8:]
			if n > uint64(len(rest))/8 {
				return fmt.Errorf("core: truncated %s", deletedFile)
			}
			for i := uint64(0); i < n; i++ {
				into[binary.BigEndian.Uint64(rest[8*i:])] = struct{}{}
			}
			rest = rest[8*n:]
			return nil
		}
		if err := readSection(ix.deleted.ids); err != nil {
			return err
		}
		return readSection(ix.deleted.purged)
	}
	// v1 layout (pre-WAL indexes): one count, then mark ids.
	n := binary.BigEndian.Uint64(buf)
	// Divide rather than multiply: 8+8*n overflows for a corrupt count.
	if n > uint64(len(buf)-8)/8 {
		return fmt.Errorf("core: truncated %s", deletedFile)
	}
	for i := uint64(0); i < n; i++ {
		ix.deleted.ids[binary.BigEndian.Uint64(buf[8+8*i:])] = struct{}{}
	}
	return nil
}

// pruneDeleteMarks drops marks for ids beyond the replayed id space: a
// legacy index whose insert never flushed before a crash but was
// deleted in the same window persists the mark without the vector. The
// id will be reassigned to a future insert, which must not be born
// deleted — rewrite the file so the stale mark cannot outlive this
// Open. Runs after WAL replay, when the total id space (committed +
// memtable) is known.
func (ix *Index) pruneDeleteMarks() error {
	total := ix.vectors.Count() + uint64(len(ix.mem))
	d := ix.deleted
	pruned := false
	d.mu.Lock()
	for id := range d.ids {
		if id >= total {
			delete(d.ids, id)
			pruned = true
		}
	}
	for id := range d.purged {
		if id >= total {
			delete(d.purged, id)
			pruned = true
		}
	}
	d.mu.Unlock()
	if pruned {
		return ix.saveDeleteSet()
	}
	return nil
}
