package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"github.com/hd-index/hdindex/internal/atomicfile"
)

// §3.6: "deletions can be handled by simply marking the object as
// 'deleted' and not returning it as an answer." The mark set lives in a
// side file (deleted.bin: a count followed by raw ids) and is consulted
// during the exact-refinement step, so no tree surgery is ever needed.

const deletedFile = "deleted.bin"

// ErrUnknownID reports a Delete of an id the index has never assigned.
var ErrUnknownID = errors.New("core: unknown id")

type deleteSet struct {
	mu  sync.RWMutex
	ids map[uint64]struct{}
	// saveMu serialises the whole mutate-then-persist sequence of
	// Delete/Undelete: a mark observed while HOLDING saveMu is always
	// persisted, because a failed write rolls the mark back before
	// saveMu is released — that is what makes Delete's already-marked
	// short-circuit sound. has() deliberately takes only mu, so an
	// in-flight Delete's mark is visible to searches before (and, on a
	// failed write, briefly without) persistence — an acceptable read
	// anomaly that keeps disk I/O off the search hot path. saveMu is
	// also separate from Index.mu so deletes never stall searches.
	saveMu sync.Mutex
}

// has is on the search hot path; Build and Open always initialise the
// set, so no nil guard is needed.
func (d *deleteSet) has(id uint64) bool {
	d.mu.RLock()
	_, ok := d.ids[id]
	d.mu.RUnlock()
	return ok
}

func (d *deleteSet) len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.ids)
}

// Delete marks object id as deleted; it will no longer be returned by
// Search. Deleting an unknown id is an error; deleting twice is a no-op.
func (ix *Index) Delete(id uint64) error {
	ix.mu.RLock()
	count := ix.vectors.Count()
	ix.mu.RUnlock()
	if id >= count {
		return fmt.Errorf("%w: delete of id %d (have %d)", ErrUnknownID, id, count)
	}
	d := ix.deleted
	d.saveMu.Lock()
	defer d.saveMu.Unlock()
	d.mu.Lock()
	_, already := d.ids[id]
	d.ids[id] = struct{}{}
	d.mu.Unlock()
	if already {
		return nil // mark unchanged, already persisted
	}
	if err := ix.saveDeleteSetLocked(); err != nil {
		// Roll back so memory stays consistent with disk and a retry
		// attempts the persist again instead of short-circuiting.
		d.mu.Lock()
		delete(d.ids, id)
		d.mu.Unlock()
		return err
	}
	return nil
}

// Undelete removes the deletion mark from id. Undeleting an unmarked
// (but known) id is a no-op; an unknown id is an error.
func (ix *Index) Undelete(id uint64) error {
	ix.mu.RLock()
	count := ix.vectors.Count()
	ix.mu.RUnlock()
	if id >= count {
		return fmt.Errorf("%w: undelete of id %d (have %d)", ErrUnknownID, id, count)
	}
	d := ix.deleted
	d.saveMu.Lock()
	defer d.saveMu.Unlock()
	d.mu.Lock()
	_, marked := d.ids[id]
	delete(d.ids, id)
	d.mu.Unlock()
	if !marked {
		return nil
	}
	if err := ix.saveDeleteSetLocked(); err != nil {
		d.mu.Lock()
		d.ids[id] = struct{}{}
		d.mu.Unlock()
		return err
	}
	return nil
}

// DeletedCount returns the number of marked objects.
func (ix *Index) DeletedCount() int { return ix.deleted.len() }

func newDeleteSet() *deleteSet {
	return &deleteSet{ids: make(map[uint64]struct{})}
}

// saveDeleteSetLocked snapshots and writes the mark file. Callers hold
// d.saveMu, which both serialises the writes and guarantees they land
// in the order their snapshots were taken — a stale snapshot can never
// overwrite a newer one.
func (ix *Index) saveDeleteSetLocked() error {
	d := ix.deleted
	d.mu.RLock()
	buf := make([]byte, 8+8*len(d.ids))
	binary.BigEndian.PutUint64(buf, uint64(len(d.ids)))
	off := 8
	for id := range d.ids {
		binary.BigEndian.PutUint64(buf[off:], id)
		off += 8
	}
	d.mu.RUnlock()
	// Atomic replace: a crash at any point leaves either the old
	// complete file or the new complete file, never a torn deleted.bin
	// that would fail loadDeleteSet and brick Open.
	return atomicfile.WriteFile(ix.dir, deletedFile, buf)
}

func (ix *Index) loadDeleteSet() error {
	buf, err := os.ReadFile(filepath.Join(ix.dir, deletedFile))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	if len(buf) < 8 {
		return fmt.Errorf("core: corrupt %s", deletedFile)
	}
	n := binary.BigEndian.Uint64(buf)
	// Divide rather than multiply: 8+8*n overflows for a corrupt count.
	if n > uint64(len(buf)-8)/8 {
		return fmt.Errorf("core: truncated %s", deletedFile)
	}
	for i := uint64(0); i < n; i++ {
		ix.deleted.ids[binary.BigEndian.Uint64(buf[8+8*i:])] = struct{}{}
	}
	// Prune marks for ids beyond the vector store: an insert whose
	// append never flushed before a crash but was deleted in the same
	// window persists the mark without the vector. The id will be
	// reassigned to a future insert, which must not be born deleted —
	// rewrite the file so the stale mark cannot outlive this Open.
	pruned := false
	count := ix.vectors.Count()
	for id := range ix.deleted.ids {
		if id >= count {
			delete(ix.deleted.ids, id)
			pruned = true
		}
	}
	if pruned {
		ix.deleted.saveMu.Lock()
		defer ix.deleted.saveMu.Unlock()
		return ix.saveDeleteSetLocked()
	}
	return nil
}
