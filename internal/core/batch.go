package core

import (
	"runtime"
	"sync"
)

// SearchBatch answers many queries concurrently (across queries, not
// trees), returning per-query results in input order. This is the
// natural shape for the §5.5 image-search workload, where one logical
// query fans out into N descriptor searches.
func (ix *Index) SearchBatch(queries [][]float32, k int) ([][]Result, error) {
	out := make([][]Result, len(queries))
	errs := make([]error, len(queries))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(queries) {
		workers = len(queries)
	}
	var wg sync.WaitGroup
	ch := make(chan int, len(queries))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for qi := range ch {
				out[qi], errs[qi] = ix.Search(queries[qi], k)
			}
		}()
	}
	for qi := range queries {
		ch <- qi
	}
	close(ch)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
