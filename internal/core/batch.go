package core

import (
	"context"

	"github.com/hd-index/hdindex/internal/fanout"
)

// SearchBatch answers many queries concurrently (across queries, not
// trees), returning per-query results in input order. This is the
// natural shape for the §5.5 image-search workload, where one logical
// query fans out into N descriptor searches.
func (ix *Index) SearchBatch(queries [][]float32, k int) ([][]Result, error) {
	return ix.SearchBatchContext(context.Background(), queries, k)
}

// SearchBatchContext is SearchBatch honouring ctx. The fan-out runs on a
// bounded worker pool (Params.BatchWorkers, default GOMAXPROCS) so a
// huge batch cannot monopolise the scheduler; cancellation or the first
// per-query error stops the remaining work promptly and is returned.
func (ix *Index) SearchBatchContext(ctx context.Context, queries [][]float32, k int) ([][]Result, error) {
	if len(queries) == 0 {
		return nil, nil
	}
	out := make([][]Result, len(queries))
	err := fanout.Run(ctx, len(queries), ix.params.BatchWorkers, func(ctx context.Context, qi int) error {
		res, err := ix.SearchContext(ctx, queries[qi], k)
		if err != nil {
			return err
		}
		out[qi] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
