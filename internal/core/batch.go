package core

import (
	"context"
	"fmt"

	"github.com/hd-index/hdindex/internal/fanout"
)

// SearchBatch answers many queries concurrently (across queries, not
// trees), returning per-query results in input order. This is the
// natural shape for the §5.5 image-search workload, where one logical
// query fans out into N descriptor searches.
func (ix *Index) SearchBatch(queries [][]float32, k int) ([][]Result, error) {
	return ix.SearchBatchContext(context.Background(), queries, k)
}

// SearchBatchContext is SearchBatch honouring ctx. The fan-out runs on a
// bounded worker pool (Params.BatchWorkers, default GOMAXPROCS) so a
// huge batch cannot monopolise the scheduler; cancellation or the first
// per-query error stops the remaining work promptly and is returned.
func (ix *Index) SearchBatchContext(ctx context.Context, queries [][]float32, k int) ([][]Result, error) {
	res, _, err := ix.QueryBatch(ctx, queries, k, SearchOptions{})
	return res, err
}

// QueryBatch is SearchBatchContext with per-query cascade overrides and
// per-query work counters: the same options apply to every query in the
// batch and are resolved and validated once, up front — a bad option
// set fails before any query runs. Results and stats are returned in
// input order.
func (ix *Index) QueryBatch(ctx context.Context, queries [][]float32, k int, o SearchOptions) ([][]Result, []*QueryStats, error) {
	if len(queries) == 0 {
		return nil, nil, nil
	}
	// Validate once for the whole batch: options (fail fast, before any
	// tree walk) and dimensionality (so a malformed query deep in the
	// batch cannot waste the fan-out ahead of it).
	if _, err := ix.planFor(k, o); err != nil {
		return nil, nil, err
	}
	for i, q := range queries {
		if len(q) != ix.nu {
			return nil, nil, fmt.Errorf("%w: query %d has %d dims, index has %d", ErrDimMismatch, i, len(q), ix.nu)
		}
	}
	out := make([][]Result, len(queries))
	stats := make([]*QueryStats, len(queries))
	err := fanout.Run(ctx, len(queries), ix.params.BatchWorkers, func(ctx context.Context, qi int) error {
		res, st, err := ix.Query(ctx, queries[qi], k, o)
		if err != nil {
			return err
		}
		out[qi], stats[qi] = res, st
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return out, stats, nil
}
