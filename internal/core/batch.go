package core

import (
	"context"
	"runtime"
	"sync"
)

// SearchBatch answers many queries concurrently (across queries, not
// trees), returning per-query results in input order. This is the
// natural shape for the §5.5 image-search workload, where one logical
// query fans out into N descriptor searches.
func (ix *Index) SearchBatch(queries [][]float32, k int) ([][]Result, error) {
	return ix.SearchBatchContext(context.Background(), queries, k)
}

// SearchBatchContext is SearchBatch honouring ctx. The fan-out runs on a
// bounded worker pool (Params.BatchWorkers, default GOMAXPROCS) so a
// huge batch cannot monopolise the scheduler; cancellation or the first
// per-query error stops the remaining work promptly and is returned.
func (ix *Index) SearchBatchContext(ctx context.Context, queries [][]float32, k int) ([][]Result, error) {
	if len(queries) == 0 {
		return nil, nil
	}
	workers := ix.params.BatchWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) {
		workers = len(queries)
	}

	// A cancellable child context lets the first failure abort the
	// queries still queued or in flight.
	bctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		failMu   sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		failMu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		failMu.Unlock()
	}

	out := make([][]Result, len(queries))
	var wg sync.WaitGroup
	ch := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for qi := range ch {
				if bctx.Err() != nil {
					continue // drain without searching
				}
				res, err := ix.SearchContext(bctx, queries[qi], k)
				if err != nil {
					fail(err)
					continue
				}
				out[qi] = res
			}
		}()
	}
dispatch:
	for qi := range queries {
		select {
		case ch <- qi:
		case <-bctx.Done():
			break dispatch
		}
	}
	close(ch)
	wg.Wait()

	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
