package core

import (
	"sync"

	"github.com/hd-index/hdindex/internal/rdbtree"
	"github.com/hd-index/hdindex/internal/topk"
)

// Per-search scratch reuse. A query allocates O(τ·α) intermediate state
// — fetched leaf entries, their reference-distance arrays, filter items,
// the candidate union — none of which outlives the call. Under serving
// load (internal/server) those allocations dominate the hot path, so
// both levels of scratch are pooled: one searchScratch per query, one
// treeScratch per searchTree invocation (trees may run concurrently
// within a query, so tree scratch cannot live inside searchScratch).

// searchScratch is the per-query state of SearchWithStatsContext.
type searchScratch struct {
	qdist      []float64
	vec        []float32
	perTree    [][]uint64
	fetched    []int
	errs       []error
	seen       map[uint64]struct{}
	candidates []uint64
}

var searchPool = sync.Pool{New: func() any { return new(searchScratch) }}

// getSearchScratch returns a scratch sized for this index's parameters.
func (ix *Index) getSearchScratch() *searchScratch {
	s := searchPool.Get().(*searchScratch)
	p := ix.params
	if cap(s.qdist) < p.M {
		s.qdist = make([]float64, p.M)
	}
	s.qdist = s.qdist[:p.M]
	if cap(s.vec) < ix.nu {
		s.vec = make([]float32, ix.nu)
	}
	s.vec = s.vec[:ix.nu]
	// Each slice is gated on its own capacity: allocator size-class
	// rounding can give the three different caps for the same make
	// length, so checking one cap for all three could reslice a
	// shorter sibling out of range.
	if cap(s.perTree) < p.Tau {
		s.perTree = make([][]uint64, p.Tau)
	}
	if cap(s.fetched) < p.Tau {
		s.fetched = make([]int, p.Tau)
	}
	if cap(s.errs) < p.Tau {
		s.errs = make([]error, p.Tau)
	}
	s.perTree = s.perTree[:p.Tau]
	s.fetched = s.fetched[:p.Tau]
	s.errs = s.errs[:p.Tau]
	for t := 0; t < p.Tau; t++ {
		s.perTree[t], s.fetched[t], s.errs[t] = nil, 0, nil
	}
	if s.seen == nil {
		s.seen = make(map[uint64]struct{}, p.Gamma*p.Tau)
	} else {
		clear(s.seen)
	}
	s.candidates = s.candidates[:0]
	return s
}

func putSearchScratch(s *searchScratch) { searchPool.Put(s) }

// treeScratch is the per-tree state of searchTree: the Hilbert key, the
// α fetched entries (backed by one flat refDists arena), and the filter
// item slices.
type treeScratch struct {
	coords  []uint32
	key     []byte
	entries []rdbtree.Entry
	arena   []float32
	tri     []topk.Item
	pto     []topk.Item
}

var treePool = sync.Pool{New: func() any { return new(treeScratch) }}

func (ix *Index) getTreeScratch() *treeScratch {
	s := treePool.Get().(*treeScratch)
	if cap(s.coords) < ix.eta {
		s.coords = make([]uint32, ix.eta)
	}
	s.coords = s.coords[:ix.eta]
	return s
}

func putTreeScratch(s *treeScratch) { treePool.Put(s) }
