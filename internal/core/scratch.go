package core

import (
	"sync"

	"github.com/hd-index/hdindex/internal/rdbtree"
	"github.com/hd-index/hdindex/internal/topk"
)

// Per-search scratch reuse. A query allocates O(τ·α) intermediate state
// — fetched leaf entries, their reference-distance arrays, filter items,
// the candidate union — none of which outlives the call. Under serving
// load (internal/server) those allocations dominate the hot path, so
// both levels of scratch are pooled: one searchScratch per query, one
// treeScratch per searchTree invocation (trees may run concurrently
// within a query, so tree scratch cannot live inside searchScratch).

// searchScratch is the per-query state of SearchWithStatsContext.
type searchScratch struct {
	qdist   []float64
	vec     []float32
	perTree [][]uint64
	// treeIDs holds one reusable id buffer per tree: searchTree appends
	// its surviving ids into treeIDs[t][:0] and the (possibly regrown)
	// slice lands in perTree[t]; putSearchScratch reclaims the grown
	// capacity back into treeIDs for the next query.
	treeIDs [][]uint64
	fetched []int
	errs    []error
	// stamp is the candidate-dedup structure: a dense epoch-stamped
	// array indexed by object id. stamp[id] == epoch means "seen this
	// query"; bumping epoch invalidates every entry at once, so unlike
	// a hash map there are no hash operations on the hot path and
	// nothing to clear between queries. It is bounded by
	// stampMaxObjects; stores beyond that (and ids a corrupted tree
	// hands out past the store's count) dedup through the seen map
	// instead, so memory stays O(min(n, cap)) rather than O(dataset).
	stamp      []uint32
	epoch      uint32
	seen       map[uint64]struct{}
	candidates []uint64
	best       *topk.List
	items      []topk.Item
}

// stampMaxObjects caps the dense dedup array at 8 MiB per pooled
// scratch. Every pooled scratch (≈ one per concurrent searcher) holds
// one, so the cap keeps dedup memory from scaling with the dataset;
// larger stores fall back to the map, which costs O(candidates).
const stampMaxObjects = 1 << 21

var searchPool = sync.Pool{New: func() any { return new(searchScratch) }}

// getSearchScratch returns a scratch sized for this index's parameters.
func (ix *Index) getSearchScratch() *searchScratch {
	s := searchPool.Get().(*searchScratch)
	p := ix.params
	if cap(s.qdist) < p.M {
		s.qdist = make([]float64, p.M)
	}
	s.qdist = s.qdist[:p.M]
	if cap(s.vec) < ix.nu {
		s.vec = make([]float32, ix.nu)
	}
	s.vec = s.vec[:ix.nu]
	// Each slice is gated on its own capacity: allocator size-class
	// rounding can give the three different caps for the same make
	// length, so checking one cap for all three could reslice a
	// shorter sibling out of range.
	if cap(s.perTree) < p.Tau {
		s.perTree = make([][]uint64, p.Tau)
	}
	if cap(s.treeIDs) < p.Tau {
		s.treeIDs = make([][]uint64, p.Tau)
	}
	if cap(s.fetched) < p.Tau {
		s.fetched = make([]int, p.Tau)
	}
	if cap(s.errs) < p.Tau {
		s.errs = make([]error, p.Tau)
	}
	s.perTree = s.perTree[:p.Tau]
	s.treeIDs = s.treeIDs[:p.Tau]
	s.fetched = s.fetched[:p.Tau]
	s.errs = s.errs[:p.Tau]
	for t := 0; t < p.Tau; t++ {
		s.perTree[t], s.fetched[t], s.errs[t] = nil, 0, nil
	}
	s.resetDedup(ix.vectors.Count())
	s.candidates = s.candidates[:0]
	return s
}

// resetDedup prepares candidate dedup for a store of n objects: a dense
// stamp array up to stampMaxObjects, the map beyond. Growing the array
// allocates zeroed memory, so the epoch restarts at 1; on the (rare)
// uint32 wraparound the array is cleared once rather than colliding
// with stamps from 2^32 queries ago.
func (s *searchScratch) resetDedup(n uint64) {
	if len(s.seen) > 0 {
		clear(s.seen)
	}
	if n > stampMaxObjects {
		s.stamp = s.stamp[:0] // every id takes the map path
		return
	}
	if uint64(cap(s.stamp)) < n {
		s.stamp = make([]uint32, n)
		s.epoch = 0
	}
	s.stamp = s.stamp[:n]
	s.epoch++
	if s.epoch == 0 {
		// The whole capacity, not just [:n]: a smaller index may be
		// resliced back up within capacity by a later query, and stale
		// stamps beyond n would then collide with small post-wrap
		// epochs.
		clear(s.stamp[:cap(s.stamp)])
		s.epoch = 1
	}
}

// markSeen records id for the current query, reporting whether it was
// already seen. Ids beyond the stamp's range — a store larger than
// stampMaxObjects, or a corrupted tree handing out ids the store never
// assigned — dedup through the map instead, never by growing the
// array (a garbage id near 2^63 must not become a huge allocation);
// out-of-range ids still reach refinement, which surfaces ErrBadID.
func (s *searchScratch) markSeen(id uint64) bool {
	if id < uint64(len(s.stamp)) {
		if s.stamp[id] == s.epoch {
			return true
		}
		s.stamp[id] = s.epoch
		return false
	}
	if s.seen == nil {
		s.seen = make(map[uint64]struct{}, 64)
	}
	if _, ok := s.seen[id]; ok {
		return true
	}
	s.seen[id] = struct{}{}
	return false
}

// bestFor returns the pooled top-k list, reallocating only when k
// changes between queries.
func (s *searchScratch) bestFor(k int) *topk.List {
	if s.best == nil || s.best.K() != k {
		s.best = topk.New(k)
	} else {
		s.best.Reset()
	}
	return s.best
}

func putSearchScratch(s *searchScratch) {
	// Reclaim the per-tree id buffers grown inside searchTree so their
	// capacity carries over to the next query.
	for t, ids := range s.perTree {
		if ids != nil {
			s.treeIDs[t] = ids[:0]
		}
	}
	searchPool.Put(s)
}

// treeScratch is the per-tree state of searchTree: the Hilbert key, the
// α fetched entries (backed by one flat refDists arena), and the filter
// item slices.
type treeScratch struct {
	coords  []uint32
	key     []byte
	entries []rdbtree.Entry
	arena   []float32
	tri     []topk.Item
	pto     []topk.Item
}

var treePool = sync.Pool{New: func() any { return new(treeScratch) }}

func (ix *Index) getTreeScratch() *treeScratch {
	s := treePool.Get().(*treeScratch)
	if cap(s.coords) < ix.eta {
		s.coords = make([]uint32, ix.eta)
	}
	s.coords = s.coords[:ix.eta]
	return s
}

func putTreeScratch(s *treeScratch) { treePool.Put(s) }
