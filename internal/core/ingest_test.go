package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/hd-index/hdindex/internal/data"
	"github.com/hd-index/hdindex/internal/topk"
	"github.com/hd-index/hdindex/internal/vecmath"
)

// ingestParams keeps the memtable threshold far above every test's
// insert count, so compactions only happen when a test asks for one.
func ingestParams() Params {
	return Params{Tau: 4, Omega: 8, M: 4, Alpha: 256, Gamma: 64, Seed: 7,
		MemtableMaxVectors: 1 << 20}
}

// crashCopy snapshots dir into a sibling directory while the index that
// owns it is still open — the moral equivalent of SIGKILL: whatever the
// process wrote (and only that) is what recovery sees. The WAL
// group-commits before acknowledging, so every acked write is in the
// copy.
func crashCopy(t *testing.T, dir string) string {
	t.Helper()
	dst := filepath.Join(t.TempDir(), "crashed")
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.IsDir() {
			t.Fatalf("unexpected subdirectory %s in index dir", e.Name())
		}
		src, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out, err := os.Create(filepath.Join(dst, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := io.Copy(out, src); err != nil {
			t.Fatal(err)
		}
		src.Close()
		if err := out.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// bruteForce is the reference answer over an explicit vector set minus
// deletions: exactly what a query over (trees ∪ memtable) must return.
func bruteForce(vectors [][]float32, deleted map[uint64]bool, q []float32, k int) []Result {
	best := topk.New(k)
	for id, v := range vectors {
		if deleted[uint64(id)] {
			continue
		}
		best.Push(uint64(id), vecmath.DistSq(q, v))
	}
	items := best.Items()
	out := make([]Result, len(items))
	for i, it := range items {
		out[i] = Result{ID: it.ID, Dist: math.Sqrt(it.Dist)}
	}
	return out
}

func requireIdentical(t *testing.T, label string, got, want []Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d results, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i].ID != want[i].ID || math.Float64bits(got[i].Dist) != math.Float64bits(want[i].Dist) {
			t.Fatalf("%s rank %d: got %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

// Acknowledged inserts must survive a crash before any compaction: the
// reopened index answers bit-identically to the still-open one.
func TestInsertsSurviveCrashBeforeCompaction(t *testing.T) {
	ds := data.Generate(data.Config{Name: "crash", N: 800, Dim: 32, Clusters: 4, Lo: 0, Hi: 1, Seed: 31})
	queries := ds.PerturbedQueries(8, 0.02, 32)
	dir := filepath.Join(t.TempDir(), "ix")
	ix, err := Build(dir, ds.Vectors[:600], ingestParams())
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()

	for _, v := range ds.Vectors[600:] {
		if _, err := ix.Insert(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := ix.Delete(10); err != nil {
		t.Fatal(err)
	}
	if err := ix.Delete(700); err != nil { // memtable-resident id
		t.Fatal(err)
	}

	want := make([][]Result, len(queries))
	for qi, q := range queries {
		res, err := ix.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		want[qi] = res
	}

	// Crash: copy the live directory, never Close, reopen the copy.
	re, err := Open(crashCopy(t, dir), OpenOptions{MemtableMaxVectors: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Count() != 800 {
		t.Fatalf("recovered count = %d, want 800", re.Count())
	}
	if got := re.IngestStats().Replayed; got != 202 {
		t.Fatalf("replayed = %d, want 202 (200 inserts + 2 deletes)", got)
	}
	if re.DeletedCount() != 2 {
		t.Fatalf("recovered deleted count = %d, want 2", re.DeletedCount())
	}
	for qi, q := range queries {
		res, err := re.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, fmt.Sprintf("query %d after crash recovery", qi), res, want[qi])
	}
}

// A torn final WAL record — the crash landed mid-write — must truncate
// cleanly: every record before the tear replays, the torn one is gone,
// and the log accepts new appends.
func TestTornFinalWALRecordTruncates(t *testing.T) {
	ds := data.Generate(data.Config{Name: "torn", N: 300, Dim: 16, Lo: 0, Hi: 1, Seed: 41})
	dir := filepath.Join(t.TempDir(), "ix")
	p := Params{Tau: 2, Omega: 8, M: 3, Alpha: 64, Gamma: 16, Seed: 42, MemtableMaxVectors: 1 << 20}
	ix, err := Build(dir, ds.Vectors[:290], p)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range ds.Vectors[290:] {
		if _, err := ix.Insert(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the last record: chop 5 bytes off the log tail.
	walPath := filepath.Join(dir, "wal.log")
	fi, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(walPath, fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir, OpenOptions{MemtableMaxVectors: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Count() != 299 {
		t.Fatalf("count after torn tail = %d, want 299 (id 299's record was torn)", re.Count())
	}
	if got := re.IngestStats().Replayed; got != 9 {
		t.Fatalf("replayed = %d, want 9", got)
	}
	// The torn insert's id is reassigned — exactly the unacknowledged-
	// write-reuse semantics — and the index keeps working.
	id, err := re.Insert(ds.Vectors[299])
	if err != nil {
		t.Fatal(err)
	}
	if id != 299 {
		t.Fatalf("reassigned id = %d, want 299", id)
	}
	res, err := re.Search(ds.Vectors[299], 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].ID != 299 || res[0].Dist > 1e-6 {
		t.Fatalf("post-recovery insert not queryable: %+v", res)
	}
}

// With exhaustive filter settings a query over a non-empty memtable must
// equal brute force over (trees ∪ memtable) minus deletions — the
// tentpole's visibility contract.
func TestMemtableQueryEqualsBruteForce(t *testing.T) {
	ds := data.Generate(data.Config{Name: "vis", N: 600, Dim: 24, Clusters: 3, Lo: 0, Hi: 1, Seed: 51})
	queries := ds.PerturbedQueries(10, 0.05, 52)
	dir := filepath.Join(t.TempDir(), "ix")
	p := Params{Tau: 2, Omega: 8, M: 3, Seed: 53, Alpha: 500, Beta: 500, Gamma: 500,
		MemtableMaxVectors: 1 << 20}
	ix, err := Build(dir, ds.Vectors[:500], p)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	for _, v := range ds.Vectors[500:] {
		if _, err := ix.Insert(v); err != nil {
			t.Fatal(err)
		}
	}
	deleted := map[uint64]bool{33: true, 550: true}
	for id := range deleted {
		if err := ix.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	if ix.IngestStats().MemtableVectors != 100 {
		t.Fatalf("memtable = %d, want 100", ix.IngestStats().MemtableVectors)
	}
	for qi, q := range queries {
		res, st, err := ix.Query(context.Background(), q, 10, SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		// 99, not 100: the deleted memtable-resident id 550 is skipped
		// before the distance computation and never counted.
		if st.MemtableScanned != 99 {
			t.Fatalf("query %d scanned %d memtable vectors, want 99", qi, st.MemtableScanned)
		}
		requireIdentical(t, fmt.Sprintf("query %d vs brute force", qi),
			res, bruteForce(ds.Vectors, deleted, q, 10))
	}
}

// Insert-then-compact must answer like a one-shot build over the same
// vectors: both are exact under exhaustive settings, so their results
// are bit-identical.
func TestInsertThenCompactEqualsOneShotBuild(t *testing.T) {
	ds := data.Generate(data.Config{Name: "cmp", N: 500, Dim: 16, Clusters: 4, Lo: 0, Hi: 1, Seed: 61})
	queries := ds.PerturbedQueries(10, 0.05, 62)
	p := Params{Tau: 2, Omega: 8, M: 3, Seed: 63, Alpha: 500, Beta: 500, Gamma: 500,
		MemtableMaxVectors: 1 << 20}

	inc, err := Build(filepath.Join(t.TempDir(), "inc"), ds.Vectors[:400], p)
	if err != nil {
		t.Fatal(err)
	}
	defer inc.Close()
	for _, v := range ds.Vectors[400:] {
		if _, err := inc.Insert(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := inc.Compact(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := inc.IngestStats()
	if st.MemtableVectors != 0 || st.Compactions != 1 || st.LastCompactionVectors != 100 {
		t.Fatalf("post-compaction stats = %+v", st)
	}

	oneShot, err := Build(filepath.Join(t.TempDir(), "one"), ds.Vectors, p)
	if err != nil {
		t.Fatal(err)
	}
	defer oneShot.Close()

	for qi, q := range queries {
		a, sa, err := inc.Query(context.Background(), q, 10, SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if sa.MemtableScanned != 0 {
			t.Fatalf("query %d still scanning the memtable after compaction", qi)
		}
		b, _, err := oneShot.Query(context.Background(), q, 10, SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, fmt.Sprintf("query %d incremental vs one-shot", qi), a, b)
	}
}

// At non-exhaustive settings, compaction's bulk merge must index the
// tail exactly as the legacy in-place insert path did: both indexes hold
// the same (key, id, refdists) entries, so queries are bit-identical.
func TestCompactionMatchesDirectInsert(t *testing.T) {
	ds := data.Generate(data.Config{Name: "dir", N: 700, Dim: 32, Clusters: 5, Lo: 0, Hi: 1, Seed: 71})
	queries := ds.PerturbedQueries(10, 0.02, 72)
	p := ingestParams()

	viaWAL, err := Build(filepath.Join(t.TempDir(), "wal"), ds.Vectors[:600], p)
	if err != nil {
		t.Fatal(err)
	}
	defer viaWAL.Close()
	viaDirect, err := Build(filepath.Join(t.TempDir(), "direct"), ds.Vectors[:600], p)
	if err != nil {
		t.Fatal(err)
	}
	defer viaDirect.Close()

	for _, v := range ds.Vectors[600:] {
		if _, err := viaWAL.Insert(v); err != nil {
			t.Fatal(err)
		}
		if _, err := viaDirect.insertDirect(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := viaWAL.Compact(context.Background()); err != nil {
		t.Fatal(err)
	}
	for qi, q := range queries {
		a, err := viaWAL.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		b, err := viaDirect.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, fmt.Sprintf("query %d compacted vs direct-insert", qi), a, b)
	}
}

// Compacting twice (second time with an empty memtable) and crashing
// after a compaction must both be harmless.
func TestCompactIdempotentAndDurable(t *testing.T) {
	ds := data.Generate(data.Config{Name: "idem", N: 400, Dim: 16, Lo: 0, Hi: 1, Seed: 81})
	dir := filepath.Join(t.TempDir(), "ix")
	p := Params{Tau: 2, Omega: 8, M: 3, Alpha: 64, Gamma: 16, Seed: 82, MemtableMaxVectors: 1 << 20}
	ix, err := Build(dir, ds.Vectors[:350], p)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	for _, v := range ds.Vectors[350:] {
		if _, err := ix.Insert(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := ix.Compact(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := ix.Compact(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := ix.IngestStats().Compactions; got != 1 {
		t.Fatalf("empty compaction must be a no-op; compactions = %d, want 1", got)
	}
	q := ds.Vectors[380]
	want, err := ix.Search(q, 5)
	if err != nil {
		t.Fatal(err)
	}

	// Crash right after the compaction: the rewritten WAL is empty, the
	// new tree generation is committed, nothing replays.
	re, err := Open(crashCopy(t, dir), OpenOptions{MemtableMaxVectors: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.IngestStats().Replayed; got != 0 {
		t.Fatalf("replayed = %d after a clean compaction, want 0", got)
	}
	if re.Count() != 400 {
		t.Fatalf("count = %d, want 400", re.Count())
	}
	got, err := re.Search(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "post-compaction crash recovery", got, want)
}

// Stale next-generation tree files from a compaction that died before
// its meta.json commit must be ignored and cleaned up: recovery comes
// from the old generation plus the WAL.
func TestCrashMidCompactionRecoversFromWAL(t *testing.T) {
	ds := data.Generate(data.Config{Name: "mid", N: 300, Dim: 16, Lo: 0, Hi: 1, Seed: 91})
	dir := filepath.Join(t.TempDir(), "ix")
	p := Params{Tau: 2, Omega: 8, M: 3, Alpha: 64, Gamma: 16, Seed: 92, MemtableMaxVectors: 1 << 20}
	ix, err := Build(dir, ds.Vectors[:280], p)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	for _, v := range ds.Vectors[280:] {
		if _, err := ix.Insert(v); err != nil {
			t.Fatal(err)
		}
	}
	crashed := crashCopy(t, dir)
	// Fake the uncommitted half of a compaction: next-gen tree files
	// exist (garbage contents — they must never be opened), meta.json
	// still names generation 0.
	for tr := 0; tr < p.Tau; tr++ {
		name := filepath.Join(crashed, fmt.Sprintf("tree_%02d.g1.pg", tr))
		if err := os.WriteFile(name, []byte("partial compaction debris"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	re, err := Open(crashed, OpenOptions{MemtableMaxVectors: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Count() != 300 {
		t.Fatalf("count = %d, want 300", re.Count())
	}
	if re.IngestStats().Replayed != 20 {
		t.Fatalf("replayed = %d, want 20", re.IngestStats().Replayed)
	}
	for tr := 0; tr < p.Tau; tr++ {
		name := filepath.Join(crashed, fmt.Sprintf("tree_%02d.g1.pg", tr))
		if _, err := os.Stat(name); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("stale generation file %s not removed", name)
		}
	}
	// The recovered index must still compact cleanly into generation 1.
	if err := re.Compact(context.Background()); err != nil {
		t.Fatal(err)
	}
	res, err := re.Search(ds.Vectors[290], 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].ID != 290 || res[0].Dist > 1e-6 {
		t.Fatalf("replayed vector lost after re-compaction: %+v", res)
	}
}

// Compaction reclaims delete marks: the dropped entries never come back,
// and Undelete of a reclaimed id reports ErrPurged rather than silently
// resurrecting a vector whose tree entries are gone.
func TestCompactionPurgesDeletes(t *testing.T) {
	ds := data.Generate(data.Config{Name: "purge", N: 300, Dim: 16, Lo: 0, Hi: 1, Seed: 101})
	dir := filepath.Join(t.TempDir(), "ix")
	p := Params{Tau: 2, Omega: 8, M: 3, Alpha: 300, Beta: 300, Gamma: 300, Seed: 102,
		MemtableMaxVectors: 1 << 20}
	ix, err := Build(dir, ds.Vectors[:280], p)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	for _, v := range ds.Vectors[280:] {
		if _, err := ix.Insert(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := ix.Delete(50); err != nil {
		t.Fatal(err)
	}
	if err := ix.Delete(290); err != nil {
		t.Fatal(err)
	}
	if err := ix.Compact(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Both deletions are now purged: count unchanged (ids stay
	// allocated), DeletedCount still reports them, Undelete refuses.
	if ix.Count() != 300 {
		t.Fatalf("count = %d, want 300", ix.Count())
	}
	if ix.DeletedCount() != 2 {
		t.Fatalf("deleted count = %d, want 2", ix.DeletedCount())
	}
	for _, id := range []uint64{50, 290} {
		if err := ix.Undelete(id); !errors.Is(err, ErrPurged) {
			t.Fatalf("Undelete(%d) = %v, want ErrPurged", id, err)
		}
	}
	deleted := map[uint64]bool{50: true, 290: true}
	for qi, q := range ds.PerturbedQueries(5, 0.05, 103) {
		res, err := ix.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, fmt.Sprintf("query %d after purge", qi),
			res, bruteForce(ds.Vectors, deleted, q, 10))
	}

	// Purged-ness survives reopen.
	if err := ix.Flush(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(crashCopy(t, dir), OpenOptions{MemtableMaxVectors: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if err := re.Undelete(50); !errors.Is(err, ErrPurged) {
		t.Fatalf("Undelete(50) after reopen = %v, want ErrPurged", err)
	}
}

// The background compactor fires on its own once the memtable crosses
// the threshold: no explicit Compact call, the WAL shrinks back, and
// every insert stays queryable throughout.
func TestBackgroundCompactionTriggers(t *testing.T) {
	ds := data.Generate(data.Config{Name: "bg", N: 400, Dim: 16, Lo: 0, Hi: 1, Seed: 111})
	dir := filepath.Join(t.TempDir(), "ix")
	p := Params{Tau: 2, Omega: 8, M: 3, Alpha: 64, Gamma: 16, Seed: 112,
		MemtableMaxVectors: 32}
	ix, err := Build(dir, ds.Vectors[:200], p)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	for _, v := range ds.Vectors[200:] {
		if _, err := ix.Insert(v); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := ix.IngestStats()
		if st.Compactions >= 1 && st.MemtableVectors <= 32 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background compactor never fired: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	res, err := ix.Search(ds.Vectors[399], 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].ID != 399 || res[0].Dist > 1e-6 {
		t.Fatalf("last insert lost across background compaction: %+v", res)
	}
}

// Interval-mode WAL: acked-after-write, fsynced on a cadence. The data
// still lands in the file (page cache), so a process-kill crash copy
// sees everything.
func TestIntervalSyncMode(t *testing.T) {
	ds := data.Generate(data.Config{Name: "iv", N: 200, Dim: 16, Lo: 0, Hi: 1, Seed: 121})
	dir := filepath.Join(t.TempDir(), "ix")
	p := ingestParams()
	p.Tau, p.Seed = 2, 122
	p.WALSyncInterval = 5 * time.Millisecond
	ix, err := Build(dir, ds.Vectors[:180], p)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	for _, v := range ds.Vectors[180:] {
		if _, err := ix.Insert(v); err != nil {
			t.Fatal(err)
		}
	}
	re, err := Open(crashCopy(t, dir), OpenOptions{MemtableMaxVectors: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Count() != 200 {
		t.Fatalf("count = %d, want 200", re.Count())
	}
}

// Closing the index mid-stream and reopening without ever compacting
// must keep replaying the same WAL tail — replay is idempotent across
// arbitrarily many open/close cycles.
func TestRepeatedReopenReplaysIdempotently(t *testing.T) {
	ds := data.Generate(data.Config{Name: "re", N: 260, Dim: 16, Lo: 0, Hi: 1, Seed: 131})
	dir := filepath.Join(t.TempDir(), "ix")
	p := Params{Tau: 2, Omega: 8, M: 3, Alpha: 64, Gamma: 16, Seed: 132, MemtableMaxVectors: 1 << 20}
	ix, err := Build(dir, ds.Vectors[:250], p)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range ds.Vectors[250:] {
		if _, err := ix.Insert(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	for cycle := 0; cycle < 3; cycle++ {
		re, err := Open(dir, OpenOptions{MemtableMaxVectors: 1 << 20})
		if err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		if re.Count() != 260 {
			t.Fatalf("cycle %d: count = %d, want 260", cycle, re.Count())
		}
		if re.IngestStats().Replayed != 10 {
			t.Fatalf("cycle %d: replayed = %d, want 10", cycle, re.IngestStats().Replayed)
		}
		if err := re.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
