package core

import (
	"errors"
	"fmt"
)

// ErrBadOptions reports a per-query option set that cannot form a valid
// filter cascade: a negative or absurd knob, a cascade that widens
// instead of narrowing (γ > β or β > α), or an explicit knob too small
// to yield k results. It is returned before any tree is touched, so a
// bad request fails fast instead of deep in the tree walk.
var ErrBadOptions = errors.New("core: bad search options")

// ErrDimMismatch reports a query or insert vector whose dimensionality
// differs from the index's. Callers (the facade, the HTTP layer) match
// it with errors.Is to map the failure to a client error.
var ErrDimMismatch = errors.New("core: dimensionality mismatch")

// PtolemaicMode is the tri-state per-query override of the Ptolemaic
// filter: inherit the build-time choice, force it on, or force it off.
type PtolemaicMode int8

// Ptolemaic filter override states.
const (
	PtolemaicDefault PtolemaicMode = iota // use the built Params.UsePtolemaic
	PtolemaicOn
	PtolemaicOff
)

// maxKnob bounds explicit per-query α/β/γ/MaxCandidates values. The
// limit is far above any sensible operating point (the paper peaks at
// α = 8192); it exists so a garbage request cannot coerce the scratch
// buffers into multi-gigabyte allocations.
const maxKnob = 1 << 24

// SearchOptions carries per-query overrides of the filter-cascade
// parameters that Params froze at build time. The zero value inherits
// every built default, which is what keeps the legacy Search* methods
// bit-identical to Query with no options. It is a small value type:
// copy it freely, never share pointers across queries.
type SearchOptions struct {
	// Alpha overrides the leaf candidates fetched per tree (0 = the
	// built Params.Alpha). Raising it explores further along each
	// Hilbert curve — more I/O, better recall.
	Alpha int
	// Beta overrides the triangular-filter survivor count used when the
	// Ptolemaic filter is active (0 = built default, capped at the
	// effective α).
	Beta int
	// Gamma overrides the per-tree filter output size (0 = built
	// default, capped at the effective β). Raising it refines more
	// candidates — more exact distance work, better MAP.
	Gamma int
	// MaxCandidates caps κ, the deduplicated candidate union refined
	// against raw vectors, bounding the query's refinement I/O however
	// the per-tree knobs are set (0 = no cap). Candidates are kept in
	// per-tree filter rank order when truncating.
	MaxCandidates int
	// Ptolemaic switches the §5.2.5 filter per query: better MAP for
	// the same I/O at roughly double the filtering CPU.
	Ptolemaic PtolemaicMode
	// Degrade requests the cheap cascade: when the whole α/β/γ triple is
	// unset, α and γ shrink to a quarter of the built values (floored at
	// 64 and 16 respectively, and at k) so the query does a fraction of
	// the I/O and refinement work. The serving layer sets it under
	// overload pressure; queries that pin any cascade knob explicitly
	// have opted out and run exactly what they asked for. QueryStats
	// echoes Degraded=true only when a knob actually shrank.
	Degrade bool
}

// searchPlan is a fully resolved SearchOptions: every field positive
// and cascade-consistent, ready for the tree walk. Resolution happens
// exactly once per Query (or once per QueryBatch, shared by the whole
// batch).
type searchPlan struct {
	alpha, beta, gamma int
	maxCandidates      int // 0 = unlimited
	ptolemaic          bool
	degraded           bool // the degrade request actually shrank a knob
}

func badOptions(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadOptions, fmt.Sprintf(format, args...))
}

// ValidateOptions resolves o against the built parameters for a query
// asking k neighbours and reports ErrBadOptions without running
// anything — the fail-fast hook the batch entry points (and the shard
// layer's scatter) use so a bad option set never burns a fan-out.
func (ix *Index) ValidateOptions(k int, o SearchOptions) error {
	_, err := ix.planFor(k, o)
	return err
}

// planFor resolves o against the built parameters and validates the
// result for a query asking k neighbours. Unset knobs inherit the built
// defaults, clamped so the cascade still narrows (an explicit α below
// the built γ pulls β and γ down with it); explicitly set knobs are
// never silently adjusted — an inconsistent explicit cascade is an
// ErrBadOptions.
func (ix *Index) planFor(k int, o SearchOptions) (searchPlan, error) {
	if k < 1 {
		return searchPlan{}, badOptions("k must be >= 1, got %d", k)
	}
	for _, knob := range []struct {
		name string
		v    int
	}{{"alpha", o.Alpha}, {"beta", o.Beta}, {"gamma", o.Gamma}, {"max_candidates", o.MaxCandidates}} {
		if knob.v < 0 {
			return searchPlan{}, badOptions("%s must be >= 0, got %d", knob.name, knob.v)
		}
		if knob.v > maxKnob {
			return searchPlan{}, badOptions("%s = %d exceeds the limit %d", knob.name, knob.v, maxKnob)
		}
	}
	switch o.Ptolemaic {
	case PtolemaicDefault, PtolemaicOn, PtolemaicOff:
	default:
		return searchPlan{}, badOptions("unknown ptolemaic mode %d", o.Ptolemaic)
	}

	p := ix.params
	plan := searchPlan{ptolemaic: p.UsePtolemaic, maxCandidates: o.MaxCandidates}

	// Adaptive degradation: under overload the serving layer sets
	// Degrade, and a query that left the whole cascade unset runs the
	// "fast" preset's cascade (fastCascade — the preset table is the
	// single source of the clamps). A query that pins ANY cascade knob
	// has opted out: its explicit contract is honoured unchanged, which
	// also means Degrade can never turn a valid explicit cascade into
	// an invalid one.
	if o.Degrade && o.Alpha == 0 && o.Beta == 0 && o.Gamma == 0 {
		a, g := fastCascade(p, k)
		if a < p.Alpha || g < min(p.Gamma, p.Alpha) {
			o.Alpha, o.Gamma = a, g
			plan.degraded = true
		}
	}

	switch o.Ptolemaic {
	case PtolemaicOn:
		plan.ptolemaic = true
	case PtolemaicOff:
		plan.ptolemaic = false
	}
	plan.alpha = p.Alpha
	if o.Alpha > 0 {
		plan.alpha = o.Alpha
	}
	// Unset β resolves the way a fresh build would: β = α (§5.2.5's
	// default ratio) whenever α was overridden or the filter it feeds
	// is off — an inherited built β must not strangle an explicit γ
	// that a rebuild with these knobs would happily accept. Only a
	// build-time β on a Ptolemaic index at the built α survives
	// inheritance.
	plan.beta = min(p.Beta, plan.alpha)
	if o.Alpha > 0 || !plan.ptolemaic {
		plan.beta = plan.alpha
	}
	if o.Beta > 0 {
		plan.beta = o.Beta
	}
	plan.gamma = min(p.Gamma, plan.beta)
	if o.Gamma > 0 {
		plan.gamma = o.Gamma
	}

	// An explicit cascade must narrow on its own: requesting γ wider
	// than α is a contradiction, not something to paper over.
	if plan.beta > plan.alpha {
		return searchPlan{}, badOptions("filter cascade must narrow: beta=%d > alpha=%d", plan.beta, plan.alpha)
	}
	if plan.gamma > plan.beta {
		return searchPlan{}, badOptions("filter cascade must narrow: gamma=%d > beta=%d", plan.gamma, plan.beta)
	}
	// Explicitly chosen knobs must be able to yield k results; inherited
	// defaults are exempt so a small built index never starts rejecting
	// the ks it always answered (with fewer candidates, as before).
	if o.Alpha > 0 && o.Alpha < k {
		return searchPlan{}, badOptions("alpha=%d < k=%d", o.Alpha, k)
	}
	if o.Gamma > 0 && o.Gamma < k {
		return searchPlan{}, badOptions("gamma=%d < k=%d", o.Gamma, k)
	}
	if o.MaxCandidates > 0 && o.MaxCandidates < k {
		return searchPlan{}, badOptions("max_candidates=%d < k=%d", o.MaxCandidates, k)
	}
	return plan, nil
}
