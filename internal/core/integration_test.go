package core

import (
	"path/filepath"
	"sync"
	"testing"

	"github.com/hd-index/hdindex/internal/data"
)

// Concurrent searches on one open index must be race-free and agree
// with sequential results (run under -race in CI).
func TestConcurrentSearches(t *testing.T) {
	ds := data.Generate(data.Config{N: 1500, Dim: 32, Clusters: 6, Lo: 0, Hi: 1, Seed: 91})
	queries := ds.PerturbedQueries(16, 0.01, 92)
	dir := filepath.Join(t.TempDir(), "ix")
	p := Params{Tau: 4, Omega: 8, M: 4, Alpha: 256, Gamma: 64, Parallel: true, Seed: 93}
	ix, err := Build(dir, ds.Vectors, p)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()

	want := make([][]Result, len(queries))
	for i, q := range queries {
		want[i], err = ix.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errs := make([]error, len(queries))
	for i, q := range queries {
		wg.Add(1)
		go func(i int, q []float32) {
			defer wg.Done()
			got, err := ix.Search(q, 10)
			if err != nil {
				errs[i] = err
				return
			}
			for j := range got {
				if got[j] != want[i][j] {
					errs[i] = errMismatch
					return
				}
			}
		}(i, q)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
}

var errMismatch = &mismatchError{}

type mismatchError struct{}

func (*mismatchError) Error() string { return "concurrent result differs from sequential" }

// §4.4.1: the number of disk accesses per query is
// O(τ·(log_θ n + α/Ω + γ)). With the cache disabled, measured page
// reads must stay within a small constant of that bound.
func TestDiskAccessBound(t *testing.T) {
	ds := data.Generate(data.Config{N: 4000, Dim: 32, Clusters: 6, Lo: 0, Hi: 1, Seed: 94})
	queries := ds.PerturbedQueries(10, 0.01, 95)
	dir := filepath.Join(t.TempDir(), "ix")
	p := Params{Tau: 4, Omega: 8, M: 8, Alpha: 512, Gamma: 128, DisableCache: true, Seed: 96}
	ix, err := Build(dir, ds.Vectors, p)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()

	omega := ix.trees[0].LeafOrder()
	var worst uint64
	for _, q := range queries {
		ix.ResetIOStats()
		if _, err := ix.Search(q, 10); err != nil {
			t.Fatal(err)
		}
		if r := ix.IOStats().Reads; r > worst {
			worst = r
		}
	}
	// Bound: per tree, tree height + leaf pages for alpha entries;
	// plus kappa <= tau*gamma vector fetches (each vector may span 2 pages
	// at worst for this geometry: 128 B vectors fit one page).
	bound := uint64(p.Tau*(8+p.Alpha/omega+2) + p.Tau*p.Gamma*2)
	if worst > bound {
		t.Errorf("page reads %d exceed the §4.4.1 bound %d (Ω=%d)", worst, bound, omega)
	}
	if worst == 0 {
		t.Error("cache-off query performed no physical reads")
	}
}

// Full pipeline through the file formats: generate → write fvecs → read
// back → build → query → write ivecs → read back, mimicking the CLI flow.
func TestFileFormatPipeline(t *testing.T) {
	tmp := t.TempDir()
	ds := data.SIFTLike(800, 97)
	queries := ds.PerturbedQueries(5, 0.01, 98)

	dataPath := filepath.Join(tmp, "d.fvecs")
	if err := data.WriteFvecs(dataPath, ds.Vectors); err != nil {
		t.Fatal(err)
	}
	vectors, err := data.ReadFvecs(dataPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(vectors) != 800 {
		t.Fatalf("read %d vectors", len(vectors))
	}

	ix, err := Build(filepath.Join(tmp, "ix"), vectors, Params{
		Tau: 8, Omega: 8, M: 5, Alpha: 256, Gamma: 64, Seed: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()

	results := make([][]uint64, len(queries))
	for qi, q := range queries {
		res, err := ix.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		ids := make([]uint64, len(res))
		for i, r := range res {
			ids[i] = r.ID
		}
		results[qi] = ids
	}
	outPath := filepath.Join(tmp, "r.ivecs")
	if err := data.WriteIvecs(outPath, results); err != nil {
		t.Fatal(err)
	}
	back, err := data.ReadIvecs(outPath)
	if err != nil {
		t.Fatal(err)
	}
	for qi := range results {
		for i := range results[qi] {
			if back[qi][i] != results[qi][i] {
				t.Fatal("ivecs round trip mismatch")
			}
		}
	}
}
