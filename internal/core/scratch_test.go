package core

import "testing"

// A corrupted tree can hand out ids far past the store's count; dedup
// must route them through the map instead of growing the dense stamp
// array toward the garbage id (a near-2^63 id must not become a huge
// allocation). They still dedup correctly and reach refinement, which
// surfaces ErrBadID.
func TestMarkSeenCorruptIDDoesNotGrowStamp(t *testing.T) {
	s := new(searchScratch)
	s.resetDedup(10)
	if s.markSeen(5) {
		t.Fatal("first sighting reported as seen")
	}
	if !s.markSeen(5) {
		t.Fatal("second sighting not deduped")
	}
	huge := uint64(1) << 62
	if s.markSeen(huge) {
		t.Fatal("first corrupt id reported as seen")
	}
	if !s.markSeen(huge) {
		t.Fatal("corrupt id not deduped")
	}
	if len(s.stamp) != 10 {
		t.Fatalf("stamp grew to %d entries chasing a corrupt id", len(s.stamp))
	}
}

// Stores beyond stampMaxObjects dedup through the map so per-scratch
// memory stays O(candidates), not O(dataset).
func TestResetDedupLargeStoreUsesMap(t *testing.T) {
	s := new(searchScratch)
	s.resetDedup(stampMaxObjects + 1)
	if len(s.stamp) != 0 {
		t.Fatalf("dense stamp sized %d for an over-cap store", len(s.stamp))
	}
	if s.markSeen(123) || !s.markSeen(123) {
		t.Fatal("map-mode dedup broken")
	}
	// Dropping back to a small store must not leak previous marks.
	s.resetDedup(1000)
	if s.markSeen(123) {
		t.Fatal("stale mark survived resetDedup")
	}
	if !s.markSeen(123) {
		t.Fatal("dense-mode dedup broken after mode switch")
	}
}

// Epoch wraparound must clear the array instead of colliding with
// stamps from 2^32 queries ago.
func TestResetDedupEpochWraparound(t *testing.T) {
	s := new(searchScratch)
	s.resetDedup(8)
	s.markSeen(3)
	s.epoch = ^uint32(0) // force the wrap on the next reset
	s.stamp[3] = s.epoch
	s.resetDedup(8)
	if s.epoch != 1 {
		t.Fatalf("epoch after wrap = %d, want 1", s.epoch)
	}
	if s.markSeen(3) {
		t.Fatal("stale stamp treated as seen after wraparound")
	}
}
