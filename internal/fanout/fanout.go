// Package fanout runs a bounded worker-pool fan-out with cooperative
// cancellation: the shape shared by core's batch search, shard's batch
// search, and shard's per-query scatter-gather. One implementation
// keeps the failure semantics — first error cancels the rest, parent
// cancellation wins the race to be reported — identical everywhere.
package fanout

import (
	"context"
	"runtime"
	"sync"
)

// Run invokes fn(ctx, i) for every i in [0, n) on at most workers
// concurrent goroutines (workers <= 0 means GOMAXPROCS). The first
// error cancels the context passed to the remaining calls and is
// returned; work not yet dispatched is dropped. If the parent ctx is
// cancelled, ctx.Err() is returned unless a real error was recorded
// first.
func Run(ctx context.Context, n, workers int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	fctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		failMu   sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		failMu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		failMu.Unlock()
	}

	var wg sync.WaitGroup
	ch := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ch {
				if fctx.Err() != nil {
					continue // drain without working
				}
				if err := fn(fctx, i); err != nil {
					fail(err)
				}
			}
		}()
	}
dispatch:
	for i := 0; i < n; i++ {
		select {
		case ch <- i:
		case <-fctx.Done():
			break dispatch
		}
	}
	close(ch)
	wg.Wait()

	// A worker cancelled by our own cancel() reports ctx.Canceled; the
	// caller should see the original cause. A recorded real error
	// therefore wins over the parent's cancellation, which is checked
	// second so dropped work still surfaces as an error.
	failMu.Lock()
	err := firstErr
	failMu.Unlock()
	if err != nil {
		return err
	}
	return ctx.Err()
}
