package fanout

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

func TestRunAll(t *testing.T) {
	var hit [20]int32
	err := Run(context.Background(), len(hit), 3, func(_ context.Context, i int) error {
		atomic.AddInt32(&hit[i], 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range hit {
		if h != 1 {
			t.Fatalf("index %d ran %d times", i, h)
		}
	}
}

func TestRunFirstErrorWins(t *testing.T) {
	boom := errors.New("boom")
	var ran int32
	err := Run(context.Background(), 100, 2, func(ctx context.Context, i int) error {
		atomic.AddInt32(&ran, 1)
		if i == 0 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if n := atomic.LoadInt32(&ran); n == 100 {
		t.Error("error did not stop the remaining work")
	}
}

func TestRunParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Run(ctx, 10, 2, func(ctx context.Context, i int) error { return ctx.Err() })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
}

func TestRunEmpty(t *testing.T) {
	if err := Run(context.Background(), 0, 4, func(context.Context, int) error {
		t.Fatal("fn must not run")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
