// Package shard partitions an HD-Index across N independent sub-indexes
// (each a core.Index in its own subdirectory), described by a
// manifest.json at the layout root:
//
//	dir/
//	  manifest.json     {"format_version":1,"shards":4,"dim":128,...}
//	  shard-00/         a complete core.Index (meta.json, tree_*.pg, ...)
//	  shard-01/
//	  shard-02/
//	  shard-03/
//
// Vectors are striped round-robin, so global id g lives in shard g mod N
// at local id g div N. The striping keeps shard sizes within one vector
// of each other and the global id space dense and append-only, exactly
// like the single-index layout's; Insert routes to the shard owning the
// smallest unassigned global id, which also lets a layout whose shards
// persisted unevenly across a crash self-heal instead of refusing to
// open.
//
// Shards are built concurrently (bounded by Params.BuildWorkers) and
// searched with a scatter-gather fan-out whose per-shard top-k results
// are merged through internal/topk. Each shard carries its own reference
// objects, RDB-trees, and deletion marks, so every durability property
// of core.Index holds per shard — and therefore for the whole layout.
package shard

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/hd-index/hdindex/internal/atomicfile"
)

// ManifestFile is the layout descriptor's file name; its presence is
// what distinguishes a sharded layout from a legacy single-index
// directory (which has meta.json at its root instead).
const ManifestFile = "manifest.json"

// FormatVersion is the manifest schema version written by this package.
const FormatVersion = 1

// Manifest describes a sharded on-disk layout.
type Manifest struct {
	FormatVersion int `json:"format_version"`
	Shards        int `json:"shards"`
	Dim           int `json:"dim"`
	// UUID identifies this build: one random identifier shared by the
	// layout and the identity stamp in every shard subdirectory, so a
	// cluster coordinator can prove an endpoint serves a shard of THIS
	// build. Empty on manifests written before identities existed —
	// readers must treat absence as "unverifiable", not as a mismatch.
	UUID string `json:"uuid,omitempty"`
	// CreatedUnix is the build time in Unix seconds — informational
	// metadata for tooling (hdtool info), not consulted by Open.
	CreatedUnix int64 `json:"created_unix"`
}

// shardDir returns the subdirectory of shard s under root.
func shardDir(root string, s int) string {
	return filepath.Join(root, fmt.Sprintf("shard-%02d", s))
}

// IsSharded reports whether dir holds a manifest-backed sharded layout.
func IsSharded(dir string) bool {
	fi, err := os.Stat(filepath.Join(dir, ManifestFile))
	return err == nil && fi.Mode().IsRegular()
}

// ClearManifest removes dir's manifest so the directory stops being
// detected as a sharded layout. Rebuilders call it first: a build that
// replaces the layout (or replaces it with a legacy single index) must
// invalidate the old commit point before touching any files, so a crash
// mid-rebuild leaves a directory Open rejects rather than a stale
// manifest silently serving the previous dataset. A missing manifest
// (or missing directory) is not an error.
func ClearManifest(dir string) error {
	err := os.Remove(filepath.Join(dir, ManifestFile))
	if err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

// ClearLayout removes the sharded layout's artifacts under dir: the
// manifest first (invalidating the commit point), then every shard
// subdirectory. Rebuilders — including a legacy build replacing a
// sharded layout — call it so nothing of the old layout survives to be
// served or leak disk. Missing pieces (or a missing dir) are fine.
func ClearLayout(dir string) error {
	if err := ClearManifest(dir); err != nil {
		return err
	}
	// Glob rather than counting up from shard-00: a gap in the numbering
	// (say, a crash partway through a previous ClearLayout) must not
	// strand the stale dirs behind it.
	matches, err := filepath.Glob(filepath.Join(dir, "shard-*"))
	if err != nil {
		return err
	}
	for _, p := range matches {
		if err := os.RemoveAll(p); err != nil {
			return err
		}
	}
	return nil
}

// ReadManifest loads and validates dir's manifest.
func ReadManifest(dir string) (*Manifest, error) {
	buf, err := os.ReadFile(filepath.Join(dir, ManifestFile))
	if err != nil {
		return nil, fmt.Errorf("shard: read manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(buf, &m); err != nil {
		return nil, fmt.Errorf("shard: parse manifest: %w", err)
	}
	if m.FormatVersion != FormatVersion {
		return nil, fmt.Errorf("shard: manifest format version %d, this build reads %d", m.FormatVersion, FormatVersion)
	}
	if m.Shards < 1 {
		return nil, fmt.Errorf("shard: manifest declares %d shards", m.Shards)
	}
	if m.Dim < 1 {
		return nil, fmt.Errorf("shard: manifest declares dimensionality %d", m.Dim)
	}
	return &m, nil
}

// writeManifest persists m atomically (the same crash discipline as
// core's deleted.bin). The manifest is the layout's commit point: Open
// refuses a directory without one, so a build that dies mid-way leaves
// no half-layout that looks complete.
func writeManifest(dir string, m *Manifest) error {
	buf, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return atomicfile.WriteFile(dir, ManifestFile, buf)
}

// now is stubbed in tests.
var now = time.Now
