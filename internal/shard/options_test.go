package shard

import (
	"context"
	"errors"
	"path/filepath"
	"testing"

	"github.com/hd-index/hdindex/internal/core"
	"github.com/hd-index/hdindex/internal/data"
)

// Query with zero options must be bit-identical to the legacy stats
// path on a multi-shard layout, and the aggregated stats must echo the
// effective cascade once (not summed across shards).
func TestShardedQueryZeroOptionsMatchesSearch(t *testing.T) {
	ds := data.Generate(data.Config{Name: "qopt", N: 1600, Dim: 32, Clusters: 5, Lo: 0, Hi: 1, Seed: 23})
	queries := ds.PerturbedQueries(10, 0.02, 24)
	p := core.Params{Tau: 4, Omega: 8, M: 5, Alpha: 256, Gamma: 64, Seed: 9}
	four, err := Build(filepath.Join(t.TempDir(), "four"), ds.Vectors, Params{Params: p, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer four.Close()

	for qi, q := range queries {
		want, wantSt, err := four.SearchWithStats(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		got, st, err := four.Query(context.Background(), q, 10, core.SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		requireSameResults(t, "query", got, want)
		if st.Candidates != wantSt.Candidates || st.TreeEntries != wantSt.TreeEntries {
			t.Fatalf("query %d: stats diverge: %+v vs %+v", qi, st, wantSt)
		}
		if st.Alpha != 256 || st.Gamma != 64 || st.Ptolemaic {
			t.Fatalf("query %d: aggregated stats echo %+v, want the built cascade once", qi, st)
		}
	}
}

// A per-query override applies to every shard: γ supersets per tree per
// shard make the summed candidate count monotone in γ, and the batch
// path must agree with the single-query path.
func TestShardedQueryOverrides(t *testing.T) {
	ds := data.Generate(data.Config{Name: "qovr", N: 1600, Dim: 32, Clusters: 5, Lo: 0, Hi: 1, Seed: 25})
	queries := ds.PerturbedQueries(6, 0.02, 26)
	p := core.Params{Tau: 4, Omega: 8, M: 5, Alpha: 256, Gamma: 64, Seed: 9}
	four, err := Build(filepath.Join(t.TempDir(), "four"), ds.Vectors, Params{Params: p, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer four.Close()

	prev := -1
	for _, gamma := range []int{16, 32, 64} {
		o := core.SearchOptions{Gamma: gamma}
		var total int
		for _, q := range queries {
			_, st, err := four.Query(context.Background(), q, 10, o)
			if err != nil {
				t.Fatal(err)
			}
			if st.Gamma != gamma {
				t.Fatalf("gamma=%d: stats echo %+v", gamma, st)
			}
			total += st.Candidates
		}
		if total < prev {
			t.Fatalf("gamma=%d: %d candidates < previous %d", gamma, total, prev)
		}
		prev = total

		batch, batchStats, err := four.QueryBatch(context.Background(), queries, 10, o)
		if err != nil {
			t.Fatal(err)
		}
		for qi, q := range queries {
			want, wantSt, err := four.Query(context.Background(), q, 10, o)
			if err != nil {
				t.Fatal(err)
			}
			requireSameResults(t, "batch query", batch[qi], want)
			if batchStats[qi].Candidates != wantSt.Candidates {
				t.Fatalf("gamma=%d query %d: batch candidates %d, single %d",
					gamma, qi, batchStats[qi].Candidates, wantSt.Candidates)
			}
		}
	}
}

// Typed errors must cross the shard layer intact.
func TestShardedTypedErrors(t *testing.T) {
	ds := data.Generate(data.Config{Name: "qerr", N: 800, Dim: 32, Clusters: 4, Lo: 0, Hi: 1, Seed: 27})
	p := core.Params{Tau: 4, Omega: 8, M: 4, Alpha: 128, Gamma: 32, Seed: 3}
	four, err := Build(filepath.Join(t.TempDir(), "four"), ds.Vectors, Params{Params: p, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer four.Close()

	if _, _, err := four.Query(context.Background(), make([]float32, 5), 10, core.SearchOptions{}); !errors.Is(err, core.ErrDimMismatch) {
		t.Fatalf("query dim err = %v", err)
	}
	if _, err := four.Insert(make([]float32, 5)); !errors.Is(err, core.ErrDimMismatch) {
		t.Fatalf("insert dim err = %v", err)
	}
	if _, _, err := four.Query(context.Background(), ds.Vectors[0], 10, core.SearchOptions{Alpha: 8, Gamma: 16}); !errors.Is(err, core.ErrBadOptions) {
		t.Fatalf("bad options err = %v", err)
	}
	// Batch validation fails fast, before any fan-out.
	if _, _, err := four.QueryBatch(context.Background(), [][]float32{ds.Vectors[0]}, 10, core.SearchOptions{Gamma: 4}); !errors.Is(err, core.ErrBadOptions) {
		t.Fatalf("batch bad options err = %v", err)
	}
	if _, _, err := four.QueryBatch(context.Background(), [][]float32{ds.Vectors[0], make([]float32, 3)}, 10, core.SearchOptions{}); !errors.Is(err, core.ErrDimMismatch) {
		t.Fatalf("batch dim err = %v", err)
	}
}

// The κ cap is a per-query budget: on an N-shard layout it is split
// across the scatter, so the aggregated refinement work respects the
// caller's ceiling instead of multiplying it by N.
func TestShardedMaxCandidatesIsGlobalBudget(t *testing.T) {
	ds := data.Generate(data.Config{Name: "qcap", N: 2000, Dim: 32, Clusters: 5, Lo: 0, Hi: 1, Seed: 29})
	p := core.Params{Tau: 4, Omega: 8, M: 5, Alpha: 512, Gamma: 128, Seed: 9}
	four, err := Build(filepath.Join(t.TempDir(), "four"), ds.Vectors, Params{Params: p, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer four.Close()

	for _, q := range ds.PerturbedQueries(5, 0.02, 30) {
		_, unbounded, err := four.Query(context.Background(), q, 10, core.SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		budget := unbounded.Candidates / 2
		if budget < 40 {
			t.Skip("dataset too small for a meaningful cap")
		}
		res, st, err := four.Query(context.Background(), q, 10, core.SearchOptions{MaxCandidates: budget})
		if err != nil {
			t.Fatal(err)
		}
		if st.Candidates > budget {
			t.Fatalf("budget %d but %d candidates refined across shards", budget, st.Candidates)
		}
		if len(res) != 10 {
			t.Fatalf("capped query returned %d results", len(res))
		}
	}
	// A budget below k is rejected, as on a single shard.
	if _, _, err := four.Query(context.Background(), ds.Vectors[0], 10, core.SearchOptions{MaxCandidates: 5}); !errors.Is(err, core.ErrBadOptions) {
		t.Fatalf("cap<k err = %v", err)
	}
}
