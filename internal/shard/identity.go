package shard

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"github.com/hd-index/hdindex/internal/atomicfile"
)

// IdentityFile is the per-shard identity stamp written into every shard
// subdirectory at build time. A shard directory served standalone (one
// hdserve per shard, the distributed deployment) reports this identity
// on /healthz and /stats, and a cluster coordinator checks it at
// startup — so a miswired endpoint (wrong shard, or a shard of a
// different build) is rejected before its results can be merged.
const IdentityFile = "identity.json"

// Identity names which shard of which sharded build a directory holds.
type Identity struct {
	// ClusterUUID is the layout's manifest UUID: one random identifier
	// per sharded build, shared by all its shards and by nothing else.
	ClusterUUID string `json:"cluster_uuid"`
	// Shard is this directory's ordinal in the layout (0-based).
	Shard int `json:"shard"`
	// Shards is the layout's total shard count.
	Shards int `json:"shards"`
	// Dim is the indexed dimensionality, repeated here so an identity
	// check catches a dimension mismatch without a second request.
	Dim int `json:"dim"`
}

// NewUUID returns a fresh 128-bit random identifier in hex.
func NewUUID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on the supported platforms; if it
		// somehow does, a constant is still a valid (if weak) id and
		// beats taking the build down.
		return "00000000000000000000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// WriteIdentity stamps dir with id, atomically.
func WriteIdentity(dir string, id Identity) error {
	buf, err := json.MarshalIndent(id, "", "  ")
	if err != nil {
		return err
	}
	return atomicfile.WriteFile(dir, IdentityFile, buf)
}

// ReadIdentity loads dir's identity stamp. A directory without one —
// a legacy single-index layout, or a shard built before identities
// existed — returns (nil, nil): absence is a valid state, not an error.
func ReadIdentity(dir string) (*Identity, error) {
	buf, err := os.ReadFile(filepath.Join(dir, IdentityFile))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("shard: read identity: %w", err)
	}
	var id Identity
	if err := json.Unmarshal(buf, &id); err != nil {
		return nil, fmt.Errorf("shard: parse identity: %w", err)
	}
	return &id, nil
}
