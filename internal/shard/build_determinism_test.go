package shard

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"github.com/hd-index/hdindex/internal/core"
)

// shardFiles maps relative path → bytes for every file under dir.
func shardFiles(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		out[rel] = b
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestShardedBuildDeterministicAcrossGOMAXPROCS pins layout-level
// determinism: varying available parallelism (and the BuildWorkers
// budget) must not change a single byte of any shard. Only
// manifest.json (embeds a creation timestamp) and identity.json (the
// cluster UUID is random by design — it exists to tell two builds
// apart) are exempt.
func TestShardedBuildDeterministicAcrossGOMAXPROCS(t *testing.T) {
	ds := testData(t, 1501)
	build := func(dir string, procs, workers int) {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		p := testParams(3)
		p.BuildWorkers = workers
		s, err := Build(dir, ds.Vectors, p)
		if err != nil {
			t.Fatal(err)
		}
		s.Close()
	}
	dirA, dirB := t.TempDir(), t.TempDir()
	build(dirA, 1, 1)
	build(dirB, 8, 8)

	fa, fb := shardFiles(t, dirA), shardFiles(t, dirB)
	if len(fa) != len(fb) {
		t.Fatalf("file sets differ: %d vs %d", len(fa), len(fb))
	}
	for name, ab := range fa {
		switch filepath.Base(name) {
		case "manifest.json":
			continue // CreatedUnix timestamp differs by design
		case "identity.json":
			continue // ClusterUUID differs by design
		}
		bb, ok := fb[name]
		if !ok {
			t.Fatalf("%s missing from second build", name)
		}
		if !bytes.Equal(ab, bb) {
			t.Fatalf("%s differs between GOMAXPROCS=1 and =8 builds", name)
		}
	}

	// Identical files ⇒ identical answers; spot-check through search.
	sa, err := Open(dirA, core.OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sa.Close()
	sb, err := Open(dirB, core.OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sb.Close()
	for _, q := range ds.PerturbedQueries(10, 0.01, 5) {
		ra, err := sa.SearchContext(context.Background(), q, 10)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := sb.SearchContext(context.Background(), q, 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(ra) != len(rb) {
			t.Fatalf("result counts differ: %d vs %d", len(ra), len(rb))
		}
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatalf("result %d differs: %+v vs %+v", i, ra[i], rb[i])
			}
		}
	}
}

// TestShardedBuildContextCancelled: a cancelled sharded build must
// leave a directory without a manifest, which Open rejects.
func TestShardedBuildContextCancelled(t *testing.T) {
	ds := testData(t, 900)
	dir := filepath.Join(t.TempDir(), "ix")
	// Complete layout first: cancellation of a rebuild must invalidate it.
	s, err := Build(dir, ds.Vectors, testParams(2))
	if err != nil {
		t.Fatal(err)
	}
	s.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := BuildContext(ctx, dir, ds.Vectors, testParams(2)); err == nil {
		t.Fatal("cancelled sharded build must fail")
	}
	if _, err := Open(dir, core.OpenOptions{}); err == nil {
		t.Fatal("Open must reject a cancelled build's directory")
	}
}

// TestShardedBuildStats: a fresh sharded build aggregates per-shard
// stats; an opened layout reports nil.
func TestShardedBuildStats(t *testing.T) {
	ds := testData(t, 800)
	dir := filepath.Join(t.TempDir(), "ix")
	s, err := Build(dir, ds.Vectors, testParams(2))
	if err != nil {
		t.Fatal(err)
	}
	bs := s.BuildStats()
	if bs == nil {
		t.Fatal("fresh sharded build must report BuildStats")
	}
	if bs.TotalMS <= 0 || bs.Allocs == 0 {
		t.Fatalf("implausible aggregate stats: %+v", bs)
	}
	s.Close()
	re, err := Open(dir, core.OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.BuildStats() != nil {
		t.Fatal("opened layout must not report BuildStats")
	}
}
