package shard

import (
	"fmt"
	"path/filepath"
	"testing"

	"github.com/hd-index/hdindex/internal/core"
	"github.com/hd-index/hdindex/internal/data"
)

// BenchmarkBuild measures the wall-clock win of partitioned
// construction: the same dataset built as one monolithic shard versus
// four concurrently built shards (the acceptance comparison; run with
// -benchtime to taste).
func BenchmarkBuild(b *testing.B) {
	ds := data.SIFTLike(8000, 3)
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			p := Params{
				Params: core.Params{Tau: 8, Omega: 8, M: 10, Alpha: 1024, Gamma: 256, Seed: 1},
				Shards: shards,
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				dir := filepath.Join(b.TempDir(), fmt.Sprintf("ix-%d", i))
				s, err := Build(dir, ds.Vectors, p)
				if err != nil {
					b.Fatal(err)
				}
				s.Close()
			}
		})
	}
}

// BenchmarkSearch compares scatter-gather query latency across layouts.
func BenchmarkSearch(b *testing.B) {
	ds := data.SIFTLike(8000, 3)
	queries := ds.PerturbedQueries(64, 0.01, 4)
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			s, err := Build(filepath.Join(b.TempDir(), "ix"), ds.Vectors, Params{
				Params: core.Params{Tau: 8, Omega: 8, M: 10, Alpha: 1024, Gamma: 256, Seed: 1},
				Shards: shards,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Search(queries[i%len(queries)], 10); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
