package shard

import (
	"path/filepath"
	"testing"

	"github.com/hd-index/hdindex/internal/core"
	"github.com/hd-index/hdindex/internal/data"
)

// requireSameResults fails unless both result lists agree rank by rank
// on ids and distances.
func requireSameResults(t *testing.T, label string, got, want []core.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i].ID != want[i].ID || got[i].Dist != want[i].Dist {
			t.Fatalf("%s rank %d: got (%d, %g), want (%d, %g)",
				label, i, got[i].ID, got[i].Dist, want[i].ID, want[i].Dist)
		}
	}
}

// A 1-shard layout is the monolithic index plus a manifest: same seed,
// same stripe (round-robin over 1 shard is the identity), same files —
// so every query must return bit-identical results.
func TestOneShardMatchesMonolithic(t *testing.T) {
	ds := data.Generate(data.Config{Name: "equiv", N: 1500, Dim: 32, Clusters: 5, Lo: 0, Hi: 1, Seed: 21})
	queries := ds.PerturbedQueries(15, 0.02, 22)
	p := core.Params{Tau: 4, Omega: 8, M: 5, Alpha: 512, Gamma: 128, Seed: 9}

	mono, err := core.Build(filepath.Join(t.TempDir(), "mono"), ds.Vectors, p)
	if err != nil {
		t.Fatal(err)
	}
	defer mono.Close()
	one, err := Build(filepath.Join(t.TempDir(), "one"), ds.Vectors, Params{Params: p, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer one.Close()

	for qi, q := range queries {
		want, wantSt, err := mono.SearchWithStats(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		got, gotSt, err := one.SearchWithStats(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		requireSameResults(t, "query", got, want)
		if gotSt.Candidates != wantSt.Candidates || gotSt.TreeEntries != wantSt.TreeEntries {
			t.Fatalf("query %d: stats diverge: %+v vs %+v", qi, gotSt, wantSt)
		}
	}
}

// With exhaustive filter parameters (alpha = beta = gamma = n, so no
// candidate is ever pruned) every layout computes the exact kNN — which
// makes the scatter-gather merge directly checkable: a 4-shard index
// must return the same ids, in the same order, as a 1-shard index.
func TestScatterGatherExhaustiveEquivalence(t *testing.T) {
	const n, k = 1200, 10
	ds := data.Generate(data.Config{Name: "equiv4", N: n, Dim: 16, Clusters: 4, Lo: 0, Hi: 1, Seed: 31})
	queries := ds.PerturbedQueries(15, 0.05, 32)
	p := core.Params{Tau: 4, Omega: 8, M: 4, Alpha: n, Beta: n, Gamma: n, Seed: 5}

	one, err := Build(filepath.Join(t.TempDir(), "one"), ds.Vectors, Params{Params: p, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer one.Close()
	four, err := Build(filepath.Join(t.TempDir(), "four"), ds.Vectors, Params{Params: p, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer four.Close()

	truthIDs, _ := data.GroundTruth(ds.Vectors, queries, k)
	for qi, q := range queries {
		want, err := one.Search(q, k)
		if err != nil {
			t.Fatal(err)
		}
		got, err := four.Search(q, k)
		if err != nil {
			t.Fatal(err)
		}
		requireSameResults(t, "query", got, want)
		// Both must equal brute-force ground truth: exhaustive params
		// mean "approximate" search degenerates to exact.
		for i, id := range truthIDs[qi] {
			if got[i].ID != id {
				t.Fatalf("query %d rank %d: id %d, want ground-truth %d", qi, i, got[i].ID, id)
			}
		}
	}
}
