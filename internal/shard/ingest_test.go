package shard

import (
	"context"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"testing"

	"github.com/hd-index/hdindex/internal/core"
	"github.com/hd-index/hdindex/internal/data"
)

// crashCopyTree snapshots the sharded layout while its owner is still
// open — the SIGKILL simulation: recovery sees exactly what reached the
// filesystem, nothing the process only held in memory.
func crashCopyTree(t *testing.T, dir string) string {
	t.Helper()
	dst := filepath.Join(t.TempDir(), "crashed")
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		src, err := os.Open(path)
		if err != nil {
			return err
		}
		defer src.Close()
		out, err := os.Create(target)
		if err != nil {
			return err
		}
		if _, err := io.Copy(out, src); err != nil {
			out.Close()
			return err
		}
		return out.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
	return dst
}

// Acknowledged inserts and deletes on a sharded layout must survive a
// crash with no Close and no Flush: each shard's WAL replays its stripe.
func TestShardedInsertsSurviveCrash(t *testing.T) {
	ds := data.Generate(data.Config{Name: "scrash", N: 900, Dim: 32, Clusters: 4, Lo: 0, Hi: 1, Seed: 141})
	queries := ds.PerturbedQueries(8, 0.02, 142)
	dir := filepath.Join(t.TempDir(), "ix")
	s, err := Build(dir, ds.Vectors[:800], Params{
		Params: core.Params{Tau: 4, Omega: 8, M: 4, Alpha: 256, Gamma: 64, Seed: 143,
			MemtableMaxVectors: 1 << 20},
		Shards: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i, v := range ds.Vectors[800:] {
		id, err := s.Insert(v)
		if err != nil {
			t.Fatal(err)
		}
		if id != uint64(800+i) {
			t.Fatalf("insert %d assigned id %d", i, id)
		}
	}
	if err := s.Delete(5); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(850); err != nil {
		t.Fatal(err)
	}
	want := make([][]core.Result, len(queries))
	for qi, q := range queries {
		res, err := s.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		want[qi] = res
	}

	re, err := Open(crashCopyTree(t, dir), core.OpenOptions{MemtableMaxVectors: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Count() != 900 {
		t.Fatalf("recovered count = %d, want 900", re.Count())
	}
	if re.DeletedCount() != 2 {
		t.Fatalf("recovered deleted = %d, want 2", re.DeletedCount())
	}
	if got := re.IngestStats().Replayed; got != 102 {
		t.Fatalf("replayed = %d, want 102", got)
	}
	for qi, q := range queries {
		res, err := re.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		requireSameResults(t, fmt.Sprintf("query %d after sharded crash", qi), res, want[qi])
	}
}

// Compact sweeps every shard's memtable into its trees; results are
// unchanged and the layout reports zero memtable residue.
func TestShardedCompact(t *testing.T) {
	ds := data.Generate(data.Config{Name: "scomp", N: 700, Dim: 32, Clusters: 4, Lo: 0, Hi: 1, Seed: 151})
	queries := ds.PerturbedQueries(8, 0.02, 152)
	dir := filepath.Join(t.TempDir(), "ix")
	s, err := Build(dir, ds.Vectors[:600], Params{
		Params: core.Params{Tau: 4, Omega: 8, M: 4, Alpha: 256, Gamma: 64, Seed: 153,
			MemtableMaxVectors: 1 << 20},
		Shards: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, v := range ds.Vectors[600:] {
		if _, err := s.Insert(v); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.IngestStats().MemtableVectors; got != 100 {
		t.Fatalf("memtable = %d, want 100", got)
	}
	want := make([][]core.Result, len(queries))
	for qi, q := range queries {
		res, err := s.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		want[qi] = res
	}
	if err := s.Compact(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := s.IngestStats()
	if st.MemtableVectors != 0 {
		t.Fatalf("memtable after Compact = %d, want 0", st.MemtableVectors)
	}
	if st.Compactions != 3 {
		t.Fatalf("compactions = %d, want 3 (one per shard)", st.Compactions)
	}
	for qi, q := range queries {
		res, err := s.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		requireSameResults(t, fmt.Sprintf("query %d after sharded compact", qi), res, want[qi])
	}
}

// A torn final WAL record on one shard loses only that shard's last
// unacknowledged write; the routing layer then reassigns the lost id
// first, self-healing the stripe.
func TestShardedTornWALRecord(t *testing.T) {
	ds := data.Generate(data.Config{Name: "storn", N: 310, Dim: 16, Lo: 0, Hi: 1, Seed: 161})
	dir := filepath.Join(t.TempDir(), "ix")
	s, err := Build(dir, ds.Vectors[:300], Params{
		Params: core.Params{Tau: 2, Omega: 8, M: 3, Alpha: 64, Gamma: 16, Seed: 162,
			MemtableMaxVectors: 1 << 20},
		Shards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Ids 300..309 round-robin: even ids to shard 0, odd to shard 1.
	for _, v := range ds.Vectors[300:] {
		if _, err := s.Insert(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the last record of shard 1's WAL — id 309's insert.
	walPath := filepath.Join(shardDir(dir, 1), "wal.log")
	fi, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(walPath, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir, core.OpenOptions{MemtableMaxVectors: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Count() != 309 {
		t.Fatalf("count after torn shard WAL = %d, want 309", re.Count())
	}
	// The next insert must refill the torn-away id 309.
	id, err := re.Insert(ds.Vectors[309])
	if err != nil {
		t.Fatal(err)
	}
	if id != 309 {
		t.Fatalf("reassigned id = %d, want 309", id)
	}
	res, err := re.Search(ds.Vectors[309], 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].ID != 309 || res[0].Dist > 1e-6 {
		t.Fatalf("refilled insert not queryable: %+v", res)
	}
}
