package shard

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"github.com/hd-index/hdindex/internal/core"
	"github.com/hd-index/hdindex/internal/data"
	"github.com/hd-index/hdindex/internal/metrics"
)

// testParams keeps shard-level tests fast but representative: real
// filtering (alpha < n) over clustered data.
func testParams(shards int) Params {
	return Params{
		Params: core.Params{Tau: 4, Omega: 8, M: 4, Alpha: 256, Gamma: 64, Seed: 7},
		Shards: shards,
	}
}

func testData(t *testing.T, n int) *data.Dataset {
	t.Helper()
	return data.Generate(data.Config{Name: "shardtest", N: n, Dim: 32, Clusters: 6, Lo: 0, Hi: 1, Seed: 11})
}

func TestBuildSearchQuality(t *testing.T) {
	ds := testData(t, 2001) // deliberately not divisible by 4
	queries := ds.PerturbedQueries(10, 0.01, 3)
	dir := filepath.Join(t.TempDir(), "ix")

	s, err := Build(dir, ds.Vectors, testParams(4))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if s.NumShards() != 4 {
		t.Fatalf("NumShards = %d", s.NumShards())
	}
	if s.Count() != 2001 || s.Dim() != 32 {
		t.Fatalf("count=%d dim=%d", s.Count(), s.Dim())
	}
	if s.SizeOnDisk() <= 0 {
		t.Fatal("SizeOnDisk must be positive")
	}

	// Striping balance: per-shard counts differ by at most one and sum
	// to the total.
	infos := s.ShardInfos()
	var sum, min, max uint64
	min = infos[0].Count
	for _, in := range infos {
		sum += in.Count
		if in.Count < min {
			min = in.Count
		}
		if in.Count > max {
			max = in.Count
		}
	}
	if sum != 2001 || max-min > 1 {
		t.Fatalf("shard counts %+v: sum=%d spread=%d", infos, sum, max-min)
	}

	truthIDs, _ := data.GroundTruth(ds.Vectors, queries, 10)
	var got [][]uint64
	for _, q := range queries {
		res, st, err := s.SearchWithStats(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != 10 {
			t.Fatalf("%d results", len(res))
		}
		if st.Candidates == 0 || st.TreeEntries == 0 {
			t.Fatalf("aggregated stats not populated: %+v", st)
		}
		if st.PageHits+st.PageMisses == 0 {
			t.Fatalf("buffer-pool counters not aggregated across shards: %+v", st)
		}
		ids := make([]uint64, len(res))
		for i, r := range res {
			ids[i] = r.ID
		}
		got = append(got, ids)
	}
	if m := metrics.MAP(got, truthIDs, 10); m < 0.5 {
		t.Errorf("sharded MAP@10 = %v", m)
	}
}

func TestInsertRoutingAndReopen(t *testing.T) {
	ds := testData(t, 1001)
	dir := filepath.Join(t.TempDir(), "ix")
	s, err := Build(dir, ds.Vectors, testParams(4))
	if err != nil {
		t.Fatal(err)
	}

	// Inserts continue the dense global id sequence and stay findable.
	for i := 0; i < 9; i++ {
		vec := make([]float32, 32)
		for d := range vec {
			vec[d] = 0.9 + float32(i)*0.001
		}
		id, err := s.Insert(vec)
		if err != nil {
			t.Fatal(err)
		}
		if want := uint64(1001 + i); id != want {
			t.Fatalf("insert %d assigned id %d, want %d", i, id, want)
		}
		res, err := s.Search(vec, 1)
		if err != nil {
			t.Fatal(err)
		}
		if res[0].ID != id {
			t.Fatalf("inserted id %d not nearest to itself: %+v", id, res[0])
		}
	}
	if s.Count() != 1010 {
		t.Fatalf("count = %d", s.Count())
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir, core.OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Count() != 1010 {
		t.Fatalf("reopened count = %d", re.Count())
	}
	// The next insert resumes the sequence where it left off.
	vec := make([]float32, 32)
	id, err := re.Insert(vec)
	if err != nil {
		t.Fatal(err)
	}
	if id != 1010 {
		t.Fatalf("post-reopen insert assigned id %d, want 1010", id)
	}
}

func TestDeleteRouting(t *testing.T) {
	ds := testData(t, 800)
	dir := filepath.Join(t.TempDir(), "ix")
	s, err := Build(dir, ds.Vectors, testParams(4))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	q := ds.Vectors[123]
	res, err := s.Search(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].ID != 123 {
		t.Fatalf("self-query returned %d", res[0].ID)
	}
	if err := s.Delete(123); err != nil {
		t.Fatal(err)
	}
	if s.DeletedCount() != 1 {
		t.Fatalf("DeletedCount = %d", s.DeletedCount())
	}
	res, err = s.Search(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].ID == 123 {
		t.Fatal("deleted id still returned")
	}
	if err := s.Undelete(123); err != nil {
		t.Fatal(err)
	}
	res, err = s.Search(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].ID != 123 {
		t.Fatal("undeleted id not returned")
	}

	if err := s.Delete(800); !errors.Is(err, core.ErrUnknownID) {
		t.Fatalf("delete of unknown id: %v", err)
	}
	if err := s.Undelete(12345); !errors.Is(err, core.ErrUnknownID) {
		t.Fatalf("undelete of unknown id: %v", err)
	}
}

func TestBatchMatchesSingle(t *testing.T) {
	ds := testData(t, 900)
	queries := ds.PerturbedQueries(12, 0.01, 5)
	s, err := Build(filepath.Join(t.TempDir(), "ix"), ds.Vectors, testParams(3))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	batch, err := s.SearchBatch(queries, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(queries) {
		t.Fatalf("%d batch results", len(batch))
	}
	for qi, q := range queries {
		single, err := s.Search(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(single) != len(batch[qi]) {
			t.Fatalf("query %d: %d vs %d results", qi, len(batch[qi]), len(single))
		}
		for i := range single {
			if single[i].ID != batch[qi][i].ID {
				t.Fatalf("query %d rank %d: batch %d, single %d", qi, i, batch[qi][i].ID, single[i].ID)
			}
		}
	}
}

func TestCancellation(t *testing.T) {
	ds := testData(t, 600)
	s, err := Build(filepath.Join(t.TempDir(), "ix"), ds.Vectors, testParams(2))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.SearchContext(ctx, ds.Vectors[0], 5); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled search: %v", err)
	}
	if _, err := s.SearchBatchContext(ctx, ds.PerturbedQueries(4, 0.01, 1), 5); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled batch: %v", err)
	}
}

func TestBuildErrors(t *testing.T) {
	ds := testData(t, 10)
	if _, err := Build(filepath.Join(t.TempDir(), "x"), nil, testParams(2)); err == nil {
		t.Error("empty dataset must fail")
	}
	if _, err := Build(filepath.Join(t.TempDir(), "x"), ds.Vectors, testParams(11)); err == nil {
		t.Error("more shards than vectors must fail")
	}
	p := testParams(-1)
	if _, err := Build(filepath.Join(t.TempDir(), "x"), ds.Vectors, p); err == nil {
		t.Error("negative shard count must fail")
	}
}

func TestOpenRejectsBadLayouts(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "missing"), core.OpenOptions{}); err == nil {
		t.Error("missing layout must fail")
	}

	// A legacy single-index directory has no manifest.
	ds := testData(t, 400)
	legacy := filepath.Join(t.TempDir(), "legacy")
	p := testParams(1)
	ix, err := core.Build(legacy, ds.Vectors, p.Params)
	if err != nil {
		t.Fatal(err)
	}
	ix.Close()
	if IsSharded(legacy) {
		t.Error("legacy dir misdetected as sharded")
	}
	if _, err := Open(legacy, core.OpenOptions{}); err == nil {
		t.Error("legacy dir must not open as a sharded layout")
	}

	// Corrupt manifest.
	dir := filepath.Join(t.TempDir(), "corrupt")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, ManifestFile), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, core.OpenOptions{}); err == nil {
		t.Error("corrupt manifest must fail")
	}

	// Future format version.
	if err := os.WriteFile(filepath.Join(dir, ManifestFile),
		[]byte(`{"format_version":99,"shards":1,"dim":8}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, core.OpenOptions{}); err == nil {
		t.Error("future manifest version must fail")
	}

	// A shard whose dimensionality disagrees with the manifest.
	mixed := filepath.Join(t.TempDir(), "mixed")
	s2, err := Build(mixed, ds.Vectors, testParams(2))
	if err != nil {
		t.Fatal(err)
	}
	s2.Close()
	other := data.Generate(data.Config{Name: "d16", N: 100, Dim: 16, Clusters: 2, Lo: 0, Hi: 1, Seed: 3})
	p16 := core.Params{Tau: 4, Omega: 8, M: 4, Alpha: 64, Gamma: 16, Seed: 7}
	sub16, err := core.Build(filepath.Join(mixed, "shard-01"), other.Vectors, p16)
	if err != nil {
		t.Fatal(err)
	}
	sub16.Close()
	if _, err := Open(mixed, core.OpenOptions{}); err == nil {
		t.Error("dim-mismatched shard must fail to open")
	}
}

// A crash can persist one shard's tail and not another's (each shard
// flushes independently), leaving skewed counts. The layout must still
// open, report the honest total, and refill the lost ids on the next
// inserts instead of bricking — the legacy layout's crash semantics,
// where unflushed inserts lose their ids to later ones.
func TestRaggedTailSelfHeals(t *testing.T) {
	ds := testData(t, 400)
	dir := filepath.Join(t.TempDir(), "ragged")
	s, err := Build(dir, ds.Vectors, testParams(2))
	if err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Simulate the torn state: shard 1 persisted an extra insert (global
	// id 401) that shard 0's counterpart (global id 400) never reached
	// disk. Shard counts become (200, 201).
	sub, err := core.Open(filepath.Join(dir, "shard-01"), core.OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	orphan := make([]float32, 32)
	for d := range orphan {
		orphan[d] = 0.42
	}
	if _, err := sub.Insert(orphan); err != nil {
		t.Fatal(err)
	}
	if err := sub.Flush(); err != nil {
		t.Fatal(err)
	}
	sub.Close()

	re, err := Open(dir, core.OpenOptions{})
	if err != nil {
		t.Fatalf("ragged layout must open: %v", err)
	}
	defer re.Close()
	if re.Count() != 401 {
		t.Fatalf("count = %d, want 401", re.Count())
	}
	// The surviving orphan id is owned by shard 1 and stays addressable;
	// the lost id 400 is a hole.
	if err := re.Delete(401); err != nil {
		t.Fatalf("delete of surviving id 401: %v", err)
	}
	if err := re.Undelete(401); err != nil {
		t.Fatal(err)
	}
	if err := re.Delete(400); !errors.Is(err, core.ErrUnknownID) {
		t.Fatalf("delete of hole id 400: %v", err)
	}
	// The next insert refills the hole, restoring balanced striping.
	id, err := re.Insert(make([]float32, 32))
	if err != nil {
		t.Fatal(err)
	}
	if id != 400 {
		t.Fatalf("healing insert assigned id %d, want 400", id)
	}
	id, err = re.Insert(make([]float32, 32))
	if err != nil {
		t.Fatal(err)
	}
	if id != 402 {
		t.Fatalf("post-heal insert assigned id %d, want 402", id)
	}
}

func TestClearLayout(t *testing.T) {
	ds := testData(t, 300)
	dir := filepath.Join(t.TempDir(), "ix")
	s, err := Build(dir, ds.Vectors, testParams(2))
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := ClearLayout(dir); err != nil {
		t.Fatal(err)
	}
	if IsSharded(dir) {
		t.Fatal("manifest survived ClearLayout")
	}
	if _, err := os.Stat(filepath.Join(dir, "shard-00")); !os.IsNotExist(err) {
		t.Fatal("shard dir survived ClearLayout")
	}
	// Idempotent, and fine on a directory that never held a layout.
	if err := ClearLayout(dir); err != nil {
		t.Fatal(err)
	}
	if err := ClearLayout(filepath.Join(t.TempDir(), "missing")); err != nil {
		t.Fatal(err)
	}
}
