package shard

import (
	"fmt"
	"path/filepath"
	"testing"

	"github.com/hd-index/hdindex/internal/core"
	"github.com/hd-index/hdindex/internal/data"
)

// The full mutation lifecycle must survive a close/reopen cycle with
// identical search results, on both a 1-shard and a 4-shard layout:
// Build → Insert → Delete → Close → Open.
func TestDurabilityRoundTrip(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			ds := data.Generate(data.Config{Name: "dur", N: 1200, Dim: 32, Clusters: 5, Lo: 0, Hi: 1, Seed: 41})
			queries := ds.PerturbedQueries(10, 0.02, 42)
			dir := filepath.Join(t.TempDir(), "ix")

			s, err := Build(dir, ds.Vectors, Params{
				Params: core.Params{Tau: 4, Omega: 8, M: 4, Alpha: 256, Gamma: 64, Seed: 13},
				Shards: shards,
			})
			if err != nil {
				t.Fatal(err)
			}

			// Mutate: a few inserts, then delete both an original vector
			// and one of the fresh inserts.
			var inserted []uint64
			for i := 0; i < 6; i++ {
				vec := make([]float32, 32)
				for d := range vec {
					vec[d] = 0.8 + 0.01*float32(i)
				}
				id, err := s.Insert(vec)
				if err != nil {
					t.Fatal(err)
				}
				inserted = append(inserted, id)
			}
			if err := s.Delete(77); err != nil {
				t.Fatal(err)
			}
			if err := s.Delete(inserted[2]); err != nil {
				t.Fatal(err)
			}

			// Record the pre-close answers, then close. Close persists
			// dirty pages; deletes were already persisted synchronously.
			want := make([][]core.Result, len(queries))
			for qi, q := range queries {
				res, err := s.Search(q, 10)
				if err != nil {
					t.Fatal(err)
				}
				want[qi] = res
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}

			re, err := Open(dir, core.OpenOptions{})
			if err != nil {
				t.Fatal(err)
			}
			defer re.Close()
			if re.Count() != 1206 {
				t.Fatalf("reopened count = %d, want 1206", re.Count())
			}
			if re.DeletedCount() != 2 {
				t.Fatalf("reopened deleted count = %d, want 2", re.DeletedCount())
			}
			for qi, q := range queries {
				res, err := re.Search(q, 10)
				if err != nil {
					t.Fatal(err)
				}
				requireSameResults(t, fmt.Sprintf("query %d after reopen", qi), res, want[qi])
			}
			// The deletion marks specifically must still hold.
			for _, id := range []uint64{77, inserted[2]} {
				res, err := re.Search(ds.Vectors[0], int(re.Count())/2)
				if err != nil {
					t.Fatal(err)
				}
				for _, r := range res {
					if r.ID == id {
						t.Fatalf("deleted id %d resurfaced after reopen", id)
					}
				}
			}
		})
	}
}
