package shard

import (
	"context"
	"fmt"
	"sync"

	"github.com/hd-index/hdindex/internal/core"
	"github.com/hd-index/hdindex/internal/pager"
	"github.com/hd-index/hdindex/internal/telemetry"
)

// Sharded is an HD-Index partitioned across N independent core
// sub-indexes under one manifest-backed directory. It mirrors
// core.Index's method set so callers (the public facade, the server,
// the bench harness) can treat the two layouts interchangeably.
//
// Concurrency: searches run lock-free here (each sub-index does its own
// reader/writer locking); mu serialises Insert's route-and-append pair
// and guards the cached total count.
type Sharded struct {
	mu     sync.RWMutex
	dir    string
	man    Manifest
	shards []*core.Index
	total  uint64 // sum of shard counts; maintained by Insert

	batchWorkers int

	// buildStats aggregates the shards' construction costs; set by
	// Build, nil on an Opened layout.
	buildStats *core.BuildStats
}

// Info is one shard's row of the layout breakdown exposed through
// /stats and hdtool info.
type Info struct {
	ID         int
	Count      uint64
	Deleted    int
	SizeOnDisk int64
}

// numShards is len(shards) without a lock — the shard count is fixed at
// Build/Open time.
func (s *Sharded) numShards() uint64 { return uint64(len(s.shards)) }

// ownerOf maps a global id to its owning shard and local id there.
func (s *Sharded) ownerOf(id uint64) (shard int, local uint64) {
	n := s.numShards()
	return int(id % n), id / n
}

// globalID is the inverse mapping.
func (s *Sharded) globalID(shard int, local uint64) uint64 {
	return local*s.numShards() + uint64(shard)
}

// Open loads a sharded layout previously written by Build. opts is
// applied to every sub-index.
func Open(dir string, opts core.OpenOptions) (*Sharded, error) {
	man, err := ReadManifest(dir)
	if err != nil {
		return nil, err
	}
	s := &Sharded{
		dir:          dir,
		man:          *man,
		shards:       make([]*core.Index, man.Shards),
		batchWorkers: opts.BatchWorkers,
	}
	for i := range s.shards {
		ix, err := core.Open(shardDir(dir, i), opts)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("shard: open shard %d: %w", i, err)
		}
		if d := ix.Dim(); d != man.Dim {
			s.Close()
			return nil, fmt.Errorf("shard: shard %d has dimensionality %d, manifest declares %d", i, d, man.Dim)
		}
		s.shards[i] = ix
		s.total += ix.Count()
	}
	return s, nil
}

// Close releases every sub-index. Safe to call more than once and on a
// partially opened layout.
func (s *Sharded) Close() error {
	var first error
	for _, ix := range s.shards {
		if ix != nil {
			if err := ix.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// Flush writes back every shard's dirty pages and meta. Inserts and
// deletes are already durable when they return (each shard's WAL), so
// Flush is only needed before copying the directory around.
func (s *Sharded) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, ix := range s.shards {
		if err := ix.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// Compact folds every shard's memtable into its trees. Shards compact
// sequentially; the first error aborts the sweep (already-compacted
// shards stay compacted).
func (s *Sharded) Compact(ctx context.Context) error {
	for i, ix := range s.shards {
		if err := ix.Compact(ctx); err != nil {
			return fmt.Errorf("shard: compact shard %d: %w", i, err)
		}
	}
	return nil
}

// IngestStats sums the shards' ingest counters.
func (s *Sharded) IngestStats() core.IngestStats {
	var agg core.IngestStats
	for _, ix := range s.shards {
		agg.Add(ix.IngestStats())
	}
	return agg
}

// Telemetry merges every shard's latency histograms into one snapshot.
// Counts sum and quantiles come from the merged buckets, so the view is
// the layout-wide latency distribution, not an average of averages.
func (s *Sharded) Telemetry() telemetry.CollectorSnapshot {
	var agg telemetry.CollectorSnapshot
	for _, ix := range s.shards {
		agg.Merge(ix.Telemetry())
	}
	return agg
}

// NumShards returns the shard count N.
func (s *Sharded) NumShards() int { return len(s.shards) }

// Params returns the built HD-Index parameters. Every shard is built
// with the same Params (shard.Build fans one spec out), so shard 0
// speaks for the layout — the preset table and the SLO tuner resolve
// their operating points against it exactly as on a single index.
func (s *Sharded) Params() core.Params { return s.shards[0].Params() }

// BuildStats returns the aggregated construction cost breakdown of a
// freshly built layout (phase times and allocations summed across
// shards, TotalMS the build's wall clock), or nil when the layout was
// Opened from disk.
func (s *Sharded) BuildStats() *core.BuildStats { return s.buildStats }

// Manifest returns a copy of the layout descriptor.
func (s *Sharded) Manifest() Manifest { return s.man }

// Dim returns the indexed dimensionality.
func (s *Sharded) Dim() int { return s.man.Dim }

// Count returns the total number of indexed vectors across shards.
func (s *Sharded) Count() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.total
}

// DeletedCount sums the shards' deletion marks.
func (s *Sharded) DeletedCount() int {
	var n int
	for _, ix := range s.shards {
		n += ix.DeletedCount()
	}
	return n
}

// SizeOnDisk sums the shards' index files.
func (s *Sharded) SizeOnDisk() int64 {
	var total int64
	for _, ix := range s.shards {
		total += ix.SizeOnDisk()
	}
	return total
}

// IOStats sums the pager counters across every shard's files, so the
// serving layer reports one buffer-pool hit ratio for the whole layout.
func (s *Sharded) IOStats() pager.Stats {
	var agg pager.Stats
	for _, ix := range s.shards {
		agg.Add(ix.IOStats())
	}
	return agg
}

// ResetIOStats zeroes every shard's pager counters.
func (s *Sharded) ResetIOStats() {
	for _, ix := range s.shards {
		ix.ResetIOStats()
	}
}

// ShardInfos returns the per-shard breakdown, in shard order.
func (s *Sharded) ShardInfos() []Info {
	out := make([]Info, len(s.shards))
	for i, ix := range s.shards {
		out[i] = Info{ID: i, Count: ix.Count(), Deleted: ix.DeletedCount(), SizeOnDisk: ix.SizeOnDisk()}
	}
	return out
}

// Insert appends one vector, routing it to the shard that owns the
// smallest unassigned global id. With balanced shard counts that is
// exactly "total mod N" round-robin; after a crash that persisted some
// shards' tails and not others', it refills the lost ids first, so the
// layout self-heals instead of refusing to open — the same semantics
// as the legacy layout, where ids of unflushed inserts are reused. The
// insert is durable when Insert returns: the owning shard appends it to
// its write-ahead log before acknowledging, as with core.
func (s *Sharded) Insert(vec []float32) (uint64, error) {
	if len(vec) != s.man.Dim {
		return 0, fmt.Errorf("%w: vector has %d dims, index has %d", core.ErrDimMismatch, len(vec), s.man.Dim)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.numShards()
	sh := 0
	next := s.shards[0].Count() * n
	for i := 1; i < len(s.shards); i++ {
		if cand := s.shards[i].Count()*n + uint64(i); cand < next {
			sh, next = i, cand
		}
	}
	local, err := s.shards[sh].Insert(vec)
	if err != nil {
		return 0, err
	}
	id := s.globalID(sh, local)
	if id != next {
		// The sub-index disagrees about its own length — id ownership
		// can no longer be trusted, so fail loudly rather than hand out
		// a global id that may collide.
		return 0, fmt.Errorf("shard: shard %d assigned global id %d, routing expected %d", sh, id, next)
	}
	s.total++
	return id, nil
}

// Delete marks global id as deleted on its owning shard. The mark is
// WAL-logged by the shard before Delete returns, so it survives a
// crash.
func (s *Sharded) Delete(id uint64) error {
	sh, local, err := s.route("delete", id)
	if err != nil {
		return err
	}
	return s.shards[sh].Delete(local)
}

// Undelete removes a deletion mark.
func (s *Sharded) Undelete(id uint64) error {
	sh, local, err := s.route("undelete", id)
	if err != nil {
		return err
	}
	return s.shards[sh].Undelete(local)
}

// route validates a global id and returns its owner. The bound is the
// owning shard's own length, not the sum: after a crash-induced ragged
// tail the id space may briefly have holes, and only the owner knows
// whether its stripe reaches id. The check happens here so the error
// reports the global id, not a confusing per-shard local one.
func (s *Sharded) route(op string, id uint64) (shard int, local uint64, err error) {
	shard, local = s.ownerOf(id)
	if count := s.shards[shard].Count(); local >= count {
		return 0, 0, fmt.Errorf("%w: %s of id %d (shard %d holds ids below %d)",
			core.ErrUnknownID, op, id, shard, count*s.numShards()+uint64(shard))
	}
	return shard, local, nil
}
