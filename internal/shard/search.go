package shard

import (
	"context"
	"fmt"

	"github.com/hd-index/hdindex/internal/core"
	"github.com/hd-index/hdindex/internal/fanout"
	"github.com/hd-index/hdindex/internal/topk"
)

// Search answers a kANN query across all shards.
func (s *Sharded) Search(q []float32, k int) ([]core.Result, error) {
	return s.SearchContext(context.Background(), q, k)
}

// SearchContext is Search honouring ctx.
func (s *Sharded) SearchContext(ctx context.Context, q []float32, k int) ([]core.Result, error) {
	res, _, err := s.Query(ctx, q, k, core.SearchOptions{})
	return res, err
}

// SearchWithStats is Search plus work counters summed across shards.
func (s *Sharded) SearchWithStats(q []float32, k int) ([]core.Result, *core.QueryStats, error) {
	return s.Query(context.Background(), q, k, core.SearchOptions{})
}

// SearchWithStatsContext is SearchContext plus work counters summed
// across shards.
func (s *Sharded) SearchWithStatsContext(ctx context.Context, q []float32, k int) ([]core.Result, *core.QueryStats, error) {
	return s.Query(ctx, q, k, core.SearchOptions{})
}

// Query scatter-gathers the query with per-query cascade overrides:
// the same options apply to every shard (the cascade is a per-query
// property, not a per-shard one), every shard answers its local top-k
// concurrently, local ids are mapped back to global ids, and the N·k
// candidates are merged through one bounded top-k heap. Work counters
// are summed across shards; the echoed cascade knobs are identical on
// every shard and carried through unchanged. Cancellation propagates
// into each shard's query loop, and the first shard error cancels the
// remaining fan-out.
//
// Because each shard's answer is exact over the candidates it refined,
// merging per-shard top-k lists loses nothing: the global k nearest of
// the union of refined candidates all appear in their own shard's
// top-k. A 1-shard layout therefore returns exactly what the monolithic
// layout would, and with exhaustive filter parameters an N-shard layout
// returns the exact global kNN.
func (s *Sharded) Query(ctx context.Context, q []float32, k int, o core.SearchOptions) ([]core.Result, *core.QueryStats, error) {
	n := len(s.shards)
	if n == 1 {
		// Global and local ids coincide; skip the merge entirely.
		return s.shards[0].Query(ctx, q, k, o)
	}
	if len(q) != s.man.Dim {
		return nil, nil, fmt.Errorf("%w: query has %d dims, index has %d", core.ErrDimMismatch, len(q), s.man.Dim)
	}
	if o.MaxCandidates > 0 {
		// The κ cap is a per-QUERY refinement budget: split it across
		// the scatter so N shards cannot multiply the caller's ceiling
		// by N. Floor division keeps the sum within the budget; each
		// shard keeps at least k so the merge still sees a full local
		// top-k. The k check runs here because the floored per-shard
		// cap would otherwise silently legalise a cap < k.
		if o.MaxCandidates < k {
			return nil, nil, fmt.Errorf("%w: max_candidates=%d < k=%d", core.ErrBadOptions, o.MaxCandidates, k)
		}
		o.MaxCandidates = max(k, o.MaxCandidates/n)
	}

	perShard := make([][]core.Result, n)
	perStats := make([]*core.QueryStats, n)
	err := fanout.Run(ctx, n, n, func(ctx context.Context, i int) error {
		res, st, err := s.shards[i].Query(ctx, q, k, o)
		if err != nil {
			return err
		}
		perShard[i], perStats[i] = res, st
		return nil
	})
	if err != nil {
		return nil, nil, err
	}

	best := topk.New(k)
	agg := &core.QueryStats{}
	for i, res := range perShard {
		for _, r := range res {
			best.Push(s.globalID(i, r.ID), r.Dist)
		}
		agg.Candidates += perStats[i].Candidates
		agg.TreeEntries += perStats[i].TreeEntries
		agg.PageReads += perStats[i].PageReads
		agg.PageHits += perStats[i].PageHits
		agg.PageMisses += perStats[i].PageMisses
		agg.ExactDistances += perStats[i].ExactDistances
		agg.MemtableScanned += perStats[i].MemtableScanned
		agg.Phases.Add(perStats[i].Phases)
	}
	// Every shard resolved the same options against the same built
	// params, so the effective cascade is whichever shard's echo.
	agg.Alpha = perStats[0].Alpha
	agg.Beta = perStats[0].Beta
	agg.Gamma = perStats[0].Gamma
	agg.Ptolemaic = perStats[0].Ptolemaic
	agg.Degraded = perStats[0].Degraded
	items := best.Items()
	out := make([]core.Result, len(items))
	for i, it := range items {
		out[i] = core.Result{ID: it.ID, Dist: it.Dist}
	}
	return out, agg, nil
}

// SearchBatch answers many queries, preserving input order.
func (s *Sharded) SearchBatch(queries [][]float32, k int) ([][]core.Result, error) {
	return s.SearchBatchContext(context.Background(), queries, k)
}

// SearchBatchContext fans the batch out on a bounded worker pool (the
// layout's BatchWorkers, default GOMAXPROCS); each query then
// scatter-gathers across shards. Cancellation or the first error stops
// the remaining queries promptly.
func (s *Sharded) SearchBatchContext(ctx context.Context, queries [][]float32, k int) ([][]core.Result, error) {
	res, _, err := s.QueryBatch(ctx, queries, k, core.SearchOptions{})
	return res, err
}

// QueryBatch is SearchBatchContext with per-query cascade overrides
// (one option set shared by the whole batch) and per-query work
// counters in input order. Options and dimensionalities are validated
// up front, mirroring core.QueryBatch, so a bad option set or a
// malformed query deep in the batch never burns the fan-out ahead of
// it.
func (s *Sharded) QueryBatch(ctx context.Context, queries [][]float32, k int, o core.SearchOptions) ([][]core.Result, []*core.QueryStats, error) {
	if len(queries) == 0 {
		return nil, nil, nil
	}
	// Every shard shares the built params, so shard 0 validates for all.
	if err := s.shards[0].ValidateOptions(k, o); err != nil {
		return nil, nil, err
	}
	for i, q := range queries {
		if len(q) != s.man.Dim {
			return nil, nil, fmt.Errorf("%w: query %d has %d dims, index has %d", core.ErrDimMismatch, i, len(q), s.man.Dim)
		}
	}
	out := make([][]core.Result, len(queries))
	stats := make([]*core.QueryStats, len(queries))
	err := fanout.Run(ctx, len(queries), s.batchWorkers, func(ctx context.Context, qi int) error {
		res, st, err := s.Query(ctx, queries[qi], k, o)
		if err != nil {
			return err
		}
		out[qi], stats[qi] = res, st
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return out, stats, nil
}
