package shard

import (
	"context"
	"fmt"

	"github.com/hd-index/hdindex/internal/core"
	"github.com/hd-index/hdindex/internal/fanout"
	"github.com/hd-index/hdindex/internal/topk"
)

// Search answers a kANN query across all shards.
func (s *Sharded) Search(q []float32, k int) ([]core.Result, error) {
	return s.SearchContext(context.Background(), q, k)
}

// SearchContext is Search honouring ctx.
func (s *Sharded) SearchContext(ctx context.Context, q []float32, k int) ([]core.Result, error) {
	res, _, err := s.SearchWithStatsContext(ctx, q, k)
	return res, err
}

// SearchWithStats is Search plus work counters summed across shards.
func (s *Sharded) SearchWithStats(q []float32, k int) ([]core.Result, *core.QueryStats, error) {
	return s.SearchWithStatsContext(context.Background(), q, k)
}

// SearchWithStatsContext scatter-gathers the query: every shard answers
// its local top-k concurrently, local ids are mapped back to global
// ids, and the N·k candidates are merged through one bounded top-k
// heap. Cancellation propagates into each shard's query loop, and the
// first shard error cancels the remaining fan-out.
//
// Because each shard's answer is exact over the candidates it refined,
// merging per-shard top-k lists loses nothing: the global k nearest of
// the union of refined candidates all appear in their own shard's
// top-k. A 1-shard layout therefore returns exactly what the monolithic
// layout would, and with exhaustive filter parameters an N-shard layout
// returns the exact global kNN.
func (s *Sharded) SearchWithStatsContext(ctx context.Context, q []float32, k int) ([]core.Result, *core.QueryStats, error) {
	n := len(s.shards)
	if n == 1 {
		// Global and local ids coincide; skip the merge entirely.
		return s.shards[0].SearchWithStatsContext(ctx, q, k)
	}
	if len(q) != s.man.Dim {
		return nil, nil, fmt.Errorf("shard: query has %d dims, index has %d", len(q), s.man.Dim)
	}

	perShard := make([][]core.Result, n)
	perStats := make([]*core.QueryStats, n)
	err := fanout.Run(ctx, n, n, func(ctx context.Context, i int) error {
		res, st, err := s.shards[i].SearchWithStatsContext(ctx, q, k)
		if err != nil {
			return err
		}
		perShard[i], perStats[i] = res, st
		return nil
	})
	if err != nil {
		return nil, nil, err
	}

	best := topk.New(k)
	agg := &core.QueryStats{}
	for i, res := range perShard {
		for _, r := range res {
			best.Push(s.globalID(i, r.ID), r.Dist)
		}
		agg.Candidates += perStats[i].Candidates
		agg.TreeEntries += perStats[i].TreeEntries
		agg.PageReads += perStats[i].PageReads
		agg.PageHits += perStats[i].PageHits
		agg.PageMisses += perStats[i].PageMisses
		agg.ExactDistances += perStats[i].ExactDistances
	}
	items := best.Items()
	out := make([]core.Result, len(items))
	for i, it := range items {
		out[i] = core.Result{ID: it.ID, Dist: it.Dist}
	}
	return out, agg, nil
}

// SearchBatch answers many queries, preserving input order.
func (s *Sharded) SearchBatch(queries [][]float32, k int) ([][]core.Result, error) {
	return s.SearchBatchContext(context.Background(), queries, k)
}

// SearchBatchContext fans the batch out on a bounded worker pool (the
// layout's BatchWorkers, default GOMAXPROCS); each query then
// scatter-gathers across shards. Cancellation or the first error stops
// the remaining queries promptly.
func (s *Sharded) SearchBatchContext(ctx context.Context, queries [][]float32, k int) ([][]core.Result, error) {
	if len(queries) == 0 {
		return nil, nil
	}
	out := make([][]core.Result, len(queries))
	err := fanout.Run(ctx, len(queries), s.batchWorkers, func(ctx context.Context, qi int) error {
		res, err := s.SearchContext(ctx, queries[qi], k)
		if err != nil {
			return err
		}
		out[qi] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
