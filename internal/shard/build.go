package shard

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"time"

	"github.com/hd-index/hdindex/internal/core"
	"github.com/hd-index/hdindex/internal/fanout"
)

// Params configures a sharded build: the per-shard HD-Index parameters
// plus the layout shape.
type Params struct {
	core.Params

	// Shards is the number of sub-indexes N (default 1). Each shard is
	// a complete HD-Index over its ~1/N stripe of the data: smaller
	// sorts, smaller reference-selection samples, and independent files
	// — which is what lets Build parallelise beyond core's per-tree
	// concurrency and later PRs rebalance or place shards elsewhere.
	Shards int

	// BuildWorkers is the total construction-parallelism budget
	// (0 = GOMAXPROCS): it bounds how many shards build concurrently
	// AND is divided among them as each shard's core.Params.BuildWorkers,
	// so shard × tree × encode-chunk workers never oversubscribe the
	// machine however the three layers nest.
	BuildWorkers int
}

// Build constructs a sharded HD-Index over vectors in directory dir:
// stripes the dataset round-robin across N shards, builds the shards
// concurrently on a bounded worker pool, and commits the layout by
// writing the manifest last.
func Build(dir string, vectors [][]float32, p Params) (*Sharded, error) {
	return BuildContext(context.Background(), dir, vectors, p)
}

// BuildContext is Build honouring ctx: per-shard builds check for
// cancellation between work chunks, remaining shards are not started,
// and the manifest (the layout's commit point) is never written — a
// cancelled directory fails Open rather than serving a partial layout.
func BuildContext(ctx context.Context, dir string, vectors [][]float32, p Params) (*Sharded, error) {
	if p.Shards == 0 {
		p.Shards = 1
	}
	if p.Shards < 1 {
		return nil, fmt.Errorf("shard: shards must be >= 1, got %d", p.Shards)
	}
	if len(vectors) == 0 {
		return nil, errors.New("shard: empty dataset")
	}
	if p.Shards > len(vectors) {
		return nil, fmt.Errorf("shard: %d shards exceed dataset size %d", p.Shards, len(vectors))
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("shard: mkdir %s: %w", dir, err)
	}
	// Invalidate and remove any previous layout first — sharded (the
	// manifest and shard dirs) and legacy (root meta.json, trees,
	// vectors) alike. Until the new manifest is written at the end, the
	// directory must not look like a complete index of either kind, so
	// a crash mid-rebuild fails Open instead of silently serving the
	// old dataset.
	if err := ClearLayout(dir); err != nil {
		return nil, err
	}
	if err := core.RemoveIndexFiles(dir); err != nil {
		return nil, err
	}

	n := p.Shards
	stripes := make([][][]float32, n)
	for i := range stripes {
		// Shard i owns global ids i, i+N, i+2N, ... — local id l there
		// is global l*N+i.
		stripes[i] = make([][]float32, 0, (len(vectors)-i+n-1)/n)
	}
	for g, v := range vectors {
		stripes[g%n] = append(stripes[g%n], v)
	}

	s := &Sharded{
		dir: dir,
		man: Manifest{
			FormatVersion: FormatVersion,
			Shards:        n,
			Dim:           len(vectors[0]),
			UUID:          NewUUID(),
			CreatedUnix:   now().Unix(),
		},
		shards:       make([]*core.Index, n),
		total:        uint64(len(vectors)),
		batchWorkers: p.BatchWorkers,
	}

	// One budget across all layers: at most shardConc shards build at
	// once, each internally limited to perShard workers, so the total
	// worker count stays at (or just under) the budget.
	budget := p.BuildWorkers
	if budget <= 0 {
		budget = runtime.GOMAXPROCS(0)
	}
	shardConc := budget
	if shardConc > n {
		shardConc = n
	}
	perShard := budget / shardConc
	if perShard < 1 {
		perShard = 1
	}
	// Distribute the remainder: the first budget%shardConc shards get
	// one extra worker, so no requested slot idles (e.g. budget 7 over
	// 4 shards splits 2+2+2+1, not 1+1+1+1). At most shardConc shards
	// run at once and rem < shardConc, so the concurrent total never
	// exceeds the budget; worker count never affects output bytes.
	rem := 0
	if perShard*shardConc < budget {
		rem = budget - perShard*shardConc
	}

	buildStart := time.Now()
	// One allocation window around the whole fan-out: per-shard Allocs
	// deltas are process-wide counters over overlapping windows when
	// shards build concurrently, so summing them would multiply-count.
	var probe core.MemProbe
	probe.Sample()
	// The bounded fan-out also stops scheduling further shard builds as
	// soon as one fails (or ctx is cancelled), instead of burning CPU
	// on a doomed layout.
	err := fanout.Run(ctx, n, shardConc, func(ctx context.Context, i int) error {
		sp := p.Params
		// Derive per-shard seeds so shards don't sample identical
		// reference candidates; shard 0 keeps the caller's seed, so
		// a 1-shard build is bit-identical to the monolithic layout.
		sp.Seed = p.Seed + int64(i)
		sp.BuildWorkers = perShard
		if i < rem {
			sp.BuildWorkers++
		}
		ix, err := core.BuildContext(ctx, shardDir(dir, i), stripes[i], sp)
		if err != nil {
			return fmt.Errorf("shard: build shard %d: %w", i, err)
		}
		// Stamp the shard with its place in the layout so a standalone
		// server over this directory can prove which shard it holds
		// (the distributed deployment's miswiring check).
		if err := WriteIdentity(shardDir(dir, i), Identity{
			ClusterUUID: s.man.UUID, Shard: i, Shards: n, Dim: s.man.Dim,
		}); err != nil {
			return fmt.Errorf("shard: stamp shard %d: %w", i, err)
		}
		s.shards[i] = ix
		return nil
	})
	if err != nil {
		s.Close()
		return nil, err
	}

	// Aggregate the per-shard construction costs: phase times sum (with
	// shards building concurrently the sums exceed wall clock), peak
	// heap takes the max, while TotalMS and Allocs are measured here,
	// across the whole fan-out, wall clock and one allocation window.
	agg := &core.BuildStats{}
	for _, ix := range s.shards {
		if bs := ix.BuildStats(); bs != nil {
			agg.Add(*bs)
		}
	}
	agg.TotalMS = float64(time.Since(buildStart).Microseconds()) / 1e3
	agg.Allocs, agg.PeakHeapBytes = probe.Finish()
	s.buildStats = agg

	// Commit point: a crash before this line leaves a directory Open
	// rejects (no manifest) instead of a silently short layout.
	if err := writeManifest(dir, &s.man); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}
