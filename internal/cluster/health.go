package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hd-index/hdindex/internal/shard"
)

// Replica health states. A replica starts healthy (optimistic: the
// coordinator serves from a cold start instead of waiting a probe
// round) and moves on probe and sub-query outcomes: one failure makes
// it suspect, downThreshold consecutive failures make it down, one
// success makes it healthy again. Down is a routing hint, not a
// verdict — a shard whose every replica is down still gets attempts.
const (
	stateHealthy int32 = iota
	stateSuspect
	stateDown
)

// downThreshold is the consecutive-failure count that demotes a
// suspect replica to down.
const downThreshold = 3

// probeTimeout caps one /healthz probe.
const probeTimeout = 2 * time.Second

func stateName(s int32) string {
	switch s {
	case stateHealthy:
		return "healthy"
	case stateSuspect:
		return "suspect"
	case stateDown:
		return "down"
	default:
		return fmt.Sprintf("state(%d)", s)
	}
}

// replica is one endpoint of one shard, with its health bookkeeping.
// All fields past the identity line are atomics: sub-queries and the
// health prober update them concurrently.
type replica struct {
	url     string
	ordinal int // shard this replica must hold
	pos     int // position in the manifest's replica list

	state    atomic.Int32
	fails    atomic.Int32
	verified atomic.Bool // identity confirmed at least once
	rejected atomic.Bool // identity mismatch: permanently excluded
	lastErr  atomic.Pointer[string]
}

// noteFailure records a failed probe or sub-query attempt.
func (r *replica) noteFailure(msg string) {
	n := r.fails.Add(1)
	if n >= downThreshold {
		r.state.Store(stateDown)
	} else {
		r.state.Store(stateSuspect)
	}
	r.lastErr.Store(&msg)
}

// noteSuccess records a successful probe or sub-query.
func (r *replica) noteSuccess() {
	r.fails.Store(0)
	r.state.Store(stateHealthy)
}

// reject permanently excludes the replica: its identity contradicts
// the manifest, so routing to it would merge wrong-shard results.
// Rejection survives recovery on purpose — rewiring a cluster means
// editing the manifest and restarting the coordinator, not waiting for
// a probe to change its mind.
func (r *replica) reject(msg string) {
	r.rejected.Store(true)
	r.lastErr.Store(&msg)
}

func (r *replica) getState() int32  { return r.state.Load() }
func (r *replica) isRejected() bool { return r.rejected.Load() }
func (r *replica) isVerified() bool { return r.verified.Load() }

func (r *replica) stats() ReplicaStats {
	rs := ReplicaStats{
		URL:      r.url,
		State:    stateName(r.state.Load()),
		Fails:    r.fails.Load(),
		Verified: r.verified.Load(),
		Rejected: r.rejected.Load(),
	}
	if r.rejected.Load() {
		rs.State = "rejected"
	}
	if msg := r.lastErr.Load(); msg != nil {
		rs.LastErr = *msg
	}
	return rs
}

// healthzReply is the slice of a shard server's /healthz the
// coordinator reads: liveness plus the identity facts.
type healthzReply struct {
	Status   string          `json:"status"`
	Count    uint64          `json:"count"`
	Dim      int             `json:"dim"`
	Identity *shard.Identity `json:"identity"`
}

// probe checks one replica's /healthz: reachability drives the health
// state machine, and the reply's identity facts are verified against
// the manifest — every probe, not just the first, so an endpoint
// restarted onto the wrong data directory is caught at the next round.
func (c *Coordinator) probe(ctx context.Context, rep *replica) error {
	pctx, cancel := context.WithTimeout(ctx, probeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, rep.url+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		rep.noteFailure(err.Error())
		return err
	}
	defer resp.Body.Close()
	var hz healthzReply
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&hz); err != nil {
		err = fmt.Errorf("decode /healthz: %w", err)
		rep.noteFailure(err.Error())
		return err
	}
	if err := c.checkIdentity(rep, &hz); err != nil {
		if !rep.isRejected() {
			c.opts.Logger.Error("cluster: replica rejected (identity mismatch)",
				"shard", rep.ordinal, "url", rep.url, "err", err)
		}
		rep.reject(err.Error())
		return err
	}
	rep.verified.Store(true)
	// Any well-formed reply counts as alive — an "overloaded" 503 from
	// the admission layer means the server is up and shedding, and the
	// per-request shed classification already handles routing around it.
	wasDown := rep.getState() == stateDown
	rep.noteSuccess()
	if wasDown {
		c.opts.Logger.Info("cluster: replica recovered", "shard", rep.ordinal, "url", rep.url)
	}
	return nil
}

// checkIdentity verifies a /healthz reply against the manifest's
// expectations for this replica's slot.
func (c *Coordinator) checkIdentity(rep *replica, hz *healthzReply) error {
	if hz.Dim != 0 && hz.Dim != c.man.Dim {
		return fmt.Errorf("serves dimensionality %d, manifest declares %d", hz.Dim, c.man.Dim)
	}
	id := hz.Identity
	if id == nil {
		// No stamp at all. With a manifest UUID the operator asked for
		// verification, so an unstampable endpoint (standalone index,
		// pre-identity build) cannot be trusted to be the right shard.
		if c.man.UUID != "" {
			return fmt.Errorf("presents no shard identity, manifest expects cluster %s shard %d", c.man.UUID, rep.ordinal)
		}
		return nil
	}
	if c.man.UUID != "" && id.ClusterUUID != c.man.UUID {
		return fmt.Errorf("belongs to cluster %s, manifest expects %s", id.ClusterUUID, c.man.UUID)
	}
	if id.Shard != rep.ordinal {
		return fmt.Errorf("holds shard %d, manifest slot expects shard %d", id.Shard, rep.ordinal)
	}
	if id.Shards != len(c.shards) {
		return fmt.Errorf("built as 1 of %d shards, manifest declares %d", id.Shards, len(c.shards))
	}
	if id.Dim != c.man.Dim {
		return fmt.Errorf("identity declares dimensionality %d, manifest declares %d", id.Dim, c.man.Dim)
	}
	return nil
}

// healthLoop probes every non-rejected replica each HealthInterval
// until Close.
func (c *Coordinator) healthLoop() {
	defer close(c.healthDone)
	ticker := time.NewTicker(c.opts.HealthInterval)
	defer ticker.Stop()
	for {
		select {
		case <-c.healthStop:
			return
		case <-ticker.C:
		}
		ctx, cancel := context.WithCancel(context.Background())
		stopWatch := make(chan struct{})
		go func() {
			select {
			case <-c.healthStop:
				cancel()
			case <-stopWatch:
			}
		}()
		var wg sync.WaitGroup
		for _, reps := range c.shards {
			for _, rep := range reps {
				if rep.isRejected() {
					continue
				}
				wg.Add(1)
				go func(rep *replica) {
					defer wg.Done()
					before := rep.getState()
					_ = c.probe(ctx, rep)
					if after := rep.getState(); after != before && after == stateDown {
						c.opts.Logger.Warn("cluster: replica down",
							"shard", rep.ordinal, "url", rep.url, "err", rep.stats().LastErr)
					}
				}(rep)
			}
		}
		wg.Wait()
		close(stopWatch)
		cancel()
	}
}
