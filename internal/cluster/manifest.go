// Package cluster lifts the in-process scatter-gather of internal/shard
// across machines: a coordinator serves the same /search and
// /searchbatch JSON API by fanning each query out to N shard servers
// (each a stock hdserve holding one shard directory of a sharded
// build), merging the per-shard top-k through internal/topk, and
// mapping each shard's local ids back to global ids — so an N-node
// cluster answers bit-identically to the in-process N-shard index.
//
// Robustness is the point of the package. Each sub-query retries with
// capped exponential backoff plus jitter, failing over along the
// shard's ordered replica list; a 503 shed (Retry-After present) fails
// over immediately without sleeping, since the replica is alive and
// the next one may be idle. Slow replicas are hedged: once a sub-query
// outlives the windowed p99 of recent sub-query latency, the same
// request is fired at the next replica and the first answer wins, the
// loser cancelled. An active health checker drives every replica
// through healthy→suspect→down off its /healthz, and verifies the
// shard identity stamp (manifest UUID + ordinal) so a miswired
// endpoint is rejected instead of silently merging wrong-shard
// results. When a shard has no reachable replica, the completeness
// policy decides: require_full requests fail with 503
// "shard_unavailable", everything else gets the merged partial result
// with the missing ordinals echoed in stats.partial_shards.
package cluster

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/hd-index/hdindex/internal/atomicfile"
)

// ManifestFormatVersion is the cluster manifest schema version.
const ManifestFormatVersion = 1

// Manifest maps every shard of a sharded build to its ordered replica
// endpoints. It is the cluster's deployment descriptor, written by the
// operator (or a test harness) next to nothing in particular — the
// coordinator only needs the file, not the index directories.
type Manifest struct {
	FormatVersion int `json:"format_version"`
	// UUID is the sharded build's manifest UUID. When set, every
	// endpoint must present the same identity stamp or be rejected;
	// empty skips the UUID check (pre-identity builds).
	UUID string `json:"uuid,omitempty"`
	// Dim is the indexed dimensionality, validated against every
	// endpoint and against incoming queries.
	Dim int `json:"dim"`
	// Shards lists every shard exactly once, ordinal-ordered.
	Shards []ShardSpec `json:"shards"`
}

// ShardSpec is one shard's row: its ordinal in the layout and the
// ordered list of servers holding a replica of it (preferred first).
type ShardSpec struct {
	Ordinal int `json:"ordinal"`
	// Replicas are base URLs ("http://10.0.0.7:8080"); a bare
	// host:port is promoted to http://.
	Replicas []string `json:"replicas"`
}

// NumShards returns the layout's shard count.
func (m *Manifest) NumShards() int { return len(m.Shards) }

// Validate checks structural invariants: ordinals 0..N-1 exactly once,
// at least one replica per shard, a positive dimensionality.
func (m *Manifest) Validate() error {
	if m.FormatVersion != ManifestFormatVersion {
		return fmt.Errorf("cluster: manifest format version %d, this build reads %d", m.FormatVersion, ManifestFormatVersion)
	}
	if m.Dim < 1 {
		return fmt.Errorf("cluster: manifest declares dimensionality %d", m.Dim)
	}
	if len(m.Shards) == 0 {
		return fmt.Errorf("cluster: manifest declares no shards")
	}
	seen := make(map[int]bool, len(m.Shards))
	for i, s := range m.Shards {
		if s.Ordinal != i {
			return fmt.Errorf("cluster: shard at position %d has ordinal %d (rows must be ordinal-ordered 0..N-1)", i, s.Ordinal)
		}
		if seen[s.Ordinal] {
			return fmt.Errorf("cluster: duplicate shard ordinal %d", s.Ordinal)
		}
		seen[s.Ordinal] = true
		if len(s.Replicas) == 0 {
			return fmt.Errorf("cluster: shard %d has no replicas", s.Ordinal)
		}
		for j, r := range s.Replicas {
			if strings.TrimSpace(r) == "" {
				return fmt.Errorf("cluster: shard %d replica %d is empty", s.Ordinal, j)
			}
		}
	}
	return nil
}

// normalizeURL promotes a bare host:port to an http:// base URL and
// strips any trailing slash.
func normalizeURL(u string) string {
	u = strings.TrimRight(strings.TrimSpace(u), "/")
	if !strings.Contains(u, "://") {
		u = "http://" + u
	}
	return u
}

// ReadManifest loads and validates the cluster manifest at path.
func ReadManifest(path string) (*Manifest, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("cluster: read manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(buf, &m); err != nil {
		return nil, fmt.Errorf("cluster: parse manifest %s: %w", path, err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	for i := range m.Shards {
		for j := range m.Shards[i].Replicas {
			m.Shards[i].Replicas[j] = normalizeURL(m.Shards[i].Replicas[j])
		}
	}
	return &m, nil
}

// WriteManifest persists m at path atomically (write, fsync, rename —
// the same crash discipline as every other commit point in the
// system), validating first so a bad manifest never reaches disk.
func WriteManifest(path string, m *Manifest) error {
	if err := m.Validate(); err != nil {
		return err
	}
	buf, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return atomicfile.WriteFile(filepath.Dir(path), filepath.Base(path), buf)
}
