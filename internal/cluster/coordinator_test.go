package cluster_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/hd-index/hdindex/internal/cluster"
)

// fastOpts keeps the retry machinery snappy for stub-server tests.
func fastOpts() cluster.Options {
	return cluster.Options{
		HealthInterval: -1,
		DisableHedging: true,
		BackoffBase:    time.Millisecond,
		BackoffMax:     4 * time.Millisecond,
		MaxAttempts:    3,
	}
}

// stubManifest builds a manifest (no UUID: stub servers carry no
// identity stamp) over the given per-shard replica lists.
func stubManifest(dim int, shards ...[]string) *cluster.Manifest {
	m := &cluster.Manifest{FormatVersion: cluster.ManifestFormatVersion, Dim: dim}
	for i, reps := range shards {
		m.Shards = append(m.Shards, cluster.ShardSpec{Ordinal: i, Replicas: reps})
	}
	return m
}

// stubNode serves /search and /searchbatch with the given handler and
// a plausible /healthz (dim 4, no identity).
func stubNode(t *testing.T, search http.HandlerFunc) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("POST /search", search)
	mux.HandleFunc("POST /searchbatch", search)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"status":"ok","count":1,"dim":4}`)
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

// answer writes a canned one-result reply with the given local id.
func answer(w http.ResponseWriter, localID int, dist float64) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"results":[{"id":%d,"dist":%g}]}`, localID, dist)
}

// deadAddr returns a loopback address with nothing listening: instant
// connection refused.
func deadAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return "http://" + addr
}

func newCoordinator(t *testing.T, man *cluster.Manifest, opts cluster.Options) (*cluster.Coordinator, *httptest.Server) {
	t.Helper()
	coord, err := cluster.New(man, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	front := httptest.NewServer(coord.Handler())
	t.Cleanup(front.Close)
	return coord, front
}

func searchOnce(t *testing.T, base string, req map[string]any) (int, []byte) {
	t.Helper()
	if _, ok := req["query"]; !ok {
		req["query"] = []float32{0.1, 0.2, 0.3, 0.4}
	}
	return post(t, base, "/search", req)
}

func TestFailoverOnReplicaFailure(t *testing.T) {
	var aHits, bHits atomic.Int64
	nodeA := stubNode(t, func(w http.ResponseWriter, r *http.Request) {
		aHits.Add(1)
		http.Error(w, "boom", http.StatusInternalServerError)
	})
	nodeB := stubNode(t, func(w http.ResponseWriter, r *http.Request) {
		bHits.Add(1)
		answer(w, 7, 0.25)
	})
	coord, front := newCoordinator(t, stubManifest(4, []string{nodeA.URL, nodeB.URL}), fastOpts())

	code, body := searchOnce(t, front.URL, map[string]any{"k": 1})
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var resp struct {
		Results []struct {
			ID   uint64  `json:"id"`
			Dist float64 `json:"dist"`
		} `json:"results"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 1 || resp.Results[0].ID != 7 || resp.Results[0].Dist != 0.25 {
		t.Fatalf("unexpected results: %+v", resp.Results)
	}
	if aHits.Load() == 0 || bHits.Load() == 0 {
		t.Fatalf("hits: A=%d B=%d, want both tried", aHits.Load(), bHits.Load())
	}
	st := coord.Stats()
	if st.Failovers == 0 || st.Retries == 0 {
		t.Fatalf("failovers=%d retries=%d, want both > 0", st.Failovers, st.Retries)
	}
}

// TestShedFailsOverImmediately pins the Retry-After fast path: a 503
// shed from admission control routes to the next replica with no
// backoff sleep, even though the shed priced the retry in seconds.
func TestShedFailsOverImmediately(t *testing.T) {
	nodeA := stubNode(t, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "5")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, `{"error":"admission queue full","code":"overloaded"}`)
	})
	nodeB := stubNode(t, func(w http.ResponseWriter, r *http.Request) {
		answer(w, 0, 0.5)
	})
	opts := fastOpts()
	// A deliberately huge backoff: if the shed path slept it, the test's
	// elapsed-time bound fails.
	opts.BackoffBase = 2 * time.Second
	opts.BackoffMax = 2 * time.Second
	_, front := newCoordinator(t, stubManifest(4, []string{nodeA.URL, nodeB.URL}), opts)

	start := time.Now()
	code, body := searchOnce(t, front.URL, map[string]any{"k": 1})
	elapsed := time.Since(start)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	if elapsed > 500*time.Millisecond {
		t.Fatalf("shed failover took %v, want immediate (no backoff sleep)", elapsed)
	}
}

// TestTenantThrottleFailsOver covers the 429 leg of the shed
// classification.
func TestTenantThrottleFailsOver(t *testing.T) {
	nodeA := stubNode(t, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusTooManyRequests)
		io.WriteString(w, `{"error":"tenant over budget","code":"tenant_throttled"}`)
	})
	nodeB := stubNode(t, func(w http.ResponseWriter, r *http.Request) {
		answer(w, 0, 0.5)
	})
	_, front := newCoordinator(t, stubManifest(4, []string{nodeA.URL, nodeB.URL}), fastOpts())
	if code, body := searchOnce(t, front.URL, map[string]any{"k": 1}); code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
}

// TestPermanentErrorPropagates pins the no-retry path: a shard's 4xx
// means the request itself is wrong, so the coordinator relays the
// structured error after exactly one attempt.
func TestPermanentErrorPropagates(t *testing.T) {
	var hits atomic.Int64
	node := stubNode(t, func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		io.WriteString(w, `{"error":"alpha must be >= 0, got -1","code":"bad_options"}`)
	})
	_, front := newCoordinator(t, stubManifest(4, []string{node.URL, node.URL}), fastOpts())

	code, body := searchOnce(t, front.URL, map[string]any{"k": 1})
	if code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", code, body)
	}
	var eb struct {
		Code string `json:"code"`
	}
	if err := json.Unmarshal(body, &eb); err != nil || eb.Code != "bad_options" {
		t.Fatalf("error body not relayed: %s (err %v)", body, err)
	}
	if n := hits.Load(); n != 1 {
		t.Fatalf("%d attempts on a permanent error, want 1", n)
	}
}

func TestPartialResultsAndRequireFull(t *testing.T) {
	nodeA := stubNode(t, func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/searchbatch" {
			w.Header().Set("Content-Type", "application/json")
			io.WriteString(w, `{"results":[[{"id":3,"dist":0.5}],[{"id":3,"dist":0.5}]]}`)
			return
		}
		answer(w, 3, 0.5)
	})
	man := stubManifest(4, []string{nodeA.URL}, []string{deadAddr(t)})
	coord, front := newCoordinator(t, man, fastOpts())

	// Default policy: the merged partial answer, missing ordinals echoed.
	code, body := searchOnce(t, front.URL, map[string]any{"k": 2})
	if code != http.StatusOK {
		t.Fatalf("partial search: status %d: %s", code, body)
	}
	var resp struct {
		Results []struct {
			ID uint64 `json:"id"`
		} `json:"results"`
		Stats struct {
			PartialShards []int `json:"partial_shards"`
		} `json:"stats"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	// Shard 0's local id 3 in a 2-shard layout is global 3*2+0 = 6.
	if len(resp.Results) != 1 || resp.Results[0].ID != 6 {
		t.Fatalf("partial results: %+v", resp.Results)
	}
	if len(resp.Stats.PartialShards) != 1 || resp.Stats.PartialShards[0] != 1 {
		t.Fatalf("partial_shards = %v, want [1]", resp.Stats.PartialShards)
	}

	// require_full: the same failure becomes a 503 shard_unavailable.
	code, body = searchOnce(t, front.URL, map[string]any{"k": 2, "require_full": true})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("require_full: status %d, want 503: %s", code, body)
	}
	var eb struct {
		Code string `json:"code"`
	}
	if err := json.Unmarshal(body, &eb); err != nil || eb.Code != "shard_unavailable" {
		t.Fatalf("require_full error body: %s", body)
	}

	st := coord.Stats()
	if st.PartialResponses == 0 || st.ShardUnavailable == 0 {
		t.Fatalf("partial=%d unavailable=%d, want both > 0", st.PartialResponses, st.ShardUnavailable)
	}

	// Batch leg: partial_shards surfaces at the batch level.
	code, body = post(t, front.URL, "/searchbatch", map[string]any{
		"queries": [][]float32{{0.1, 0.2, 0.3, 0.4}, {0.5, 0.6, 0.7, 0.8}}, "k": 2,
	})
	if code != http.StatusOK {
		t.Fatalf("partial batch: status %d: %s", code, body)
	}
	var bresp struct {
		Results       [][]struct{ ID uint64 } `json:"results"`
		PartialShards []int                   `json:"partial_shards"`
	}
	if err := json.Unmarshal(body, &bresp); err != nil {
		t.Fatal(err)
	}
	if len(bresp.Results) != 2 || len(bresp.PartialShards) != 1 || bresp.PartialShards[0] != 1 {
		t.Fatalf("batch partial: results=%d partial_shards=%v", len(bresp.Results), bresp.PartialShards)
	}
}

func TestAllShardsDownIs503(t *testing.T) {
	opts := fastOpts()
	opts.MaxAttempts = 2
	_, front := newCoordinator(t, stubManifest(4, []string{deadAddr(t)}), opts)
	code, body := searchOnce(t, front.URL, map[string]any{"k": 1})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", code, body)
	}
	if !strings.Contains(string(body), "shard_unavailable") {
		t.Fatalf("body: %s", body)
	}
}

func TestCoordinatorValidation(t *testing.T) {
	node := stubNode(t, func(w http.ResponseWriter, r *http.Request) { answer(w, 0, 0.5) })
	_, front := newCoordinator(t, stubManifest(4, []string{node.URL}), fastOpts())

	cases := []struct {
		name string
		req  map[string]any
		code int
		want string
	}{
		{"dim mismatch", map[string]any{"query": []float32{1, 2}, "k": 1}, 400, "dim_mismatch"},
		{"bad k", map[string]any{"query": []float32{1, 2, 3, 4}, "k": 0}, 400, "k must be"},
		{"negative alpha", map[string]any{"query": []float32{1, 2, 3, 4}, "k": 1, "alpha": -1}, 400, "bad_options"},
		{"mc below k", map[string]any{"query": []float32{1, 2, 3, 4}, "k": 5, "max_candidates": 3}, 400, "bad_options"},
		{"unknown field", map[string]any{"query": []float32{1, 2, 3, 4}, "k": 1, "wat": true}, 400, "invalid request body"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, body := post(t, front.URL, "/search", tc.req)
			if code != tc.code || !strings.Contains(string(body), tc.want) {
				t.Fatalf("status %d body %s, want %d containing %q", code, body, tc.code, tc.want)
			}
		})
	}
}

// TestHealthStateMachine drives a replica healthy → suspect → down via
// failed probes, then back to healthy on recovery, watching the
// coordinator's own /healthz fold the table into ok/degraded.
func TestHealthStateMachine(t *testing.T) {
	var bad atomic.Bool
	nodeA := stubNode(t, func(w http.ResponseWriter, r *http.Request) { answer(w, 1, 0.5) })
	// nodeA's healthz is always fine; flaky's healthz fails on demand.
	mux := http.NewServeMux()
	mux.HandleFunc("POST /search", func(w http.ResponseWriter, r *http.Request) { answer(w, 1, 0.75) })
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if bad.Load() {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		io.WriteString(w, `{"status":"ok","count":1,"dim":4}`)
	})
	flaky := httptest.NewServer(mux)
	t.Cleanup(flaky.Close)

	opts := fastOpts()
	opts.HealthInterval = 20 * time.Millisecond
	coord, front := newCoordinator(t, stubManifest(4, []string{flaky.URL, nodeA.URL}), opts)

	waitStatus := func(want string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			resp, err := http.Get(front.URL + "/healthz")
			if err != nil {
				t.Fatal(err)
			}
			var hz struct {
				Status string `json:"status"`
			}
			err = json.NewDecoder(resp.Body).Decode(&hz)
			resp.Body.Close()
			if err == nil && hz.Status == want {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("coordinator never reached status %q (last %q)", want, hz.Status)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	waitStatus("ok")
	bad.Store(true)
	waitStatus("degraded")
	// The down replica is routed around: queries keep succeeding.
	if code, body := searchOnce(t, front.URL, map[string]any{"k": 1}); code != http.StatusOK {
		t.Fatalf("query during replica outage: %d %s", code, body)
	}
	st := coord.Stats()
	if got := st.Shards[0].Replicas[0].State; got != "down" && got != "suspect" {
		t.Fatalf("flaky replica state %q, want suspect/down", got)
	}
	bad.Store(false)
	waitStatus("ok")
}

// TestProbeRejectsLaterMiswiring: a replica whose identity changes
// mid-run (restarted onto the wrong directory) is rejected by the next
// probe round, not just at startup.
func TestProbeRejectsLaterMiswiring(t *testing.T) {
	var wrong atomic.Bool
	mux := http.NewServeMux()
	mux.HandleFunc("POST /search", func(w http.ResponseWriter, r *http.Request) { answer(w, 0, 0.5) })
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		shard := 0
		if wrong.Load() {
			shard = 1
		}
		fmt.Fprintf(w, `{"status":"ok","count":1,"dim":4,"identity":{"cluster_uuid":"u1","shard":%d,"shards":2,"dim":4}}`, shard)
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	good := stubNode(t, func(w http.ResponseWriter, r *http.Request) { answer(w, 0, 0.25) })

	man := stubManifest(4, []string{ts.URL}, []string{good.URL})
	// No manifest UUID (the good stub is unstamped), but the flaky
	// node's own stamp must still match its slot.
	opts := fastOpts()
	opts.HealthInterval = 20 * time.Millisecond
	coord, _ := newCoordinator(t, man, opts)

	deadline := time.Now().Add(5 * time.Second)
	for coord.Stats().Shards[0].Replicas[0].State != "healthy" {
		if time.Now().After(deadline) {
			t.Fatal("replica never verified healthy")
		}
		time.Sleep(10 * time.Millisecond)
	}
	wrong.Store(true)
	for coord.Stats().Shards[0].Replicas[0].State != "rejected" {
		if time.Now().After(deadline) {
			t.Fatalf("miswired replica never rejected: %+v", coord.Stats().Shards[0].Replicas[0])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
