package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"time"

	"github.com/hd-index/hdindex/internal/topk"
)

// Wire error codes. The first two mirror the shard servers' codes (the
// coordinator speaks the same protocol); shard_unavailable is the
// coordinator's own: a shard exhausted every replica and the request's
// completeness policy did not allow a partial answer.
const (
	codeDimMismatch      = "dim_mismatch"
	codeBadOptions       = "bad_options"
	codeShardUnavailable = "shard_unavailable"
)

// searchRequest is the coordinator's /search body: the shard servers'
// schema plus require_full.
type searchRequest struct {
	Query     []float32 `json:"query"`
	K         int       `json:"k"`
	TimeoutMs int       `json:"timeout_ms"`
	Stats     bool      `json:"stats"`
	// RequireFull selects the completeness policy: true fails the whole
	// request with 503 shard_unavailable when any shard cannot answer;
	// false (the default) serves the merged partial result with the
	// missing ordinals echoed in stats.partial_shards.
	RequireFull bool `json:"require_full"`
	tuningJSON
}

type searchBatchRequest struct {
	Queries     [][]float32 `json:"queries"`
	K           int         `json:"k"`
	TimeoutMs   int         `json:"timeout_ms"`
	Stats       bool        `json:"stats"`
	RequireFull bool        `json:"require_full"`
	tuningJSON
}

// tuningJSON is the per-request cascade override block, forwarded to
// every shard (with max_candidates split across the scatter).
type tuningJSON struct {
	Alpha         int   `json:"alpha,omitempty"`
	Gamma         int   `json:"gamma,omitempty"`
	MaxCandidates int   `json:"max_candidates,omitempty"`
	Ptolemaic     *bool `json:"ptolemaic,omitempty"`
}

// subRequest is the body fanned out to shard servers. One struct for
// both endpoints: exactly one of Query/Queries is set.
type subRequest struct {
	Query     []float32   `json:"query,omitempty"`
	Queries   [][]float32 `json:"queries,omitempty"`
	K         int         `json:"k"`
	TimeoutMs int         `json:"timeout_ms,omitempty"`
	Stats     bool        `json:"stats,omitempty"`
	tuningJSON
}

// resultJSON mirrors the shard servers' result entry. Dist stays a
// float64 end to end — Go's JSON encoding of a float64 round-trips
// exactly, which is what makes the cluster's merged answer bit-identical
// to the in-process sharded index.
type resultJSON struct {
	ID   uint64  `json:"id"`
	Dist float64 `json:"dist"`
}

// statsJSON mirrors the shard servers' per-query stats block, plus the
// coordinator's partial_shards.
type statsJSON struct {
	Candidates      int                `json:"candidates"`
	TreeEntries     int                `json:"tree_entries"`
	PageReads       uint64             `json:"page_reads"`
	PageHits        uint64             `json:"page_hits"`
	PageMisses      uint64             `json:"page_misses"`
	ExactDistances  int                `json:"exact_distances"`
	MemtableScanned int                `json:"memtable_scanned"`
	Alpha           int                `json:"alpha"`
	Beta            int                `json:"beta"`
	Gamma           int                `json:"gamma"`
	Ptolemaic       bool               `json:"ptolemaic"`
	Degraded        bool               `json:"degraded,omitempty"`
	PhaseUS         map[string]float64 `json:"phase_us,omitempty"`
	// PartialShards lists the ordinals that contributed nothing to this
	// answer (every replica exhausted). Present only on partial answers.
	PartialShards []int `json:"partial_shards,omitempty"`
}

type subResponse struct {
	Results []resultJSON `json:"results"`
	Stats   *statsJSON   `json:"stats"`
}

type subBatchResponse struct {
	Results [][]resultJSON `json:"results"`
	Stats   []*statsJSON   `json:"stats"`
}

type searchResponse struct {
	Results []resultJSON `json:"results"`
	Stats   *statsJSON   `json:"stats,omitempty"`
}

type searchBatchResponse struct {
	Results [][]resultJSON `json:"results"`
	Stats   []*statsJSON   `json:"stats,omitempty"`
	// PartialShards is the batch-level completeness report: the ordinals
	// missing from every answer in the batch (a shard fails for the
	// whole sub-batch or not at all).
	PartialShards []int `json:"partial_shards,omitempty"`
}

// healthzResponse is the coordinator's /healthz: ok when every replica
// is healthy, degraded when some are not but every shard still has a
// usable replica, unavailable (503) when at least one shard has none.
type healthzResponse struct {
	Status string `json:"status"`
	Shards int    `json:"shards"`
	Dim    int    `json:"dim"`
}

// statsResponse is the coordinator's /stats.
type statsResponse struct {
	Status      string `json:"status"`
	Coordinator Stats  `json:"coordinator"`
}

type httpError struct {
	code    int
	errCode string
	msg     string
}

func (e *httpError) Error() string { return e.msg }

type errorBody struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func badRequest(errCode, format string, args ...any) error {
	return &httpError{code: http.StatusBadRequest, errCode: errCode, msg: fmt.Sprintf(format, args...)}
}

// Handler returns the coordinator's routed HTTP handler: the shard
// servers' read API re-served cluster-wide.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /search", c.wrap(c.handleSearch))
	mux.HandleFunc("POST /searchbatch", c.wrap(c.handleSearchBatch))
	mux.HandleFunc("GET /healthz", c.handleHealthz)
	mux.HandleFunc("GET /stats", c.handleStats)
	return mux
}

func (c *Coordinator) wrap(h func(r *http.Request) (any, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, 64<<20)
		}
		start := time.Now()
		resp, err := h(r)
		w.Header().Set("Server-Timing",
			fmt.Sprintf("total;dur=%.3f", float64(time.Since(start).Nanoseconds())/1e6))
		if err != nil {
			c.writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	}
}

func (c *Coordinator) writeError(w http.ResponseWriter, err error) {
	var he *httpError
	var pe *permanentError
	var se *ShardError
	switch {
	case errors.As(err, &pe):
		// A shard server judged the request itself invalid (bad options,
		// dim mismatch the coordinator's own checks missed). Its body is
		// already the structured error the client expects — relay it.
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(pe.status)
		_, _ = w.Write(pe.body)
	case errors.As(err, &se):
		writeJSON(w, http.StatusServiceUnavailable, errorBody{
			Error: err.Error(), Code: codeShardUnavailable,
		})
	case errors.As(err, &he):
		writeJSON(w, he.code, errorBody{Error: he.msg, Code: he.errCode})
	case errors.Is(err, context.DeadlineExceeded):
		writeJSON(w, http.StatusGatewayTimeout, errorBody{Error: err.Error()})
	default:
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
	}
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := c.healthStatus()
	code := http.StatusOK
	if status == "unavailable" {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, healthzResponse{Status: status, Shards: len(c.shards), Dim: c.man.Dim})
}

// healthStatus folds the replica table into one verdict.
func (c *Coordinator) healthStatus() string {
	status := "ok"
	for _, reps := range c.shards {
		usable := 0
		for _, rep := range reps {
			if rep.isRejected() {
				status = "degraded"
				continue
			}
			switch rep.getState() {
			case stateHealthy:
				usable++
			default:
				status = "degraded"
			}
		}
		if usable == 0 {
			return "unavailable"
		}
	}
	return status
}

func (c *Coordinator) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, statsResponse{Status: c.healthStatus(), Coordinator: c.Stats()})
}

// decodeBody strictly parses the JSON request body into v, mirroring
// the shard servers' decoding so the coordinator rejects exactly what
// they would.
func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return &httpError{code: http.StatusRequestEntityTooLarge,
				msg: fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit)}
		}
		return badRequest("", "invalid request body: %v", err)
	}
	if dec.More() {
		return badRequest("", "invalid request body: trailing data after JSON object")
	}
	return nil
}

// validate covers the checks shared by both endpoints; returns the
// per-shard tuning block (max_candidates split across the scatter, the
// same arithmetic as the in-process sharded index: floor division,
// each shard keeping at least k so the merge sees a full local top-k).
func (c *Coordinator) validate(k int, t tuningJSON) (tuningJSON, error) {
	if k < 1 {
		return t, badRequest("", "k must be >= 1, got %d", k)
	}
	if k > c.opts.MaxK {
		return t, badRequest("", "k = %d exceeds the server limit %d", k, c.opts.MaxK)
	}
	for _, f := range []struct {
		name string
		v    int
	}{{"alpha", t.Alpha}, {"gamma", t.Gamma}, {"max_candidates", t.MaxCandidates}} {
		if f.v < 0 {
			return t, badRequest(codeBadOptions, "%s must be >= 0, got %d", f.name, f.v)
		}
	}
	if t.MaxCandidates > 0 {
		if t.MaxCandidates < k {
			return t, badRequest(codeBadOptions, "max_candidates=%d < k=%d", t.MaxCandidates, k)
		}
		t.MaxCandidates = max(k, t.MaxCandidates/len(c.shards))
	}
	return t, nil
}

func (c *Coordinator) validateQuery(name string, q []float32) error {
	if len(q) == 0 {
		return badRequest("", "%s must be non-empty", name)
	}
	if len(q) != c.man.Dim {
		return badRequest(codeDimMismatch, "%s has %d dims, cluster has %d", name, len(q), c.man.Dim)
	}
	return nil
}

// requestContext applies the request's own deadline, if any, bounded
// against overflow exactly like the shard servers.
func requestContext(r *http.Request, timeoutMs int) (context.Context, context.CancelFunc) {
	ctx := r.Context()
	if timeoutMs > 0 && int64(timeoutMs) <= int64(math.MaxInt64)/int64(time.Millisecond) {
		return context.WithTimeout(ctx, time.Duration(timeoutMs)*time.Millisecond)
	}
	return ctx, func() {}
}

// globalID maps a shard-local id back to the global id of the
// round-robin striped build: global g was routed to shard g mod N at
// local slot g div N, so local l of shard i is l*N + i.
func (c *Coordinator) globalID(ordinal int, local uint64) uint64 {
	return local*uint64(len(c.shards)) + uint64(ordinal)
}

// aggStats merges per-shard stats blocks the way the in-process
// sharded index does: counters summed, the cascade echo taken from the
// lowest answering ordinal (every shard resolves the same options
// against the same built params, so any echo is THE echo).
func aggStats(perShard []*statsJSON, failed []int) *statsJSON {
	agg := &statsJSON{}
	first := true
	for _, st := range perShard {
		if st == nil {
			continue
		}
		agg.Candidates += st.Candidates
		agg.TreeEntries += st.TreeEntries
		agg.PageReads += st.PageReads
		agg.PageHits += st.PageHits
		agg.PageMisses += st.PageMisses
		agg.ExactDistances += st.ExactDistances
		agg.MemtableScanned += st.MemtableScanned
		for phase, us := range st.PhaseUS {
			if agg.PhaseUS == nil {
				agg.PhaseUS = make(map[string]float64, len(st.PhaseUS))
			}
			agg.PhaseUS[phase] += us
		}
		if first {
			agg.Alpha, agg.Beta, agg.Gamma = st.Alpha, st.Beta, st.Gamma
			agg.Ptolemaic, agg.Degraded = st.Ptolemaic, st.Degraded
			first = false
		}
	}
	agg.PartialShards = failed
	return agg
}

func (c *Coordinator) handleSearch(r *http.Request) (any, error) {
	var req searchRequest
	if err := decodeBody(r, &req); err != nil {
		return nil, err
	}
	if err := c.validateQuery("query", req.Query); err != nil {
		return nil, err
	}
	tuning, err := c.validate(req.K, req.tuningJSON)
	if err != nil {
		return nil, err
	}
	ctx, cancel := requestContext(r, req.TimeoutMs)
	defer cancel()
	body, err := json.Marshal(subRequest{
		Query: req.Query, K: req.K, TimeoutMs: req.TimeoutMs,
		Stats: req.Stats, tuningJSON: tuning,
	})
	if err != nil {
		return nil, err
	}
	replies, failed, permErr := c.scatter(ctx, "/search", body)
	if permErr != nil {
		return nil, permErr
	}
	if err := c.completeness(ctx, req.RequireFull, failed); err != nil {
		return nil, err
	}

	best := topk.New(req.K)
	perStats := make([]*statsJSON, len(replies))
	for i, raw := range replies {
		if raw == nil {
			continue
		}
		var sub subResponse
		if err := json.Unmarshal(raw, &sub); err != nil {
			return nil, fmt.Errorf("cluster: shard %d returned malformed response: %w", i, err)
		}
		for _, res := range sub.Results {
			best.Push(c.globalID(i, res.ID), res.Dist)
		}
		perStats[i] = sub.Stats
	}
	out := searchResponse{Results: itemsToResults(best.Items())}
	if req.Stats || len(failed) > 0 {
		out.Stats = aggStats(perStats, failed)
	}
	return out, nil
}

func (c *Coordinator) handleSearchBatch(r *http.Request) (any, error) {
	var req searchBatchRequest
	if err := decodeBody(r, &req); err != nil {
		return nil, err
	}
	if len(req.Queries) == 0 {
		return nil, badRequest("", "queries must be non-empty")
	}
	if len(req.Queries) > c.opts.MaxBatch {
		return nil, badRequest("", "batch of %d queries exceeds the server limit %d", len(req.Queries), c.opts.MaxBatch)
	}
	for i, q := range req.Queries {
		if len(q) == 0 {
			return nil, badRequest("", "queries[%d] must be non-empty", i)
		}
		if len(q) != c.man.Dim {
			return nil, badRequest(codeDimMismatch, "queries[%d] has %d dims, cluster has %d", i, len(q), c.man.Dim)
		}
	}
	tuning, err := c.validate(req.K, req.tuningJSON)
	if err != nil {
		return nil, err
	}
	ctx, cancel := requestContext(r, req.TimeoutMs)
	defer cancel()
	body, err := json.Marshal(subRequest{
		Queries: req.Queries, K: req.K, TimeoutMs: req.TimeoutMs,
		Stats: req.Stats, tuningJSON: tuning,
	})
	if err != nil {
		return nil, err
	}
	replies, failed, permErr := c.scatter(ctx, "/searchbatch", body)
	if permErr != nil {
		return nil, permErr
	}
	if err := c.completeness(ctx, req.RequireFull, failed); err != nil {
		return nil, err
	}

	nq := len(req.Queries)
	subs := make([]*subBatchResponse, len(replies))
	for i, raw := range replies {
		if raw == nil {
			continue
		}
		var sub subBatchResponse
		if err := json.Unmarshal(raw, &sub); err != nil {
			return nil, fmt.Errorf("cluster: shard %d returned malformed response: %w", i, err)
		}
		if len(sub.Results) != nq {
			return nil, fmt.Errorf("cluster: shard %d answered %d queries, batch has %d", i, len(sub.Results), nq)
		}
		subs[i] = &sub
	}
	out := searchBatchResponse{Results: make([][]resultJSON, nq), PartialShards: failed}
	if req.Stats {
		out.Stats = make([]*statsJSON, nq)
	}
	for qi := 0; qi < nq; qi++ {
		best := topk.New(req.K)
		perStats := make([]*statsJSON, len(replies))
		for i, sub := range subs {
			if sub == nil {
				continue
			}
			for _, res := range sub.Results[qi] {
				best.Push(c.globalID(i, res.ID), res.Dist)
			}
			if sub.Stats != nil {
				perStats[i] = sub.Stats[qi]
			}
		}
		out.Results[qi] = itemsToResults(best.Items())
		if req.Stats {
			out.Stats[qi] = aggStats(perStats, failed)
		}
	}
	return out, nil
}

// completeness applies the per-request policy to the scatter's failed
// ordinals. A deadline that expired mid-scatter surfaces as a timeout,
// not a partial: "the cluster lost a shard" and "the client's budget
// ran out" are different failures and get different statuses.
func (c *Coordinator) completeness(ctx context.Context, requireFull bool, failed []int) error {
	if len(failed) == 0 {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if len(failed) == len(c.shards) {
		return &httpError{code: http.StatusServiceUnavailable, errCode: codeShardUnavailable,
			msg: fmt.Sprintf("all %d shards unavailable", len(c.shards))}
	}
	if requireFull {
		return &httpError{code: http.StatusServiceUnavailable, errCode: codeShardUnavailable,
			msg: fmt.Sprintf("shards %v unavailable and require_full is set", failed)}
	}
	c.partials.Add(1)
	return nil
}

func itemsToResults(items []topk.Item) []resultJSON {
	out := make([]resultJSON, len(items))
	for i, it := range items {
		out[i] = resultJSON{ID: it.ID, Dist: it.Dist}
	}
	return out
}
