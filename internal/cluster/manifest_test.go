package cluster

import (
	"path/filepath"
	"strings"
	"testing"
)

func validManifest() *Manifest {
	return &Manifest{
		FormatVersion: ManifestFormatVersion,
		UUID:          "abc123",
		Dim:           32,
		Shards: []ShardSpec{
			{Ordinal: 0, Replicas: []string{"http://10.0.0.1:8080", "10.0.0.2:8080"}},
			{Ordinal: 1, Replicas: []string{"http://10.0.0.3:8080/"}},
		},
	}
}

func TestManifestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cluster.json")
	if err := WriteManifest(path, validManifest()); err != nil {
		t.Fatal(err)
	}
	m, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.UUID != "abc123" || m.Dim != 32 || m.NumShards() != 2 {
		t.Fatalf("round trip lost fields: %+v", m)
	}
	// Reading normalizes: bare host:port promoted, trailing slash gone.
	if got := m.Shards[0].Replicas[1]; got != "http://10.0.0.2:8080" {
		t.Fatalf("bare host:port not promoted: %q", got)
	}
	if got := m.Shards[1].Replicas[0]; got != "http://10.0.0.3:8080" {
		t.Fatalf("trailing slash kept: %q", got)
	}
}

func TestManifestValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Manifest)
		want string
	}{
		{"wrong version", func(m *Manifest) { m.FormatVersion = 99 }, "format version"},
		{"zero dim", func(m *Manifest) { m.Dim = 0 }, "dimensionality"},
		{"no shards", func(m *Manifest) { m.Shards = nil }, "no shards"},
		{"out of order", func(m *Manifest) { m.Shards[0].Ordinal = 1 }, "ordinal"},
		{"no replicas", func(m *Manifest) { m.Shards[1].Replicas = nil }, "no replicas"},
		{"blank replica", func(m *Manifest) { m.Shards[0].Replicas[0] = "  " }, "empty"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := validManifest()
			tc.mut(m)
			err := m.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.want)
			}
			// A bad manifest must never reach disk.
			if err := WriteManifest(filepath.Join(t.TempDir(), "m.json"), m); err == nil {
				t.Fatal("WriteManifest accepted an invalid manifest")
			}
		})
	}
}

func TestReadManifestMissing(t *testing.T) {
	if _, err := ReadManifest(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("reading a missing manifest succeeded")
	}
}
