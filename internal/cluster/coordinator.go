package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hd-index/hdindex/internal/telemetry"
)

// Options tunes the coordinator's robustness machinery. The zero value
// gets sane defaults for every field.
type Options struct {
	// MaxAttempts is the total number of replica attempts per
	// sub-query, hedges excluded (default 4). Attempts walk the shard's
	// replica list in health order, wrapping around.
	MaxAttempts int
	// BackoffBase and BackoffMax bound the capped exponential backoff
	// (with ±50% jitter) slept between attempts after a transient
	// failure (defaults 5ms, 250ms). A 503 shed skips the sleep: the
	// replica is alive, the next one may be idle.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// SubQueryTimeout caps one attempt against one replica (default
	// 5s). The incoming request's own deadline still applies on top.
	SubQueryTimeout time.Duration
	// HedgeDelay fixes the hedging trigger: a sub-query outliving it
	// fires the same request at the next replica, first answer wins.
	// 0 (the default) adapts: the delay is the windowed p99 of recent
	// successful sub-query latency, clamped to [HedgeMinDelay,
	// HedgeMaxDelay].
	HedgeDelay time.Duration
	// HedgeMinDelay and HedgeMaxDelay clamp the adaptive delay
	// (defaults 2ms, 200ms); the max is also used while the latency
	// window is still empty.
	HedgeMinDelay time.Duration
	HedgeMaxDelay time.Duration
	// DisableHedging turns hedged requests off entirely.
	DisableHedging bool
	// HealthInterval is the active health-check cadence (default
	// 500ms). Negative disables active probing — replica states then
	// move only on sub-query outcomes.
	HealthInterval time.Duration
	// MaxK and MaxBatch mirror the shard servers' request caps
	// (defaults 1000, 4096).
	MaxK     int
	MaxBatch int
	// Transport overrides the HTTP transport (test seam; nil uses a
	// pooled transport sized for the fan-out).
	Transport http.RoundTripper
	// Logger receives replica state transitions and rejections; nil
	// uses slog.Default().
	Logger *slog.Logger
}

func (o *Options) defaults() {
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 4
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 5 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 250 * time.Millisecond
	}
	if o.SubQueryTimeout <= 0 {
		o.SubQueryTimeout = 5 * time.Second
	}
	if o.HedgeMinDelay <= 0 {
		o.HedgeMinDelay = 2 * time.Millisecond
	}
	if o.HedgeMaxDelay <= 0 {
		o.HedgeMaxDelay = 200 * time.Millisecond
	}
	if o.HealthInterval == 0 {
		o.HealthInterval = 500 * time.Millisecond
	}
	if o.MaxK <= 0 {
		o.MaxK = 1000
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 4096
	}
	if o.Logger == nil {
		o.Logger = slog.Default()
	}
}

// Stats is the coordinator's point-in-time counters for /stats.
type Stats struct {
	// Retries counts extra attempts beyond each sub-query's first;
	// Failovers counts sub-queries answered by a replica other than
	// the first choice.
	Retries   uint64 `json:"retries"`
	Failovers uint64 `json:"failovers"`
	// HedgesFired counts hedge requests launched; HedgeWins counts the
	// ones that answered before the request they backed up.
	HedgesFired uint64 `json:"hedges_fired"`
	HedgeWins   uint64 `json:"hedge_wins"`
	// PartialResponses counts requests served with at least one shard
	// missing; ShardUnavailable counts sub-queries that exhausted every
	// replica and attempt.
	PartialResponses uint64 `json:"partial_responses"`
	ShardUnavailable uint64 `json:"shard_unavailable"`
	// SubqueryP50US/P99US summarise successful sub-query latency.
	SubqueryP50US float64 `json:"subquery_p50_us"`
	SubqueryP99US float64 `json:"subquery_p99_us"`
	// HedgeDelayUS is the delay a hedge fired right now would wait.
	HedgeDelayUS float64      `json:"hedge_delay_us"`
	Shards       []ShardStats `json:"shards"`
}

// ShardStats is one shard's replica health table.
type ShardStats struct {
	Ordinal  int            `json:"ordinal"`
	Replicas []ReplicaStats `json:"replicas"`
}

// ReplicaStats is one replica's row of the health table.
type ReplicaStats struct {
	URL      string `json:"url"`
	State    string `json:"state"`
	Fails    int32  `json:"consecutive_failures"`
	Verified bool   `json:"verified"`
	Rejected bool   `json:"rejected,omitempty"`
	LastErr  string `json:"last_error,omitempty"`
}

// Coordinator scatter-gathers queries over the manifest's shard
// servers. Construct with New, release with Close.
type Coordinator struct {
	man    *Manifest
	opts   Options
	client *http.Client
	shards [][]*replica

	healthStop chan struct{}
	healthDone chan struct{}
	closeOnce  sync.Once

	retries     atomic.Uint64
	failovers   atomic.Uint64
	hedges      atomic.Uint64
	hedgeWins   atomic.Uint64
	partials    atomic.Uint64
	unavailable atomic.Uint64

	// Successful sub-query latency, feeding the adaptive hedge delay
	// (windowed p99, cached like internal/admission's pressure p99).
	subq    telemetry.Histogram
	pmu     sync.Mutex
	winSnap telemetry.Snapshot
	winAt   time.Time
	lastP99 atomic.Uint64
	p99At   atomic.Int64
}

const (
	p99CacheTTL = 250 * time.Millisecond
	p99Window   = 10 * time.Second
)

// New builds a Coordinator over a validated manifest and starts the
// health checker. It does not contact any endpoint — call Verify to
// run the startup identity check.
func New(man *Manifest, opts Options) (*Coordinator, error) {
	if err := man.Validate(); err != nil {
		return nil, err
	}
	opts.defaults()
	c := &Coordinator{
		man:        man,
		opts:       opts,
		healthStop: make(chan struct{}),
		healthDone: make(chan struct{}),
	}
	transport := opts.Transport
	if transport == nil {
		transport = &http.Transport{
			MaxIdleConns:        64,
			MaxIdleConnsPerHost: 16,
			IdleConnTimeout:     60 * time.Second,
		}
	}
	c.client = &http.Client{Transport: transport}
	c.shards = make([][]*replica, len(man.Shards))
	for i, s := range man.Shards {
		c.shards[i] = make([]*replica, len(s.Replicas))
		for j, u := range s.Replicas {
			c.shards[i][j] = &replica{url: normalizeURL(u), ordinal: i, pos: j}
		}
	}
	if opts.HealthInterval > 0 {
		go c.healthLoop()
	} else {
		close(c.healthDone)
	}
	return c, nil
}

// Close stops the health checker and releases pooled connections.
func (c *Coordinator) Close() {
	c.closeOnce.Do(func() { close(c.healthStop) })
	<-c.healthDone
	if t, ok := c.client.Transport.(*http.Transport); ok {
		t.CloseIdleConnections()
	}
}

// NumShards returns the cluster's shard count.
func (c *Coordinator) NumShards() int { return len(c.shards) }

// Dim returns the indexed dimensionality per the manifest.
func (c *Coordinator) Dim() int { return c.man.Dim }

// Stats snapshots the coordinator's counters and health table.
func (c *Coordinator) Stats() Stats {
	snap := c.subq.Snapshot()
	st := Stats{
		Retries:          c.retries.Load(),
		Failovers:        c.failovers.Load(),
		HedgesFired:      c.hedges.Load(),
		HedgeWins:        c.hedgeWins.Load(),
		PartialResponses: c.partials.Load(),
		ShardUnavailable: c.unavailable.Load(),
		SubqueryP50US:    snap.Quantile(0.50) / 1e3,
		SubqueryP99US:    snap.Quantile(0.99) / 1e3,
		HedgeDelayUS:     float64(c.hedgeDelay().Microseconds()),
	}
	for i, reps := range c.shards {
		ss := ShardStats{Ordinal: i}
		for _, r := range reps {
			ss.Replicas = append(ss.Replicas, r.stats())
		}
		st.Shards = append(st.Shards, ss)
	}
	return st
}

// hedgeDelay returns the delay after which a slow sub-query is hedged:
// the configured constant, or the windowed p99 of recent successful
// sub-query latency clamped to [HedgeMinDelay, HedgeMaxDelay]. While
// the window is empty (cold start) the max applies — hedging too
// eagerly before any latency is known would double every request.
func (c *Coordinator) hedgeDelay() time.Duration {
	if c.opts.HedgeDelay > 0 {
		return c.opts.HedgeDelay
	}
	p99 := time.Duration(c.p99NS())
	if p99 == 0 {
		return c.opts.HedgeMaxDelay
	}
	return min(max(p99, c.opts.HedgeMinDelay), c.opts.HedgeMaxDelay)
}

// p99NS is the windowed p99 of successful sub-query latency in
// nanoseconds, recomputed at most every p99CacheTTL over a sliding
// ~p99Window (the same scheme as internal/admission's pressure p99).
func (c *Coordinator) p99NS() float64 {
	nowNS := time.Now().UnixNano()
	if nowNS-c.p99At.Load() < int64(p99CacheTTL) {
		return float64(c.lastP99.Load())
	}
	c.pmu.Lock()
	defer c.pmu.Unlock()
	if nowNS-c.p99At.Load() < int64(p99CacheTTL) {
		return float64(c.lastP99.Load())
	}
	cur := c.subq.Snapshot()
	win := cur.Sub(c.winSnap)
	if win.Count == 0 {
		win = cur
	}
	p := win.Quantile(0.99)
	if now := time.Now(); c.winAt.IsZero() || now.Sub(c.winAt) >= p99Window {
		c.winSnap = cur
		c.winAt = now
	}
	c.lastP99.Store(uint64(p))
	c.p99At.Store(nowNS)
	return p
}

// ShardError reports a sub-query that exhausted every replica of one
// shard. The completeness policy decides what it becomes: a partial
// response or a 503 "shard_unavailable".
type ShardError struct {
	Ordinal int
	Err     error
}

func (e *ShardError) Error() string {
	return fmt.Sprintf("cluster: shard %d unavailable: %v", e.Ordinal, e.Err)
}

func (e *ShardError) Unwrap() error { return e.Err }

// permanentError carries a shard server's 4xx straight through: the
// request itself is wrong (bad options, dim mismatch), so no amount of
// retrying or failing over can fix it.
type permanentError struct {
	status int
	body   []byte
}

func (e *permanentError) Error() string {
	return fmt.Sprintf("shard server returned %d: %s", e.status, bytes.TrimSpace(e.body))
}

// class is the retry policy's verdict on one attempt.
type class int

const (
	classOK        class = iota
	classShed            // alive but shedding (503+Retry-After / 429): fail over NOW, no sleep
	classTransient       // connect error, timeout, or 5xx: back off, then next replica
	classPermanent       // 4xx: the request is wrong, do not retry
)

// attemptOut is one attempt's outcome inside the hedging race.
type attemptOut struct {
	body    []byte
	class   class
	err     error
	hedged  bool
	elapsed time.Duration
}

// doOnce runs one sub-query attempt against one replica.
func (c *Coordinator) doOnce(ctx context.Context, rep *replica, path string, body []byte) ([]byte, class, error) {
	actx, cancel := context.WithTimeout(ctx, c.opts.SubQueryTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodPost, rep.url+path, bytes.NewReader(body))
	if err != nil {
		return nil, classPermanent, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		// Passive health: a connect error or timeout is the same signal
		// a failed probe is — unless the parent context was cancelled,
		// which happens to every hedge race's loser and must not smear
		// a healthy replica.
		if ctx.Err() == nil {
			rep.noteFailure(err.Error())
		}
		return nil, classTransient, fmt.Errorf("%s: %w", rep.url, err)
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		if ctx.Err() == nil {
			rep.noteFailure(err.Error())
		}
		return nil, classTransient, fmt.Errorf("%s: read response: %w", rep.url, err)
	}
	switch {
	case resp.StatusCode == http.StatusOK:
		rep.noteSuccess()
		return payload, classOK, nil
	case resp.StatusCode == http.StatusTooManyRequests,
		resp.StatusCode == http.StatusServiceUnavailable && resp.Header.Get("Retry-After") != "":
		// An admission shed: the replica is alive and telling us to go
		// away. Another replica may be idle — fail over immediately
		// rather than sleeping out a backoff the Retry-After already
		// priced higher.
		rep.noteSuccess()
		return nil, classShed, fmt.Errorf("%s: shed with %d (Retry-After %s)", rep.url, resp.StatusCode, resp.Header.Get("Retry-After"))
	case resp.StatusCode >= 400 && resp.StatusCode < 500:
		return nil, classPermanent, &permanentError{status: resp.StatusCode, body: payload}
	default:
		rep.noteFailure(fmt.Sprintf("HTTP %d", resp.StatusCode))
		return nil, classTransient, fmt.Errorf("%s: HTTP %d: %s", rep.url, resp.StatusCode, bytes.TrimSpace(payload))
	}
}

// raceOnce runs one attempt with hedging: the primary is fired
// immediately; if it outlives the hedge delay and a distinct secondary
// exists, the same request is fired there too and the first success
// wins, the loser cancelled. A primary that fails before the hedge
// fires returns immediately (the outer retry loop is the right place
// to pick the next replica — with backoff if warranted).
func (c *Coordinator) raceOnce(ctx context.Context, primary, secondary *replica, path string, body []byte) ([]byte, class, error) {
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make(chan attemptOut, 2)
	launch := func(rep *replica, hedged bool) {
		start := time.Now()
		go func() {
			b, cl, err := c.doOnce(rctx, rep, path, body)
			results <- attemptOut{body: b, class: cl, err: err, hedged: hedged, elapsed: time.Since(start)}
		}()
	}
	launch(primary, false)

	var hedgeTimer <-chan time.Time
	if secondary != nil && !c.opts.DisableHedging {
		t := time.NewTimer(c.hedgeDelay())
		defer t.Stop()
		hedgeTimer = t.C
	}

	inflight := 1
	var firstFail *attemptOut
	for {
		select {
		case <-hedgeTimer:
			hedgeTimer = nil
			c.hedges.Add(1)
			launch(secondary, true)
			inflight++
		case out := <-results:
			inflight--
			if out.class == classOK {
				c.subq.Observe(out.elapsed.Nanoseconds())
				if out.hedged {
					c.hedgeWins.Add(1)
				}
				return out.body, classOK, nil
			}
			if firstFail == nil {
				firstFail = &out
			}
			// A shed verdict beats a transient one for the outer loop
			// (it skips the backoff sleep), and a permanent verdict
			// beats everything (retrying cannot help).
			if out.class == classPermanent {
				return nil, classPermanent, out.err
			}
			if out.class == classShed {
				firstFail = &out
			}
			if inflight > 0 {
				continue // the race partner may still succeed
			}
			return nil, firstFail.class, firstFail.err
		}
	}
}

// replicaOrder returns the shard's replicas in attempt order: healthy
// first, then suspect, then down (a down replica is a hint, not a
// verdict — when everything else failed it is still worth one try),
// manifest order within each state. Rejected replicas (identity
// mismatch) are excluded entirely.
func (c *Coordinator) replicaOrder(ordinal int) []*replica {
	reps := c.shards[ordinal]
	out := make([]*replica, 0, len(reps))
	for wantState := stateHealthy; wantState <= stateDown; wantState++ {
		for _, r := range reps {
			if !r.isRejected() && r.getState() == wantState {
				out = append(out, r)
			}
		}
	}
	return out
}

// queryShard answers one sub-query against one shard: walk the replica
// order with retries, immediate failover on shed, capped exponential
// backoff with jitter on transient failures, and hedging inside each
// attempt. Returns the raw JSON reply of the first success.
func (c *Coordinator) queryShard(ctx context.Context, ordinal int, path string, body []byte) ([]byte, error) {
	order := c.replicaOrder(ordinal)
	if len(order) == 0 {
		c.unavailable.Add(1)
		return nil, &ShardError{Ordinal: ordinal, Err: errors.New("no usable replicas (all rejected)")}
	}
	backoff := c.opts.BackoffBase
	var lastErr error
	for attempt := 0; attempt < c.opts.MaxAttempts; attempt++ {
		if attempt > 0 {
			c.retries.Add(1)
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		rep := order[attempt%len(order)]
		var next *replica
		if len(order) > 1 {
			next = order[(attempt+1)%len(order)]
		}
		reply, cl, err := c.raceOnce(ctx, rep, next, path, body)
		switch cl {
		case classOK:
			if rep != order[0] {
				c.failovers.Add(1)
			}
			return reply, nil
		case classPermanent:
			return nil, err
		case classShed:
			lastErr = err
			// No sleep: the replica shed us on purpose; try the next one
			// right away.
		case classTransient:
			lastErr = err
			if attempt == c.opts.MaxAttempts-1 {
				break // no point sleeping before giving up
			}
			// Capped exponential backoff with ±50% jitter, cut short by
			// cancellation.
			jittered := backoff/2 + time.Duration(rand.Int63n(int64(backoff)))
			select {
			case <-time.After(jittered):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			backoff = min(backoff*2, c.opts.BackoffMax)
		}
	}
	c.unavailable.Add(1)
	return nil, &ShardError{Ordinal: ordinal, Err: lastErr}
}

// scatter fans body out to every shard concurrently. It returns the
// per-shard raw replies, the ordinals that failed after exhausting
// their replicas, and the first permanent error if any shard reported
// one (a permanent error poisons the whole request — the request
// itself is wrong, and serving a "partial" around it would mask a 400
// as a degraded 200).
func (c *Coordinator) scatter(ctx context.Context, path string, body []byte) (replies [][]byte, failed []int, permErr error) {
	n := len(c.shards)
	replies = make([][]byte, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(ordinal int) {
			defer wg.Done()
			replies[ordinal], errs[ordinal] = c.queryShard(ctx, ordinal, path, body)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			continue
		}
		var pe *permanentError
		if errors.As(err, &pe) && permErr == nil {
			permErr = err
		}
		failed = append(failed, i)
	}
	return replies, failed, permErr
}

// Verify runs the startup identity check: every reachable replica must
// present a shard identity consistent with the manifest (UUID, ordinal,
// shard count, dimensionality). A mismatch is a hard error — a
// miswired endpoint would silently merge wrong-shard results.
// Unreachable replicas are logged and left to the health checker; at
// least one replica per shard must be reachable and verified.
func (c *Coordinator) Verify(ctx context.Context) error {
	var mu sync.Mutex
	var bad []string
	okPerShard := make([]int, len(c.shards))
	var wg sync.WaitGroup
	for _, reps := range c.shards {
		for _, rep := range reps {
			wg.Add(1)
			go func(rep *replica) {
				defer wg.Done()
				err := c.probe(ctx, rep)
				mu.Lock()
				defer mu.Unlock()
				switch {
				case err == nil:
					okPerShard[rep.ordinal]++
				case rep.isRejected():
					bad = append(bad, fmt.Sprintf("shard %d replica %s: %v", rep.ordinal, rep.url, err))
				default:
					c.opts.Logger.Warn("cluster: replica unreachable at startup",
						"shard", rep.ordinal, "url", rep.url, "err", err)
				}
			}(rep)
		}
	}
	wg.Wait()
	if len(bad) > 0 {
		return fmt.Errorf("cluster: miswired endpoints:\n  %s", strings.Join(bad, "\n  "))
	}
	for i, n := range okPerShard {
		if n == 0 {
			return fmt.Errorf("cluster: shard %d has no reachable verified replica", i)
		}
	}
	return nil
}
