package cluster_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	hdindex "github.com/hd-index/hdindex"
	"github.com/hd-index/hdindex/internal/cluster"
	"github.com/hd-index/hdindex/internal/data"
	"github.com/hd-index/hdindex/internal/server"
	"github.com/hd-index/hdindex/internal/shard"
)

// testCluster is a full N-node cluster over one sharded build, plus the
// in-process sharded server it must be indistinguishable from.
type testCluster struct {
	inproc *httptest.Server   // server over the whole sharded index
	nodes  []*httptest.Server // one server per shard directory
	coord  *cluster.Coordinator
	front  *httptest.Server // the coordinator's HTTP face
	man    *cluster.Manifest
	ds     *data.Dataset
}

const (
	eqShards = 4
	eqDim    = 16
)

// buildCluster builds a 4-shard index, serves the whole of it
// in-process, serves each shard directory from its own server, and
// fronts those with a verified coordinator.
func buildCluster(t *testing.T, copts cluster.Options) *testCluster {
	t.Helper()
	ds := data.Generate(data.Config{Name: "cluster", N: 801, Dim: eqDim, Clusters: 5, Lo: 0, Hi: 1, Seed: 11})
	root := filepath.Join(t.TempDir(), "ix")
	built, err := hdindex.Build(root, ds.Vectors, hdindex.Options{
		Tau: 4, Omega: 8, M: 4, Alpha: 256, Gamma: 64, Seed: 7, Shards: eqShards,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := built.Close(); err != nil {
		t.Fatal(err)
	}

	tc := &testCluster{ds: ds}
	openServer := func(dir string) *httptest.Server {
		idx, err := hdindex.Open(dir, hdindex.Options{})
		if err != nil {
			t.Fatalf("open %s: %v", dir, err)
		}
		t.Cleanup(func() { idx.Close() })
		id, err := shard.ReadIdentity(dir)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(server.New(idx, server.Config{Identity: id}).Handler())
		t.Cleanup(ts.Close)
		return ts
	}
	tc.inproc = openServer(root)

	tc.man = &cluster.Manifest{FormatVersion: cluster.ManifestFormatVersion, Dim: eqDim}
	for i := 0; i < eqShards; i++ {
		dir := filepath.Join(root, fmt.Sprintf("shard-%02d", i))
		id, err := shard.ReadIdentity(dir)
		if err != nil || id == nil {
			t.Fatalf("shard %d has no identity stamp: %v", i, err)
		}
		tc.man.UUID = id.ClusterUUID
		node := openServer(dir)
		tc.nodes = append(tc.nodes, node)
		tc.man.Shards = append(tc.man.Shards, cluster.ShardSpec{Ordinal: i, Replicas: []string{node.URL}})
	}

	coord, err := cluster.New(tc.man, copts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := coord.Verify(ctx); err != nil {
		t.Fatal(err)
	}
	tc.coord = coord
	tc.front = httptest.NewServer(coord.Handler())
	t.Cleanup(tc.front.Close)
	return tc
}

func post(t *testing.T, base, path string, body any) (int, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, payload
}

// TestClusterEquivalence pins the tentpole guarantee: the N-node
// cluster answers /search and /searchbatch byte-identically (ids,
// distances, and tie order) to the in-process N-shard index, across
// per-request cascade overrides.
func TestClusterEquivalence(t *testing.T) {
	tc := buildCluster(t, cluster.Options{HealthInterval: -1, DisableHedging: true})
	queries := tc.ds.PerturbedQueries(8, 0.01, 3)

	reqs := []map[string]any{
		{"k": 10},
		{"k": 1},
		{"k": 5, "alpha": 64},
		{"k": 10, "max_candidates": 64},
		{"k": 3, "gamma": 16},
		{"k": 5, "ptolemaic": false},
		{"k": 7, "stats": true},
	}
	for qi, q := range queries {
		for _, base := range reqs {
			req := map[string]any{"query": q}
			for k, v := range base {
				req[k] = v
			}
			label := fmt.Sprintf("query %d %v", qi, base)
			wantCode, wantBody := post(t, tc.inproc.URL, "/search", req)
			gotCode, gotBody := post(t, tc.front.URL, "/search", req)
			if wantCode != http.StatusOK || gotCode != http.StatusOK {
				t.Fatalf("%s: inproc %d, cluster %d: %s / %s", label, wantCode, gotCode, wantBody, gotBody)
			}
			var want, got struct {
				Results json.RawMessage `json:"results"`
			}
			if err := json.Unmarshal(wantBody, &want); err != nil {
				t.Fatal(err)
			}
			if err := json.Unmarshal(gotBody, &got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(want.Results, got.Results) {
				t.Fatalf("%s: results diverge\ninproc:  %s\ncluster: %s", label, want.Results, got.Results)
			}
		}
	}
}

// TestClusterEquivalenceBatch is the batch-endpoint leg of the
// guarantee: one scatter per shard carrying the whole batch, merged
// per query, still byte-identical.
func TestClusterEquivalenceBatch(t *testing.T) {
	tc := buildCluster(t, cluster.Options{HealthInterval: -1, DisableHedging: true})
	queries := tc.ds.PerturbedQueries(6, 0.01, 5)
	req := map[string]any{"queries": queries, "k": 10, "max_candidates": 80}

	wantCode, wantBody := post(t, tc.inproc.URL, "/searchbatch", req)
	gotCode, gotBody := post(t, tc.front.URL, "/searchbatch", req)
	if wantCode != http.StatusOK || gotCode != http.StatusOK {
		t.Fatalf("inproc %d, cluster %d: %s / %s", wantCode, gotCode, wantBody, gotBody)
	}
	var want, got struct {
		Results []json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal(wantBody, &want); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(gotBody, &got); err != nil {
		t.Fatal(err)
	}
	if len(want.Results) != len(queries) || len(got.Results) != len(queries) {
		t.Fatalf("result counts: inproc %d, cluster %d", len(want.Results), len(got.Results))
	}
	for i := range want.Results {
		if !bytes.Equal(want.Results[i], got.Results[i]) {
			t.Fatalf("query %d diverges\ninproc:  %s\ncluster: %s", i, want.Results[i], got.Results[i])
		}
	}
}

// TestClusterStatsAggregation checks that the cluster's work counters
// and cascade echo match the in-process sharded aggregation (wall-time
// fields excluded: they measure, not count).
func TestClusterStatsAggregation(t *testing.T) {
	tc := buildCluster(t, cluster.Options{HealthInterval: -1, DisableHedging: true})
	q := tc.ds.PerturbedQueries(1, 0.01, 7)[0]
	req := map[string]any{"query": q, "k": 10, "stats": true}

	type counters struct {
		Candidates      int  `json:"candidates"`
		TreeEntries     int  `json:"tree_entries"`
		ExactDistances  int  `json:"exact_distances"`
		MemtableScanned int  `json:"memtable_scanned"`
		Alpha           int  `json:"alpha"`
		Beta            int  `json:"beta"`
		Gamma           int  `json:"gamma"`
		Ptolemaic       bool `json:"ptolemaic"`
	}
	var want, got struct {
		Stats counters `json:"stats"`
	}
	_, wantBody := post(t, tc.inproc.URL, "/search", req)
	_, gotBody := post(t, tc.front.URL, "/search", req)
	if err := json.Unmarshal(wantBody, &want); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(gotBody, &got); err != nil {
		t.Fatal(err)
	}
	if want.Stats != got.Stats {
		t.Fatalf("stats diverge:\ninproc:  %+v\ncluster: %+v", want.Stats, got.Stats)
	}
	if want.Stats.Candidates == 0 {
		t.Fatal("stats not populated")
	}
}

// TestVerifyRejectsMiswiring pins the startup identity check: swapped
// endpoints, a foreign build, and an unstamped standalone index must
// all refuse to start.
func TestVerifyRejectsMiswiring(t *testing.T) {
	tc := buildCluster(t, cluster.Options{HealthInterval: -1})

	newCoord := func(man *cluster.Manifest) error {
		c, err := cluster.New(man, cluster.Options{HealthInterval: -1})
		if err != nil {
			return err
		}
		defer c.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		return c.Verify(ctx)
	}

	t.Run("swapped shards", func(t *testing.T) {
		man := *tc.man
		man.Shards = append([]cluster.ShardSpec(nil), tc.man.Shards...)
		man.Shards[0] = cluster.ShardSpec{Ordinal: 0, Replicas: tc.man.Shards[1].Replicas}
		man.Shards[1] = cluster.ShardSpec{Ordinal: 1, Replicas: tc.man.Shards[0].Replicas}
		if err := newCoord(&man); err == nil {
			t.Fatal("Verify accepted swapped shard endpoints")
		}
	})
	t.Run("foreign uuid", func(t *testing.T) {
		man := *tc.man
		man.UUID = "0123456789abcdef0123456789abcdef"
		if err := newCoord(&man); err == nil {
			t.Fatal("Verify accepted endpoints of a different build")
		}
	})
	t.Run("unstamped endpoint", func(t *testing.T) {
		// A standalone (unsharded) server presents no identity; with a
		// manifest UUID set it cannot be trusted to hold any shard.
		ds := data.Generate(data.Config{Name: "standalone", N: 64, Dim: eqDim, Clusters: 2, Lo: 0, Hi: 1, Seed: 3})
		dir := filepath.Join(t.TempDir(), "solo")
		idx, err := hdindex.Build(dir, ds.Vectors, hdindex.Options{Tau: 4, Omega: 8, M: 4, Alpha: 64, Gamma: 16, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		defer idx.Close()
		ts := httptest.NewServer(server.New(idx, server.Config{}).Handler())
		defer ts.Close()
		man := *tc.man
		man.Shards = append([]cluster.ShardSpec(nil), tc.man.Shards...)
		man.Shards[2] = cluster.ShardSpec{Ordinal: 2, Replicas: []string{ts.URL}}
		if err := newCoord(&man); err == nil {
			t.Fatal("Verify accepted an unstamped endpoint")
		}
	})
}
