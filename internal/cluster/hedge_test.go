package cluster_test

import (
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"github.com/hd-index/hdindex/internal/cluster"
	"github.com/hd-index/hdindex/internal/leakcheck"
	"github.com/hd-index/hdindex/internal/netfault"
)

// slowFastShard builds one shard with two replicas: the preferred one
// behind a netfault proxy injecting latency, the second direct and
// fast. Returns the manifest and the proxy knob.
func slowFastShard(t *testing.T) (*cluster.Manifest, *netfault.Proxy, func()) {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("POST /search", func(w http.ResponseWriter, r *http.Request) { answer(w, 0, 0.5) })
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"status":"ok","count":1,"dim":4}`))
	})
	node := httptest.NewServer(mux)
	proxy, err := netfault.Listen(strings.TrimPrefix(node.URL, "http://"))
	if err != nil {
		node.Close()
		t.Fatal(err)
	}
	man := stubManifest(4, []string{"http://" + proxy.Addr(), node.URL})
	return man, proxy, func() { proxy.Close(); node.Close() }
}

// runStorm runs n sequential searches and returns the sorted latencies.
func runStorm(t *testing.T, base string, n int) []time.Duration {
	t.Helper()
	lats := make([]time.Duration, 0, n)
	for i := 0; i < n; i++ {
		start := time.Now()
		code, body := searchOnce(t, base, map[string]any{"k": 1})
		if code != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, code, body)
		}
		lats = append(lats, time.Since(start))
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	return lats
}

func p99(lats []time.Duration) time.Duration {
	return lats[(len(lats)*99)/100]
}

// TestHedgingCutsTailLatency is the acceptance bar for hedged requests:
// with the preferred replica behind an injected-latency link, hedging
// to the fast replica must cut p99 by at least 2×, the losing request
// must be cancelled without leaking its goroutine, and the win must be
// visible in the coordinator's counters.
func TestHedgingCutsTailLatency(t *testing.T) {
	defer leakcheck.Check(t)()

	man, proxy, closeAll := slowFastShard(t)
	defer closeAll()
	const injected = 120 * time.Millisecond
	proxy.SetRules(netfault.Rules{Latency: injected})

	const n = 15
	mkOpts := func(hedge bool) cluster.Options {
		return cluster.Options{
			HealthInterval: -1,
			DisableHedging: !hedge,
			HedgeDelay:     10 * time.Millisecond,
			// The slow link is latency, not failure: one attempt each.
			MaxAttempts:     1,
			SubQueryTimeout: 5 * time.Second,
		}
	}

	// Baseline: hedging off, every request rides the slow link.
	coordOff, err := cluster.New(man, mkOpts(false))
	if err != nil {
		t.Fatal(err)
	}
	frontOff := httptest.NewServer(coordOff.Handler())
	slow := runStorm(t, frontOff.URL, n)
	frontOff.Close()
	coordOff.Close()

	// Hedged: the same storm, same slow primary, hedge after 10ms.
	coordOn, err := cluster.New(man, mkOpts(true))
	if err != nil {
		t.Fatal(err)
	}
	frontOn := httptest.NewServer(coordOn.Handler())
	fast := runStorm(t, frontOn.URL, n)
	st := coordOn.Stats()
	frontOn.Close()
	coordOn.Close()

	slowP99, fastP99 := p99(slow), p99(fast)
	t.Logf("p99 unhedged %v, hedged %v; hedges fired %d, won %d",
		slowP99, fastP99, st.HedgesFired, st.HedgeWins)
	if slowP99 < injected {
		t.Fatalf("baseline p99 %v below the injected %v — fault injection not effective", slowP99, injected)
	}
	if fastP99*2 > slowP99 {
		t.Fatalf("hedging cut p99 from %v to %v, want >= 2x", slowP99, fastP99)
	}
	if st.HedgesFired == 0 || st.HedgeWins == 0 {
		t.Fatalf("hedges fired %d, won %d, want both > 0", st.HedgesFired, st.HedgeWins)
	}
}

// TestAdaptiveHedgeDelay checks the windowed-p99 trigger: cold it sits
// at the conservative maximum, and after real traffic it tracks the
// observed sub-query latency down to the clamp floor.
func TestAdaptiveHedgeDelay(t *testing.T) {
	node := stubNode(t, func(w http.ResponseWriter, r *http.Request) { answer(w, 0, 0.5) })
	opts := cluster.Options{HealthInterval: -1} // hedging on, adaptive delay
	coord, front := newCoordinator(t, stubManifest(4, []string{node.URL, node.URL}), opts)

	cold := coord.Stats().HedgeDelayUS
	if want := float64((200 * time.Millisecond).Microseconds()); cold != want {
		t.Fatalf("cold hedge delay %vus, want the %vus ceiling", cold, want)
	}
	for i := 0; i < 40; i++ {
		if code, body := searchOnce(t, front.URL, map[string]any{"k": 1}); code != http.StatusOK {
			t.Fatalf("status %d: %s", code, body)
		}
	}
	// The cached p99 refreshes on a 250ms TTL; wait it out.
	time.Sleep(300 * time.Millisecond)
	warm := coord.Stats().HedgeDelayUS
	if warm >= cold {
		t.Fatalf("hedge delay did not adapt: cold %vus, warm %vus", cold, warm)
	}
	if ceiling := float64((200 * time.Millisecond).Microseconds()); warm >= ceiling/2 {
		t.Fatalf("warm hedge delay %vus, want well under the %vus ceiling after fast traffic", warm, ceiling)
	}
}
