package admission

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestNilControllerAdmitsEverything(t *testing.T) {
	var c *Controller
	release, err := c.Acquire(context.Background(), "anyone", 99)
	if err != nil {
		t.Fatalf("nil controller shed: %v", err)
	}
	release()
	c.Observe(time.Millisecond)
	if c.ShouldDegrade() || c.Overloaded() || c.Pressure() != 0 {
		t.Fatal("nil controller must report quiet state")
	}
}

func TestNewDisabledConfig(t *testing.T) {
	if c := New(Config{}); c != nil {
		t.Fatal("all-zero config should build a nil controller")
	}
}

func TestLimiterCapsInflight(t *testing.T) {
	c := New(Config{MaxInflight: 4, MaxQueue: 64})
	ctx := context.Background()

	var inflight, maxSeen atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			release, err := c.Acquire(ctx, "", 1)
			if err != nil {
				t.Errorf("Acquire: %v", err)
				return
			}
			cur := inflight.Add(1)
			for {
				m := maxSeen.Load()
				if cur <= m || maxSeen.CompareAndSwap(m, cur) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			inflight.Add(-1)
			release()
		}()
	}
	wg.Wait()
	if m := maxSeen.Load(); m > 4 {
		t.Fatalf("saw %d concurrent holders, cap is 4", m)
	}
	if got := c.Stats().Accepted; got != 64 {
		t.Fatalf("accepted %d, want 64", got)
	}
}

func TestWeightedAcquire(t *testing.T) {
	c := New(Config{MaxInflight: 4})
	ctx := context.Background()

	r1, err := c.Acquire(ctx, "", 3)
	if err != nil {
		t.Fatalf("weight-3: %v", err)
	}
	// Weight 2 does not fit next to 3; it must queue until r1 releases.
	done := make(chan struct{})
	go func() {
		r2, err := c.Acquire(ctx, "", 2)
		if err != nil {
			t.Errorf("weight-2: %v", err)
		} else {
			r2()
		}
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("weight-2 acquire should have queued behind weight-3")
	case <-time.After(20 * time.Millisecond):
	}
	r1()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("queued waiter never granted after release")
	}
}

func TestOversizedWeightClampsToCapacity(t *testing.T) {
	c := New(Config{MaxInflight: 4})
	release, err := c.Acquire(context.Background(), "", 1000)
	if err != nil {
		t.Fatalf("oversized weight must clamp and admit: %v", err)
	}
	release()
}

func TestQueueFullSheds(t *testing.T) {
	c := New(Config{MaxInflight: 1, MaxQueue: 1})
	ctx := context.Background()
	r1, err := c.Acquire(ctx, "", 1)
	if err != nil {
		t.Fatalf("first: %v", err)
	}
	defer r1()

	queued := make(chan struct{})
	go func() {
		close(queued)
		r, err := c.Acquire(ctx, "", 1) // fills the queue
		if err == nil {
			defer r()
		}
	}()
	<-queued
	// Wait until the goroutine is actually in the queue.
	deadline := time.Now().Add(time.Second)
	for c.Stats().Queued == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}

	start := time.Now()
	_, err = c.Acquire(ctx, "", 1)
	shedIn := time.Since(start)
	var ae *Error
	if !errors.As(err, &ae) || ae.Code != CodeOverloaded {
		t.Fatalf("got %v, want overloaded shed", err)
	}
	if ae.RetryAfter <= 0 {
		t.Fatalf("shed must carry a RetryAfter hint, got %v", ae.RetryAfter)
	}
	if shedIn > 50*time.Millisecond {
		t.Fatalf("shed took %v, must be immediate (< 50ms)", shedIn)
	}
	if s := c.Stats(); s.ShedOverload != 1 {
		t.Fatalf("shed_overload = %d, want 1", s.ShedOverload)
	}
}

func TestDeadlineAwareShed(t *testing.T) {
	c := New(Config{MaxInflight: 1, MaxQueue: 100})
	// Teach the estimator that requests take ~100ms.
	for i := 0; i < 100; i++ {
		c.Observe(100 * time.Millisecond)
	}
	ctx := context.Background()
	r1, err := c.Acquire(ctx, "", 1)
	if err != nil {
		t.Fatalf("first: %v", err)
	}
	defer r1()

	// 1ms of remaining budget cannot cover an estimated ~200ms queue
	// wait (two requests ahead at p99 ≈ 100ms): shed immediately.
	dctx, cancel := context.WithTimeout(ctx, time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = c.Acquire(dctx, "", 1)
	var ae *Error
	if !errors.As(err, &ae) || ae.Code != CodeOverloaded {
		t.Fatalf("got %v, want overloaded shed", err)
	}
	if d := time.Since(start); d > 50*time.Millisecond {
		t.Fatalf("deadline shed took %v, must not wait in queue", d)
	}
	if s := c.Stats(); s.ShedDeadline != 1 {
		t.Fatalf("shed_deadline = %d, want 1", s.ShedDeadline)
	}

	// A generous deadline queues instead of shedding.
	gctx, gcancel := context.WithTimeout(ctx, 5*time.Second)
	defer gcancel()
	done := make(chan error, 1)
	go func() {
		r, err := c.Acquire(gctx, "", 1)
		if err == nil {
			r()
		}
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("generous deadline should queue, got immediate %v", err)
	case <-time.After(10 * time.Millisecond):
	}
	r1()
	if err := <-done; err != nil {
		t.Fatalf("queued request failed: %v", err)
	}
}

func TestCancelledWaiterLeavesQueue(t *testing.T) {
	c := New(Config{MaxInflight: 1})
	ctx := context.Background()
	r1, err := c.Acquire(ctx, "", 1)
	if err != nil {
		t.Fatalf("first: %v", err)
	}

	cctx, cancel := context.WithCancel(ctx)
	errc := make(chan error, 1)
	go func() {
		_, err := c.Acquire(cctx, "", 1)
		errc <- err
	}()
	deadline := time.Now().Add(time.Second)
	for c.Stats().Queued == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	err = <-errc
	var ae *Error
	if !errors.As(err, &ae) || ae.Code != CodeOverloaded {
		t.Fatalf("cancelled waiter: got %v, want overloaded shed", err)
	}
	if s := c.Stats(); s.Queued != 0 {
		t.Fatalf("queued = %d after cancellation, want 0", s.Queued)
	}
	r1()
	// Capacity must be intact: next acquire succeeds instantly.
	r2, err := c.Acquire(ctx, "", 1)
	if err != nil {
		t.Fatalf("post-cancel acquire: %v", err)
	}
	r2()
}

func TestTenantThrottling(t *testing.T) {
	c := New(Config{TenantRPS: 5, TenantBurst: 2})
	ctx := context.Background()

	for i := 0; i < 2; i++ { // burst passes
		release, err := c.Acquire(ctx, "mallory", 1)
		if err != nil {
			t.Fatalf("burst req %d: %v", i, err)
		}
		release()
	}
	_, err := c.Acquire(ctx, "mallory", 1)
	var ae *Error
	if !errors.As(err, &ae) || ae.Code != CodeTenantThrottled {
		t.Fatalf("got %v, want tenant_throttled", err)
	}
	if ae.RetryAfter <= 0 {
		t.Fatalf("throttle must carry RetryAfter, got %v", ae.RetryAfter)
	}

	// Other tenants are unaffected.
	release, err := c.Acquire(ctx, "alice", 1)
	if err != nil {
		t.Fatalf("alice throttled by mallory's bucket: %v", err)
	}
	release()
	if s := c.Stats(); s.ShedTenant != 1 {
		t.Fatalf("shed_tenant = %d, want 1", s.ShedTenant)
	}
}

func TestTenantBucketRefills(t *testing.T) {
	c := New(Config{TenantRPS: 1000, TenantBurst: 1})
	ctx := context.Background()
	if _, err := c.Acquire(ctx, "t", 1); err != nil {
		t.Fatalf("first: %v", err)
	}
	deadline := time.Now().Add(time.Second)
	for {
		if _, err := c.Acquire(ctx, "t", 1); err == nil {
			return // refilled
		}
		if time.Now().After(deadline) {
			t.Fatal("bucket never refilled at 1000 rps")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestPressureAndDegrade(t *testing.T) {
	c := New(Config{MaxInflight: 1, MaxQueue: 100, DegradePressure: 0.05})
	for i := 0; i < 100; i++ {
		c.Observe(100 * time.Millisecond) // p99 ≈ 100ms
	}
	if c.ShouldDegrade() {
		t.Fatal("empty queue must not degrade")
	}

	ctx := context.Background()
	r1, _ := c.Acquire(ctx, "", 1)
	var wg sync.WaitGroup
	for i := 0; i < 5; i++ { // 5 queued × 100ms = 0.5s of pressure > 0.05
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := c.Acquire(ctx, "", 1)
			if err == nil {
				r()
			}
		}()
	}
	deadline := time.Now().Add(time.Second)
	for c.Stats().Queued < 5 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d waiters queued", c.Stats().Queued)
		}
		time.Sleep(time.Millisecond)
	}
	if p := c.Pressure(); p < 0.05 {
		t.Fatalf("pressure = %v with 5×100ms queued, want >= 0.05", p)
	}
	if !c.ShouldDegrade() {
		t.Fatal("pressure above threshold must degrade")
	}
	r1()
	wg.Wait()
}

// TestDegradeHold: pressure seen at enqueue time (here: a deadline
// shed that found a saturated limiter) arms ShouldDegrade for
// degradeHold, even though the instantaneous queue is empty again by
// the time anyone samples it.
func TestDegradeHold(t *testing.T) {
	c := New(Config{MaxInflight: 1, MaxQueue: 4, DegradePressure: 0.05})
	now := time.Unix(1000, 0)
	c.now = func() time.Time { return now }
	for i := 0; i < 100; i++ {
		c.Observe(100 * time.Millisecond) // p99 ≈ 100ms → drain estimate 100ms > 50ms threshold
	}

	release, err := c.Acquire(context.Background(), "", 1)
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), now.Add(time.Millisecond))
	defer cancel()
	if _, err := c.Acquire(ctx, "", 1); err == nil {
		t.Fatal("1ms budget against a ~200ms queue wait must shed")
	}
	release()

	if !c.ShouldDegrade() {
		t.Fatal("a request shed under pressure must arm the degrade hold")
	}
	now = now.Add(degradeHold + time.Millisecond)
	if c.ShouldDegrade() {
		t.Fatal("the degrade hold must expire once pressure is gone")
	}
}

func TestStatsShape(t *testing.T) {
	c := New(Config{MaxInflight: 8, TenantRPS: 100, DegradePressure: 1})
	release, err := c.Acquire(context.Background(), "t", 2)
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	s := c.Stats()
	if s.Inflight != 2 || s.MaxInflight != 8 || s.MaxQueue != 32 {
		t.Fatalf("stats = %+v", s)
	}
	release()
	if s := c.Stats(); s.Inflight != 0 {
		t.Fatalf("inflight = %d after release", s.Inflight)
	}
}

func TestTenantPolicyBudgets(t *testing.T) {
	c := New(Config{
		TenantRPS:   100,
		TenantBurst: 10,
		TenantPolicy: func(tenant string) TenantBudget {
			switch tenant {
			case "batch":
				return TenantBudget{RPS: 5, Burst: 1}
			case "premium":
				return TenantBudget{RPS: 1000, Burst: 100}
			}
			return TenantBudget{} // inherit base
		},
	})
	ctx := context.Background()

	// batch burns its burst of 1 instantly; the base burst of 10 must
	// not apply.
	if _, err := c.Acquire(ctx, "batch", 1); err != nil {
		t.Fatalf("batch first: %v", err)
	}
	_, err := c.Acquire(ctx, "batch", 1)
	var ae *Error
	if !errors.As(err, &ae) || ae.Code != CodeTenantThrottled {
		t.Fatalf("batch over budget got %v, want tenant_throttled", err)
	}

	// premium rides its 100-deep bucket far past the base burst.
	for i := 0; i < 50; i++ {
		release, err := c.Acquire(ctx, "premium", 1)
		if err != nil {
			t.Fatalf("premium req %d: %v", i, err)
		}
		release()
	}

	// unlisted tenants inherit the base burst of 10.
	for i := 0; i < 10; i++ {
		if _, err := c.Acquire(ctx, "anon", 1); err != nil {
			t.Fatalf("anon burst req %d: %v", i, err)
		}
	}
	if _, err := c.Acquire(ctx, "anon", 1); !errors.As(err, &ae) || ae.Code != CodeTenantThrottled {
		t.Fatalf("anon over base burst got %v", err)
	}
}

func TestTenantInflightCap(t *testing.T) {
	c := New(Config{
		MaxInflight: 10,
		TenantPolicy: func(tenant string) TenantBudget {
			if tenant == "capped" {
				return TenantBudget{MaxInflight: 2}
			}
			return TenantBudget{}
		},
	})
	ctx := context.Background()

	r1, err := c.Acquire(ctx, "capped", 1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Acquire(ctx, "capped", 1)
	if err != nil {
		t.Fatal(err)
	}
	// Third concurrent request exceeds the tenant cap — shed instantly
	// even though the shared limiter has room.
	_, err = c.Acquire(ctx, "capped", 1)
	var ae *Error
	if !errors.As(err, &ae) || ae.Code != CodeTenantThrottled {
		t.Fatalf("over cap got %v, want tenant_throttled", err)
	}
	// Other tenants still fit.
	r3, err := c.Acquire(ctx, "free", 1)
	if err != nil {
		t.Fatalf("free tenant blocked: %v", err)
	}
	r3()
	// Released capacity comes back.
	r1()
	r4, err := c.Acquire(ctx, "capped", 1)
	if err != nil {
		t.Fatalf("after release: %v", err)
	}
	r4()
	r2()

	s := c.Stats()
	var capped *TenantStats
	for i := range s.Tenants {
		if s.Tenants[i].Tenant == "capped" {
			capped = &s.Tenants[i]
		}
	}
	if capped == nil {
		t.Fatalf("no capped row in %+v", s.Tenants)
	}
	if capped.Accepted != 3 || capped.ShedTenant != 1 || capped.Load != 0 || capped.MaxInflight != 2 {
		t.Fatalf("capped row %+v", *capped)
	}
}

func TestTenantStatsBoundedCardinality(t *testing.T) {
	c := New(Config{TenantRPS: 1000})
	ctx := context.Background()
	// "hot" accepted twice so it outranks the long tail.
	for i := 0; i < 2; i++ {
		release, err := c.Acquire(ctx, "hot", 1)
		if err != nil {
			t.Fatal(err)
		}
		release()
	}
	for i := 0; i < 20; i++ {
		release, err := c.Acquire(ctx, fmt.Sprintf("tenant-%02d", i), 1)
		if err != nil {
			t.Fatal(err)
		}
		release()
	}
	s := c.Stats()
	if len(s.Tenants) != tenantStatsTopN+1 {
		t.Fatalf("got %d tenant rows, want %d", len(s.Tenants), tenantStatsTopN+1)
	}
	if s.Tenants[0].Tenant != "hot" || s.Tenants[0].Accepted != 2 {
		t.Fatalf("top row %+v, want hot/2", s.Tenants[0])
	}
	last := s.Tenants[len(s.Tenants)-1]
	if last.Tenant != OtherTenant {
		t.Fatalf("last row %q, want %q", last.Tenant, OtherTenant)
	}
	var total uint64
	for _, r := range s.Tenants {
		total += r.Accepted
	}
	if total != 22 {
		t.Fatalf("rows account for %d accepted, want 22", total)
	}
}
