// Package admission is the server's overload-control layer: a weighted
// concurrency limiter with a deadline-aware FIFO queue, per-tenant
// token buckets, and a pressure signal that drives adaptive
// degradation.
//
// The design follows the classic admission-control split:
//
//   - A weighted semaphore caps in-flight work (a batch of q queries
//     weighs q, a single search weighs 1), so the downstream index sees
//     bounded concurrency no matter how many clients connect.
//   - Requests that do not fit wait in a bounded FIFO queue — but only
//     if their remaining deadline budget can plausibly cover the wait.
//     A request that would time out in the queue is shed immediately
//     (error code "overloaded", with a Retry-After hint) instead of
//     burning a queue slot to die in; that keeps shed latency in the
//     microseconds and the queue full of requests that will succeed.
//   - Per-tenant token buckets (header X-Tenant; missing header = the
//     shared "default" pool) bound each tenant's accepted request rate
//     so one abusive client cannot starve the pool (error code
//     "tenant_throttled").
//   - Pressure = queued work × the p99 of recent accepted-request
//     latency — an estimate, in seconds, of how long the queue tail
//     will take to drain. Above a configured threshold the server
//     switches unset per-query knobs to a cheaper cascade preset
//     (core's Degrade path). Pressure crossings are latched for a
//     short hold (requests queueing or shedding under pressure arm
//     it), so degradation covers the burst instead of flickering with
//     instantaneous queue depth.
//
// A nil *Controller is valid and admits everything — the layer
// disappears when unconfigured.
package admission

import (
	"context"
	"fmt"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hd-index/hdindex/internal/telemetry"
)

// Error codes carried to clients in the structured error body.
const (
	CodeOverloaded      = "overloaded"       // queue full / deadline cannot cover queue wait → 503
	CodeTenantThrottled = "tenant_throttled" // per-tenant rate exceeded → 429
)

// Error is a shed/throttle decision. RetryAfter is the controller's
// estimate of when retrying could succeed (clients see it as a
// Retry-After header, rounded up to whole seconds).
type Error struct {
	Code       string
	RetryAfter time.Duration
	reason     string
}

func (e *Error) Error() string {
	return fmt.Sprintf("admission: %s: %s", e.Code, e.reason)
}

// Config tunes the controller. Zero fields disable their mechanism:
// MaxInflight <= 0 disables concurrency limiting and queueing,
// TenantRPS <= 0 disables per-tenant buckets, DegradePressure <= 0
// disables adaptive degradation.
type Config struct {
	// MaxInflight caps the total weight of concurrently admitted work.
	MaxInflight int
	// MaxQueue caps the total weight waiting for admission. Default:
	// 4 × MaxInflight.
	MaxQueue int
	// TenantRPS is each tenant's sustained accepted-request rate.
	TenantRPS float64
	// TenantBurst is the bucket depth. Default: max(2 × TenantRPS, 1).
	TenantBurst float64
	// DegradePressure is the pressure (seconds of estimated queue
	// drain time) above which ShouldDegrade turns on. Crossings latch
	// for degradeHold so degradation covers the burst.
	DegradePressure float64
	// TenantPolicy, when set, resolves a tenant to its own admission
	// budget (the serving layer derives it from the tier config: base
	// knobs × tier shares). Zero fields of the returned budget inherit
	// the base TenantRPS/TenantBurst; it is consulted once per tenant,
	// on first sight.
	TenantPolicy func(tenant string) TenantBudget
}

// TenantBudget is one tenant's admission budget. Zero fields inherit
// the controller's base knobs.
type TenantBudget struct {
	// RPS is the tenant's sustained accepted-request rate.
	RPS float64
	// Burst is the tenant's bucket depth.
	Burst float64
	// MaxInflight caps the tenant's in-flight plus queued weight; a
	// request that would exceed it is shed instantly with
	// "tenant_throttled" (0 = uncapped). This is the tier isolation
	// lever: a batch tier at a small cap cannot fill the shared queue.
	MaxInflight int
}

// Stats is a point-in-time view of the controller for /stats, /metrics
// and /healthz.
type Stats struct {
	Accepted     uint64  `json:"accepted"`
	ShedOverload uint64  `json:"shed_overload"`
	ShedTenant   uint64  `json:"shed_tenant"`
	ShedDeadline uint64  `json:"shed_deadline"` // subset of sheds caused by insufficient deadline budget
	Inflight     int     `json:"inflight"`
	Queued       int     `json:"queued"`
	MaxInflight  int     `json:"max_inflight"`
	MaxQueue     int     `json:"max_queue"`
	Pressure     float64 `json:"pressure"`
	P99Millis    float64 `json:"p99_ms"`
	Degraded     bool    `json:"degraded"`
	// Tenants breaks admission out per tenant: the top
	// tenantStatsTopN by accepted count, with everything else
	// aggregated into one "other" row so the block (and the /metrics
	// labels derived from it) stays bounded however many tenant ids
	// clients invent.
	Tenants []TenantStats `json:"tenants,omitempty"`
}

// TenantStats is one tenant's row of the admission stats.
type TenantStats struct {
	Tenant       string  `json:"tenant"`
	Accepted     uint64  `json:"accepted"`
	ShedOverload uint64  `json:"shed_overload"`
	ShedTenant   uint64  `json:"shed_tenant"`
	Load         int     `json:"load"` // in-flight + queued weight
	MaxInflight  int     `json:"max_inflight,omitempty"`
	RPS          float64 `json:"rps,omitempty"`
}

// tenantStatsTopN bounds the per-tenant stats cardinality.
const tenantStatsTopN = 8

// OtherTenant is the aggregate row name for tenants beyond the top N.
const OtherTenant = "other"

type waiter struct {
	weight int
	ready  chan struct{}
}

// tenantState is everything the controller tracks per tenant: the
// token bucket (with per-tenant rate/burst when a TenantPolicy set
// them), the in-flight+queued load against the tenant's cap, and the
// per-tenant outcome counters behind Stats.Tenants.
type tenantState struct {
	rps     float64
	burst   float64
	maxLoad int // 0 = uncapped

	mu     sync.Mutex
	tokens float64
	last   time.Time

	load         atomic.Int64
	accepted     atomic.Uint64
	shedOverload atomic.Uint64
	shedTenant   atomic.Uint64
}

// addLoad reserves weight against the tenant's load cap; false means
// the cap is hit and the request must be shed.
func (ts *tenantState) addLoad(weight int) bool {
	for {
		cur := ts.load.Load()
		if ts.maxLoad > 0 && cur+int64(weight) > int64(ts.maxLoad) {
			return false
		}
		if ts.load.CompareAndSwap(cur, cur+int64(weight)) {
			return true
		}
	}
}

func (ts *tenantState) subLoad(weight int) {
	if ts != nil {
		ts.load.Add(int64(-weight))
	}
}

// Controller implements admission control. Construct with New; a nil
// Controller admits everything.
type Controller struct {
	cfg      Config
	maxQueue int
	now      func() time.Time // test seam

	mu       sync.Mutex
	inflight int
	queued   int
	waiters  []*waiter

	tmu     sync.Mutex
	tenants map[string]*tenantState

	// Accepted-request latency feed (Observe) and the cached windowed
	// p99 derived from it.
	hist    telemetry.Histogram
	pmu     sync.Mutex
	winSnap telemetry.Snapshot
	winAt   time.Time
	lastP99 atomic.Uint64 // nanoseconds
	p99At   atomic.Int64  // unixnano of last recompute

	accepted     atomic.Uint64
	shedOverload atomic.Uint64
	shedTenant   atomic.Uint64
	shedDeadline atomic.Uint64

	// degradeUntil (unixnano) holds ShouldDegrade on after pressure was
	// seen at enqueue time: sustained overload is visible when requests
	// queue or shed, not at the random instants callers sample, and the
	// hold keeps degradation from flapping between those instants.
	degradeUntil atomic.Int64
}

const (
	// p99CacheTTL bounds how often the pressure path pays for a
	// histogram snapshot; between recomputes Acquire reads one atomic.
	p99CacheTTL = 250 * time.Millisecond
	// p99Window is how far back the latency window reaches. Long
	// enough to smooth bursts, short enough that recovery from an
	// incident is visible within seconds.
	p99Window = 10 * time.Second
	// degradeHold is how long ShouldDegrade stays on after a request
	// queued (or shed) under pressure — hysteresis so degradation covers
	// the burst instead of flickering with instantaneous queue depth.
	degradeHold = time.Second
)

// New builds a Controller. Returns nil (admit-everything) when the
// config enables no mechanism.
func New(cfg Config) *Controller {
	if cfg.MaxInflight <= 0 && cfg.TenantRPS <= 0 && cfg.TenantPolicy == nil {
		return nil
	}
	c := &Controller{cfg: cfg, now: time.Now}
	if cfg.MaxInflight > 0 {
		c.maxQueue = cfg.MaxQueue
		if c.maxQueue <= 0 {
			c.maxQueue = 4 * cfg.MaxInflight
		}
	}
	if cfg.TenantRPS > 0 && c.cfg.TenantBurst <= 0 {
		c.cfg.TenantBurst = max(2*cfg.TenantRPS, 1)
	}
	if cfg.TenantRPS > 0 || cfg.TenantPolicy != nil {
		c.tenants = make(map[string]*tenantState)
	}
	return c
}

// tenantFor returns (creating on first sight) the tenant's state; nil
// when no per-tenant mechanism is configured.
func (c *Controller) tenantFor(tenant string) *tenantState {
	if c.tenants == nil {
		return nil
	}
	c.tmu.Lock()
	defer c.tmu.Unlock()
	ts := c.tenants[tenant]
	if ts == nil {
		ts = &tenantState{rps: c.cfg.TenantRPS, burst: c.cfg.TenantBurst, last: c.now()}
		if c.cfg.TenantPolicy != nil {
			b := c.cfg.TenantPolicy(tenant)
			if b.RPS > 0 {
				ts.rps = b.RPS
			}
			if b.Burst > 0 {
				ts.burst = b.Burst
			}
			if b.MaxInflight > 0 {
				ts.maxLoad = b.MaxInflight
			}
		}
		if ts.rps > 0 && ts.burst <= 0 {
			ts.burst = max(2*ts.rps, 1)
		}
		ts.tokens = ts.burst
		c.tenants[tenant] = ts
	}
	return ts
}

// Acquire admits weight units of work for tenant, blocking in the
// admission queue when the limiter is saturated. On success the
// returned release function MUST be called exactly once when the work
// finishes. On shed it returns a *Error (code "overloaded" or
// "tenant_throttled"); shed decisions are made without blocking.
func (c *Controller) Acquire(ctx context.Context, tenant string, weight int) (release func(), err error) {
	if c == nil {
		return func() {}, nil
	}
	if weight < 1 {
		weight = 1
	}
	ts := c.tenantFor(tenant)

	if ts != nil && ts.rps > 0 {
		if wait, ok := c.takeToken(ts); !ok {
			c.shedTenant.Add(1)
			ts.shedTenant.Add(1)
			return nil, &Error{
				Code:       CodeTenantThrottled,
				RetryAfter: wait,
				reason:     fmt.Sprintf("tenant %q over %.3g req/s", tenant, ts.rps),
			}
		}
	}
	// A request heavier than the whole limiter (a huge batch) must
	// still be admittable: clamp its weight to the capacity so it can
	// run — alone — rather than queueing forever.
	if c.cfg.MaxInflight > 0 && weight > c.cfg.MaxInflight {
		weight = c.cfg.MaxInflight
	}
	// The tier load cap: a tenant already at its in-flight+queued
	// budget sheds instantly instead of eating shared queue slots.
	if ts != nil && !ts.addLoad(weight) {
		c.shedTenant.Add(1)
		ts.shedTenant.Add(1)
		return nil, &Error{
			Code:       CodeTenantThrottled,
			RetryAfter: c.estimateWait(weight),
			reason:     fmt.Sprintf("tenant %q over in-flight cap %d", tenant, ts.maxLoad),
		}
	}

	if c.cfg.MaxInflight <= 0 {
		c.accepted.Add(1)
		if ts != nil {
			ts.accepted.Add(1)
		}
		return func() { ts.subLoad(weight) }, nil
	}

	c.mu.Lock()
	if len(c.waiters) == 0 && c.inflight+weight <= c.cfg.MaxInflight {
		c.inflight += weight
		c.mu.Unlock()
		c.accepted.Add(1)
		if ts != nil {
			ts.accepted.Add(1)
		}
		return func() { c.release(weight); ts.subLoad(weight) }, nil
	}

	// Must queue. Shed instead if the queue is full, or if the
	// request's remaining deadline budget cannot cover the estimated
	// queue wait — it would only time out in line.
	estWait := c.estimateWaitLocked(weight)
	// Pressure is visible here, at enqueue time: whether this request
	// ends up queued or shed, the queue it found is real. Arm the
	// degrade hold so ShouldDegrade reflects the burst rather than the
	// instantaneous queue depth its callers happen to sample.
	if c.cfg.DegradePressure > 0 {
		if drain := float64(c.queued+weight) / float64(c.cfg.MaxInflight) * c.p99NS() / 1e9; drain >= c.cfg.DegradePressure {
			c.armDegrade()
		}
	}
	if c.queued+weight > c.maxQueue {
		c.mu.Unlock()
		c.shedOverload.Add(1)
		if ts != nil {
			ts.shedOverload.Add(1)
		}
		ts.subLoad(weight)
		return nil, &Error{
			Code:       CodeOverloaded,
			RetryAfter: max(estWait, 50*time.Millisecond),
			reason:     "admission queue full",
		}
	}
	if dl, ok := ctx.Deadline(); ok && estWait > 0 {
		if remaining := dl.Sub(c.now()); remaining < estWait {
			c.mu.Unlock()
			c.shedOverload.Add(1)
			c.shedDeadline.Add(1)
			if ts != nil {
				ts.shedOverload.Add(1)
			}
			ts.subLoad(weight)
			return nil, &Error{
				Code:       CodeOverloaded,
				RetryAfter: estWait,
				reason:     fmt.Sprintf("deadline budget %v < estimated queue wait %v", remaining.Round(time.Millisecond), estWait.Round(time.Millisecond)),
			}
		}
	}

	w := &waiter{weight: weight, ready: make(chan struct{})}
	c.waiters = append(c.waiters, w)
	c.queued += weight
	c.mu.Unlock()

	select {
	case <-w.ready:
		c.accepted.Add(1)
		if ts != nil {
			ts.accepted.Add(1)
		}
		return func() { c.release(weight); ts.subLoad(weight) }, nil
	case <-ctx.Done():
		c.mu.Lock()
		select {
		case <-w.ready:
			// Granted concurrently with cancellation: hand the
			// capacity straight back.
			c.inflight -= weight
			c.grantLocked()
			c.mu.Unlock()
		default:
			if i := slices.Index(c.waiters, w); i >= 0 {
				c.waiters = slices.Delete(c.waiters, i, i+1)
			}
			c.queued -= weight
			c.mu.Unlock()
		}
		c.shedOverload.Add(1)
		c.shedDeadline.Add(1)
		if ts != nil {
			ts.shedOverload.Add(1)
		}
		ts.subLoad(weight)
		return nil, &Error{
			Code:       CodeOverloaded,
			RetryAfter: c.estimateWait(weight),
			reason:     "deadline expired in admission queue",
		}
	}
}

func (c *Controller) release(weight int) {
	c.mu.Lock()
	c.inflight -= weight
	c.grantLocked()
	c.mu.Unlock()
}

// grantLocked admits queued waiters in FIFO order while they fit.
func (c *Controller) grantLocked() {
	for len(c.waiters) > 0 {
		w := c.waiters[0]
		if c.inflight+w.weight > c.cfg.MaxInflight {
			return
		}
		c.waiters = c.waiters[1:]
		c.queued -= w.weight
		c.inflight += w.weight
		close(w.ready)
	}
}

// estimateWaitLocked predicts the queue wait for a request of the
// given weight: the work ahead of it (everything in flight plus
// everything queued), expressed in p99-latency units of limiter
// capacity. With no latency data yet the estimate is zero — the
// deadline shed stays conservative until Observe has fed it.
func (c *Controller) estimateWaitLocked(weight int) time.Duration {
	ahead := c.inflight + c.queued + weight
	rounds := float64(ahead) / float64(c.cfg.MaxInflight)
	return time.Duration(rounds * c.p99NS())
}

func (c *Controller) estimateWait(weight int) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.estimateWaitLocked(weight)
}

// Observe feeds one accepted request's total latency into the pressure
// estimator. Call it for accepted requests only — shed requests would
// drag the p99 toward zero and mask the overload.
func (c *Controller) Observe(d time.Duration) {
	if c == nil {
		return
	}
	c.hist.ObserveDuration(d)
}

// p99NS returns the windowed p99 of accepted-request latency in
// nanoseconds, recomputed at most every p99CacheTTL.
func (c *Controller) p99NS() float64 {
	nowNS := c.now().UnixNano()
	if nowNS-c.p99At.Load() < int64(p99CacheTTL) {
		return float64(c.lastP99.Load())
	}
	c.pmu.Lock()
	defer c.pmu.Unlock()
	if nowNS-c.p99At.Load() < int64(p99CacheTTL) {
		return float64(c.lastP99.Load())
	}
	cur := c.hist.Snapshot()
	win := cur.Sub(c.winSnap)
	if win.Count == 0 {
		win = cur // quiet window: fall back to all-time
	}
	p := win.Quantile(0.99)
	if now := c.now(); c.winAt.IsZero() || now.Sub(c.winAt) >= p99Window {
		c.winSnap = cur
		c.winAt = now
	}
	c.lastP99.Store(uint64(p))
	c.p99At.Store(nowNS)
	return p
}

// Pressure is the queue-drain estimate in seconds: queued weight × the
// windowed p99, divided by limiter capacity. Zero when nothing queues.
func (c *Controller) Pressure() float64 {
	if c == nil || c.cfg.MaxInflight <= 0 {
		return 0
	}
	c.mu.Lock()
	queued := c.queued
	c.mu.Unlock()
	if queued == 0 {
		return 0
	}
	return float64(queued) / float64(c.cfg.MaxInflight) * c.p99NS() / 1e9
}

// armDegrade extends the degrade hold to degradeHold from now.
func (c *Controller) armDegrade() {
	until := c.now().Add(degradeHold).UnixNano()
	for {
		cur := c.degradeUntil.Load()
		if cur >= until || c.degradeUntil.CompareAndSwap(cur, until) {
			return
		}
	}
}

// ShouldDegrade reports whether the server should resolve unset
// per-query knobs to the cheap cascade preset right now: pressure is
// over the threshold, or was within the last degradeHold (requests
// queued or shed under pressure arm the hold — see Acquire).
func (c *Controller) ShouldDegrade() bool {
	if c == nil || c.cfg.DegradePressure <= 0 {
		return false
	}
	if c.now().UnixNano() < c.degradeUntil.Load() {
		return true
	}
	return c.Pressure() >= c.cfg.DegradePressure
}

// Overloaded reports sustained saturation (the /healthz "overloaded"
// state): the queue is at least 90% full, or pressure is at twice the
// degrade threshold.
func (c *Controller) Overloaded() bool {
	if c == nil {
		return false
	}
	if c.maxQueue > 0 {
		c.mu.Lock()
		queued := c.queued
		c.mu.Unlock()
		if queued*10 >= c.maxQueue*9 {
			return true
		}
	}
	if c.cfg.DegradePressure > 0 && c.Pressure() >= 2*c.cfg.DegradePressure {
		return true
	}
	return false
}

// Stats snapshots the controller.
func (c *Controller) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	inflight, queued := c.inflight, c.queued
	c.mu.Unlock()
	return Stats{
		Accepted:     c.accepted.Load(),
		ShedOverload: c.shedOverload.Load(),
		ShedTenant:   c.shedTenant.Load(),
		ShedDeadline: c.shedDeadline.Load(),
		Inflight:     inflight,
		Queued:       queued,
		MaxInflight:  c.cfg.MaxInflight,
		MaxQueue:     c.maxQueue,
		Pressure:     c.Pressure(),
		P99Millis:    c.p99NS() / 1e6,
		Degraded:     c.ShouldDegrade(),
		Tenants:      c.tenantStats(),
	}
}

// tenantStats snapshots the per-tenant rows: the top tenantStatsTopN
// by accepted count, everything else summed into one "other" row, so
// the cardinality of /stats (and the /metrics labels built from it)
// stays bounded no matter how many tenant ids clients send.
func (c *Controller) tenantStats() []TenantStats {
	if c.tenants == nil {
		return nil
	}
	c.tmu.Lock()
	rows := make([]TenantStats, 0, len(c.tenants))
	for name, ts := range c.tenants {
		rows = append(rows, TenantStats{
			Tenant:       name,
			Accepted:     ts.accepted.Load(),
			ShedOverload: ts.shedOverload.Load(),
			ShedTenant:   ts.shedTenant.Load(),
			Load:         int(ts.load.Load()),
			MaxInflight:  ts.maxLoad,
			RPS:          ts.rps,
		})
	}
	c.tmu.Unlock()
	slices.SortFunc(rows, func(a, b TenantStats) int {
		if a.Accepted != b.Accepted {
			if a.Accepted > b.Accepted {
				return -1
			}
			return 1
		}
		return strings.Compare(a.Tenant, b.Tenant)
	})
	if len(rows) <= tenantStatsTopN {
		return rows
	}
	top := rows[:tenantStatsTopN:tenantStatsTopN]
	other := TenantStats{Tenant: OtherTenant}
	for _, r := range rows[tenantStatsTopN:] {
		other.Accepted += r.Accepted
		other.ShedOverload += r.ShedOverload
		other.ShedTenant += r.ShedTenant
		other.Load += r.Load
	}
	return append(top, other)
}

// takeToken takes one token from the tenant's bucket, reporting the
// wait until a token would be available when it cannot.
func (c *Controller) takeToken(ts *tenantState) (wait time.Duration, ok bool) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	now := c.now()
	ts.tokens = min(ts.tokens+now.Sub(ts.last).Seconds()*ts.rps, ts.burst)
	ts.last = now
	if ts.tokens >= 1 {
		ts.tokens--
		return 0, true
	}
	return time.Duration((1 - ts.tokens) / ts.rps * float64(time.Second)), false
}
