package iofault

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

func openTemp(t *testing.T, name string) File {
	t.Helper()
	f, err := Open(filepath.Join(t.TempDir(), name), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func TestFaultPassthroughWhenDisarmed(t *testing.T) {
	ClearGlobal()
	f := openTemp(t, "plain.dat")
	if _, ok := f.(*os.File); !ok {
		t.Fatalf("disarmed Open returned %T, want *os.File passthrough", f)
	}
	if _, err := f.WriteAt([]byte("hello"), 0); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
}

func TestFaultErrorOnNthWrite(t *testing.T) {
	restore := SetGlobal(NewInjector(Rule{PathGlob: "nth.dat", Op: OpWrite, AfterCalls: 2}))
	defer restore()
	f := openTemp(t, "nth.dat")
	for i := 0; i < 2; i++ {
		if _, err := f.WriteAt([]byte("ok"), int64(2*i)); err != nil {
			t.Fatalf("write %d should pass: %v", i, err)
		}
	}
	if _, err := f.WriteAt([]byte("xx"), 4); !errors.Is(err, syscall.EIO) {
		t.Fatalf("third write: got %v, want EIO", err)
	}
}

func TestFaultENOSPCAfterBytes(t *testing.T) {
	restore := SetGlobal(NewInjector(Rule{PathGlob: "full.dat", Op: OpWrite, AfterBytes: 10}))
	defer restore()
	f := openTemp(t, "full.dat")
	if _, err := f.Write([]byte("12345678")); err != nil { // 8 bytes, under budget
		t.Fatalf("first write: %v", err)
	}
	n, err := f.Write([]byte("abcdef")) // crosses the 10-byte budget
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("got %v, want ENOSPC", err)
	}
	if n != 2 { // the 2 bytes that fit must land — disk-full writes are torn, not atomic
		t.Fatalf("short write landed %d bytes, want 2", n)
	}
	st, _ := f.Stat()
	if st.Size() != 10 {
		t.Fatalf("file size %d, want 10", st.Size())
	}
}

func TestFaultEIOOnRead(t *testing.T) {
	restore := SetGlobal(NewInjector(Rule{PathGlob: "r.dat", Op: OpRead}))
	defer restore()
	f := openTemp(t, "r.dat")
	if _, err := f.WriteAt([]byte("data"), 0); err != nil {
		t.Fatalf("write: %v", err)
	}
	buf := make([]byte, 4)
	if _, err := f.ReadAt(buf, 0); !errors.Is(err, syscall.EIO) {
		t.Fatalf("read: got %v, want EIO", err)
	}
}

func TestFaultSyncError(t *testing.T) {
	restore := SetGlobal(NewInjector(Rule{PathGlob: "s.dat", Op: OpSync, Once: true}))
	defer restore()
	f := openTemp(t, "s.dat")
	if err := f.Sync(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("sync: got %v, want EIO", err)
	}
	if err := f.Sync(); err != nil { // Once disarmed the rule
		t.Fatalf("second sync after Once: %v", err)
	}
}

func TestFaultTornWrite(t *testing.T) {
	restore := SetGlobal(NewInjector(Rule{PathGlob: "torn.dat", Op: OpWrite, Torn: true}))
	defer restore()
	f := openTemp(t, "torn.dat")
	n, err := f.WriteAt([]byte("0123456789"), 0)
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("got %v, want EIO", err)
	}
	if n != 5 {
		t.Fatalf("torn write landed %d bytes, want 5", n)
	}
}

func TestFaultLatencyOnly(t *testing.T) {
	restore := SetGlobal(NewInjector(Rule{PathGlob: "slow.dat", Latency: 20 * time.Millisecond}))
	defer restore()
	f := openTemp(t, "slow.dat")
	start := time.Now()
	if _, err := f.WriteAt([]byte("x"), 0); err != nil {
		t.Fatalf("latency-only rule must not fail the op: %v", err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("write took %v, want >= ~20ms of injected latency", d)
	}
}

func TestFaultGlobScoping(t *testing.T) {
	restore := SetGlobal(NewInjector(Rule{PathGlob: "tree_*.pg", Op: OpWrite}))
	defer restore()
	hit := openTemp(t, "tree_03.g2.pg")
	miss := openTemp(t, "vectors.pg")
	if _, err := hit.WriteAt([]byte("x"), 0); !errors.Is(err, syscall.EIO) {
		t.Fatalf("glob-matched file: got %v, want EIO", err)
	}
	if _, err := miss.WriteAt([]byte("x"), 0); err != nil {
		t.Fatalf("unmatched file must pass: %v", err)
	}
}

func TestFaultTruncateCountsAsWrite(t *testing.T) {
	restore := SetGlobal(NewInjector(Rule{PathGlob: "t.dat", Op: OpWrite}))
	defer restore()
	f := openTemp(t, "t.dat")
	if err := f.Truncate(0); !errors.Is(err, syscall.EIO) {
		t.Fatalf("truncate: got %v, want EIO", err)
	}
}

func TestParseSpec(t *testing.T) {
	rules, err := ParseSpec("wal.log:sync:c10;*.pg:read:l2ms;vectors.pg:write:b4096:enospc")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if len(rules) != 3 {
		t.Fatalf("got %d rules, want 3", len(rules))
	}
	if rules[0].Op != OpSync || rules[0].AfterCalls != 10 {
		t.Fatalf("rule 0 parsed wrong: %+v", rules[0])
	}
	if rules[1].Latency != 2*time.Millisecond {
		t.Fatalf("rule 1 parsed wrong: %+v", rules[1])
	}
	if rules[2].AfterBytes != 4096 || !errors.Is(rules[2].Err, syscall.ENOSPC) {
		t.Fatalf("rule 2 parsed wrong: %+v", rules[2])
	}
	for _, bad := range []string{"", "a:b", "f:badop:c1", "f:read:z9", "f:read:c1:ebad"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Fatalf("ParseSpec(%q) should fail", bad)
		}
	}
}
