// Package iofault is the failure-injection seam between the storage
// layers (pager, WAL, vecstore-via-pager) and the filesystem. In
// production it is a zero-cost passthrough to *os.File; in tests (or
// via the HD_IOFAULT env spec) an Injector interposes on the handful
// of file operations the storage layers use and fails them the way
// real disks fail: EIO on the Nth read, ENOSPC once a byte budget is
// exhausted, torn short writes, fsync errors, added latency.
//
// The seam exists so the hardened error paths in wal/core/pager are
// *proven* under injection rather than argued about: every "what if
// the fsync fails here" branch has a test that makes the fsync fail
// exactly there.
package iofault

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// File is the slice of *os.File the storage layers consume. Keeping it
// an interface (rather than a concrete wrapper struct) lets the
// passthrough path hand back the *os.File itself — no indirection, no
// behaviour change — when no injector is armed.
type File interface {
	io.Reader
	io.ReaderAt
	io.WriterAt
	io.Writer
	io.Closer
	Seek(offset int64, whence int) (int64, error)
	Sync() error
	Truncate(size int64) error
	Stat() (os.FileInfo, error)
	Name() string
}

// Op classifies file operations for rule matching.
type Op uint8

const (
	OpAny Op = iota
	OpRead
	OpWrite // WriteAt, Write, and Truncate
	OpSync
)

func (o Op) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	default:
		return "any"
	}
}

// Rule arms one fault. The zero value of each field means "no
// constraint": a Rule{} matches every operation on every file and
// fails it immediately with EIO.
type Rule struct {
	// PathGlob matches against filepath.Base of the file's path
	// ("wal.log", "tree_*.pg", "*"). Empty matches everything.
	PathGlob string
	// Op restricts the rule to reads, writes (incl. truncate), or
	// syncs. OpAny matches all three.
	Op Op
	// AfterCalls delays the fault until this many matching calls have
	// succeeded: 0 fires on the first call, 2 lets two calls through
	// and fails the third. Counted across all files the rule matches.
	AfterCalls int64
	// AfterBytes (writes only) lets this many bytes through — summed
	// across matching files — then fails with ENOSPC (or Err). The
	// failing write is torn at the budget boundary: the prefix that
	// fits is written, the error reports a short count. This is the
	// disk-full model.
	AfterBytes int64
	// Err overrides the injected error. Default: syscall.ENOSPC when
	// AfterBytes is set, syscall.EIO otherwise.
	Err error
	// Torn (writes only) makes the failing write a short write: half
	// the buffer is actually written before the error returns.
	Torn bool
	// Latency is added before every matching operation — the slow-disk
	// model. A latency-only rule (Err == nil, no count/byte trigger,
	// Latency > 0) never fails the operation.
	Latency time.Duration
	// Once disarms the rule after its first injected failure.
	Once bool
}

func (r Rule) defaultErr() error {
	if r.Err != nil {
		return r.Err
	}
	if r.AfterBytes > 0 {
		return syscall.ENOSPC
	}
	return syscall.EIO
}

// latencyOnly reports whether the rule only injects latency and never
// an error.
func (r Rule) latencyOnly() bool {
	return r.Latency > 0 && r.Err == nil && r.AfterCalls == 0 && r.AfterBytes == 0 && !r.Torn
}

type ruleState struct {
	Rule
	calls    atomic.Int64
	bytes    atomic.Int64
	disarmed atomic.Bool
}

// Injector holds armed rules. Install one with SetGlobal (tests) or
// the HD_IOFAULT env variable (whole-process chaos runs).
type Injector struct {
	rules []*ruleState
}

// NewInjector arms the given rules.
func NewInjector(rules ...Rule) *Injector {
	in := &Injector{}
	for _, r := range rules {
		in.rules = append(in.rules, &ruleState{Rule: r})
	}
	return in
}

// fault is the outcome of consulting the injector for one operation.
type fault struct {
	err     error
	latency time.Duration
	// wrote caps how many bytes of a failing write actually land
	// (AfterBytes budget remainder, or half the buffer for Torn).
	// -1 means "none / not a write fault".
	wrote int64
}

// check consults every rule for one operation. n is the byte count for
// writes (0 otherwise). The first error-injecting rule wins; latency
// accumulates across matching rules.
func (in *Injector) check(base string, op Op, n int64) fault {
	f := fault{wrote: -1}
	if in == nil {
		return f
	}
	for _, rs := range in.rules {
		if rs.disarmed.Load() {
			continue
		}
		if rs.Op != OpAny && rs.Op != op {
			continue
		}
		if rs.PathGlob != "" {
			if ok, _ := filepath.Match(rs.PathGlob, base); !ok {
				continue
			}
		}
		f.latency += rs.Latency
		if rs.latencyOnly() {
			continue
		}
		if f.err != nil {
			continue // an earlier rule already failed this op
		}
		if rs.AfterBytes > 0 {
			if op != OpWrite {
				continue
			}
			used := rs.bytes.Add(n)
			if used <= rs.AfterBytes {
				continue // still under budget
			}
			f.err = rs.defaultErr()
			if fits := rs.AfterBytes - (used - n); fits > 0 {
				f.wrote = fits
			} else {
				f.wrote = 0
			}
		} else {
			if c := rs.calls.Add(1); c <= rs.AfterCalls {
				continue
			}
			f.err = rs.defaultErr()
			if rs.Torn && op == OpWrite {
				f.wrote = n / 2
			} else if op == OpWrite {
				f.wrote = 0
			}
		}
		if rs.Once {
			rs.disarmed.Store(true)
		}
	}
	return f
}

// The active injector. Swapped atomically so the passthrough fast path
// is one atomic load.
var global atomic.Pointer[Injector]

// SetGlobal installs inj as the process-wide injector. Files opened
// before the call are unaffected unless they were opened while *any*
// injector (even an empty one) was armed — Open only wraps when an
// injector is active at open time. Tests that arm rules mid-run should
// therefore SetGlobal before opening the index. Returns a restore
// function for defer.
func SetGlobal(inj *Injector) (restore func()) {
	prev := global.Swap(inj)
	return func() { global.Store(prev) }
}

// ClearGlobal disarms injection.
func ClearGlobal() { global.Store(nil) }

// Active reports whether any injector is armed (used by tests/logging;
// the storage layers never branch on it).
func Active() bool { return global.Load() != nil }

var envOnce sync.Once

// Open is the os.OpenFile replacement the storage layers call. With no
// injector armed it returns the *os.File itself.
func Open(path string, flag int, perm os.FileMode) (File, error) {
	envOnce.Do(installEnvInjector)
	f, err := os.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	return Wrap(path, f), nil
}

// Wrap attaches the active injector to an already-open file (used for
// temp files created with os.CreateTemp). With no injector armed it
// returns f unchanged.
func Wrap(path string, f *os.File) File {
	inj := global.Load()
	if inj == nil {
		return f
	}
	return &faultFile{f: f, base: filepath.Base(path), inj: inj}
}

// faultFile interposes the injector on every operation.
type faultFile struct {
	f    *os.File
	base string
	inj  *Injector
}

func (ff *faultFile) fault(op Op, n int64) fault {
	f := ff.inj.check(ff.base, op, n)
	if f.latency > 0 {
		time.Sleep(f.latency)
	}
	return f
}

func (ff *faultFile) Read(p []byte) (int, error) {
	if f := ff.fault(OpRead, 0); f.err != nil {
		return 0, &os.PathError{Op: "read", Path: ff.f.Name(), Err: f.err}
	}
	return ff.f.Read(p)
}

func (ff *faultFile) ReadAt(p []byte, off int64) (int, error) {
	if f := ff.fault(OpRead, 0); f.err != nil {
		return 0, &os.PathError{Op: "read", Path: ff.f.Name(), Err: f.err}
	}
	return ff.f.ReadAt(p, off)
}

func (ff *faultFile) writeFault(op string, p []byte, do func([]byte) (int, error)) (int, error) {
	f := ff.fault(OpWrite, int64(len(p)))
	if f.err == nil {
		return do(p)
	}
	n := 0
	if f.wrote > 0 { // torn write: land the allowed prefix for real
		n, _ = do(p[:f.wrote])
	}
	return n, &os.PathError{Op: op, Path: ff.f.Name(), Err: f.err}
}

func (ff *faultFile) WriteAt(p []byte, off int64) (int, error) {
	return ff.writeFault("write", p, func(q []byte) (int, error) { return ff.f.WriteAt(q, off) })
}

func (ff *faultFile) Write(p []byte) (int, error) {
	return ff.writeFault("write", p, ff.f.Write)
}

func (ff *faultFile) Seek(offset int64, whence int) (int64, error) {
	return ff.f.Seek(offset, whence)
}

func (ff *faultFile) Sync() error {
	if f := ff.fault(OpSync, 0); f.err != nil {
		return &os.PathError{Op: "sync", Path: ff.f.Name(), Err: f.err}
	}
	return ff.f.Sync()
}

func (ff *faultFile) Truncate(size int64) (err error) {
	if f := ff.fault(OpWrite, 0); f.err != nil {
		return &os.PathError{Op: "truncate", Path: ff.f.Name(), Err: f.err}
	}
	return ff.f.Truncate(size)
}

func (ff *faultFile) Stat() (os.FileInfo, error) { return ff.f.Stat() }
func (ff *faultFile) Close() error               { return ff.f.Close() }
func (ff *faultFile) Name() string               { return ff.f.Name() }

// installEnvInjector parses HD_IOFAULT and arms the result. The spec
// is semicolon-separated rules of colon-separated fields:
//
//	glob:op:trigger[:err]
//
// where op is read|write|sync|any, trigger is either "cN" (fail after
// N successful calls), "bN" (ENOSPC after N bytes), or "lDUR" (latency
// only, e.g. l5ms), and err overrides the injected errno (eio|enospc).
// Example:
//
//	HD_IOFAULT='wal.log:sync:c10;*.pg:read:l2ms'
//
// A malformed spec panics at first Open: chaos runs must not silently
// degrade to no-fault runs.
func installEnvInjector() {
	spec := os.Getenv("HD_IOFAULT")
	if spec == "" {
		return
	}
	rules, err := ParseSpec(spec)
	if err != nil {
		panic(fmt.Sprintf("iofault: bad HD_IOFAULT %q: %v", spec, err))
	}
	SetGlobal(NewInjector(rules...))
}

// ParseSpec parses the HD_IOFAULT rule grammar (see
// installEnvInjector). Exported for the chaos tooling's own tests.
func ParseSpec(spec string) ([]Rule, error) {
	var rules []Rule
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		if len(fields) < 3 || len(fields) > 4 {
			return nil, fmt.Errorf("rule %q: want glob:op:trigger[:err]", part)
		}
		r := Rule{PathGlob: fields[0]}
		switch fields[1] {
		case "read":
			r.Op = OpRead
		case "write":
			r.Op = OpWrite
		case "sync":
			r.Op = OpSync
		case "any", "":
			r.Op = OpAny
		default:
			return nil, fmt.Errorf("rule %q: unknown op %q", part, fields[1])
		}
		trig := fields[2]
		if trig == "" {
			return nil, fmt.Errorf("rule %q: empty trigger", part)
		}
		switch trig[0] {
		case 'c':
			n, err := strconv.ParseInt(trig[1:], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("rule %q: bad call count: %v", part, err)
			}
			r.AfterCalls = n
		case 'b':
			n, err := strconv.ParseInt(trig[1:], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("rule %q: bad byte budget: %v", part, err)
			}
			r.AfterBytes = n
		case 'l':
			d, err := time.ParseDuration(trig[1:])
			if err != nil {
				return nil, fmt.Errorf("rule %q: bad latency: %v", part, err)
			}
			r.Latency = d
		default:
			return nil, fmt.Errorf("rule %q: trigger must start with c, b, or l", part)
		}
		if len(fields) == 4 {
			switch fields[3] {
			case "eio":
				r.Err = syscall.EIO
			case "enospc":
				r.Err = syscall.ENOSPC
			default:
				return nil, fmt.Errorf("rule %q: unknown err %q", part, fields[3])
			}
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, errors.New("empty spec")
	}
	return rules, nil
}
