// Package leakcheck asserts that a test leaves no goroutines behind,
// with nothing but the standard library: snapshot the goroutine count
// before the work, run it, then poll for the count to come back down.
// Polling (rather than one comparison) absorbs the asynchronous tails
// that are not leaks — a netpoller wakeup, an http.Server connection
// goroutine observing the closed listener — while still catching the
// real thing: a compactor that ignored its cancel, a WAL syncer whose
// stop channel nobody closed, a fan-out worker blocked on a channel
// no reader will ever drain.
//
// Usage:
//
//	defer leakcheck.Check(t)()
//
// Check snapshots immediately; the returned func verifies. Tests using
// it must not run in parallel with tests that intentionally leave
// goroutines running (the count is process-global).
package leakcheck

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"
)

// grace is how long Verify waits for stragglers to exit before calling
// the residue a leak. Generous: a leak is forever, so waiting longer
// only costs time on failing runs.
const grace = 5 * time.Second

// Check snapshots the current goroutine count and returns the
// verification func, for use as `defer leakcheck.Check(t)()`.
func Check(t testing.TB) func() {
	t.Helper()
	base := runtime.NumGoroutine()
	return func() { verify(t, base) }
}

func verify(t testing.TB, base int) {
	t.Helper()
	deadline := time.Now().Add(grace)
	var n int
	for {
		n = runtime.NumGoroutine()
		if n <= base {
			return
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("leakcheck: %d goroutines before, %d after %v grace:\n%s",
		base, n, grace, stacks())
}

// stacks renders every goroutine's stack, trimming the harness's own
// frames so the report leads with the interesting ones.
func stacks() string {
	buf := make([]byte, 1<<20)
	buf = buf[:runtime.Stack(buf, true)]
	var b strings.Builder
	for _, g := range strings.Split(string(buf), "\n\n") {
		if strings.Contains(g, "leakcheck.stacks") || strings.Contains(g, "testing.(*T).Run") {
			continue
		}
		fmt.Fprintf(&b, "%s\n\n", g)
	}
	return b.String()
}
