// Package borda implements the Borda-count rank aggregation of §5.5 and
// Appendix D: a query image has N descriptors; each is searched for its
// kANN descriptors; a database image scores k+1-l whenever one of its
// descriptors appears at position l of one of the N result lists (Eq. 7).
// The images with the largest aggregate counts are the image-level
// retrieval answer.
package borda

import (
	"fmt"
	"sort"
)

// ImageScore is an aggregated result for one database image.
type ImageScore struct {
	ImageID uint64
	Score   float64
}

// Aggregate computes Borda counts. resultLists holds the ranked kANN
// descriptor ids for each of the query's descriptors; descToImage maps a
// database descriptor id to its image id. topK images are returned,
// highest count first (ties by ascending image id for determinism).
func Aggregate(resultLists [][]uint64, descToImage func(uint64) uint64, topK int) ([]ImageScore, error) {
	if topK < 1 {
		return nil, fmt.Errorf("borda: topK must be >= 1, got %d", topK)
	}
	scores := make(map[uint64]float64)
	for _, list := range resultLists {
		k := len(list)
		for l, descID := range list {
			img := descToImage(descID)
			scores[img] += float64(k - l) // k+1-(l+1): positions are 1-based in Eq. (7)
		}
	}
	out := make([]ImageScore, 0, len(scores))
	for img, s := range scores {
		out = append(out, ImageScore{ImageID: img, Score: s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].ImageID < out[j].ImageID
	})
	if len(out) > topK {
		out = out[:topK]
	}
	return out, nil
}

// Overlap returns |a ∩ b| / |a| for two image id lists — the measure used
// to compare a method's image retrieval against the linear-scan ground
// truth in §5.5.
func Overlap(a, b []ImageScore) float64 {
	if len(a) == 0 {
		return 0
	}
	set := make(map[uint64]struct{}, len(b))
	for _, s := range b {
		set[s.ImageID] = struct{}{}
	}
	hits := 0
	for _, s := range a {
		if _, ok := set[s.ImageID]; ok {
			hits++
		}
	}
	return float64(hits) / float64(len(a))
}
