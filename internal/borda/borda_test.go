package borda

import (
	"math"
	"testing"
)

func TestAggregatePaperFormula(t *testing.T) {
	// Two result lists of k=3; descriptor d belongs to image d/10.
	lists := [][]uint64{
		{10, 20, 30}, // image 1 gets 3, image 2 gets 2, image 3 gets 1
		{11, 30, 20}, // image 1 gets 3, image 3 gets 2, image 2 gets 1
	}
	toImage := func(d uint64) uint64 { return d / 10 }
	got, err := Aggregate(lists, toImage, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d images", len(got))
	}
	if got[0].ImageID != 1 || got[0].Score != 6 {
		t.Fatalf("top = %+v, want image 1 score 6", got[0])
	}
	// Images 2 and 3 both score 3; tie broken by id.
	if got[1].ImageID != 2 || got[1].Score != 3 || got[2].ImageID != 3 {
		t.Fatalf("ranks = %+v", got)
	}
}

func TestAggregateTopKTruncation(t *testing.T) {
	lists := [][]uint64{{1, 2, 3, 4, 5}}
	got, err := Aggregate(lists, func(d uint64) uint64 { return d }, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].ImageID != 1 {
		t.Fatalf("got %+v", got)
	}
}

func TestAggregateValidation(t *testing.T) {
	if _, err := Aggregate(nil, func(d uint64) uint64 { return d }, 0); err == nil {
		t.Error("topK=0 must fail")
	}
}

func TestOverlap(t *testing.T) {
	a := []ImageScore{{1, 5}, {2, 4}, {3, 3}}
	b := []ImageScore{{2, 9}, {3, 8}, {4, 7}}
	if got := Overlap(a, b); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("overlap = %v", got)
	}
	if Overlap(nil, b) != 0 {
		t.Error("empty overlap must be 0")
	}
	if Overlap(a, a) != 1 {
		t.Error("self overlap must be 1")
	}
}

// Multiple descriptors of the same image in one list accumulate.
func TestAccumulationWithinList(t *testing.T) {
	lists := [][]uint64{{10, 11, 20}}
	got, err := Aggregate(lists, func(d uint64) uint64 { return d / 10 }, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].ImageID != 1 || got[0].Score != 5 { // 3 + 2
		t.Fatalf("top = %+v", got[0])
	}
}
