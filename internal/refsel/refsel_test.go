package refsel

import (
	"math/rand"
	"testing"

	"github.com/hd-index/hdindex/internal/data"
	"github.com/hd-index/hdindex/internal/vecmath"
)

func TestEstimateDmax(t *testing.T) {
	// Points on a line: diameter is the span.
	vecs := [][]float32{{0}, {1}, {4}, {10}}
	rng := rand.New(rand.NewSource(1))
	d := EstimateDmax(vecs, rng, 10)
	if d != 10 {
		t.Fatalf("dmax = %v, want 10", d)
	}
	if EstimateDmax(nil, rng, 10) != 0 {
		t.Fatal("dmax of empty set must be 0")
	}
	if EstimateDmax([][]float32{{1}}, rng, 10) != 0 {
		t.Fatal("dmax of singleton must be 0")
	}
}

func TestRandomSelection(t *testing.T) {
	ds := data.Uniform(100, 4, 0, 1, 2)
	rng := rand.New(rand.NewSource(3))
	r, err := Random(ds.Vectors, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Indices) != 10 || len(r.Vectors) != 10 {
		t.Fatalf("got %d refs", len(r.Indices))
	}
	seen := map[int]bool{}
	for _, i := range r.Indices {
		if seen[i] {
			t.Fatal("duplicate reference")
		}
		seen[i] = true
	}
}

func TestSSSSpread(t *testing.T) {
	ds := data.Uniform(500, 8, 0, 1, 4)
	rng := rand.New(rand.NewSource(5))
	dmax := EstimateDmax(ds.Vectors, rng, 10)
	r, err := SSS(ds.Vectors, 10, 0.3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Indices) != 10 {
		t.Fatalf("got %d refs", len(r.Indices))
	}
	// Pairwise distances should respect (approximately) the f*dmax
	// admission threshold: all but the first are admitted only beyond the
	// threshold, and f is only relaxed if needed, so check a floor of
	// 0.3*0.8^5*dmax.
	floor := 0.3 * 0.32768 * dmax
	for i := 0; i < len(r.Vectors); i++ {
		for j := i + 1; j < len(r.Vectors); j++ {
			if d := vecmath.Dist(r.Vectors[i], r.Vectors[j]); d < floor {
				t.Fatalf("refs %d,%d only %v apart (floor %v)", i, j, d, floor)
			}
		}
	}
}

// SSS references must be more spread than random ones on clustered data.
func TestSSSBeatsRandomSpread(t *testing.T) {
	ds := data.Generate(data.Config{N: 600, Dim: 8, Clusters: 3, Lo: 0, Hi: 1, Seed: 9})
	minPairwise := func(refs [][]float32) float64 {
		best := 1e18
		for i := 0; i < len(refs); i++ {
			for j := i + 1; j < len(refs); j++ {
				if d := vecmath.Dist(refs[i], refs[j]); d < best {
					best = d
				}
			}
		}
		return best
	}
	var sssSum, rndSum float64
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s, err := SSS(ds.Vectors, 8, 0.3, rng)
		if err != nil {
			t.Fatal(err)
		}
		sssSum += minPairwise(s.Vectors)
		r, err := Random(ds.Vectors, 8, rng)
		if err != nil {
			t.Fatal(err)
		}
		rndSum += minPairwise(r.Vectors)
	}
	if sssSum <= rndSum {
		t.Errorf("SSS min-pairwise %v should exceed random %v", sssSum, rndSum)
	}
}

func TestSSSDyn(t *testing.T) {
	ds := data.Uniform(300, 8, 0, 1, 6)
	rng := rand.New(rand.NewSource(7))
	r, err := SSSDyn(ds.Vectors, 10, 0.3, 32, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Indices) != 10 {
		t.Fatalf("got %d refs", len(r.Indices))
	}
	seen := map[int]bool{}
	for _, i := range r.Indices {
		if seen[i] {
			t.Fatal("duplicate reference after dynamic replacement")
		}
		seen[i] = true
	}
}

func TestValidation(t *testing.T) {
	vecs := [][]float32{{1}, {2}}
	rng := rand.New(rand.NewSource(1))
	if _, err := Random(vecs, 0, rng); err == nil {
		t.Error("m=0 must fail")
	}
	if _, err := Random(vecs, 3, rng); err == nil {
		t.Error("m>n must fail")
	}
	if _, err := SSS(vecs, 3, 0.3, rng); err == nil {
		t.Error("SSS m>n must fail")
	}
}

// SSS must terminate (by relaxing f) even on pathological data where all
// points coincide except a few.
func TestSSSDegenerateData(t *testing.T) {
	vecs := make([][]float32, 50)
	for i := range vecs {
		vecs[i] = []float32{0, 0}
	}
	vecs[0] = []float32{1, 1}
	vecs[1] = []float32{0.5, 0.1}
	rng := rand.New(rand.NewSource(11))
	r, err := SSS(vecs, 3, 0.9, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Indices) != 3 {
		t.Fatalf("got %d refs", len(r.Indices))
	}
}
