// Package refsel selects reference objects (pivots) for HD-Index.
//
// §3.3: reference objects approximate query-object distances through the
// triangular and Ptolemaic inequalities, so they should be well spread in
// the data space. The paper evaluates three selectors (Fig. 10): Random,
// SSS (sparse spatial selection [56]) — the recommended one — and
// SSS-Dyn [18], which keeps refining the set by replacing the least
// useful pivot.
package refsel

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/hd-index/hdindex/internal/vecmath"
)

// DefaultFraction is the paper's f = 0.3 (§3.4): a candidate becomes a
// reference object only if it is at least f·dmax away from all current
// reference objects.
const DefaultFraction = 0.3

// Result carries the selected reference objects.
type Result struct {
	Indices []int       // positions in the dataset
	Vectors [][]float32 // the reference vectors themselves (views)
}

// EstimateDmax estimates the diameter of the dataset with the paper's
// heuristic: start from a random object, jump to its farthest neighbour,
// and repeat until the distance stops growing (or maxIters).
func EstimateDmax(vectors [][]float32, rng *rand.Rand, maxIters int) float64 {
	if len(vectors) < 2 {
		return 0
	}
	if maxIters <= 0 {
		maxIters = 10
	}
	cur := rng.Intn(len(vectors))
	var dmax float64
	for iter := 0; iter < maxIters; iter++ {
		far, fd := farthest(vectors, cur)
		if fd <= dmax {
			break
		}
		dmax = fd
		cur = far
	}
	return dmax
}

func farthest(vectors [][]float32, from int) (int, float64) {
	best, bestD := from, -1.0
	v := vectors[from]
	for i, u := range vectors {
		if d := vecmath.DistSq(v, u); d > bestD {
			best, bestD = i, d
		}
	}
	return best, sqrt(bestD)
}

// Random picks m distinct reference objects uniformly at random.
func Random(vectors [][]float32, m int, rng *rand.Rand) (*Result, error) {
	if err := validate(vectors, m); err != nil {
		return nil, err
	}
	idx := rng.Perm(len(vectors))[:m]
	return mkResult(vectors, idx), nil
}

// SSS implements sparse spatial selection: scan the dataset (from a
// random start) admitting any object whose distance to all previously
// selected references exceeds f·dmax, until m references are found.
// If a full scan cannot find m such objects, f is relaxed geometrically —
// the pragmatic fallback needed on small or tightly clustered data.
func SSS(vectors [][]float32, m int, f float64, rng *rand.Rand) (*Result, error) {
	if err := validate(vectors, m); err != nil {
		return nil, err
	}
	if f <= 0 {
		f = DefaultFraction
	}
	dmax := EstimateDmax(vectors, rng, 10)
	selected := []int{rng.Intn(len(vectors))}
	for len(selected) < m {
		found := scanFor(vectors, selected, f*dmax)
		if found < 0 {
			f *= 0.8 // relax and retry
			if f*dmax < 1e-12 {
				return nil, fmt.Errorf("refsel: cannot find %d distinct references", m)
			}
			continue
		}
		selected = append(selected, found)
	}
	return mkResult(vectors, selected), nil
}

// scanFor returns the first object farther than threshold from every
// selected reference, or -1.
func scanFor(vectors [][]float32, selected []int, threshold float64) int {
	thSq := threshold * threshold
	isSel := make(map[int]struct{}, len(selected))
	for _, s := range selected {
		isSel[s] = struct{}{}
	}
	for i, v := range vectors {
		if _, ok := isSel[i]; ok {
			continue
		}
		ok := true
		for _, s := range selected {
			if vecmath.DistSq(v, vectors[s]) <= thSq {
				ok = false
				break
			}
		}
		if ok {
			return i
		}
	}
	return -1
}

// SSSDyn implements the dynamic variant [18]: after SSS fills the set,
// keep scanning; every further qualifying object challenges the current
// reference that contributes least to lower-bounding the distances of a
// fixed sample of object pairs, and replaces it if it contributes more.
func SSSDyn(vectors [][]float32, m int, f float64, pairSamples int, rng *rand.Rand) (*Result, error) {
	base, err := SSS(vectors, m, f, rng)
	if err != nil {
		return nil, err
	}
	if f <= 0 {
		f = DefaultFraction
	}
	if pairSamples <= 0 {
		pairSamples = 64
	}
	// Fixed, pre-selected object pairs (the paper's evaluation set).
	type pair struct{ a, b int }
	pairs := make([]pair, pairSamples)
	for i := range pairs {
		pairs[i] = pair{rng.Intn(len(vectors)), rng.Intn(len(vectors))}
	}
	// contribution of reference r = Σ over pairs of the triangular lower
	// bound it yields: |d(a,r) - d(b,r)|. Higher = tighter = better.
	contribution := func(r int) float64 {
		var sum float64
		for _, p := range pairs {
			da := vecmath.Dist(vectors[p.a], vectors[r])
			db := vecmath.Dist(vectors[p.b], vectors[r])
			if da > db {
				sum += da - db
			} else {
				sum += db - da
			}
		}
		return sum
	}

	selected := append([]int(nil), base.Indices...)
	scores := make([]float64, m)
	for i, r := range selected {
		scores[i] = contribution(r)
	}
	dmax := EstimateDmax(vectors, rng, 10)
	thSq := (f * dmax) * (f * dmax)
	inSet := make(map[int]struct{}, m)
	for _, s := range selected {
		inSet[s] = struct{}{}
	}
	for i, v := range vectors {
		if _, ok := inSet[i]; ok {
			continue
		}
		qualifies := true
		for _, s := range selected {
			if vecmath.DistSq(v, vectors[s]) <= thSq {
				qualifies = false
				break
			}
		}
		if !qualifies {
			continue
		}
		victim, victimScore := 0, scores[0]
		for j := 1; j < m; j++ {
			if scores[j] < victimScore {
				victim, victimScore = j, scores[j]
			}
		}
		if c := contribution(i); c > victimScore {
			delete(inSet, selected[victim])
			selected[victim] = i
			scores[victim] = c
			inSet[i] = struct{}{}
		}
	}
	return mkResult(vectors, selected), nil
}

func validate(vectors [][]float32, m int) error {
	if m < 1 {
		return fmt.Errorf("refsel: m must be >= 1, got %d", m)
	}
	if m > len(vectors) {
		return fmt.Errorf("refsel: m = %d exceeds dataset size %d", m, len(vectors))
	}
	return nil
}

func mkResult(vectors [][]float32, idx []int) *Result {
	r := &Result{Indices: idx, Vectors: make([][]float32, len(idx))}
	for i, id := range idx {
		r.Vectors[i] = vectors[id]
	}
	return r
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}
