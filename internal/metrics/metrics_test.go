package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

// Example 1 from the paper (§2.1): truth {o1,o2,o3};
// A1 = {o4,o3,o2} has AP 0.39 (exactly (0 + 1/2 + 2/3)/3);
// A2 = {o3,o2,o4} has AP 0.67 (exactly (1+1+0)/3); MAP = mean.
func TestPaperExample1(t *testing.T) {
	truth := []uint64{1, 2, 3}
	a1 := []uint64{4, 3, 2}
	a2 := []uint64{3, 2, 4}
	ap1 := AP(a1, truth, 3)
	ap2 := AP(a2, truth, 3)
	if !almost(ap1, (0+0.5+2.0/3.0)/3) {
		t.Errorf("AP(A1) = %v", ap1)
	}
	if !almost(ap2, 2.0/3.0) {
		t.Errorf("AP(A2) = %v", ap2)
	}
	m := MAP([][]uint64{a1, a2}, [][]uint64{truth, truth}, 3)
	if !almost(m, (ap1+ap2)/2) {
		t.Errorf("MAP = %v", m)
	}
}

func TestAPPerfect(t *testing.T) {
	truth := []uint64{10, 20, 30, 40}
	if got := AP(truth, truth, 4); !almost(got, 1) {
		t.Errorf("perfect AP = %v, want 1", got)
	}
}

func TestAPEmptyAndZeroK(t *testing.T) {
	if AP(nil, []uint64{1}, 3) != 0 {
		t.Error("AP of empty result must be 0")
	}
	if AP([]uint64{1}, []uint64{1}, 0) != 0 {
		t.Error("AP@0 must be 0")
	}
}

// AP must be order sensitive: correct items earlier gives higher AP.
func TestAPOrderSensitivity(t *testing.T) {
	truth := []uint64{1, 2, 3, 4}
	early := []uint64{1, 2, 9, 8}
	late := []uint64{9, 8, 1, 2}
	if AP(early, truth, 4) <= AP(late, truth, 4) {
		t.Error("AP must reward early correct answers")
	}
	// Same set, so recall is identical.
	if Recall(early, truth, 4) != Recall(late, truth, 4) {
		t.Error("recall must be order-insensitive")
	}
}

func TestRatio(t *testing.T) {
	if got := Ratio([]float64{2, 4}, []float64{1, 2}); !almost(got, 2) {
		t.Errorf("ratio = %v, want 2", got)
	}
	if got := Ratio([]float64{1, 2}, []float64{1, 2}); !almost(got, 1) {
		t.Errorf("exact ratio = %v, want 1", got)
	}
	// zero true distance with zero returned distance counts as 1
	if got := Ratio([]float64{0, 2}, []float64{0, 2}); !almost(got, 1) {
		t.Errorf("zero-dist ratio = %v, want 1", got)
	}
	// zero true distance with non-zero returned distance is skipped
	if got := Ratio([]float64{5, 2}, []float64{0, 2}); !almost(got, 1) {
		t.Errorf("skip-zero ratio = %v, want 1", got)
	}
	if got := Ratio(nil, nil); got != 1 {
		t.Errorf("empty ratio = %v, want 1", got)
	}
}

// Property: AP is within [0,1], and AP == 1 iff got[:k] == truth[:k].
func TestQuickAPBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := rng.Intn(10) + 1
		n := k + rng.Intn(10)
		perm := rng.Perm(n)
		truth := make([]uint64, n)
		for i, p := range perm {
			truth[i] = uint64(p)
		}
		got := make([]uint64, n)
		copy(got, truth)
		rng.Shuffle(n, func(i, j int) { got[i], got[j] = got[j], got[i] })
		ap := AP(got, truth, k)
		if ap < 0 || ap > 1+1e-12 {
			return false
		}
		same := true
		for i := 0; i < k; i++ {
			if got[i] != truth[i] {
				same = false
				break
			}
		}
		if same && !almost(ap, 1) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: ratio >= 1 whenever gotDists dominates trueDists rank-wise,
// which holds when both are sorted results over the same dataset.
func TestQuickRatioAtLeastOne(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := rng.Intn(10) + 1
		truth := make([]float64, k)
		got := make([]float64, k)
		cur := 0.0
		for i := 0; i < k; i++ {
			cur += rng.Float64()
			truth[i] = cur
			got[i] = cur + rng.Float64() // got never closer than truth
		}
		return Ratio(got, truth) >= 1-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMAPMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MAP with mismatched lengths did not panic")
		}
	}()
	MAP([][]uint64{{1}}, nil, 1)
}

func TestMeanRecall(t *testing.T) {
	got := [][]uint64{{1, 2}, {3, 9}}
	truth := [][]uint64{{1, 2}, {3, 4}}
	if r := MeanRecall(got, truth, 2); !almost(r, 0.75) {
		t.Errorf("MeanRecall = %v, want 0.75", r)
	}
	if MeanRecall(nil, nil, 2) != 0 {
		t.Error("empty MeanRecall must be 0")
	}
}
