// Package metrics implements the paper's quality measures: the
// approximation ratio (Definition 1), average precision at k
// (Definition 2), mean average precision (Definition 3), and recall.
//
// The paper's central methodological argument (§1, §5.3) is that in
// high-dimensional spaces the approximation ratio saturates near 1 while
// MAP@k still discriminates ranked quality; both are implemented so the
// benchmarks can reproduce Figures 1 and 7.
package metrics

// Ratio returns the approximation ratio c >= 1 of Definition 1:
// the mean over ranks i of d(q, got_i) / d(q, true_i).
//
// gotDists and trueDists are the distances of the returned and the exact
// k nearest neighbours, both sorted ascending. If an exact distance is
// zero (query equals a data point) that rank contributes 1 if the returned
// distance is also zero, else it is skipped, mirroring the convention used
// by the C2LSH/SRS evaluation code the paper compares against.
func Ratio(gotDists, trueDists []float64) float64 {
	n := len(gotDists)
	if len(trueDists) < n {
		n = len(trueDists)
	}
	if n == 0 {
		return 1
	}
	var sum float64
	var cnt int
	for i := 0; i < n; i++ {
		switch {
		case trueDists[i] > 0:
			sum += gotDists[i] / trueDists[i]
			cnt++
		case gotDists[i] == 0:
			sum++
			cnt++
		}
	}
	if cnt == 0 {
		return 1
	}
	return sum / float64(cnt)
}

// AP returns AP@k of Definition 2 for one query.
//
// got is the returned ranked list, truth the exact ranked list; k is the
// evaluation depth. For each rank i (1-based) at which got[i-1] appears
// anywhere in truth[:k], the precision j/i is accumulated, where j is the
// number of relevant results among got[:i]; the sum is divided by k.
func AP(got, truth []uint64, k int) float64 {
	if k <= 0 {
		return 0
	}
	rel := make(map[uint64]struct{}, k)
	for i, id := range truth {
		if i >= k {
			break
		}
		rel[id] = struct{}{}
	}
	var sum float64
	j := 0
	for i, id := range got {
		if i >= k {
			break
		}
		if _, ok := rel[id]; ok {
			j++
			sum += float64(j) / float64(i+1)
		}
	}
	return sum / float64(k)
}

// MAP returns MAP@k of Definition 3: the mean AP@k over queries.
// got and truth are per-query ranked id lists and must have equal length.
func MAP(got, truth [][]uint64, k int) float64 {
	if len(got) != len(truth) {
		panic("metrics: got/truth query count mismatch")
	}
	if len(got) == 0 {
		return 0
	}
	var sum float64
	for i := range got {
		sum += AP(got[i], truth[i], k)
	}
	return sum / float64(len(got))
}

// Recall returns |got[:k] ∩ truth[:k]| / k, the fraction of true
// neighbours retrieved irrespective of order.
func Recall(got, truth []uint64, k int) float64 {
	if k <= 0 {
		return 0
	}
	rel := make(map[uint64]struct{}, k)
	for i, id := range truth {
		if i >= k {
			break
		}
		rel[id] = struct{}{}
	}
	hits := 0
	for i, id := range got {
		if i >= k {
			break
		}
		if _, ok := rel[id]; ok {
			hits++
		}
	}
	return float64(hits) / float64(k)
}

// MeanRecall averages Recall over queries.
func MeanRecall(got, truth [][]uint64, k int) float64 {
	if len(got) == 0 {
		return 0
	}
	var sum float64
	for i := range got {
		sum += Recall(got[i], truth[i], k)
	}
	return sum / float64(len(got))
}
