package data

import (
	"math"
	"path/filepath"
	"testing"

	"github.com/hd-index/hdindex/internal/vecmath"
)

func TestGenerateShapeAndDomain(t *testing.T) {
	ds := Generate(Config{Name: "t", N: 500, Dim: 16, Lo: -2, Hi: 2, Seed: 1})
	if len(ds.Vectors) != 500 || ds.Dim != 16 {
		t.Fatalf("shape = %d x %d", len(ds.Vectors), ds.Dim)
	}
	for _, v := range ds.Vectors {
		if len(v) != 16 {
			t.Fatal("ragged vector")
		}
		for _, x := range v {
			if x < -2 || x > 2 {
				t.Fatalf("value %v out of domain", x)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{N: 50, Dim: 8, Lo: 0, Hi: 1, Seed: 7})
	b := Generate(Config{N: 50, Dim: 8, Lo: 0, Hi: 1, Seed: 7})
	for i := range a.Vectors {
		for d := range a.Vectors[i] {
			if a.Vectors[i][d] != b.Vectors[i][d] {
				t.Fatal("same seed must give same data")
			}
		}
	}
	c := Generate(Config{N: 50, Dim: 8, Lo: 0, Hi: 1, Seed: 8})
	same := true
	for i := range a.Vectors {
		for d := range a.Vectors[i] {
			if a.Vectors[i][d] != c.Vectors[i][d] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds must differ")
	}
}

func TestIntegerDatasets(t *testing.T) {
	ds := SIFTLike(200, 3)
	if ds.Dim != 128 {
		t.Fatalf("SIFT dim = %d", ds.Dim)
	}
	for _, v := range ds.Vectors[:10] {
		for _, x := range v {
			if x != float32(int64(x)) {
				t.Fatalf("SIFT value %v not integral", x)
			}
			if x < 0 || x > 255 {
				t.Fatalf("SIFT value %v out of [0,255]", x)
			}
		}
	}
}

func TestPresetsDims(t *testing.T) {
	cases := []struct {
		ds   *Dataset
		dim  int
		name string
	}{
		{AudioLike(10, 1), 192, "audio"},
		{SUNLike(10, 1), 512, "sun"},
		{YorckLike(10, 1), 128, "yorck"},
		{GloveLike(10, 1), 100, "glove"},
	}
	for _, c := range cases {
		if c.ds.Dim != c.dim || c.ds.Name != c.name {
			t.Errorf("%s: dim=%d name=%s", c.name, c.ds.Dim, c.ds.Name)
		}
	}
}

func TestClusteredness(t *testing.T) {
	// Clustered data must have a markedly smaller mean NN distance than
	// uniform data over the same domain.
	cl := Generate(Config{N: 400, Dim: 16, Clusters: 5, Lo: 0, Hi: 1, Seed: 5})
	un := Uniform(400, 16, 0, 1, 5)
	nn := func(vecs [][]float32) float64 {
		var sum float64
		for i := 0; i < 50; i++ {
			best := math.Inf(1)
			for j, v := range vecs {
				if j == i {
					continue
				}
				if d := vecmath.DistSq(vecs[i], v); d < best {
					best = d
				}
			}
			sum += math.Sqrt(best)
		}
		return sum
	}
	if nn(cl.Vectors) >= nn(un.Vectors) {
		t.Error("clustered data should have smaller NN distances than uniform")
	}
}

func TestHoldOutQueries(t *testing.T) {
	ds := Uniform(100, 4, 0, 1, 2)
	qs := ds.HoldOutQueries(10, 3)
	if len(qs) != 10 || len(ds.Vectors) != 90 {
		t.Fatalf("holdout sizes: q=%d rest=%d", len(qs), len(ds.Vectors))
	}
	// No query vector may remain in the dataset (they were removed by
	// identity, so check by value).
	for _, q := range qs {
		for _, v := range ds.Vectors {
			if &q[0] == &v[0] {
				t.Fatal("query still present in dataset")
			}
		}
	}
}

func TestPerturbedQueries(t *testing.T) {
	ds := Uniform(50, 8, 0, 1, 4)
	qs := ds.PerturbedQueries(20, 0.01, 5)
	if len(qs) != 20 {
		t.Fatalf("got %d queries", len(qs))
	}
	if len(ds.Vectors) != 50 {
		t.Fatal("PerturbedQueries must not shrink the dataset")
	}
	for _, q := range qs {
		best := math.Inf(1)
		for _, v := range ds.Vectors {
			if d := vecmath.Dist(q, v); d < best {
				best = d
			}
		}
		// 1% noise per dim over 8 dims: NN distance stays well under the
		// domain diagonal.
		if best > 0.5 {
			t.Fatalf("perturbed query too far from data: %v", best)
		}
	}
}

func TestGroundTruth(t *testing.T) {
	vecs := [][]float32{{0, 0}, {1, 0}, {2, 0}, {5, 0}}
	queries := [][]float32{{0.9, 0}}
	ids, dists := GroundTruth(vecs, queries, 3)
	if len(ids) != 1 || len(ids[0]) != 3 {
		t.Fatalf("shape = %v", ids)
	}
	want := []uint64{1, 0, 2}
	for i, id := range ids[0] {
		if id != want[i] {
			t.Fatalf("ids = %v, want %v", ids[0], want)
		}
	}
	if math.Abs(dists[0][0]-0.1) > 1e-6 {
		t.Fatalf("dist[0] = %v, want 0.1", dists[0][0])
	}
	// Distances are non-decreasing.
	for i := 1; i < len(dists[0]); i++ {
		if dists[0][i] < dists[0][i-1] {
			t.Fatal("ground-truth distances not sorted")
		}
	}
}

func TestGroundTruthParallelConsistency(t *testing.T) {
	ds := Uniform(300, 8, 0, 1, 6)
	qs := ds.PerturbedQueries(25, 0.02, 7)
	ids1, _ := GroundTruth(ds.Vectors, qs, 10)
	ids2, _ := GroundTruth(ds.Vectors, qs, 10)
	for i := range ids1 {
		for j := range ids1[i] {
			if ids1[i][j] != ids2[i][j] {
				t.Fatal("ground truth must be deterministic")
			}
		}
	}
}

func TestFvecsRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.fvecs")
	vecs := [][]float32{{1, 2, 3}, {-4.5, 0, 9.25}}
	if err := WriteFvecs(path, vecs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFvecs(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("read %d vectors", len(got))
	}
	for i := range vecs {
		for d := range vecs[i] {
			if got[i][d] != vecs[i][d] {
				t.Fatal("fvecs round trip mismatch")
			}
		}
	}
}

func TestIvecsRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.ivecs")
	rows := [][]uint64{{1, 2, 3}, {7}}
	if err := WriteIvecs(path, rows); err != nil {
		t.Fatal(err)
	}
	got, err := ReadIvecs(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0][2] != 3 || got[1][0] != 7 {
		t.Fatalf("ivecs = %v", got)
	}
}

func TestReadFvecsErrors(t *testing.T) {
	if _, err := ReadFvecs(filepath.Join(t.TempDir(), "missing.fvecs")); err == nil {
		t.Error("missing file must fail")
	}
	// Mixed dims must fail.
	path := filepath.Join(t.TempDir(), "mixed.fvecs")
	if err := WriteFvecs(path, [][]float32{{1}, {1, 2}}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFvecs(path); err == nil {
		t.Error("mixed dimensions must fail")
	}
}
