package data

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// fvecs/ivecs are the file formats the paper's corpora are distributed in
// (corpus-texmex.irisa.fr): each vector is an int32 dimension count
// followed by dim little-endian float32 (fvecs) or int32 (ivecs) values.

// WriteFvecs writes vectors to path in fvecs format.
func WriteFvecs(path string, vectors [][]float32) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("data: create %s: %w", path, err)
	}
	w := bufio.NewWriter(f)
	var buf [4]byte
	for _, v := range vectors {
		binary.LittleEndian.PutUint32(buf[:], uint32(len(v)))
		if _, err := w.Write(buf[:]); err != nil {
			f.Close()
			return err
		}
		for _, x := range v {
			binary.LittleEndian.PutUint32(buf[:], math.Float32bits(x))
			if _, err := w.Write(buf[:]); err != nil {
				f.Close()
				return err
			}
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFvecs reads all vectors from an fvecs file. Every vector must have
// the same dimensionality.
func ReadFvecs(path string) ([][]float32, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("data: open %s: %w", path, err)
	}
	defer f.Close()
	r := bufio.NewReader(f)
	var vectors [][]float32
	var buf [4]byte
	dim := -1
	for {
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			if err == io.EOF {
				return vectors, nil
			}
			return nil, fmt.Errorf("data: read %s: %w", path, err)
		}
		d := int(int32(binary.LittleEndian.Uint32(buf[:])))
		if d <= 0 {
			return nil, fmt.Errorf("data: %s: bad dimension %d", path, d)
		}
		if dim == -1 {
			dim = d
		} else if d != dim {
			return nil, fmt.Errorf("data: %s: mixed dimensions %d and %d", path, dim, d)
		}
		v := make([]float32, d)
		for i := range v {
			if _, err := io.ReadFull(r, buf[:]); err != nil {
				return nil, fmt.Errorf("data: %s: truncated vector: %w", path, err)
			}
			v[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[:]))
		}
		vectors = append(vectors, v)
	}
}

// ReadFvecsFlat reads all vectors from an fvecs file into one flat
// row-major matrix (vector i at flat[i*dim:(i+1)*dim]) and returns it
// with the dimensionality. One backing array replaces ReadFvecs's
// n separate slices — for large corpora that halves load-time heap
// overhead and leaves the data cache-linear, the layout the flat build
// path consumes. The row count is derived from the file size up front,
// so the matrix is allocated exactly once.
func ReadFvecsFlat(path string) (flat []float32, dim int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, fmt.Errorf("data: open %s: %w", path, err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, 0, fmt.Errorf("data: stat %s: %w", path, err)
	}
	r := bufio.NewReaderSize(f, 1<<20)
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, 0, nil // empty file: zero vectors
		}
		return nil, 0, fmt.Errorf("data: read %s: %w", path, err)
	}
	dim = int(int32(binary.LittleEndian.Uint32(hdr[:])))
	if dim <= 0 {
		return nil, 0, fmt.Errorf("data: %s: bad dimension %d", path, dim)
	}
	recSize := int64(4 + 4*dim)
	if st.Size()%recSize != 0 {
		return nil, 0, fmt.Errorf("data: %s: size %d is not a multiple of the %d-byte record", path, st.Size(), recSize)
	}
	n := int(st.Size() / recSize)
	flat = make([]float32, n*dim)
	row := make([]byte, 4*dim)
	for i := 0; i < n; i++ {
		if i > 0 {
			if _, err := io.ReadFull(r, hdr[:]); err != nil {
				return nil, 0, fmt.Errorf("data: %s: truncated header: %w", path, err)
			}
			if d := int(int32(binary.LittleEndian.Uint32(hdr[:]))); d != dim {
				return nil, 0, fmt.Errorf("data: %s: mixed dimensions %d and %d", path, dim, d)
			}
		}
		if _, err := io.ReadFull(r, row); err != nil {
			return nil, 0, fmt.Errorf("data: %s: truncated vector: %w", path, err)
		}
		out := flat[i*dim : (i+1)*dim]
		for d := range out {
			out[d] = math.Float32frombits(binary.LittleEndian.Uint32(row[4*d:]))
		}
	}
	return flat, dim, nil
}

// Rows reinterprets a flat row-major matrix as per-row slices without
// copying: row i aliases flat[i*dim:(i+1)*dim]. The bridge between
// ReadFvecsFlat and [][]float32 APIs — n slice headers instead of n
// data copies.
func Rows(flat []float32, dim int) [][]float32 {
	if dim <= 0 || len(flat)%dim != 0 {
		panic("data: flat length not a multiple of dim")
	}
	rows := make([][]float32, len(flat)/dim)
	for i := range rows {
		rows[i] = flat[i*dim : (i+1)*dim : (i+1)*dim]
	}
	return rows
}

// WriteIvecs writes integer id lists (e.g. ground truth) in ivecs format.
func WriteIvecs(path string, rows [][]uint64) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("data: create %s: %w", path, err)
	}
	w := bufio.NewWriter(f)
	var buf [4]byte
	for _, row := range rows {
		binary.LittleEndian.PutUint32(buf[:], uint32(len(row)))
		if _, err := w.Write(buf[:]); err != nil {
			f.Close()
			return err
		}
		for _, x := range row {
			binary.LittleEndian.PutUint32(buf[:], uint32(x))
			if _, err := w.Write(buf[:]); err != nil {
				f.Close()
				return err
			}
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadIvecs reads integer id lists from an ivecs file.
func ReadIvecs(path string) ([][]uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("data: open %s: %w", path, err)
	}
	defer f.Close()
	r := bufio.NewReader(f)
	var rows [][]uint64
	var buf [4]byte
	for {
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			if err == io.EOF {
				return rows, nil
			}
			return nil, fmt.Errorf("data: read %s: %w", path, err)
		}
		n := int(int32(binary.LittleEndian.Uint32(buf[:])))
		if n < 0 {
			return nil, fmt.Errorf("data: %s: bad row length %d", path, n)
		}
		row := make([]uint64, n)
		for i := range row {
			if _, err := io.ReadFull(r, buf[:]); err != nil {
				return nil, fmt.Errorf("data: %s: truncated row: %w", path, err)
			}
			row[i] = uint64(binary.LittleEndian.Uint32(buf[:]))
		}
		rows = append(rows, row)
	}
}
