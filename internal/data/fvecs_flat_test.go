package data

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// TestReadFvecsFlatMatchesReadFvecs pins the flat reader to the
// row-per-slice one on a round-tripped file.
func TestReadFvecsFlatMatchesReadFvecs(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const n, dim = 137, 19
	vectors := make([][]float32, n)
	for i := range vectors {
		vectors[i] = make([]float32, dim)
		for d := range vectors[i] {
			vectors[i][d] = rng.Float32()*200 - 100
		}
	}
	path := filepath.Join(t.TempDir(), "v.fvecs")
	if err := WriteFvecs(path, vectors); err != nil {
		t.Fatal(err)
	}
	flat, gotDim, err := ReadFvecsFlat(path)
	if err != nil {
		t.Fatal(err)
	}
	if gotDim != dim {
		t.Fatalf("dim = %d, want %d", gotDim, dim)
	}
	if len(flat) != n*dim {
		t.Fatalf("flat length = %d, want %d", len(flat), n*dim)
	}
	rows := Rows(flat, dim)
	for i := range vectors {
		for d := range vectors[i] {
			if rows[i][d] != vectors[i][d] {
				t.Fatalf("vector %d dim %d: %v != %v", i, d, rows[i][d], vectors[i][d])
			}
		}
	}
	// Rows must alias, not copy: mutating the flat array shows through.
	flat[0] = 42
	if rows[0][0] != 42 {
		t.Fatal("Rows must alias the flat matrix")
	}
}

func TestReadFvecsFlatErrors(t *testing.T) {
	if _, _, err := ReadFvecsFlat(filepath.Join(t.TempDir(), "missing.fvecs")); err == nil {
		t.Fatal("missing file must fail")
	}
	dir := t.TempDir()

	// Truncated record: header promises 4 floats, data stops short.
	short := filepath.Join(dir, "short.fvecs")
	if err := os.WriteFile(short, []byte{4, 0, 0, 0, 1, 2, 3}, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadFvecsFlat(short); err == nil {
		t.Fatal("truncated file must fail")
	}

	// Bad dimension.
	bad := filepath.Join(dir, "bad.fvecs")
	if err := os.WriteFile(bad, []byte{0xff, 0xff, 0xff, 0xff}, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadFvecsFlat(bad); err == nil {
		t.Fatal("negative dimension must fail")
	}

	// Mixed dimensions: two records with different headers but sizes
	// that still sum to a multiple of the first record size.
	mixed := filepath.Join(dir, "mixed.fvecs")
	buf := []byte{
		1, 0, 0, 0, 0, 0, 0, 0, // dim 1, one float
		2, 0, 0, 0, 0, 0, 0, 0, // claims dim 2 — mismatch
	}
	if err := os.WriteFile(mixed, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadFvecsFlat(mixed); err == nil {
		t.Fatal("mixed dimensions must fail")
	}

	// Empty file: zero vectors, no error.
	empty := filepath.Join(dir, "empty.fvecs")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	flat, dim, err := ReadFvecsFlat(empty)
	if err != nil || len(flat) != 0 || dim != 0 {
		t.Fatalf("empty file: flat=%v dim=%d err=%v", flat, dim, err)
	}
}

func TestRowsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Rows must panic on a ragged flat length")
		}
	}()
	Rows(make([]float32, 7), 2)
}
