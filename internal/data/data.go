// Package data provides the datasets of the reproduction: seeded
// synthetic generators standing in for the paper's corpora (Table 4),
// query/hold-out handling, exact ground-truth computation, and the
// fvecs/ivecs file formats the original corpora ship in.
//
// Substitution note (see DESIGN.md §3): the paper's datasets are real
// SIFT/GIST/SURF/audio/text features. We generate Gaussian-mixture data
// with the same dimensionality and value domains, integer-quantised where
// the originals are integral (SIFT, Enron). What drives kANN index
// behaviour — dimensionality, metric concentration, clustered structure —
// is preserved; scales are configurable.
package data

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"github.com/hd-index/hdindex/internal/topk"
	"github.com/hd-index/hdindex/internal/vecmath"
)

// Dataset is an in-memory collection of vectors plus its descriptive
// parameters (the domain bounds drive the Hilbert quantiser).
type Dataset struct {
	Name    string
	Dim     int
	Lo, Hi  float32 // value domain, as in Table 4
	Vectors [][]float32
}

// Config parameterises the synthetic generator.
type Config struct {
	Name     string
	N        int     // number of vectors
	Dim      int     // dimensionality ν
	Clusters int     // mixture components; <=0 means max(8, N/2000)
	Spread   float64 // cluster std-dev as a fraction of the domain width (default 0.05)
	Lo, Hi   float32 // value domain
	Integer  bool    // round values to integers (SIFT, Enron)
	Seed     int64
}

// Generate produces a clustered dataset per cfg. The same cfg always
// produces the same data.
func Generate(cfg Config) *Dataset {
	if cfg.N < 0 || cfg.Dim <= 0 || cfg.Hi <= cfg.Lo {
		panic(fmt.Sprintf("data: invalid config %+v", cfg))
	}
	clusters := cfg.Clusters
	if clusters <= 0 {
		clusters = cfg.N / 2000
		if clusters < 8 {
			clusters = 8
		}
	}
	spread := cfg.Spread
	if spread == 0 {
		spread = 0.05
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	width := float64(cfg.Hi) - float64(cfg.Lo)
	sigma := spread * width

	centers := make([][]float64, clusters)
	for c := range centers {
		ctr := make([]float64, cfg.Dim)
		for d := range ctr {
			// Keep centres away from the walls so clusters are not
			// half-clipped.
			ctr[d] = float64(cfg.Lo) + width*(0.15+0.7*rng.Float64())
		}
		centers[c] = ctr
	}

	vecs := make([][]float32, cfg.N)
	for i := range vecs {
		ctr := centers[rng.Intn(clusters)]
		v := make([]float32, cfg.Dim)
		for d := range v {
			x := ctr[d] + rng.NormFloat64()*sigma
			if x < float64(cfg.Lo) {
				x = float64(cfg.Lo)
			}
			if x > float64(cfg.Hi) {
				x = float64(cfg.Hi)
			}
			if cfg.Integer {
				x = float64(int64(x + 0.5))
			}
			v[d] = float32(x)
		}
		vecs[i] = v
	}
	return &Dataset{Name: cfg.Name, Dim: cfg.Dim, Lo: cfg.Lo, Hi: cfg.Hi, Vectors: vecs}
}

// Table 4 stand-ins. n scales the dataset; the paper's sizes are the
// defaults the full-scale harness uses, tests pass much smaller n.

// SIFTLike mirrors the SIFT corpora: 128-d integer features in [0,255].
func SIFTLike(n int, seed int64) *Dataset {
	return Generate(Config{Name: "sift", N: n, Dim: 128, Lo: 0, Hi: 255, Integer: true, Seed: seed})
}

// AudioLike mirrors Audio: 192-d float features in [-1,1].
func AudioLike(n int, seed int64) *Dataset {
	return Generate(Config{Name: "audio", N: n, Dim: 192, Lo: -1, Hi: 1, Seed: seed})
}

// SUNLike mirrors SUN GIST: 512-d float features in [0,1].
func SUNLike(n int, seed int64) *Dataset {
	return Generate(Config{Name: "sun", N: n, Dim: 512, Lo: 0, Hi: 1, Seed: seed})
}

// YorckLike mirrors Yorck SURF: 128-d float features in [-1,1].
func YorckLike(n int, seed int64) *Dataset {
	return Generate(Config{Name: "yorck", N: n, Dim: 128, Lo: -1, Hi: 1, Seed: seed})
}

// EnronLike mirrors Enron bi-grams: 1369-d integer counts. The original
// domain is [0,252429] but heavily skewed; we use a wide integer domain.
func EnronLike(n int, seed int64) *Dataset {
	return Generate(Config{Name: "enron", N: n, Dim: 1369, Lo: 0, Hi: 4096, Integer: true, Spread: 0.02, Seed: seed})
}

// GloveLike mirrors Glove embeddings: 100-d floats in [-10,10].
func GloveLike(n int, seed int64) *Dataset {
	return Generate(Config{Name: "glove", N: n, Dim: 100, Lo: -10, Hi: 10, Seed: seed})
}

// Uniform generates an unclustered dataset — the hard case for locality
// arguments, used by robustness tests.
func Uniform(n, dim int, lo, hi float32, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	vecs := make([][]float32, n)
	for i := range vecs {
		v := make([]float32, dim)
		for d := range v {
			v[d] = lo + (hi-lo)*rng.Float32()
		}
		vecs[i] = v
	}
	return &Dataset{Name: "uniform", Dim: dim, Lo: lo, Hi: hi, Vectors: vecs}
}

// HoldOutQueries removes q random vectors from the dataset and returns
// them as the query set — the paper's protocol for SUN, Yorck, Enron and
// Glove (§5.1, "we reserved ... random data points ... as queries").
func (ds *Dataset) HoldOutQueries(q int, seed int64) [][]float32 {
	if q <= 0 || q >= len(ds.Vectors) {
		panic(fmt.Sprintf("data: cannot hold out %d of %d", q, len(ds.Vectors)))
	}
	rng := rand.New(rand.NewSource(seed))
	idx := rng.Perm(len(ds.Vectors))[:q]
	taken := make(map[int]struct{}, q)
	queries := make([][]float32, 0, q)
	for _, i := range idx {
		taken[i] = struct{}{}
		queries = append(queries, ds.Vectors[i])
	}
	rest := make([][]float32, 0, len(ds.Vectors)-q)
	for i, v := range ds.Vectors {
		if _, ok := taken[i]; !ok {
			rest = append(rest, v)
		}
	}
	ds.Vectors = rest
	return queries
}

// PerturbedQueries returns q copies of random dataset points with small
// Gaussian noise added — queries near but not on the data, mirroring the
// provided query sets of the SIFT and Audio corpora.
func (ds *Dataset) PerturbedQueries(q int, noiseFrac float64, seed int64) [][]float32 {
	rng := rand.New(rand.NewSource(seed))
	sigma := noiseFrac * (float64(ds.Hi) - float64(ds.Lo))
	queries := make([][]float32, q)
	for i := range queries {
		src := ds.Vectors[rng.Intn(len(ds.Vectors))]
		v := make([]float32, ds.Dim)
		for d := range v {
			x := float64(src[d]) + rng.NormFloat64()*sigma
			if x < float64(ds.Lo) {
				x = float64(ds.Lo)
			}
			if x > float64(ds.Hi) {
				x = float64(ds.Hi)
			}
			v[d] = float32(x)
		}
		queries[i] = v
	}
	return queries
}

// GroundTruth computes the exact k nearest neighbours of every query by
// parallel linear scan, returning ranked ids and distances.
func GroundTruth(vectors, queries [][]float32, k int) (ids [][]uint64, dists [][]float64) {
	ids = make([][]uint64, len(queries))
	dists = make([][]float64, len(queries))
	workers := runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	ch := make(chan int, len(queries))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for qi := range ch {
				l := topk.New(k)
				q := queries[qi]
				for id, v := range vectors {
					l.Push(uint64(id), vecmath.DistSq(q, v))
				}
				items := l.Items()
				qids := make([]uint64, len(items))
				qd := make([]float64, len(items))
				for i, it := range items {
					qids[i] = it.ID
					qd[i] = math.Sqrt(it.Dist)
				}
				ids[qi] = qids
				dists[qi] = qd
			}
		}()
	}
	for qi := range queries {
		ch <- qi
	}
	close(ch)
	wg.Wait()
	return ids, dists
}
