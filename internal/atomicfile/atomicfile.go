// Package atomicfile writes small metadata files with crash-safe
// replace semantics. Both the index layouts' commit points use it —
// core's deleted.bin mark file and shard's manifest.json — so the
// write-fsync-rename-dirsync discipline lives in exactly one place.
package atomicfile

import (
	"os"
	"path/filepath"
)

// WriteFile atomically replaces dir/name with data: write to a temp
// file, fsync, rename over the target, then fsync the directory. A
// crash at any point leaves either the old complete file or the new
// complete file, never a torn one. The data fsync matters — without it
// the rename can become durable before the data blocks, surfacing a
// zero-filled file after power loss; the directory fsync matters
// because the rename itself lives in the directory entry, and without
// it a power loss could resurrect the old file after the caller was
// told the write persisted.
func WriteFile(dir, name string, data []byte) error {
	tmp := filepath.Join(dir, name+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, name)); err != nil {
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	if cerr := d.Close(); serr == nil {
		serr = cerr
	}
	return serr
}
