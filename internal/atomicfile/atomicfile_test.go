package atomicfile

import (
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFileReplaces(t *testing.T) {
	dir := t.TempDir()
	if err := WriteFile(dir, "f.bin", []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(dir, "f.bin", []byte("two")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(dir, "f.bin"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "two" {
		t.Fatalf("content = %q", got)
	}
	if _, err := os.Stat(filepath.Join(dir, "f.bin.tmp")); !os.IsNotExist(err) {
		t.Fatal("temp file left behind")
	}
}

func TestWriteFileMissingDir(t *testing.T) {
	if err := WriteFile(filepath.Join(t.TempDir(), "nope"), "f", []byte("x")); err == nil {
		t.Fatal("write into a missing directory must fail")
	}
}
