package slo

import (
	"context"
	"math"
	"sync"
	"time"
)

// Choice is one tuner decision: the operating point it picked, why,
// and when. Alpha/Gamma are duplicated out of Point so callers that
// only want the knobs never reach into the frontier.
type Choice struct {
	Alpha int `json:"alpha"`
	Gamma int `json:"gamma"`
	// Point is the frontier row behind the decision.
	Point Point `json:"point"`
	// SLOUnmet reports an infeasible target: no frontier point
	// satisfies the SLO, so the tuner picked the nearest point (best
	// recall for a recall target, lowest p99 for a latency target) and
	// raised this flag for /stats and /metrics to surface.
	SLOUnmet bool `json:"slo_unmet"`
	// Reason is a short human string for /stats and `hdtool tune`.
	Reason string `json:"reason"`
	// At is when the decision was made.
	At time.Time `json:"at"`
}

// ReplayResult is what one live re-measurement pass at one operating
// point produced: latencies over the replayed sample and the result
// IDs per query (overlap against the widest point's IDs approximates
// recall without brute-force ground truth).
type ReplayResult struct {
	MeanQueryUS float64
	P99QueryUS  float64
	IDs         [][]uint64
}

// ReplayFunc replays sampled queries at an explicit operating point.
// The serving layer provides it (queries against the live index with
// per-query α/γ overrides); the tuner never touches the index itself.
type ReplayFunc func(ctx context.Context, queries [][]float32, k, alpha, gamma int) (ReplayResult, error)

// Config tunes the Tuner. Zero values pick the documented defaults.
type Config struct {
	// Target is the SLO to hold.
	Target Target
	// Interval is how often Run re-evaluates the decision against the
	// current frontier (default 30s).
	Interval time.Duration
	// RemeasureInterval is how often Run replays sampled queries to
	// refresh the frontier (default 10m; 0 keeps the default, negative
	// disables live re-measurement).
	RemeasureInterval time.Duration
	// Hysteresis is the fractional improvement a candidate point must
	// show over the current feasible choice before the tuner switches
	// (default 0.10). It stops the decision flapping between adjacent
	// frontier points whose measurements jitter across re-measurements.
	Hysteresis float64
	// SampleSize bounds the ring buffer of recent real queries kept for
	// replay (default 256).
	SampleSize int
	// K is the neighbour count replayed queries ask for (default 10).
	K int
	// Replay runs a re-measurement pass; nil disables live
	// re-measurement.
	Replay ReplayFunc
	// UnderPressure reports that the server is loaded; re-measurement
	// passes are skipped while it returns true so tuning never competes
	// with real traffic. Nil means never under pressure.
	UnderPressure func() bool
	// EWMA is the blend weight of fresh live measurements into existing
	// frontier latencies/recall (default 0.5; 1 replaces outright).
	EWMA float64
	// HistorySize bounds the retained decision history (default 32).
	HistorySize int
}

func (c *Config) setDefaults() {
	if c.Interval <= 0 {
		c.Interval = 30 * time.Second
	}
	if c.RemeasureInterval == 0 {
		c.RemeasureInterval = 10 * time.Minute
	}
	if c.Hysteresis <= 0 {
		c.Hysteresis = 0.10
	}
	if c.SampleSize <= 0 {
		c.SampleSize = 256
	}
	if c.K <= 0 {
		c.K = 10
	}
	if c.EWMA <= 0 || c.EWMA > 1 {
		c.EWMA = 0.5
	}
	if c.HistorySize <= 0 {
		c.HistorySize = 32
	}
}

// Tuner holds the current frontier and the current decision, and keeps
// both fresh: Reevaluate re-picks against the frontier, Remeasure
// replays sampled real queries across the frontier's grid to refresh
// the frontier itself. Safe for concurrent use.
type Tuner struct {
	cfg Config

	mu       sync.Mutex
	frontier *Frontier
	choice   Choice
	history  []Choice // most recent last
	sample   [][]float32
	sampleAt int // next ring slot
	sampleN  uint64
	remeasN  uint64
	remeasAt time.Time
}

// NewTuner builds a tuner over a validated frontier and makes the
// initial decision immediately, so Current is never empty.
func NewTuner(f *Frontier, cfg Config) (*Tuner, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	cfg.setDefaults()
	t := &Tuner{cfg: cfg, frontier: f}
	t.mu.Lock()
	t.reevaluateLocked(time.Now())
	t.mu.Unlock()
	return t, nil
}

// Target returns the SLO the tuner holds.
func (t *Tuner) Target() Target { return t.cfg.Target }

// Current returns the current decision.
func (t *Tuner) Current() Choice {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.choice
}

// History returns the retained decisions, oldest first, including the
// current one as the last element.
func (t *Tuner) History() []Choice {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Choice, len(t.history))
	copy(out, t.history)
	return out
}

// Frontier returns the current frontier (points copied; callers may
// not mutate the tuner's state through it).
func (t *Tuner) Frontier() Frontier {
	t.mu.Lock()
	defer t.mu.Unlock()
	f := *t.frontier
	f.Points = append([]Point(nil), t.frontier.Points...)
	return f
}

// Record offers one real query vector to the replay sample. The ring
// keeps the most recent SampleSize queries; the vector is copied so
// callers may reuse their buffer.
func (t *Tuner) Record(q []float32) {
	cp := append([]float32(nil), q...)
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.sample) < t.cfg.SampleSize {
		t.sample = append(t.sample, cp)
	} else {
		t.sample[t.sampleAt] = cp
	}
	t.sampleAt = (t.sampleAt + 1) % t.cfg.SampleSize
	t.sampleN++
}

// pickPoint applies the decision rules to a frontier, with no
// hysteresis: for a recall floor, the cheapest (lowest mean latency)
// feasible point, or the best-recall point flagged slo_unmet when none
// is feasible; for a p99 ceiling, the best-recall feasible point, or
// the lowest-p99 point flagged slo_unmet.
func pickPoint(f *Frontier, target Target) (Point, bool) {
	best := -1
	switch target.Kind {
	case TargetRecall:
		for i, p := range f.Points {
			if p.Recall < target.Recall {
				continue
			}
			if best < 0 || p.MeanQueryUS < f.Points[best].MeanQueryUS {
				best = i
			}
		}
		if best >= 0 {
			return f.Points[best], false
		}
		for i := range f.Points {
			if best < 0 || f.Points[i].Recall > f.Points[best].Recall {
				best = i
			}
		}
		return f.Points[best], true
	case TargetP99:
		ceil := float64(target.P99.Microseconds())
		for i, p := range f.Points {
			if p.P99QueryUS > ceil {
				continue
			}
			if best < 0 || p.Recall > f.Points[best].Recall {
				best = i
			}
		}
		if best >= 0 {
			return f.Points[best], false
		}
		for i := range f.Points {
			if best < 0 || f.Points[i].P99QueryUS < f.Points[best].P99QueryUS {
				best = i
			}
		}
		return f.Points[best], true
	}
	return f.Widest(), true
}

// improvement reports how much candidate improves on current along
// the axis the target optimises, as a fraction of current.
func improvement(target Target, current, candidate Point) float64 {
	switch target.Kind {
	case TargetRecall:
		if current.MeanQueryUS <= 0 {
			return 0
		}
		return (current.MeanQueryUS - candidate.MeanQueryUS) / current.MeanQueryUS
	case TargetP99:
		if current.Recall <= 0 {
			return math.Inf(1)
		}
		return (candidate.Recall - current.Recall) / current.Recall
	}
	return 0
}

// feasible reports whether p satisfies the target.
func feasible(target Target, p Point) bool {
	switch target.Kind {
	case TargetRecall:
		return p.Recall >= target.Recall
	case TargetP99:
		return p.P99QueryUS <= float64(target.P99.Microseconds())
	}
	return false
}

// Reevaluate re-picks the operating point against the current frontier
// and returns the (possibly unchanged) decision. The serving layer
// calls it on its timer and after pressure transitions.
func (t *Tuner) Reevaluate() Choice {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.reevaluateLocked(time.Now())
}

func (t *Tuner) reevaluateLocked(now time.Time) Choice {
	cand, unmet := pickPoint(t.frontier, t.cfg.Target)
	cur := t.choice

	// Hysteresis: if the current choice still exists on the frontier
	// and still meets the SLO, stick with it unless the candidate is a
	// real improvement — adjacent points whose measurements jitter by a
	// few percent must not make the knobs flap.
	if !cur.At.IsZero() && !unmet {
		if curPt, ok := t.lookupLocked(cur.Alpha, cur.Gamma); ok && feasible(t.cfg.Target, curPt) {
			samePoint := cand.Alpha == cur.Alpha && cand.Gamma == cur.Gamma
			if !samePoint && improvement(t.cfg.Target, curPt, cand) < t.cfg.Hysteresis {
				cand, unmet = curPt, false
			}
		}
	}

	reason := "cheapest point meeting " + t.cfg.Target.String()
	if unmet {
		reason = "SLO " + t.cfg.Target.String() + " infeasible on current frontier; nearest point"
	}
	if cand.Alpha == cur.Alpha && cand.Gamma == cur.Gamma && unmet == cur.SLOUnmet && !cur.At.IsZero() {
		// Same decision: refresh the backing point but keep history flat.
		t.choice.Point = cand
		return t.choice
	}
	t.choice = Choice{
		Alpha: cand.Alpha, Gamma: cand.Gamma, Point: cand,
		SLOUnmet: unmet, Reason: reason, At: now,
	}
	t.history = append(t.history, t.choice)
	if len(t.history) > t.cfg.HistorySize {
		t.history = t.history[len(t.history)-t.cfg.HistorySize:]
	}
	return t.choice
}

func (t *Tuner) lookupLocked(alpha, gamma int) (Point, bool) {
	for _, p := range t.frontier.Points {
		if p.Alpha == alpha && p.Gamma == gamma {
			return p, true
		}
	}
	return Point{}, false
}

// SetFrontier swaps in a refreshed frontier (validated) and
// immediately re-evaluates against it.
func (t *Tuner) SetFrontier(f *Frontier) error {
	if err := f.Validate(); err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.frontier = f
	t.reevaluateLocked(time.Now())
	return nil
}

// Remeasure replays the sampled real queries across the frontier's
// grid of operating points and refreshes the frontier in place:
// latencies and recall EWMA-blend into the stored values. Recall has
// no brute-force ground truth live, so the widest point's results
// stand in as truth — its own recall is left untouched and every
// narrower point is scored by overlap against it. No-ops (returning
// false) when re-measurement is disabled, no queries are sampled yet,
// or the server is under pressure.
func (t *Tuner) Remeasure(ctx context.Context) (bool, error) {
	if t.cfg.Replay == nil {
		return false, nil
	}
	if t.cfg.UnderPressure != nil && t.cfg.UnderPressure() {
		return false, nil
	}
	t.mu.Lock()
	queries := make([][]float32, len(t.sample))
	copy(queries, t.sample)
	f := *t.frontier
	f.Points = append([]Point(nil), t.frontier.Points...)
	t.mu.Unlock()
	if len(queries) == 0 {
		return false, nil
	}

	wide := f.Widest()
	truth, err := t.cfg.Replay(ctx, queries, t.cfg.K, wide.Alpha, wide.Gamma)
	if err != nil {
		return false, err
	}
	w := t.cfg.EWMA
	for i := range f.Points {
		p := &f.Points[i]
		var res ReplayResult
		if p.Alpha == wide.Alpha && p.Gamma == wide.Gamma {
			res = truth
		} else {
			res, err = t.cfg.Replay(ctx, queries, t.cfg.K, p.Alpha, p.Gamma)
			if err != nil {
				return false, err
			}
			p.Recall = (1-w)*p.Recall + w*overlapRecall(truth.IDs, res.IDs)
		}
		p.MeanQueryUS = (1-w)*p.MeanQueryUS + w*res.MeanQueryUS
		p.P99QueryUS = (1-w)*p.P99QueryUS + w*res.P99QueryUS
		p.Live = true
	}

	t.mu.Lock()
	t.frontier = &f
	t.remeasN++
	t.remeasAt = time.Now()
	t.reevaluateLocked(time.Now())
	t.mu.Unlock()
	return true, nil
}

// overlapRecall scores got against truth: mean fraction of each truth
// result set also present in the corresponding got set.
func overlapRecall(truth, got [][]uint64) float64 {
	if len(truth) == 0 {
		return 0
	}
	var sum float64
	for i := range truth {
		if len(truth[i]) == 0 {
			sum++
			continue
		}
		set := make(map[uint64]struct{}, len(truth[i]))
		for _, id := range truth[i] {
			set[id] = struct{}{}
		}
		hit := 0
		if i < len(got) {
			for _, id := range got[i] {
				if _, ok := set[id]; ok {
					hit++
				}
			}
		}
		sum += float64(hit) / float64(len(truth[i]))
	}
	return sum / float64(len(truth))
}

// Run drives the tuner until ctx is done: re-evaluate every Interval,
// re-measure every RemeasureInterval (skipped under pressure). The
// serving layer runs it in one goroutine.
func (t *Tuner) Run(ctx context.Context) {
	reeval := time.NewTicker(t.cfg.Interval)
	defer reeval.Stop()
	var remeasC <-chan time.Time
	if t.cfg.Replay != nil && t.cfg.RemeasureInterval > 0 {
		rm := time.NewTicker(t.cfg.RemeasureInterval)
		defer rm.Stop()
		remeasC = rm.C
	}
	for {
		select {
		case <-ctx.Done():
			return
		case <-reeval.C:
			t.Reevaluate()
		case <-remeasC:
			// Best-effort: a failed replay (index closing, ctx cancel)
			// leaves the previous frontier standing.
			_, _ = t.Remeasure(ctx)
		}
	}
}

// Stats is the tuner's /stats block.
type Stats struct {
	Target        string   `json:"target"`
	Choice        Choice   `json:"choice"`
	History       []Choice `json:"history,omitempty"`
	FrontierSize  int      `json:"frontier_size"`
	SampledN      uint64   `json:"sampled_queries"`
	Remeasures    uint64   `json:"remeasure_passes"`
	LastRemeasure string   `json:"last_remeasure,omitempty"`
}

// Stats snapshots the tuner for /stats.
func (t *Tuner) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := Stats{
		Target:       t.cfg.Target.String(),
		Choice:       t.choice,
		History:      append([]Choice(nil), t.history...),
		FrontierSize: len(t.frontier.Points),
		SampledN:     t.sampleN,
		Remeasures:   t.remeasN,
	}
	if !t.remeasAt.IsZero() {
		s.LastRemeasure = t.remeasAt.UTC().Format(time.RFC3339)
	}
	return s
}
