// Package slo closes the loop between HD-Index's recall/latency
// frontier and the serving layer. A Frontier holds measured operating
// points (α/γ pairs with their recall and latency), loaded from an
// `hdbench -sweep` artifact at startup and refreshed by live
// re-measurement; a Tuner picks the cheapest point that satisfies an
// SLO target and keeps re-picking as the frontier moves; TierConfig
// maps tenants to named quality presets and admission shares.
package slo

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
)

// ErrBadFrontier reports a frontier artifact that cannot be used: wrong
// format version, no points, or a point with nonsensical fields.
var ErrBadFrontier = errors.New("slo: bad frontier")

// FrontierFormatVersion is bumped when the artifact layout changes
// incompatibly; the loader rejects versions it does not know.
const FrontierFormatVersion = 1

// Point is one measured operating point on the recall/latency
// frontier: the explicit cascade it stands for and what running it
// cost. Points come from `hdbench -sweep` (ground-truth recall against
// brute force) and from live re-measurement (proxy recall against the
// widest grid point, EWMA-blended latencies).
type Point struct {
	// Alpha and Gamma are the explicit per-query overrides this point
	// applies — the same values a request could spell out by hand.
	Alpha int `json:"alpha"`
	Gamma int `json:"gamma"`
	// MeanQueryUS and P99QueryUS are per-query wall latencies in
	// microseconds at this operating point.
	MeanQueryUS float64 `json:"mean_query_us"`
	P99QueryUS  float64 `json:"p99_query_us"`
	// Recall is k-NN recall in [0,1] at this point.
	Recall float64 `json:"recall"`
	// MAP is mean average precision, carried for display only.
	MAP float64 `json:"map,omitempty"`
	// CandidatesPerQuery is the mean refined-candidate count, carried
	// for display only.
	CandidatesPerQuery float64 `json:"candidates_per_query,omitempty"`
	// Live marks a point whose numbers come from live re-measurement
	// rather than an offline sweep.
	Live bool `json:"live,omitempty"`
}

func (p Point) validate() error {
	if p.Alpha < 1 {
		return fmt.Errorf("%w: point alpha must be >= 1, got %d", ErrBadFrontier, p.Alpha)
	}
	if p.Gamma < 1 || p.Gamma > p.Alpha {
		return fmt.Errorf("%w: point gamma=%d must be in [1, alpha=%d]", ErrBadFrontier, p.Gamma, p.Alpha)
	}
	if p.Recall < 0 || p.Recall > 1 {
		return fmt.Errorf("%w: recall %v outside [0,1]", ErrBadFrontier, p.Recall)
	}
	if p.MeanQueryUS < 0 || p.P99QueryUS < 0 {
		return fmt.Errorf("%w: negative latency on point alpha=%d", ErrBadFrontier, p.Alpha)
	}
	return nil
}

// Frontier is a set of measured operating points for one built index,
// kept sorted by ascending α (cost order). It is an immutable value:
// refreshers build a new Frontier and swap it in.
type Frontier struct {
	// FormatVersion pins the artifact layout.
	FormatVersion int `json:"format_version"`
	// Dataset names the dataset the sweep ran on, for display.
	Dataset string `json:"dataset,omitempty"`
	// K is the neighbour count the sweep measured recall at.
	K int `json:"k,omitempty"`
	// Points are the measured operating points, ascending α.
	Points []Point `json:"points"`
}

// Validate checks the frontier is usable and normalises point order.
func (f *Frontier) Validate() error {
	if f.FormatVersion != FrontierFormatVersion {
		return fmt.Errorf("%w: format_version %d (this build reads %d)",
			ErrBadFrontier, f.FormatVersion, FrontierFormatVersion)
	}
	if len(f.Points) == 0 {
		return fmt.Errorf("%w: no points", ErrBadFrontier)
	}
	for _, p := range f.Points {
		if err := p.validate(); err != nil {
			return err
		}
	}
	sort.SliceStable(f.Points, func(i, j int) bool {
		if f.Points[i].Alpha != f.Points[j].Alpha {
			return f.Points[i].Alpha < f.Points[j].Alpha
		}
		return f.Points[i].Gamma < f.Points[j].Gamma
	})
	return nil
}

// Widest returns the highest-cost point — the tuner's recall proxy
// ground truth during live re-measurement. Callers must have a
// validated, non-empty frontier.
func (f *Frontier) Widest() Point { return f.Points[len(f.Points)-1] }

// ReadFrontier loads and validates a frontier artifact written by
// `hdbench -sweep -sweep-out` (or WriteFrontier).
func ReadFrontier(path string) (*Frontier, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("slo: read frontier: %w", err)
	}
	var f Frontier
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFrontier, err)
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return &f, nil
}

// WriteFrontier validates and writes the artifact, replacing path
// atomically so a crashed writer never leaves a torn file for the
// tuner to load.
func WriteFrontier(path string, f *Frontier) error {
	if err := f.Validate(); err != nil {
		return err
	}
	raw, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return fmt.Errorf("slo: encode frontier: %w", err)
	}
	raw = append(raw, '\n')
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return fmt.Errorf("slo: write frontier: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("slo: write frontier: %w", err)
	}
	return nil
}
