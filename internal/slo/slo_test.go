package slo

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// synthetic frontier: four points, recall rising with cost.
func testFrontier() *Frontier {
	return &Frontier{
		FormatVersion: FrontierFormatVersion,
		Dataset:       "synthetic",
		K:             10,
		Points: []Point{
			{Alpha: 64, Gamma: 16, MeanQueryUS: 100, P99QueryUS: 300, Recall: 0.80},
			{Alpha: 128, Gamma: 32, MeanQueryUS: 200, P99QueryUS: 600, Recall: 0.95},
			{Alpha: 256, Gamma: 64, MeanQueryUS: 400, P99QueryUS: 1200, Recall: 0.985},
			{Alpha: 512, Gamma: 128, MeanQueryUS: 800, P99QueryUS: 2400, Recall: 0.999},
		},
	}
}

func mustTarget(t *testing.T, s string) Target {
	t.Helper()
	tg, err := ParseTarget(s)
	if err != nil {
		t.Fatal(err)
	}
	return tg
}

func TestParseTarget(t *testing.T) {
	tg := mustTarget(t, "recall>=0.98")
	if tg.Kind != TargetRecall || tg.Recall != 0.98 {
		t.Fatalf("got %+v", tg)
	}
	tg = mustTarget(t, "p99 <= 2ms")
	if tg.Kind != TargetP99 || tg.P99 != 2*time.Millisecond {
		t.Fatalf("got %+v", tg)
	}
	for _, bad := range []string{"", "recall<=0.9", "p99>=2ms", "recall>=1.5", "recall>=0", "p99<=-1ms", "qps>=100", "recall>=abc"} {
		if _, err := ParseTarget(bad); !errors.Is(err, ErrBadTarget) {
			t.Fatalf("ParseTarget(%q) err = %v, want ErrBadTarget", bad, err)
		}
	}
	// String round-trips through the parser.
	for _, s := range []string{"recall>=0.98", "p99<=2ms"} {
		tg := mustTarget(t, s)
		if _, err := ParseTarget(tg.String()); err != nil {
			t.Fatalf("%q does not re-parse: %v", tg.String(), err)
		}
	}
}

func TestTunerDecisionTable(t *testing.T) {
	cases := []struct {
		target   string
		alpha    int
		slyUnmet bool
	}{
		// Feasible recall floor → cheapest feasible point, not the widest.
		{"recall>=0.98", 256, false},
		{"recall>=0.90", 128, false},
		{"recall>=0.5", 64, false},
		// Infeasible recall floor → best-recall point + slo_unmet.
		{"recall>=0.9999", 512, true},
		// Feasible p99 ceiling → best recall under the ceiling.
		{"p99<=1300us", 256, false},
		{"p99<=10ms", 512, false},
		// Infeasible p99 ceiling → lowest-p99 point + slo_unmet.
		{"p99<=100us", 64, true},
	}
	for _, c := range cases {
		tn, err := NewTuner(testFrontier(), Config{Target: mustTarget(t, c.target)})
		if err != nil {
			t.Fatal(err)
		}
		ch := tn.Current()
		if ch.Alpha != c.alpha || ch.SLOUnmet != c.slyUnmet {
			t.Fatalf("%s: chose alpha=%d unmet=%v, want alpha=%d unmet=%v (%s)",
				c.target, ch.Alpha, ch.SLOUnmet, c.alpha, c.slyUnmet, ch.Reason)
		}
		if ch.Gamma != ch.Point.Gamma || ch.At.IsZero() || ch.Reason == "" {
			t.Fatalf("%s: malformed choice %+v", c.target, ch)
		}
	}
}

func TestTunerHysteresis(t *testing.T) {
	f := testFrontier()
	tn, err := NewTuner(f, Config{Target: mustTarget(t, "recall>=0.98"), Hysteresis: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	if tn.Current().Alpha != 256 {
		t.Fatalf("initial choice alpha=%d", tn.Current().Alpha)
	}

	// A jittered refresh where an adjacent point looks 5% cheaper must
	// NOT flap the choice: the current point still meets the SLO and the
	// win is under the hysteresis margin.
	g := testFrontier()
	g.Points[1].Recall = 0.981 // alpha=128 now "feasible"...
	g.Points[1].MeanQueryUS = 390
	if err := tn.SetFrontier(g); err != nil {
		t.Fatal(err)
	}
	if got := tn.Current().Alpha; got != 256 {
		t.Fatalf("choice flapped to alpha=%d on a 2.5%% win", got)
	}

	// A decisive win (beyond hysteresis) does switch.
	h := testFrontier()
	h.Points[1].Recall = 0.981
	h.Points[1].MeanQueryUS = 200 // 50% cheaper
	if err := tn.SetFrontier(h); err != nil {
		t.Fatal(err)
	}
	if got := tn.Current().Alpha; got != 128 {
		t.Fatalf("choice did not move on a 50%% win, alpha=%d", got)
	}

	// When the current point stops meeting the SLO hysteresis does not
	// hold it: the tuner must move immediately.
	i := testFrontier()
	i.Points[1].Recall = 0.90
	if err := tn.SetFrontier(i); err != nil {
		t.Fatal(err)
	}
	if got := tn.Current().Alpha; got != 256 {
		t.Fatalf("stale infeasible choice retained, alpha=%d", got)
	}

	// History recorded every switch, flat refreshes excluded.
	hist := tn.History()
	if len(hist) != 3 {
		t.Fatalf("history has %d entries, want 3: %+v", len(hist), hist)
	}
	last := hist[len(hist)-1]
	if last.Alpha != tn.Current().Alpha {
		t.Fatalf("history tail %+v != current %+v", last, tn.Current())
	}
}

func TestFrontierGoldenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "frontier.json")
	f := testFrontier()
	f.Points[0].MAP = 0.77
	f.Points[0].CandidatesPerQuery = 123.5
	if err := WriteFrontier(path, f); err != nil {
		t.Fatal(err)
	}
	g, err := ReadFrontier(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.FormatVersion != FrontierFormatVersion || g.Dataset != f.Dataset || g.K != f.K {
		t.Fatalf("header mangled: %+v", g)
	}
	if len(g.Points) != len(f.Points) {
		t.Fatalf("point count %d != %d", len(g.Points), len(f.Points))
	}
	for i := range f.Points {
		if g.Points[i] != f.Points[i] {
			t.Fatalf("point %d mangled: %+v != %+v", i, g.Points[i], f.Points[i])
		}
	}
	// No torn temp file left behind.
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind: %v", err)
	}
}

func TestFrontierRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "frontier.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFrontier(path); !errors.Is(err, ErrBadFrontier) {
		t.Fatalf("garbage file err = %v", err)
	}
	bad := []*Frontier{
		{FormatVersion: 99, Points: []Point{{Alpha: 64, Gamma: 16}}},
		{FormatVersion: FrontierFormatVersion},
		{FormatVersion: FrontierFormatVersion, Points: []Point{{Alpha: 0, Gamma: 0}}},
		{FormatVersion: FrontierFormatVersion, Points: []Point{{Alpha: 16, Gamma: 64, Recall: 0.5}}},
		{FormatVersion: FrontierFormatVersion, Points: []Point{{Alpha: 64, Gamma: 16, Recall: 1.5}}},
	}
	for i, f := range bad {
		if err := f.Validate(); !errors.Is(err, ErrBadFrontier) {
			t.Fatalf("bad frontier %d validated: %v", i, err)
		}
	}
	// Validate sorts points into cost order.
	f := &Frontier{FormatVersion: FrontierFormatVersion, Points: []Point{
		{Alpha: 512, Gamma: 128, Recall: 0.99},
		{Alpha: 64, Gamma: 16, Recall: 0.8},
	}}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	if f.Points[0].Alpha != 64 || f.Widest().Alpha != 512 {
		t.Fatalf("points not sorted: %+v", f.Points)
	}
}

func TestTunerRemeasure(t *testing.T) {
	// Replay stub: the widest point returns truth IDs {1..k}; alpha=64
	// misses half of them; latencies come back doubled so the EWMA
	// blend is observable.
	replayed := map[int]int{}
	replay := func(_ context.Context, queries [][]float32, k, alpha, gamma int) (ReplayResult, error) {
		replayed[alpha]++
		ids := make([][]uint64, len(queries))
		for i := range ids {
			n := k
			if alpha == 64 {
				n = k / 2
			}
			for id := 1; id <= n; id++ {
				ids[i] = append(ids[i], uint64(id))
			}
		}
		return ReplayResult{MeanQueryUS: float64(alpha) * 2, P99QueryUS: float64(alpha) * 6, IDs: ids}, nil
	}
	tn, err := NewTuner(testFrontier(), Config{
		Target: mustTarget(t, "recall>=0.98"),
		Replay: replay,
		EWMA:   0.5,
		K:      10,
	})
	if err != nil {
		t.Fatal(err)
	}

	// No sampled queries yet → no-op.
	ran, err := tn.Remeasure(context.Background())
	if err != nil || ran {
		t.Fatalf("remeasure with empty sample ran=%v err=%v", ran, err)
	}
	for i := 0; i < 5; i++ {
		tn.Record([]float32{float32(i), 1, 2})
	}

	// Under pressure → skipped.
	pressed := true
	tn.cfg.UnderPressure = func() bool { return pressed }
	ran, err = tn.Remeasure(context.Background())
	if err != nil || ran {
		t.Fatalf("remeasure under pressure ran=%v err=%v", ran, err)
	}
	pressed = false

	ran, err = tn.Remeasure(context.Background())
	if err != nil || !ran {
		t.Fatalf("remeasure ran=%v err=%v", ran, err)
	}
	f := tn.Frontier()
	for _, p := range f.Points {
		if !p.Live {
			t.Fatalf("point %+v not marked live", p)
		}
	}
	// alpha=64: stored recall 0.80 blended with measured overlap 0.5 → 0.65.
	if got := f.Points[0].Recall; got < 0.64 || got > 0.66 {
		t.Fatalf("alpha=64 blended recall = %v, want ~0.65", got)
	}
	// widest point's recall is the proxy truth — untouched.
	if got := f.Widest().Recall; got != 0.999 {
		t.Fatalf("widest recall rewritten to %v", got)
	}
	// latency blended: stored 100 with measured 128 → 114.
	if got := f.Points[0].MeanQueryUS; got != 114 {
		t.Fatalf("alpha=64 blended mean = %v, want 114", got)
	}
	if replayed[512] != 1 || replayed[64] != 1 {
		t.Fatalf("replay counts: %+v", replayed)
	}
	if s := tn.Stats(); s.Remeasures != 1 || s.SampledN != 5 || s.LastRemeasure == "" {
		t.Fatalf("stats %+v", s)
	}
}

func TestTierConfig(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tiers.json")
	cfgJSON := `{
  "default_tier": "standard",
  "tiers": {
    "premium":  {"preset": "exact", "rps_share": 1.0, "burst_share": 1.0, "max_inflight_share": 0.5},
    "standard": {"preset": "auto", "rps_share": 0.5, "burst_share": 0.5},
    "batch":    {"preset": "fast", "rps_share": 0.1, "burst_share": 0.2, "max_inflight_share": 0.1}
  },
  "tenants": {"acme": "premium", "crawler": "batch"}
}`
	if err := os.WriteFile(path, []byte(cfgJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := ReadTierConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	name, tier, ok := c.TierFor("acme")
	if !ok || name != "premium" || tier.Preset != "exact" {
		t.Fatalf("acme resolved to %q %+v %v", name, tier, ok)
	}
	name, _, ok = c.TierFor("unknown-tenant")
	if !ok || name != "standard" {
		t.Fatalf("unknown tenant resolved to %q %v", name, ok)
	}
	if got := c.PresetFor("crawler"); got != "fast" {
		t.Fatalf("crawler preset %q", got)
	}
	if got := c.PresetFor(""); got != "auto" {
		t.Fatalf("headerless preset %q", got)
	}

	bad := []string{
		`{"tiers": {}}`,
		`{"tiers": {"a": {"preset": "warp"}}}`,
		`{"tiers": {"a": {"preset": "fast", "rps_share": 2}}}`,
		`{"default_tier": "missing", "tiers": {"a": {"preset": "fast"}}}`,
		`{"tiers": {"a": {"preset": "fast"}}, "tenants": {"x": "missing"}}`,
	}
	for i, j := range bad {
		if err := os.WriteFile(path, []byte(j), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadTierConfig(path); !errors.Is(err, ErrBadTiers) {
			t.Fatalf("bad config %d accepted: %v", i, err)
		}
	}
	// nil config falls through safely.
	var nilCfg *TierConfig
	if _, _, ok := nilCfg.TierFor("x"); ok {
		t.Fatal("nil config produced a tier")
	}
}
