package slo

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ErrBadTarget reports an SLO target string that does not parse.
var ErrBadTarget = errors.New("slo: bad target")

// TargetKind says which axis of the frontier the SLO constrains.
type TargetKind int

// Target kinds.
const (
	// TargetRecall holds recall at or above a floor and minimises
	// latency: `recall>=0.98`.
	TargetRecall TargetKind = iota
	// TargetP99 holds p99 latency at or below a ceiling and maximises
	// recall: `p99<=2ms`.
	TargetP99
)

// Target is a parsed SLO: one constrained axis and its bound.
type Target struct {
	Kind TargetKind
	// Recall is the floor when Kind is TargetRecall.
	Recall float64
	// P99 is the ceiling when Kind is TargetP99.
	P99 time.Duration
}

// String renders the target the way ParseTarget accepts it.
func (t Target) String() string {
	switch t.Kind {
	case TargetRecall:
		return fmt.Sprintf("recall>=%g", t.Recall)
	case TargetP99:
		return fmt.Sprintf("p99<=%s", t.P99)
	}
	return "?"
}

// ParseTarget parses the `-slo` flag syntax: `recall>=0.98` or
// `p99<=2ms` (any duration Go parses; spaces around the operator are
// tolerated). The operator direction is part of the grammar — a recall
// target is always a floor, a p99 target always a ceiling — so the
// "wrong" operator is rejected rather than silently flipped.
func ParseTarget(s string) (Target, error) {
	compact := strings.ReplaceAll(s, " ", "")
	switch {
	case strings.HasPrefix(compact, "recall>="):
		v, err := strconv.ParseFloat(compact[len("recall>="):], 64)
		if err != nil {
			return Target{}, fmt.Errorf("%w: recall bound %q: %v", ErrBadTarget, s, err)
		}
		if v <= 0 || v > 1 {
			return Target{}, fmt.Errorf("%w: recall bound %v outside (0,1]", ErrBadTarget, v)
		}
		return Target{Kind: TargetRecall, Recall: v}, nil
	case strings.HasPrefix(compact, "p99<="):
		d, err := time.ParseDuration(compact[len("p99<="):])
		if err != nil {
			return Target{}, fmt.Errorf("%w: p99 bound %q: %v", ErrBadTarget, s, err)
		}
		if d <= 0 {
			return Target{}, fmt.Errorf("%w: p99 bound must be positive, got %s", ErrBadTarget, d)
		}
		return Target{Kind: TargetP99, P99: d}, nil
	}
	return Target{}, fmt.Errorf("%w: %q (want recall>=FLOAT or p99<=DURATION)", ErrBadTarget, s)
}
