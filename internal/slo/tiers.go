package slo

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"github.com/hd-index/hdindex/internal/core"
)

// ErrBadTiers reports a tier config file that does not validate.
var ErrBadTiers = errors.New("slo: bad tier config")

// Tier names a quality-of-service class: the preset its tenants run
// and the slice of the admission budget they get. Shares are fractions
// of the server's base admission knobs, so one abusive tenant in a
// small tier cannot starve the pool and a premium tier keeps headroom.
type Tier struct {
	// Preset is the quality preset the tier's tenants default to
	// (requests may still pick their own). "auto" follows the tuner.
	Preset string `json:"preset"`
	// RPSShare scales the base per-tenant refill rate (0 = inherit the
	// base unchanged). 0.5 on a base of 200 rps gives 100 rps.
	RPSShare float64 `json:"rps_share,omitempty"`
	// BurstShare scales the base per-tenant burst the same way.
	BurstShare float64 `json:"burst_share,omitempty"`
	// MaxInflightShare caps the tier's tenants at this fraction of the
	// server's total inflight+queued capacity (0 = no per-tenant cap).
	MaxInflightShare float64 `json:"max_inflight_share,omitempty"`
}

// TierConfig maps X-Tenant values to tiers. It is the JSON layout of
// the `-tiers` config file.
type TierConfig struct {
	// DefaultTier is the tier for tenants not listed in Tenants, and
	// for requests with no X-Tenant header. Empty means such tenants
	// get no tier treatment (server default preset, base admission).
	DefaultTier string `json:"default_tier,omitempty"`
	// Tiers defines the classes by name.
	Tiers map[string]Tier `json:"tiers"`
	// Tenants maps an X-Tenant value to a tier name.
	Tenants map[string]string `json:"tenants,omitempty"`
}

// Validate checks tier references, presets, and share ranges.
func (c *TierConfig) Validate() error {
	if len(c.Tiers) == 0 {
		return fmt.Errorf("%w: no tiers defined", ErrBadTiers)
	}
	for name, tier := range c.Tiers {
		if tier.Preset != "" {
			if _, err := core.ParsePreset(tier.Preset); err != nil {
				return fmt.Errorf("%w: tier %q: %v", ErrBadTiers, name, err)
			}
		}
		for _, s := range []struct {
			field string
			v     float64
		}{{"rps_share", tier.RPSShare}, {"burst_share", tier.BurstShare}, {"max_inflight_share", tier.MaxInflightShare}} {
			if s.v < 0 || s.v > 1 {
				return fmt.Errorf("%w: tier %q: %s %v outside [0,1]", ErrBadTiers, name, s.field, s.v)
			}
		}
	}
	if c.DefaultTier != "" {
		if _, ok := c.Tiers[c.DefaultTier]; !ok {
			return fmt.Errorf("%w: default_tier %q not defined", ErrBadTiers, c.DefaultTier)
		}
	}
	for tenant, tier := range c.Tenants {
		if _, ok := c.Tiers[tier]; !ok {
			return fmt.Errorf("%w: tenant %q maps to undefined tier %q", ErrBadTiers, tenant, tier)
		}
	}
	return nil
}

// ReadTierConfig loads and validates the `-tiers` file.
func ReadTierConfig(path string) (*TierConfig, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("slo: read tier config: %w", err)
	}
	var c TierConfig
	if err := json.Unmarshal(raw, &c); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTiers, err)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// TierFor resolves a tenant (the X-Tenant header value, possibly
// empty) to its tier. The second return is false when the tenant falls
// through to no tier at all.
func (c *TierConfig) TierFor(tenant string) (string, Tier, bool) {
	if c == nil {
		return "", Tier{}, false
	}
	if name, ok := c.Tenants[tenant]; ok {
		return name, c.Tiers[name], true
	}
	if c.DefaultTier != "" {
		return c.DefaultTier, c.Tiers[c.DefaultTier], true
	}
	return "", Tier{}, false
}

// PresetFor resolves a tenant straight to its tier preset; empty when
// the tenant has no tier or the tier names no preset.
func (c *TierConfig) PresetFor(tenant string) string {
	if _, tier, ok := c.TierFor(tenant); ok {
		return tier.Preset
	}
	return ""
}
