// Package radix sorts permutations of fixed-width byte keys held in a
// flat arena — the shape the HD-Index build path produces: one
// n×KeyLen allocation of Hilbert keys per RDB-tree, written in object-id
// order, never moved afterwards.
//
// Sorting a []uint32 permutation instead of records keeps the moved
// element 4 bytes wide regardless of key width, and an MSD radix sort
// over the fixed-width big-endian keys replaces the comparison sort's
// O(n log n) key comparisons (each a byte-wise loop through up to
// KeyLen bytes) with one counting pass per distinguishing byte. Both
// properties matter at million-scale bulk load, where the sort is the
// serial phase of every tree build.
package radix

import "sort"

// msdCutoff is the bucket size below which the MSD recursion hands off
// to a binary-insertion sort on the remaining key suffix. Counting 256
// buckets costs more than it saves on tiny ranges.
const msdCutoff = 48

// Sort reorders perm so that the keys it indexes are in non-decreasing
// big-endian order. keys is a flat arena of len(perm) rows of width
// bytes each: row r occupies keys[r*width : (r+1)*width], and perm holds
// row numbers. The sort is stable: rows with equal keys keep their
// relative perm order, so an identity input permutation yields
// deterministic id-ascending tie order — what the build determinism
// tests pin down.
//
// width == 0 (every key equal) and len(perm) < 2 are no-ops. Sort
// allocates one len(perm) scratch slice; use SortWithScratch to reuse
// one across calls.
func Sort(keys []byte, width int, perm []uint32) {
	SortWithScratch(keys, width, perm, nil)
}

// SortWithScratch is Sort with a caller-provided scratch buffer; it is
// grown if cap(scratch) < len(perm). Passing the same buffer across the
// τ per-tree sorts of a build leaves one allocation total.
func SortWithScratch(keys []byte, width int, perm []uint32, scratch []uint32) {
	if len(perm) < 2 || width == 0 {
		return
	}
	if cap(scratch) < len(perm) {
		scratch = make([]uint32, len(perm))
	}
	scratch = scratch[:len(perm)]
	msdSort(keys, width, perm, scratch, 0)
}

// msdSort sorts perm by key bytes from depth onward. scratch has the
// same length as perm.
func msdSort(keys []byte, width int, perm, scratch []uint32, depth int) {
	for {
		if len(perm) <= msdCutoff {
			insertionSort(keys, width, perm, depth)
			return
		}
		if depth == width {
			return // all bytes consumed: keys equal, stability keeps order
		}
		// Stable counting sort on byte `depth`.
		var count [256]int
		for _, r := range perm {
			count[keys[int(r)*width+depth]]++
		}
		// Tail-call shortcut: every key shares this byte.
		if count[keys[int(perm[0])*width+depth]] == len(perm) {
			depth++
			continue
		}
		var offs [256]int
		sum := 0
		for b := 0; b < 256; b++ {
			offs[b] = sum
			sum += count[b]
		}
		pos := offs
		for _, r := range perm {
			b := keys[int(r)*width+depth]
			scratch[pos[b]] = r
			pos[b]++
		}
		copy(perm, scratch)
		// Recurse into each bucket on the next byte. The largest bucket
		// is handled by the loop itself, bounding recursion depth at
		// O(width · log₂₅₆ n) in the worst case.
		if depth+1 == width {
			return
		}
		max := 0
		for b := 0; b < 256; b++ {
			if count[b] > count[max] {
				max = b
			}
		}
		for b := 0; b < 256; b++ {
			if b != max && count[b] > 1 {
				msdSort(keys, width, perm[offs[b]:offs[b]+count[b]], scratch[offs[b]:offs[b]+count[b]], depth+1)
			}
		}
		if count[max] < 2 {
			return
		}
		perm = perm[offs[max] : offs[max]+count[max]]
		scratch = scratch[offs[max] : offs[max]+count[max]]
		depth++
	}
}

// insertionSort sorts perm by the key suffix from depth onward, stable:
// an element moves left only past strictly greater keys, so equal keys
// keep their input order.
func insertionSort(keys []byte, width int, perm []uint32, depth int) {
	suffix := func(r uint32) []byte {
		off := int(r) * width
		return keys[off+depth : off+width]
	}
	for i := 1; i < len(perm); i++ {
		r := perm[i]
		k := suffix(r)
		// Binary search for the first position with a strictly greater
		// suffix; shifting the tail right keeps the sort stable.
		j := sort.Search(i, func(p int) bool {
			return compare(suffix(perm[p]), k) > 0
		})
		copy(perm[j+1:i+1], perm[j:i])
		perm[j] = r
	}
}

// compare is bytes.Compare specialised to equal-length slices (the only
// shape the arena produces); inlined here to keep the hot loop free of
// the generic length handling.
func compare(a, b []byte) int {
	for i := range a {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	return 0
}
