package radix

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
)

// refSort is the comparison-sort oracle: stable sort of the identity
// permutation by key, the exact semantics Sort promises.
func refSort(keys []byte, width int, n int) []uint32 {
	perm := make([]uint32, n)
	for i := range perm {
		perm[i] = uint32(i)
	}
	sort.SliceStable(perm, func(i, j int) bool {
		a := keys[int(perm[i])*width : int(perm[i])*width+width]
		b := keys[int(perm[j])*width : int(perm[j])*width+width]
		return bytes.Compare(a, b) < 0
	})
	return perm
}

func identity(n int) []uint32 {
	perm := make([]uint32, n)
	for i := range perm {
		perm[i] = uint32(i)
	}
	return perm
}

func checkAgainstRef(t *testing.T, keys []byte, width, n int) {
	t.Helper()
	got := identity(n)
	Sort(keys, width, got)
	want := refSort(keys, width, n)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("width=%d n=%d: perm[%d] = %d, want %d (stable order violated)", width, n, i, got[i], want[i])
		}
	}
}

func TestSortMatchesStableReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, width := range []int{1, 2, 7, 16, 32} {
		for _, n := range []int{0, 1, 2, 3, msdCutoff, msdCutoff + 1, 500, 4096} {
			keys := make([]byte, n*width)
			rng.Read(keys)
			checkAgainstRef(t, keys, width, n)
		}
	}
}

func TestSortHeavyDuplicates(t *testing.T) {
	// Few distinct values per byte forces deep recursion and exercises
	// the all-equal tail-call shortcut and the stability of ties.
	rng := rand.New(rand.NewSource(2))
	const width, n = 16, 3000
	keys := make([]byte, n*width)
	for i := range keys {
		keys[i] = byte(rng.Intn(2)) // only 0x00/0x01 bytes
	}
	checkAgainstRef(t, keys, width, n)
}

func TestSortAllEqual(t *testing.T) {
	const width, n = 8, 1000
	keys := make([]byte, n*width)
	perm := identity(n)
	Sort(keys, width, perm)
	for i := range perm {
		if perm[i] != uint32(i) {
			t.Fatalf("equal keys must keep input order: perm[%d] = %d", i, perm[i])
		}
	}
}

func TestSortAlreadySortedAndReversed(t *testing.T) {
	const width, n = 4, 2000
	keys := make([]byte, n*width)
	for i := 0; i < n; i++ {
		keys[i*width+2] = byte(i >> 8)
		keys[i*width+3] = byte(i)
	}
	checkAgainstRef(t, keys, width, n)

	perm := make([]uint32, n)
	for i := range perm {
		perm[i] = uint32(n - 1 - i)
	}
	Sort(keys, width, perm)
	for i := range perm {
		if perm[i] != uint32(i) {
			t.Fatalf("reversed input: perm[%d] = %d", i, perm[i])
		}
	}
}

func TestSortZeroWidth(t *testing.T) {
	perm := identity(100)
	Sort(nil, 0, perm) // must not touch perm or panic
	for i := range perm {
		if perm[i] != uint32(i) {
			t.Fatalf("zero width must be a no-op")
		}
	}
}

func TestSortWithScratchReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	scratch := make([]uint32, 0, 512)
	for round := 0; round < 5; round++ {
		width := 1 + rng.Intn(20)
		n := rng.Intn(512)
		keys := make([]byte, n*width)
		rng.Read(keys)
		got := identity(n)
		SortWithScratch(keys, width, got, scratch)
		want := refSort(keys, width, n)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("round %d: perm[%d] = %d, want %d", round, i, got[i], want[i])
			}
		}
	}
}

// FuzzSort cross-checks the radix sort against sort.SliceStable on
// arbitrary arenas; the width is derived from the data so the corpus
// explores many geometries.
func FuzzSort(f *testing.F) {
	f.Add([]byte{3, 1, 2, 0}, uint8(1))
	f.Add([]byte{0xff, 0x00, 0x00, 0xff, 0x00, 0xff}, uint8(2))
	f.Add(make([]byte, 64), uint8(16))
	f.Fuzz(func(t *testing.T, data []byte, w uint8) {
		width := int(w)%32 + 1
		n := len(data) / width
		if n > 1<<12 {
			n = 1 << 12
		}
		keys := data[:n*width]
		got := identity(n)
		Sort(keys, width, got)
		want := refSort(keys, width, n)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("width=%d n=%d: perm[%d] = %d, want %d", width, n, i, got[i], want[i])
			}
		}
	})
}

func BenchmarkSort(b *testing.B) {
	const width, n = 16, 10000
	keys := make([]byte, n*width)
	rand.New(rand.NewSource(4)).Read(keys)
	perm := make([]uint32, n)
	scratch := make([]uint32, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range perm {
			perm[j] = uint32(j)
		}
		SortWithScratch(keys, width, perm, scratch)
	}
}

func BenchmarkSortSliceReference(b *testing.B) {
	const width, n = 16, 10000
	keys := make([]byte, n*width)
	rand.New(rand.NewSource(4)).Read(keys)
	perm := make([]uint32, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range perm {
			perm[j] = uint32(j)
		}
		sort.Slice(perm, func(x, y int) bool {
			a := keys[int(perm[x])*width : int(perm[x])*width+width]
			c := keys[int(perm[y])*width : int(perm[y])*width+width]
			return bytes.Compare(a, c) < 0
		})
	}
}
