package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestMetricsExposition drives real traffic through every endpoint,
// scrapes GET /metrics, and runs the exposition through the
// promlint-style checker: the output must parse cleanly and the
// families the dashboards depend on must be present with live counts.
func TestMetricsExposition(t *testing.T) {
	ts, idx, ds := newTestServer(t, Config{QueryTimeout: 10 * time.Second})
	queries := ds.PerturbedQueries(4, 0.02, 11)
	dim := idx.Dim()

	post := func(path string, body any) {
		t.Helper()
		buf, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(buf))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			b, _ := io.ReadAll(resp.Body)
			t.Fatalf("POST %s: %d %s", path, resp.StatusCode, b)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
	}

	for _, q := range queries {
		post("/search", searchRequest{Query: q, K: 10})
	}
	post("/searchbatch", searchBatchRequest{Queries: [][]float32{queries[0], queries[1]}, K: 5})
	vec := make([]float32, dim)
	for d := range vec {
		vec[d] = 0.25
	}
	post("/insert", insertRequest{Vector: vec})
	if _, err := http.Get(ts.URL + "/stats"); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") || !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q, want text exposition 0.0.4", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	fams := parsePromText(t, string(body))

	// Required families with live traffic behind them.
	if v, ok := fams.sampleValue("hdindex_http_requests_total", map[string]string{"endpoint": "search"}); !ok || v < float64(len(queries)) {
		t.Errorf("search requests_total = %v (ok=%v), want >= %d", v, ok, len(queries))
	}
	if v, ok := fams.sampleValue("hdindex_http_request_duration_seconds_count", map[string]string{"endpoint": "search"}); !ok || v < float64(len(queries)) {
		t.Errorf("search duration count = %v (ok=%v), want >= %d", v, ok, len(queries))
	}
	if v, ok := fams.sampleValue("hdindex_op_duration_seconds_count", map[string]string{"op": "query"}); !ok || v == 0 {
		t.Errorf("op=query count = %v (ok=%v), want > 0", v, ok)
	}
	if v, ok := fams.sampleValue("hdindex_op_duration_seconds_count", map[string]string{"op": "insert"}); !ok || v == 0 {
		t.Errorf("op=insert count = %v (ok=%v), want > 0", v, ok)
	}
	if v, ok := fams.sampleValue("hdindex_query_phase_duration_seconds_count", map[string]string{"phase": "tree_walk"}); !ok || v == 0 {
		t.Errorf("phase=tree_walk count = %v (ok=%v), want > 0", v, ok)
	}
	for _, name := range []string{
		"hdindex_pool_reads_total",
		"hdindex_memtable_vectors",
		"hdindex_wal_records",
		"hdindex_wal_syncs_total",
		"hdindex_index_vectors",
		"hdindex_index_shards",
		"hdindex_index_size_bytes",
		"hdindex_uptime_seconds",
	} {
		if _, ok := fams.sampleValue(name, nil); !ok {
			t.Errorf("missing sample %s", name)
		}
	}

	// One insert happened, so the memtable must be non-empty.
	if v, ok := fams.sampleValue("hdindex_memtable_vectors", nil); !ok || v < 1 {
		t.Errorf("memtable_vectors = %v (ok=%v), want >= 1", v, ok)
	}
	if v, ok := fams.sampleValue("hdindex_index_vectors", nil); !ok || v == 0 {
		t.Errorf("index_vectors = %v (ok=%v), want > 0", v, ok)
	}
}
