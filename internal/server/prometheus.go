package server

import (
	"bufio"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"github.com/hd-index/hdindex/internal/telemetry"
)

// handleMetrics serves GET /metrics in the Prometheus text exposition
// format (version 0.0.4), hand-written: the repo takes no dependency on
// a client library, and the format is a few framing rules — # HELP and
// # TYPE per family, one sample per line, histograms as cumulative
// le-labelled buckets closed by +Inf plus _sum and _count.
//
// Latency histograms are exposed in seconds (the Prometheus base unit)
// at the native log-bucket boundaries, emitting only non-empty buckets:
// boundaries are data-dependent but always strictly increasing, which
// every histogram consumer (histogram_quantile included) accepts.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	bw := bufio.NewWriter(w)
	defer bw.Flush()

	endpoints := s.endpointsInOrder()

	// Per-endpoint request/error counters and latency histograms.
	writeHeader(bw, "hdindex_http_requests_total", "counter",
		"Requests handled, by endpoint.")
	snaps := make([]telemetry.Snapshot, len(endpoints))
	for i, ep := range endpoints {
		snaps[i] = ep.m.hist.Snapshot()
		fmt.Fprintf(bw, "hdindex_http_requests_total{endpoint=%q} %d\n", ep.name, snaps[i].Count)
	}
	writeHeader(bw, "hdindex_http_request_errors_total", "counter",
		"Requests that returned an error, by endpoint.")
	for _, ep := range endpoints {
		fmt.Fprintf(bw, "hdindex_http_request_errors_total{endpoint=%q} %d\n", ep.name, ep.m.errors.Load())
	}
	writeHeader(bw, "hdindex_http_request_duration_seconds", "histogram",
		"Request wall time, by endpoint.")
	for i, ep := range endpoints {
		writeHistogram(bw, "hdindex_http_request_duration_seconds",
			fmt.Sprintf("endpoint=%q", ep.name), snaps[i])
	}

	// Index operation histograms (queries per shard-level operation,
	// inserts, compactions, WAL fsyncs) and the per-phase breakdown.
	tel := s.idx.Telemetry()
	writeHeader(bw, "hdindex_op_duration_seconds", "histogram",
		"Index operation wall time, by operation.")
	for _, op := range []struct {
		name string
		snap telemetry.Snapshot
	}{
		{"query", tel.Query},
		{"insert", tel.Insert},
		{"compaction", tel.Compaction},
		{"wal_sync", tel.WALSync},
	} {
		writeHistogram(bw, "hdindex_op_duration_seconds", fmt.Sprintf("op=%q", op.name), op.snap)
	}
	writeHeader(bw, "hdindex_query_phase_duration_seconds", "histogram",
		"Per-query pipeline phase wall time, by phase.")
	for i := range tel.Phase {
		writeHistogram(bw, "hdindex_query_phase_duration_seconds",
			fmt.Sprintf("phase=%q", telemetry.Phase(i)), tel.Phase[i])
	}

	// Buffer pool, WAL/memtable/compaction, and index gauges.
	io := s.idx.IOStats()
	writeHeader(bw, "hdindex_pool_reads_total", "counter", "Buffer-pool page reads.")
	fmt.Fprintf(bw, "hdindex_pool_reads_total %d\n", io.Reads)
	writeHeader(bw, "hdindex_pool_writes_total", "counter", "Buffer-pool page writes.")
	fmt.Fprintf(bw, "hdindex_pool_writes_total %d\n", io.Writes)
	writeHeader(bw, "hdindex_pool_hits_total", "counter", "Buffer-pool page hits.")
	fmt.Fprintf(bw, "hdindex_pool_hits_total %d\n", io.Hits)
	writeHeader(bw, "hdindex_pool_misses_total", "counter", "Buffer-pool page misses.")
	fmt.Fprintf(bw, "hdindex_pool_misses_total %d\n", io.Misses)

	ist := s.idx.IngestStats()
	writeHeader(bw, "hdindex_memtable_vectors", "gauge",
		"Acknowledged inserts not yet compacted into the trees.")
	fmt.Fprintf(bw, "hdindex_memtable_vectors %d\n", ist.MemtableVectors)
	writeHeader(bw, "hdindex_wal_bytes", "gauge", "Current write-ahead-log file size.")
	fmt.Fprintf(bw, "hdindex_wal_bytes %d\n", ist.WALBytes)
	writeHeader(bw, "hdindex_wal_records", "gauge", "Records in the write-ahead log.")
	fmt.Fprintf(bw, "hdindex_wal_records %d\n", ist.WALRecords)
	writeHeader(bw, "hdindex_wal_syncs_total", "counter", "WAL fsyncs since open.")
	fmt.Fprintf(bw, "hdindex_wal_syncs_total %d\n", ist.WALSyncs)
	writeHeader(bw, "hdindex_wal_replayed_records", "gauge",
		"WAL records replayed at open (>0 means crash recovery).")
	fmt.Fprintf(bw, "hdindex_wal_replayed_records %d\n", ist.Replayed)
	writeHeader(bw, "hdindex_compactions_total", "counter",
		"Completed memtable compactions since open.")
	fmt.Fprintf(bw, "hdindex_compactions_total %d\n", ist.Compactions)

	// Failure containment: the WAL poison flag, compaction failures, and
	// the compaction circuit breaker (1 = open: retries backing off, old
	// tree generation still serving).
	writeHeader(bw, "hdindex_wal_failed", "gauge",
		"1 when the write-ahead log failed and the index is read-only.")
	fmt.Fprintf(bw, "hdindex_wal_failed %d\n", boolGauge(ist.WALFailed))
	writeHeader(bw, "hdindex_compact_failures_total", "counter",
		"Compaction attempts that failed since open.")
	fmt.Fprintf(bw, "hdindex_compact_failures_total %d\n", ist.CompactFailures)
	writeHeader(bw, "hdindex_compact_breaker_open", "gauge",
		"1 while the compaction circuit breaker is open.")
	fmt.Fprintf(bw, "hdindex_compact_breaker_open %d\n", boolGauge(ist.CompactBreaker == "open"))

	// Admission control: zero-valued when the overload layer is off, so
	// dashboards keep a stable shape either way.
	adm := s.adm.Stats()
	writeHeader(bw, "hdindex_admission_accepted_total", "counter",
		"Requests admitted past the overload controller.")
	fmt.Fprintf(bw, "hdindex_admission_accepted_total %d\n", adm.Accepted)
	writeHeader(bw, "hdindex_admission_shed_total", "counter",
		"Requests shed before doing work, by reason.")
	fmt.Fprintf(bw, "hdindex_admission_shed_total{reason=\"overload\"} %d\n", adm.ShedOverload)
	fmt.Fprintf(bw, "hdindex_admission_shed_total{reason=\"tenant\"} %d\n", adm.ShedTenant)
	fmt.Fprintf(bw, "hdindex_admission_shed_total{reason=\"deadline\"} %d\n", adm.ShedDeadline)
	writeHeader(bw, "hdindex_admission_inflight", "gauge",
		"Admitted requests currently executing (weighted).")
	fmt.Fprintf(bw, "hdindex_admission_inflight %d\n", adm.Inflight)
	writeHeader(bw, "hdindex_admission_queued", "gauge",
		"Requests waiting in the admission queue.")
	fmt.Fprintf(bw, "hdindex_admission_queued %d\n", adm.Queued)
	writeHeader(bw, "hdindex_admission_pressure", "gauge",
		"Load-pressure signal (expected queue wait, seconds).")
	fmt.Fprintf(bw, "hdindex_admission_pressure %s\n", formatFloat(adm.Pressure))
	writeHeader(bw, "hdindex_admission_degraded", "gauge",
		"1 while new unpinned queries run the degraded cascade.")
	fmt.Fprintf(bw, "hdindex_admission_degraded %d\n", boolGauge(adm.Degraded))

	// Per-tenant admission: the top tenants by accepted count plus one
	// aggregate "other" row, so the label cardinality stays bounded
	// however many tenant ids clients invent. Absent entirely when no
	// per-tenant mechanism is configured.
	if len(adm.Tenants) > 0 {
		writeHeader(bw, "hdindex_tenant_accepted_total", "counter",
			"Requests admitted, by tenant (top tenants plus \"other\").")
		for _, t := range adm.Tenants {
			fmt.Fprintf(bw, "hdindex_tenant_accepted_total{tenant=%q} %d\n", t.Tenant, t.Accepted)
		}
		writeHeader(bw, "hdindex_tenant_shed_total", "counter",
			"Requests shed, by tenant and reason.")
		for _, t := range adm.Tenants {
			fmt.Fprintf(bw, "hdindex_tenant_shed_total{tenant=%q,reason=\"overload\"} %d\n", t.Tenant, t.ShedOverload)
			fmt.Fprintf(bw, "hdindex_tenant_shed_total{tenant=%q,reason=\"tenant\"} %d\n", t.Tenant, t.ShedTenant)
		}
		writeHeader(bw, "hdindex_tenant_load", "gauge",
			"In-flight plus queued weight, by tenant.")
		for _, t := range adm.Tenants {
			fmt.Fprintf(bw, "hdindex_tenant_load{tenant=%q} %d\n", t.Tenant, t.Load)
		}
	}

	// SLO auto-tuner: the operating point it holds and whether the
	// target is currently infeasible on the measured frontier.
	if s.tuner != nil {
		st := s.tuner.Stats()
		writeHeader(bw, "hdindex_slo_alpha", "gauge",
			"Cascade alpha of the tuner's current operating point.")
		fmt.Fprintf(bw, "hdindex_slo_alpha %d\n", st.Choice.Alpha)
		writeHeader(bw, "hdindex_slo_gamma", "gauge",
			"Cascade gamma of the tuner's current operating point.")
		fmt.Fprintf(bw, "hdindex_slo_gamma %d\n", st.Choice.Gamma)
		writeHeader(bw, "hdindex_slo_unmet", "gauge",
			"1 while no frontier point satisfies the SLO target.")
		fmt.Fprintf(bw, "hdindex_slo_unmet %d\n", boolGauge(st.Choice.SLOUnmet))
		writeHeader(bw, "hdindex_slo_frontier_points", "gauge",
			"Operating points on the tuner's current frontier.")
		fmt.Fprintf(bw, "hdindex_slo_frontier_points %d\n", st.FrontierSize)
		writeHeader(bw, "hdindex_slo_decisions_total", "counter",
			"Tuner decisions taken (history length, bounded).")
		fmt.Fprintf(bw, "hdindex_slo_decisions_total %d\n", len(st.History))
		writeHeader(bw, "hdindex_slo_remeasure_passes_total", "counter",
			"Live frontier re-measurement passes completed.")
		fmt.Fprintf(bw, "hdindex_slo_remeasure_passes_total %d\n", st.Remeasures)
		writeHeader(bw, "hdindex_slo_sampled_queries_total", "counter",
			"Real queries offered to the tuner's replay sample.")
		fmt.Fprintf(bw, "hdindex_slo_sampled_queries_total %d\n", st.SampledN)
	}

	writeHeader(bw, "hdindex_index_vectors", "gauge", "Indexed vectors.")
	fmt.Fprintf(bw, "hdindex_index_vectors %d\n", s.idx.Count())
	writeHeader(bw, "hdindex_index_deleted", "gauge", "Deletion marks.")
	fmt.Fprintf(bw, "hdindex_index_deleted %d\n", s.idx.DeletedCount())
	writeHeader(bw, "hdindex_index_shards", "gauge", "Shards in the on-disk layout.")
	fmt.Fprintf(bw, "hdindex_index_shards %d\n", s.idx.NumShards())
	writeHeader(bw, "hdindex_index_size_bytes", "gauge", "Total index file bytes on disk.")
	fmt.Fprintf(bw, "hdindex_index_size_bytes %d\n", s.idx.SizeOnDisk())
	writeHeader(bw, "hdindex_uptime_seconds", "gauge", "Seconds since the server started.")
	fmt.Fprintf(bw, "hdindex_uptime_seconds %s\n", formatFloat(time.Since(s.started).Seconds()))

	s.mMetrics.observe(time.Since(start), false)
}

// endpointRow pairs an endpoint's stable exposition label with its
// metrics.
type endpointRow struct {
	name string
	m    *endpointMetrics
}

// endpointsInOrder returns the endpoints in a fixed order so the
// exposition is deterministic scrape to scrape.
func (s *Server) endpointsInOrder() []endpointRow {
	return []endpointRow{
		{"search", &s.mSearch},
		{"searchbatch", &s.mBatch},
		{"insert", &s.mInsert},
		{"delete", &s.mDelete},
		{"stats", &s.mStats},
		{"healthz", &s.mHealth},
		{"metrics", &s.mMetrics},
	}
}

func writeHeader(bw *bufio.Writer, name, typ, help string) {
	fmt.Fprintf(bw, "# HELP %s %s\n", name, help)
	fmt.Fprintf(bw, "# TYPE %s %s\n", name, typ)
}

// writeHistogram renders one snapshot as a cumulative le-bucketed
// Prometheus histogram in seconds. labels is the pre-rendered label
// pair (`endpoint="search"`) or empty.
func writeHistogram(bw *bufio.Writer, name, labels string, s telemetry.Snapshot) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum uint64
	s.ForEachBucket(func(upper, count uint64) {
		cum += count
		fmt.Fprintf(bw, "%s_bucket{%s%sle=%q} %d\n",
			name, labels, sep, formatFloat(float64(upper)/1e9), cum)
	})
	fmt.Fprintf(bw, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, s.Count)
	if labels != "" {
		labels = "{" + labels + "}"
	}
	fmt.Fprintf(bw, "%s_sum%s %s\n", name, labels, formatFloat(float64(s.Sum)/1e9))
	fmt.Fprintf(bw, "%s_count%s %d\n", name, labels, s.Count)
}

// formatFloat renders a float the shortest way that round-trips, the
// conventional Prometheus float formatting.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func boolGauge(b bool) int {
	if b {
		return 1
	}
	return 0
}
