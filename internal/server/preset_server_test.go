package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	hdindex "github.com/hd-index/hdindex"
	"github.com/hd-index/hdindex/internal/data"
	"github.com/hd-index/hdindex/internal/slo"
)

// The test index is built with α=128, γ=32, so the preset table
// resolves to: fast = 64/16, balanced = 128/32, exact = 512/512.

// A "preset" request must be bit-identical to the same request with
// the preset's knobs spelled out — same IDs, same distances, same work
// counters — and the stats block must echo the resolved preset.
func TestSearchPresetBitIdentical(t *testing.T) {
	ts, idx, ds := newTestServer(t, Config{})
	q := ds.PerturbedQueries(1, 0.02, 21)[0]

	var viaPreset, viaKnobs searchResponse
	req := searchRequest{Query: q, K: 5, Stats: true, tuningFields: tuningFields{Preset: "fast"}}
	if code := post(t, ts.URL+"/search", req, &viaPreset); code != 200 {
		t.Fatalf("preset request: status %d", code)
	}
	req = searchRequest{Query: q, K: 5, Stats: true, tuningFields: tuningFields{Alpha: 64, Gamma: 16}}
	if code := post(t, ts.URL+"/search", req, &viaKnobs); code != 200 {
		t.Fatalf("explicit request: status %d", code)
	}
	if viaPreset.Stats == nil || viaPreset.Stats.Alpha != 64 || viaPreset.Stats.Gamma != 16 {
		t.Fatalf("fast preset stats echo %+v, want alpha=64 gamma=16", viaPreset.Stats)
	}
	if viaPreset.Stats.Preset != "fast" {
		t.Fatalf("stats echo preset %q, want %q", viaPreset.Stats.Preset, "fast")
	}
	if len(viaPreset.Results) != len(viaKnobs.Results) {
		t.Fatalf("%d results via preset, %d via knobs", len(viaPreset.Results), len(viaKnobs.Results))
	}
	for i := range viaKnobs.Results {
		if viaPreset.Results[i] != viaKnobs.Results[i] {
			t.Fatalf("rank %d: preset %+v, knobs %+v", i, viaPreset.Results[i], viaKnobs.Results[i])
		}
	}
	if viaPreset.Stats.Candidates != viaKnobs.Stats.Candidates {
		t.Fatalf("candidates %d via preset, %d via knobs", viaPreset.Stats.Candidates, viaKnobs.Stats.Candidates)
	}

	// And both match the library's own expansion of the preset.
	opts, err := idx.PresetOptions(hdindex.PresetFast, 5)
	if err != nil {
		t.Fatal(err)
	}
	want, err := idx.Query(context.Background(), q, 5, opts...)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Results {
		if viaPreset.Results[i].ID != want.Results[i].ID {
			t.Fatalf("rank %d: id %d via server, %d via library", i, viaPreset.Results[i].ID, want.Results[i].ID)
		}
	}

	// The other named presets resolve per the table.
	for _, c := range []struct {
		preset       string
		alpha, gamma int
	}{{"exact", 512, 512}, {"balanced", 128, 32}} {
		var got searchResponse
		req := searchRequest{Query: q, K: 5, Stats: true, tuningFields: tuningFields{Preset: c.preset}}
		if code := post(t, ts.URL+"/search", req, &got); code != 200 {
			t.Fatalf("%s: status %d", c.preset, code)
		}
		if got.Stats.Alpha != c.alpha || got.Stats.Gamma != c.gamma || got.Stats.Preset != c.preset {
			t.Fatalf("%s: stats echo alpha=%d gamma=%d preset=%q, want %d/%d/%q",
				c.preset, got.Stats.Alpha, got.Stats.Gamma, got.Stats.Preset, c.alpha, c.gamma, c.preset)
		}
	}
}

// "preset" and explicit knobs are mutually exclusive, unknown names are
// rejected, and an explicit "auto" behaves like no preset at all.
func TestSearchPresetValidation(t *testing.T) {
	ts, _, ds := newTestServer(t, Config{})
	q := ds.PerturbedQueries(1, 0.02, 22)[0]

	var errResp errorBody
	req := searchRequest{Query: q, K: 5, tuningFields: tuningFields{Preset: "fast", Alpha: 64}}
	if code := post(t, ts.URL+"/search", req, &errResp); code != http.StatusBadRequest {
		t.Fatalf("preset+alpha: status %d, want 400", code)
	}
	if errResp.Code != codeBadOptions {
		t.Fatalf("preset+alpha: code %q, want %q", errResp.Code, codeBadOptions)
	}

	req = searchRequest{Query: q, K: 5, tuningFields: tuningFields{Preset: "turbo"}}
	if code := post(t, ts.URL+"/search", req, &errResp); code != http.StatusBadRequest {
		t.Fatalf("unknown preset: status %d, want 400", code)
	}
	if errResp.Code != codeBadOptions {
		t.Fatalf("unknown preset: code %q, want %q", errResp.Code, codeBadOptions)
	}

	breq := searchBatchRequest{Queries: [][]float32{q}, K: 5,
		tuningFields: tuningFields{Preset: "exact", Gamma: 16}}
	if code := post(t, ts.URL+"/searchbatch", breq, &errResp); code != http.StatusBadRequest {
		t.Fatalf("batch preset+gamma: status %d, want 400", code)
	}

	var got searchResponse
	req = searchRequest{Query: q, K: 5, Stats: true, tuningFields: tuningFields{Preset: "auto"}}
	if code := post(t, ts.URL+"/search", req, &got); code != 200 {
		t.Fatalf("auto preset: status %d", code)
	}
	if got.Stats.Alpha != 128 || got.Stats.Gamma != 32 || got.Stats.Preset != "auto" {
		t.Fatalf("auto preset stats echo %+v, want the built cascade 128/32 and preset=auto", got.Stats)
	}
}

func testTiers() *slo.TierConfig {
	return &slo.TierConfig{
		Tiers: map[string]slo.Tier{
			"premium": {Preset: "exact", RPSShare: 1},
			"bulk":    {Preset: "fast", RPSShare: 0.001, BurstShare: 0.0005},
		},
		Tenants: map[string]string{"alice": "premium", "bob": "bulk"},
	}
}

func decodeResp(t testing.TB, resp *http.Response, out any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

// A tenant with a tier inherits the tier's preset when the request
// names neither a preset nor explicit knobs; the request always wins.
func TestTenantTierPreset(t *testing.T) {
	ts, _, ds := newTestServer(t, Config{Tiers: testTiers()})
	q := ds.PerturbedQueries(1, 0.02, 23)[0]
	plain := searchRequest{Query: q, K: 5, Stats: true}

	cases := []struct {
		tenant       string
		req          searchRequest
		preset       string
		alpha, gamma int
	}{
		{"alice", plain, "exact", 512, 512},
		{"bob", plain, "fast", 64, 16},
		// No tier mapping and no default tier: the server default (auto,
		// here the built parameters).
		{"carol", plain, "auto", 128, 32},
		{"", plain, "auto", 128, 32},
		// The request's own preset beats the tier's.
		{"alice", searchRequest{Query: q, K: 5, Stats: true,
			tuningFields: tuningFields{Preset: "fast"}}, "fast", 64, 16},
		// Explicit knobs beat the tier too, and echo as auto.
		{"alice", searchRequest{Query: q, K: 5, Stats: true,
			tuningFields: tuningFields{Alpha: 100}}, "auto", 100, 32},
	}
	for _, c := range cases {
		resp := postTenant(t, ts.URL+"/search", c.tenant, c.req)
		if resp.StatusCode != 200 {
			resp.Body.Close()
			t.Fatalf("tenant %q: status %d", c.tenant, resp.StatusCode)
		}
		var got searchResponse
		decodeResp(t, resp, &got)
		if got.Stats == nil || got.Stats.Preset != c.preset ||
			got.Stats.Alpha != c.alpha || got.Stats.Gamma != c.gamma {
			t.Fatalf("tenant %q: stats echo %+v, want preset=%q alpha=%d gamma=%d",
				c.tenant, got.Stats, c.preset, c.alpha, c.gamma)
		}
	}
}

// Tier admission shares reach the admission controller: a bulk-tier
// tenant at a thousandth of the base rate is throttled on its second
// immediate request while a premium tenant sails through, and the
// per-tenant breakdown shows up in /stats and /metrics.
func TestTenantTierAdmissionShares(t *testing.T) {
	ts, _, ds := newTestServer(t, Config{TenantRPS: 1000, Tiers: testTiers()})
	q := ds.PerturbedQueries(1, 0.02, 24)[0]
	req := searchRequest{Query: q, K: 5}

	for i := 0; i < 3; i++ {
		resp := postTenant(t, ts.URL+"/search", "alice", req)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("premium request %d: status %d", i, resp.StatusCode)
		}
	}
	// bulk: rps 1, burst 1 — the first request drains the bucket.
	resp := postTenant(t, ts.URL+"/search", "bob", req)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("first bulk request: status %d", resp.StatusCode)
	}
	resp = postTenant(t, ts.URL+"/search", "bob", req)
	var errResp errorBody
	decodeResp(t, resp, &errResp)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second bulk request: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("throttled response has no Retry-After")
	}

	var st StatsResponse
	if err := getJSON(ts.URL+"/stats", &st); err != nil {
		t.Fatal(err)
	}
	if st.Admission == nil || len(st.Admission.Tenants) == 0 {
		t.Fatal("/stats must carry the per-tenant admission breakdown")
	}
	rows := make(map[string]bool, len(st.Admission.Tenants))
	for _, row := range st.Admission.Tenants {
		rows[row.Tenant] = true
	}
	if !rows["alice"] || !rows["bob"] {
		t.Fatalf("per-tenant rows %v, want alice and bob", rows)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`hdindex_tenant_accepted_total{tenant="alice"}`,
		`hdindex_tenant_shed_total{tenant="bob",reason="tenant"} 1`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// With an SLO target and a frontier, auto requests run the tuner's
// operating point; named presets stay pinned; /stats and /metrics
// expose the decision.
func TestServerSLOTunerAppliesChoice(t *testing.T) {
	target, err := slo.ParseTarget("recall>=0.85")
	if err != nil {
		t.Fatal(err)
	}
	frontier := &slo.Frontier{
		FormatVersion: slo.FrontierFormatVersion, Dataset: "t", K: 5,
		Points: []slo.Point{
			{Alpha: 64, Gamma: 16, MeanQueryUS: 100, P99QueryUS: 300, Recall: 0.9},
			{Alpha: 128, Gamma: 32, MeanQueryUS: 200, P99QueryUS: 600, Recall: 0.99},
		},
	}
	ts, _, ds := newTestServer(t, Config{SLO: &target, Frontier: frontier})
	q := ds.PerturbedQueries(1, 0.02, 25)[0]

	// Auto (the default) runs the tuner's choice: the cheapest point
	// with recall >= 0.85 is α=64/γ=16.
	var got searchResponse
	if code := post(t, ts.URL+"/search", searchRequest{Query: q, K: 5, Stats: true}, &got); code != 200 {
		t.Fatalf("status %d", code)
	}
	if got.Stats.Alpha != 64 || got.Stats.Gamma != 16 || got.Stats.Preset != "auto" {
		t.Fatalf("auto stats echo %+v, want the tuner point 64/16 preset=auto", got.Stats)
	}

	// Explicit knobs and named presets are never tuner-overridden.
	req := searchRequest{Query: q, K: 5, Stats: true, tuningFields: tuningFields{Alpha: 100}}
	if code := post(t, ts.URL+"/search", req, &got); code != 200 {
		t.Fatalf("status %d", code)
	}
	if got.Stats.Alpha != 100 {
		t.Fatalf("explicit alpha overridden to %d", got.Stats.Alpha)
	}
	req = searchRequest{Query: q, K: 5, Stats: true, tuningFields: tuningFields{Preset: "exact"}}
	if code := post(t, ts.URL+"/search", req, &got); code != 200 {
		t.Fatalf("status %d", code)
	}
	if got.Stats.Alpha != 512 || got.Stats.Preset != "exact" {
		t.Fatalf("exact preset stats echo %+v, want 512/exact", got.Stats)
	}

	var st StatsResponse
	if err := getJSON(ts.URL+"/stats", &st); err != nil {
		t.Fatal(err)
	}
	if st.SLO == nil {
		t.Fatal("/stats must carry the slo block when a tuner runs")
	}
	if st.SLO.Target != "recall>=0.85" || st.SLO.Choice.Alpha != 64 || st.SLO.Choice.SLOUnmet {
		t.Fatalf("slo block %+v, want target recall>=0.85 choice alpha=64 met", st.SLO)
	}
	if st.SLO.SampledN == 0 {
		t.Fatal("served queries must feed the tuner's replay sample")
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"hdindex_slo_alpha 64", "hdindex_slo_gamma 16", "hdindex_slo_unmet 0"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// An infeasible target surfaces slo_unmet everywhere while the tuner
// serves the nearest point.
func TestServerSLOUnmetSurfaces(t *testing.T) {
	target, err := slo.ParseTarget("recall>=0.999")
	if err != nil {
		t.Fatal(err)
	}
	frontier := &slo.Frontier{
		FormatVersion: slo.FrontierFormatVersion, K: 5,
		Points: []slo.Point{{Alpha: 64, Gamma: 16, MeanQueryUS: 100, P99QueryUS: 300, Recall: 0.9}},
	}
	ts, _, _ := newTestServer(t, Config{SLO: &target, Frontier: frontier})

	var st StatsResponse
	if err := getJSON(ts.URL+"/stats", &st); err != nil {
		t.Fatal(err)
	}
	if st.SLO == nil || !st.SLO.Choice.SLOUnmet {
		t.Fatalf("slo block %+v, want slo_unmet on an infeasible target", st.SLO)
	}
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "hdindex_slo_unmet 1") {
		t.Error("/metrics missing hdindex_slo_unmet 1")
	}
}

// Named presets pin their quality through an overload: while sustained
// pressure flips auto requests onto the degraded cascade, concurrent
// "exact" requests keep the full 512/512 cascade and never echo
// degraded.
func TestPresetPinnedUnderPressure(t *testing.T) {
	ds := data.Generate(data.Config{Name: "t", N: 1500, Dim: 32, Clusters: 6, Lo: 0, Hi: 1, Seed: 42})
	idx, err := hdindex.Build(t.TempDir(), ds.Vectors, hdindex.Options{
		Tau: 4, Omega: 8, M: 4, Alpha: 128, Gamma: 32, Seed: 1, BatchWorkers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { idx.Close() })
	ts := httptest.NewServer(New(idx, Config{
		MaxInflight: 1, MaxQueue: 4, DegradePressure: 1e-9,
	}).Handler())
	t.Cleanup(ts.Close)

	queries := ds.PerturbedQueries(24, 0.02, 31)
	autoReq := searchBatchRequest{Queries: queries, K: 5, Stats: true}
	exactReq := searchRequest{Query: queries[0], K: 5, Stats: true,
		tuningFields: tuningFields{Preset: "exact"}}

	var autoDegraded atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp := postTenant(t, ts.URL+"/searchbatch", "", autoReq)
				if resp.StatusCode == http.StatusOK {
					var sr searchBatchResponse
					if json.NewDecoder(resp.Body).Decode(&sr) == nil {
						for _, st := range sr.Stats {
							if st != nil && st.Degraded {
								autoDegraded.Add(1)
								break
							}
						}
					}
				}
				resp.Body.Close()
			}
		}()
	}

	var exactOK int
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && (autoDegraded.Load() == 0 || exactOK < 5) {
		resp := postTenant(t, ts.URL+"/search", "", exactReq)
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close() // shed mid-storm: fine, retry
			continue
		}
		var sr searchResponse
		err := json.NewDecoder(resp.Body).Decode(&sr)
		resp.Body.Close()
		if err != nil || sr.Stats == nil {
			t.Fatalf("accepted exact request: decode err %v, stats %+v", err, sr.Stats)
		}
		if sr.Stats.Degraded {
			t.Fatal("pinned exact request came back degraded")
		}
		if sr.Stats.Alpha != 512 || sr.Stats.Gamma != 512 || sr.Stats.Preset != "exact" {
			t.Fatalf("pinned exact request ran %d/%d preset=%q, want 512/512/exact",
				sr.Stats.Alpha, sr.Stats.Gamma, sr.Stats.Preset)
		}
		exactOK++
	}
	close(stop)
	wg.Wait()

	if autoDegraded.Load() == 0 {
		t.Fatal("storm never degraded an auto request; pressure-pinning untested")
	}
	if exactOK == 0 {
		t.Fatal("no pinned exact request was accepted during the storm")
	}
}
