package server

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	hdindex "github.com/hd-index/hdindex"
	"github.com/hd-index/hdindex/internal/data"
)

// newTestServer builds a small index and mounts a Server over it.
func newTestServer(t testing.TB, cfg Config) (*httptest.Server, *hdindex.Index, *data.Dataset) {
	t.Helper()
	ds := data.Generate(data.Config{Name: "t", N: 1500, Dim: 32, Clusters: 6, Lo: 0, Hi: 1, Seed: 42})
	idx, err := hdindex.Build(t.TempDir(), ds.Vectors, hdindex.Options{
		Tau: 4, Omega: 8, M: 4, Alpha: 128, Gamma: 32, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { idx.Close() })
	ts := httptest.NewServer(New(idx, cfg).Handler())
	t.Cleanup(ts.Close)
	return ts, idx, ds
}

// post sends a JSON body and decodes a JSON response.
func post(t testing.TB, url string, body, out any) int {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s response: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestSearchEndpointMatchesDirect(t *testing.T) {
	ts, idx, ds := newTestServer(t, Config{})
	queries := ds.PerturbedQueries(5, 0.02, 2)
	for _, q := range queries {
		want, err := idx.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		var got searchResponse
		if code := post(t, ts.URL+"/search", searchRequest{Query: q, K: 10}, &got); code != 200 {
			t.Fatalf("status %d", code)
		}
		if len(got.Results) != len(want) {
			t.Fatalf("%d results, want %d", len(got.Results), len(want))
		}
		for i := range want {
			if got.Results[i].ID != want[i].ID {
				t.Fatalf("rank %d: id %d, want %d", i, got.Results[i].ID, want[i].ID)
			}
		}
	}
}

func TestSearchEndpointStats(t *testing.T) {
	ts, _, ds := newTestServer(t, Config{})
	q := ds.PerturbedQueries(1, 0.02, 3)[0]
	var got searchResponse
	if code := post(t, ts.URL+"/search", searchRequest{Query: q, K: 5, Stats: true}, &got); code != 200 {
		t.Fatalf("status %d", code)
	}
	if got.Stats == nil || got.Stats.Candidates == 0 {
		t.Fatalf("stats missing or empty: %+v", got.Stats)
	}
}

func TestSearchBatchEndpoint(t *testing.T) {
	ts, idx, ds := newTestServer(t, Config{})
	queries := ds.PerturbedQueries(12, 0.02, 4)
	var got searchBatchResponse
	if code := post(t, ts.URL+"/searchbatch", searchBatchRequest{Queries: queries, K: 5}, &got); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(got.Results) != len(queries) {
		t.Fatalf("%d result sets, want %d", len(got.Results), len(queries))
	}
	// Order must match per-query searches.
	for qi, q := range queries {
		want, err := idx.Search(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got.Results[qi][i].ID != want[i].ID {
				t.Fatalf("query %d rank %d: id %d, want %d", qi, i, got.Results[qi][i].ID, want[i].ID)
			}
		}
	}
}

func TestRequestValidation(t *testing.T) {
	ts, idx, ds := newTestServer(t, Config{MaxK: 50, MaxBatch: 4})
	q := ds.PerturbedQueries(1, 0.02, 5)[0]
	cases := []struct {
		name string
		url  string
		body any
	}{
		{"empty query", "/search", searchRequest{K: 5}},
		{"wrong dims", "/search", searchRequest{Query: q[:7], K: 5}},
		{"k=0", "/search", searchRequest{Query: q, K: 0}},
		{"k over cap", "/search", searchRequest{Query: q, K: 51}},
		{"empty batch", "/searchbatch", searchBatchRequest{K: 5}},
		{"oversized batch", "/searchbatch", searchBatchRequest{Queries: [][]float32{q, q, q, q, q}, K: 5}},
		{"bad batch query", "/searchbatch", searchBatchRequest{Queries: [][]float32{q[:3]}, K: 5}},
		{"empty insert", "/insert", insertRequest{}},
		{"unknown delete id", "/delete", deleteRequest{ID: idx.Count() + 10}},
		{"unknown field", "/search", map[string]any{"query": q, "k": 5, "bogus": 1}},
	}
	for _, c := range cases {
		var errResp map[string]string
		if code := post(t, ts.URL+c.url, c.body, &errResp); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (resp %v)", c.name, code, errResp)
		} else if errResp["error"] == "" {
			t.Errorf("%s: no error message", c.name)
		}
	}
	// Trailing garbage after a valid object.
	resp0, err := http.Post(ts.URL+"/search", "application/json",
		bytes.NewReader([]byte(`{"query":[1],"k":5}{"k":1}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp0.Body.Close()
	if resp0.StatusCode != http.StatusBadRequest {
		t.Errorf("trailing data: status %d", resp0.StatusCode)
	}
	// Malformed JSON entirely.
	resp, err := http.Post(ts.URL+"/search", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d", resp.StatusCode)
	}
	// Wrong method.
	resp, err = http.Get(ts.URL + "/search")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /search: status %d, want 405", resp.StatusCode)
	}
}

func TestInsertDeleteRoundTrip(t *testing.T) {
	ts, idx, _ := newTestServer(t, Config{})
	novel := make([]float32, idx.Dim())
	for d := range novel {
		novel[d] = 0.97
	}
	var ins map[string]uint64
	if code := post(t, ts.URL+"/insert", insertRequest{Vector: novel}, &ins); code != 200 {
		t.Fatalf("insert status %d", code)
	}
	id := ins["id"]

	var sr searchResponse
	if code := post(t, ts.URL+"/search", searchRequest{Query: novel, K: 1}, &sr); code != 200 {
		t.Fatalf("search status %d", code)
	}
	if len(sr.Results) != 1 || sr.Results[0].ID != id {
		t.Fatalf("search after insert = %+v, want id %d", sr.Results, id)
	}

	if code := post(t, ts.URL+"/delete", deleteRequest{ID: id}, nil); code != 200 {
		t.Fatalf("delete status %d", code)
	}
	if code := post(t, ts.URL+"/search", searchRequest{Query: novel, K: 1}, &sr); code != 200 {
		t.Fatalf("search status %d", code)
	}
	if len(sr.Results) == 1 && sr.Results[0].ID == id {
		t.Fatal("deleted vector still returned")
	}

	if code := post(t, ts.URL+"/delete", deleteRequest{ID: id, Undelete: true}, nil); code != 200 {
		t.Fatalf("undelete status %d", code)
	}
	if code := post(t, ts.URL+"/search", searchRequest{Query: novel, K: 1}, &sr); code != 200 {
		t.Fatalf("search status %d", code)
	}
	if len(sr.Results) != 1 || sr.Results[0].ID != id {
		t.Fatal("undeleted vector not returned again")
	}
}

func TestReadOnlyMode(t *testing.T) {
	ts, idx, _ := newTestServer(t, Config{ReadOnly: true})
	vec := make([]float32, idx.Dim())
	if code := post(t, ts.URL+"/insert", insertRequest{Vector: vec}, nil); code != http.StatusForbidden {
		t.Errorf("insert status %d, want 403", code)
	}
	if code := post(t, ts.URL+"/delete", deleteRequest{ID: 0}, nil); code != http.StatusForbidden {
		t.Errorf("delete status %d, want 403", code)
	}
}

func TestHealthz(t *testing.T) {
	ts, _, _ := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestStatsEndpoint(t *testing.T) {
	ts, idx, ds := newTestServer(t, Config{})
	q := ds.PerturbedQueries(1, 0.02, 6)[0]
	const n = 7
	for i := 0; i < n; i++ {
		if code := post(t, ts.URL+"/search", searchRequest{Query: q, K: 3}, nil); code != 200 {
			t.Fatalf("search status %d", code)
		}
	}
	// One failed request must show up in the error counter.
	post(t, ts.URL+"/search", searchRequest{Query: q, K: 0}, nil)

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Index.Count != idx.Count() || st.Index.Dim != idx.Dim() {
		t.Errorf("index stats = %+v", st.Index)
	}
	// A legacy single-index layout reports itself as one shard.
	if st.Index.Shards != 1 || len(st.Index.PerShard) != 1 || st.Index.PerShard[0].Count != idx.Count() {
		t.Errorf("legacy layout shard stats = %+v", st.Index)
	}
	es := st.Endpoints["search"]
	if es.Requests != n+1 || es.Errors != 1 {
		t.Errorf("search endpoint stats = %+v, want %d requests / 1 error", es, n+1)
	}
	if es.MeanLatencyMs <= 0 || es.MaxLatencyMs < es.MeanLatencyMs || es.QPS <= 0 {
		t.Errorf("latency/QPS not populated: %+v", es)
	}
}

// /stats over a sharded layout reports the shard count and a per-shard
// breakdown that sums to the whole.
func TestStatsShardedLayout(t *testing.T) {
	ds := data.Generate(data.Config{Name: "sh", N: 1201, Dim: 32, Clusters: 4, Lo: 0, Hi: 1, Seed: 17})
	idx, err := hdindex.Build(t.TempDir(), ds.Vectors, hdindex.Options{
		Tau: 4, Omega: 8, M: 4, Alpha: 128, Gamma: 32, Seed: 1, Shards: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { idx.Close() })
	ts := httptest.NewServer(New(idx, Config{}).Handler())
	t.Cleanup(ts.Close)

	if code := post(t, ts.URL+"/delete", deleteRequest{ID: 3}, nil); code != 200 {
		t.Fatalf("delete status %d", code)
	}
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Index.Shards != 4 || len(st.Index.PerShard) != 4 {
		t.Fatalf("shard stats = %+v", st.Index)
	}
	var count uint64
	var deleted int
	var size int64
	for _, sh := range st.Index.PerShard {
		count += sh.Count
		deleted += sh.Deleted
		size += sh.SizeOnDisk
	}
	if count != st.Index.Count || deleted != st.Index.Deleted || size != st.Index.SizeOnDisk {
		t.Fatalf("per-shard rows do not sum to the totals: %+v", st.Index)
	}
	if st.Index.Deleted != 1 {
		t.Fatalf("deleted = %d, want 1", st.Index.Deleted)
	}

	// Search still round-trips through the scatter-gather path.
	q := ds.PerturbedQueries(1, 0.02, 8)[0]
	var got searchResponse
	if code := post(t, ts.URL+"/search", searchRequest{Query: q, K: 5}, &got); code != 200 {
		t.Fatalf("search status %d", code)
	}
	if len(got.Results) != 5 {
		t.Fatalf("%d results", len(got.Results))
	}
}

// A request deadline of effectively zero must yield 504, not 200.
func TestSearchTimeoutHonoured(t *testing.T) {
	ts, _, ds := newTestServer(t, Config{QueryTimeout: time.Nanosecond})
	q := ds.PerturbedQueries(1, 0.02, 7)[0]
	var errResp map[string]string
	code := post(t, ts.URL+"/search", searchRequest{Query: q, K: 5}, &errResp)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (resp %v)", code, errResp)
	}
	// An absurd timeout_ms must not overflow into disabling the server
	// deadline.
	code = post(t, ts.URL+"/search", searchRequest{Query: q, K: 5, TimeoutMs: math.MaxInt}, &errResp)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("overflow timeout_ms: status %d, want 504 (resp %v)", code, errResp)
	}
	// Per-request timeout_ms lowers the (here absent) server default too.
	ts2, _, _ := newTestServer(t, Config{})
	var batchErr map[string]string
	queries := ds.PerturbedQueries(64, 0.02, 8)
	code = post(t, ts2.URL+"/searchbatch", searchBatchRequest{Queries: queries, K: 5, TimeoutMs: -1}, nil)
	if code != 200 {
		t.Fatalf("negative timeout_ms must be ignored, got %d (%v)", code, batchErr)
	}
}

func TestEndpointMetricsMaxTracksLargest(t *testing.T) {
	var m endpointMetrics
	started := time.Now().Add(-time.Second)
	m.observe(2*time.Millisecond, false)
	m.observe(5*time.Millisecond, true)
	m.observe(1*time.Millisecond, false)
	s := m.statsRow(started, started.Add(time.Second))
	if s.Requests != 3 || s.Errors != 1 {
		t.Fatalf("statsRow = %+v", s)
	}
	if s.MaxLatencyMs < 4.9 || s.MaxLatencyMs > 5.1 {
		t.Fatalf("max latency = %v, want ~5ms", s.MaxLatencyMs)
	}
	if want := 3.0; s.QPS != want {
		t.Fatalf("qps = %v, want %v", s.QPS, want)
	}
	// The histogram-backed quantiles must bracket the observations:
	// p50 near 2ms, p99 near the 5ms tail, all within the mean/max.
	if s.P50LatencyMs < 1.5 || s.P50LatencyMs > 2.1 {
		t.Fatalf("p50 = %v, want ~2ms", s.P50LatencyMs)
	}
	if s.P99LatencyMs < 4.5 || s.P99LatencyMs > 5.1 {
		t.Fatalf("p99 = %v, want ~5ms", s.P99LatencyMs)
	}
	// The first scrape's window covers everything so far.
	if s.Window == nil || s.Window.Requests != 3 {
		t.Fatalf("first window = %+v, want 3 requests", s.Window)
	}
}

// The all-time max must survive a quiet window, while the window max
// forgets the cold-start outlier — the fix for the max-grows-forever
// problem.
func TestEndpointMetricsWindowForgetsOutlier(t *testing.T) {
	var m endpointMetrics
	started := time.Now()
	m.observe(500*time.Millisecond, false) // cold-start outlier
	first := m.statsRow(started, started.Add(time.Second))
	if first.MaxLatencyMs < 499 {
		t.Fatalf("all-time max = %v, want ~500ms", first.MaxLatencyMs)
	}
	// Steady-state traffic an order of magnitude faster.
	for i := 0; i < 100; i++ {
		m.observe(2*time.Millisecond, false)
	}
	s := m.statsRow(started, started.Add(2*time.Second))
	if s.MaxLatencyMs < 499 {
		t.Fatalf("all-time max lost the outlier: %v", s.MaxLatencyMs)
	}
	if s.Window == nil {
		t.Fatal("no window despite 100 requests")
	}
	if s.Window.Requests != 100 {
		t.Fatalf("window requests = %d, want 100", s.Window.Requests)
	}
	// Bucket-estimated window max: within 3.125% above the true 2ms.
	if s.Window.MaxLatencyMs < 2 || s.Window.MaxLatencyMs > 2.1 {
		t.Fatalf("window max = %v, want ~2ms (outlier forgotten)", s.Window.MaxLatencyMs)
	}
	if s.Window.Seconds < 0.99 || s.Window.Seconds > 1.01 {
		t.Fatalf("window seconds = %v, want ~1", s.Window.Seconds)
	}
	// An empty window omits the block rather than reporting zeros.
	if s3 := m.statsRow(started, started.Add(3*time.Second)); s3.Window != nil {
		t.Fatalf("empty window should be nil, got %+v", s3.Window)
	}
}

func TestBodySizeLimit(t *testing.T) {
	ts, _, _ := newTestServer(t, Config{MaxBodyBytes: 256})
	nums := bytes.Repeat([]byte("0.5,"), 500)
	body := append([]byte(`{"query":[`), nums...)
	body = append(body[:len(body)-1], []byte(`],"k":5}`)...)
	resp, err := http.Post(ts.URL+"/search", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
}

func TestUnknownRoute(t *testing.T) {
	ts, _, _ := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
}

func TestDeleteUnknownIDMessage(t *testing.T) {
	ts, idx, _ := newTestServer(t, Config{})
	var errResp map[string]string
	code := post(t, ts.URL+"/delete", deleteRequest{ID: idx.Count() * 2}, &errResp)
	if code != http.StatusBadRequest {
		t.Fatalf("status %d", code)
	}
	if errResp["error"] == "" {
		t.Fatal("no error message")
	}
}

// The /stats io block and the per-query page_hits/page_misses counters
// make the buffer pool's behaviour observable over the wire.
func TestStatsExposeBufferPoolHitRatio(t *testing.T) {
	ts, _, ds := newTestServer(t, Config{})
	queries := ds.PerturbedQueries(5, 0.02, 8)
	var sr searchResponse
	for _, q := range queries {
		if code := post(t, ts.URL+"/search", searchRequest{Query: q, K: 5, Stats: true}, &sr); code != 200 {
			t.Fatalf("search status %d", code)
		}
	}
	// Refinement touches the vector store, so pool traffic must be
	// visible per query (hits + misses covers every page touch).
	if sr.Stats == nil || sr.Stats.PageHits+sr.Stats.PageMisses == 0 {
		t.Fatalf("per-query pool counters empty: %+v", sr.Stats)
	}

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	io := st.Index.IO
	if io.Hits+io.Misses == 0 {
		t.Fatalf("io block empty: %+v", io)
	}
	if io.HitRatio < 0 || io.HitRatio > 1 {
		t.Fatalf("hit_ratio out of range: %v", io.HitRatio)
	}
	if want := float64(io.Hits) / float64(io.Hits+io.Misses); io.HitRatio != want {
		t.Fatalf("hit_ratio = %v, want %v", io.HitRatio, want)
	}
}
