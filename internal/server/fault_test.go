package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"slices"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	hdindex "github.com/hd-index/hdindex"
	"github.com/hd-index/hdindex/internal/data"
	"github.com/hd-index/hdindex/internal/iofault"
	"github.com/hd-index/hdindex/internal/leakcheck"
)

// postTenant is post with an X-Tenant header and access to the raw
// response (status, headers, decoded error body).
func postTenant(t testing.TB, url, tenant string, body any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeErrorBody(t testing.TB, resp *http.Response) errorBody {
	t.Helper()
	defer resp.Body.Close()
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatalf("decode error body: %v", err)
	}
	return eb
}

// serverDuration reads the server-side request duration from the
// Server-Timing header. On a loaded (possibly single-core) box the
// client goroutine may not be scheduled for tens of milliseconds after
// the server finished, so client-observed wall time measures the Go
// scheduler, not the server; the header measures the server.
func serverDuration(t testing.TB, resp *http.Response) time.Duration {
	t.Helper()
	st := resp.Header.Get("Server-Timing")
	i := strings.Index(st, "dur=")
	if i < 0 {
		t.Fatalf("response has no Server-Timing duration (header %q)", st)
	}
	val := st[i+4:]
	if j := strings.IndexAny(val, ";, "); j >= 0 {
		val = val[:j]
	}
	ms, err := strconv.ParseFloat(val, 64)
	if err != nil {
		t.Fatalf("bad Server-Timing %q: %v", st, err)
	}
	return time.Duration(ms * float64(time.Millisecond))
}

func getJSON(url string, out any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(out)
}

func getHealth(t testing.TB, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body.Status
}

// TestFaultWALFailureReadOnlyServing poisons the WAL's fsync under a
// live server: the failing insert and everything after it must come
// back 503/wal_unavailable, /healthz must say read_only (still 200 —
// the instance can serve reads), searches must keep answering, and
// /stats must carry the failure.
func TestFaultWALFailureReadOnlyServing(t *testing.T) {
	ds := data.Generate(data.Config{Name: "t", N: 800, Dim: 32, Clusters: 6, Lo: 0, Hi: 1, Seed: 52})
	dir := t.TempDir()
	idx, err := hdindex.Build(dir, ds.Vectors, hdindex.Options{
		Tau: 4, Omega: 8, M: 4, Alpha: 128, Gamma: 32, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.Close(); err != nil {
		t.Fatal(err)
	}

	// Every WAL fsync fails from here; reopen so the log is wrapped.
	restore := iofault.SetGlobal(iofault.NewInjector(iofault.Rule{
		PathGlob: "wal.log", Op: iofault.OpSync,
	}))
	defer restore()
	idx, err = hdindex.Open(dir, hdindex.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { idx.Close() })
	ts := httptest.NewServer(New(idx, Config{}).Handler())
	t.Cleanup(ts.Close)

	resp := postTenant(t, ts.URL+"/insert", "", insertRequest{Vector: ds.Vectors[0]})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("insert with poisoned WAL: status %d, want 503", resp.StatusCode)
	}
	if eb := decodeErrorBody(t, resp); eb.Code != codeWALUnavailable {
		t.Fatalf("insert error code %q, want %q", eb.Code, codeWALUnavailable)
	}
	// Sticky: the next write fails the same way without touching disk.
	resp = postTenant(t, ts.URL+"/delete", "", deleteRequest{ID: 0})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("delete after poison: status %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()

	if code, status := getHealth(t, ts.URL); code != 200 || status != "read_only" {
		t.Fatalf("healthz = %d %q, want 200 read_only", code, status)
	}
	q := ds.PerturbedQueries(1, 0.02, 3)[0]
	if code := post(t, ts.URL+"/search", searchRequest{Query: q, K: 5}, nil); code != 200 {
		t.Fatalf("search while read-only: status %d, want 200", code)
	}
	var st StatsResponse
	if err := getJSON(ts.URL+"/stats", &st); err != nil {
		t.Fatal(err)
	}
	if !st.Index.WAL.WALFailed {
		t.Fatal("/stats must report wal_failed")
	}
	if st.Health != "read_only" {
		t.Fatalf("/stats health = %q, want read_only", st.Health)
	}
}

// TestOverloadStormShedsFast floods a 1-slot server far past its
// sustainable rate: excess requests must be shed immediately with a
// structured 503 + Retry-After (well under the 50ms budget), accepted
// requests must succeed with a p99 within 3× the unloaded p99 (the
// deadline-aware queue sheds what it cannot serve in time), and
// sustained pressure must flip unpinned queries onto the degraded
// cascade (echoed in stats). Latencies are measured server-side via
// Server-Timing.
func TestOverloadStormShedsFast(t *testing.T) {
	ds := data.Generate(data.Config{Name: "t", N: 1500, Dim: 32, Clusters: 6, Lo: 0, Hi: 1, Seed: 42})
	// BatchWorkers 2 keeps the admitted batch from saturating every
	// core: shedding is only "immediate" if the shed path can get CPU
	// while admitted work runs, which is exactly the property under test.
	idx, err := hdindex.Build(t.TempDir(), ds.Vectors, hdindex.Options{
		Tau: 4, Omega: 8, M: 4, Alpha: 128, Gamma: 32, Seed: 1, BatchWorkers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { idx.Close() })
	ts := httptest.NewServer(New(idx, Config{
		MaxInflight: 1,
		MaxQueue:    4,
		// Degrade at the faintest pressure so the storm provably crosses it.
		DegradePressure: 1e-9,
	}).Handler())
	t.Cleanup(ts.Close)
	// Batches, not single searches: each request carries enough work
	// that server time dominates client round-trip time, so the 16-way
	// fan-in genuinely stacks up against the 1-slot limiter instead of
	// draining between arrivals.
	queries := ds.PerturbedQueries(24, 0.02, 7)
	req := searchBatchRequest{Queries: queries, K: 5, Stats: true}

	// Unloaded baseline: the same request shape, sequentially, with no
	// contention. The max over the warm runs stands in for the p99 the
	// storm's accepted tail is judged against.
	var unloadedP99 time.Duration
	for i := 0; i < 12; i++ {
		resp := postTenant(t, ts.URL+"/searchbatch", "", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("unloaded request: status %d, want 200", resp.StatusCode)
		}
		d := serverDuration(t, resp)
		resp.Body.Close()
		if i > 0 && d > unloadedP99 { // skip the cold first request
			unloadedP99 = d
		}
	}

	// Every storm request carries a deadline of 2.5× the unloaded p99:
	// the deadline-aware queue must shed requests it cannot serve in
	// time, which is what keeps the accepted tail within the 3× budget
	// below instead of absorbing the whole queue.
	req.TimeoutMs = int(max(unloadedP99*5/2/time.Millisecond, 1))

	shedBudget := 50 * time.Millisecond
	if raceEnabled {
		shedBudget = 500 * time.Millisecond
	}
	var accepted, shed, timedOut, degraded, other atomic.Int64
	var slowShed atomic.Int64
	var mu sync.Mutex
	var okLat []time.Duration
	var wg sync.WaitGroup
	stop := time.Now().Add(800 * time.Millisecond)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(stop) {
				resp := postTenant(t, ts.URL+"/searchbatch", "", req)
				srvLatency := serverDuration(t, resp)
				switch resp.StatusCode {
				case http.StatusOK:
					accepted.Add(1)
					mu.Lock()
					okLat = append(okLat, srvLatency)
					mu.Unlock()
					var sr searchBatchResponse
					if json.NewDecoder(resp.Body).Decode(&sr) == nil {
						for _, st := range sr.Stats {
							if st != nil && st.Degraded {
								degraded.Add(1)
								break
							}
						}
					}
					resp.Body.Close()
				case http.StatusServiceUnavailable:
					shed.Add(1)
					if resp.Header.Get("Retry-After") == "" {
						other.Add(1) // shed without a hint counts as a failure
					}
					if srvLatency > shedBudget {
						slowShed.Add(1)
					}
					resp.Body.Close()
				case http.StatusGatewayTimeout:
					// Admitted, then the deadline fired mid-execution:
					// allowed, the request neither succeeded nor queued.
					timedOut.Add(1)
					resp.Body.Close()
				default:
					other.Add(1)
					resp.Body.Close()
				}
			}
		}()
	}
	wg.Wait()

	t.Logf("storm: accepted=%d shed=%d timed_out=%d degraded=%d other=%d unloaded_p99=%v timeout_ms=%d",
		accepted.Load(), shed.Load(), timedOut.Load(), degraded.Load(), other.Load(), unloadedP99, req.TimeoutMs)
	if accepted.Load() == 0 {
		t.Fatal("storm starved every request; admission must keep accepting at capacity")
	}
	if shed.Load() == 0 {
		t.Fatal("16-way storm against 1 slot + queue of 4 must shed")
	}
	if other.Load() != 0 {
		t.Fatalf("%d responses were neither clean 200s nor well-formed 503 sheds", other.Load())
	}
	// Shedding must not queue: the decision itself is lock-then-return.
	// Server-side time still includes the request decode and possible
	// scheduler preemption while admitted batches burn the CPU (this box
	// may be single-core), so bound the overwhelming majority rather
	// than the worst straggler.
	if slow, total := slowShed.Load(), shed.Load(); slow*10 > total {
		t.Fatalf("%d of %d shed responses took longer than %v; shedding must not queue", slow, total, shedBudget)
	}
	// Accepted requests must not have absorbed the queue: their p99 stays
	// within 3× the unloaded p99 because the deadline-aware queue shed
	// (or expired) everything that could not be served in time.
	slices.Sort(okLat)
	acceptedP99 := okLat[(len(okLat)*99+99)/100-1]
	if budget := 3 * unloadedP99; acceptedP99 > budget {
		t.Fatalf("accepted p99 %v exceeds 3× the unloaded p99 (%v); the queue must not grow the accepted tail", acceptedP99, unloadedP99)
	}
	if degraded.Load() == 0 {
		t.Fatal("sustained pressure never produced a degraded-cascade response")
	}

	var st StatsResponse
	if err := getJSON(ts.URL+"/stats", &st); err != nil {
		t.Fatal(err)
	}
	if st.Admission == nil {
		t.Fatal("/stats must carry the admission block when admission is on")
	}
	if st.Admission.Accepted == 0 || st.Admission.ShedOverload == 0 {
		t.Fatalf("admission counters: %+v", st.Admission)
	}
}

// TestOverloadTenantThrottled exhausts one tenant's token bucket: the
// over-budget tenant gets 429 + Retry-After while another tenant is
// untouched.
func TestOverloadTenantThrottled(t *testing.T) {
	ts, _, ds := newTestServer(t, Config{TenantRPS: 0.1, TenantBurst: 1})
	q := ds.PerturbedQueries(1, 0.02, 8)[0]
	req := searchRequest{Query: q, K: 5}

	resp := postTenant(t, ts.URL+"/search", "alice", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("alice's first request: status %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()

	resp = postTenant(t, ts.URL+"/search", "alice", req)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("alice over budget: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 must carry Retry-After")
	}
	if eb := decodeErrorBody(t, resp); eb.Code != "tenant_throttled" {
		t.Fatalf("throttle code %q, want tenant_throttled", eb.Code)
	}

	resp = postTenant(t, ts.URL+"/search", "bob", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bob (fresh bucket): status %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestChaosServerShutdownNoLeak runs a full server lifecycle — build,
// serve traffic with admission on, drain, close — and asserts every
// goroutine is reaped.
func TestChaosServerShutdownNoLeak(t *testing.T) {
	defer leakcheck.Check(t)()
	ds := data.Generate(data.Config{Name: "t", N: 600, Dim: 32, Clusters: 4, Lo: 0, Hi: 1, Seed: 53})
	idx, err := hdindex.Build(t.TempDir(), ds.Vectors, hdindex.Options{
		Tau: 4, Omega: 8, M: 4, Alpha: 128, Gamma: 32, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(idx, Config{MaxInflight: 4, TenantRPS: 100})
	ts := httptest.NewServer(srv.Handler())
	q := ds.PerturbedQueries(1, 0.02, 9)[0]
	for i := 0; i < 5; i++ {
		if code := post(t, ts.URL+"/search", searchRequest{Query: q, K: 3}, nil); code != 200 {
			t.Fatalf("search status %d", code)
		}
	}
	if _, err := idx.Insert(ds.Vectors[0]); err != nil {
		t.Fatal(err)
	}
	ts.Close()
	if err := srv.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if err := idx.Close(); err != nil {
		t.Fatal(err)
	}
}
