package server

// promlint-style sanity checker for the Prometheus text exposition
// format, shared by the /metrics tests. Deliberately in-repo (no
// client_golang dependency): it validates the framing rules a real
// scraper and promlint would reject violations of — well-formed HELP/
// TYPE comments, declared types, parseable sample lines, histogram
// buckets cumulative with strictly-increasing le boundaries closed by
// +Inf, and _count consistent with the +Inf bucket.

import (
	"bufio"
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	sampleRe     = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})? (\S+)$`)
	labelRe      = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$`)
)

// promSample is one parsed sample line.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
	line   int
}

// promFamilies is the parsed exposition: family name -> declared type,
// plus all samples.
type promFamilies struct {
	types   map[string]string
	samples []promSample
}

// parsePromText validates text as Prometheus exposition format and
// returns the parsed families; any violation is reported on t.
func parsePromText(t *testing.T, text string) *promFamilies {
	t.Helper()
	fams := &promFamilies{types: make(map[string]string)}
	helped := make(map[string]bool)
	seen := make(map[string]int) // dedup key -> first line
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(parts) != 2 || !metricNameRe.MatchString(parts[0]) || parts[1] == "" {
				t.Errorf("line %d: malformed HELP: %q", lineNo, line)
				continue
			}
			if helped[parts[0]] {
				t.Errorf("line %d: duplicate HELP for %s", lineNo, parts[0])
			}
			helped[parts[0]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(parts) != 2 || !metricNameRe.MatchString(parts[0]) {
				t.Errorf("line %d: malformed TYPE: %q", lineNo, line)
				continue
			}
			switch parts[1] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Errorf("line %d: unknown metric type %q", lineNo, parts[1])
			}
			if _, dup := fams.types[parts[0]]; dup {
				t.Errorf("line %d: duplicate TYPE for %s", lineNo, parts[0])
			}
			fams.types[parts[0]] = parts[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // free-form comment
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Errorf("line %d: unparseable sample: %q", lineNo, line)
			continue
		}
		name, rawLabels, rawValue := m[1], m[3], m[4]
		val, err := parsePromValue(rawValue)
		if err != nil {
			t.Errorf("line %d: bad value %q: %v", lineNo, rawValue, err)
			continue
		}
		labels := make(map[string]string)
		if rawLabels != "" {
			for _, pair := range splitLabels(rawLabels) {
				lm := labelRe.FindStringSubmatch(pair)
				if lm == nil {
					t.Errorf("line %d: malformed label %q", lineNo, pair)
					continue
				}
				if _, dup := labels[lm[1]]; dup {
					t.Errorf("line %d: duplicate label %q", lineNo, lm[1])
				}
				labels[lm[1]] = lm[2]
			}
		}
		// Samples must belong to a declared family (histogram samples
		// via their _bucket/_sum/_count suffixes).
		fam := familyOf(fams.types, name)
		if fam == "" {
			t.Errorf("line %d: sample %s has no preceding TYPE declaration", lineNo, name)
		}
		key := line[:strings.LastIndex(line, " ")]
		if first, dup := seen[key]; dup {
			t.Errorf("line %d: duplicate series %q (first at line %d)", lineNo, key, first)
		}
		seen[key] = lineNo
		fams.samples = append(fams.samples, promSample{name: name, labels: labels, value: val, line: lineNo})
	}
	// Errorf, not Fatalf: this runs from scraper goroutines in the load
	// test, where FailNow is not allowed.
	if err := sc.Err(); err != nil {
		t.Errorf("scan: %v", err)
		return fams
	}
	for name := range fams.types {
		if !helped[name] {
			t.Errorf("family %s has TYPE but no HELP", name)
		}
	}
	checkHistograms(t, fams)
	return fams
}

// familyOf resolves a sample name to its declared family, peeling
// histogram suffixes.
func familyOf(types map[string]string, name string) string {
	if _, ok := types[name]; ok {
		return name
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name && types[base] == "histogram" {
			return base
		}
	}
	return ""
}

// splitLabels splits `a="x",b="y"` at top-level commas (quoted commas
// stay put).
func splitLabels(s string) []string {
	var out []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return strconv.ParseFloat("+Inf", 64)
	case "-Inf":
		return strconv.ParseFloat("-Inf", 64)
	case "NaN":
		return strconv.ParseFloat("NaN", 64)
	}
	return strconv.ParseFloat(s, 64)
}

// checkHistograms verifies every histogram family: per label-set, le
// boundaries strictly increasing, bucket counts cumulative, a +Inf
// bucket present and equal to _count.
func checkHistograms(t *testing.T, fams *promFamilies) {
	t.Helper()
	type series struct {
		les    []float64
		counts []float64
		count  float64
		hasCnt bool
		inf    float64
		hasInf bool
	}
	groups := make(map[string]*series)
	keyFor := func(fam string, labels map[string]string) string {
		keys := make([]string, 0, len(labels))
		for k := range labels {
			if k != "le" {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		var b strings.Builder
		b.WriteString(fam)
		for _, k := range keys {
			fmt.Fprintf(&b, "|%s=%s", k, labels[k])
		}
		return b.String()
	}
	for _, s := range fams.samples {
		fam := familyOf(fams.types, s.name)
		if fam == "" || fams.types[fam] != "histogram" {
			continue
		}
		key := keyFor(fam, s.labels)
		g := groups[key]
		if g == nil {
			g = &series{}
			groups[key] = g
		}
		switch {
		case strings.HasSuffix(s.name, "_bucket"):
			le, ok := s.labels["le"]
			if !ok {
				t.Errorf("line %d: histogram bucket without le label", s.line)
				continue
			}
			if le == "+Inf" {
				g.inf, g.hasInf = s.value, true
				continue
			}
			bound, err := strconv.ParseFloat(le, 64)
			if err != nil {
				t.Errorf("line %d: unparseable le=%q", s.line, le)
				continue
			}
			g.les = append(g.les, bound)
			g.counts = append(g.counts, s.value)
		case strings.HasSuffix(s.name, "_count"):
			g.count, g.hasCnt = s.value, true
		}
	}
	for key, g := range groups {
		for i := 1; i < len(g.les); i++ {
			if g.les[i] <= g.les[i-1] {
				t.Errorf("%s: le boundaries not strictly increasing: %v <= %v", key, g.les[i], g.les[i-1])
			}
			if g.counts[i] < g.counts[i-1] {
				t.Errorf("%s: bucket counts not cumulative: %v < %v at le=%v", key, g.counts[i], g.counts[i-1], g.les[i])
			}
		}
		if !g.hasInf {
			t.Errorf("%s: missing le=\"+Inf\" bucket", key)
			continue
		}
		if len(g.counts) > 0 && g.inf < g.counts[len(g.counts)-1] {
			t.Errorf("%s: +Inf bucket %v below last bucket %v", key, g.inf, g.counts[len(g.counts)-1])
		}
		if g.hasCnt && g.count != g.inf {
			t.Errorf("%s: _count %v != +Inf bucket %v", key, g.count, g.inf)
		}
	}
}

// sampleValue returns the first sample matching name and the given
// label subset, or (0, false).
func (f *promFamilies) sampleValue(name string, labels map[string]string) (float64, bool) {
	for _, s := range f.samples {
		if s.name != name {
			continue
		}
		ok := true
		for k, v := range labels {
			if s.labels[k] != v {
				ok = false
				break
			}
		}
		if ok {
			return s.value, true
		}
	}
	return 0, false
}
