// Package server is the HTTP JSON serving layer over an HD-Index: the
// piece that turns the library into a system. It exposes kNN search
// (single and batch), index mutation, and introspection endpoints,
// honours per-request deadlines via context cancellation threaded down
// to core's query loop, and keeps per-endpoint latency/QPS counters.
//
// Endpoints:
//
//	POST /search      {"query": [...], "k": 10}        -> {"results": [{"id","dist"},...]}
//	POST /searchbatch {"queries": [[...],...], "k": 5} -> {"results": [[...],...]}
//	POST /insert      {"vector": [...]}                -> {"id": n}
//	POST /delete      {"id": n, "undelete": false}     -> {"deleted": n}
//	GET  /stats                                        -> index + per-endpoint counters
//	GET  /healthz                                      -> {"status": "ok"}
//
// /search and /searchbatch accept per-request tuning fields — "alpha",
// "gamma", "ptolemaic", "max_candidates" — overriding the index's
// built filter cascade for that request only (per-tenant quality tiers
// on one index). "stats": true returns the work counters with the
// effective cascade echoed back. Out-of-range knobs are a 400 with a
// structured {"error", "code"} body; values above the server's
// MaxAlpha cap are clamped, not rejected.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	hdindex "github.com/hd-index/hdindex"
	"github.com/hd-index/hdindex/internal/admission"
	"github.com/hd-index/hdindex/internal/shard"
	"github.com/hd-index/hdindex/internal/telemetry"
)

// Config tunes the server independently of the index parameters.
type Config struct {
	// QueryTimeout is the default deadline applied to /search and
	// /searchbatch requests. 0 means no deadline. A request may lower
	// (never raise) it with "timeout_ms".
	QueryTimeout time.Duration
	// MaxK caps the requested neighbour count (default 1000).
	MaxK int
	// MaxBatch caps the number of queries in one /searchbatch request
	// (default 4096).
	MaxBatch int
	// MaxBodyBytes caps the request body size before decoding (default
	// 64 MiB), bounding memory per request ahead of any validation.
	MaxBodyBytes int64
	// MaxAlpha caps the per-request "alpha"/"gamma"/"max_candidates"
	// tuning knobs (default 1 << 20). Requests above the cap are
	// clamped to it — a tenant asking for "as much recall as allowed"
	// gets the ceiling, not an error.
	MaxAlpha int
	// ReadOnly disables /insert and /delete.
	ReadOnly bool
	// NoFlushOnWrite is a no-op kept for configuration compatibility.
	// It used to skip the full index flush /insert once paid for
	// durability; inserts are now write-ahead logged by the index
	// itself, so every acknowledged /insert is durable and no endpoint
	// flushes (tune the guarantee with hdserve's -wal-sync instead).
	NoFlushOnWrite bool
	// SlowQueryThreshold enables the slow-query log: /search requests
	// slower than this (and /searchbatch requests whose whole batch is)
	// are logged through Logger with the per-phase breakdown and work
	// counters. 0 disables it.
	SlowQueryThreshold time.Duration
	// Logger receives the slow-query records; nil uses slog.Default().
	Logger *slog.Logger
	// Pprof mounts net/http/pprof under /debug/pprof/ on the server's
	// mux. Off by default: profiling endpoints expose internals and
	// belong behind an operator flag (hdserve -pprof).
	Pprof bool

	// MaxInflight caps the weight of concurrently admitted work on the
	// query/mutation endpoints (a /searchbatch of q queries weighs q,
	// everything else weighs 1). Requests beyond the cap wait in a
	// bounded FIFO admission queue; requests that do not fit the queue —
	// or whose deadline cannot cover the estimated queue wait — are shed
	// immediately with a 503, code "overloaded", and a Retry-After hint.
	// 0 disables the limiter. Introspection endpoints (/stats, /healthz,
	// /metrics) are never limited: they must answer during an overload.
	MaxInflight int
	// MaxQueue caps the weight waiting in the admission queue (0 = 4 ×
	// MaxInflight).
	MaxQueue int
	// TenantRPS rate-limits each tenant (the X-Tenant request header;
	// absent = the shared "" tenant) to this sustained accepted-request
	// rate, shedding the excess with a 429, code "tenant_throttled", and
	// a Retry-After hint. 0 disables per-tenant throttling.
	TenantRPS float64
	// TenantBurst is the token-bucket depth (0 = max(2 × TenantRPS, 1)).
	TenantBurst float64
	// DegradePressure enables adaptive degradation: when the admission
	// queue's estimated drain time (queued weight × recent p99, in
	// seconds) exceeds this threshold, searches that leave their cascade
	// knobs unset run the cheap cascade (core's Degrade preset) and
	// their stats echo degraded=true. 0 disables degradation.
	DegradePressure float64

	// Identity is the shard identity stamp of the served directory, when
	// it is one shard of a sharded build (hdserve reads identity.json
	// and passes it through). /healthz and /stats echo it so a cluster
	// coordinator can verify at startup that this endpoint serves the
	// shard its manifest says it does, instead of silently merging
	// wrong-shard results. Nil for standalone indexes.
	Identity *shard.Identity
}

func (c *Config) defaults() {
	if c.MaxK <= 0 {
		c.MaxK = 1000
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 4096
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.MaxAlpha <= 0 {
		c.MaxAlpha = 1 << 20
	}
}

// Server routes HTTP requests onto one open index. Create with New,
// mount via Handler, stop with Shutdown (which flushes the index).
type Server struct {
	idx     *hdindex.Index
	cfg     Config
	mux     *http.ServeMux
	started time.Time
	logger  *slog.Logger
	// adm is the overload-control layer; nil when Config enables none of
	// its mechanisms (every call site is nil-safe).
	adm *admission.Controller

	mSearch, mBatch, mInsert, mDelete, mStats, mHealth, mMetrics endpointMetrics
}

// New wraps an open index in a Server.
func New(idx *hdindex.Index, cfg Config) *Server {
	cfg.defaults()
	s := &Server{idx: idx, cfg: cfg, mux: http.NewServeMux(), started: time.Now(), logger: cfg.Logger}
	if s.logger == nil {
		s.logger = slog.Default()
	}
	s.adm = admission.New(admission.Config{
		MaxInflight:     cfg.MaxInflight,
		MaxQueue:        cfg.MaxQueue,
		TenantRPS:       cfg.TenantRPS,
		TenantBurst:     cfg.TenantBurst,
		DegradePressure: cfg.DegradePressure,
	})
	s.mux.HandleFunc("POST /search", s.instrument(&s.mSearch, s.handleSearch))
	s.mux.HandleFunc("POST /searchbatch", s.instrument(&s.mBatch, s.handleSearchBatch))
	s.mux.HandleFunc("POST /insert", s.instrument(&s.mInsert, s.handleInsert))
	s.mux.HandleFunc("POST /delete", s.instrument(&s.mDelete, s.handleDelete))
	s.mux.HandleFunc("GET /stats", s.instrument(&s.mStats, s.handleStats))
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	if cfg.Pprof {
		// The default-mux registrations of net/http/pprof, mounted
		// explicitly so the server never depends on http.DefaultServeMux.
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return s
}

// Handler returns the routed http.Handler for mounting in an
// http.Server or a test server.
func (s *Server) Handler() http.Handler { return s.mux }

// Shutdown flushes the index; call after the http.Server has drained.
func (s *Server) Shutdown() error { return s.idx.Flush() }

// handlerFunc is an endpoint body: it returns the response object, or
// an httpError/plain error.
type handlerFunc func(w http.ResponseWriter, r *http.Request) (any, error)

// httpError carries a status code (and an optional machine-readable
// error class) chosen by the handler.
type httpError struct {
	code    int
	errCode string // "code" field of the structured error body; may be empty
	msg     string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &httpError{code: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// Machine-readable error classes of the structured error body. The
// overload/failure classes map to HTTP statuses as:
//
//	overloaded       -> 503 + Retry-After (admission queue full or deadline cannot cover the wait)
//	tenant_throttled -> 429 + Retry-After (per-tenant rate exceeded)
//	wal_unavailable  -> 503 (WAL failed; index read-only, reads keep serving)
//	io_error         -> 503 (disk I/O failure in the page layer)
const (
	codeDimMismatch    = "dim_mismatch"
	codeBadOptions     = "bad_options"
	codeWALUnavailable = "wal_unavailable"
	codeIOError        = "io_error"
)

// instrument wraps a handler with a body-size cap, metrics, and uniform
// JSON rendering.
func (s *Server) instrument(m *endpointMetrics, h handlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		}
		start := time.Now()
		resp, err := h(w, r)
		elapsed := time.Since(start)
		m.observe(elapsed, err != nil)
		// Standard Server-Timing header: the server-side duration,
		// queue wait included. Lets clients (and the overload bench)
		// separate server latency from client-side delivery delay.
		w.Header().Set("Server-Timing",
			fmt.Sprintf("total;dur=%.3f", float64(elapsed.Nanoseconds())/1e6))
		if err != nil {
			writeError(w, r, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// errorBody is the structured error response: a human-readable message
// plus, for the client-error classes a caller can act on, a stable
// machine-readable code.
type errorBody struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}

func writeError(w http.ResponseWriter, r *http.Request, err error) {
	body := errorBody{Error: err.Error()}
	code := http.StatusInternalServerError
	var he *httpError
	var ae *admission.Error
	switch {
	case errors.As(err, &ae):
		// Shed/throttle decisions carry a Retry-After hint, rounded up to
		// whole seconds (the header's resolution, and never 0 — a zero
		// would read as "retry immediately" mid-overload).
		secs := int64((ae.RetryAfter + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
		code, body.Code = http.StatusServiceUnavailable, ae.Code
		if ae.Code == admission.CodeTenantThrottled {
			code = http.StatusTooManyRequests
		}
	case errors.As(err, &he):
		code, body.Code = he.code, he.errCode
	case errors.Is(err, hdindex.ErrDimMismatch):
		code, body.Code = http.StatusBadRequest, codeDimMismatch
	case errors.Is(err, hdindex.ErrBadOptions):
		code, body.Code = http.StatusBadRequest, codeBadOptions
	case errors.Is(err, hdindex.ErrWALUnavailable):
		// The WAL failed: writes are rejected while reads keep serving.
		// 503 tells the client this is the server's condition, not the
		// request's.
		code, body.Code = http.StatusServiceUnavailable, codeWALUnavailable
	case errors.Is(err, hdindex.ErrIO):
		code, body.Code = http.StatusServiceUnavailable, codeIOError
	case errors.Is(err, context.DeadlineExceeded):
		code = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// The client went away; the status is for the log line only.
		code = StatusClientClosedRequest
	}
	writeJSON(w, code, body)
}

// StatusClientClosedRequest is nginx's non-standard 499, used when the
// client cancelled the request before the response was ready.
const StatusClientClosedRequest = 499

// decodeBody strictly parses the JSON request body into v.
func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return &httpError{code: http.StatusRequestEntityTooLarge,
				msg: fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit)}
		}
		return badRequest("invalid request body: %v", err)
	}
	if dec.More() {
		return badRequest("invalid request body: trailing data after JSON object")
	}
	return nil
}

// queryContext applies the effective deadline: the server default,
// lowered by the request's timeout_ms if given.
func (s *Server) queryContext(r *http.Request, timeoutMs int) (context.Context, context.CancelFunc) {
	ctx := r.Context()
	d := s.cfg.QueryTimeout
	// The upper bound is checked before multiplying: an absurd
	// timeout_ms would overflow the Duration and could wrap to an
	// arbitrary value, either disabling the server deadline or imposing
	// a near-zero one. Out-of-range values are ignored, like absent.
	if timeoutMs > 0 && int64(timeoutMs) <= int64(math.MaxInt64)/int64(time.Millisecond) {
		if rd := time.Duration(timeoutMs) * time.Millisecond; d == 0 || rd < d {
			d = rd
		}
	}
	if d > 0 {
		return context.WithTimeout(ctx, d)
	}
	return ctx, func() {}
}

// admit runs the request through the admission controller: per-tenant
// token bucket first, then the weighted concurrency limiter, queueing
// against the request's own deadline. The returned release must be
// called exactly once when the work finishes. Shed decisions surface
// as *admission.Error, which writeError maps to 429/503 with a
// Retry-After header. A nil controller admits everything for free.
func (s *Server) admit(ctx context.Context, r *http.Request, weight int) (func(), error) {
	return s.adm.Acquire(ctx, r.Header.Get("X-Tenant"), weight)
}

// ResultJSON is one neighbour in a search response.
type ResultJSON struct {
	ID   uint64  `json:"id"`
	Dist float64 `json:"dist"`
}

func toResultJSON(res []hdindex.Result) []ResultJSON {
	out := make([]ResultJSON, len(res))
	for i, r := range res {
		out[i] = ResultJSON{ID: r.ID, Dist: r.Dist}
	}
	return out
}

// tuningFields are the per-request filter-cascade overrides shared by
// /search and /searchbatch. Zero values inherit the index's built
// parameters; "ptolemaic" is a JSON tri-state (absent = built default).
type tuningFields struct {
	Alpha         int   `json:"alpha"`
	Gamma         int   `json:"gamma"`
	MaxCandidates int   `json:"max_candidates"`
	Ptolemaic     *bool `json:"ptolemaic"`
}

// options converts the request's tuning fields into query options:
// negative knobs are a coded 400, values above the server's MaxAlpha
// cap are clamped to it.
func (t tuningFields) options(cfg Config, withStats bool) ([]hdindex.QueryOption, error) {
	for _, f := range []struct {
		name string
		v    int
	}{{"alpha", t.Alpha}, {"gamma", t.Gamma}, {"max_candidates", t.MaxCandidates}} {
		if f.v < 0 {
			return nil, &httpError{code: http.StatusBadRequest, errCode: codeBadOptions,
				msg: fmt.Sprintf("%s must be >= 0, got %d", f.name, f.v)}
		}
	}
	var opts []hdindex.QueryOption
	if v := min(t.Alpha, cfg.MaxAlpha); v > 0 {
		opts = append(opts, hdindex.WithAlpha(v))
	}
	if v := min(t.Gamma, cfg.MaxAlpha); v > 0 {
		opts = append(opts, hdindex.WithGamma(v))
	}
	if v := min(t.MaxCandidates, cfg.MaxAlpha); v > 0 {
		opts = append(opts, hdindex.WithMaxCandidates(v))
	}
	if t.Ptolemaic != nil {
		opts = append(opts, hdindex.WithPtolemaic(*t.Ptolemaic))
	}
	if withStats {
		opts = append(opts, hdindex.WithStats())
	}
	return opts, nil
}

type searchRequest struct {
	Query     []float32 `json:"query"`
	K         int       `json:"k"`
	TimeoutMs int       `json:"timeout_ms"`
	Stats     bool      `json:"stats"`
	tuningFields
}

// QueryStatsJSON mirrors hdindex.Stats with stable snake_case keys, so
// the wire format stays put if the internal struct evolves. Alongside
// the work counters it echoes the effective filter cascade the query
// ran with — with per-request overrides the knobs are no longer implied
// by the built index.
type QueryStatsJSON struct {
	Candidates      int    `json:"candidates"`
	TreeEntries     int    `json:"tree_entries"`
	PageReads       uint64 `json:"page_reads"`
	PageHits        uint64 `json:"page_hits"`
	PageMisses      uint64 `json:"page_misses"`
	ExactDistances  int    `json:"exact_distances"`
	MemtableScanned int    `json:"memtable_scanned"`
	Alpha           int    `json:"alpha"`
	Beta            int    `json:"beta"`
	Gamma           int    `json:"gamma"`
	Ptolemaic       bool   `json:"ptolemaic"`
	// Degraded reports that adaptive degradation actually shrank a
	// cascade knob for this query (overload pressure + no explicit
	// α/β/γ in the request).
	Degraded bool `json:"degraded,omitempty"`
	// PhaseUS attributes the query's time to pipeline phases, in
	// microseconds, keyed by phase name (tree_walk, candidate_sort,
	// refine, memtable_scan, topk_merge). Omitted when telemetry is
	// disabled on the index. On a sharded index the phases sum across
	// shards — work, not wall time.
	PhaseUS map[string]float64 `json:"phase_us,omitempty"`
}

func phaseUS(p telemetry.PhaseNS) map[string]float64 {
	if p.Total() == 0 {
		return nil
	}
	out := make(map[string]float64, telemetry.NumPhases)
	for i, ns := range p {
		out[telemetry.Phase(i).String()] = float64(ns) / 1e3
	}
	return out
}

func toStatsJSON(st *hdindex.Stats) *QueryStatsJSON {
	if st == nil {
		return nil
	}
	return &QueryStatsJSON{
		Candidates:      st.Candidates,
		TreeEntries:     st.TreeEntries,
		PageReads:       st.PageReads,
		PageHits:        st.PageHits,
		PageMisses:      st.PageMisses,
		ExactDistances:  st.ExactDistances,
		MemtableScanned: st.MemtableScanned,
		Alpha:           st.Alpha,
		Beta:            st.Beta,
		Gamma:           st.Gamma,
		Ptolemaic:       st.Ptolemaic,
		Degraded:        st.Degraded,
		PhaseUS:         phaseUS(st.Phases),
	}
}

type searchResponse struct {
	Results []ResultJSON    `json:"results"`
	Stats   *QueryStatsJSON `json:"stats,omitempty"`
}

func (s *Server) validateQuery(name string, q []float32) error {
	if len(q) == 0 {
		return badRequest("%s must be non-empty", name)
	}
	if len(q) != s.idx.Dim() {
		return &httpError{code: http.StatusBadRequest, errCode: codeDimMismatch,
			msg: fmt.Sprintf("%s has %d dims, index has %d", name, len(q), s.idx.Dim())}
	}
	return nil
}

func (s *Server) validateK(k int) error {
	if k < 1 {
		return badRequest("k must be >= 1, got %d", k)
	}
	if k > s.cfg.MaxK {
		return badRequest("k = %d exceeds the server limit %d", k, s.cfg.MaxK)
	}
	return nil
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) (any, error) {
	var req searchRequest
	if err := decodeBody(r, &req); err != nil {
		return nil, err
	}
	if err := s.validateQuery("query", req.Query); err != nil {
		return nil, err
	}
	if err := s.validateK(req.K); err != nil {
		return nil, err
	}
	// With the slow-query log armed, stats are requested regardless of
	// the client's wish (the phase breakdown is the log's payload) and
	// stripped from the response below when not asked for.
	slowLog := s.cfg.SlowQueryThreshold > 0
	opts, err := req.tuningFields.options(s.cfg, req.Stats || slowLog)
	if err != nil {
		return nil, err
	}
	ctx, cancel := s.queryContext(r, req.TimeoutMs)
	defer cancel()
	release, err := s.admit(ctx, r, 1)
	if err != nil {
		return nil, err
	}
	defer release()
	// The degrade decision is taken after the queue wait, against the
	// current pressure: a request that queued through the worst of a
	// burst does not pay the quality cut if pressure already fell.
	if s.adm.ShouldDegrade() {
		opts = append(opts, hdindex.WithDegrade())
	}

	start := time.Now()
	resp, err := s.idx.Query(ctx, req.Query, req.K, opts...)
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	s.adm.Observe(elapsed)
	if slowLog && elapsed >= s.cfg.SlowQueryThreshold {
		s.logSlowQuery("search", elapsed, 1, req.K, resp.Stats)
	}
	if !req.Stats {
		resp.Stats = nil
	}
	return searchResponse{Results: toResultJSON(resp.Results), Stats: toStatsJSON(resp.Stats)}, nil
}

// logSlowQuery emits one structured slow-query record: the endpoint,
// the request shape, and the full per-phase breakdown with the work
// counters — enough to tell a cold-cache refinement stall from a
// memtable pileup without re-running the query.
func (s *Server) logSlowQuery(endpoint string, elapsed time.Duration, queries, k int, st *hdindex.Stats) {
	attrs := []any{
		slog.String("endpoint", endpoint),
		slog.Duration("elapsed", elapsed),
		slog.Int("queries", queries),
		slog.Int("k", k),
	}
	if st != nil {
		phases := make([]any, 0, telemetry.NumPhases)
		for i, ns := range st.Phases {
			phases = append(phases, slog.Duration(telemetry.Phase(i).String(), time.Duration(ns)))
		}
		attrs = append(attrs,
			slog.Group("phases", phases...),
			slog.Int("candidates", st.Candidates),
			slog.Int("tree_entries", st.TreeEntries),
			slog.Uint64("page_reads", st.PageReads),
			slog.Uint64("page_misses", st.PageMisses),
			slog.Int("exact_distances", st.ExactDistances),
			slog.Int("memtable_scanned", st.MemtableScanned),
			slog.Int("alpha", st.Alpha),
			slog.Int("gamma", st.Gamma),
		)
	}
	s.logger.Warn("slow query", attrs...)
}

type searchBatchRequest struct {
	Queries   [][]float32 `json:"queries"`
	K         int         `json:"k"`
	TimeoutMs int         `json:"timeout_ms"`
	Stats     bool        `json:"stats"`
	tuningFields
}

type searchBatchResponse struct {
	Results [][]ResultJSON `json:"results"`
	// Stats holds one entry per query, in input order, when the request
	// set "stats": true.
	Stats []*QueryStatsJSON `json:"stats,omitempty"`
}

func (s *Server) handleSearchBatch(w http.ResponseWriter, r *http.Request) (any, error) {
	var req searchBatchRequest
	if err := decodeBody(r, &req); err != nil {
		return nil, err
	}
	if len(req.Queries) == 0 {
		return nil, badRequest("queries must be non-empty")
	}
	if len(req.Queries) > s.cfg.MaxBatch {
		return nil, badRequest("batch of %d queries exceeds the server limit %d", len(req.Queries), s.cfg.MaxBatch)
	}
	for i, q := range req.Queries {
		// Build the field name only on failure: a full MaxBatch request
		// must not pay per-query formatting just to validate.
		if len(q) == 0 {
			return nil, badRequest("queries[%d] must be non-empty", i)
		}
		if len(q) != s.idx.Dim() {
			return nil, &httpError{code: http.StatusBadRequest, errCode: codeDimMismatch,
				msg: fmt.Sprintf("queries[%d] has %d dims, index has %d", i, len(q), s.idx.Dim())}
		}
	}
	if err := s.validateK(req.K); err != nil {
		return nil, err
	}
	slowLog := s.cfg.SlowQueryThreshold > 0
	opts, err := req.tuningFields.options(s.cfg, req.Stats || slowLog)
	if err != nil {
		return nil, err
	}
	ctx, cancel := s.queryContext(r, req.TimeoutMs)
	defer cancel()
	// A batch weighs its query count: one huge /searchbatch occupies the
	// limiter like the equivalent run of single searches would.
	release, err := s.admit(ctx, r, len(req.Queries))
	if err != nil {
		return nil, err
	}
	defer release()
	if s.adm.ShouldDegrade() {
		opts = append(opts, hdindex.WithDegrade())
	}

	start := time.Now()
	res, err := s.idx.QueryBatch(ctx, req.Queries, req.K, opts...)
	if err != nil {
		return nil, err
	}
	s.adm.Observe(time.Since(start))
	if elapsed := time.Since(start); slowLog && elapsed >= s.cfg.SlowQueryThreshold {
		// One record for the whole batch, with the work summed across
		// its queries — per-query records would let a big batch flood
		// the log.
		agg := &hdindex.Stats{}
		for _, rs := range res {
			if st := rs.Stats; st != nil {
				agg.Candidates += st.Candidates
				agg.TreeEntries += st.TreeEntries
				agg.PageReads += st.PageReads
				agg.PageMisses += st.PageMisses
				agg.ExactDistances += st.ExactDistances
				agg.MemtableScanned += st.MemtableScanned
				agg.Phases.Add(st.Phases)
				agg.Alpha, agg.Gamma = st.Alpha, st.Gamma
			}
		}
		s.logSlowQuery("searchbatch", elapsed, len(req.Queries), req.K, agg)
	}
	out := searchBatchResponse{Results: make([][]ResultJSON, len(res))}
	if req.Stats {
		out.Stats = make([]*QueryStatsJSON, len(res))
	}
	for i, rs := range res {
		out.Results[i] = toResultJSON(rs.Results)
		if req.Stats {
			out.Stats[i] = toStatsJSON(rs.Stats)
		}
	}
	return out, nil
}

type insertRequest struct {
	Vector []float32 `json:"vector"`
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) (any, error) {
	if s.cfg.ReadOnly {
		return nil, &httpError{code: http.StatusForbidden, msg: "server is read-only"}
	}
	var req insertRequest
	if err := decodeBody(r, &req); err != nil {
		return nil, err
	}
	if err := s.validateQuery("vector", req.Vector); err != nil {
		return nil, err
	}
	release, err := s.admit(r.Context(), r, 1)
	if err != nil {
		return nil, err
	}
	defer release()
	// Insert is durable when it returns — the index WAL-logs it — so no
	// flush here: the old flush-per-insert path serialised every write
	// against in-flight searches and rewrote whole pages per vector.
	id, err := s.idx.Insert(req.Vector)
	if err != nil {
		return nil, err
	}
	return map[string]uint64{"id": id}, nil
}

type deleteRequest struct {
	ID       uint64 `json:"id"`
	Undelete bool   `json:"undelete"`
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) (any, error) {
	if s.cfg.ReadOnly {
		return nil, &httpError{code: http.StatusForbidden, msg: "server is read-only"}
	}
	var req deleteRequest
	if err := decodeBody(r, &req); err != nil {
		return nil, err
	}
	release, err := s.admit(r.Context(), r, 1)
	if err != nil {
		return nil, err
	}
	defer release()
	op, verb := s.idx.Delete, "deleted"
	if req.Undelete {
		op, verb = s.idx.Undelete, "undeleted"
	}
	if err := op(req.ID); err != nil {
		if errors.Is(err, hdindex.ErrUnknownID) {
			return nil, badRequest("%v", err)
		}
		return nil, err
	}
	return map[string]uint64{verb: req.ID}, nil
}

// ShardStatsJSON is one shard's row of the /stats layout breakdown.
type ShardStatsJSON struct {
	ID         int    `json:"id"`
	Count      uint64 `json:"count"`
	Deleted    int    `json:"deleted"`
	SizeOnDisk int64  `json:"size_on_disk"`
}

// IOStatsJSON is the /stats buffer-pool and I/O block: the cumulative
// pager counters across every index file since the server opened the
// index. hit_ratio = hits/(hits+misses) makes the cache behaviour of
// the page-ordered candidate fetch observable in production.
type IOStatsJSON struct {
	Reads    uint64  `json:"reads"`
	Writes   uint64  `json:"writes"`
	Hits     uint64  `json:"hits"`
	Misses   uint64  `json:"misses"`
	HitRatio float64 `json:"hit_ratio"`
}

// StatsResponse is the /stats payload.
type StatsResponse struct {
	Index struct {
		Count      uint64 `json:"count"`
		Dim        int    `json:"dim"`
		Deleted    int    `json:"deleted"`
		SizeOnDisk int64  `json:"size_on_disk"`
		// Shards describes the on-disk layout: 1 for a legacy
		// single-index directory, N for a manifest-backed sharded
		// layout, with the per-shard breakdown alongside.
		Shards   int              `json:"shards"`
		PerShard []ShardStatsJSON `json:"per_shard"`
		IO       IOStatsJSON      `json:"io"`
		// WAL is the live-ingest block: memtable occupancy (the query
		// staleness bound), WAL size and group-commit counters, records
		// replayed at open (>0 means the server recovered from a crash),
		// and compaction history. Summed across shards.
		WAL hdindex.IngestStats `json:"wal"`
	} `json:"index"`
	UptimeSeconds float64                  `json:"uptime_seconds"`
	Endpoints     map[string]EndpointStats `json:"endpoints"`
	// Health mirrors /healthz's status field so one /stats poll carries
	// the whole serving picture.
	Health string `json:"health"`
	// Identity is the shard identity stamp when this server holds one
	// shard of a sharded build (see Config.Identity).
	Identity *shard.Identity `json:"identity,omitempty"`
	// Admission is the overload-control block: accepted/shed counters,
	// live inflight/queued occupancy, the pressure signal, and whether
	// new unpinned queries are being degraded. Omitted when admission
	// control is disabled.
	Admission *admission.Stats `json:"admission,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) (any, error) {
	now := time.Now()
	up := now.Sub(s.started)
	var resp StatsResponse
	resp.Index.Count = s.idx.Count()
	resp.Index.Dim = s.idx.Dim()
	resp.Index.Deleted = s.idx.DeletedCount()
	resp.Index.SizeOnDisk = s.idx.SizeOnDisk()
	shards := s.idx.Shards()
	resp.Index.Shards = len(shards)
	resp.Index.PerShard = make([]ShardStatsJSON, len(shards))
	for i, sh := range shards {
		resp.Index.PerShard[i] = ShardStatsJSON{
			ID: sh.ID, Count: sh.Count, Deleted: sh.Deleted, SizeOnDisk: sh.SizeOnDisk,
		}
	}
	io := s.idx.IOStats()
	resp.Index.IO = IOStatsJSON{
		Reads: io.Reads, Writes: io.Writes, Hits: io.Hits, Misses: io.Misses,
		HitRatio: io.HitRatio(),
	}
	resp.Index.WAL = s.idx.IngestStats()
	resp.UptimeSeconds = up.Seconds()
	resp.Health = s.healthState()
	resp.Identity = s.cfg.Identity
	if s.adm != nil {
		st := s.adm.Stats()
		resp.Admission = &st
	}
	resp.Endpoints = make(map[string]EndpointStats, 7)
	for _, ep := range s.endpointsInOrder() {
		resp.Endpoints[ep.name] = ep.m.statsRow(s.started, now)
	}
	return resp, nil
}

// healthState resolves the serving state machine, most severe first:
//
//	read_only  — the WAL failed; writes are rejected, reads keep serving
//	overloaded — the admission queue is saturated and requests are shed
//	degraded   — pressure-degraded cascades, or the compaction circuit
//	             breaker is open (old tree generation serving)
//	ok
func (s *Server) healthState() string {
	ist := s.idx.IngestStats()
	switch {
	case ist.WALFailed:
		return "read_only"
	case s.adm.Overloaded():
		return "overloaded"
	case s.adm.ShouldDegrade() || ist.CompactBreaker == "open":
		return "degraded"
	}
	return "ok"
}

// HealthzResponse is the /healthz payload. Beyond the liveness status
// it carries enough identity for a cluster coordinator's startup check:
// the vector count and dimensionality always, and the shard identity
// stamp when the served directory is one shard of a sharded build.
type HealthzResponse struct {
	Status string `json:"status"`
	Count  uint64 `json:"count"`
	Dim    int    `json:"dim"`
	// Identity names which shard of which sharded build this server
	// holds; absent for standalone indexes.
	Identity *shard.Identity `json:"identity,omitempty"`
}

// handleHealthz reports the health state machine. Status is 200 for
// ok, degraded, and read_only — the server is still answering queries
// and a restart would not help — and 503 for overloaded, which pulls
// the instance out of load-balancer rotation until the storm passes.
// Registered raw (not through instrument) so the body always carries
// the "status" field whatever the HTTP code.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	status := s.healthState()
	code := http.StatusOK
	if status == "overloaded" {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, HealthzResponse{
		Status:   status,
		Count:    s.idx.Count(),
		Dim:      s.idx.Dim(),
		Identity: s.cfg.Identity,
	})
	s.mHealth.observe(time.Since(start), code != http.StatusOK)
}
