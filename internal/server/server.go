// Package server is the HTTP JSON serving layer over an HD-Index: the
// piece that turns the library into a system. It exposes kNN search
// (single and batch), index mutation, and introspection endpoints,
// honours per-request deadlines via context cancellation threaded down
// to core's query loop, and keeps per-endpoint latency/QPS counters.
//
// Endpoints:
//
//	POST /search      {"query": [...], "k": 10}        -> {"results": [{"id","dist"},...]}
//	POST /searchbatch {"queries": [[...],...], "k": 5} -> {"results": [[...],...]}
//	POST /insert      {"vector": [...]}                -> {"id": n}
//	POST /delete      {"id": n, "undelete": false}     -> {"deleted": n}
//	GET  /stats                                        -> index + per-endpoint counters
//	GET  /healthz                                      -> {"status": "ok"}
//
// /search and /searchbatch accept per-request tuning fields — "alpha",
// "gamma", "ptolemaic", "max_candidates" — overriding the index's
// built filter cascade for that request only, or a named quality
// preset ("preset": "exact"|"balanced"|"fast"|"auto") standing for a
// whole knob assignment; the two are mutually exclusive. Requests that
// choose neither inherit their tenant's tier preset (Config.Tiers)
// and then the server default. "stats": true returns the work counters
// with the effective cascade and resolved preset echoed back.
// Out-of-range knobs are a 400 with a structured {"error", "code"}
// body; values above the server's MaxAlpha cap are clamped, not
// rejected.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"net/http/pprof"
	"slices"
	"strconv"
	"time"

	hdindex "github.com/hd-index/hdindex"
	"github.com/hd-index/hdindex/internal/admission"
	"github.com/hd-index/hdindex/internal/shard"
	"github.com/hd-index/hdindex/internal/slo"
	"github.com/hd-index/hdindex/internal/telemetry"
)

// Config tunes the server independently of the index parameters.
type Config struct {
	// QueryTimeout is the default deadline applied to /search and
	// /searchbatch requests. 0 means no deadline. A request may lower
	// (never raise) it with "timeout_ms".
	QueryTimeout time.Duration
	// MaxK caps the requested neighbour count (default 1000).
	MaxK int
	// MaxBatch caps the number of queries in one /searchbatch request
	// (default 4096).
	MaxBatch int
	// MaxBodyBytes caps the request body size before decoding (default
	// 64 MiB), bounding memory per request ahead of any validation.
	MaxBodyBytes int64
	// MaxAlpha caps the per-request "alpha"/"gamma"/"max_candidates"
	// tuning knobs (default 1 << 20). Requests above the cap are
	// clamped to it — a tenant asking for "as much recall as allowed"
	// gets the ceiling, not an error.
	MaxAlpha int
	// ReadOnly disables /insert and /delete.
	ReadOnly bool
	// NoFlushOnWrite is a no-op kept for configuration compatibility.
	// It used to skip the full index flush /insert once paid for
	// durability; inserts are now write-ahead logged by the index
	// itself, so every acknowledged /insert is durable and no endpoint
	// flushes (tune the guarantee with hdserve's -wal-sync instead).
	NoFlushOnWrite bool
	// SlowQueryThreshold enables the slow-query log: /search requests
	// slower than this (and /searchbatch requests whose whole batch is)
	// are logged through Logger with the per-phase breakdown and work
	// counters. 0 disables it.
	SlowQueryThreshold time.Duration
	// Logger receives the slow-query records; nil uses slog.Default().
	Logger *slog.Logger
	// Pprof mounts net/http/pprof under /debug/pprof/ on the server's
	// mux. Off by default: profiling endpoints expose internals and
	// belong behind an operator flag (hdserve -pprof).
	Pprof bool

	// MaxInflight caps the weight of concurrently admitted work on the
	// query/mutation endpoints (a /searchbatch of q queries weighs q,
	// everything else weighs 1). Requests beyond the cap wait in a
	// bounded FIFO admission queue; requests that do not fit the queue —
	// or whose deadline cannot cover the estimated queue wait — are shed
	// immediately with a 503, code "overloaded", and a Retry-After hint.
	// 0 disables the limiter. Introspection endpoints (/stats, /healthz,
	// /metrics) are never limited: they must answer during an overload.
	MaxInflight int
	// MaxQueue caps the weight waiting in the admission queue (0 = 4 ×
	// MaxInflight).
	MaxQueue int
	// TenantRPS rate-limits each tenant (the X-Tenant request header;
	// absent = the shared "" tenant) to this sustained accepted-request
	// rate, shedding the excess with a 429, code "tenant_throttled", and
	// a Retry-After hint. 0 disables per-tenant throttling.
	TenantRPS float64
	// TenantBurst is the token-bucket depth (0 = max(2 × TenantRPS, 1)).
	TenantBurst float64
	// DegradePressure enables adaptive degradation: when the admission
	// queue's estimated drain time (queued weight × recent p99, in
	// seconds) exceeds this threshold, searches that leave their cascade
	// knobs unset run the cheap cascade (the "fast" preset) and their
	// stats echo degraded=true. 0 disables degradation.
	DegradePressure float64

	// DefaultPreset is the quality preset applied when a request names
	// none and its tenant's tier names none. Empty means "auto": the
	// tuner's operating point when an SLO tuner runs, the built
	// parameters otherwise, and the fast cascade under overload
	// pressure — exactly the pre-preset behaviour.
	DefaultPreset hdindex.Preset
	// Tiers maps tenants (X-Tenant) to quality tiers: a preset plus a
	// share of the admission budget (hdserve -tiers). Nil disables
	// tiering.
	Tiers *slo.TierConfig
	// SLO, when non-nil, runs the auto-tuner holding this target
	// (hdserve -slo); requires Frontier.
	SLO *slo.Target
	// Frontier is the startup recall/latency frontier the tuner picks
	// from (hdserve -frontier, written by hdbench -sweep-out). The
	// tuner refreshes it by replaying sampled real queries during
	// low-pressure windows.
	Frontier *slo.Frontier
	// RetuneInterval overrides how often the tuner re-evaluates its
	// choice (0 = the tuner's default, 30s).
	RetuneInterval time.Duration
	// RemeasureInterval overrides how often the tuner replays sampled
	// queries to refresh the frontier (0 = default 10m, negative =
	// never).
	RemeasureInterval time.Duration

	// Identity is the shard identity stamp of the served directory, when
	// it is one shard of a sharded build (hdserve reads identity.json
	// and passes it through). /healthz and /stats echo it so a cluster
	// coordinator can verify at startup that this endpoint serves the
	// shard its manifest says it does, instead of silently merging
	// wrong-shard results. Nil for standalone indexes.
	Identity *shard.Identity
}

func (c *Config) defaults() {
	if c.MaxK <= 0 {
		c.MaxK = 1000
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 4096
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.MaxAlpha <= 0 {
		c.MaxAlpha = 1 << 20
	}
}

// Server routes HTTP requests onto one open index. Create with New,
// mount via Handler, stop with Shutdown (which flushes the index).
type Server struct {
	idx     *hdindex.Index
	cfg     Config
	mux     *http.ServeMux
	started time.Time
	logger  *slog.Logger
	// adm is the overload-control layer; nil when Config enables none of
	// its mechanisms (every call site is nil-safe).
	adm *admission.Controller
	// tuner holds the SLO auto-tuner; nil unless Config.SLO and
	// Config.Frontier are both set. tunerStop ends its Run goroutine.
	tuner     *slo.Tuner
	tunerStop context.CancelFunc
	// defaultPreset is Config.DefaultPreset with "" resolved to auto.
	defaultPreset hdindex.Preset

	mSearch, mBatch, mInsert, mDelete, mStats, mHealth, mMetrics endpointMetrics
}

// New wraps an open index in a Server.
func New(idx *hdindex.Index, cfg Config) *Server {
	cfg.defaults()
	s := &Server{idx: idx, cfg: cfg, mux: http.NewServeMux(), started: time.Now(), logger: cfg.Logger}
	if s.logger == nil {
		s.logger = slog.Default()
	}
	s.defaultPreset = cfg.DefaultPreset
	if s.defaultPreset == "" {
		s.defaultPreset = hdindex.PresetAuto
	}
	admCfg := admission.Config{
		MaxInflight:     cfg.MaxInflight,
		MaxQueue:        cfg.MaxQueue,
		TenantRPS:       cfg.TenantRPS,
		TenantBurst:     cfg.TenantBurst,
		DegradePressure: cfg.DegradePressure,
	}
	if cfg.Tiers != nil {
		admCfg.TenantPolicy = tenantPolicy(cfg, admCfg)
	}
	s.adm = admission.New(admCfg)
	if cfg.SLO != nil && cfg.Frontier != nil {
		tuner, err := slo.NewTuner(cfg.Frontier, slo.Config{
			Target:            *cfg.SLO,
			Interval:          cfg.RetuneInterval,
			RemeasureInterval: cfg.RemeasureInterval,
			Replay:            s.replay,
			// Re-measurement replays the whole sample across every
			// frontier point; skip it whenever admission is already
			// degrading or shedding real traffic.
			UnderPressure: func() bool { return s.adm.ShouldDegrade() || s.adm.Overloaded() },
		})
		if err != nil {
			// A frontier that fails validation disables tuning but must
			// not take the server down with it: auto falls back to the
			// built parameters, which is the no-tuner behaviour anyway.
			s.logger.Error("slo tuner disabled: bad frontier", "err", err)
		} else {
			s.tuner = tuner
			ctx, cancel := context.WithCancel(context.Background())
			s.tunerStop = cancel
			go tuner.Run(ctx)
		}
	}
	s.mux.HandleFunc("POST /search", s.instrument(&s.mSearch, s.handleSearch))
	s.mux.HandleFunc("POST /searchbatch", s.instrument(&s.mBatch, s.handleSearchBatch))
	s.mux.HandleFunc("POST /insert", s.instrument(&s.mInsert, s.handleInsert))
	s.mux.HandleFunc("POST /delete", s.instrument(&s.mDelete, s.handleDelete))
	s.mux.HandleFunc("GET /stats", s.instrument(&s.mStats, s.handleStats))
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	if cfg.Pprof {
		// The default-mux registrations of net/http/pprof, mounted
		// explicitly so the server never depends on http.DefaultServeMux.
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return s
}

// tenantPolicy derives the admission budget of each tier from the
// server's base per-tenant knobs: rps/burst scale by the tier's
// shares, and max_inflight_share carves the tier's slice out of the
// server's total inflight+queued capacity. Tenants with no tier (and
// no default tier) keep the base budget untouched.
func tenantPolicy(cfg Config, base admission.Config) func(string) admission.TenantBudget {
	totalCap := base.MaxInflight + base.MaxQueue
	if base.MaxInflight > 0 && base.MaxQueue <= 0 {
		totalCap = 5 * base.MaxInflight // the controller's 4× default queue + inflight
	}
	baseBurst := base.TenantBurst
	if baseBurst <= 0 {
		baseBurst = max(2*base.TenantRPS, 1)
	}
	return func(tenant string) admission.TenantBudget {
		_, tier, ok := cfg.Tiers.TierFor(tenant)
		if !ok {
			return admission.TenantBudget{}
		}
		var b admission.TenantBudget
		if tier.RPSShare > 0 {
			b.RPS = base.TenantRPS * tier.RPSShare
		}
		if tier.BurstShare > 0 {
			b.Burst = baseBurst * tier.BurstShare
		}
		if tier.MaxInflightShare > 0 && totalCap > 0 {
			b.MaxInflight = max(int(float64(totalCap)*tier.MaxInflightShare), 1)
		}
		return b
	}
}

// replay is the tuner's ReplayFunc: it runs the sampled queries
// against the live index at an explicit operating point and reports
// latencies plus result IDs. It goes through the facade (not HTTP), so
// replays never count against admission or endpoint metrics.
func (s *Server) replay(ctx context.Context, queries [][]float32, k, alpha, gamma int) (slo.ReplayResult, error) {
	var out slo.ReplayResult
	out.IDs = make([][]uint64, len(queries))
	durs := make([]time.Duration, len(queries))
	var total time.Duration
	for i, q := range queries {
		start := time.Now()
		resp, err := s.idx.Query(ctx, q, k,
			hdindex.WithAlpha(max(alpha, k)), hdindex.WithGamma(max(gamma, k)))
		if err != nil {
			return slo.ReplayResult{}, err
		}
		durs[i] = time.Since(start)
		total += durs[i]
		ids := make([]uint64, len(resp.Results))
		for j, r := range resp.Results {
			ids[j] = r.ID
		}
		out.IDs[i] = ids
	}
	if len(queries) > 0 {
		out.MeanQueryUS = float64(total.Microseconds()) / float64(len(queries))
		slices.Sort(durs)
		idx := int(math.Ceil(0.99*float64(len(durs)))) - 1
		out.P99QueryUS = float64(durs[max(idx, 0)].Microseconds())
	}
	return out, nil
}

// Handler returns the routed http.Handler for mounting in an
// http.Server or a test server.
func (s *Server) Handler() http.Handler { return s.mux }

// Shutdown stops the tuner and flushes the index; call after the
// http.Server has drained.
func (s *Server) Shutdown() error {
	if s.tunerStop != nil {
		s.tunerStop()
	}
	return s.idx.Flush()
}

// handlerFunc is an endpoint body: it returns the response object, or
// an httpError/plain error.
type handlerFunc func(w http.ResponseWriter, r *http.Request) (any, error)

// httpError carries a status code (and an optional machine-readable
// error class) chosen by the handler.
type httpError struct {
	code    int
	errCode string // "code" field of the structured error body; may be empty
	msg     string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &httpError{code: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// Machine-readable error classes of the structured error body. The
// overload/failure classes map to HTTP statuses as:
//
//	overloaded       -> 503 + Retry-After (admission queue full or deadline cannot cover the wait)
//	tenant_throttled -> 429 + Retry-After (per-tenant rate exceeded)
//	wal_unavailable  -> 503 (WAL failed; index read-only, reads keep serving)
//	io_error         -> 503 (disk I/O failure in the page layer)
const (
	codeDimMismatch    = "dim_mismatch"
	codeBadOptions     = "bad_options"
	codeWALUnavailable = "wal_unavailable"
	codeIOError        = "io_error"
)

// instrument wraps a handler with a body-size cap, metrics, and uniform
// JSON rendering.
func (s *Server) instrument(m *endpointMetrics, h handlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		}
		start := time.Now()
		resp, err := h(w, r)
		elapsed := time.Since(start)
		m.observe(elapsed, err != nil)
		// Standard Server-Timing header: the server-side duration,
		// queue wait included. Lets clients (and the overload bench)
		// separate server latency from client-side delivery delay.
		w.Header().Set("Server-Timing",
			fmt.Sprintf("total;dur=%.3f", float64(elapsed.Nanoseconds())/1e6))
		if err != nil {
			writeError(w, r, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// errorBody is the structured error response: a human-readable message
// plus, for the client-error classes a caller can act on, a stable
// machine-readable code.
type errorBody struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}

func writeError(w http.ResponseWriter, r *http.Request, err error) {
	body := errorBody{Error: err.Error()}
	code := http.StatusInternalServerError
	var he *httpError
	var ae *admission.Error
	switch {
	case errors.As(err, &ae):
		// Shed/throttle decisions carry a Retry-After hint, rounded up to
		// whole seconds (the header's resolution, and never 0 — a zero
		// would read as "retry immediately" mid-overload).
		secs := int64((ae.RetryAfter + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
		code, body.Code = http.StatusServiceUnavailable, ae.Code
		if ae.Code == admission.CodeTenantThrottled {
			code = http.StatusTooManyRequests
		}
	case errors.As(err, &he):
		code, body.Code = he.code, he.errCode
	case errors.Is(err, hdindex.ErrDimMismatch):
		code, body.Code = http.StatusBadRequest, codeDimMismatch
	case errors.Is(err, hdindex.ErrBadOptions):
		code, body.Code = http.StatusBadRequest, codeBadOptions
	case errors.Is(err, hdindex.ErrWALUnavailable):
		// The WAL failed: writes are rejected while reads keep serving.
		// 503 tells the client this is the server's condition, not the
		// request's.
		code, body.Code = http.StatusServiceUnavailable, codeWALUnavailable
	case errors.Is(err, hdindex.ErrIO):
		code, body.Code = http.StatusServiceUnavailable, codeIOError
	case errors.Is(err, context.DeadlineExceeded):
		code = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// The client went away; the status is for the log line only.
		code = StatusClientClosedRequest
	}
	writeJSON(w, code, body)
}

// StatusClientClosedRequest is nginx's non-standard 499, used when the
// client cancelled the request before the response was ready.
const StatusClientClosedRequest = 499

// decodeBody strictly parses the JSON request body into v.
func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return &httpError{code: http.StatusRequestEntityTooLarge,
				msg: fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit)}
		}
		return badRequest("invalid request body: %v", err)
	}
	if dec.More() {
		return badRequest("invalid request body: trailing data after JSON object")
	}
	return nil
}

// queryContext applies the effective deadline: the server default,
// lowered by the request's timeout_ms if given.
func (s *Server) queryContext(r *http.Request, timeoutMs int) (context.Context, context.CancelFunc) {
	ctx := r.Context()
	d := s.cfg.QueryTimeout
	// The upper bound is checked before multiplying: an absurd
	// timeout_ms would overflow the Duration and could wrap to an
	// arbitrary value, either disabling the server deadline or imposing
	// a near-zero one. Out-of-range values are ignored, like absent.
	if timeoutMs > 0 && int64(timeoutMs) <= int64(math.MaxInt64)/int64(time.Millisecond) {
		if rd := time.Duration(timeoutMs) * time.Millisecond; d == 0 || rd < d {
			d = rd
		}
	}
	if d > 0 {
		return context.WithTimeout(ctx, d)
	}
	return ctx, func() {}
}

// admit runs the request through the admission controller: per-tenant
// token bucket first, then the weighted concurrency limiter, queueing
// against the request's own deadline. The returned release must be
// called exactly once when the work finishes. Shed decisions surface
// as *admission.Error, which writeError maps to 429/503 with a
// Retry-After header. A nil controller admits everything for free.
func (s *Server) admit(ctx context.Context, r *http.Request, weight int) (func(), error) {
	return s.adm.Acquire(ctx, r.Header.Get("X-Tenant"), weight)
}

// ResultJSON is one neighbour in a search response.
type ResultJSON struct {
	ID   uint64  `json:"id"`
	Dist float64 `json:"dist"`
}

func toResultJSON(res []hdindex.Result) []ResultJSON {
	out := make([]ResultJSON, len(res))
	for i, r := range res {
		out[i] = ResultJSON{ID: r.ID, Dist: r.Dist}
	}
	return out
}

// tuningFields are the per-request filter-cascade overrides shared by
// /search and /searchbatch. Zero values inherit the index's built
// parameters; "ptolemaic" is a JSON tri-state (absent = built default).
// "preset" names a quality preset instead of spelling knobs out; the
// two ways are mutually exclusive.
type tuningFields struct {
	Alpha         int    `json:"alpha"`
	Gamma         int    `json:"gamma"`
	MaxCandidates int    `json:"max_candidates"`
	Ptolemaic     *bool  `json:"ptolemaic"`
	Preset        string `json:"preset"`
}

// hasKnobs reports whether the request spelled out any explicit
// cascade override.
func (t tuningFields) hasKnobs() bool {
	return t.Alpha != 0 || t.Gamma != 0 || t.MaxCandidates != 0 || t.Ptolemaic != nil
}

// resolvePreset picks the request's effective quality preset:
// the explicit "preset" field, else — only when the request also
// spelled no explicit knobs — the tenant's tier preset, else the
// server default. A request may not combine "preset" with explicit
// knobs: a preset IS a knob assignment, and silently letting one win
// would hide the conflict.
func (s *Server) resolvePreset(r *http.Request, t tuningFields) (hdindex.Preset, error) {
	if t.Preset != "" {
		if t.hasKnobs() {
			return "", &httpError{code: http.StatusBadRequest, errCode: codeBadOptions,
				msg: fmt.Sprintf("preset %q cannot be combined with explicit tuning knobs", t.Preset)}
		}
		p, err := hdindex.ParsePreset(t.Preset)
		if err != nil {
			return "", &httpError{code: http.StatusBadRequest, errCode: codeBadOptions, msg: err.Error()}
		}
		return p, nil
	}
	if t.hasKnobs() {
		// Explicit knobs are their own quality choice; tier and server
		// defaults must not override them.
		return hdindex.PresetAuto, nil
	}
	if name := s.cfg.Tiers.PresetFor(r.Header.Get("X-Tenant")); name != "" {
		return hdindex.Preset(name), nil // validated when the tier config loaded
	}
	return s.defaultPreset, nil
}

// presetOptions expands a resolved preset into query options for one
// request. Named presets (exact/balanced/fast) are pinned: their knobs
// come straight from the preset table and pressure degradation never
// touches them. Auto returns pinned=false and leaves the options to
// the explicit knobs + degrade/tuner path.
func (s *Server) presetOptions(p hdindex.Preset, k int, withStats bool) (opts []hdindex.QueryOption, pinned bool, err error) {
	if p == hdindex.PresetAuto {
		return nil, false, nil
	}
	opts, err = s.idx.PresetOptions(p, k)
	if err != nil {
		return nil, false, err
	}
	if withStats {
		opts = append(opts, hdindex.WithStats())
	}
	return opts, true, nil
}

// autoOptions appends the auto preset's post-admission decision: under
// pressure the fast cascade (stats echo degraded=true), otherwise the
// SLO tuner's operating point when one runs, otherwise nothing (the
// built parameters). Requests with explicit knobs keep them — the
// degrade marker is still appended because core only acts on it when
// every cascade knob is unset.
func (s *Server) autoOptions(opts []hdindex.QueryOption, t tuningFields, k int) []hdindex.QueryOption {
	if s.adm.ShouldDegrade() {
		return append(opts, hdindex.WithDegrade())
	}
	if s.tuner != nil && !t.hasKnobs() {
		if ch := s.tuner.Current(); ch.Alpha > 0 {
			// Clamped up to k: a frontier measured at k=10 must not make
			// a k=500 request invalid.
			opts = append(opts, hdindex.WithAlpha(max(ch.Alpha, k)), hdindex.WithGamma(max(ch.Gamma, k)))
		}
	}
	return opts
}

// options converts the request's tuning fields into query options:
// negative knobs are a coded 400, values above the server's MaxAlpha
// cap are clamped to it.
func (t tuningFields) options(cfg Config, withStats bool) ([]hdindex.QueryOption, error) {
	for _, f := range []struct {
		name string
		v    int
	}{{"alpha", t.Alpha}, {"gamma", t.Gamma}, {"max_candidates", t.MaxCandidates}} {
		if f.v < 0 {
			return nil, &httpError{code: http.StatusBadRequest, errCode: codeBadOptions,
				msg: fmt.Sprintf("%s must be >= 0, got %d", f.name, f.v)}
		}
	}
	var opts []hdindex.QueryOption
	if v := min(t.Alpha, cfg.MaxAlpha); v > 0 {
		opts = append(opts, hdindex.WithAlpha(v))
	}
	if v := min(t.Gamma, cfg.MaxAlpha); v > 0 {
		opts = append(opts, hdindex.WithGamma(v))
	}
	if v := min(t.MaxCandidates, cfg.MaxAlpha); v > 0 {
		opts = append(opts, hdindex.WithMaxCandidates(v))
	}
	if t.Ptolemaic != nil {
		opts = append(opts, hdindex.WithPtolemaic(*t.Ptolemaic))
	}
	if withStats {
		opts = append(opts, hdindex.WithStats())
	}
	return opts, nil
}

type searchRequest struct {
	Query     []float32 `json:"query"`
	K         int       `json:"k"`
	TimeoutMs int       `json:"timeout_ms"`
	Stats     bool      `json:"stats"`
	tuningFields
}

// QueryStatsJSON mirrors hdindex.Stats with stable snake_case keys, so
// the wire format stays put if the internal struct evolves. Alongside
// the work counters it echoes the effective filter cascade the query
// ran with — with per-request overrides the knobs are no longer implied
// by the built index.
type QueryStatsJSON struct {
	Candidates      int    `json:"candidates"`
	TreeEntries     int    `json:"tree_entries"`
	PageReads       uint64 `json:"page_reads"`
	PageHits        uint64 `json:"page_hits"`
	PageMisses      uint64 `json:"page_misses"`
	ExactDistances  int    `json:"exact_distances"`
	MemtableScanned int    `json:"memtable_scanned"`
	Alpha           int    `json:"alpha"`
	Beta            int    `json:"beta"`
	Gamma           int    `json:"gamma"`
	Ptolemaic       bool   `json:"ptolemaic"`
	// Degraded reports that adaptive degradation actually shrank a
	// cascade knob for this query (overload pressure + no explicit
	// α/β/γ in the request).
	Degraded bool `json:"degraded,omitempty"`
	// Preset echoes the quality preset the server resolved for this
	// request — the request's own, its tenant tier's, or the server
	// default ("auto" when the tuner/degradation decided).
	Preset string `json:"preset,omitempty"`
	// PhaseUS attributes the query's time to pipeline phases, in
	// microseconds, keyed by phase name (tree_walk, candidate_sort,
	// refine, memtable_scan, topk_merge). Omitted when telemetry is
	// disabled on the index. On a sharded index the phases sum across
	// shards — work, not wall time.
	PhaseUS map[string]float64 `json:"phase_us,omitempty"`
}

func phaseUS(p telemetry.PhaseNS) map[string]float64 {
	if p.Total() == 0 {
		return nil
	}
	out := make(map[string]float64, telemetry.NumPhases)
	for i, ns := range p {
		out[telemetry.Phase(i).String()] = float64(ns) / 1e3
	}
	return out
}

func toStatsJSON(st *hdindex.Stats) *QueryStatsJSON {
	if st == nil {
		return nil
	}
	return &QueryStatsJSON{
		Candidates:      st.Candidates,
		TreeEntries:     st.TreeEntries,
		PageReads:       st.PageReads,
		PageHits:        st.PageHits,
		PageMisses:      st.PageMisses,
		ExactDistances:  st.ExactDistances,
		MemtableScanned: st.MemtableScanned,
		Alpha:           st.Alpha,
		Beta:            st.Beta,
		Gamma:           st.Gamma,
		Ptolemaic:       st.Ptolemaic,
		Degraded:        st.Degraded,
		PhaseUS:         phaseUS(st.Phases),
	}
}

type searchResponse struct {
	Results []ResultJSON    `json:"results"`
	Stats   *QueryStatsJSON `json:"stats,omitempty"`
}

func (s *Server) validateQuery(name string, q []float32) error {
	if len(q) == 0 {
		return badRequest("%s must be non-empty", name)
	}
	if len(q) != s.idx.Dim() {
		return &httpError{code: http.StatusBadRequest, errCode: codeDimMismatch,
			msg: fmt.Sprintf("%s has %d dims, index has %d", name, len(q), s.idx.Dim())}
	}
	return nil
}

func (s *Server) validateK(k int) error {
	if k < 1 {
		return badRequest("k must be >= 1, got %d", k)
	}
	if k > s.cfg.MaxK {
		return badRequest("k = %d exceeds the server limit %d", k, s.cfg.MaxK)
	}
	return nil
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) (any, error) {
	var req searchRequest
	if err := decodeBody(r, &req); err != nil {
		return nil, err
	}
	if err := s.validateQuery("query", req.Query); err != nil {
		return nil, err
	}
	if err := s.validateK(req.K); err != nil {
		return nil, err
	}
	// With the slow-query log armed, stats are requested regardless of
	// the client's wish (the phase breakdown is the log's payload) and
	// stripped from the response below when not asked for.
	slowLog := s.cfg.SlowQueryThreshold > 0
	preset, err := s.resolvePreset(r, req.tuningFields)
	if err != nil {
		return nil, err
	}
	opts, pinned, err := s.presetOptions(preset, req.K, req.Stats || slowLog)
	if err != nil {
		return nil, err
	}
	if !pinned {
		if opts, err = req.tuningFields.options(s.cfg, req.Stats || slowLog); err != nil {
			return nil, err
		}
	}
	ctx, cancel := s.queryContext(r, req.TimeoutMs)
	defer cancel()
	release, err := s.admit(ctx, r, 1)
	if err != nil {
		return nil, err
	}
	defer release()
	// The degrade/tuner decision is taken after the queue wait, against
	// the current pressure: a request that queued through the worst of a
	// burst does not pay the quality cut if pressure already fell. Named
	// presets skip it — they pin their quality whatever the load.
	if !pinned {
		opts = s.autoOptions(opts, req.tuningFields, req.K)
	}
	if s.tuner != nil {
		s.tuner.Record(req.Query)
	}

	start := time.Now()
	resp, err := s.idx.Query(ctx, req.Query, req.K, opts...)
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	s.adm.Observe(elapsed)
	if slowLog && elapsed >= s.cfg.SlowQueryThreshold {
		s.logSlowQuery("search", elapsed, 1, req.K, resp.Stats)
	}
	if !req.Stats {
		resp.Stats = nil
	}
	out := searchResponse{Results: toResultJSON(resp.Results), Stats: toStatsJSON(resp.Stats)}
	if out.Stats != nil {
		out.Stats.Preset = string(preset)
	}
	return out, nil
}

// logSlowQuery emits one structured slow-query record: the endpoint,
// the request shape, and the full per-phase breakdown with the work
// counters — enough to tell a cold-cache refinement stall from a
// memtable pileup without re-running the query.
func (s *Server) logSlowQuery(endpoint string, elapsed time.Duration, queries, k int, st *hdindex.Stats) {
	attrs := []any{
		slog.String("endpoint", endpoint),
		slog.Duration("elapsed", elapsed),
		slog.Int("queries", queries),
		slog.Int("k", k),
	}
	if st != nil {
		phases := make([]any, 0, telemetry.NumPhases)
		for i, ns := range st.Phases {
			phases = append(phases, slog.Duration(telemetry.Phase(i).String(), time.Duration(ns)))
		}
		attrs = append(attrs,
			slog.Group("phases", phases...),
			slog.Int("candidates", st.Candidates),
			slog.Int("tree_entries", st.TreeEntries),
			slog.Uint64("page_reads", st.PageReads),
			slog.Uint64("page_misses", st.PageMisses),
			slog.Int("exact_distances", st.ExactDistances),
			slog.Int("memtable_scanned", st.MemtableScanned),
			slog.Int("alpha", st.Alpha),
			slog.Int("gamma", st.Gamma),
		)
	}
	s.logger.Warn("slow query", attrs...)
}

type searchBatchRequest struct {
	Queries   [][]float32 `json:"queries"`
	K         int         `json:"k"`
	TimeoutMs int         `json:"timeout_ms"`
	Stats     bool        `json:"stats"`
	tuningFields
}

type searchBatchResponse struct {
	Results [][]ResultJSON `json:"results"`
	// Stats holds one entry per query, in input order, when the request
	// set "stats": true.
	Stats []*QueryStatsJSON `json:"stats,omitempty"`
}

func (s *Server) handleSearchBatch(w http.ResponseWriter, r *http.Request) (any, error) {
	var req searchBatchRequest
	if err := decodeBody(r, &req); err != nil {
		return nil, err
	}
	if len(req.Queries) == 0 {
		return nil, badRequest("queries must be non-empty")
	}
	if len(req.Queries) > s.cfg.MaxBatch {
		return nil, badRequest("batch of %d queries exceeds the server limit %d", len(req.Queries), s.cfg.MaxBatch)
	}
	for i, q := range req.Queries {
		// Build the field name only on failure: a full MaxBatch request
		// must not pay per-query formatting just to validate.
		if len(q) == 0 {
			return nil, badRequest("queries[%d] must be non-empty", i)
		}
		if len(q) != s.idx.Dim() {
			return nil, &httpError{code: http.StatusBadRequest, errCode: codeDimMismatch,
				msg: fmt.Sprintf("queries[%d] has %d dims, index has %d", i, len(q), s.idx.Dim())}
		}
	}
	if err := s.validateK(req.K); err != nil {
		return nil, err
	}
	slowLog := s.cfg.SlowQueryThreshold > 0
	preset, err := s.resolvePreset(r, req.tuningFields)
	if err != nil {
		return nil, err
	}
	opts, pinned, err := s.presetOptions(preset, req.K, req.Stats || slowLog)
	if err != nil {
		return nil, err
	}
	if !pinned {
		if opts, err = req.tuningFields.options(s.cfg, req.Stats || slowLog); err != nil {
			return nil, err
		}
	}
	ctx, cancel := s.queryContext(r, req.TimeoutMs)
	defer cancel()
	// A batch weighs its query count: one huge /searchbatch occupies the
	// limiter like the equivalent run of single searches would.
	release, err := s.admit(ctx, r, len(req.Queries))
	if err != nil {
		return nil, err
	}
	defer release()
	if !pinned {
		opts = s.autoOptions(opts, req.tuningFields, req.K)
	}

	start := time.Now()
	res, err := s.idx.QueryBatch(ctx, req.Queries, req.K, opts...)
	if err != nil {
		return nil, err
	}
	s.adm.Observe(time.Since(start))
	if elapsed := time.Since(start); slowLog && elapsed >= s.cfg.SlowQueryThreshold {
		// One record for the whole batch, with the work summed across
		// its queries — per-query records would let a big batch flood
		// the log.
		agg := &hdindex.Stats{}
		for _, rs := range res {
			if st := rs.Stats; st != nil {
				agg.Candidates += st.Candidates
				agg.TreeEntries += st.TreeEntries
				agg.PageReads += st.PageReads
				agg.PageMisses += st.PageMisses
				agg.ExactDistances += st.ExactDistances
				agg.MemtableScanned += st.MemtableScanned
				agg.Phases.Add(st.Phases)
				agg.Alpha, agg.Gamma = st.Alpha, st.Gamma
			}
		}
		s.logSlowQuery("searchbatch", elapsed, len(req.Queries), req.K, agg)
	}
	out := searchBatchResponse{Results: make([][]ResultJSON, len(res))}
	if req.Stats {
		out.Stats = make([]*QueryStatsJSON, len(res))
	}
	for i, rs := range res {
		out.Results[i] = toResultJSON(rs.Results)
		if req.Stats {
			out.Stats[i] = toStatsJSON(rs.Stats)
			if out.Stats[i] != nil {
				out.Stats[i].Preset = string(preset)
			}
		}
	}
	return out, nil
}

type insertRequest struct {
	Vector []float32 `json:"vector"`
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) (any, error) {
	if s.cfg.ReadOnly {
		return nil, &httpError{code: http.StatusForbidden, msg: "server is read-only"}
	}
	var req insertRequest
	if err := decodeBody(r, &req); err != nil {
		return nil, err
	}
	if err := s.validateQuery("vector", req.Vector); err != nil {
		return nil, err
	}
	release, err := s.admit(r.Context(), r, 1)
	if err != nil {
		return nil, err
	}
	defer release()
	// Insert is durable when it returns — the index WAL-logs it — so no
	// flush here: the old flush-per-insert path serialised every write
	// against in-flight searches and rewrote whole pages per vector.
	id, err := s.idx.Insert(req.Vector)
	if err != nil {
		return nil, err
	}
	return map[string]uint64{"id": id}, nil
}

type deleteRequest struct {
	ID       uint64 `json:"id"`
	Undelete bool   `json:"undelete"`
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) (any, error) {
	if s.cfg.ReadOnly {
		return nil, &httpError{code: http.StatusForbidden, msg: "server is read-only"}
	}
	var req deleteRequest
	if err := decodeBody(r, &req); err != nil {
		return nil, err
	}
	release, err := s.admit(r.Context(), r, 1)
	if err != nil {
		return nil, err
	}
	defer release()
	op, verb := s.idx.Delete, "deleted"
	if req.Undelete {
		op, verb = s.idx.Undelete, "undeleted"
	}
	if err := op(req.ID); err != nil {
		if errors.Is(err, hdindex.ErrUnknownID) {
			return nil, badRequest("%v", err)
		}
		return nil, err
	}
	return map[string]uint64{verb: req.ID}, nil
}

// ShardStatsJSON is one shard's row of the /stats layout breakdown.
type ShardStatsJSON struct {
	ID         int    `json:"id"`
	Count      uint64 `json:"count"`
	Deleted    int    `json:"deleted"`
	SizeOnDisk int64  `json:"size_on_disk"`
}

// IOStatsJSON is the /stats buffer-pool and I/O block: the cumulative
// pager counters across every index file since the server opened the
// index. hit_ratio = hits/(hits+misses) makes the cache behaviour of
// the page-ordered candidate fetch observable in production.
type IOStatsJSON struct {
	Reads    uint64  `json:"reads"`
	Writes   uint64  `json:"writes"`
	Hits     uint64  `json:"hits"`
	Misses   uint64  `json:"misses"`
	HitRatio float64 `json:"hit_ratio"`
}

// StatsResponse is the /stats payload.
type StatsResponse struct {
	Index struct {
		Count      uint64 `json:"count"`
		Dim        int    `json:"dim"`
		Deleted    int    `json:"deleted"`
		SizeOnDisk int64  `json:"size_on_disk"`
		// Shards describes the on-disk layout: 1 for a legacy
		// single-index directory, N for a manifest-backed sharded
		// layout, with the per-shard breakdown alongside.
		Shards   int              `json:"shards"`
		PerShard []ShardStatsJSON `json:"per_shard"`
		IO       IOStatsJSON      `json:"io"`
		// WAL is the live-ingest block: memtable occupancy (the query
		// staleness bound), WAL size and group-commit counters, records
		// replayed at open (>0 means the server recovered from a crash),
		// and compaction history. Summed across shards.
		WAL hdindex.IngestStats `json:"wal"`
	} `json:"index"`
	UptimeSeconds float64                  `json:"uptime_seconds"`
	Endpoints     map[string]EndpointStats `json:"endpoints"`
	// Health mirrors /healthz's status field so one /stats poll carries
	// the whole serving picture.
	Health string `json:"health"`
	// Identity is the shard identity stamp when this server holds one
	// shard of a sharded build (see Config.Identity).
	Identity *shard.Identity `json:"identity,omitempty"`
	// Admission is the overload-control block: accepted/shed counters,
	// live inflight/queued occupancy, the pressure signal, and whether
	// new unpinned queries are being degraded. Omitted when admission
	// control is disabled.
	Admission *admission.Stats `json:"admission,omitempty"`
	// SLO is the auto-tuner block: the target, the current operating
	// point with its reason and slo_unmet flag, the decision history,
	// and the live re-measurement counters. Omitted when no tuner runs.
	SLO *slo.Stats `json:"slo,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) (any, error) {
	now := time.Now()
	up := now.Sub(s.started)
	var resp StatsResponse
	resp.Index.Count = s.idx.Count()
	resp.Index.Dim = s.idx.Dim()
	resp.Index.Deleted = s.idx.DeletedCount()
	resp.Index.SizeOnDisk = s.idx.SizeOnDisk()
	shards := s.idx.Shards()
	resp.Index.Shards = len(shards)
	resp.Index.PerShard = make([]ShardStatsJSON, len(shards))
	for i, sh := range shards {
		resp.Index.PerShard[i] = ShardStatsJSON{
			ID: sh.ID, Count: sh.Count, Deleted: sh.Deleted, SizeOnDisk: sh.SizeOnDisk,
		}
	}
	io := s.idx.IOStats()
	resp.Index.IO = IOStatsJSON{
		Reads: io.Reads, Writes: io.Writes, Hits: io.Hits, Misses: io.Misses,
		HitRatio: io.HitRatio(),
	}
	resp.Index.WAL = s.idx.IngestStats()
	resp.UptimeSeconds = up.Seconds()
	resp.Health = s.healthState()
	resp.Identity = s.cfg.Identity
	if s.adm != nil {
		st := s.adm.Stats()
		resp.Admission = &st
	}
	if s.tuner != nil {
		st := s.tuner.Stats()
		resp.SLO = &st
	}
	resp.Endpoints = make(map[string]EndpointStats, 7)
	for _, ep := range s.endpointsInOrder() {
		resp.Endpoints[ep.name] = ep.m.statsRow(s.started, now)
	}
	return resp, nil
}

// healthState resolves the serving state machine, most severe first:
//
//	read_only  — the WAL failed; writes are rejected, reads keep serving
//	overloaded — the admission queue is saturated and requests are shed
//	degraded   — pressure-degraded cascades, or the compaction circuit
//	             breaker is open (old tree generation serving)
//	ok
func (s *Server) healthState() string {
	ist := s.idx.IngestStats()
	switch {
	case ist.WALFailed:
		return "read_only"
	case s.adm.Overloaded():
		return "overloaded"
	case s.adm.ShouldDegrade() || ist.CompactBreaker == "open":
		return "degraded"
	}
	return "ok"
}

// HealthzResponse is the /healthz payload. Beyond the liveness status
// it carries enough identity for a cluster coordinator's startup check:
// the vector count and dimensionality always, and the shard identity
// stamp when the served directory is one shard of a sharded build.
type HealthzResponse struct {
	Status string `json:"status"`
	Count  uint64 `json:"count"`
	Dim    int    `json:"dim"`
	// Identity names which shard of which sharded build this server
	// holds; absent for standalone indexes.
	Identity *shard.Identity `json:"identity,omitempty"`
}

// handleHealthz reports the health state machine. Status is 200 for
// ok, degraded, and read_only — the server is still answering queries
// and a restart would not help — and 503 for overloaded, which pulls
// the instance out of load-balancer rotation until the storm passes.
// Registered raw (not through instrument) so the body always carries
// the "status" field whatever the HTTP code.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	status := s.healthState()
	code := http.StatusOK
	if status == "overloaded" {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, HealthzResponse{
		Status:   status,
		Count:    s.idx.Count(),
		Dim:      s.idx.Dim(),
		Identity: s.cfg.Identity,
	})
	s.mHealth.observe(time.Since(start), code != http.StatusOK)
}
