package server

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/hd-index/hdindex/internal/telemetry"
)

// endpointMetrics counts one endpoint's traffic. The handlers sit on
// the query hot path, so observe costs a few atomic adds (the histogram
// is lock-free); the window bookkeeping below is mutex-guarded but only
// touched by /stats scrapes.
type endpointMetrics struct {
	errors atomic.Uint64
	hist   telemetry.Histogram

	// Window state for the /stats "since last scrape" view; prev is the
	// histogram snapshot the previous scrape took. Guarded by mu —
	// scrapes are cold-path.
	mu     sync.Mutex
	prev   telemetry.Snapshot
	prevAt time.Time
}

// observe records one finished request.
func (m *endpointMetrics) observe(d time.Duration, failed bool) {
	if failed {
		m.errors.Add(1)
	}
	m.hist.ObserveDuration(d)
}

// EndpointStats is one endpoint's row in the /stats response. The
// latency quantiles come from a log-bucketed histogram (estimates
// within 3.125%); the mean and the all-time max are exact.
// MaxLatencyMs is all-time — one cold-start outlier pins it forever —
// so Window reports the same figures over the interval since the
// previous /stats scrape.
type EndpointStats struct {
	Requests      uint64  `json:"requests"`
	Errors        uint64  `json:"errors"`
	MeanLatencyMs float64 `json:"mean_latency_ms"`
	P50LatencyMs  float64 `json:"p50_latency_ms"`
	P95LatencyMs  float64 `json:"p95_latency_ms"`
	P99LatencyMs  float64 `json:"p99_latency_ms"`
	MaxLatencyMs  float64 `json:"max_latency_ms"`
	QPS           float64 `json:"qps"` // requests / server uptime
	// Window covers the requests since the previous /stats scrape
	// (since server start on the first one). Absent when the window saw
	// no requests. Its max is bucket-estimated (≤3.125% high), not
	// exact: per-window exact maxima are not derivable from deltas.
	Window *WindowStats `json:"window,omitempty"`
}

// WindowStats are latency figures over one /stats scrape interval.
type WindowStats struct {
	Seconds       float64 `json:"seconds"`
	Requests      uint64  `json:"requests"`
	MeanLatencyMs float64 `json:"mean_latency_ms"`
	P50LatencyMs  float64 `json:"p50_latency_ms"`
	P95LatencyMs  float64 `json:"p95_latency_ms"`
	P99LatencyMs  float64 `json:"p99_latency_ms"`
	MaxLatencyMs  float64 `json:"max_latency_ms"`
}

func nsToMs(ns float64) float64 { return ns / 1e6 }

// statsRow renders the endpoint's cumulative figures and advances the
// scrape window: the delta between this histogram snapshot and the
// previous scrape's becomes the Window block.
func (m *endpointMetrics) statsRow(started, now time.Time) EndpointStats {
	cur := m.hist.Snapshot()
	s := EndpointStats{
		Requests:      cur.Count,
		Errors:        m.errors.Load(),
		MeanLatencyMs: nsToMs(cur.Mean()),
		P50LatencyMs:  nsToMs(cur.Quantile(0.50)),
		P95LatencyMs:  nsToMs(cur.Quantile(0.95)),
		P99LatencyMs:  nsToMs(cur.Quantile(0.99)),
		MaxLatencyMs:  nsToMs(float64(cur.Max)),
	}
	if sec := now.Sub(started).Seconds(); sec > 0 {
		s.QPS = float64(cur.Count) / sec
	}

	m.mu.Lock()
	prev, prevAt := m.prev, m.prevAt
	m.prev, m.prevAt = cur, now
	m.mu.Unlock()
	if prevAt.IsZero() {
		prevAt = started
	}
	if win := cur.Sub(prev); win.Count > 0 {
		s.Window = &WindowStats{
			Seconds:       now.Sub(prevAt).Seconds(),
			Requests:      win.Count,
			MeanLatencyMs: nsToMs(win.Mean()),
			P50LatencyMs:  nsToMs(win.Quantile(0.50)),
			P95LatencyMs:  nsToMs(win.Quantile(0.95)),
			P99LatencyMs:  nsToMs(win.Quantile(0.99)),
			MaxLatencyMs:  nsToMs(float64(win.Max)),
		}
	}
	return s
}
