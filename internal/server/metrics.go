package server

import (
	"sync/atomic"
	"time"
)

// endpointMetrics counts one endpoint's traffic with lock-free atomics:
// the handlers sit on the query hot path, so the counters must cost a
// few atomic adds, not a mutex.
type endpointMetrics struct {
	requests  atomic.Uint64
	errors    atomic.Uint64
	latencyNs atomic.Uint64 // total across all requests
	maxNs     atomic.Uint64
}

// observe records one finished request.
func (m *endpointMetrics) observe(d time.Duration, failed bool) {
	ns := uint64(d.Nanoseconds())
	m.requests.Add(1)
	m.latencyNs.Add(ns)
	if failed {
		m.errors.Add(1)
	}
	for {
		old := m.maxNs.Load()
		if ns <= old || m.maxNs.CompareAndSwap(old, ns) {
			return
		}
	}
}

// EndpointStats is one endpoint's row in the /stats response.
type EndpointStats struct {
	Requests      uint64  `json:"requests"`
	Errors        uint64  `json:"errors"`
	MeanLatencyMs float64 `json:"mean_latency_ms"`
	MaxLatencyMs  float64 `json:"max_latency_ms"`
	QPS           float64 `json:"qps"` // requests / server uptime
}

// snapshot renders the counters; uptime scales the QPS figure.
func (m *endpointMetrics) snapshot(uptime time.Duration) EndpointStats {
	n := m.requests.Load()
	s := EndpointStats{
		Requests:     n,
		Errors:       m.errors.Load(),
		MaxLatencyMs: float64(m.maxNs.Load()) / 1e6,
	}
	if n > 0 {
		s.MeanLatencyMs = float64(m.latencyNs.Load()) / float64(n) / 1e6
	}
	if sec := uptime.Seconds(); sec > 0 {
		s.QPS = float64(n) / sec
	}
	return s
}
