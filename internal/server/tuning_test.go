package server

import (
	"context"
	"net/http"
	"testing"

	hdindex "github.com/hd-index/hdindex"
)

func boolp(b bool) *bool { return &b }

// Per-request alpha/gamma/ptolemaic overrides must reach the query and
// be echoed back in the stats block — and match what the library's own
// Query with the same options returns.
func TestSearchPerRequestTuning(t *testing.T) {
	ts, idx, ds := newTestServer(t, Config{})
	q := ds.PerturbedQueries(1, 0.02, 7)[0]

	var got searchResponse
	req := searchRequest{Query: q, K: 5, Stats: true,
		tuningFields: tuningFields{Alpha: 64, Gamma: 16, Ptolemaic: boolp(true)}}
	if code := post(t, ts.URL+"/search", req, &got); code != 200 {
		t.Fatalf("status %d", code)
	}
	if got.Stats == nil {
		t.Fatal("no stats block")
	}
	if got.Stats.Alpha != 64 || got.Stats.Gamma != 16 || !got.Stats.Ptolemaic {
		t.Fatalf("stats echo %+v, want alpha=64 gamma=16 ptolemaic=true", got.Stats)
	}

	want, err := idx.Query(context.Background(), q, 5,
		hdindex.WithAlpha(64), hdindex.WithGamma(16), hdindex.WithPtolemaic(true), hdindex.WithStats())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Results) != len(want.Results) {
		t.Fatalf("%d results, want %d", len(got.Results), len(want.Results))
	}
	for i := range want.Results {
		if got.Results[i].ID != want.Results[i].ID {
			t.Fatalf("rank %d: id %d, want %d", i, got.Results[i].ID, want.Results[i].ID)
		}
	}
	if got.Stats.Candidates != want.Stats.Candidates {
		t.Fatalf("candidates %d, want %d", got.Stats.Candidates, want.Stats.Candidates)
	}

	// The same request without overrides runs the built cascade.
	var def searchResponse
	if code := post(t, ts.URL+"/search", searchRequest{Query: q, K: 5, Stats: true}, &def); code != 200 {
		t.Fatalf("status %d", code)
	}
	if def.Stats.Alpha != 128 || def.Stats.Gamma != 32 || def.Stats.Ptolemaic {
		t.Fatalf("default stats echo %+v, want the built cascade 128/32/off", def.Stats)
	}
}

// Tuning values above the server's MaxAlpha cap clamp instead of
// erroring; negative values are a coded 400.
func TestSearchTuningClampAndValidation(t *testing.T) {
	ts, _, ds := newTestServer(t, Config{MaxAlpha: 64})
	q := ds.PerturbedQueries(1, 0.02, 8)[0]

	var got searchResponse
	req := searchRequest{Query: q, K: 5, Stats: true, tuningFields: tuningFields{Alpha: 100000}}
	if code := post(t, ts.URL+"/search", req, &got); code != 200 {
		t.Fatalf("status %d", code)
	}
	if got.Stats.Alpha != 64 {
		t.Fatalf("alpha clamped to %d, want the MaxAlpha cap 64", got.Stats.Alpha)
	}

	var errResp errorBody
	req = searchRequest{Query: q, K: 5, tuningFields: tuningFields{Alpha: -2}}
	if code := post(t, ts.URL+"/search", req, &errResp); code != http.StatusBadRequest {
		t.Fatalf("negative alpha: status %d", code)
	}
	if errResp.Code != codeBadOptions {
		t.Fatalf("negative alpha: code %q, want %q", errResp.Code, codeBadOptions)
	}

	// A widening cascade is rejected by the library and surfaces as the
	// same coded 400.
	req = searchRequest{Query: q, K: 5, tuningFields: tuningFields{Alpha: 16, Gamma: 32}}
	if code := post(t, ts.URL+"/search", req, &errResp); code != http.StatusBadRequest {
		t.Fatalf("widening cascade: status %d", code)
	}
	if errResp.Code != codeBadOptions {
		t.Fatalf("widening cascade: code %q, want %q", errResp.Code, codeBadOptions)
	}
}

// Dimensionality mismatches are a structured 400 with the dim_mismatch
// code on every route that takes vectors.
func TestDimMismatchStructuredError(t *testing.T) {
	ts, _, ds := newTestServer(t, Config{})
	q := ds.PerturbedQueries(1, 0.02, 9)[0]

	cases := []struct {
		name string
		url  string
		body any
	}{
		{"search", "/search", searchRequest{Query: q[:7], K: 5}},
		{"searchbatch", "/searchbatch", searchBatchRequest{Queries: [][]float32{q[:7]}, K: 5}},
		{"insert", "/insert", insertRequest{Vector: q[:7]}},
	}
	for _, c := range cases {
		var errResp errorBody
		if code := post(t, ts.URL+c.url, c.body, &errResp); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", c.name, code)
		}
		if errResp.Code != codeDimMismatch {
			t.Errorf("%s: code %q, want %q", c.name, errResp.Code, codeDimMismatch)
		}
		if errResp.Error == "" {
			t.Errorf("%s: no error message", c.name)
		}
	}
}

// /searchbatch shares the tuning fields and returns per-query stats in
// input order when asked.
func TestSearchBatchPerRequestTuning(t *testing.T) {
	ts, idx, ds := newTestServer(t, Config{})
	queries := ds.PerturbedQueries(4, 0.02, 10)

	var got searchBatchResponse
	req := searchBatchRequest{Queries: queries, K: 5, Stats: true,
		tuningFields: tuningFields{Gamma: 16}}
	if code := post(t, ts.URL+"/searchbatch", req, &got); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(got.Results) != len(queries) || len(got.Stats) != len(queries) {
		t.Fatalf("%d results, %d stats for %d queries", len(got.Results), len(got.Stats), len(queries))
	}
	for qi, q := range queries {
		if got.Stats[qi] == nil || got.Stats[qi].Gamma != 16 {
			t.Fatalf("query %d: stats %+v", qi, got.Stats[qi])
		}
		want, err := idx.Query(context.Background(), q, 5, hdindex.WithGamma(16))
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.Results {
			if got.Results[qi][i].ID != want.Results[i].ID {
				t.Fatalf("query %d rank %d: id %d, want %d", qi, i, got.Results[qi][i].ID, want.Results[i].ID)
			}
		}
	}

	// Without stats the array stays absent.
	var noStats searchBatchResponse
	if code := post(t, ts.URL+"/searchbatch", searchBatchRequest{Queries: queries, K: 5}, &noStats); code != 200 {
		t.Fatalf("status %d", code)
	}
	if noStats.Stats != nil {
		t.Fatalf("stats present without stats:true: %+v", noStats.Stats)
	}

	// Bad options fail the whole batch with the coded 400.
	var errResp errorBody
	req = searchBatchRequest{Queries: queries, K: 5, tuningFields: tuningFields{Alpha: 8, Gamma: 16}}
	if code := post(t, ts.URL+"/searchbatch", req, &errResp); code != http.StatusBadRequest {
		t.Fatalf("bad batch options: status %d", code)
	}
	if errResp.Code != codeBadOptions {
		t.Fatalf("bad batch options: code %q", errResp.Code)
	}
}
