//go:build race

package server

// raceEnabled widens timing budgets in tests: the race detector slows
// the whole process by an order of magnitude, so wall-clock assertions
// calibrated for plain builds would only measure the instrumentation.
const raceEnabled = true
