package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestLoad64Clients is the acceptance load test: 64 concurrent clients
// mixing /search, /searchbatch, /insert, /delete, and /stats traffic
// against one server. Every search response must be well-formed and in
// sorted distance order; run under -race in CI this also proves the
// whole serving path race-clean under contention.
func TestLoad64Clients(t *testing.T) {
	const (
		clients           = 64
		requestsPerClient = 12
	)
	ts, idx, ds := newTestServer(t, Config{QueryTimeout: 30 * time.Second})
	queries := ds.PerturbedQueries(clients, 0.02, 9)
	dim := idx.Dim()

	client := ts.Client()
	client.Transport.(*http.Transport).MaxIdleConnsPerHost = clients

	var (
		wg       sync.WaitGroup
		searches atomic.Int64
		batches  atomic.Int64
		writes   atomic.Int64
	)
	errCh := make(chan error, clients)
	fail := func(format string, args ...any) {
		select {
		case errCh <- fmt.Errorf(format, args...):
		default:
		}
	}
	doPost := func(path string, body any, out any) (int, error) {
		buf, err := json.Marshal(body)
		if err != nil {
			return 0, err
		}
		resp, err := client.Post(ts.URL+path, "application/json", bytes.NewReader(buf))
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		if out != nil && resp.StatusCode == 200 {
			return resp.StatusCode, json.NewDecoder(resp.Body).Decode(out)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, nil
	}

	checkSorted := func(res []ResultJSON) bool {
		for i := 1; i < len(res); i++ {
			if res[i].Dist < res[i-1].Dist {
				return false
			}
		}
		return true
	}

	// Mid-storm scraper: repeatedly GET /metrics while the clients hammer
	// the server, and fail the test if any scrape is malformed exposition
	// — histogram buckets must stay cumulative and +Inf-closed even while
	// their counters are being bumped concurrently.
	scrapeDone := make(chan struct{})
	var scrapes atomic.Int64
	var scraperWG sync.WaitGroup
	scraperWG.Add(1)
	go func() {
		defer scraperWG.Done()
		for {
			select {
			case <-scrapeDone:
				return
			default:
			}
			resp, err := client.Get(ts.URL + "/metrics")
			if err != nil {
				fail("metrics scrape: %v", err)
				return
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				fail("metrics scrape read: %v", err)
				return
			}
			if resp.StatusCode != 200 {
				fail("metrics scrape status %d", resp.StatusCode)
				return
			}
			parsePromText(t, string(body))
			scrapes.Add(1)
			time.Sleep(2 * time.Millisecond)
		}
	}()

	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			q := queries[c]
			for r := 0; r < requestsPerClient; r++ {
				switch {
				case c%8 == 7 && r%6 == 5:
					// Writer traffic: insert then delete the new id.
					vec := make([]float32, dim)
					for d := range vec {
						vec[d] = float32(c%10) / 10
					}
					var ins map[string]uint64
					code, err := doPost("/insert", insertRequest{Vector: vec}, &ins)
					if err != nil || code != 200 {
						fail("client %d insert: code %d err %v", c, code, err)
						return
					}
					if code, err = doPost("/delete", deleteRequest{ID: ins["id"]}, nil); err != nil || code != 200 {
						fail("client %d delete: code %d err %v", c, code, err)
						return
					}
					writes.Add(1)
				case r%3 == 2:
					var out searchBatchResponse
					batch := [][]float32{q, queries[(c+1)%clients], queries[(c+2)%clients]}
					code, err := doPost("/searchbatch", searchBatchRequest{Queries: batch, K: 5}, &out)
					if err != nil || code != 200 {
						fail("client %d batch: code %d err %v", c, code, err)
						return
					}
					if len(out.Results) != len(batch) {
						fail("client %d batch: %d result sets, want %d", c, len(out.Results), len(batch))
						return
					}
					for _, res := range out.Results {
						if len(res) == 0 || !checkSorted(res) {
							fail("client %d batch: empty or unsorted results", c)
							return
						}
					}
					batches.Add(1)
				default:
					var out searchResponse
					code, err := doPost("/search", searchRequest{Query: q, K: 10}, &out)
					if err != nil || code != 200 {
						fail("client %d search: code %d err %v", c, code, err)
						return
					}
					if len(out.Results) == 0 || !checkSorted(out.Results) {
						fail("client %d search: empty or unsorted results", c)
						return
					}
					searches.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	close(scrapeDone)
	scraperWG.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	if scrapes.Load() == 0 {
		t.Error("scraper never completed a mid-storm /metrics scrape")
	}

	// The server's own counters must account for the traffic.
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if got := st.Endpoints["search"].Requests; got != uint64(searches.Load()) {
		t.Errorf("search counter = %d, clients sent %d", got, searches.Load())
	}
	if got := st.Endpoints["searchbatch"].Requests; got != uint64(batches.Load()) {
		t.Errorf("batch counter = %d, clients sent %d", got, batches.Load())
	}
	if st.Endpoints["search"].Errors != 0 || st.Endpoints["searchbatch"].Errors != 0 {
		t.Errorf("unexpected endpoint errors: %+v", st.Endpoints)
	}
	t.Logf("load test: %d searches, %d batches, %d insert+delete pairs across %d clients",
		searches.Load(), batches.Load(), writes.Load(), clients)
}
