// Package crash kill-injects hdserve: it starts the real server binary,
// storms /insert, SIGKILLs the process at a randomized offset, reopens
// the index, and proves that no acknowledged write was lost and that
// recovery answers queries exactly like a server that never crashed.
//
// The suite is the local counterpart of the crash-recovery CI job. It
// needs the go toolchain on PATH (to build hdserve once per run) and a
// loopback listener. Rounds are controlled by HD_CRASH_ROUNDS (default
// 3); failing rounds leave their index directory behind — under
// HD_CRASH_DIR when set, else under the system temp dir — and print
// its path so CI can upload it as an artifact.
package crash

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"sync"
	"syscall"
	"testing"
	"time"

	hdindex "github.com/hd-index/hdindex"
	"github.com/hd-index/hdindex/internal/data"
)

var serverBin string

func TestMain(m *testing.M) {
	tmp, err := os.MkdirTemp("", "hdcrash-bin-")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	serverBin = filepath.Join(tmp, "hdserve")
	build := exec.Command("go", "build", "-o", serverBin, "github.com/hd-index/hdindex/cmd/hdserve")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		fmt.Fprintf(os.Stderr, "building hdserve: %v\n", err)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(tmp)
	os.Exit(code)
}

func rounds() int {
	if s := os.Getenv("HD_CRASH_ROUNDS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 3
}

// freePort reserves a loopback port long enough to hand it to the
// subprocess. The tiny close-to-bind race is acceptable in tests.
func freePort(t *testing.T) int {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	port := l.Addr().(*net.TCPAddr).Port
	l.Close()
	return port
}

type serverProc struct {
	cmd  *exec.Cmd
	base string
	log  *os.File
}

// startServer launches hdserve over dir and waits until /healthz
// answers. extraArgs tune WAL/memtable behaviour per round.
func startServer(t *testing.T, dir string, extraArgs ...string) *serverProc {
	t.Helper()
	port := freePort(t)
	addr := fmt.Sprintf("127.0.0.1:%d", port)
	logf, err := os.Create(filepath.Join(dir, "server.log"))
	if err != nil {
		t.Fatal(err)
	}
	args := append([]string{"-index", dir, "-addr", addr}, extraArgs...)
	cmd := exec.Command(serverBin, args...)
	cmd.Stdout = logf
	cmd.Stderr = logf
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &serverProc{cmd: cmd, base: "http://" + addr, log: logf}
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(p.base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return p
			}
		}
		if time.Now().After(deadline) {
			p.kill()
			t.Fatalf("server on %s never became healthy", addr)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func (p *serverProc) kill() {
	_ = p.cmd.Process.Signal(syscall.SIGKILL)
	_ = p.cmd.Wait()
	p.log.Close()
}

// insertVec POSTs one vector; on 200 it returns the acknowledged id.
func insertVec(base string, vec []float32) (uint64, bool) {
	body, _ := json.Marshal(map[string]any{"vector": vec})
	resp, err := http.Post(base+"/insert", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, false
	}
	var out struct {
		ID uint64 `json:"id"`
	}
	if json.NewDecoder(resp.Body).Decode(&out) != nil {
		return 0, false
	}
	return out.ID, true
}

// stormVector derives a distinct, deterministic vector for storm insert
// i: far enough apart that each is its own exact nearest neighbour.
func stormVector(dim, i int) []float32 {
	v := make([]float32, dim)
	for d := range v {
		v[d] = float32(i%97)/97 + 0.001*float32(d) + 10 // offset away from the base data
	}
	v[0] += float32(i) // unique first coordinate
	return v
}

func buildBase(t *testing.T, dir string, memtableMax int) *data.Dataset {
	t.Helper()
	ds := data.Generate(data.Config{Name: "crash", N: 500, Dim: 16, Clusters: 4, Lo: 0, Hi: 1, Seed: 7})
	// Alpha >= n keeps queries exact, so "is this exact vector present"
	// is decidable by a k=1 search.
	idx, err := hdindex.Build(dir, ds.Vectors, hdindex.Options{
		Tau: 2, Omega: 8, M: 3, Alpha: 512, Beta: 512, Gamma: 512, Seed: 8,
		MemtableMaxVectors: memtableMax,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.Close(); err != nil {
		t.Fatal(err)
	}
	return ds
}

// verifyAcked opens the crashed directory and proves every acknowledged
// insert survived: its exact vector is found at distance ~0 under its
// acknowledged id.
func verifyAcked(t *testing.T, dir string, acked map[uint64][]float32) {
	t.Helper()
	idx, err := hdindex.Open(dir, hdindex.Options{})
	if err != nil {
		t.Fatalf("index did not open clean after SIGKILL: %v", err)
	}
	defer idx.Close()
	var maxID uint64
	for id := range acked {
		if id > maxID {
			maxID = id
		}
	}
	if len(acked) > 0 && idx.Count() < maxID+1 {
		t.Fatalf("recovered count %d < max acked id %d + 1", idx.Count(), maxID)
	}
	for id, vec := range acked {
		res, err := idx.Search(vec, 1)
		if err != nil {
			t.Fatalf("search for acked id %d: %v", id, err)
		}
		if len(res) != 1 || res[0].ID != id || res[0].Dist > 1e-4 {
			t.Fatalf("acknowledged insert id %d lost after crash: got %+v", id, res)
		}
	}
}

// keepOnFailure registers dir for preservation: on test failure the
// directory survives with its server.log so CI can upload it.
func keepOnFailure(t *testing.T, dir string) {
	t.Cleanup(func() {
		if t.Failed() {
			t.Logf("crash artifacts preserved at %s", dir)
			return
		}
		os.RemoveAll(dir)
	})
}

// artifactDir creates a round's index directory under the shared
// hdcrash root (a stable location CI can glob for artifacts; override
// it with HD_CRASH_DIR).
func artifactDir(t *testing.T, name string) string {
	t.Helper()
	root := os.Getenv("HD_CRASH_DIR")
	if root == "" {
		root = filepath.Join(os.TempDir(), "hdcrash")
	}
	if err := os.MkdirAll(root, 0o755); err != nil {
		t.Fatal(err)
	}
	dir, err := os.MkdirTemp(root, name+"-")
	if err != nil {
		t.Fatal(err)
	}
	keepOnFailure(t, dir)
	return dir
}

// Concurrent insert storm, SIGKILL at a randomized offset, recover,
// assert no acknowledged write lost. Half the rounds force a tiny
// memtable so the kill also lands during background compactions.
func TestKillInjectionConcurrentStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess kill-injection; skipped in -short")
	}
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	for round := 0; round < rounds(); round++ {
		t.Run(fmt.Sprintf("round=%d", round), func(t *testing.T) {
			dir := artifactDir(t, fmt.Sprintf("storm-%d", round))
			memtableMax := 1 << 20
			args := []string{}
			if round%2 == 1 {
				// Small memtable: compactions fire mid-storm, so some
				// kills land mid-compaction.
				memtableMax = 16
				args = append(args, "-memtable-max", "16")
			}
			buildBase(t, dir, memtableMax)
			srv := startServer(t, dir, args...)

			var mu sync.Mutex
			acked := make(map[uint64][]float32)
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := w; ; i += 4 {
						select {
						case <-stop:
							return
						default:
						}
						vec := stormVector(16, i)
						if id, ok := insertVec(srv.base, vec); ok {
							mu.Lock()
							acked[id] = vec
							mu.Unlock()
						} else {
							return // server is gone
						}
					}
				}(w)
			}

			// Kill at a randomized offset into the storm.
			time.Sleep(time.Duration(20+rng.Intn(300)) * time.Millisecond)
			srv.kill()
			close(stop)
			wg.Wait()

			t.Logf("round %d: %d acknowledged inserts before SIGKILL", round, len(acked))
			verifyAcked(t, dir, acked)
		})
	}
}

// Serial storm: inserts one at a time, so the id→vector history is
// total and recovery can be compared bit-for-bit against a never-
// crashed index given the same writes.
func TestKillInjectionSerialBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess kill-injection; skipped in -short")
	}
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	dir := artifactDir(t, "serial")
	ds := buildBase(t, dir, 1<<20)
	srv := startServer(t, dir)

	history := make([][]float32, 0, 4096) // history[j] = vector acked with id 500+j
	stop := time.Now().Add(time.Duration(50+rng.Intn(250)) * time.Millisecond)
	for i := 0; time.Now().Before(stop); i++ {
		vec := stormVector(16, i)
		id, ok := insertVec(srv.base, vec)
		if !ok {
			break
		}
		if id != uint64(500+len(history)) {
			t.Fatalf("non-sequential id %d at serial insert %d", id, len(history))
		}
		history = append(history, vec)
	}
	srv.kill()
	t.Logf("%d acknowledged serial inserts before SIGKILL", len(history))

	crashed, err := hdindex.Open(dir, hdindex.Options{})
	if err != nil {
		t.Fatalf("index did not open clean after SIGKILL: %v", err)
	}
	defer crashed.Close()
	if crashed.Count() < uint64(500+len(history)) {
		t.Fatalf("recovered count %d lost acknowledged writes (want >= %d)",
			crashed.Count(), 500+len(history))
	}

	// Replay exactly the acknowledged writes into a reference index that
	// never crashed, then require bit-identical answers.
	refDir := artifactDir(t, "serial-ref")
	buildBase(t, refDir, 1<<20)
	ref, err := hdindex.Open(refDir, hdindex.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	for _, vec := range history {
		if _, err := ref.Insert(vec); err != nil {
			t.Fatal(err)
		}
	}

	queries := ds.PerturbedQueries(10, 0.05, 9)
	queries = append(queries, stormVector(16, 0), stormVector(16, 3))
	for qi, q := range queries {
		a, err := crashed.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ref.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		// The crashed server may hold one extra write: the in-flight
		// insert whose ack was lost. Its id is 500+len(history) — ignore
		// results differing only by that trailing, unacknowledged id.
		inflight := uint64(500 + len(history))
		ai, bi := 0, 0
		for ai < len(a) && bi < len(b) {
			if a[ai].ID == inflight {
				ai++
				continue
			}
			if a[ai].ID != b[bi].ID || math.Float64bits(a[ai].Dist) != math.Float64bits(b[bi].Dist) {
				t.Fatalf("query %d: recovered %+v != reference %+v", qi, a[ai], b[bi])
			}
			ai++
			bi++
		}
	}
}
